package main

import (
	"strings"
	"testing"
)

func TestSweepSmall(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-seeds", "3"}, &out, &errb); err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok: 3 seeds") {
		t.Errorf("missing summary in output:\n%s", out.String())
	}
}

func TestSingleSeedVerbose(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-seed", "7"}, &out, &errb); err != nil {
		t.Fatalf("seed check failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"scenario:", "job[0]", "dyrs run:", "passed all oracles"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestSingleSeedServing(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-seed", "3", "-serving", "-policy", "costaware"}, &out, &errb); err != nil {
		t.Fatalf("serving seed check failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"serving", "costaware run: served=", "passed all oracles"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestReproReplay(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-seed", "7", "-repro", "jobs=0"}, &out, &errb); err != nil {
		t.Fatalf("repro replay failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "jobs=1") {
		t.Errorf("mask not applied:\n%s", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-repro", "jobs=0"}, &out, &errb); err == nil {
		t.Error("-repro without -seed accepted")
	}
	if err := run([]string{"-badflag"}, &out, &errb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-policy", "bogus"}, &out, &errb); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-policy", "hdfs"}, &out, &errb); err == nil {
		t.Error("non-migrating policy accepted")
	}
	if err := run([]string{"-large", "-serving", "-seeds", "1"}, &out, &errb); err == nil {
		t.Error("-large with -serving accepted")
	}
}
