// Command dyrs-fuzz sweeps randomized scenarios through the fuzzing
// harness (internal/harness): each seed generates a cluster topology, a
// mixed workload and a fault schedule, runs it under the selected
// migrating policy twice and under plain HDFS once (plus once more on
// the sharded multi-core engine when a shard count is in play), and
// checks the invariant, conservation, liveness, metamorphic,
// determinism and shard-invariance oracles.
//
// Examples:
//
//	dyrs-fuzz -seeds 200                 # sweep seeds 1..200 in parallel
//	dyrs-fuzz -seeds 20 -large           # datacenter-shaped topologies (64-256 nodes)
//	dyrs-fuzz -seeds 25 -serving         # multi-tenant serving scenarios
//	dyrs-fuzz -seeds 50 -policy costaware # ... under another migrating policy
//	dyrs-fuzz -seed 17                   # check one seed, verbosely
//	dyrs-fuzz -seed 17 -shards 4         # ... with the 4-shard invariance run
//	dyrs-fuzz -seed 17 -repro 'faults=0;jobs=1'   # replay a shrunk repro
//
// By default a sweep rotates the shard-invariance run over shard counts
// {1, 2, 4} by seed, so every sweep differentially tests the sharded
// engine against the sequential one at no extra flag cost; -shards
// pins the count (1 disables the extra run).
//
// On the first failing seed the harness shrinks the scenario (dropping
// faults, then jobs, while the same oracle keeps failing) and prints a
// one-line reproduction command carrying the envelope, the policy name
// and the shard count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dyrs/internal/harness"
	"dyrs/internal/migration"
	"dyrs/internal/obs"
	"dyrs/internal/runner"
	"dyrs/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dyrs-fuzz:", err)
		os.Exit(1)
	}
}

// shardRotation is the per-seed shard-count schedule a sweep defaults
// to: most seeds stay purely sequential, every third seed adds a
// 2- or 4-shard invariance run.
var shardRotation = [...]int{1, 2, 4}

// shardsForSeed resolves the effective shard count: an explicit
// -shards value wins, otherwise the sweep rotation applies.
func shardsForSeed(flagVal int, seed int64) int {
	if flagVal >= 1 {
		return flagVal
	}
	return shardRotation[int(seed%int64(len(shardRotation)))]
}

// run is main minus the exit code, so tests can drive the binary
// in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dyrs-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "check a single seed (0: sweep -seeds)")
	seeds := fs.Int("seeds", 50, "number of consecutive seeds to sweep")
	start := fs.Int64("start", 1, "first seed of the sweep")
	jobs := fs.Int("jobs", 0, "parallel scenario checks (<=0: GOMAXPROCS)")
	repro := fs.String("repro", "", "keep-mask from a shrunk repro, e.g. 'faults=0,2;jobs=1' (requires -seed)")
	large := fs.Bool("large", false, "draw datacenter-shaped scenarios (64-256 nodes, multi-rack)")
	serving := fs.Bool("serving", false, "draw multi-tenant serving scenarios (open-loop Zipf/diurnal read stream)")
	policy := fs.String("policy", "", "migrating policy for the oracle runs: "+
		strings.Join(migration.BinderNames(), ", ")+" (default dyrs)")
	shards := fs.Int("shards", 0, "engine shards for the invariance run (0: rotate 1/2/4 by seed, 1: sequential only)")
	shrink := fs.Bool("shrink", true, "shrink failing scenarios to a minimal repro")
	artifacts := fs.String("artifacts", ".", "directory for failure artifacts (flight-recorder dumps); empty disables")
	manifestPath := fs.String("manifest", "", "write a run-manifest JSON (seed, flags, build, wall time, peak RSS) to this file")
	verbose := fs.Bool("v", false, "print every scenario as it is checked")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("dyrs-fuzz")
		manifest.Seed = *start
		if *seed != 0 {
			manifest.Seed = *seed
		}
		manifest.CaptureFlags(fs)
		defer func() {
			manifest.Finish(0)
			if f, err := os.Create(*manifestPath); err == nil {
				manifest.WriteJSON(f)
				f.Close()
			}
		}()
	}

	if *policy != "" {
		if _, err := migration.BinderByName(*policy); err != nil {
			return err
		}
	}
	if *large && *serving {
		return fmt.Errorf("-large and -serving are mutually exclusive envelopes")
	}
	if *repro != "" && *seed == 0 {
		return fmt.Errorf("-repro requires -seed")
	}
	base := harness.Repro{Large: *large, Serving: *serving, Policy: *policy}
	if *seed != 0 {
		base.Seed = *seed
		base.Shards = shardsForSeed(*shards, *seed)
		return checkOne(stdout, base, *repro, *shrink, *artifacts)
	}

	type outcome struct {
		rep      harness.Repro
		failures []harness.Failure
	}
	totalRuns := 0
	work := make([]runner.Job, *seeds)
	for i := 0; i < *seeds; i++ {
		s := *start + int64(i)
		rep := base
		rep.Seed = s
		rep.Shards = shardsForSeed(*shards, s)
		totalRuns += harness.OracleRunsPerSeed(rep.Shards)
		work[i] = runner.Job{
			Name: fmt.Sprintf("seed-%d", s),
			Run: func() (any, error) {
				return outcome{rep: rep, failures: harness.CheckScenario(rep.Scenario())}, nil
			},
		}
	}
	var progress func(runner.Event)
	if *verbose {
		progress = func(ev runner.Event) {
			if ev.Kind == runner.EventDone {
				fmt.Fprintf(stdout, "[%d/%d] %s (%.1fs)\n", ev.Done, ev.Total, ev.Name, ev.Elapsed.Seconds())
			}
		}
	}
	results := runner.Run(work, runner.Options{Jobs: *jobs, Progress: progress})

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(stdout, "%s: harness error: %v\n", r.Name, r.Err)
			continue
		}
		oc := r.Value.(outcome)
		if len(oc.failures) == 0 {
			continue
		}
		failed++
		reportFailure(stdout, oc.rep, oc.failures, *shrink, *artifacts)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d seeds failed", failed, *seeds)
	}
	fmt.Fprintf(stdout, "ok: %d seeds, %d scenario runs, all oracles passed\n",
		*seeds, totalRuns)
	return nil
}

// checkOne replays a single seed (optionally under a repro keep-mask)
// and reports in detail.
func checkOne(stdout io.Writer, base harness.Repro, mask string, shrink bool, artifacts string) error {
	rep, err := harness.ParseRepro(base.Seed, mask)
	if err != nil {
		return err
	}
	rep.Large = base.Large
	rep.Serving = base.Serving
	rep.Policy = base.Policy
	rep.Shards = base.Shards
	sc := rep.Scenario()
	fmt.Fprintf(stdout, "scenario: %s\n", sc)
	for i, j := range sc.Jobs {
		fmt.Fprintf(stdout, "  job[%d]   %-10s %s  size=%d  submit=%v lead=%v\n",
			i, j.Kind, j.File, j.Size, j.Submit, j.Lead)
	}
	for i, f := range sc.Faults {
		fmt.Fprintf(stdout, "  fault[%d] %-14s node=%d at=%v\n", i, f.Kind, f.Node, f.At)
	}
	r := harness.RunScenario(sc, "DYRS")
	if sc.Serving {
		fmt.Fprintf(stdout, "%s run: served=%d/%d stats=%+v trace=%.12s…\n",
			binderName(sc.Policy), r.RequestsServed, r.RequestsIssued, r.Stats, r.TraceHash)
	} else {
		fmt.Fprintf(stdout, "%s run: completed=%d/%d stats=%+v trace=%.12s…\n",
			binderName(sc.Policy), len(r.Completed), r.Submitted, r.Stats, r.TraceHash)
	}
	failures := harness.CheckScenario(sc)
	if len(failures) == 0 {
		fmt.Fprintf(stdout, "ok: seed %d passed all oracles\n", base.Seed)
		return nil
	}
	dumpFlight(stdout, base.Seed, r.Flight, artifacts)
	// A repro replay is already reduced; only shrink the full scenario.
	reportFailure(stdout, rep, failures, shrink && mask == "", "")
	return fmt.Errorf("seed %d failed %d oracle check(s)", base.Seed, len(failures))
}

// binderName names the migrating policy for reports.
func binderName(policy string) string {
	if policy == "" {
		return "dyrs"
	}
	return policy
}

// reportFailure prints a seed's oracle violations, the flight-recorder
// dump artifact, and, when asked, the shrunk reproduction command.
func reportFailure(stdout io.Writer, rep harness.Repro, failures []harness.Failure, shrink bool, artifacts string) {
	fmt.Fprintf(stdout, "FAIL seed %d policy=%s (%d violations):\n",
		rep.Seed, binderName(rep.Policy), len(failures))
	for _, f := range failures {
		fmt.Fprintf(stdout, "  %s\n", f)
	}
	if artifacts != "" {
		// Re-run once to capture the failing run's flight ring; scenarios
		// are deterministic, so this reproduces the reported run exactly.
		r := harness.RunScenario(rep.Scenario(), "DYRS")
		dumpFlight(stdout, rep.Seed, r.Flight, artifacts)
	}
	if !shrink {
		return
	}
	oracle := harness.FailedOracles(failures)[0]
	shrunk := harness.Shrink(rep, oracle)
	fmt.Fprintf(stdout, "  shrunk to %d event(s); repro: %s\n", shrunk.Events(), shrunk.Command())
}

// dumpFlight writes the failing run's flight-recorder tail to an
// artifact file next to the repro line, so the last moments before the
// violation survive the process.
func dumpFlight(stdout io.Writer, seed int64, events []trace.FlightEvent, artifacts string) {
	if artifacts == "" || len(events) == 0 {
		return
	}
	path := filepath.Join(artifacts, fmt.Sprintf("flight-seed%d.txt", seed))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stdout, "  flight dump failed: %v\n", err)
		return
	}
	err = trace.WriteFlightDump(f, events)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(stdout, "  flight dump failed: %v\n", err)
		return
	}
	fmt.Fprintf(stdout, "  flight recorder (%d events): %s\n", len(events), path)
}
