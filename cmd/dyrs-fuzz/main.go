// Command dyrs-fuzz sweeps randomized scenarios through the fuzzing
// harness (internal/harness): each seed generates a cluster topology, a
// mixed workload and a fault schedule, runs it under DYRS twice and
// under plain HDFS once, and checks the invariant, conservation,
// liveness, metamorphic and determinism oracles.
//
// Examples:
//
//	dyrs-fuzz -seeds 200                 # sweep seeds 1..200 in parallel
//	dyrs-fuzz -seeds 20 -large           # datacenter-shaped topologies (64-256 nodes)
//	dyrs-fuzz -seed 17                   # check one seed, verbosely
//	dyrs-fuzz -seed 17 -repro 'faults=0;jobs=1'   # replay a shrunk repro
//
// On the first failing seed the harness shrinks the scenario (dropping
// faults, then jobs, while the same oracle keeps failing) and prints a
// one-line reproduction command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dyrs/internal/harness"
	"dyrs/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dyrs-fuzz:", err)
		os.Exit(1)
	}
}

// run is main minus the exit code, so tests can drive the binary
// in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dyrs-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 0, "check a single seed (0: sweep -seeds)")
	seeds := fs.Int("seeds", 50, "number of consecutive seeds to sweep")
	start := fs.Int64("start", 1, "first seed of the sweep")
	jobs := fs.Int("jobs", 0, "parallel scenario checks (<=0: GOMAXPROCS)")
	repro := fs.String("repro", "", "keep-mask from a shrunk repro, e.g. 'faults=0,2;jobs=1' (requires -seed)")
	large := fs.Bool("large", false, "draw datacenter-shaped scenarios (64-256 nodes, multi-rack)")
	shrink := fs.Bool("shrink", true, "shrink failing scenarios to a minimal repro")
	verbose := fs.Bool("v", false, "print every scenario as it is checked")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *repro != "" && *seed == 0 {
		return fmt.Errorf("-repro requires -seed")
	}
	if *seed != 0 {
		return checkOne(stdout, *seed, *large, *repro, *shrink)
	}

	type outcome struct {
		seed     int64
		failures []harness.Failure
	}
	work := make([]runner.Job, *seeds)
	for i := 0; i < *seeds; i++ {
		s := *start + int64(i)
		work[i] = runner.Job{
			Name: fmt.Sprintf("seed-%d", s),
			Run: func() (any, error) {
				sc := harness.Generate(s)
				if *large {
					sc = harness.GenerateLarge(s)
				}
				return outcome{seed: s, failures: harness.CheckScenario(sc)}, nil
			},
		}
	}
	var progress func(runner.Event)
	if *verbose {
		progress = func(ev runner.Event) {
			if ev.Kind == runner.EventDone {
				fmt.Fprintf(stdout, "[%d/%d] %s (%.1fs)\n", ev.Done, ev.Total, ev.Name, ev.Elapsed.Seconds())
			}
		}
	}
	results := runner.Run(work, runner.Options{Jobs: *jobs, Progress: progress})

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(stdout, "%s: harness error: %v\n", r.Name, r.Err)
			continue
		}
		oc := r.Value.(outcome)
		if len(oc.failures) == 0 {
			continue
		}
		failed++
		reportFailure(stdout, oc.seed, *large, oc.failures, *shrink)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d seeds failed", failed, *seeds)
	}
	fmt.Fprintf(stdout, "ok: %d seeds, %d scenario runs, all oracles passed\n",
		*seeds, *seeds*3)
	return nil
}

// checkOne replays a single seed (optionally under a repro keep-mask)
// and reports in detail.
func checkOne(stdout io.Writer, seed int64, large bool, mask string, shrink bool) error {
	rep, err := harness.ParseRepro(seed, mask)
	if err != nil {
		return err
	}
	rep.Large = large
	sc := rep.Scenario()
	fmt.Fprintf(stdout, "scenario: %s\n", sc)
	for i, j := range sc.Jobs {
		fmt.Fprintf(stdout, "  job[%d]   %-10s %s  size=%d  submit=%v lead=%v\n",
			i, j.Kind, j.File, j.Size, j.Submit, j.Lead)
	}
	for i, f := range sc.Faults {
		fmt.Fprintf(stdout, "  fault[%d] %-14s node=%d at=%v\n", i, f.Kind, f.Node, f.At)
	}
	r := harness.RunScenario(sc, "DYRS")
	fmt.Fprintf(stdout, "DYRS run: completed=%d/%d stats=%+v trace=%.12s…\n",
		len(r.Completed), r.Submitted, r.Stats, r.TraceHash)
	failures := harness.CheckScenario(sc)
	if len(failures) == 0 {
		fmt.Fprintf(stdout, "ok: seed %d passed all oracles\n", seed)
		return nil
	}
	// A repro replay is already reduced; only shrink the full scenario.
	reportFailure(stdout, seed, large, failures, shrink && mask == "")
	return fmt.Errorf("seed %d failed %d oracle check(s)", seed, len(failures))
}

// reportFailure prints a seed's oracle violations and, when asked, the
// shrunk reproduction command.
func reportFailure(stdout io.Writer, seed int64, large bool, failures []harness.Failure, shrink bool) {
	fmt.Fprintf(stdout, "FAIL seed %d (%d violations):\n", seed, len(failures))
	for _, f := range failures {
		fmt.Fprintf(stdout, "  %s\n", f)
	}
	if !shrink {
		return
	}
	oracle := harness.FailedOracles(failures)[0]
	rep := harness.Shrink(seed, large, oracle)
	fmt.Fprintf(stdout, "  shrunk to %d event(s); repro: %s\n", rep.Events(), rep.Command())
}
