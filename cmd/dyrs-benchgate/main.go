// Command dyrs-benchgate enforces the repository's committed benchmark
// baseline. It parses standard Go benchmark output (`go test -bench`),
// takes the per-benchmark median ns/op across -count repetitions, and
// compares it against BENCH_BASELINE.json, failing with a non-zero exit
// when any gated benchmark regressed by more than -threshold. This
// replaces the advisory-only benchstat comparison the CI bench job used
// to run: a regression now fails the build instead of scrolling past in
// a log.
//
// Usage:
//
//	go test -run '^$' -bench 'Scale|SimEngineEvents' -count 6 . > head.txt
//	dyrs-benchgate head.txt                    # gate vs BENCH_BASELINE.json
//	dyrs-benchgate -write head.txt             # (re)generate the baseline
//	dyrs-benchgate -inject 2.0 head.txt        # self-test: must fail
//
// Benchmarks present in the baseline but missing from the input fail
// the gate (so a gated benchmark cannot be silently deleted); new
// benchmarks absent from the baseline are reported but do not fail.
// The baseline records the Go version and platform it was measured on;
// numbers from a different runner class are comparable only loosely, so
// maintainers regenerate with -write when the reference hardware moves.
//
// -inject multiplies every head median by the given factor before
// comparing. CI uses it to prove the gate actually trips: a run with
// -inject 2.0 simulating a 2x slowdown must exit non-zero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// baselineSchema versions BENCH_BASELINE.json so the gate rejects
// documents written by an incompatible tool.
const baselineSchema = "dyrs-benchgate/v1"

// Baseline is the committed reference document.
type Baseline struct {
	Schema    string          `json:"schema"`
	Note      string          `json:"note,omitempty"`
	GoVersion string          `json:"go_version,omitempty"`
	GOOS      string          `json:"goos,omitempty"`
	GOARCH    string          `json:"goarch,omitempty"`
	Entries   []BaselineEntry `json:"entries"`
}

// BaselineEntry is one gated benchmark's reference timing.
type BaselineEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its dependencies injected, so tests can drive the
// whole command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dyrs-benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_BASELINE.json", "committed baseline document")
	threshold := fs.Float64("threshold", 0.15, "fractional slowdown that fails the gate")
	write := fs.Bool("write", false, "write the baseline from the input instead of gating")
	inject := fs.Float64("inject", 1.0, "multiply head medians by this factor (gate self-test)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	head, err := readBenchmarks(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "dyrs-benchgate:", err)
		return 2
	}
	if len(head) == 0 {
		fmt.Fprintln(stderr, "dyrs-benchgate: no benchmark results in input")
		return 2
	}
	medians := medianByName(head)
	for name := range medians {
		medians[name] *= *inject
	}

	if *write {
		if err := writeBaseline(*baselinePath, medians); err != nil {
			fmt.Fprintln(stderr, "dyrs-benchgate:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s with %d benchmark(s)\n", *baselinePath, len(medians))
		return 0
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "dyrs-benchgate:", err)
		return 2
	}
	rep := gate(base, medians, *threshold)
	fmt.Fprint(stdout, rep.String())
	if len(rep.Failures) > 0 {
		fmt.Fprintf(stderr, "dyrs-benchgate: FAIL: %d benchmark(s) regressed past %.0f%% (regenerate the baseline with -write only for intentional changes)\n",
			len(rep.Failures), *threshold*100)
		return 1
	}
	return 0
}

// readBenchmarks parses benchmark output from the named files, or from
// stdin when none are given.
func readBenchmarks(paths []string) (map[string][]float64, error) {
	if len(paths) == 0 {
		return parseBench(os.Stdin)
	}
	all := map[string][]float64{}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		m, err := parseBench(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		for name, xs := range m {
			all[name] = append(all[name], xs...)
		}
	}
	return all, nil
}

// parseBench extracts (benchmark name, ns/op) samples from Go benchmark
// text output. The trailing -GOMAXPROCS suffix is stripped so baselines
// survive runner core-count changes.
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = append(out[name], ns)
	}
	return out, sc.Err()
}

// medianByName reduces each benchmark's samples to their median —
// robust against the occasional slow repetition that a mean would
// smear across the gate.
func medianByName(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		out[name] = median(xs)
	}
	return out
}

// median returns the middle sample (mean of the middle two for even
// counts). The input is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// GateRow is one benchmark's comparison against its baseline entry.
type GateRow struct {
	Name     string
	BaseNs   float64
	HeadNs   float64
	Delta    float64 // (head-base)/base; NaN-free because base > 0 is enforced
	Failed   bool
	Missing  bool // in baseline but absent from input
	Unjudged bool // in input but absent from baseline
}

// GateReport is the full comparison outcome.
type GateReport struct {
	Rows     []GateRow
	Failures []string
}

// gate compares head medians against the baseline. Every baseline entry
// must be present and within threshold; extra head benchmarks are
// reported but never fail.
func gate(base *Baseline, head map[string]float64, threshold float64) *GateReport {
	rep := &GateReport{}
	for _, e := range base.Entries {
		row := GateRow{Name: e.Name, BaseNs: e.NsPerOp}
		h, ok := head[e.Name]
		switch {
		case !ok:
			row.Missing, row.Failed = true, true
		case e.NsPerOp <= 0:
			row.Failed = true // corrupt baseline entry: refuse to divide by it
		default:
			row.HeadNs = h
			row.Delta = (h - e.NsPerOp) / e.NsPerOp
			row.Failed = row.Delta > threshold
		}
		if row.Failed {
			rep.Failures = append(rep.Failures, e.Name)
		}
		rep.Rows = append(rep.Rows, row)
	}
	var extra []string
	for name := range head {
		if !baselineHas(base, name) {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		rep.Rows = append(rep.Rows, GateRow{Name: name, HeadNs: head[name], Unjudged: true})
	}
	return rep
}

func baselineHas(base *Baseline, name string) bool {
	for _, e := range base.Entries {
		if e.Name == name {
			return true
		}
	}
	return false
}

// String renders the comparison as a fixed-width table.
func (r *GateReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %15s %15s %9s\n", "benchmark", "baseline", "head", "delta")
	for _, row := range r.Rows {
		switch {
		case row.Missing:
			fmt.Fprintf(&b, "%-40s %15s %15s %9s  FAIL (missing from input)\n",
				row.Name, fmtNs(row.BaseNs), "-", "-")
		case row.Unjudged:
			fmt.Fprintf(&b, "%-40s %15s %15s %9s  (not in baseline)\n",
				row.Name, "-", fmtNs(row.HeadNs), "-")
		default:
			status := ""
			if row.Failed {
				status = "  FAIL"
			}
			fmt.Fprintf(&b, "%-40s %15s %15s %+8.1f%%%s\n",
				row.Name, fmtNs(row.BaseNs), fmtNs(row.HeadNs), row.Delta*100, status)
		}
	}
	return b.String()
}

// fmtNs renders nanoseconds with a readable unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}

// loadBaseline reads and validates the committed baseline.
func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base.Schema != baselineSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, base.Schema, baselineSchema)
	}
	if len(base.Entries) == 0 {
		return nil, fmt.Errorf("%s: no baseline entries", path)
	}
	return &base, nil
}

// writeBaseline emits a fresh baseline document from head medians, in
// sorted name order so regeneration diffs cleanly.
func writeBaseline(path string, medians map[string]float64) error {
	base := Baseline{
		Schema:    baselineSchema,
		Note:      "Reference medians for dyrs-benchgate; regenerate with `dyrs-benchgate -write` on the reference runner class after intentional performance changes.",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	names := make([]string, 0, len(medians))
	for name := range medians {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base.Entries = append(base.Entries, BaselineEntry{Name: name, NsPerOp: medians[name]})
	}
	data, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
