package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: dyrs
cpu: Example CPU @ 2.10GHz
BenchmarkSimEngineEvents-8   	  200000	      5000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimEngineEvents-8   	  200000	      5200 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimEngineEvents-8   	  200000	      4900 ns/op	       0 B/op	       0 allocs/op
BenchmarkScale1k-8           	       1	9000000000 ns/op	2260176 events/sec	 7.6e+08 B/op	12000000 allocs/op
BenchmarkScale1k-8           	       1	9100000000 ns/op	2235000 events/sec	 7.6e+08 B/op	12000000 allocs/op
PASS
ok  	dyrs	30.1s
`

func TestParseBenchStripsCPUSuffixAndCollectsSamples(t *testing.T) {
	m, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m["BenchmarkSimEngineEvents"]); got != 3 {
		t.Errorf("engine samples = %d, want 3", got)
	}
	if got := len(m["BenchmarkScale1k"]); got != 2 {
		t.Errorf("scale1k samples = %d, want 2", got)
	}
	if _, ok := m["BenchmarkSimEngineEvents-8"]; ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %g, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
}

func testBaseline() *Baseline {
	return &Baseline{
		Schema: baselineSchema,
		Entries: []BaselineEntry{
			{Name: "BenchmarkScale1k", NsPerOp: 9e9},
			{Name: "BenchmarkSimEngineEvents", NsPerOp: 5000},
		},
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	head := map[string]float64{
		"BenchmarkScale1k":         9.9e9, // +10%
		"BenchmarkSimEngineEvents": 4800,  // faster
	}
	rep := gate(testBaseline(), head, 0.15)
	if len(rep.Failures) != 0 {
		t.Errorf("gate failed within threshold: %v", rep.Failures)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	head := map[string]float64{
		"BenchmarkScale1k":         2 * 9e9, // injected 2x slowdown
		"BenchmarkSimEngineEvents": 5000,
	}
	rep := gate(testBaseline(), head, 0.15)
	if len(rep.Failures) != 1 || rep.Failures[0] != "BenchmarkScale1k" {
		t.Errorf("failures = %v, want exactly BenchmarkScale1k", rep.Failures)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	head := map[string]float64{"BenchmarkScale1k": 9e9}
	rep := gate(testBaseline(), head, 0.15)
	if len(rep.Failures) != 1 || rep.Failures[0] != "BenchmarkSimEngineEvents" {
		t.Errorf("failures = %v, want the deleted benchmark", rep.Failures)
	}
}

func TestGateReportsNewBenchmarkWithoutFailing(t *testing.T) {
	head := map[string]float64{
		"BenchmarkScale1k":         9e9,
		"BenchmarkSimEngineEvents": 5000,
		"BenchmarkBrandNew":        123,
	}
	rep := gate(testBaseline(), head, 0.15)
	if len(rep.Failures) != 0 {
		t.Errorf("new benchmark failed the gate: %v", rep.Failures)
	}
	if !strings.Contains(rep.String(), "BenchmarkBrandNew") {
		t.Error("new benchmark not mentioned in the report")
	}
}

// TestEndToEndWriteGateInject drives the command as CI does: write a
// baseline from a head file, gate the same file (pass), then gate with
// an injected 2x slowdown (must fail) — proving the gate trips.
func TestEndToEndWriteGateInject(t *testing.T) {
	dir := t.TempDir()
	headPath := filepath.Join(dir, "head.txt")
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(headPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-write", "-baseline", basePath, headPath}, &out, &errOut); code != 0 {
		t.Fatalf("-write exited %d: %s", code, errOut.String())
	}
	if code := run([]string{"-baseline", basePath, headPath}, &out, &errOut); code != 0 {
		t.Fatalf("same-numbers gate exited %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", basePath, "-inject", "2.0", headPath}, &out, &errOut); code != 1 {
		t.Fatalf("2x-slowdown gate exited %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Error("failing gate report does not mark FAIL rows")
	}
}

func TestLoadBaselineRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "base.json")
	if err := os.WriteFile(p, []byte(`{"schema":"other/v9","entries":[{"name":"x","ns_per_op":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(p); err == nil {
		t.Error("wrong schema accepted")
	}
}
