// Command dyrs-bench regenerates every table and figure of the DYRS
// paper's evaluation and prints them as text tables/series.
//
// Usage:
//
//	dyrs-bench [-seed N] [-only fig4,table1,...]
//
// Experiment names: fig1 fig2 fig3 fig4 table1 fig5 fig6 fig7 fig8 fig9
// table2 fig10 fig11 (aliases: hive=fig4, swim=table1), plus the
// extension studies: motivation (§I read-speedup micro-comparison),
// order (future-work migration ordering policies), hotcold (cache vs
// migration on hot/cold data), iterative (cold-start penalty of
// iterative jobs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dyrs"
	"dyrs/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed; identical seeds give identical results")
	only := flag.String("only", "", "comma-separated experiment subset (default: all)")
	asJSON := flag.Bool("json", false, "emit every experiment as one JSON document instead of text tables")
	flag.Parse()

	if *asJSON {
		rep, err := experiments.RunAll(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
		if want["hive"] {
			want["fig4"] = true
		}
		if want["swim"] {
			want["table1"] = true
		}
	}
	sel := func(names ...string) bool {
		if len(want) == 0 {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	start := time.Now()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
		os.Exit(1)
	}

	if sel("fig1", "fig2", "fig3") {
		tr := dyrs.RunTrace(*seed)
		if sel("fig1") {
			fmt.Println(tr.Fig1())
		}
		if sel("fig2") {
			fmt.Println(tr.Fig2())
		}
		if sel("fig3") {
			fmt.Println(tr.Fig3())
		}
	}

	if sel("fig4") {
		rep, err := dyrs.RunHive(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if sel("table1", "fig5", "fig6", "fig7") {
		rep, err := dyrs.RunSWIM(*seed)
		if err != nil {
			fail(err)
		}
		if sel("table1") {
			fmt.Println(rep.TableI())
		}
		if sel("fig5") {
			fmt.Println(rep.Fig5())
		}
		if sel("fig6") {
			fmt.Println(rep.Fig6())
		}
		if sel("fig7") {
			fmt.Println(rep.Fig7())
		}
	}

	if sel("fig8") {
		rep, err := dyrs.RunFig8(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if sel("table2", "fig9") {
		rep, err := dyrs.RunTableII(*seed)
		if err != nil {
			fail(err)
		}
		if sel("table2") {
			fmt.Println(rep)
		}
		if sel("fig9") {
			fmt.Println(rep.Fig9String())
		}
	}

	if sel("fig10") {
		rep, err := dyrs.RunFig10(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if sel("fig11") {
		rep, err := dyrs.RunFig11(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if sel("motivation") {
		rep, err := dyrs.RunMotivation(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if sel("order") {
		rep, err := dyrs.RunOrderPolicies(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if sel("hotcold") {
		rep, err := dyrs.RunHotCold(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if sel("iterative") {
		rep, err := dyrs.RunIterative(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	fmt.Printf("(all requested experiments regenerated in %.2fs wall-clock)\n",
		time.Since(start).Seconds())
}
