// Command dyrs-bench regenerates every table and figure of the DYRS
// paper's evaluation and prints them as text tables/series.
//
// Usage:
//
//	dyrs-bench [-seed N] [-jobs N] [-only fig4,table1,...] [-json] [-verify] [-bench]
//
// Experiments are independent seeded simulations, so they run on a
// worker pool (-jobs, default GOMAXPROCS) with output merged in paper
// order — the result is byte-identical at any worker count. Experiment
// names: fig1 fig2 fig3 fig4 table1 fig5 fig6 fig7 fig8 fig9 table2
// fig10 fig11 plus the canonical group names (trace=figs1-3, hive=fig4,
// swim=table1+figs5-7) and the extension studies: motivation (§I
// read-speedup micro-comparison), order (future-work migration ordering
// policies), hotcold (cache vs migration on hot/cold data), iterative
// (cold-start penalty of iterative jobs). -list prints them all.
//
// -verify runs every experiment twice — serial and parallel, same
// seed — and fails unless each experiment's canonical JSON hashes
// identically, turning "identical seeds give identical results" into a
// machine-checked invariant.
//
// -bench times every experiment -benchreps times and writes a canonical
// timing document (schema dyrs-bench/v3) to -benchout (default
// BENCH.json), which CI uploads per PR so suite-level performance
// regressions are visible next to the Go microbenchmarks. The macro
// pass includes the sharded-engine scaleshard1k preset; -shards sets
// its execution-worker count (0: GOMAXPROCS).
//
// -cpuprofile/-memprofile write pprof profiles of whatever mode ran,
// for digging into where simulation time and memory actually go;
// -mutexprofile/-blockprofile add contention profiles, the tools for
// judging how much wall-clock the sharded engine's window barriers
// actually cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dyrs/internal/experiments"
	"dyrs/internal/obs"
	"dyrs/internal/runner"
)

// main delegates to run so deferred profile flushes happen before exit.
func main() { os.Exit(run()) }

func run() int {
	seed := flag.Int64("seed", 42, "simulation seed; identical seeds give identical results")
	only := flag.String("only", "", "comma-separated experiment subset (default: all)")
	asJSON := flag.Bool("json", false, "emit every experiment as one JSON document instead of text tables")
	jobs := flag.Int("jobs", 0, "max experiments running concurrently (0 = GOMAXPROCS)")
	verify := flag.Bool("verify", false, "run every experiment serially and in parallel and fail on any result divergence")
	bench := flag.Bool("bench", false, "time every experiment and write a canonical timing document to -benchout")
	benchOut := flag.String("benchout", "BENCH.json", "output path for the -bench timing document")
	benchReps := flag.Int("benchreps", 3, "repetitions per experiment for -bench")
	benchMacro := flag.Bool("macro", true, "with -bench, also run the datacenter-scale macro presets (scale100, scale1k, scaleshard1k)")
	shards := flag.Int("shards", 0, "execution workers for the sharded-engine macro preset (0 = GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	quiet := flag.Bool("q", false, "suppress per-experiment progress on stderr")
	manifestPath := flag.String("manifest", "", "write a run-manifest JSON (seed, flags, build, wall time, peak RSS) to this file")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			names := e.Name
			for _, a := range e.Aliases {
				names += "," + a
			}
			fmt.Printf("%-32s %s\n", names, e.Summary)
		}
		return 0
	}

	code := 0
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
		return 1
	}
	progress := progressPrinter(*quiet)

	// The manifest is written on the way out so it captures the full
	// wall time and peak RSS of whatever mode ran.
	if *manifestPath != "" {
		manifest := obs.NewManifest("dyrs-bench")
		manifest.Seed = *seed
		manifest.CaptureFlags(flag.CommandLine)
		defer func() {
			manifest.Finish(0)
			f, err := os.Create(*manifestPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
				return
			}
			err = manifest.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
			}
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
				code = 1
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
				code = 1
			}
		}()
	}
	// Contention profiling must be switched on before any workload runs;
	// rate 1 records every event, affordable because simulation work is
	// long-running relative to its synchronization.
	writeLookup := func(path, name string) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
			code = 1
			return
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
			code = 1
		}
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeLookup(*mutexProfile, "mutex")
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookup(*blockProfile, "block")
	}

	selected, sel, err := experiments.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyrs-bench:", err)
		return 2
	}

	switch {
	case *verify:
		if *only != "" {
			fmt.Fprintln(os.Stderr, "dyrs-bench: -verify always checks every experiment; ignoring -only")
		}
		rep, err := experiments.VerifyDeterminism(*seed, *jobs, progress)
		if err != nil {
			return fail(err)
		}
		printVerify(rep)
		if !rep.OK() {
			return 1
		}

	case *bench:
		if *only != "" {
			fmt.Fprintln(os.Stderr, "dyrs-bench: -bench always times every experiment; ignoring -only")
		}
		rep, err := experiments.RunBench(*seed, *benchReps, *jobs, *shards, *benchMacro, progress)
		if err != nil {
			return fail(err)
		}
		f, err := os.Create(*benchOut)
		if err != nil {
			return fail(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		printBench(rep, *benchOut)

	case *asJSON:
		if *only != "" {
			fmt.Fprintln(os.Stderr, "dyrs-bench: -json always emits the full report; ignoring -only")
		}
		rep, err := experiments.RunAllParallel(*seed, *jobs, progress)
		if err != nil {
			return fail(err)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return fail(err)
		}

	default:
		start := time.Now()
		results := runner.Run(experimentJobs(selected, *seed),
			runner.Options{Jobs: *jobs, Progress: progress})
		if err := runner.FirstError(results); err != nil {
			return fail(err)
		}
		for i, res := range results {
			for _, section := range selected[i].Render(res.Value, sel) {
				fmt.Println(section)
			}
		}
		fmt.Printf("(all requested experiments regenerated in %.2fs wall-clock)\n",
			time.Since(start).Seconds())
	}
	return code
}

// experimentJobs adapts selected experiments to runner jobs.
func experimentJobs(selected []experiments.Experiment, seed int64) []runner.Job {
	out := make([]runner.Job, len(selected))
	for i, exp := range selected {
		exp := exp
		out[i] = runner.Job{
			Name: exp.Name,
			Run:  func() (any, error) { return exp.Run(seed) },
		}
	}
	return out
}

// progressPrinter returns a runner progress callback that narrates
// start/done events on stderr (stdout stays reserved for results, so
// byte-for-byte output comparisons are unaffected).
func progressPrinter(quiet bool) func(runner.Event) {
	if quiet {
		return nil
	}
	return func(ev runner.Event) {
		switch ev.Kind {
		case runner.EventStart:
			fmt.Fprintf(os.Stderr, "dyrs-bench: start %s\n", ev.Name)
		case runner.EventDone:
			status := ""
			if ev.Err != nil {
				status = " FAILED"
			}
			fmt.Fprintf(os.Stderr, "dyrs-bench: done  %-12s (%d/%d) %.2fs%s\n",
				ev.Name, ev.Done, ev.Total, ev.Elapsed.Seconds(), status)
		}
	}
}

// printVerify renders the determinism report.
func printVerify(rep experiments.VerifyReport) {
	fmt.Printf("determinism check: seed %d, serial vs %d-way parallel\n", rep.Seed, rep.Jobs)
	for _, row := range rep.Rows {
		status := "ok"
		if !row.OK() {
			status = fmt.Sprintf("DIVERGED (serial %s != parallel %s)",
				row.SerialHash[:12], row.ParallelHash[:12])
		}
		fmt.Printf("  %-12s %s  sha256:%s  serial %.2fs / parallel %.2fs\n",
			row.Name, status, row.SerialHash[:12], row.Serial.Seconds(), row.Parallel.Seconds())
	}
	if div := rep.Divergent(); len(div) > 0 {
		fmt.Printf("FAIL: %d experiment(s) diverged: %v\n", len(div), div)
	} else {
		fmt.Printf("PASS: all %d experiments bit-identical serial vs parallel\n", len(rep.Rows))
	}
}

// printBench renders a one-line-per-experiment timing summary.
func printBench(rep *experiments.BenchReport, path string) {
	fmt.Printf("suite benchmark: seed %d, %d rep(s), jobs=%d, %s %s/%s\n",
		rep.Seed, rep.Reps, rep.Jobs, rep.GoVersion, rep.GOOS, rep.GOARCH)
	for _, row := range rep.Rows {
		fmt.Printf("  %-12s min %7.3fs  mean %7.3fs  max %7.3fs\n",
			row.Name, row.MinSeconds, row.MeanSeconds, row.MaxSeconds)
	}
	for _, m := range rep.Macro {
		detail := fmt.Sprintf("%d blocks", m.Blocks)
		if m.Shards > 0 {
			detail = fmt.Sprintf("%d shards, %d workers", m.Shards, m.Workers)
		}
		fmt.Printf("  %-12s %d nodes, %s: %.1fs, %.2fM events/sec, %.0f MiB sys\n",
			m.Scenario, m.Nodes, detail, m.Seconds, m.EventsPerSec/1e6, m.PeakSysMiB)
	}
	fmt.Printf("total %.2fs wall-clock; wrote %s\n", rep.TotalSeconds, path)
}
