package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	jobsCSV := filepath.Join(dir, "jobs.csv")
	var out, errOut bytes.Buffer
	args := []string{"-seed", "1", "-servers", "8", "-hours", "2", "-jobs", "50", "-jobs-csv", jobsCSV}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v) failed: %v\nstderr: %s", args, err, errOut.String())
	}
	if out.Len() == 0 {
		t.Fatal("no output")
	}
	if !strings.Contains(out.String(), "wrote "+jobsCSV) {
		t.Errorf("missing export confirmation:\n%s", out.String())
	}
}

func TestRunRejectsBadLoadPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-load", filepath.Join(t.TempDir(), "missing.json")}, &out, &errOut); err == nil {
		t.Fatal("want error for missing -load file")
	}
}
