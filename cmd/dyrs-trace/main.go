// Command dyrs-trace runs the Google-cluster-trace motivation analyses
// of the paper's §II (Figs. 1-3) over a synthetic trace calibrated to
// the published statistics.
//
// Usage:
//
//	dyrs-trace [-seed N] [-servers N] [-hours H] [-jobs N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dyrs/internal/experiments"
	"dyrs/internal/gtrace"
	"dyrs/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dyrs-trace:", err)
		os.Exit(1)
	}
}

// run executes the analyses end to end; tests drive it in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dyrs-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "trace synthesis seed")
	servers := fs.Int("servers", 40, "number of servers to synthesize")
	hours := fs.Int("hours", 24, "trace span in hours")
	jobs := fs.Int("jobs", 2000, "number of jobs for the lead-time analysis")
	jsonOut := fs.String("json", "", "also write the full trace as JSON to this file")
	utilCSV := fs.String("util-csv", "", "also write per-server utilization samples as CSV to this file")
	jobsCSV := fs.String("jobs-csv", "", "also write the job lead/read records as CSV to this file")
	loadJSON := fs.String("load", "", "analyze a trace loaded from this JSON file instead of synthesizing one")
	manifestPath := fs.String("manifest", "", "write a run-manifest JSON (seed, flags, build, wall time, peak RSS) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("dyrs-trace")
		manifest.Seed = *seed
		manifest.CaptureFlags(fs)
	}

	var trace *gtrace.Trace
	if *loadJSON != "" {
		f, err := os.Open(*loadJSON)
		if err != nil {
			return err
		}
		trace, err = gtrace.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cfg := gtrace.DefaultConfig()
		cfg.Seed = *seed
		cfg.Servers = *servers
		cfg.Duration = time.Duration(*hours) * time.Hour
		cfg.Jobs = *jobs
		trace = gtrace.Generate(cfg)
	}

	rep := experiments.TraceReport{Trace: trace}
	fmt.Fprintln(stdout, rep.Fig1())
	fmt.Fprintln(stdout, rep.Fig2())
	fmt.Fprintln(stdout, rep.Fig3())

	export := func(path string, write func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", path)
		return nil
	}
	if err := export(*jsonOut, func(f *os.File) error { return trace.WriteJSON(f) }); err != nil {
		return err
	}
	if err := export(*utilCSV, func(f *os.File) error { return trace.WriteUtilizationCSV(f) }); err != nil {
		return err
	}
	if err := export(*jobsCSV, func(f *os.File) error { return trace.WriteJobsCSV(f) }); err != nil {
		return err
	}
	if manifest != nil {
		manifest.Finish(0)
		if err := export(*manifestPath, func(f *os.File) error { return manifest.WriteJSON(f) }); err != nil {
			return err
		}
	}
	return nil
}
