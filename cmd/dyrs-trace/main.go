// Command dyrs-trace runs the Google-cluster-trace motivation analyses
// of the paper's §II (Figs. 1-3) over a synthetic trace calibrated to
// the published statistics.
//
// Usage:
//
//	dyrs-trace [-seed N] [-servers N] [-hours H] [-jobs N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dyrs/internal/experiments"
	"dyrs/internal/gtrace"
)

func main() {
	seed := flag.Int64("seed", 1, "trace synthesis seed")
	servers := flag.Int("servers", 40, "number of servers to synthesize")
	hours := flag.Int("hours", 24, "trace span in hours")
	jobs := flag.Int("jobs", 2000, "number of jobs for the lead-time analysis")
	jsonOut := flag.String("json", "", "also write the full trace as JSON to this file")
	utilCSV := flag.String("util-csv", "", "also write per-server utilization samples as CSV to this file")
	jobsCSV := flag.String("jobs-csv", "", "also write the job lead/read records as CSV to this file")
	loadJSON := flag.String("load", "", "analyze a trace loaded from this JSON file instead of synthesizing one")
	flag.Parse()

	var trace *gtrace.Trace
	if *loadJSON != "" {
		f, err := os.Open(*loadJSON)
		if err != nil {
			fatal(err)
		}
		trace, err = gtrace.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		cfg := gtrace.DefaultConfig()
		cfg.Seed = *seed
		cfg.Servers = *servers
		cfg.Duration = time.Duration(*hours) * time.Hour
		cfg.Jobs = *jobs
		trace = gtrace.Generate(cfg)
	}

	rep := experiments.TraceReport{Trace: trace}
	fmt.Println(rep.Fig1())
	fmt.Println(rep.Fig2())
	fmt.Println(rep.Fig3())

	export := func(path string, write func(f *os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	export(*jsonOut, func(f *os.File) error { return trace.WriteJSON(f) })
	export(*utilCSV, func(f *os.File) error { return trace.WriteUtilizationCSV(f) })
	export(*jobsCSV, func(f *os.File) error { return trace.WriteJobsCSV(f) })
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyrs-trace:", err)
	os.Exit(1)
}
