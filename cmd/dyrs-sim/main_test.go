package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sortArgs returns a fast single-job scenario (2 blocks, short lead).
func sortArgs(extra ...string) []string {
	args := []string{"-policy", "DYRS", "-size", "0.5", "-lead", "2s", "-seed", "1"}
	return append(args, extra...)
}

func runOK(t *testing.T, args []string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v) failed: %v\nstderr: %s", args, err, errOut.String())
	}
	return out.String()
}

func TestRunSortSmoke(t *testing.T) {
	out := runOK(t, sortArgs())
	for _, want := range []string{"policy      : DYRS", "end-to-end", "migration   :"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-policy", "bogus"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("want unknown-policy error, got %v", err)
	}
}

func TestRunRejectsUnknownTraceFormat(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(sortArgs("-trace", "x.json", "-trace-format", "protobuf"), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown trace format") {
		t.Fatalf("want unknown-trace-format error, got %v", err)
	}
}

func TestRunRejectsTraceWithHive(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-workload", "hive", "-trace", "x.json"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("want unsupported-combination error, got %v", err)
	}
}

// TestTraceDeterminism is the PR's headline acceptance check: the same
// seed must produce a byte-identical trace file across runs.
func TestTraceDeterminism(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		out := runOK(t, sortArgs("-trace", p))
		if !strings.Contains(out, "trace summary") {
			t.Errorf("output missing trace summary:\n%s", out)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("trace file is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace files differ across identical runs (%d vs %d bytes)", len(a), len(b))
	}

	var doc struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Spans    []struct {
			Cat string `json:"cat"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.Schema != "dyrs-trace/v2" {
		t.Errorf("schema = %q, want dyrs-trace/v2", doc.Schema)
	}
	if doc.Counters["migration.completed"] == 0 {
		t.Errorf("no completed migrations recorded: %v", doc.Counters)
	}
	var migs int
	for _, s := range doc.Spans {
		if s.Cat == "migration" {
			migs++
		}
	}
	if migs == 0 {
		t.Error("no migration spans in trace")
	}
}

// TestTracePerfetto round-trips the Chrome trace-event output and checks
// it has the structure Perfetto needs: metadata, complete spans with
// pid/tid/ts, counters.
func TestTracePerfetto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runOK(t, sortArgs("-trace", path, "-trace-format", "perfetto"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete, counters int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			pids[ev.PID] = true
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("span %q has negative ts/dur: %+v", ev.Name, ev)
			}
		case "C":
			counters++
		}
	}
	if meta == 0 || complete == 0 || counters == 0 {
		t.Fatalf("want metadata, span and counter events; got M=%d X=%d C=%d", meta, complete, counters)
	}
	if len(pids) < 2 {
		t.Errorf("spans confined to %d process(es); want master plus workers", len(pids))
	}
}

func TestTelemetryCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.csv")
	runOK(t, sortArgs("-telemetry-csv", path))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "series,seconds,value" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("only %d CSV lines; expected samples for every node/series", len(lines))
	}
	for _, prefix := range []string{"disk:", "nic:", "mem:"} {
		found := false
		for _, l := range lines[1:] {
			if strings.HasPrefix(l, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q series in CSV", prefix)
		}
	}
}

// TestTraceSampling checks the deterministic sampler end to end: the
// sampled file is stable across runs and shard counts, strictly smaller
// than the full trace, and keeps counters exact.
func TestTraceSampling(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	runOK(t, sortArgs("-trace", full))

	paths := []string{
		filepath.Join(dir, "s1.json"),
		filepath.Join(dir, "s1b.json"),
		filepath.Join(dir, "s2.json"),
	}
	runOK(t, sortArgs("-trace", paths[0], "-trace-sample", "4"))
	runOK(t, sortArgs("-trace", paths[1], "-trace-sample", "4"))
	runOK(t, sortArgs("-trace", paths[2], "-trace-sample", "4", "-shards", "2"))

	read := func(p string) []byte {
		t.Helper()
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := read(paths[0])
	if !bytes.Equal(a, read(paths[1])) {
		t.Error("sampled trace differs across identical runs")
	}
	if !bytes.Equal(a, read(paths[2])) {
		t.Error("sampled trace differs across shard counts")
	}
	if fb := read(full); len(a) >= len(fb) {
		t.Errorf("sampled trace (%d bytes) not smaller than full (%d bytes)", len(a), len(fb))
	}

	var sampled, whole struct {
		SampleN    int              `json:"sample_n"`
		SampledOut uint64           `json:"sampled_out"`
		Counters   map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(a, &sampled); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(read(full), &whole); err != nil {
		t.Fatal(err)
	}
	if sampled.SampleN != 4 {
		t.Errorf("sample_n = %d, want 4", sampled.SampleN)
	}
	if sampled.Counters["migration.completed"] != whole.Counters["migration.completed"] {
		t.Errorf("sampling changed an exact counter: %d vs %d",
			sampled.Counters["migration.completed"], whole.Counters["migration.completed"])
	}
	if sampled.SampledOut == 0 {
		t.Error("sampled run dropped nothing")
	}
}

// TestManifest checks the run manifest records the run's identity.
func TestManifest(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "man.json")
	tr := filepath.Join(dir, "t.json")
	runOK(t, sortArgs("-manifest", p, "-trace", tr))

	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Schema  string            `json:"schema"`
		Tool    string            `json:"tool"`
		Seed    int64             `json:"seed"`
		Flags   map[string]string `json:"flags"`
		Virtual int64             `json:"virtual_ns"`
		PeakRSS int64             `json:"peak_rss_bytes"`
		Schemas map[string]string `json:"schemas"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Schema != "dyrs-manifest/v1" || m.Tool != "dyrs-sim" || m.Seed != 1 {
		t.Errorf("manifest identity wrong: %+v", m)
	}
	if m.Flags["policy"] != "DYRS" || m.Flags["size"] != "0.5" {
		t.Errorf("manifest flags wrong: %v", m.Flags)
	}
	if m.Virtual <= 0 || m.PeakRSS <= 0 {
		t.Errorf("manifest missing measurements: virtual=%d rss=%d", m.Virtual, m.PeakRSS)
	}
	if m.Schemas["trace"] != "dyrs-trace/v2" {
		t.Errorf("manifest schemas = %v", m.Schemas)
	}
}

// TestMetricsEndpointDoesNotPerturb runs the same scenario with and
// without the live endpoint: results and trace must be identical, and
// the endpoint must serve an OpenMetrics exposition while alive.
func TestMetricsEndpointDoesNotPerturb(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.json")
	live := filepath.Join(dir, "live.json")

	base := runOK(t, sortArgs("-trace", plain))
	out := runOK(t, sortArgs("-trace", live, "-metrics-addr", "127.0.0.1:0"))
	if !strings.Contains(out, "metrics     : http://127.0.0.1:") {
		t.Errorf("output missing endpoint line:\n%s", out)
	}
	// Strip the endpoint line (its port varies) and the trace path line
	// (different file names); everything else must match.
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "metrics     :") || strings.HasPrefix(line, "trace       :") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	if got, want := strip(out), strip(base); got != want {
		t.Errorf("live endpoint changed the run output:\n--- without:\n%s\n--- with:\n%s", want, got)
	}
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("live endpoint changed the trace bytes")
	}
}
