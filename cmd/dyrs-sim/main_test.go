package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sortArgs returns a fast single-job scenario (2 blocks, short lead).
func sortArgs(extra ...string) []string {
	args := []string{"-policy", "DYRS", "-size", "0.5", "-lead", "2s", "-seed", "1"}
	return append(args, extra...)
}

func runOK(t *testing.T, args []string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v) failed: %v\nstderr: %s", args, err, errOut.String())
	}
	return out.String()
}

func TestRunSortSmoke(t *testing.T) {
	out := runOK(t, sortArgs())
	for _, want := range []string{"policy      : DYRS", "end-to-end", "migration   :"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-policy", "bogus"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("want unknown-policy error, got %v", err)
	}
}

func TestRunRejectsUnknownTraceFormat(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(sortArgs("-trace", "x.json", "-trace-format", "protobuf"), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown trace format") {
		t.Fatalf("want unknown-trace-format error, got %v", err)
	}
}

func TestRunRejectsTraceWithHive(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-workload", "hive", "-trace", "x.json"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("want unsupported-combination error, got %v", err)
	}
}

// TestTraceDeterminism is the PR's headline acceptance check: the same
// seed must produce a byte-identical trace file across runs.
func TestTraceDeterminism(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		out := runOK(t, sortArgs("-trace", p))
		if !strings.Contains(out, "trace summary") {
			t.Errorf("output missing trace summary:\n%s", out)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("trace file is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace files differ across identical runs (%d vs %d bytes)", len(a), len(b))
	}

	var doc struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Spans    []struct {
			Cat string `json:"cat"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.Schema != "dyrs-trace/v1" {
		t.Errorf("schema = %q, want dyrs-trace/v1", doc.Schema)
	}
	if doc.Counters["migration.completed"] == 0 {
		t.Errorf("no completed migrations recorded: %v", doc.Counters)
	}
	var migs int
	for _, s := range doc.Spans {
		if s.Cat == "migration" {
			migs++
		}
	}
	if migs == 0 {
		t.Error("no migration spans in trace")
	}
}

// TestTracePerfetto round-trips the Chrome trace-event output and checks
// it has the structure Perfetto needs: metadata, complete spans with
// pid/tid/ts, counters.
func TestTracePerfetto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	runOK(t, sortArgs("-trace", path, "-trace-format", "perfetto"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete, counters int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			pids[ev.PID] = true
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("span %q has negative ts/dur: %+v", ev.Name, ev)
			}
		case "C":
			counters++
		}
	}
	if meta == 0 || complete == 0 || counters == 0 {
		t.Fatalf("want metadata, span and counter events; got M=%d X=%d C=%d", meta, complete, counters)
	}
	if len(pids) < 2 {
		t.Errorf("spans confined to %d process(es); want master plus workers", len(pids))
	}
}

func TestTelemetryCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.csv")
	runOK(t, sortArgs("-telemetry-csv", path))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "series,seconds,value" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("only %d CSV lines; expected samples for every node/series", len(lines))
	}
	for _, prefix := range []string{"disk:", "nic:", "mem:"} {
		found := false
		for _, l := range lines[1:] {
			if strings.HasPrefix(l, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q series in CSV", prefix)
		}
	}
}
