// Command dyrs-sim runs one configurable scenario: a Sort job (or a Hive
// query) on a simulated cluster under a chosen policy, with optional
// interference, and prints job timings plus migration statistics.
//
// Examples:
//
//	dyrs-sim -policy DYRS -size 10 -lead 20s -interfere 0
//	dyrs-sim -policy Ignem -workload hive -query q15
//	dyrs-sim -policy HDFS -size 20 -alternate 10s -interfere 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"dyrs"
	"dyrs/internal/cluster"
	"dyrs/internal/experiments"
	"dyrs/internal/sim"
	"dyrs/internal/telemetry"
	"dyrs/internal/workload"
)

func main() {
	policyFlag := flag.String("policy", "DYRS", "HDFS | HDFS-Inputs-in-RAM | Ignem | DYRS | Naive")
	wl := flag.String("workload", "sort", "sort | hive | swim")
	sizeGB := flag.Float64("size", 10, "sort input size in GB")
	query := flag.String("query", "q52", "hive query name (see dyrs.TPCDSQueries)")
	swimJobs := flag.Int("swim-jobs", 50, "number of trace jobs for the swim workload")
	lead := flag.Duration("lead", 10*time.Second, "artificially inserted lead-time")
	interfere := flag.Int("interfere", -1, "node index to run dd-style interference on (-1: none)")
	alternate := flag.Duration("alternate", 0, "alternate interference on/off with this period (0: persistent)")
	workers := flag.Int("workers", 7, "number of worker nodes")
	seed := flag.Int64("seed", 1, "simulation seed")
	showTelemetry := flag.Bool("telemetry", false, "render per-node disk utilization after the run")
	flag.Parse()

	policy := dyrs.Policy(*policyFlag)
	switch policy {
	case dyrs.PolicyHDFS, dyrs.PolicyRAM, dyrs.PolicyIgnem, dyrs.PolicyDYRS, dyrs.PolicyNaive:
	default:
		fmt.Fprintf(os.Stderr, "dyrs-sim: unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}

	if *wl == "hive" {
		runHive(policy, *query, *seed)
		return
	}

	opt := dyrs.DefaultOptions(*seed)
	opt.Workers = *workers
	env := dyrs.NewEnv(policy, opt)
	defer env.Close()

	var col *telemetry.Collector
	if *showTelemetry {
		col = telemetry.Start(env.Cl, env.FS, time.Second)
		defer func() {
			col.Stop()
			fmt.Println("\nper-node disk utilization (one column per second, 0-9 scale):")
			col.RenderDisk(os.Stdout, 100)
		}()
	}

	if *wl == "swim" {
		runSWIM(env, *swimJobs, *seed)
		return
	}

	var stop func()
	if *interfere >= 0 && *interfere < *workers {
		node := env.Cl.Node(cluster.NodeID(*interfere))
		if *alternate > 0 {
			p := cluster.StartAlternating(env.Eng, node, 2, 2.5, *alternate, true)
			stop = p.Stop
		} else {
			inf := node.StartInterference(2, 2.5)
			stop = inf.Stop
		}
		defer stop()
	}

	if err := env.WarmupEstimates(); err != nil {
		fatal(err)
	}
	size := sim.Bytes(*sizeGB * float64(dyrs.GB))
	if err := env.CreateInput("input", size); err != nil {
		fatal(err)
	}
	spec := env.Prepare(dyrs.SortSpec("input", 2**workers, policy.Migrates()))
	spec.ExtraLeadTime = *lead
	j, err := env.FW.Submit(spec)
	if err != nil {
		fatal(err)
	}
	if err := env.WaitJob(j, time.Hour); err != nil {
		fatal(err)
	}

	fmt.Printf("policy      : %s\n", policy)
	fmt.Printf("input       : %s in %d blocks\n", sim.FormatBytes(size), len(j.Tasks))
	fmt.Printf("lead-time   : %v (inserted %v)\n", j.LeadTime(), *lead)
	fmt.Printf("map phase   : %v\n", j.MapPhase())
	fmt.Printf("end-to-end  : %v\n", j.Duration())
	srcs := map[string]int{}
	for _, tr := range j.Tasks {
		srcs[tr.Source.String()]++
	}
	fmt.Printf("read sources: %v\n", srcs)
	if env.Coord != nil {
		st := env.Coord.Stats()
		fmt.Printf("migration   : requested=%d migrated=%d dropped=%d evicted=%d hits=%d missed=%d bytes=%s\n",
			st.Requested, st.Migrated, st.Dropped, st.Evicted,
			st.MemoryHits, st.MissedReads, sim.FormatBytes(st.BytesMigrated))
	}
}

// runSWIM replays a prefix of the SWIM trace workload in the prepared
// environment and prints aggregate job statistics.
func runSWIM(env *dyrs.Env, jobs int, seed int64) {
	cfg := workload.DefaultSWIMConfig()
	cfg.Jobs = jobs
	cfg.TotalInput = sim.Bytes(float64(cfg.TotalInput) * float64(jobs) / 200)
	trace := workload.GenerateSWIM(rand.New(rand.NewSource(seed)), cfg)
	for _, j := range trace {
		if err := env.CreateInput(j.FileName(), j.InputSize); err != nil {
			fatal(err)
		}
	}
	for _, j := range trace {
		spec := env.Prepare(j.Spec(env.Policy.Migrates()))
		env.FW.SubmitAt(sim.Time(j.Arrival), spec, nil)
	}
	if err := env.WaitJobs(len(trace), 4*time.Hour); err != nil {
		fatal(err)
	}
	var total, mapTotal float64
	var tasks int
	for _, j := range env.FW.Results() {
		total += j.Duration().Seconds()
		mapTotal += j.MapPhase().Seconds()
		tasks += len(j.Tasks)
	}
	n := float64(len(env.FW.Results()))
	fmt.Printf("policy      : %s\n", env.Policy)
	fmt.Printf("jobs        : %d (%d map tasks)\n", len(env.FW.Results()), tasks)
	fmt.Printf("avg job     : %.1fs (map phase %.1fs)\n", total/n, mapTotal/n)
	if env.Coord != nil {
		st := env.Coord.Stats()
		fmt.Printf("migration   : migrated=%d dropped=%d hits=%d missed=%d bytes=%s\n",
			st.Migrated, st.Dropped, st.MemoryHits, st.MissedReads, sim.FormatBytes(st.BytesMigrated))
	}
}

func runHive(policy dyrs.Policy, name string, seed int64) {
	for _, q := range dyrs.TPCDSQueries() {
		if q.Name != name {
			continue
		}
		d, err := experiments.RunHiveQuery(q, policy, seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query %s (%s) under %s: %.1fs\n",
			q.Name, sim.FormatBytes(q.InputSize), policy, d)
		return
	}
	fmt.Fprintf(os.Stderr, "dyrs-sim: unknown query %q\n", name)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyrs-sim:", err)
	os.Exit(1)
}
