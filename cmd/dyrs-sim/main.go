// Command dyrs-sim runs one configurable scenario: a Sort job (or a Hive
// query) on a simulated cluster under a chosen policy, with optional
// interference, and prints job timings plus migration statistics.
//
// Examples:
//
//	dyrs-sim -policy DYRS -size 10 -lead 20s -interfere 0
//	dyrs-sim -policy Ignem -workload hive -query q15
//	dyrs-sim -policy HDFS -size 20 -alternate 10s -interfere 1
//	dyrs-sim -policy DYRS -size 10 -trace out.json -trace-format perfetto
//	dyrs-sim -policy DYRS -size 10 -shards 4   # sharded engine, byte-identical output
//	dyrs-sim -policy DYRS -size 10 -trace out.json -trace-sample 64   # deterministic 1-in-64 sampling
//	dyrs-sim -policy DYRS -size 10 -metrics-addr localhost:9090 -manifest man.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"dyrs"
	"dyrs/internal/cluster"
	"dyrs/internal/experiments"
	"dyrs/internal/obs"
	"dyrs/internal/sim"
	"dyrs/internal/telemetry"
	"dyrs/internal/trace"
	"dyrs/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dyrs-sim:", err)
		os.Exit(1)
	}
}

// run executes one scenario end to end. It is main minus the exit code,
// so tests can drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dyrs-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	policyFlag := fs.String("policy", "DYRS", "HDFS | HDFS-Inputs-in-RAM | Ignem | DYRS | Naive")
	wl := fs.String("workload", "sort", "sort | hive | swim")
	sizeGB := fs.Float64("size", 10, "sort input size in GB")
	query := fs.String("query", "q52", "hive query name (see dyrs.TPCDSQueries)")
	swimJobs := fs.Int("swim-jobs", 50, "number of trace jobs for the swim workload")
	lead := fs.Duration("lead", 10*time.Second, "artificially inserted lead-time")
	interfere := fs.Int("interfere", -1, "node index to run dd-style interference on (-1: none)")
	alternate := fs.Duration("alternate", 0, "alternate interference on/off with this period (0: persistent)")
	workers := fs.Int("workers", 7, "number of worker nodes")
	seed := fs.Int64("seed", 1, "simulation seed")
	shards := fs.Int("shards", 1, "engine shards (>1: run on the sharded multi-core engine; output is byte-identical)")
	showTelemetry := fs.Bool("telemetry", false, "render per-node disk utilization after the run")
	telemetryCSV := fs.String("telemetry-csv", "", "write raw telemetry samples (disk/NIC/memory series) to this CSV file")
	tracePath := fs.String("trace", "", "record a trace of the run and write it to this file")
	traceFormat := fs.String("trace-format", "json", "trace file format: json (canonical dyrs-trace/v2) | perfetto (Chrome trace-event JSON)")
	traceSample := fs.Int("trace-sample", 1, "keep 1-in-N root spans (deterministic; counters and histograms stay exact)")
	metricsAddr := fs.String("metrics-addr", "", "serve live OpenMetrics and progress JSON on this address while the run is in flight (e.g. localhost:9090)")
	manifestPath := fs.String("manifest", "", "write a run-manifest JSON (seed, flags, build, wall/virtual time, peak RSS) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("dyrs-sim")
		manifest.Seed = *seed
		manifest.CaptureFlags(fs)
	}

	policy := dyrs.Policy(*policyFlag)
	switch policy {
	case dyrs.PolicyHDFS, dyrs.PolicyRAM, dyrs.PolicyIgnem, dyrs.PolicyDYRS, dyrs.PolicyNaive:
	default:
		return fmt.Errorf("unknown policy %q", *policyFlag)
	}
	switch *traceFormat {
	case "json", "perfetto":
	default:
		return fmt.Errorf("unknown trace format %q (want json or perfetto)", *traceFormat)
	}

	if *wl == "hive" {
		if *tracePath != "" || *telemetryCSV != "" || *shards > 1 || *metricsAddr != "" {
			return fmt.Errorf("-trace, -telemetry-csv, -metrics-addr and -shards are not supported with the hive workload")
		}
		if err := runHive(stdout, policy, *query, *seed); err != nil {
			return err
		}
		return writeManifest(manifest, *manifestPath, 0)
	}

	opt := dyrs.DefaultOptions(*seed)
	opt.Workers = *workers
	opt.Shards = *shards
	// The live endpoint needs an attached tracer for counters and
	// histograms even when no trace file was requested.
	opt.Trace = *tracePath != "" || *metricsAddr != ""
	opt.SampleEvery = *traceSample
	env := dyrs.NewEnv(policy, opt)
	defer env.Close()

	if *metricsAddr != "" {
		srv, err := obs.StartServer(*metricsAddr)
		if err != nil {
			return fmt.Errorf("starting metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "metrics     : http://%s/metrics (progress at /progress)\n", srv.Addr())
		stopTick := startMetricsTicker(env, srv)
		defer stopTick()
	}

	var col *telemetry.Collector
	if *showTelemetry || *telemetryCSV != "" {
		col = telemetry.Start(env.Cl, env.FS, time.Second)
	}

	// The workload proper.
	var runErr error
	if *wl == "swim" {
		runErr = runSWIM(stdout, env, *swimJobs, *seed)
	} else {
		runErr = runSort(stdout, env, policy, *sizeGB, *lead, *interfere, *alternate, *workers)
	}
	if runErr != nil {
		return runErr
	}

	if col != nil {
		col.Stop()
		if *showTelemetry {
			fmt.Fprintln(stdout, "\nper-node disk utilization (one column per second, 0-9 scale):")
			if err := col.RenderDisk(stdout, 100); err != nil {
				return err
			}
		}
		if *telemetryCSV != "" {
			if err := writeFile(*telemetryCSV, col.WriteCSV); err != nil {
				return fmt.Errorf("writing telemetry CSV: %w", err)
			}
		}
	}

	if tr := env.Tracer(); tr.Enabled() && *tracePath != "" {
		write := tr.WriteJSON
		if *traceFormat == "perfetto" {
			write = tr.WriteChromeTrace
		}
		if err := writeFile(*tracePath, write); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(stdout, "\ntrace       : %s (%s)\n", *tracePath, *traceFormat)
		fmt.Fprintf(stdout, "trace summary:\n%s\n", tr.Summarize())
		if manifest != nil {
			manifest.AddSchema("trace", trace.Schema)
		}
	}
	return writeManifest(manifest, *manifestPath, env.Eng.Now())
}

// startMetricsTicker schedules a self-rechaining virtual-time event that
// renders fresh OpenMetrics and progress snapshots for the live endpoint
// once per simulated second. The handler only reads simulation state and
// swaps immutable byte slices into the server, so enabling the endpoint
// never changes a run's results. The returned stop function publishes a
// final snapshot and unchains the ticker.
func startMetricsTicker(env *dyrs.Env, srv *obs.Server) (stop func()) {
	publish := func() {
		tr := env.Tracer()
		var metrics bytes.Buffer
		if err := tr.WriteOpenMetrics(&metrics); err == nil {
			progress := fmt.Sprintf("{\"virtual_ns\":%d,\"spans\":%d,\"instants\":%d}\n",
				int64(env.Eng.Now()), len(tr.Spans()), len(tr.Instants()))
			srv.Publish(metrics.Bytes(), []byte(progress))
		}
	}
	var ev *sim.Event
	var tick func()
	tick = func() {
		publish()
		ev = env.Eng.Schedule(sim.Duration(time.Second), tick)
	}
	ev = env.Eng.Schedule(sim.Duration(time.Second), tick)
	return func() {
		env.Eng.Cancel(ev)
		publish()
	}
}

// writeManifest finalises and writes the run manifest, if one was
// requested. A nil manifest is a no-op.
func writeManifest(m *obs.Manifest, path string, virtual sim.Time) error {
	if m == nil {
		return nil
	}
	m.Finish(virtual)
	if err := writeFile(path, m.WriteJSON); err != nil {
		return fmt.Errorf("writing manifest: %w", err)
	}
	return nil
}

// writeFile creates path and streams write into it, reporting close
// errors (a trace truncated by a full disk should not look successful).
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSort runs the single-job Sort scenario with optional interference.
func runSort(stdout io.Writer, env *dyrs.Env, policy dyrs.Policy,
	sizeGB float64, lead time.Duration, interfere int, alternate time.Duration, workers int) error {
	var stop func()
	if interfere >= 0 && interfere < workers {
		node := env.Cl.Node(cluster.NodeID(interfere))
		if alternate > 0 {
			p := cluster.StartAlternating(env.Eng, node, 2, 2.5, alternate, true)
			stop = p.Stop
		} else {
			inf := node.StartInterference(2, 2.5)
			stop = inf.Stop
		}
		defer stop()
	}

	if err := env.WarmupEstimates(); err != nil {
		return err
	}
	size := sim.Bytes(sizeGB * float64(dyrs.GB))
	if err := env.CreateInput("input", size); err != nil {
		return err
	}
	spec := env.Prepare(dyrs.SortSpec("input", 2*workers, policy.Migrates()))
	spec.ExtraLeadTime = lead
	j, err := env.FW.Submit(spec)
	if err != nil {
		return err
	}
	if err := env.WaitJob(j, time.Hour); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "policy      : %s\n", policy)
	fmt.Fprintf(stdout, "input       : %s in %d blocks\n", sim.FormatBytes(size), len(j.Tasks))
	fmt.Fprintf(stdout, "lead-time   : %v (inserted %v)\n", j.LeadTime(), lead)
	fmt.Fprintf(stdout, "map phase   : %v\n", j.MapPhase())
	fmt.Fprintf(stdout, "end-to-end  : %v\n", j.Duration())
	srcs := map[string]int{}
	for _, tr := range j.Tasks {
		srcs[tr.Source.String()]++
	}
	fmt.Fprintf(stdout, "read sources: %v\n", srcs)
	if env.Coord != nil {
		st := env.Coord.Stats()
		fmt.Fprintf(stdout, "migration   : requested=%d migrated=%d dropped=%d evicted=%d hits=%d missed=%d bytes=%s\n",
			st.Requested, st.Migrated, st.Dropped, st.Evicted,
			st.MemoryHits, st.MissedReads, sim.FormatBytes(st.BytesMigrated))
	}
	return nil
}

// runSWIM replays a prefix of the SWIM trace workload in the prepared
// environment and prints aggregate job statistics.
func runSWIM(stdout io.Writer, env *dyrs.Env, jobs int, seed int64) error {
	cfg := workload.DefaultSWIMConfig()
	cfg.Jobs = jobs
	cfg.TotalInput = sim.Bytes(float64(cfg.TotalInput) * float64(jobs) / 200)
	swimJobs := workload.GenerateSWIM(rand.New(rand.NewSource(seed)), cfg)
	for _, j := range swimJobs {
		if err := env.CreateInput(j.FileName(), j.InputSize); err != nil {
			return err
		}
	}
	for _, j := range swimJobs {
		spec := env.Prepare(j.Spec(env.Policy.Migrates()))
		env.FW.SubmitAt(sim.Time(j.Arrival), spec, nil)
	}
	if err := env.WaitJobs(len(swimJobs), 4*time.Hour); err != nil {
		return err
	}
	var total, mapTotal float64
	var tasks int
	for _, j := range env.FW.Results() {
		total += j.Duration().Seconds()
		mapTotal += j.MapPhase().Seconds()
		tasks += len(j.Tasks)
	}
	n := float64(len(env.FW.Results()))
	fmt.Fprintf(stdout, "policy      : %s\n", env.Policy)
	fmt.Fprintf(stdout, "jobs        : %d (%d map tasks)\n", len(env.FW.Results()), tasks)
	fmt.Fprintf(stdout, "avg job     : %.1fs (map phase %.1fs)\n", total/n, mapTotal/n)
	if env.Coord != nil {
		st := env.Coord.Stats()
		fmt.Fprintf(stdout, "migration   : migrated=%d dropped=%d hits=%d missed=%d bytes=%s\n",
			st.Migrated, st.Dropped, st.MemoryHits, st.MissedReads, sim.FormatBytes(st.BytesMigrated))
	}
	return nil
}

func runHive(stdout io.Writer, policy dyrs.Policy, name string, seed int64) error {
	for _, q := range dyrs.TPCDSQueries() {
		if q.Name != name {
			continue
		}
		d, err := experiments.RunHiveQuery(q, policy, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "query %s (%s) under %s: %.1fs\n",
			q.Name, sim.FormatBytes(q.InputSize), policy, d)
		return nil
	}
	return fmt.Errorf("unknown query %q", name)
}
