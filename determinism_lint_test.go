package dyrs

// Determinism lint: the simulator's reproducibility contract — same seed,
// byte-identical output — is easy to break with one careless call. This
// test statically forbids the usual suspects in internal/ non-test code:
//
//   - time.Now(): wall-clock time in simulated logic. Genuinely
//     wall-clock sites (harness timing) carry a //lint:walltime comment
//     on the same line.
//   - the global math/rand source (rand.Intn etc. without an explicit
//     *rand.Rand): unseeded, process-global randomness. rand.New /
//     rand.NewSource with explicit seeds are fine.
//   - any map type inside internal/sim: the simulation core orders
//     everything by slices and explicit comparisons precisely so no map
//     iteration can leak nondeterministic order into event or flow
//     handling. Layers above sim may use maps but must sort before
//     emitting ordered output (see Coordinator.Evict).

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// walltimeWaiver marks an intentionally wall-clock time.Now call.
const walltimeWaiver = "lint:walltime"

// globalRandFuncs are the math/rand top-level functions backed by the
// shared global source.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
}

func TestDeterminismLint(t *testing.T) {
	var violations []string
	fset := token.NewFileSet()

	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return err
		}
		violations = append(violations, lintFile(fset, path, file)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

func lintFile(fset *token.FileSet, path string, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", path, p.Line, fmt.Sprintf(format, args...)))
	}

	// Lines carrying a walltime waiver comment.
	waived := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, walltimeWaiver) {
				waived[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	// Local names of the time and math/rand imports in this file.
	timeName, randName := "", ""
	for _, imp := range file.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch p {
		case "time":
			if timeName = "time"; name != "" {
				timeName = name
			}
		case "math/rand", "math/rand/v2":
			if randName = "rand"; name != "" {
				randName = name
			}
		}
	}

	inSim := strings.HasPrefix(filepath.ToSlash(path), "internal/sim/")

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Obj != nil { // Obj != nil: a local var shadows the package name
				return true
			}
			switch {
			case timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now":
				if !waived[fset.Position(n.Pos()).Line] {
					report(n.Pos(), "time.Now() in simulated logic; use the engine clock, or waive with //%s", walltimeWaiver)
				}
			case randName != "" && pkg.Name == randName && globalRandFuncs[sel.Sel.Name]:
				report(n.Pos(), "global math/rand.%s; draw from an explicitly seeded *rand.Rand (sim.Engine.Rand)", sel.Sel.Name)
			}
		case *ast.MapType:
			if inSim {
				report(n.Pos(), "map type in internal/sim; the simulation core must not depend on map iteration order")
			}
		}
		return true
	})
	return out
}
