package dyrs

// Determinism lint: the simulator's reproducibility contract — same seed,
// byte-identical output — is easy to break with one careless call. This
// test statically forbids the usual suspects in internal/ non-test code:
//
//   - time.Now(): wall-clock time in simulated logic. Genuinely
//     wall-clock sites (benchmark timing, the ops surface) carry a
//     //lint:walltime comment on the same line, and only files on the
//     audited walltimeFiles allowlist may carry that waiver at all.
//   - the global math/rand source (rand.Intn etc. without an explicit
//     *rand.Rand): unseeded, process-global randomness. rand.New /
//     rand.NewSource with explicit seeds are fine.
//   - any map type inside internal/sim: the simulation core orders
//     everything by slices and explicit comparisons precisely so no map
//     iteration can leak nondeterministic order into event or flow
//     handling. Layers above sim may use maps but must sort before
//     emitting ordered output (see Coordinator.Evict).
//   - concurrency inside internal/sim: goroutines, channels, select, and
//     the sync/sync/atomic packages. Model code must never race the
//     virtual clock — the ONLY sanctioned concurrency is the sharded
//     executor's audited worker pool (internal/sim/shard.go), whose
//     lines carry a //lint:shardsync waiver. Any new waiver is a signal
//     the sharding design is changing and deserves review.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// walltimeWaiver marks an intentionally wall-clock time.Now call.
const walltimeWaiver = "lint:walltime"

// walltimeFiles is the audited allowlist of files that may carry
// //lint:walltime waivers at all. The waiver exists for code that
// genuinely measures the real world — benchmark timing, the worker-pool
// runner, the ops surface (run manifests) — and nowhere else. A waiver
// appearing outside this list fails the lint even with the comment: add
// the file here, in review, or use the engine clock.
var walltimeFiles = map[string]bool{
	"internal/experiments/bench.go": true,
	"internal/obs/manifest.go":      true,
	"internal/runner/runner.go":     true,
}

// shardsyncWaiver marks an audited concurrency primitive in the sharded
// executor. Only internal/sim lines carrying this comment may use
// goroutines, channels, select, or sync — everything else in the sim
// core stays single-threaded per shard.
const shardsyncWaiver = "lint:shardsync"

// globalRandFuncs are the math/rand top-level functions backed by the
// shared global source.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
}

func TestDeterminismLint(t *testing.T) {
	var violations []string
	fset := token.NewFileSet()

	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return err
		}
		violations = append(violations, lintFile(fset, path, file)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

func lintFile(fset *token.FileSet, path string, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", path, p.Line, fmt.Sprintf(format, args...)))
	}

	// Lines carrying waiver comments, by kind. Walltime waivers are
	// additionally quarantined to the audited file allowlist: a stray
	// waiver comment in any other file is itself a violation, so the
	// set of wall-clock call sites can only grow through review here.
	waived := map[int]bool{}
	syncWaived := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			if strings.Contains(c.Text, walltimeWaiver) {
				if !walltimeFiles[filepath.ToSlash(path)] {
					report(c.Pos(), "//%s waiver outside the audited allowlist (walltimeFiles in determinism_lint_test.go); use the engine clock or extend the allowlist in review", walltimeWaiver)
					continue
				}
				waived[line] = true
			}
			if strings.Contains(c.Text, shardsyncWaiver) {
				syncWaived[line] = true
			}
		}
	}

	// Local names of the time and math/rand imports in this file.
	timeName, randName := "", ""
	for _, imp := range file.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch p {
		case "time":
			if timeName = "time"; name != "" {
				timeName = name
			}
		case "math/rand", "math/rand/v2":
			if randName = "rand"; name != "" {
				randName = name
			}
		}
	}

	inSim := strings.HasPrefix(filepath.ToSlash(path), "internal/sim/")

	// Concurrency in the sim core needs an explicit audited waiver.
	syncForbidden := func(pos token.Pos, what string) {
		if !inSim || syncWaived[fset.Position(pos).Line] {
			return
		}
		report(pos, "%s in internal/sim; model code is single-threaded per shard — audited executor lines carry //%s", what, shardsyncWaiver)
	}
	if inSim {
		for _, imp := range file.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p == "sync" || p == "sync/atomic" {
				syncForbidden(imp.Pos(), "import of "+p)
			}
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			syncForbidden(n.Pos(), "go statement")
		case *ast.ChanType:
			syncForbidden(n.Pos(), "channel type")
		case *ast.SendStmt:
			syncForbidden(n.Pos(), "channel send")
		case *ast.SelectStmt:
			syncForbidden(n.Pos(), "select statement")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				syncForbidden(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && id.Obj == nil {
				syncForbidden(n.Pos(), "channel close")
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Obj != nil { // Obj != nil: a local var shadows the package name
				return true
			}
			switch {
			case timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now":
				if !waived[fset.Position(n.Pos()).Line] {
					report(n.Pos(), "time.Now() in simulated logic; use the engine clock, or waive with //%s", walltimeWaiver)
				}
			case randName != "" && pkg.Name == randName && globalRandFuncs[sel.Sel.Name]:
				report(n.Pos(), "global math/rand.%s; draw from an explicitly seeded *rand.Rand (sim.Engine.Rand)", sel.Sel.Name)
			}
		case *ast.MapType:
			if inSim {
				report(n.Pos(), "map type in internal/sim; the simulation core must not depend on map iteration order")
			}
		}
		return true
	})
	return out
}
