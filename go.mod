module dyrs

go 1.22
