package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/compute"
	"dyrs/internal/dfs"
	"dyrs/internal/experiments"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
	"dyrs/internal/workload"
)

// RunResult is everything the oracles inspect about one executed
// scenario. It contains only simulation-derived values (no wall-clock,
// no map-ordered data), so two runs of the same scenario must produce
// deeply equal results.
type RunResult struct {
	Policy    experiments.Policy
	Submitted int
	// Completed lists the names of jobs that reached JobDone, sorted.
	Completed []string
	// RequestsIssued/RequestsServed count the open-loop serving stream
	// (serving scenarios only; zero otherwise). Serving liveness demands
	// they match, and the metamorphic oracle demands HDFS serves the
	// same count.
	RequestsIssued, RequestsServed int
	// SubmitErrors records synchronous submission failures.
	SubmitErrors []string
	// CheckpointFsck aggregates Fsck violations observed mid-run (one
	// second after each fault) with their virtual timestamps.
	CheckpointFsck []string
	// FinalFsck holds Fsck violations after the post-run drain.
	FinalFsck []string

	// End-of-run memory state, after eviction drain plus ScavengeAll.
	MemUsedEnd     sim.Bytes
	MemReplicasEnd int

	// Migration pipeline leftovers after the drain.
	PendingEnd, QueuedEnd int

	// Stats is the coordinator's counter snapshot (zero for HDFS/RAM).
	Stats migration.Stats
	// Counters is the tracer's counter registry.
	Counters map[string]int64
	// Span tallies over cat=migration name=migrate root spans.
	MigrateSpans, PinnedSpans, DroppedSpans, OpenSpans int
	// ReadSpanBytes sums the size attribute of completed read spans.
	ReadSpanBytes int64

	// InputBytes sums the created input file sizes.
	InputBytes sim.Bytes
	// TraceHash is the sha256 of the canonical trace JSON.
	TraceHash string
	// EndTime is the virtual clock when the run finished draining.
	EndTime sim.Time
	// Flight is the tail of the run's trace activity (bounded ring),
	// dumped as a diagnosis artifact when an oracle fails.
	Flight []trace.FlightEvent
}

// buildSpec maps a generated JobSpec onto a concrete compute.JobSpec
// for the environment's policy.
func buildSpec(env *experiments.Env, j JobSpec) compute.JobSpec {
	migrate := env.Policy.Migrates()
	var spec compute.JobSpec
	switch j.Kind {
	case KindSort:
		spec = workload.SortSpec(j.File, j.Reducers, migrate)
	case KindGrep:
		spec = workload.GrepSpec(j.File, migrate)
	case KindWordCount:
		spec = workload.WordCountSpec(j.File, j.Reducers, migrate)
	case KindJoin:
		spec = workload.JoinSpec(j.File, j.File2, j.Reducers, migrate)
	case KindHiveScan:
		q := workload.HiveQuery{
			Name:        j.Name,
			InputSize:   j.Size,
			Stages:      1,
			Selectivity: 0.05,
			CompileTime: j.Lead,
		}
		spec = q.StageSpec(0, j.File, migrate)
	}
	if j.Kind != KindHiveScan {
		spec.ExtraLeadTime = j.Lead
	}
	spec.Name = j.Name
	return spec
}

// RunScenario executes the scenario under the given policy and returns
// the oracle-relevant observations. It never fails the process: every
// anomaly (timeouts, submission errors, fsck violations) is recorded in
// the result for the oracles to judge.
func RunScenario(sc Scenario, policy experiments.Policy) *RunResult {
	if sc.Serving {
		return runServingScenario(sc, policy)
	}
	res := &RunResult{Policy: policy, Submitted: len(sc.Jobs)}
	env := newScenarioEnv(sc, policy)
	defer env.Close()
	if sc.Heartbeats {
		env.FS.EnableHeartbeats(dfs.DefaultLivenessConfig())
		defer env.FS.DisableHeartbeats()
	}

	// Inputs.
	for _, j := range sc.Jobs {
		if err := env.CreateInput(j.File, j.Size); err != nil {
			res.SubmitErrors = append(res.SubmitErrors, err.Error())
			continue
		}
		res.InputBytes += j.Size
		if j.Kind == KindJoin {
			if err := env.CreateInput(j.File2, j.Size2); err != nil {
				res.SubmitErrors = append(res.SubmitErrors, err.Error())
				continue
			}
			res.InputBytes += j.Size2
		}
	}

	// Workload.
	for _, j := range sc.Jobs {
		j := j
		spec := env.Prepare(buildSpec(env, j))
		env.FW.SubmitAt(sim.Time(j.Submit), spec, func(_ *compute.Job, err error) {
			if err != nil {
				res.SubmitErrors = append(res.SubmitErrors,
					fmt.Sprintf("%s: %v", j.Name, err))
			}
		})
	}

	scheduleFaults(env, sc, res)

	// Run to completion (or horizon), then drain: give in-flight
	// migrations and evictions time to settle, then force a scavenging
	// pass so orphaned buffers are reclaimed deterministically.
	_ = env.WaitJobs(len(sc.Jobs), sim.Duration(sc.Horizon))
	env.Eng.RunFor(90 * time.Second)
	if env.Coord != nil {
		env.Coord.ScavengeAll()
	}
	env.Eng.RunFor(10 * time.Second)

	// Observations.
	for _, j := range env.FW.Results() {
		if j.State == compute.JobDone {
			res.Completed = append(res.Completed, j.Spec.Name)
		}
	}
	sort.Strings(res.Completed)
	observeRun(env, res)
	return res
}

// newScenarioEnv builds the traced environment for a scenario run, with
// the flight recorder armed so a failing scenario leaves its last
// moments behind. Sampling stays off: the span-tally oracles need the
// full trace.
func newScenarioEnv(sc Scenario, policy experiments.Policy) *experiments.Env {
	env := experiments.NewEnv(policy, experiments.Options{
		Workers:      sc.Workers,
		Racks:        sc.Racks,
		Seed:         sc.Seed,
		SlowNodes:    sc.SlowNodes,
		Trace:        true,
		Shards:       sc.Shards,
		MigBinder:    sc.Policy,
		RefResources: sc.RefResources,
	})
	env.Tracer().SetFlightRecorder(512)
	return env
}

// scheduleFaults enqueues the scenario's fault schedule, with a
// structural fsck checkpoint one second after each fault.
func scheduleFaults(env *experiments.Env, sc Scenario, res *RunResult) {
	for _, f := range sc.Faults {
		f := f
		env.Eng.At(sim.Time(f.At), func() {
			node := cluster.NodeID(f.Node % sc.Workers)
			switch f.Kind {
			case FaultSlaveRestart:
				if env.Coord != nil {
					env.Coord.RestartSlaveProcess(node)
				}
			case FaultMasterRestart:
				if env.Coord != nil {
					env.Coord.RestartMaster()
				}
			case FaultNodeDeath:
				// Keep at least four nodes alive so 3-way replication
				// always leaves a readable copy.
				if env.Cl.Node(node).Alive() && len(env.Cl.AliveNodes()) > 4 {
					env.Cl.KillNode(node)
					if env.Coord != nil {
						// Its buffers and queued work die with it.
						env.Coord.RestartSlaveProcess(node)
					}
				}
			case FaultInterference:
				if !env.Cl.Node(node).Alive() {
					return
				}
				inf := env.Cl.Node(node).StartInterference(f.Streams, f.Weight)
				env.Eng.Schedule(sim.Duration(f.Dur), inf.Stop)
			}
		})
		env.Eng.At(sim.Time(f.At+time.Second), func() {
			for _, err := range env.FS.Fsck() {
				res.CheckpointFsck = append(res.CheckpointFsck,
					fmt.Sprintf("t=%v after %v: %v", env.Eng.Now(), f.Kind, err))
			}
		})
	}
}

// observeRun fills the oracle-relevant end-of-run observations shared
// by the job and serving paths: fsck, memory state, migration stats,
// counters, span tallies and the canonical trace hash.
func observeRun(env *experiments.Env, res *RunResult) {
	res.FinalFsck = nil
	for _, err := range env.FS.Fsck() {
		res.FinalFsck = append(res.FinalFsck, err.Error())
	}
	res.MemUsedEnd = env.FS.TotalMemUsed()
	res.MemReplicasEnd = env.FS.MemReplicaCount()
	if env.Coord != nil {
		res.Stats = env.Coord.Stats()
		res.PendingEnd = env.Coord.PendingBlocks()
		res.QueuedEnd = env.Coord.QueuedBlocks()
	}

	tr := env.Tracer()
	res.Counters = tr.Counters()
	for _, s := range tr.Spans() {
		switch {
		case s.Cat == "migration" && s.Name == "migrate":
			res.MigrateSpans++
			switch s.Attr("outcome") {
			case "pinned":
				res.PinnedSpans++
			case "dropped":
				res.DroppedSpans++
			default:
				res.OpenSpans++
			}
		case s.Cat == "read" && !s.Open():
			if s.Attr("outcome") != "failed" {
				var n int64
				fmt.Sscanf(s.Attr("size"), "%d", &n)
				res.ReadSpanBytes += n
			}
		}
	}
	res.TraceHash = traceHash(tr)
	res.Flight = tr.FlightEvents()
	res.EndTime = env.Eng.Now()
}

// servingLoadOptions is the fixed driver tuning for serving scenarios:
// a modest cache, top-half epoch prefetch, and a drain long enough for
// queue tails to clear — hot-block reads funnel through the few replica
// holders' NICs, so a node death or interference burst can leave a
// multi-minute backlog behind the horizon.
func servingLoadOptions() experiments.ServingLoadOptions {
	return experiments.ServingLoadOptions{
		CacheBudget:  2 * sim.GB,
		PrefetchFrac: 0.5,
		Epochs:       3,
		Drain:        5 * time.Minute,
	}
}

// runServingScenario executes a serving scenario: the drawn open-loop
// request stream through the shared serving driver, under the
// scenario's fault schedule.
func runServingScenario(sc Scenario, policy experiments.Policy) *RunResult {
	res := &RunResult{Policy: policy}
	env := newScenarioEnv(sc, policy)
	defer env.Close()
	if sc.Heartbeats {
		env.FS.EnableHeartbeats(dfs.DefaultLivenessConfig())
		defer env.FS.DisableHeartbeats()
	}

	scheduleFaults(env, sc, res)

	stream := workload.GenerateServing(sc.ServingSpec, sc.Seed)
	res.RequestsIssued = len(stream.Requests)
	res.InputBytes = sim.Bytes(sc.ServingSpec.TotalBlocks()) * env.FS.Config().BlockSize
	row, err := experiments.RunServingLoad(env, stream, servingLoadOptions())
	if err != nil {
		res.SubmitErrors = append(res.SubmitErrors, err.Error())
	} else {
		res.RequestsServed = row.Served
	}

	observeRun(env, res)
	return res
}

// traceHash digests the canonical trace document.
func traceHash(tr *trace.Tracer) string {
	h := sha256.New()
	if err := tr.WriteJSON(h); err != nil {
		return "error:" + err.Error()
	}
	return hex.EncodeToString(h.Sum(nil))
}
