package harness

import (
	"fmt"
	"reflect"
	"testing"

	"dyrs/internal/experiments"
)

// TestDYRSPolicyConformance is the differential proof behind the policy
// extraction: the DYRS target selection routed through the policy.Policy
// interface (binder "dyrs") must be byte-identical — same canonical
// trace hash, same stats, same counters, same completion set — to the
// frozen pre-refactor coordinator logic (binder "dyrs-ref") on every
// scenario. 60 fuzz seeds, rotating the engine shard count through
// {1, 2, 4} so the equivalence holds sequential and sharded.
func TestDYRSPolicyConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("60-seed differential suite is not short")
	}
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		shards := shardRotationFor(seed)
		t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed)
			sc.Shards = shards

			ext := sc
			ext.Policy = "dyrs"
			ref := sc
			ref.Policy = "dyrs-ref"

			re := RunScenario(ext, experiments.DYRS)
			rr := RunScenario(ref, experiments.DYRS)
			diffRuns(t, re, rr)
		})
	}
}

// TestDYRSPolicyConformanceServing extends the differential proof to the
// serving envelope: the open-loop request stream, epoch prefetch cycle
// and coordinated cache must not surface any divergence between the
// extracted policy and the frozen reference either.
func TestDYRSPolicyConformanceServing(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is not short")
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		shards := shardRotationFor(seed)
		t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
			t.Parallel()
			sc := GenerateServing(seed)
			sc.Shards = shards

			ext := sc
			ext.Policy = "dyrs"
			ref := sc
			ref.Policy = "dyrs-ref"

			re := RunScenario(ext, experiments.DYRS)
			rr := RunScenario(ref, experiments.DYRS)
			if re.RequestsServed != rr.RequestsServed {
				t.Errorf("served: extracted %d, reference %d", re.RequestsServed, rr.RequestsServed)
			}
			diffRuns(t, re, rr)
		})
	}
}

// shardRotationFor mirrors the fuzz sweep's shard schedule so the
// conformance matrix covers 1, 2 and 4 shards in equal measure.
func shardRotationFor(seed int64) int {
	return [...]int{1, 2, 4}[seed%3]
}

// diffRuns asserts byte-identity of the oracle-relevant observations of
// two runs of the same scenario under different binders.
func diffRuns(t *testing.T, re, rr *RunResult) {
	t.Helper()
	if re.TraceHash != rr.TraceHash {
		t.Errorf("trace hash: extracted %.12s…, reference %.12s…", re.TraceHash, rr.TraceHash)
	}
	if re.Stats != rr.Stats {
		t.Errorf("stats: extracted %+v, reference %+v", re.Stats, rr.Stats)
	}
	if !reflect.DeepEqual(re.Counters, rr.Counters) {
		for k, v := range re.Counters {
			if rr.Counters[k] != v {
				t.Errorf("counter %s: extracted %d, reference %d", k, v, rr.Counters[k])
			}
		}
		for k, v := range rr.Counters {
			if _, ok := re.Counters[k]; !ok {
				t.Errorf("counter %s: only in reference (%d)", k, v)
			}
		}
	}
	if !reflect.DeepEqual(re.Completed, rr.Completed) {
		t.Errorf("completed: extracted %v, reference %v", re.Completed, rr.Completed)
	}
	if re.EndTime != rr.EndTime {
		t.Errorf("end time: extracted %v, reference %v", re.EndTime, rr.EndTime)
	}
}
