package harness

import (
	"fmt"
	"reflect"

	"dyrs/internal/experiments"
)

// Oracle names, used to classify failures and to steer shrinking (the
// shrinker preserves "still fails the same oracle").
const (
	OracleFsck            = "fsck"
	OracleConservation    = "conservation"
	OracleLiveness        = "liveness"
	OracleMetamorphic     = "metamorphic"
	OracleDeterminism     = "determinism"
	OracleShardInvariance = "shard-invariance"
)

// OracleRunsPerSeed reports how many scenario executions CheckScenario
// performs for a scenario with the given engine shard count: DYRS x2
// (determinism) + HDFS (metamorphic), plus one sharded DYRS run
// (shard invariance) when shards > 1.
func OracleRunsPerSeed(shards int) int {
	if shards > 1 {
		return 4
	}
	return 3
}

// Failure is one oracle violation.
type Failure struct {
	Oracle string
	Detail string
}

func (f Failure) String() string { return f.Oracle + ": " + f.Detail }

// CheckScenario executes the scenario three times on the sequential
// engine — twice under DYRS, once under plain HDFS — plus, when
// sc.Shards > 1, a fourth DYRS run on the sharded engine, and
// evaluates the full oracle battery. An empty slice means every oracle
// passed.
func CheckScenario(sc Scenario) []Failure {
	seq := sc
	seq.Shards = 0 // the reference runs are always sequential
	r1 := RunScenario(seq, experiments.DYRS)
	r2 := RunScenario(seq, experiments.DYRS)
	rh := RunScenario(seq, experiments.HDFS)
	var rs *RunResult
	if sc.Shards > 1 {
		rs = RunScenario(sc, experiments.DYRS)
	}
	return Evaluate(sc, r1, r2, rh, rs)
}

// Evaluate applies the oracles to the runs of a scenario: the two DYRS
// runs, the HDFS run, and (nil when sc.Shards <= 1) the sharded-engine
// DYRS run. Split from CheckScenario so tests can feed synthetic
// results.
func Evaluate(sc Scenario, r1, r2, rh, rs *RunResult) []Failure {
	var fs []Failure
	fail := func(oracle, format string, args ...any) {
		fs = append(fs, Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	// 1. Structural: fsck must be clean mid-run and after the drain,
	// under both policies.
	for _, r := range []*RunResult{r1, rh} {
		for _, e := range r.CheckpointFsck {
			fail(OracleFsck, "[%s] checkpoint: %s", r.Policy, e)
		}
		for _, e := range r.FinalFsck {
			fail(OracleFsck, "[%s] final: %s", r.Policy, e)
		}
	}

	// 2. Conservation: coordinator stats, trace counters and span
	// tallies must describe the same history, and the drained end state
	// must hold no memory.
	c := func(name string) int64 { return r1.Counters[name] }
	if int64(r1.Stats.Requested) != c("migration.requested") {
		fail(OracleConservation, "stats.Requested=%d but migration.requested=%d",
			r1.Stats.Requested, c("migration.requested"))
	}
	if int64(r1.Stats.Migrated) != c("migration.completed") {
		fail(OracleConservation, "stats.Migrated=%d but migration.completed=%d",
			r1.Stats.Migrated, c("migration.completed"))
	}
	if int64(r1.Stats.Dropped) != c("migration.dropped") {
		fail(OracleConservation, "stats.Dropped=%d but migration.dropped=%d",
			r1.Stats.Dropped, c("migration.dropped"))
	}
	if int64(r1.Stats.BytesMigrated) != c("migration.bytes") {
		fail(OracleConservation, "stats.BytesMigrated=%d but migration.bytes=%d",
			r1.Stats.BytesMigrated, c("migration.bytes"))
	}
	if r1.MigrateSpans != r1.Stats.Requested {
		fail(OracleConservation, "%d migrate spans for %d requests",
			r1.MigrateSpans, r1.Stats.Requested)
	}
	if r1.PinnedSpans != r1.Stats.Migrated {
		fail(OracleConservation, "%d pinned spans for %d completed migrations",
			r1.PinnedSpans, r1.Stats.Migrated)
	}
	if r1.DroppedSpans != r1.Stats.Dropped {
		fail(OracleConservation, "%d dropped spans for %d drops",
			r1.DroppedSpans, r1.Stats.Dropped)
	}
	if r1.OpenSpans != 0 {
		fail(OracleConservation, "%d migration spans still open after drain", r1.OpenSpans)
	}
	if r1.Stats.Requested != r1.Stats.Migrated+r1.Stats.Dropped {
		fail(OracleConservation, "requested=%d != migrated=%d + dropped=%d after drain",
			r1.Stats.Requested, r1.Stats.Migrated, r1.Stats.Dropped)
	}
	if !sc.Serving && c("evictions") > c("migration.completed") {
		// Serving runs exempt: the coordinated cache registers and drops
		// its own memory replicas, so evictions legitimately exceed
		// completed migrations there.
		fail(OracleConservation, "evictions=%d exceed completed migrations=%d",
			c("evictions"), c("migration.completed"))
	}
	readBytes := c("read.bytes.disk-local") + c("read.bytes.disk-remote") +
		c("read.bytes.mem-local") + c("read.bytes.mem-remote")
	if r1.ReadSpanBytes != readBytes {
		fail(OracleConservation, "read spans carry %d bytes but counters sum to %d",
			r1.ReadSpanBytes, readBytes)
	}
	if !sc.Serving && len(r1.Completed) == r1.Submitted && readBytes < int64(r1.InputBytes) {
		// Serving runs exempt: the Zipf stream reads the popular head,
		// not every input byte.
		fail(OracleConservation, "all jobs done but only %d of %d input bytes read",
			readBytes, r1.InputBytes)
	}
	for _, r := range []*RunResult{r1, rh} {
		if r.MemUsedEnd != 0 {
			fail(OracleConservation, "[%s] %d buffered bytes survive the drain", r.Policy, r.MemUsedEnd)
		}
		if r.MemReplicasEnd != 0 {
			fail(OracleConservation, "[%s] %d memory replicas survive the drain", r.Policy, r.MemReplicasEnd)
		}
	}

	// 3. Liveness: every job completes (every serving request is
	// served), nothing is stuck in the migration pipeline.
	for _, r := range []*RunResult{r1, rh} {
		if len(r.SubmitErrors) > 0 {
			fail(OracleLiveness, "[%s] submit errors: %v", r.Policy, r.SubmitErrors)
		}
		if len(r.Completed) != r.Submitted {
			fail(OracleLiveness, "[%s] %d of %d jobs completed within %v",
				r.Policy, len(r.Completed), r.Submitted, sc.Horizon)
		}
		if sc.Serving && r.RequestsServed != r.RequestsIssued {
			fail(OracleLiveness, "[%s] served %d of %d requests within the drain",
				r.Policy, r.RequestsServed, r.RequestsIssued)
		}
		if r.PendingEnd != 0 || r.QueuedEnd != 0 {
			fail(OracleLiveness, "[%s] pipeline not drained: pending=%d queued=%d",
				r.Policy, r.PendingEnd, r.QueuedEnd)
		}
	}

	// 4. Metamorphic: migration must not change which jobs complete, or
	// how many serving requests are served.
	if !reflect.DeepEqual(r1.Completed, rh.Completed) {
		fail(OracleMetamorphic, "DYRS completed %v but HDFS completed %v",
			r1.Completed, rh.Completed)
	}
	if sc.Serving && r1.RequestsServed != rh.RequestsServed {
		fail(OracleMetamorphic, "DYRS served %d requests but HDFS served %d",
			r1.RequestsServed, rh.RequestsServed)
	}

	// 5. Determinism: identical scenario, byte-identical trace.
	if r1.TraceHash != r2.TraceHash {
		fail(OracleDeterminism, "trace hashes differ: %.12s… vs %.12s…",
			r1.TraceHash, r2.TraceHash)
	}
	if !reflect.DeepEqual(r1.Completed, r2.Completed) {
		fail(OracleDeterminism, "completion sets differ: %v vs %v", r1.Completed, r2.Completed)
	}
	if r1.Stats != r2.Stats {
		fail(OracleDeterminism, "stats differ: %+v vs %+v", r1.Stats, r2.Stats)
	}
	if !reflect.DeepEqual(r1.Counters, r2.Counters) {
		fail(OracleDeterminism, "counters differ")
	}
	if r1.RequestsServed != r2.RequestsServed {
		fail(OracleDeterminism, "served counts differ: %d vs %d",
			r1.RequestsServed, r2.RequestsServed)
	}

	// 6. Shard invariance: the same scenario executed on the sharded
	// engine must be byte-identical to the sequential runs — same
	// canonical trace, same completion set, same stats and counters.
	if rs != nil {
		if rs.TraceHash != r1.TraceHash {
			fail(OracleShardInvariance, "shards=%d trace hash %.12s… differs from sequential %.12s…",
				sc.Shards, rs.TraceHash, r1.TraceHash)
		}
		if !reflect.DeepEqual(rs.Completed, r1.Completed) {
			fail(OracleShardInvariance, "shards=%d completed %v but sequential completed %v",
				sc.Shards, rs.Completed, r1.Completed)
		}
		if rs.Stats != r1.Stats {
			fail(OracleShardInvariance, "shards=%d stats differ: %+v vs %+v", sc.Shards, rs.Stats, r1.Stats)
		}
		if !reflect.DeepEqual(rs.Counters, r1.Counters) {
			fail(OracleShardInvariance, "shards=%d counters differ from sequential", sc.Shards)
		}
		if rs.RequestsServed != r1.RequestsServed {
			fail(OracleShardInvariance, "shards=%d served %d but sequential served %d",
				sc.Shards, rs.RequestsServed, r1.RequestsServed)
		}
	}
	return fs
}

// FailedOracles returns the distinct oracle names present in failures,
// in first-seen order.
func FailedOracles(fs []Failure) []string {
	var out []string
	seen := map[string]bool{}
	for _, f := range fs {
		if !seen[f.Oracle] {
			seen[f.Oracle] = true
			out = append(out, f.Oracle)
		}
	}
	return out
}
