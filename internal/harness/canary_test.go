//go:build dyrs_canary

package harness

import (
	"testing"
)

// TestCanaryBugIsDetectedAndShrunk is the oracle self-test: built with
// -tags dyrs_canary, dfs.DropAllMem deliberately skips the buffered-byte
// release on a slave crash (a re-introduction of a real accounting-bug
// class). The harness must (a) detect the bug on some generated seed,
// via the fsck and/or conservation oracles, and (b) shrink the failing
// scenario to a minimal repro of at most three events.
//
// Run with: go test -tags dyrs_canary ./internal/harness -run Canary
func TestCanaryBugIsDetectedAndShrunk(t *testing.T) {
	var (
		seed     int64
		failures []Failure
	)
	// The bug fires whenever a slave crash catches resident buffers; the
	// generator produces such a scenario within the first few seeds.
	for seed = 1; seed <= 100; seed++ {
		if failures = CheckScenario(Generate(seed)); len(failures) > 0 {
			break
		}
	}
	if len(failures) == 0 {
		t.Fatal("canary bug survived 100 seeds: the oracles are vacuous")
	}
	t.Logf("seed %d detected the canary: %v", seed, failures)

	wantOracle := map[string]bool{OracleFsck: true, OracleConservation: true}
	detected := false
	for _, o := range FailedOracles(failures) {
		if wantOracle[o] {
			detected = true
		}
	}
	if !detected {
		t.Fatalf("accounting bug flagged only by %v, want fsck or conservation", FailedOracles(failures))
	}

	oracle := FailedOracles(failures)[0]
	rep := Shrink(seed, false, 0, oracle)
	t.Logf("shrunk to %d event(s): %s", rep.Events(), rep.Command())
	if rep.Events() > 3 {
		t.Fatalf("shrunk repro still has %d events, want <= 3", rep.Events())
	}
	// The reduced repro must still reproduce the failure.
	still := false
	for _, f := range CheckScenario(rep.Scenario()) {
		if f.Oracle == oracle {
			still = true
		}
	}
	if !still {
		t.Fatalf("shrunk repro %s no longer fails oracle %s", rep.Command(), oracle)
	}
}
