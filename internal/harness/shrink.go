package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Repro names a (possibly reduced) scenario: the generator seed plus
// keep-masks over the generated fault and job lists. A nil mask keeps
// everything, so Repro{Seed: n} is the full scenario for seed n. The
// masks index into Generate(seed)'s output, which is deterministic, so
// a repro line is stable across machines and runs.
type Repro struct {
	Seed       int64
	Large      bool   // regenerate from the large-topology envelope
	Serving    bool   // regenerate from the serving-workload envelope
	Policy     string // migration binder the failure was observed under ("": dyrs)
	Shards     int    // engine shard count the failure was observed at (0/1: sequential)
	KeepFaults []int  // nil: all faults
	KeepJobs   []int  // nil: all jobs
}

// Scenario materializes the repro by generating the seed's scenario and
// applying the keep-masks, policy and shard count.
func (r Repro) Scenario() Scenario {
	var sc Scenario
	if r.Serving {
		sc = GenerateServing(r.Seed)
	} else {
		sc = generate(r.Seed, r.Large)
	}
	sc.Shards = r.Shards
	sc.Policy = r.Policy
	if r.KeepFaults != nil {
		sc.Faults = pick(sc.Faults, r.KeepFaults)
	}
	if r.KeepJobs != nil {
		sc.Jobs = pick(sc.Jobs, r.KeepJobs)
	}
	return sc
}

// Events counts the scenario elements the repro retains — the size
// metric shrinking minimizes.
func (r Repro) Events() int {
	sc := r.Scenario()
	return len(sc.Faults) + len(sc.Jobs)
}

func pick[T any](xs []T, keep []int) []T {
	out := make([]T, 0, len(keep))
	for _, i := range keep {
		if i >= 0 && i < len(xs) {
			out = append(out, xs[i])
		}
	}
	return out
}

// String renders the repro's mask in the -repro flag syntax. The empty
// string means "the full scenario".
func (r Repro) String() string {
	var parts []string
	if r.KeepFaults != nil {
		parts = append(parts, "faults="+joinInts(r.KeepFaults))
	}
	if r.KeepJobs != nil {
		parts = append(parts, "jobs="+joinInts(r.KeepJobs))
	}
	return strings.Join(parts, ";")
}

// Command renders the full one-line reproduction command, carrying the
// envelope, the policy name and the shard count the failure was
// observed under.
func (r Repro) Command() string {
	size := ""
	if r.Large {
		size = " -large"
	}
	if r.Serving {
		size = " -serving"
	}
	pol := ""
	if r.Policy != "" {
		pol = " -policy " + r.Policy
	}
	shards := ""
	if r.Shards > 1 {
		shards = fmt.Sprintf(" -shards %d", r.Shards)
	}
	if mask := r.String(); mask != "" {
		return fmt.Sprintf("dyrs-fuzz%s%s%s -seed %d -repro '%s'", size, pol, shards, r.Seed, mask)
	}
	return fmt.Sprintf("dyrs-fuzz%s%s%s -seed %d", size, pol, shards, r.Seed)
}

func joinInts(xs []int) string {
	if len(xs) == 0 {
		return "none"
	}
	ss := make([]string, len(xs))
	for i, x := range xs {
		ss[i] = strconv.Itoa(x)
	}
	return strings.Join(ss, ",")
}

// ParseRepro parses the -repro flag syntax: semicolon-separated
// `faults=i,j,...` and `jobs=k,...` clauses; "none" or an empty list
// keeps nothing. An empty string keeps the full scenario.
func ParseRepro(seed int64, s string) (Repro, error) {
	r := Repro{Seed: seed}
	if s == "" {
		return r, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return r, fmt.Errorf("harness: bad repro clause %q (want key=v1,v2,...)", clause)
		}
		var keep []int
		if val != "none" && val != "" {
			for _, f := range strings.Split(val, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return r, fmt.Errorf("harness: bad repro index %q: %v", f, err)
				}
				keep = append(keep, n)
			}
		} else {
			keep = []int{}
		}
		sort.Ints(keep)
		switch key {
		case "faults":
			r.KeepFaults = keep
		case "jobs":
			r.KeepJobs = keep
		default:
			return r, fmt.Errorf("harness: unknown repro key %q", key)
		}
	}
	return r, nil
}

// Shrink minimizes a failing scenario while the named oracle keeps
// failing, and returns the reduced repro. base carries the seed, the
// generation envelope (Large/Serving), the policy and the shard count
// the failure was observed under — all threaded through every candidate
// run, so envelope- and policy-specific failures shrink too. It assumes
// the full scenario currently fails that oracle (as reported by
// CheckScenario).
func Shrink(base Repro, oracle string) Repro {
	base.KeepFaults, base.KeepJobs = nil, nil
	return ShrinkWith(base, func(sc Scenario) bool {
		for _, f := range CheckScenario(sc) {
			if f.Oracle == oracle {
				return true
			}
		}
		return false
	})
}

// ShrinkWith is the oracle-free reduction core: greedy delta debugging
// that first drops faults, then jobs (keeping at least one job), as
// long as pred still holds on the reduced scenario. Exposed separately
// so the algorithm is testable with synthetic predicates. Serving
// scenarios have no job list, so only the fault mask shrinks there.
func ShrinkWith(base Repro, pred func(Scenario) bool) Repro {
	full := base.Scenario()
	r := base
	r.KeepFaults = seq(len(full.Faults))
	r.KeepJobs = seq(len(full.Jobs))
	r.KeepFaults = minimize(r.KeepFaults, 0, func(keep []int) bool {
		cand := r
		cand.KeepFaults = keep
		return pred(cand.Scenario())
	})
	r.KeepJobs = minimize(r.KeepJobs, 1, func(keep []int) bool {
		cand := r
		cand.KeepJobs = keep
		return pred(cand.Scenario())
	})
	return r
}

func seq(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// minimize greedily removes elements one at a time (restarting after
// each success) until no single removal keeps pred true or the floor is
// reached. For the few-element schedules the generator draws, this
// one-minimal reduction is as strong as full ddmin at a fraction of the
// runs.
func minimize(keep []int, floor int, pred func([]int) bool) []int {
	for {
		if len(keep) <= floor {
			return keep
		}
		shrunk := false
		for i := range keep {
			cand := make([]int, 0, len(keep)-1)
			cand = append(cand, keep[:i]...)
			cand = append(cand, keep[i+1:]...)
			if pred(cand) {
				keep = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return keep
		}
	}
}
