// Package harness is the randomized scenario-fuzzing harness: a seeded
// generator draws whole-cluster scenarios — topology, a mixed workload,
// and a fault schedule — and an oracle battery checks every run against
// properties that must hold for ANY scenario:
//
//  1. structural: dfs.Fsck reports no catalog / replica / accounting
//     violation at the end of the run;
//  2. conservation: the migration framework's Stats agree with the
//     trace counters and span tallies, and no buffered byte survives
//     the post-run drain;
//  3. liveness: every submitted job completes within the horizon and
//     the migration pipeline drains (no pending or queued leftovers);
//  4. metamorphic: the same scenario under plain HDFS (no migration)
//     completes exactly the same set of jobs — migration may only
//     change speed, never outcomes (§III-C: "the only adverse effect
//     is the loss of the speedup");
//  5. determinism: running the identical scenario twice produces
//     byte-identical canonical traces (same hash), identical stats and
//     identical completion sets;
//  6. shard invariance (when the scenario carries a shard count):
//     executing the scenario on the sharded multi-core engine produces
//     the same trace hash, stats, counters and completion set as the
//     sequential engine.
//
// On failure the harness shrinks the scenario — dropping faults, then
// jobs, while the same oracle keeps failing — and prints a one-line
// `dyrs-fuzz -seed N -repro ...` reproduction command.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// JobKind enumerates the workload shapes the generator mixes.
type JobKind int

// The generated job kinds (mirroring internal/workload's spec builders).
const (
	KindSort JobKind = iota
	KindGrep
	KindWordCount
	KindJoin
	KindHiveScan // stage-0 Hive table scan: long lead time, implicit evict
	numJobKinds
)

func (k JobKind) String() string {
	switch k {
	case KindSort:
		return "sort"
	case KindGrep:
		return "grep"
	case KindWordCount:
		return "wordcount"
	case KindJoin:
		return "join"
	case KindHiveScan:
		return "hive-scan"
	}
	return fmt.Sprintf("JobKind(%d)", int(k))
}

// JobSpec is one generated job: a workload shape over one (or, for
// joins, two) generated input files, submitted at a scenario-relative
// time with a chosen extra lead time (the window migration feeds on).
type JobSpec struct {
	Kind     JobKind
	Name     string
	File     string
	Size     sim.Bytes
	File2    string    // join only
	Size2    sim.Bytes // join only
	Reducers int
	Lead     time.Duration
	Submit   time.Duration
}

// FaultKind enumerates the injected failures.
type FaultKind int

// The fault classes of §III-C plus disk interference (§V-C).
const (
	// FaultSlaveRestart crashes and restarts the migration slave process
	// on Node: buffers and queued work are lost (§III-C2).
	FaultSlaveRestart FaultKind = iota
	// FaultMasterRestart fails over the migration master: reference
	// lists and pending state are lost (§III-C1).
	FaultMasterRestart
	// FaultNodeDeath kills the whole node (machine failure). The
	// schedule guards at fire time so at least four nodes stay alive.
	FaultNodeDeath
	// FaultInterference runs Streams competing readers of the given
	// Weight on Node's disk for Dur (the dd interference of §V-C).
	FaultInterference
	numFaultKinds
)

func (k FaultKind) String() string {
	switch k {
	case FaultSlaveRestart:
		return "slave-restart"
	case FaultMasterRestart:
		return "master-restart"
	case FaultNodeDeath:
		return "node-death"
	case FaultInterference:
		return "interference"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled failure injection.
type Fault struct {
	Kind    FaultKind
	At      time.Duration
	Node    int           // target node (ignored for master restart)
	Dur     time.Duration // interference duration
	Streams int           // interference streams
	Weight  float64       // interference per-stream weight
}

// Scenario is one fully specified randomized run. Scenarios are pure
// data: generating one touches no simulation state, so the same
// Scenario can be executed under different policies (metamorphic
// oracle) or repeatedly (determinism oracle).
type Scenario struct {
	Seed int64
	// Large marks a datacenter-shaped draw (see GenerateLarge); recorded
	// so repro lines regenerate from the right envelope.
	Large   bool
	Workers int
	// Racks, when >1, partitions the workers into racks with rack-aware
	// replica placement (large topologies only; 0 = flat network).
	Racks int
	// Shards, when >1, adds a fourth oracle run executing the scenario
	// on a sim.ShardedEngine with that many logical shards; the
	// shard-invariance oracle demands its trace hash, stats and counters
	// match the sequential runs byte for byte. Set by the driver
	// (dyrs-fuzz -shards), never drawn by generate, so existing repro
	// masks stay stable.
	Shards int
	// Policy names the migration binder the migrating oracle runs use: a
	// migrating internal/policy name ("dyrs", "ignem", "costaware") or
	// "dyrs-ref", the frozen pre-extraction DYRS binder the conformance
	// suite differences against. Empty means "dyrs". Set by the driver
	// (dyrs-fuzz -policy), never drawn by generate, so repro masks stay
	// stable and carry the policy explicitly.
	Policy string
	// Serving marks a serving-workload scenario (see GenerateServing):
	// instead of compute jobs, the run drives ServingSpec's open-loop
	// multi-tenant read stream through the coordinated cache, with the
	// migrating policy prefetching the popularity head per epoch. The
	// oracle battery swaps job completion for request service: every
	// issued request must be served, and DYRS vs HDFS must serve the
	// same count.
	Serving     bool
	ServingSpec workload.ServingSpec
	// SlowNodes scales the disk bandwidth of fixed-slow hardware
	// (node index -> scale < 1).
	SlowNodes map[int]float64
	// Heartbeats enables the NameNode liveness protocol, so node deaths
	// exercise the stale-view failover path.
	Heartbeats bool
	Jobs       []JobSpec
	Faults     []Fault
	// Horizon bounds the whole run; exceeding it is a liveness failure.
	Horizon time.Duration
	// RefResources runs the scenario on reference-mode fair-share
	// resources (sim.Engine.SetReferenceResources). Set only by the
	// resource conformance suite, which differences whole runs against
	// the optimized finish-tag heap; never drawn by generate.
	RefResources bool
}

// String renders a compact one-line description for failure reports.
func (sc Scenario) String() string {
	size := ""
	if sc.Large {
		size = fmt.Sprintf(" large racks=%d", sc.Racks)
	}
	shards := ""
	if sc.Shards > 1 {
		shards = fmt.Sprintf(" shards=%d", sc.Shards)
	}
	pol := ""
	if sc.Policy != "" {
		pol = " policy=" + sc.Policy
	}
	if sc.Serving {
		return fmt.Sprintf("seed=%d serving workers=%d%s%s slow=%d files=%d rate=%.1f/s faults=%d hb=%v",
			sc.Seed, sc.Workers, shards, pol, len(sc.SlowNodes),
			sc.ServingSpec.Files, sc.ServingSpec.MeanRate, len(sc.Faults), sc.Heartbeats)
	}
	return fmt.Sprintf("seed=%d workers=%d%s%s%s slow=%d jobs=%d faults=%d hb=%v",
		sc.Seed, sc.Workers, size, shards, pol, len(sc.SlowNodes), len(sc.Jobs), len(sc.Faults), sc.Heartbeats)
}

// Generate draws the testbed-scale scenario for a seed (5-8 workers,
// the paper's envelope). It is deterministic: the same seed always
// yields a deeply equal Scenario, which is what makes the keep-mask
// repro encoding (see Repro) stable.
func Generate(seed int64) Scenario { return generate(seed, false) }

// GenerateLarge draws a datacenter-shaped scenario: 64-256 workers in
// 4-16 racks, more jobs, more faults (including multiple node deaths).
// It exercises the paths testbed scenarios cannot — rack-aware replica
// placement, the per-rack replica indexes, and scale-dependent binder
// behaviour — under the same five oracles. Deterministic per seed, and
// drawn from an independent stream, so large seed N is unrelated to
// small seed N.
func GenerateLarge(seed int64) Scenario { return generate(seed, true) }

// generate is the shared draw. The large envelope only widens ranges;
// the structure (hardware, workload, fault schedule) is identical, so
// shrinking and repro masks work the same way in both modes.
func generate(seed int64, large bool) Scenario {
	rng := rand.New(rand.NewSource(seed))
	if large {
		// Decouple the large stream from the small one so sweeping the
		// same seed range in both modes doesn't correlate the draws.
		rng = rand.New(rand.NewSource(seed ^ 0x1a56e))
	}
	sc := Scenario{
		Seed:    seed,
		Large:   large,
		Workers: 5 + rng.Intn(4), // 5..8, always enough for 3-way replication
		Horizon: time.Hour,
	}
	maxSlow, maxJobs, maxDeaths, maxFaults := 2, 5, 1, 4
	if large {
		sc.Workers = 64 + rng.Intn(193) // 64..256
		sc.Racks = []int{4, 8, 16}[rng.Intn(3)]
		sc.Horizon = 2 * time.Hour
		maxSlow = sc.Workers / 8
		maxJobs = 12
		maxDeaths = 3
		maxFaults = 6
	}

	// Fixed hardware heterogeneity: a few slower disks.
	if n := rng.Intn(maxSlow + 1); n > 0 {
		sc.SlowNodes = make(map[int]float64)
		for i := 0; i < n; i++ {
			sc.SlowNodes[rng.Intn(sc.Workers)] = 0.3 + 0.5*rng.Float64()
		}
	}
	sc.Heartbeats = rng.Intn(2) == 0

	// Workload: jobs of mixed shapes, 256 MB .. ~2 GB inputs, spread
	// over the first half minute (large: first two minutes).
	submitSpread, minJobs := 31, 2
	if large {
		submitSpread, minJobs = 121, 6
	}
	njobs := minJobs + rng.Intn(maxJobs-minJobs+1)
	for i := 0; i < njobs; i++ {
		j := JobSpec{
			Kind:     JobKind(rng.Intn(int(numJobKinds))),
			Name:     fmt.Sprintf("fz-%d", i),
			File:     fmt.Sprintf("fuzz/in-%d", i),
			Size:     sim.Bytes(1+rng.Intn(8)) * 256 * sim.MB,
			Reducers: 1 + rng.Intn(6),
			Lead:     time.Duration(2+rng.Intn(7)) * time.Second,
			Submit:   time.Duration(rng.Intn(submitSpread)) * time.Second,
		}
		if j.Kind == KindJoin {
			j.File2 = fmt.Sprintf("fuzz/in-%d-right", i)
			j.Size2 = sim.Bytes(1+rng.Intn(4)) * 256 * sim.MB
		}
		sc.Jobs = append(sc.Jobs, j)
	}

	// Faults, in the window the workload is active. Node deaths are
	// bounded per scenario (the runtime guard additionally refuses to
	// drop below four live nodes).
	nfaults := rng.Intn(maxFaults + 1)
	deaths := 0
	for i := 0; i < nfaults; i++ {
		f := Fault{
			Kind: FaultKind(rng.Intn(int(numFaultKinds))),
			At:   time.Duration(2+rng.Intn(59)) * time.Second,
			Node: rng.Intn(sc.Workers),
		}
		if f.Kind == FaultNodeDeath && deaths >= maxDeaths {
			f.Kind = FaultSlaveRestart
		}
		if f.Kind == FaultNodeDeath {
			deaths++
		}
		if f.Kind == FaultInterference {
			f.Dur = time.Duration(5+rng.Intn(26)) * time.Second
			f.Streams = 1 + rng.Intn(2)
			f.Weight = 1 + 1.5*rng.Float64()
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}

// GenerateServing draws a serving-workload scenario: a testbed-scale
// cluster serving an open-loop Zipf/diurnal multi-tenant read stream
// (see internal/workload's serving draw), with the usual hardware
// heterogeneity and fault schedule. Deterministic per seed, drawn from
// an independent stream so serving seed N is unrelated to the job
// envelopes' seed N. The request stream itself is regenerated inside
// the run from ServingSpec+Seed, so a serving Scenario stays pure data.
func GenerateServing(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x53e1))
	spec := workload.DefaultServingSpec()
	spec.Files = 12 + rng.Intn(21)        // 12..32
	spec.BlocksPerFile = 2 + rng.Intn(3)  // 2..4
	spec.ZipfS = 0.9 + 0.4*rng.Float64()  // 0.9..1.3
	spec.MeanRate = 1.5 + 2*rng.Float64() // 1.5..3.5 req/s (below saturation)
	spec.DiurnalAmp = 0.8 * rng.Float64()
	spec.PeakPhase = rng.Float64()
	spec.Horizon = 3 * time.Minute
	sc := Scenario{
		Seed:        seed,
		Serving:     true,
		ServingSpec: spec,
		Workers:     5 + rng.Intn(4),
		Horizon:     spec.Horizon + 3*time.Minute,
	}
	if n := rng.Intn(3); n > 0 {
		sc.SlowNodes = make(map[int]float64)
		for i := 0; i < n; i++ {
			sc.SlowNodes[rng.Intn(sc.Workers)] = 0.3 + 0.5*rng.Float64()
		}
	}
	sc.Heartbeats = rng.Intn(2) == 0

	// Faults land in the first half of the serving day; at most one node
	// death (the runtime guard additionally keeps four nodes alive).
	nfaults := rng.Intn(4)
	deaths := 0
	for i := 0; i < nfaults; i++ {
		f := Fault{
			Kind: FaultKind(rng.Intn(int(numFaultKinds))),
			At:   time.Duration(2+rng.Intn(89)) * time.Second,
			Node: rng.Intn(sc.Workers),
		}
		if f.Kind == FaultNodeDeath {
			if deaths >= 1 {
				f.Kind = FaultSlaveRestart
			}
			deaths++
		}
		if f.Kind == FaultInterference {
			f.Dur = time.Duration(5+rng.Intn(26)) * time.Second
			f.Streams = 1 + rng.Intn(2)
			f.Weight = 1 + 1.5*rng.Float64()
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}
