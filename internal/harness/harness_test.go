package harness

import (
	"fmt"
	"reflect"
	"testing"

	"dyrs/internal/experiments"
)

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(seed)
		if sc.Workers < 5 || sc.Workers > 8 {
			t.Fatalf("seed %d: workers = %d", seed, sc.Workers)
		}
		if len(sc.Jobs) < 2 || len(sc.Jobs) > 5 {
			t.Fatalf("seed %d: %d jobs", seed, len(sc.Jobs))
		}
		names := map[string]bool{}
		files := map[string]bool{}
		for _, j := range sc.Jobs {
			if names[j.Name] || files[j.File] {
				t.Fatalf("seed %d: duplicate job name/file %q/%q", seed, j.Name, j.File)
			}
			names[j.Name], files[j.File] = true, true
			if j.Size <= 0 {
				t.Fatalf("seed %d: job %s has size %d", seed, j.Name, j.Size)
			}
			if j.Kind == KindJoin && (j.File2 == "" || j.Size2 <= 0) {
				t.Fatalf("seed %d: join %s lacks a right input", seed, j.Name)
			}
		}
		deaths := 0
		for _, f := range sc.Faults {
			if f.At <= 0 || f.At >= sc.Horizon {
				t.Fatalf("seed %d: fault at %v outside horizon", seed, f.At)
			}
			if f.Node < 0 || f.Node >= sc.Workers {
				t.Fatalf("seed %d: fault on node %d of %d", seed, f.Node, sc.Workers)
			}
			switch f.Kind {
			case FaultNodeDeath:
				deaths++
			case FaultInterference:
				if f.Dur <= 0 || f.Streams <= 0 || f.Weight <= 0 {
					t.Fatalf("seed %d: malformed interference %+v", seed, f)
				}
			}
		}
		if deaths > 1 {
			t.Fatalf("seed %d: %d node deaths", seed, deaths)
		}
	}
}

func TestGenerateLargeDeterministicAndBounds(t *testing.T) {
	t.Parallel()
	sawDeaths := 0
	for seed := int64(1); seed <= 100; seed++ {
		sc := GenerateLarge(seed)
		if !reflect.DeepEqual(sc, GenerateLarge(seed)) {
			t.Fatalf("seed %d: GenerateLarge is not deterministic", seed)
		}
		if !sc.Large {
			t.Fatalf("seed %d: Large not set", seed)
		}
		if sc.Workers < 64 || sc.Workers > 256 {
			t.Fatalf("seed %d: workers = %d, want 64..256", seed, sc.Workers)
		}
		if sc.Racks != 4 && sc.Racks != 8 && sc.Racks != 16 {
			t.Fatalf("seed %d: racks = %d", seed, sc.Racks)
		}
		if len(sc.Jobs) < 6 || len(sc.Jobs) > 12 {
			t.Fatalf("seed %d: %d jobs, want 6..12", seed, len(sc.Jobs))
		}
		deaths := 0
		for _, f := range sc.Faults {
			if f.Node < 0 || f.Node >= sc.Workers {
				t.Fatalf("seed %d: fault on node %d of %d", seed, f.Node, sc.Workers)
			}
			if f.Kind == FaultNodeDeath {
				deaths++
			}
		}
		if deaths > 3 {
			t.Fatalf("seed %d: %d node deaths, want <= 3", seed, deaths)
		}
		sawDeaths += deaths
	}
	if sawDeaths == 0 {
		t.Error("no large seed in 1..100 drew a node death; envelope too tame")
	}
}

// TestGenerateLargeIndependentStream guards the seed decorrelation: the
// large draw for seed N must not be the small draw dressed up.
func TestGenerateLargeIndependentStream(t *testing.T) {
	t.Parallel()
	same := 0
	for seed := int64(1); seed <= 20; seed++ {
		if len(Generate(seed).Jobs) == len(GenerateLarge(seed).Jobs) {
			same++
		}
	}
	if same == 20 {
		t.Error("large and small streams fully correlated across 20 seeds")
	}
}

// TestCheckScenarioLargeSmoke runs the full five-oracle battery on one
// datacenter-shaped scenario — the per-PR slice of the nightly
// scenario-sweep-large job. Large runs are seconds each (three full
// simulations), so keep this to a single seed and skip under -short.
func TestCheckScenarioLargeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large scenario run skipped under -short")
	}
	t.Parallel()
	sc := GenerateLarge(3)
	if sc.Racks <= 1 {
		t.Fatalf("large scenario has no racks: %s", sc)
	}
	for _, f := range CheckScenario(sc) {
		t.Errorf("large seed 3: %s", f)
	}
}

// TestCheckScenarioSmokeSeeds runs the full oracle battery over a few
// seeds chosen to cover faults and heterogeneity (the wide sweep lives
// in CI via cmd/dyrs-fuzz).
func TestCheckScenarioSmokeSeeds(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{3, 7, 9} {
		for _, f := range CheckScenario(Generate(seed)) {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// TestCheckScenarioShardInvariance runs the full battery with the
// sharded fourth run at shards in {2, 4}: the differential
// sharded-vs-sequential gate over real generated scenarios. Under
// -race in CI this is the tentpole equivalence proof at harness level.
func TestCheckScenarioShardInvariance(t *testing.T) {
	t.Parallel()
	for _, shards := range []int{2, 4} {
		sc := Generate(7)
		sc.Shards = shards
		for _, f := range CheckScenario(sc) {
			t.Errorf("seed 7 shards=%d: %s", shards, f)
		}
	}
}

// TestRunScenarioObservations checks the harness actually exercises the
// system: jobs complete, migrations happen, and the trace hash is
// stable across runs.
func TestRunScenarioObservations(t *testing.T) {
	t.Parallel()
	sc := Generate(7)
	r := RunScenario(sc, experiments.DYRS)
	if len(r.Completed) != len(sc.Jobs) {
		t.Fatalf("completed %d of %d jobs", len(r.Completed), len(sc.Jobs))
	}
	if r.Stats.Migrated == 0 || r.Stats.BytesMigrated == 0 {
		t.Fatalf("no migration activity: %+v", r.Stats)
	}
	if r.Counters["migration.completed"] != int64(r.Stats.Migrated) {
		t.Fatalf("counter mismatch: %d vs %d", r.Counters["migration.completed"], r.Stats.Migrated)
	}
	if r.TraceHash == "" || r.TraceHash != RunScenario(sc, experiments.DYRS).TraceHash {
		t.Fatal("trace hash empty or unstable")
	}
	h := RunScenario(sc, experiments.HDFS)
	if h.Stats.Requested != 0 || h.MemUsedEnd != 0 {
		t.Fatalf("HDFS run migrated: %+v", h.Stats)
	}
}

// TestEvaluateDetectsSyntheticViolations feeds hand-built results to
// each oracle to prove none of them is vacuous.
func TestEvaluateDetectsSyntheticViolations(t *testing.T) {
	t.Parallel()
	sc := Generate(1)
	clean := func() (*RunResult, *RunResult, *RunResult) {
		mk := func(p experiments.Policy) *RunResult {
			return &RunResult{Policy: p, TraceHash: "h", Counters: map[string]int64{}}
		}
		return mk(experiments.DYRS), mk(experiments.DYRS), mk(experiments.HDFS)
	}
	if r1, r2, rh := clean(); len(Evaluate(sc, r1, r2, rh, nil)) != 0 {
		t.Fatalf("baseline should pass: %v", Evaluate(sc, r1, r2, rh, nil))
	}

	cases := []struct {
		oracle string
		mutate func(r1, r2, rh *RunResult)
	}{
		{OracleFsck, func(r1, _, _ *RunResult) { r1.FinalFsck = []string{"bad"} }},
		{OracleFsck, func(_, _, rh *RunResult) { rh.CheckpointFsck = []string{"bad"} }},
		{OracleConservation, func(r1, _, _ *RunResult) { r1.MemUsedEnd = 42 }},
		{OracleConservation, func(r1, _, _ *RunResult) { r1.Stats.Requested = 3 }},
		{OracleConservation, func(r1, _, _ *RunResult) { r1.OpenSpans = 1 }},
		{OracleConservation, func(r1, _, _ *RunResult) { r1.ReadSpanBytes = 10 }},
		{OracleLiveness, func(r1, _, _ *RunResult) { r1.Submitted = 2 }},
		{OracleLiveness, func(r1, _, _ *RunResult) { r1.QueuedEnd = 1 }},
		{OracleLiveness, func(r1, _, _ *RunResult) { r1.SubmitErrors = []string{"x"} }},
		{OracleMetamorphic, func(r1, r2, _ *RunResult) {
			r1.Completed = []string{"a"}
			r2.Completed = []string{"a"}
			r1.Submitted, r2.Submitted = 1, 1
		}},
		{OracleDeterminism, func(_, r2, _ *RunResult) { r2.TraceHash = "other" }},
		{OracleDeterminism, func(_, r2, _ *RunResult) { r2.Stats.Migrated = 9 }},
	}
	for i, tc := range cases {
		r1, r2, rh := clean()
		tc.mutate(r1, r2, rh)
		got := Evaluate(sc, r1, r2, rh, nil)
		found := false
		for _, f := range got {
			if f.Oracle == tc.oracle {
				found = true
			}
		}
		if !found {
			t.Errorf("case %d: oracle %s did not fire (got %v)", i, tc.oracle, got)
		}
	}

	// Shard invariance: a sharded run diverging from the sequential
	// reference in hash, completion set, or stats must fire the oracle;
	// an identical one must not.
	shardCases := []struct {
		name   string
		mutate func(rs *RunResult)
		fire   bool
	}{
		{"identical", func(*RunResult) {}, false},
		{"hash", func(rs *RunResult) { rs.TraceHash = "other" }, true},
		{"completed", func(rs *RunResult) { rs.Completed = []string{"ghost"} }, true},
		{"stats", func(rs *RunResult) { rs.Stats.Migrated = 7 }, true},
		{"counters", func(rs *RunResult) { rs.Counters = map[string]int64{"x": 1} }, true},
	}
	for _, tc := range shardCases {
		r1, r2, rh := clean()
		rs := &RunResult{Policy: experiments.DYRS, TraceHash: "h", Counters: map[string]int64{}}
		tc.mutate(rs)
		scs := sc
		scs.Shards = 4
		got := Evaluate(scs, r1, r2, rh, rs)
		fired := false
		for _, f := range got {
			if f.Oracle == OracleShardInvariance {
				fired = true
			}
		}
		if fired != tc.fire {
			t.Errorf("shard-invariance %s: fired=%v want %v (got %v)", tc.name, fired, tc.fire, got)
		}
	}
}

func TestReproParseFormatRoundTrip(t *testing.T) {
	t.Parallel()
	for _, mask := range []string{"", "faults=0,2;jobs=1", "faults=none", "jobs=0,1,2"} {
		r, err := ParseRepro(5, mask)
		if err != nil {
			t.Fatalf("%q: %v", mask, err)
		}
		if got := r.String(); got != mask {
			t.Errorf("round trip %q -> %q", mask, got)
		}
	}
	// An empty list is the spelled-out form of "none".
	r, err := ParseRepro(5, "faults=;jobs=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.KeepFaults) != 0 || r.KeepFaults == nil || !reflect.DeepEqual(r.KeepJobs, []int{0}) {
		t.Errorf("empty list parsed as %+v", r)
	}
	for _, bad := range []string{"faults", "faults=1,x", "blocks=1"} {
		if _, err := ParseRepro(5, bad); err == nil {
			t.Errorf("ParseRepro accepted %q", bad)
		}
	}
}

func TestReproScenarioAppliesMasks(t *testing.T) {
	t.Parallel()
	var seed int64
	for seed = 1; ; seed++ {
		sc := Generate(seed)
		if len(sc.Faults) >= 2 && len(sc.Jobs) >= 2 {
			break
		}
	}
	full := Generate(seed)
	r := Repro{Seed: seed, KeepFaults: []int{1}, KeepJobs: []int{0}}
	sc := r.Scenario()
	if len(sc.Faults) != 1 || !reflect.DeepEqual(sc.Faults[0], full.Faults[1]) {
		t.Fatalf("fault mask not applied: %+v", sc.Faults)
	}
	if len(sc.Jobs) != 1 || sc.Jobs[0].Name != full.Jobs[0].Name {
		t.Fatalf("job mask not applied: %+v", sc.Jobs)
	}
	if r.Events() != 2 {
		t.Fatalf("Events() = %d, want 2", r.Events())
	}
	if got, want := r.Command(), fmt.Sprintf("dyrs-fuzz -seed %d -repro 'faults=1;jobs=0'", seed); got != want {
		t.Fatalf("Command() = %q, want %q", got, want)
	}
	r.Large = true
	if got, want := r.Command(), fmt.Sprintf("dyrs-fuzz -large -seed %d -repro 'faults=1;jobs=0'", seed); got != want {
		t.Fatalf("large Command() = %q, want %q", got, want)
	}
	if large := r.Scenario(); !large.Large || large.Workers < 64 {
		t.Fatalf("large repro regenerated small scenario: %s", large)
	}
}

// TestShrinkWithSyntheticPredicate verifies the reduction core finds a
// one-minimal scenario without touching the simulator.
func TestShrinkWithSyntheticPredicate(t *testing.T) {
	t.Parallel()
	var seed int64
	for seed = 1; ; seed++ {
		sc := Generate(seed)
		if len(sc.Faults) >= 3 && len(sc.Jobs) >= 3 {
			break
		}
	}
	// Fails whenever at least one fault and one job remain: the minimum
	// is exactly one of each.
	calls := 0
	rep := ShrinkWith(Repro{Seed: seed}, func(sc Scenario) bool {
		calls++
		return len(sc.Faults) >= 1 && len(sc.Jobs) >= 1
	})
	if len(rep.KeepFaults) != 1 || len(rep.KeepJobs) != 1 {
		t.Fatalf("shrunk to faults=%v jobs=%v, want one of each", rep.KeepFaults, rep.KeepJobs)
	}
	if rep.Events() != 2 {
		t.Fatalf("Events() = %d after shrink", rep.Events())
	}
	if calls == 0 {
		t.Fatal("predicate never invoked")
	}
	// The shrinker must preserve the predicate on its result.
	if sc := rep.Scenario(); len(sc.Faults) != 1 || len(sc.Jobs) != 1 {
		t.Fatalf("materialized repro has %d faults, %d jobs", len(sc.Faults), len(sc.Jobs))
	}
}
