package harness

import (
	"fmt"
	"testing"

	"dyrs/internal/experiments"
)

// TestResourceModelConformance is the whole-simulation differential proof
// behind the virtual-service-time resource rewrite: a full scenario run
// on the optimized fair-share model (finish-tag heap, O(1) lazy accrual,
// coalesced rebalances, pooled flows) must be byte-identical — same
// canonical trace hash, same stats, same counters, same completion set,
// same end time — to the same run on reference-mode resources
// (sim.Engine.SetReferenceResources), whose linear bookkeeping shares
// every float expression with the optimized path. 60 fuzz seeds,
// rotating the engine shard count through {1, 2, 4} so the equivalence
// holds sequential and sharded.
func TestResourceModelConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("60-seed differential suite is not short")
	}
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		shards := shardRotationFor(seed)
		t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed)
			sc.Shards = shards

			opt := sc
			ref := sc
			ref.RefResources = true

			re := RunScenario(opt, experiments.DYRS)
			rr := RunScenario(ref, experiments.DYRS)
			diffRuns(t, re, rr)
		})
	}
}

// TestResourceModelConformanceServing extends the differential proof to
// the serving envelope: the open-loop request stream and epoch prefetch
// cycle drive far denser flow churn (many same-instant admissions on hot
// replica holders' NICs), so the flush coalescing and completion cascade
// see their worst case here.
func TestResourceModelConformanceServing(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is not short")
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		shards := shardRotationFor(seed)
		t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
			t.Parallel()
			sc := GenerateServing(seed)
			sc.Shards = shards

			opt := sc
			ref := sc
			ref.RefResources = true

			re := RunScenario(opt, experiments.DYRS)
			rr := RunScenario(ref, experiments.DYRS)
			if re.RequestsServed != rr.RequestsServed {
				t.Errorf("served: optimized %d, reference %d", re.RequestsServed, rr.RequestsServed)
			}
			diffRuns(t, re, rr)
		})
	}
}
