// Package cluster models the physical substrate of the simulated
// data-center: nodes composed of a disk, a NIC, memory, and task slots,
// plus the disk-interference generators the paper uses to create
// bandwidth heterogeneity (persistent dd-style load and alternating
// on/off patterns, §V-C).
package cluster

import (
	"fmt"

	"dyrs/internal/sim"
)

// NodeID identifies a node within a cluster. IDs are dense, starting at 0.
type NodeID int

// String formats the id as "node<N>".
func (id NodeID) String() string { return fmt.Sprintf("node%d", id) }

// NodeConfig describes one node's hardware.
type NodeConfig struct {
	// DiskBandwidth is the nominal sequential disk throughput in
	// bytes/sec (the paper's servers have one 1 TB HDD each).
	DiskBandwidth float64
	// DiskSeekPenalty is the per-extra-stream efficiency loss applied by
	// sim.SeekEfficiency; models seek overhead under concurrent reads.
	DiskSeekPenalty float64
	// SSDBandwidth is the throughput of the node's flash tier in
	// bytes/sec. The paper's motivation compares RAM against SSD reads
	// (§I: RAM still 7x faster than SSD); the SSD tier exists so that
	// comparison can be reproduced.
	SSDBandwidth float64
	// NetBandwidth is the NIC throughput in bytes/sec (10 Gbps in the
	// paper's testbed).
	NetBandwidth float64
	// MemBandwidth is the throughput of reads served from the in-memory
	// buffer, in bytes/sec.
	MemBandwidth float64
	// MemCapacity is the buffer space available for migrated blocks.
	MemCapacity sim.Bytes
	// TaskSlots is the number of concurrent task containers the node's
	// compute manager offers.
	TaskSlots int
	// DiskScale < 1 models permanently slower hardware (fixed
	// heterogeneity), applied on top of DiskBandwidth.
	DiskScale float64
}

// DefaultNodeConfig mirrors the paper's testbed: ~130 MB/s HDD, 10 Gbps
// network, 128 GB RAM (half of it available for migration buffers), and
// 12 hyperthreads driving the slot count.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		DiskBandwidth:   130 * float64(sim.MB),
		DiskSeekPenalty: 0.05,
		SSDBandwidth:    500 * float64(sim.MB),
		NetBandwidth:    1250 * float64(sim.MB), // 10 Gbps
		MemBandwidth:    6 * float64(sim.GB),
		MemCapacity:     64 * sim.GB,
		TaskSlots:       8,
		DiskScale:       1,
	}
}

// Node is one simulated server.
type Node struct {
	ID   NodeID
	Cfg  NodeConfig
	Disk *sim.Resource
	SSD  *sim.Resource
	NIC  *sim.Resource
	Mem  *sim.Resource

	eng   *sim.Engine
	alive bool
}

// Alive reports whether the server is up.
func (n *Node) Alive() bool { return n.alive }

// Cluster owns the engine and the node set.
type Cluster struct {
	eng      *sim.Engine
	nodes    []*Node
	topo     *Topology
	flatRack []NodeID // lazily built member list for the flat (1-rack) case
	// membershipEpoch counts kill/revive transitions; see MembershipEpoch.
	membershipEpoch uint64
	// RPCLatency is the one-way latency of control-plane messages
	// (heartbeats, migration commands). Data transfers are modeled on
	// resources; control traffic only pays this latency.
	RPCLatency sim.Duration
}

// New creates a cluster of n nodes with per-node configs produced by
// cfg(i). Pass nil to use DefaultNodeConfig for every node.
func New(eng *sim.Engine, n int, cfg func(i int) NodeConfig) *Cluster {
	if n <= 0 {
		panic("cluster: need at least one node")
	}
	c := &Cluster{eng: eng, RPCLatency: 500 * sim.Duration(1e3) /* 0.5ms */}
	for i := 0; i < n; i++ {
		nc := DefaultNodeConfig()
		if cfg != nil {
			nc = cfg(i)
		}
		if nc.DiskScale == 0 {
			nc.DiskScale = 1
		}
		if nc.SSDBandwidth <= 0 {
			nc.SSDBandwidth = 500 * float64(sim.MB)
		}
		node := &Node{
			ID:    NodeID(i),
			Cfg:   nc,
			Disk:  sim.NewResource(eng, fmt.Sprintf("disk:node%d", i), nc.DiskBandwidth, sim.SeekEfficiency(nc.DiskSeekPenalty)),
			SSD:   sim.NewResource(eng, fmt.Sprintf("ssd:node%d", i), nc.SSDBandwidth, sim.SeekEfficiency(0.005)),
			NIC:   sim.NewResource(eng, fmt.Sprintf("nic:node%d", i), nc.NetBandwidth, nil),
			Mem:   sim.NewResource(eng, fmt.Sprintf("mem:node%d", i), nc.MemBandwidth, nil),
			eng:   eng,
			alive: true,
		}
		if nc.DiskScale != 1 {
			node.Disk.SetScale(nc.DiskScale)
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

// Engine returns the cluster's simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Size reports the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the node with the given id.
func (c *Cluster) Node(id NodeID) *Node {
	return c.nodes[int(id)]
}

// Nodes returns all nodes in id order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// AliveNodes returns the ids of nodes currently up.
func (c *Cluster) AliveNodes() []NodeID {
	var out []NodeID
	for _, n := range c.nodes {
		if n.alive {
			out = append(out, n.ID)
		}
	}
	return out
}

// KillNode marks a server down. Its resources stop being usable by model
// code that checks liveness; in-flight flows are cancelled.
func (c *Cluster) KillNode(id NodeID) {
	c.nodes[int(id)].alive = false
	c.membershipEpoch++
}

// ReviveNode brings a server back up.
func (c *Cluster) ReviveNode(id NodeID) {
	c.nodes[int(id)].alive = true
	c.membershipEpoch++
}

// MembershipEpoch increments whenever a node is killed or revived.
// Components that cache derived views of cluster liveness (e.g. the
// DYRS binder's per-node finish table) compare epochs to skip rebuilds
// when nothing changed.
func (c *Cluster) MembershipEpoch() uint64 { return c.membershipEpoch }

// RPC schedules fn after the control-plane latency, simulating a
// master<->slave message.
func (c *Cluster) RPC(fn func()) {
	c.eng.Schedule(c.RPCLatency, fn)
}

// Interference is a handle on background disk load occupying a node.
type Interference struct {
	node    *Node
	flows   []*sim.Flow
	streams int
	weight  float64
	active  bool
}

// StartInterference launches `streams` persistent competing read streams
// (each with the given fair-share weight) on the node's disk — the
// simulation equivalent of the paper's two dd O_DIRECT readers.
func (n *Node) StartInterference(streams int, weight float64) *Interference {
	inf := &Interference{node: n, streams: streams, weight: weight}
	inf.Resume()
	return inf
}

// Active reports whether the interference streams are currently running.
func (inf *Interference) Active() bool { return inf.active }

// Pause removes the competing streams (interference "inactive" phase).
func (inf *Interference) Pause() {
	if !inf.active {
		return
	}
	for _, f := range inf.flows {
		f.Cancel()
	}
	inf.flows = nil
	inf.active = false
}

// Resume restores the competing streams.
func (inf *Interference) Resume() {
	if inf.active {
		return
	}
	for i := 0; i < inf.streams; i++ {
		inf.flows = append(inf.flows, inf.node.Disk.StartLoad(inf.weight))
	}
	inf.active = true
}

// Stop permanently removes the interference.
func (inf *Interference) Stop() { inf.Pause() }

// AlternatingPattern toggles interference on/off with the given period —
// the paper's "alternates every 10s / 20s" patterns (Fig. 9b-9e). When
// startActive is false, the pattern begins in the off phase (used for the
// anti-phased two-node patterns in Fig. 9d/9e).
type AlternatingPattern struct {
	inf    *Interference
	ticker *sim.Ticker
}

// StartAlternating creates interference on n that flips state every
// period.
func StartAlternating(eng *sim.Engine, n *Node, streams int, weight float64, period sim.Duration, startActive bool) *AlternatingPattern {
	inf := n.StartInterference(streams, weight)
	if !startActive {
		inf.Pause()
	}
	p := &AlternatingPattern{inf: inf}
	p.ticker = sim.NewTicker(eng, period, func() {
		if inf.Active() {
			inf.Pause()
		} else {
			inf.Resume()
		}
	})
	return p
}

// Stop halts the pattern and removes any active interference.
func (p *AlternatingPattern) Stop() {
	p.ticker.Stop()
	p.inf.Stop()
}

// Interference reports the underlying interference handle (for tests).
func (p *AlternatingPattern) Interference() *Interference { return p.inf }
