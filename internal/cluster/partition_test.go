package cluster

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

func TestPartitionByRack(t *testing.T) {
	p := PartitionByRack(100, 4, 4, time.Millisecond)
	if p.Shards() != 5 {
		t.Fatalf("Shards() = %d, want 5 (control + 4 data)", p.Shards())
	}
	if p.ControlShard() != 0 {
		t.Fatalf("ControlShard() = %d", p.ControlShard())
	}
	// Node->shard must agree with ConfigureRacks' round-robin rack map.
	eng := sim.NewEngine(1)
	c := New(eng, 100, nil)
	c.ConfigureRacks(4, 0)
	for i := 0; i < 100; i++ {
		id := NodeID(i)
		want := p.RackShard(c.Rack(id))
		if got := p.NodeShard(id); got != want {
			t.Fatalf("node %d: shard %d, rack %d homed on shard %d", i, got, c.Rack(id), want)
		}
	}
	// Every rack homed on exactly one data shard, and the reverse map agrees.
	seen := map[int]bool{}
	for s := 1; s < p.Shards(); s++ {
		for _, r := range p.ShardRacks(s) {
			if seen[r] {
				t.Fatalf("rack %d homed on two shards", r)
			}
			seen[r] = true
			if p.RackShard(r) != s {
				t.Fatalf("rack %d: RackShard=%d but listed under shard %d", r, p.RackShard(r), s)
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("homed %d racks, want 4", len(seen))
	}
	if len(p.ShardRacks(0)) != 0 {
		t.Fatal("control shard must own no racks")
	}
}

func TestPartitionByRackClamping(t *testing.T) {
	// More data shards than racks clamps to one shard per rack.
	p := PartitionByRack(10, 2, 8, time.Millisecond)
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", p.Shards())
	}
	// Fewer shards than racks: racks round-robin over the data shards.
	p = PartitionByRack(12, 6, 2, time.Millisecond)
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", p.Shards())
	}
	for r := 0; r < 6; r++ {
		if s := p.RackShard(r); s != 1+r%2 {
			t.Fatalf("rack %d on shard %d, want %d", r, s, 1+r%2)
		}
	}
}

func TestMinLookahead(t *testing.T) {
	if got := MinLookahead(500*time.Microsecond, 2*time.Millisecond, 10*time.Second); got != 500*time.Microsecond {
		t.Fatalf("MinLookahead = %v", got)
	}
	if got := MinLookahead(0, 2*time.Millisecond, 0); got != 2*time.Millisecond {
		t.Fatalf("MinLookahead with zeros = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("all-zero latencies should panic")
		}
	}()
	MinLookahead(0, 0, 0)
}
