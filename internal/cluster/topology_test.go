package cluster

import (
	"testing"

	"dyrs/internal/sim"
)

func TestFlatClusterDefaults(t *testing.T) {
	c := New(sim.NewEngine(1), 4, nil)
	if c.Racks() != 1 {
		t.Errorf("flat cluster racks = %d", c.Racks())
	}
	if !c.SameRack(0, 3) || c.Rack(2) != 0 {
		t.Error("flat cluster rack queries wrong")
	}
	if c.Core() != nil {
		t.Error("flat cluster has a core")
	}
	var nilTopo *Topology
	if nilTopo.String() != "flat" {
		t.Errorf("nil topology string %q", nilTopo.String())
	}
}

func TestConfigureRacks(t *testing.T) {
	c := New(sim.NewEngine(1), 6, nil)
	c.ConfigureRacks(2, 2*float64(sim.GB))
	if c.Racks() != 2 {
		t.Fatalf("racks = %d", c.Racks())
	}
	// Round-robin assignment: even nodes rack 0, odd nodes rack 1.
	if c.Rack(0) != 0 || c.Rack(1) != 1 || c.Rack(4) != 0 {
		t.Errorf("rack assignment wrong: %d %d %d", c.Rack(0), c.Rack(1), c.Rack(4))
	}
	if c.SameRack(0, 1) || !c.SameRack(0, 2) {
		t.Error("SameRack wrong")
	}
	if c.Core() == nil || c.Core().Capacity() != 2*float64(sim.GB) {
		t.Error("core not installed")
	}
	r0 := c.NodesInRack(0)
	if len(r0) != 3 {
		t.Errorf("rack 0 has %d nodes", len(r0))
	}
}

func TestConfigureRacksNonBlocking(t *testing.T) {
	c := New(sim.NewEngine(1), 4, nil)
	c.ConfigureRacks(2, 0)
	if c.Core() != nil {
		t.Error("zero core bandwidth should mean non-blocking (nil core)")
	}
	if got := c.topo.String(); got != "2 racks, non-blocking core" {
		t.Errorf("topology string %q", got)
	}
}

func TestConfigureRacksValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero racks did not panic")
		}
	}()
	New(sim.NewEngine(1), 4, nil).ConfigureRacks(0, 0)
}
