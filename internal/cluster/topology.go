package cluster

import (
	"fmt"

	"dyrs/internal/sim"
)

// Topology assigns nodes to racks and models the cross-rack core switch.
// By default a cluster is flat: one rack, non-blocking network. Calling
// ConfigureRacks splits it into racks connected by a shared (typically
// oversubscribed) core, which cross-rack transfers must traverse.
type Topology struct {
	rackOf    []int
	rackNodes [][]NodeID // cached member lists, indexed by rack
	racks     int
	core      *sim.Resource
}

// ConfigureRacks partitions the cluster's nodes round-robin into the
// given number of racks and installs a core switch with the given
// aggregate cross-rack bandwidth in bytes/sec (0 = non-blocking core).
func (c *Cluster) ConfigureRacks(racks int, coreBandwidth float64) {
	if racks <= 0 {
		panic("cluster: need at least one rack")
	}
	t := &Topology{racks: racks, rackOf: make([]int, len(c.nodes)), rackNodes: make([][]NodeID, racks)}
	for i := range c.nodes {
		r := i % racks
		t.rackOf[i] = r
		t.rackNodes[r] = append(t.rackNodes[r], NodeID(i))
	}
	if coreBandwidth > 0 {
		t.core = sim.NewResource(c.eng, "core-switch", coreBandwidth, nil)
	}
	c.topo = t
}

// Racks reports the number of racks (1 for a flat cluster).
func (c *Cluster) Racks() int {
	if c.topo == nil {
		return 1
	}
	return c.topo.racks
}

// Rack reports the rack a node lives in.
func (c *Cluster) Rack(id NodeID) int {
	if c.topo == nil {
		return 0
	}
	return c.topo.rackOf[int(id)]
}

// SameRack reports whether two nodes share a rack.
func (c *Cluster) SameRack(a, b NodeID) bool {
	return c.Rack(a) == c.Rack(b)
}

// Core returns the core-switch resource, or nil when the core is
// non-blocking (flat cluster or coreBandwidth 0).
func (c *Cluster) Core() *sim.Resource {
	if c.topo == nil {
		return nil
	}
	return c.topo.core
}

// RackNodes returns the cached member list of the given rack. For a
// flat cluster, rack 0 holds every node (the list is built lazily and
// cached). Callers must not mutate the returned slice.
func (c *Cluster) RackNodes(rack int) []NodeID {
	if c.topo == nil {
		if rack != 0 {
			return nil
		}
		if c.flatRack == nil {
			c.flatRack = make([]NodeID, len(c.nodes))
			for i := range c.nodes {
				c.flatRack[i] = NodeID(i)
			}
		}
		return c.flatRack
	}
	if rack < 0 || rack >= c.topo.racks {
		return nil
	}
	return c.topo.rackNodes[rack]
}

// NodesInRack returns a copy of the ids of nodes in the given rack.
func (c *Cluster) NodesInRack(rack int) []NodeID {
	cached := c.RackNodes(rack)
	out := make([]NodeID, len(cached))
	copy(out, cached)
	return out
}

// String describes the topology.
func (t *Topology) String() string {
	if t == nil {
		return "flat"
	}
	core := "non-blocking core"
	if t.core != nil {
		core = fmt.Sprintf("core %s/s", sim.FormatBytes(sim.Bytes(t.core.Capacity())))
	}
	return fmt.Sprintf("%d racks, %s", t.racks, core)
}
