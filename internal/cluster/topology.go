package cluster

import (
	"fmt"

	"dyrs/internal/sim"
)

// Topology assigns nodes to racks and models the cross-rack core switch.
// By default a cluster is flat: one rack, non-blocking network. Calling
// ConfigureRacks splits it into racks connected by a shared (typically
// oversubscribed) core, which cross-rack transfers must traverse.
type Topology struct {
	rackOf []int
	racks  int
	core   *sim.Resource
}

// ConfigureRacks partitions the cluster's nodes round-robin into the
// given number of racks and installs a core switch with the given
// aggregate cross-rack bandwidth in bytes/sec (0 = non-blocking core).
func (c *Cluster) ConfigureRacks(racks int, coreBandwidth float64) {
	if racks <= 0 {
		panic("cluster: need at least one rack")
	}
	t := &Topology{racks: racks, rackOf: make([]int, len(c.nodes))}
	for i := range c.nodes {
		t.rackOf[i] = i % racks
	}
	if coreBandwidth > 0 {
		t.core = sim.NewResource(c.eng, "core-switch", coreBandwidth, nil)
	}
	c.topo = t
}

// Racks reports the number of racks (1 for a flat cluster).
func (c *Cluster) Racks() int {
	if c.topo == nil {
		return 1
	}
	return c.topo.racks
}

// Rack reports the rack a node lives in.
func (c *Cluster) Rack(id NodeID) int {
	if c.topo == nil {
		return 0
	}
	return c.topo.rackOf[int(id)]
}

// SameRack reports whether two nodes share a rack.
func (c *Cluster) SameRack(a, b NodeID) bool {
	return c.Rack(a) == c.Rack(b)
}

// Core returns the core-switch resource, or nil when the core is
// non-blocking (flat cluster or coreBandwidth 0).
func (c *Cluster) Core() *sim.Resource {
	if c.topo == nil {
		return nil
	}
	return c.topo.core
}

// NodesInRack returns the ids of nodes in the given rack.
func (c *Cluster) NodesInRack(rack int) []NodeID {
	var out []NodeID
	for _, n := range c.nodes {
		if c.Rack(n.ID) == rack {
			out = append(out, n.ID)
		}
	}
	return out
}

// String describes the topology.
func (t *Topology) String() string {
	if t == nil {
		return "flat"
	}
	core := "non-blocking core"
	if t.core != nil {
		core = fmt.Sprintf("core %s/s", sim.FormatBytes(sim.Bytes(t.core.Capacity())))
	}
	return fmt.Sprintf("%d racks, %s", t.racks, core)
}
