package cluster

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

func TestNewClusterDefaults(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 4, nil)
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	n := c.Node(2)
	if n.ID != 2 || !n.Alive() {
		t.Errorf("node 2 wrong: %+v", n.ID)
	}
	if n.Disk.Capacity() != 130*float64(sim.MB) {
		t.Errorf("disk capacity = %v", n.Disk.Capacity())
	}
	if len(c.Nodes()) != 4 {
		t.Errorf("Nodes() len = %d", len(c.Nodes()))
	}
	if c.Engine() != eng {
		t.Error("engine accessor wrong")
	}
}

func TestPerNodeConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 3, func(i int) NodeConfig {
		cfg := DefaultNodeConfig()
		if i == 1 {
			cfg.DiskScale = 0.25
		}
		return cfg
	})
	if s := c.Node(1).Disk.Scale(); s != 0.25 {
		t.Errorf("slow node scale = %v", s)
	}
	if s := c.Node(0).Disk.Scale(); s != 1 {
		t.Errorf("normal node scale = %v", s)
	}
}

func TestZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-node cluster did not panic")
		}
	}()
	New(sim.NewEngine(1), 0, nil)
}

func TestKillRevive(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 3, nil)
	c.KillNode(1)
	alive := c.AliveNodes()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Errorf("alive = %v", alive)
	}
	c.ReviveNode(1)
	if len(c.AliveNodes()) != 3 {
		t.Error("revive failed")
	}
}

func TestRPCLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 1, nil)
	var at sim.Time
	c.RPC(func() { at = eng.Now() })
	eng.Run()
	if at != sim.Time(c.RPCLatency) {
		t.Errorf("rpc fired at %v, want %v", at, c.RPCLatency)
	}
}

func TestInterferenceHalvesThroughput(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 1, func(int) NodeConfig {
		cfg := DefaultNodeConfig()
		cfg.DiskBandwidth = 100 * float64(sim.MB)
		cfg.DiskSeekPenalty = 0 // isolate sharing from seek loss
		return cfg
	})
	n := c.Node(0)
	inf := n.StartInterference(1, 1)
	var done sim.Time
	n.Disk.Start(100*sim.MB, func(*sim.Flow) { done = eng.Now() })
	eng.Run()
	if got := done.Seconds(); got < 1.99 || got > 2.01 {
		t.Errorf("read with 1 interference stream took %vs, want ~2s", got)
	}
	inf.Stop()
	if n.Disk.ActiveFlows() != 0 {
		t.Errorf("flows remain: %d", n.Disk.ActiveFlows())
	}
}

func TestInterferencePauseResume(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 1, func(int) NodeConfig {
		cfg := DefaultNodeConfig()
		cfg.DiskSeekPenalty = 0
		return cfg
	})
	n := c.Node(0)
	inf := n.StartInterference(2, 1)
	if !inf.Active() || n.Disk.ActiveFlows() != 2 {
		t.Fatal("interference not started")
	}
	inf.Pause()
	inf.Pause() // idempotent
	if inf.Active() || n.Disk.ActiveFlows() != 0 {
		t.Fatal("pause failed")
	}
	inf.Resume()
	inf.Resume() // idempotent
	if !inf.Active() || n.Disk.ActiveFlows() != 2 {
		t.Fatal("resume failed")
	}
	inf.Stop()
}

func TestAlternatingPattern(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 1, nil)
	n := c.Node(0)
	p := StartAlternating(eng, n, 2, 1, 10*time.Second, true)
	if !p.Interference().Active() {
		t.Fatal("should start active")
	}
	eng.RunUntil(sim.Time(11 * time.Second))
	if p.Interference().Active() {
		t.Error("should be paused after first toggle")
	}
	eng.RunUntil(sim.Time(21 * time.Second))
	if !p.Interference().Active() {
		t.Error("should be active after second toggle")
	}
	p.Stop()
	if p.Interference().Active() || n.Disk.ActiveFlows() != 0 {
		t.Error("stop did not clean up")
	}
	eng.RunFor(time.Minute)
	if p.Interference().Active() {
		t.Error("pattern kept toggling after Stop")
	}
}

func TestAlternatingAntiPhase(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, 2, nil)
	a := StartAlternating(eng, c.Node(0), 2, 1, 10*time.Second, true)
	b := StartAlternating(eng, c.Node(1), 2, 1, 10*time.Second, false)
	check := func(wantA, wantB bool) {
		if a.Interference().Active() != wantA || b.Interference().Active() != wantB {
			t.Errorf("at %v: active = %v/%v, want %v/%v", eng.Now(),
				a.Interference().Active(), b.Interference().Active(), wantA, wantB)
		}
	}
	check(true, false)
	eng.RunUntil(sim.Time(15 * time.Second))
	check(false, true)
	eng.RunUntil(sim.Time(25 * time.Second))
	check(true, false)
	a.Stop()
	b.Stop()
}

func TestNodeIDString(t *testing.T) {
	if NodeID(3).String() != "node3" {
		t.Errorf("NodeID.String = %q", NodeID(3).String())
	}
}
