package cluster

import (
	"dyrs/internal/sim"
)

// Partition maps a cluster onto the logical shards of a
// sim.ShardedEngine: shard 0 is the control shard (master, namenode,
// coordinator — everything that must observe global state), and each
// rack's nodes are homed on one data shard. A shard owns the event
// queue, Resources, and DataNode state of its partition; everything
// that crosses a partition edge (heartbeat reports, migration
// commands, cross-rack flows) must travel as a sim Send with at least
// the partition lookahead of delay.
type Partition struct {
	shards     int
	shardOf    []int   // node index -> shard
	rackShard  []int   // rack -> shard
	shardRacks [][]int // shard -> racks homed on it (empty for shard 0)
	lookahead  sim.Duration
}

// PartitionByRack builds the canonical rack partition: shard 0 for the
// control plane, then racks assigned round-robin over dataShards data
// shards (so the shard count is tunable independently of the rack
// count). dataShards is clamped to [1, racks]; the resulting engine
// needs 1+dataShards shards. lookahead is the minimum cross-partition
// latency the model guarantees — see MinLookahead for its derivation.
func PartitionByRack(nodes, racks, dataShards int, lookahead sim.Duration) *Partition {
	if racks < 1 {
		panic("cluster: partition needs at least one rack")
	}
	if dataShards < 1 {
		dataShards = 1
	}
	if dataShards > racks {
		dataShards = racks
	}
	p := &Partition{
		shards:     1 + dataShards,
		shardOf:    make([]int, nodes),
		rackShard:  make([]int, racks),
		shardRacks: make([][]int, 1+dataShards),
		lookahead:  lookahead,
	}
	for r := 0; r < racks; r++ {
		s := 1 + r%dataShards
		p.rackShard[r] = s
		p.shardRacks[s] = append(p.shardRacks[s], r)
	}
	// Mirror ConfigureRacks' round-robin node->rack assignment.
	for i := 0; i < nodes; i++ {
		p.shardOf[i] = p.rackShard[i%racks]
	}
	return p
}

// Shards reports the total logical shard count (control shard + data
// shards) — the value to pass to sim.NewShardedEngine.
func (p *Partition) Shards() int { return p.shards }

// ControlShard is the shard index of the control plane (always 0).
func (p *Partition) ControlShard() int { return 0 }

// NodeShard reports the shard a node is homed on.
func (p *Partition) NodeShard(id NodeID) int { return p.shardOf[int(id)] }

// RackShard reports the shard a rack is homed on.
func (p *Partition) RackShard(rack int) int { return p.rackShard[rack] }

// ShardRacks returns the racks homed on a shard (empty for the control
// shard). Callers must not mutate the returned slice.
func (p *Partition) ShardRacks(shard int) []int { return p.shardRacks[shard] }

// Lookahead reports the partition's cross-shard latency floor.
func (p *Partition) Lookahead() sim.Duration { return p.lookahead }

// MinLookahead derives a safe conservative-synchronization lookahead
// from the model's cross-partition latencies: every interaction that
// crosses a partition edge is at least as slow as the fastest of the
// control-plane RPC turnaround, the network propagation delay, and the
// heartbeat interval — so the smallest positive one bounds how far a
// shard may run ahead of its neighbors without missing an incoming
// message. Zero values mean "that channel doesn't exist in this
// model"; at least one latency must be positive.
func MinLookahead(rpcLatency, linkDelay, heartbeat sim.Duration) sim.Duration {
	min := sim.Duration(0)
	for _, d := range []sim.Duration{rpcLatency, linkDelay, heartbeat} {
		if d <= 0 {
			continue
		}
		if min == 0 || d < min {
			min = d
		}
	}
	if min == 0 {
		panic("cluster: no positive cross-partition latency to derive lookahead from")
	}
	return min
}
