package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunPreservesInputOrder(t *testing.T) {
	t.Parallel()
	const n = 50
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job%d", i),
			Run:  func() (any, error) { return i * 10, nil },
		}
	}
	for _, workers := range []int{1, 3, 16} {
		results := Run(jobs, Options{Jobs: workers})
		if len(results) != n {
			t.Fatalf("jobs=%d: got %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Index != i || r.Name != jobs[i].Name || r.Value != i*10 || r.Err != nil {
				t.Errorf("jobs=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

func TestRunSerialEqualsOneWorker(t *testing.T) {
	t.Parallel()
	// With Jobs=1 the single worker must consume jobs strictly in input
	// order — the property -verify's serial pass relies on.
	var order []int
	var mu sync.Mutex
	jobs := make([]Job, 20)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func() (any, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return i, nil
		}}
	}
	Run(jobs, Options{Jobs: 1})
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not serial", order)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		{Name: "ok1", Run: func() (any, error) { return "a", nil }},
		{Name: "boom", Run: func() (any, error) { panic("kaput") }},
		{Name: "ok2", Run: func() (any, error) { return "b", nil }},
	}
	results := Run(jobs, Options{Jobs: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	r := results[1]
	if !r.Panicked || r.Err == nil {
		t.Fatalf("panic not captured: %+v", r)
	}
	if !strings.Contains(r.Err.Error(), "kaput") || !strings.Contains(r.Err.Error(), "boom") {
		t.Errorf("panic error missing context: %v", r.Err)
	}
	// The stack trace should point at the panicking function.
	if !strings.Contains(r.Err.Error(), "runner_test.go") {
		t.Errorf("panic error missing stack: %v", r.Err)
	}
}

func TestFirstError(t *testing.T) {
	t.Parallel()
	errBoom := errors.New("boom")
	results := []Result{
		{Name: "a", Index: 0},
		{Name: "b", Index: 1, Err: errBoom},
		{Name: "c", Index: 2, Err: errors.New("later")},
	}
	err := FirstError(results)
	if !errors.Is(err, errBoom) {
		t.Fatalf("FirstError = %v, want wrapped %v", err, errBoom)
	}
	if !strings.Contains(err.Error(), `"b"`) {
		t.Errorf("FirstError missing job name: %v", err)
	}
	if FirstError(results[:1]) != nil {
		t.Error("FirstError on clean results != nil")
	}
}

func TestProgressEvents(t *testing.T) {
	t.Parallel()
	var events []Event
	var mu sync.Mutex
	jobs := []Job{
		{Name: "a", Run: func() (any, error) { return nil, nil }},
		{Name: "b", Run: func() (any, error) { return nil, errors.New("x") }},
		{Name: "c", Run: func() (any, error) { return nil, nil }},
	}
	Run(jobs, Options{Jobs: 2, Progress: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	var starts, dones int
	seenDone := map[int]bool{}
	for _, ev := range events {
		if ev.Total != 3 {
			t.Errorf("event total = %d", ev.Total)
		}
		switch ev.Kind {
		case EventStart:
			starts++
			if seenDone[ev.Index] {
				t.Errorf("job %d started after it finished", ev.Index)
			}
		case EventDone:
			dones++
			seenDone[ev.Index] = true
			if ev.Done != dones {
				t.Errorf("done counter %d at done event %d", ev.Done, dones)
			}
			if ev.Name == "b" && ev.Err == nil {
				t.Error("failed job's done event lost its error")
			}
		}
	}
	if starts != 3 || dones != 3 {
		t.Fatalf("starts=%d dones=%d, want 3/3", starts, dones)
	}
}

func TestWorkerBound(t *testing.T) {
	t.Parallel()
	// At most opt.Jobs jobs may be in flight simultaneously.
	var inFlight, peak atomic.Int32
	gate := make(chan struct{})
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{Name: "j", Run: func() (any, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return nil, nil
		}}
	}
	done := make(chan struct{})
	go func() {
		Run(jobs, Options{Jobs: 3})
		close(done)
	}()
	close(gate)
	<-done
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds bound 3", p)
	}
}

func TestZeroAndEmpty(t *testing.T) {
	t.Parallel()
	if got := Run(nil, Options{}); len(got) != 0 {
		t.Errorf("Run(nil) = %v", got)
	}
	// Jobs <= 0 falls back to GOMAXPROCS and still runs everything.
	results := Run([]Job{{Name: "a", Run: func() (any, error) { return 1, nil }}}, Options{Jobs: -5})
	if len(results) != 1 || results[0].Value != 1 {
		t.Errorf("results = %+v", results)
	}
}

func TestEventKindString(t *testing.T) {
	t.Parallel()
	if EventStart.String() != "start" || EventDone.String() != "done" {
		t.Error("EventKind strings wrong")
	}
}
