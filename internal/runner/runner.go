// Package runner schedules independent jobs over a bounded worker pool.
//
// It exists so the experiment suite (internal/experiments) can exploit
// the fact that every paper figure/table is an isolated, seeded
// discrete-event simulation: jobs share nothing, so they can run
// concurrently without changing any result. The runner guarantees
//
//   - stable output order: results are returned in input order no
//     matter which worker finished first;
//   - panic isolation: a panicking job fails that job (with the stack
//     captured in its error), not the process;
//   - per-job wall-clock timing and serialized progress events.
//
// With Jobs=1 the single worker consumes jobs strictly in input order,
// so a one-worker run is observationally identical to a plain serial
// loop — the property the determinism verifier (dyrs-bench -verify)
// builds on.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one independent unit of work.
type Job struct {
	// Name identifies the job in results and progress events.
	Name string
	// Run does the work and returns its result.
	Run func() (any, error)
}

// Result is one job's outcome. The slice returned by Run preserves the
// input order of the jobs regardless of completion order.
type Result struct {
	Name string
	// Index is the job's position in the input slice.
	Index int
	// Value is what Job.Run returned (nil on error).
	Value any
	// Err is the job's error; for a recovered panic it wraps the panic
	// value and carries the goroutine stack.
	Err error
	// Panicked reports whether Err came from a recovered panic.
	Panicked bool
	// Elapsed is the job's wall-clock duration.
	Elapsed time.Duration
}

// EventKind distinguishes progress notifications.
type EventKind int

// The progress event kinds.
const (
	// EventStart fires when a worker picks up a job.
	EventStart EventKind = iota
	// EventDone fires when a job finishes (successfully or not).
	EventDone
)

func (k EventKind) String() string {
	if k == EventStart {
		return "start"
	}
	return "done"
}

// Event is one progress notification. Events are delivered serially
// (never concurrently), but EventStart/EventDone pairs of different
// jobs interleave when Jobs > 1.
type Event struct {
	Kind  EventKind
	Name  string
	Index int
	// Err is set on EventDone for a failed job.
	Err error
	// Elapsed is set on EventDone.
	Elapsed time.Duration
	// Done counts finished jobs so far (including this one on
	// EventDone); Total is the job count.
	Done  int
	Total int
}

// Options configures a Run.
type Options struct {
	// Jobs bounds worker concurrency; <=0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Progress, when non-nil, receives serialized progress events.
	Progress func(Event)
}

// Run executes the jobs on a worker pool and returns their results in
// input order. It never panics on a panicking job; the panic is
// captured into that job's Result.
func Run(jobs []Job, opt Options) []Result {
	workers := opt.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	var (
		mu   sync.Mutex // serializes Progress and the done counter
		done int
		next = make(chan int) // indices dispatched in input order
		wg   sync.WaitGroup
	)
	emit := func(ev Event) {
		if opt.Progress == nil && ev.Kind == EventStart {
			return
		}
		mu.Lock()
		if ev.Kind == EventDone {
			done++
			ev.Done = done
		}
		ev.Total = len(jobs)
		if opt.Progress != nil {
			opt.Progress(ev)
		}
		mu.Unlock()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				emit(Event{Kind: EventStart, Name: j.Name, Index: i})
				start := time.Now() //lint:walltime — measures real execution time, not simulated time
				v, err, panicked := capture(j)
				res := Result{
					Name: j.Name, Index: i,
					Value: v, Err: err, Panicked: panicked,
					Elapsed: time.Since(start),
				}
				results[i] = res
				emit(Event{
					Kind: EventDone, Name: j.Name, Index: i,
					Err: err, Elapsed: res.Elapsed,
				})
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// capture runs the job, converting a panic into an error that carries
// the panic value and the goroutine stack.
func capture(j Job) (v any, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			v, panicked = nil, true
			err = fmt.Errorf("runner: job %q panicked: %v\n%s", j.Name, r, debug.Stack())
		}
	}()
	v, err = j.Run()
	return v, err, false
}

// FirstError returns the error of the lowest-index failed result, or
// nil if every job succeeded.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("runner: job %q: %w", r.Name, r.Err)
		}
	}
	return nil
}
