package cache

import (
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

func newFS(t *testing.T, seed int64) (*sim.Engine, *dfs.FS) {
	t.Helper()
	eng := sim.NewEngine(seed)
	// 3 nodes at replication 3: every node holds every block, so the
	// replica-anchored cache always buffers at the reading node (0) and
	// the per-node accounting assertions below stay exact.
	cl := cluster.New(eng, 3, nil)
	return eng, dfs.New(cl, dfs.DefaultConfig())
}

// readAll reads every block of the file from node 0 and runs the engine.
func readAll(t *testing.T, eng *sim.Engine, fs *dfs.FS, name string) []dfs.ReadResult {
	t.Helper()
	f, err := fs.File(name)
	if err != nil {
		t.Fatal(err)
	}
	var out []dfs.ReadResult
	for _, id := range f.Blocks {
		if err := fs.ReadBlock(0, id, func(r dfs.ReadResult) { out = append(out, r) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunFor(10 * time.Minute)
	return out
}

func TestSecondReadHitsCache(t *testing.T) {
	eng, fs := newFS(t, 1)
	c, err := New(fs, 8*sim.GB, LRU)
	if err != nil {
		t.Fatal(err)
	}
	fs.CreateFile("hot", 512*sim.MB)

	first := readAll(t, eng, fs, "hot")
	for _, r := range first {
		if r.Source.FromMemory() {
			t.Errorf("first read from memory: %v", r.Source)
		}
	}
	if c.Misses != 2 || c.Insertions != 2 {
		t.Fatalf("misses=%d insertions=%d", c.Misses, c.Insertions)
	}

	second := readAll(t, eng, fs, "hot")
	for _, r := range second {
		if !r.Source.FromMemory() {
			t.Errorf("second read not from memory: %v", r.Source)
		}
	}
	if c.Hits != 2 {
		t.Errorf("hits = %d", c.Hits)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestBudgetEviction(t *testing.T) {
	eng, fs := newFS(t, 2)
	// Budget of 2 blocks per node; reads all land at node 0.
	c, err := New(fs, 512*sim.MB, LRU)
	if err != nil {
		t.Fatal(err)
	}
	fs.CreateFile("a", 256*sim.MB)
	fs.CreateFile("b", 256*sim.MB)
	fs.CreateFile("c", 256*sim.MB)
	readAll(t, eng, fs, "a")
	readAll(t, eng, fs, "b")
	readAll(t, eng, fs, "c") // evicts "a" (LRU)
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
	if c.UsedOn(0) != 512*sim.MB {
		t.Errorf("used = %d", c.UsedOn(0))
	}
	// "a" must miss again; "c" must hit.
	if r := readAll(t, eng, fs, "c"); !r[0].Source.FromMemory() {
		t.Error("c not cached")
	}
	aReads := readAll(t, eng, fs, "a")
	if aReads[0].Source.FromMemory() {
		t.Error("evicted block served from memory")
	}
}

func TestLIFEEvictsLargestFile(t *testing.T) {
	eng, fs := newFS(t, 3)
	c, err := New(fs, 3*256*sim.MB, LIFE)
	if err != nil {
		t.Fatal(err)
	}
	fs.CreateFile("big", 512*sim.MB)  // 2 blocks
	fs.CreateFile("tiny", 64*sim.MB)  // 1 block
	fs.CreateFile("tiny2", 64*sim.MB) // 1 block
	readAll(t, eng, fs, "big")
	readAll(t, eng, fs, "tiny")
	readAll(t, eng, fs, "tiny2")
	// Force an eviction: insert one more 256MB block.
	fs.CreateFile("extra", 256*sim.MB)
	readAll(t, eng, fs, "extra")
	// LIFE should have evicted from "big" (the largest cached file),
	// keeping the small files intact.
	if r := readAll(t, eng, fs, "tiny"); !r[0].Source.FromMemory() {
		t.Error("LIFE evicted a small file's block")
	}
	if c.Evictions == 0 {
		t.Error("no eviction happened")
	}
}

func TestLFUEvictsColdFile(t *testing.T) {
	eng, fs := newFS(t, 4)
	c, err := New(fs, 2*256*sim.MB, LFU)
	if err != nil {
		t.Fatal(err)
	}
	fs.CreateFile("popular", 256*sim.MB)
	fs.CreateFile("once", 256*sim.MB)
	readAll(t, eng, fs, "popular")
	readAll(t, eng, fs, "popular")
	readAll(t, eng, fs, "popular")
	readAll(t, eng, fs, "once")
	fs.CreateFile("new", 256*sim.MB)
	readAll(t, eng, fs, "new") // must evict "once", not "popular"
	if r := readAll(t, eng, fs, "popular"); !r[0].Source.FromMemory() {
		t.Error("LFU evicted the popular file")
	}
	_ = c
}

func TestOversizeBlockNotCached(t *testing.T) {
	eng, fs := newFS(t, 5)
	c, err := New(fs, 100*sim.MB, LRU)
	if err != nil {
		t.Fatal(err)
	}
	fs.CreateFile("big", 256*sim.MB)
	readAll(t, eng, fs, "big")
	if c.Resident() != 0 || c.Insertions != 0 {
		t.Errorf("oversize block cached: resident=%d", c.Resident())
	}
}

func TestStaleEntryRevalidated(t *testing.T) {
	eng, fs := newFS(t, 6)
	c, err := New(fs, 8*sim.GB, LRU)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.CreateFile("x", 256*sim.MB)
	readAll(t, eng, fs, "x")
	// Simulate an external subsystem dropping the replica (DYRS implicit
	// eviction or a slave restart).
	loc, _ := fs.MemReplica(f.Blocks[0])
	fs.DropMem(f.Blocks[0], loc)
	// The next read must detect staleness, miss, and re-insert.
	r := readAll(t, eng, fs, "x")
	if r[0].Source.FromMemory() {
		t.Error("stale entry served from memory")
	}
	if c.Resident() != 1 {
		t.Errorf("resident = %d after revalidation", c.Resident())
	}
	// And the read after that hits again.
	if r := readAll(t, eng, fs, "x"); !r[0].Source.FromMemory() {
		t.Error("revalidated entry not served from memory")
	}
}

func TestFlush(t *testing.T) {
	eng, fs := newFS(t, 7)
	c, _ := New(fs, 8*sim.GB, LRU)
	fs.CreateFile("x", 512*sim.MB)
	readAll(t, eng, fs, "x")
	if c.Resident() != 2 {
		t.Fatalf("resident = %d", c.Resident())
	}
	c.Flush()
	if c.Resident() != 0 || fs.MemReplicaCount() != 0 || c.UsedOn(0) != 0 {
		t.Error("flush left state")
	}
}

func TestPlacementAnchorsToReplicaHolder(t *testing.T) {
	// A read from a node holding no disk replica must cache the block on
	// a replica holder, not the reader — the DFS structural invariant
	// (fsck) forbids memory replicas without a disk replica underneath.
	eng := sim.NewEngine(9)
	cl := cluster.New(eng, 8, nil)
	fs := dfs.New(cl, dfs.DefaultConfig())
	c, err := New(fs, 8*sim.GB, LRU)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.CreateFile("x", 256*sim.MB)
	id := f.Blocks[0]
	holders := map[cluster.NodeID]bool{}
	for _, r := range fs.Replicas(id) {
		holders[r] = true
	}
	reader := cluster.NodeID(-1)
	for n := cluster.NodeID(0); int(n) < cl.Size(); n++ {
		if !holders[n] {
			reader = n
			break
		}
	}
	if reader < 0 {
		t.Skip("every node holds a replica")
	}
	if err := fs.ReadBlock(reader, id, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * time.Minute)
	loc, ok := fs.MemReplica(id)
	if !ok {
		t.Fatal("block not cached")
	}
	if !holders[loc] {
		t.Errorf("cached on %v, which holds no disk replica", loc)
	}
	if c.UsedOn(reader) != 0 {
		t.Errorf("reader charged %d bytes", c.UsedOn(reader))
	}
	if errs := fs.Fsck(); len(errs) > 0 {
		t.Errorf("fsck: %v", errs)
	}
}

func TestInvalidBudget(t *testing.T) {
	_, fs := newFS(t, 8)
	if _, err := New(fs, 0, LRU); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || LIFE.String() != "LIFE" || LFU.String() != "LFU" {
		t.Error("policy names wrong")
	}
}
