// Package cache implements a PACMan-style coordinated in-memory block
// cache over the simulated DFS. It exists as a comparison point: caching
// accelerates repeatedly-read (hot) data but cannot help the ~30% of
// tasks that read singly-accessed cold data (paper §I, §VI) — the gap
// DYRS fills. The cache and DYRS compose: the cache keeps hot blocks
// resident after their first read, while DYRS pre-loads cold inputs
// before their only read.
package cache

import (
	"container/list"
	"fmt"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// EvictPolicy selects the cache's eviction order.
type EvictPolicy int

const (
	// LRU evicts the least recently used block.
	LRU EvictPolicy = iota
	// LIFE approximates PACMan's wave-width-aware policy by evicting
	// blocks of the *largest* cached file first: large files need many
	// cached blocks before any wave speeds up, so their partial
	// footprints are the least valuable.
	LIFE
	// LFU evicts blocks of the least frequently accessed file.
	LFU
)

// String names the policy.
func (p EvictPolicy) String() string {
	switch p {
	case LIFE:
		return "LIFE"
	case LFU:
		return "LFU"
	}
	return "LRU"
}

// entry tracks one cached block.
type entry struct {
	block *dfs.Block
	node  cluster.NodeID
	uses  int
	lru   *list.Element
}

// Cache is a cluster-wide coordinated cache. It watches every block read
// via the DFS read hook: hits are reads already redirected to a resident
// replica; misses insert the block at the reading node after the read,
// evicting per policy when the per-node budget is exceeded.
type Cache struct {
	fs       *dfs.FS
	policy   EvictPolicy
	perNode  sim.Bytes
	used     map[cluster.NodeID]sim.Bytes
	entries  map[dfs.BlockID]*entry
	lruList  *list.List // front = most recent
	fileUses map[string]int

	// Stats.
	Hits, Misses, Insertions, Evictions int
}

// New attaches a cache to the file system with the given per-node memory
// budget.
func New(fs *dfs.FS, perNodeBudget sim.Bytes, policy EvictPolicy) (*Cache, error) {
	if perNodeBudget <= 0 {
		return nil, fmt.Errorf("cache: per-node budget must be positive")
	}
	c := &Cache{
		fs:       fs,
		policy:   policy,
		perNode:  perNodeBudget,
		used:     make(map[cluster.NodeID]sim.Bytes),
		entries:  make(map[dfs.BlockID]*entry),
		lruList:  list.New(),
		fileUses: make(map[string]int),
	}
	if err := fs.OnRead(c.onRead); err != nil {
		return nil, err
	}
	return c, nil
}

// Policy reports the eviction policy.
func (c *Cache) Policy() EvictPolicy { return c.policy }

// Resident reports the number of cached blocks.
func (c *Cache) Resident() int { return len(c.entries) }

// UsedOn reports cached bytes charged to a node.
func (c *Cache) UsedOn(n cluster.NodeID) sim.Bytes { return c.used[n] }

// onRead observes every block read.
func (c *Cache) onRead(id dfs.BlockID, at cluster.NodeID) {
	b := c.fs.Block(id)
	c.fileUses[b.File]++
	if e, ok := c.entries[id]; ok {
		// Validate: another subsystem (e.g. DYRS implicit eviction) may
		// have dropped the underlying replica.
		if c.fs.DataNode(e.node).HasMem(id) {
			c.Hits++
			e.uses++
			c.lruList.MoveToFront(e.lru)
			return
		}
		c.remove(e, false)
	}
	c.Misses++
	c.insert(b, at)
}

// insert caches the block on a disk-replica holder, evicting as needed.
// Memory replicas live where the block resides on disk (the PACMan
// model, and the DFS structural invariant): the holder nearest the
// reader — the reader itself when it holds a replica — keeps the block
// buffered, and the cluster-wide read redirect serves later readers
// from there wherever they run.
func (c *Cache) insert(b *dfs.Block, at cluster.NodeID) {
	if b.Size > c.perNode {
		return // would never fit
	}
	node, ok := c.placement(b.ID, at)
	if !ok {
		return // no live disk replica to anchor to
	}
	for c.used[node]+b.Size > c.perNode {
		if !c.evictOne(node) {
			return // nothing evictable on this node
		}
	}
	// If the block is already resident elsewhere (e.g. a DYRS migration
	// placed it), don't double-cache; count residency only.
	if _, resident := c.fs.MemReplica(b.ID); resident {
		return
	}
	c.fs.RegisterMem(b.ID, node)
	e := &entry{block: b, node: node, uses: 1}
	e.lru = c.lruList.PushFront(e)
	c.entries[b.ID] = e
	c.used[node] += b.Size
	c.Insertions++
}

// placement picks the node to buffer the block on: the reading node if
// it holds a live disk replica, otherwise the first live replica holder
// in registry order (deterministic).
func (c *Cache) placement(id dfs.BlockID, at cluster.NodeID) (cluster.NodeID, bool) {
	live := c.fs.Replicas(id)
	for _, r := range live {
		if r == at {
			return at, true
		}
	}
	if len(live) == 0 {
		return 0, false
	}
	return live[0], true
}

// evictOne removes one block from the given node per policy. Reports
// whether anything was evicted.
func (c *Cache) evictOne(node cluster.NodeID) bool {
	var victim *entry
	switch c.policy {
	case LRU:
		for el := c.lruList.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e.node == node {
				victim = e
				break
			}
		}
	case LIFE:
		// Largest cached file on this node loses first.
		fileBytes := map[string]sim.Bytes{}
		for _, e := range c.entries {
			fileBytes[e.block.File] += e.block.Size
		}
		var worstFile string
		var worst sim.Bytes = -1
		for _, e := range c.entries {
			if e.node != node {
				continue
			}
			if fb := fileBytes[e.block.File]; fb > worst {
				worst = fb
				worstFile = e.block.File
			}
		}
		for _, e := range c.entries {
			if e.node == node && e.block.File == worstFile {
				victim = e
				break
			}
		}
	case LFU:
		best := int(^uint(0) >> 1)
		for _, e := range c.entries {
			if e.node != node {
				continue
			}
			if u := c.fileUses[e.block.File]; u < best {
				best = u
				victim = e
			}
		}
	}
	if victim == nil {
		return false
	}
	c.remove(victim, true)
	return true
}

// remove deletes an entry, optionally dropping the replica from the DFS
// registry (stale entries skip the drop: the replica is already gone).
func (c *Cache) remove(e *entry, dropReplica bool) {
	if dropReplica {
		c.fs.DropMem(e.block.ID, e.node)
		c.Evictions++
	}
	c.lruList.Remove(e.lru)
	delete(c.entries, e.block.ID)
	c.used[e.node] -= e.block.Size
}

// Flush drops every cached block.
func (c *Cache) Flush() {
	for _, e := range c.entries {
		c.fs.DropMem(e.block.ID, e.node)
		c.lruList.Remove(e.lru)
		c.used[e.node] -= e.block.Size
	}
	c.entries = make(map[dfs.BlockID]*entry)
}

// HitRate reports hits / (hits + misses).
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
