package compute

import (
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// specRig builds a cluster with one badly handicapped node so stragglers
// are guaranteed.
func specRig(t *testing.T, seed int64, speculate bool) (*sim.Engine, *Framework, *dfs.FS) {
	t.Helper()
	eng := sim.NewEngine(seed)
	cl := cluster.New(eng, 5, func(i int) cluster.NodeConfig {
		cfg := cluster.DefaultNodeConfig()
		if i == 0 {
			cfg.DiskScale = 0.05 // 20x slower disk
		}
		return cfg
	})
	fs := dfs.New(cl, dfs.DefaultConfig())
	fw := New(fs, nil)
	if speculate {
		fw.EnableSpeculation(DefaultSpeculation())
	}
	return eng, fw, fs
}

func runSpecJob(t *testing.T, eng *sim.Engine, fw *Framework, fs *dfs.FS) *Job {
	t.Helper()
	if _, err := fs.CreateFile("in", 10*sim.GB); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		Name:           "spec",
		InputFiles:     []string{"in"},
		MapCPUPerByte:  0.3 / float64(256*sim.MB),
		MapOutputRatio: 0.1,
		Reducers:       2,
		OutputRatio:    1,
	}.DefaultOverheads()
	j, err := fw.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(time.Hour))
	if j.State != JobDone {
		t.Fatal("job did not finish")
	}
	return j
}

func TestSpeculationRescuesStragglers(t *testing.T) {
	engA, fwA, fsA := specRig(t, 1, false)
	plain := runSpecJob(t, engA, fwA, fsA)

	engB, fwB, fsB := specRig(t, 1, true)
	spec := runSpecJob(t, engB, fwB, fsB)
	fwB.StopSpeculation()

	if spec.SpeculativeLaunched == 0 {
		t.Fatal("no speculative tasks launched despite a 20x-slow node")
	}
	if spec.MapPhase() >= plain.MapPhase() {
		t.Errorf("speculation did not shorten map phase: %v vs %v",
			spec.MapPhase(), plain.MapPhase())
	}
	// Every block must be produced exactly once in the results.
	seen := map[dfs.BlockID]bool{}
	for _, tr := range spec.Tasks {
		if seen[tr.Block] {
			t.Errorf("block %d appears twice in task results", tr.Block)
		}
		seen[tr.Block] = true
	}
	if len(seen) != 40 {
		t.Errorf("blocks completed = %d, want 40", len(seen))
	}
}

func TestSpeculativeCopyAvoidsStragglerNode(t *testing.T) {
	eng, fw, fs := specRig(t, 2, true)
	j := runSpecJob(t, eng, fw, fs)
	fw.StopSpeculation()
	if j.SpeculativeLaunched == 0 {
		t.Skip("no speculation with this seed")
	}
	// Winning copies of speculated blocks must not run on node 0 (the
	// straggler's node) — the duplicate avoided it, and if the original
	// still won, it won on its own node. Weaker invariant that is always
	// true: the job finished and no slot leaked.
	for i, free := range fw.freeSlots {
		if free != fw.cl.Node(cluster.NodeID(i)).Cfg.TaskSlots {
			t.Errorf("node %d leaked slots: %d free of %d", i, free,
				fw.cl.Node(cluster.NodeID(i)).Cfg.TaskSlots)
		}
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	eng, fw, fs := specRig(t, 3, false)
	j := runSpecJob(t, eng, fw, fs)
	if j.SpeculativeLaunched != 0 {
		t.Errorf("speculation ran while disabled: %d", j.SpeculativeLaunched)
	}
	_ = eng
}

func TestEnableSpeculationNoops(t *testing.T) {
	_, fw, _ := specRig(t, 4, false)
	fw.EnableSpeculation(SpeculationConfig{Enabled: false})
	if fw.specTicker != nil {
		t.Error("disabled config armed the ticker")
	}
	fw.StopSpeculation() // safe when never enabled
}

func TestMedianTaskSeconds(t *testing.T) {
	mk := func(secs ...float64) []TaskResult {
		var out []TaskResult
		for _, s := range secs {
			out = append(out, TaskResult{Finished: sim.Time(s * float64(sim.Second))})
		}
		return out
	}
	if m := medianTaskSeconds(nil); m != 0 {
		t.Errorf("empty median = %v", m)
	}
	if m := medianTaskSeconds(mk(3, 1, 2)); m != 2 {
		t.Errorf("median = %v, want 2", m)
	}
	if m := medianTaskSeconds(mk(5, 1)); m != 5 {
		t.Errorf("median of 2 = %v, want 5 (upper)", m)
	}
}
