package compute

import (
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// Speculative execution: Hadoop-style straggler mitigation. When a map
// task has been running much longer than the job's typical task, a
// duplicate is launched on a different node and the first copy to finish
// wins. It interacts with DYRS in an interesting way: migration removes
// the slow-disk stragglers that speculation exists to paper over, so
// DYRS runs launch far fewer speculative copies.

// SpeculationConfig tunes the mechanism.
type SpeculationConfig struct {
	// Enabled turns speculation on for map tasks.
	Enabled bool
	// SlowdownFactor is how many times the job's median completed-task
	// duration a task must exceed before a copy launches.
	SlowdownFactor float64
	// MinRuntime is the minimum elapsed time before a task can be
	// speculated, so short jobs don't thrash.
	MinRuntime time.Duration
	// CheckInterval is how often running tasks are scanned.
	CheckInterval time.Duration
}

// DefaultSpeculation mirrors Hadoop's defaults in spirit.
func DefaultSpeculation() SpeculationConfig {
	return SpeculationConfig{
		Enabled:        true,
		SlowdownFactor: 1.5,
		MinRuntime:     5 * time.Second,
		CheckInterval:  time.Second,
	}
}

// runningMap tracks one executing copy of a map task.
type runningMap struct {
	task       *task
	node       cluster.NodeID
	started    sim.Time
	speculated bool // a duplicate has been launched for this block
}

// EnableSpeculation turns on speculative execution for all subsequently
// running jobs. Call before submitting work.
func (fw *Framework) EnableSpeculation(cfg SpeculationConfig) {
	if !cfg.Enabled {
		return
	}
	if cfg.SlowdownFactor <= 1 {
		cfg.SlowdownFactor = 1.5
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = time.Second
	}
	fw.specCfg = cfg
	if fw.specTicker == nil {
		fw.specTicker = sim.NewTicker(fw.eng, cfg.CheckInterval, fw.speculate)
	}
}

// StopSpeculation halts the scanner (end of experiment).
func (fw *Framework) StopSpeculation() {
	if fw.specTicker != nil {
		fw.specTicker.Stop()
		fw.specTicker = nil
	}
}

// speculate scans running map tasks and duplicates stragglers.
func (fw *Framework) speculate() {
	now := fw.eng.Now()
	for _, j := range fw.jobs {
		if j.State != JobRunning || len(j.Tasks) == 0 {
			continue
		}
		// Median completed map duration for this job.
		med := medianTaskSeconds(j.Tasks)
		if med <= 0 {
			continue
		}
		threshold := med * fw.specCfg.SlowdownFactor
		for _, rm := range j.running {
			if rm.speculated || j.doneBlocks[rm.task.block.ID] {
				continue
			}
			elapsed := now.Sub(rm.started)
			if elapsed < fw.specCfg.MinRuntime || elapsed.Seconds() < threshold {
				continue
			}
			rm.speculated = true
			j.SpeculativeLaunched++
			dup := &task{
				job:    j,
				block:  rm.task.block,
				isMap:  true,
				queued: now,
				avoid:  rm.node,
			}
			fw.pending = append(fw.pending, dup)
		}
		if j.SpeculativeLaunched > 0 {
			fw.trySchedule()
		}
	}
}

func medianTaskSeconds(tasks []TaskResult) float64 {
	if len(tasks) == 0 {
		return 0
	}
	ds := make([]float64, 0, len(tasks))
	for _, t := range tasks {
		ds = append(ds, t.Duration().Seconds())
	}
	// Insertion sort: task lists are small and this avoids pulling in a
	// dependency on sort for a hot path.
	for i := 1; i < len(ds); i++ {
		for k := i; k > 0 && ds[k] < ds[k-1]; k-- {
			ds[k], ds[k-1] = ds[k-1], ds[k]
		}
	}
	return ds[len(ds)/2]
}

// blockDone reports whether the job already has a winning copy for the
// block; used to discard losers of speculative races.
func (j *Job) blockDone(id dfs.BlockID) bool { return j.doneBlocks[id] }
