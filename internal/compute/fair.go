package compute

// SchedPolicy selects how pending tasks compete for free slots across
// jobs.
type SchedPolicy int

const (
	// SchedFIFO serves pending tasks in submission order — a saturated
	// cluster runs jobs roughly one after another (Hadoop's default
	// FIFO scheduler).
	SchedFIFO SchedPolicy = iota
	// SchedFair balances running tasks across jobs (Hadoop's Fair
	// Scheduler in spirit): the job with the fewest running tasks
	// schedules next, so small jobs are not starved behind large ones.
	// Fair sharing also spreads lead-time more evenly, which interacts
	// with migration: more jobs are concurrently "almost ready" instead
	// of one job hogging both slots and disk.
	SchedFair
)

// String names the policy.
func (p SchedPolicy) String() string {
	if p == SchedFair {
		return "fair"
	}
	return "fifo"
}

// SetSchedPolicy selects the cross-job scheduling policy. Call before
// submitting work.
func (fw *Framework) SetSchedPolicy(p SchedPolicy) { fw.sched = p }

// fairOrder returns the indices of fw.pending in scheduling order for
// the fair policy: tasks whose jobs have the fewest running tasks first,
// stable within a job. Counts include assignments made earlier in the
// same scheduling pass (the caller updates them via the returned map).
func (fw *Framework) fairOrder() ([]int, map[*Job]int) {
	running := make(map[*Job]int)
	for _, j := range fw.jobs {
		if j.State == JobRunning {
			running[j] = j.mapsRunning + (j.Spec.Reducers - j.reducersLeft)
			if running[j] < 0 {
				running[j] = 0
			}
		}
	}
	idx := make([]int, len(fw.pending))
	for i := range idx {
		idx[i] = i
	}
	// Selection sort by current running count; n is small and counts
	// change as slots are assigned, so a simple repeated-min is clearest.
	order := make([]int, 0, len(idx))
	used := make([]bool, len(idx))
	for range idx {
		best := -1
		for i := range fw.pending {
			if used[i] {
				continue
			}
			if best < 0 || running[fw.pending[i].job] < running[fw.pending[best].job] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		order = append(order, best)
		running[fw.pending[best].job]++
	}
	return order, running
}
