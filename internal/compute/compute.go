// Package compute is the data-processing substrate: a YARN-like
// slot-based cluster scheduler running MapReduce-style jobs over the
// simulated DFS. It provides everything the DYRS evaluation needs from
// Tez/Hadoop: job queueing (the main source of lead-time), per-job
// platform overhead, locality-aware map task placement, shuffle and
// reduce phases, and the migration hook in the job submitter (§IV-B).
package compute

import (
	"fmt"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// JobSpec describes one MapReduce job.
type JobSpec struct {
	// Name labels the job in results.
	Name string
	// InputFiles are DFS files; one map task runs per input block.
	InputFiles []string

	// MapCPUPerByte is seconds of map computation per input byte.
	MapCPUPerByte float64
	// MapOutputRatio is shuffle bytes produced per input byte (the
	// paper's motivating jobs filter heavily, so this is usually small).
	MapOutputRatio float64

	// Reducers is the number of reduce tasks; 0 makes a map-only job.
	Reducers int
	// ReduceCPUPerByte is seconds of reduce computation per shuffle byte.
	ReduceCPUPerByte float64
	// OutputRatio is job output bytes per shuffle byte.
	OutputRatio float64
	// OutputReplication is the DFS replication of the job output.
	OutputReplication int

	// PlatformOverhead is fixed job-setup time between submission and
	// tasks becoming runnable (container launch, JVM warm-up) — a main
	// source of lead-time (§II-C1).
	PlatformOverhead time.Duration
	// ExtraLeadTime is artificially inserted lead-time (Fig. 11).
	ExtraLeadTime time.Duration
	// TaskOverhead is fixed per-task startup time.
	TaskOverhead time.Duration

	// Migrate requests input migration at submission; ImplicitEvict opts
	// into eviction-on-read.
	Migrate       bool
	ImplicitEvict bool
}

// DefaultOverheads fills in the typical constants used across the
// evaluation: 1.5 s platform overhead and 0.3 s task overhead.
func (s JobSpec) DefaultOverheads() JobSpec {
	if s.PlatformOverhead == 0 {
		s.PlatformOverhead = 1500 * time.Millisecond
	}
	if s.TaskOverhead == 0 {
		s.TaskOverhead = 300 * time.Millisecond
	}
	if s.OutputReplication == 0 {
		s.OutputReplication = 1
	}
	return s
}

// TaskResult records one map task's execution.
type TaskResult struct {
	Block    dfs.BlockID
	Node     cluster.NodeID
	Source   dfs.ReadSource
	Started  sim.Time
	ReadDone sim.Time
	Finished sim.Time
}

// Duration reports the task's total runtime.
func (t TaskResult) Duration() sim.Duration { return t.Finished.Sub(t.Started) }

// ReadTime reports time spent reading the input block.
func (t TaskResult) ReadTime() sim.Duration { return t.ReadDone.Sub(t.Started) }

// JobState tracks a job through its lifecycle.
type JobState int

// Job lifecycle states.
const (
	JobQueued JobState = iota
	JobRunning
	JobDone
)

// Job is a submitted job instance.
type Job struct {
	ID   migration.JobID
	Spec JobSpec

	Submitted    sim.Time
	Ready        sim.Time // tasks runnable (after overhead + extra lead)
	FirstTask    sim.Time
	MapDone      sim.Time
	Finished     sim.Time
	State        JobState
	InputBytes   sim.Bytes
	ShuffleBytes sim.Bytes
	OutputBytes  sim.Bytes

	Tasks []TaskResult

	// SpeculativeLaunched counts duplicate map tasks launched by
	// speculative execution for this job.
	SpeculativeLaunched int

	fw           *Framework
	span         trace.SpanRef // job lifecycle span (submission to finish)
	mapsPending  int
	mapsRunning  int
	mapsDone     int
	totalMaps    int
	reducersLeft int
	started      bool
	running      map[*task]*runningMap
	doneBlocks   map[dfs.BlockID]bool
}

// Duration reports submission-to-completion time (the paper's job
// duration, which includes lead-time).
func (j *Job) Duration() sim.Duration { return j.Finished.Sub(j.Submitted) }

// MapPhase reports the duration of the map phase: first task launch to
// last map completion.
func (j *Job) MapPhase() sim.Duration { return j.MapDone.Sub(j.FirstTask) }

// LeadTime reports submission-to-first-task time — exactly the paper's
// job lead-time definition (§II-C1).
func (j *Job) LeadTime() sim.Duration { return j.FirstTask.Sub(j.Submitted) }

// task is one schedulable unit.
type task struct {
	job     *Job
	block   *dfs.Block // nil for reduce tasks
	isMap   bool
	reducer int
	queued  sim.Time       // when the task became runnable
	avoid   cluster.NodeID // node to avoid (speculative copies); -1 = none
}

// Framework is the cluster compute scheduler.
type Framework struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *dfs.FS
	mgr migration.Manager
	tr  *trace.Tracer // run tracer; nil (no-op) when untraced

	freeSlots []int
	pending   []*task
	jobs      map[migration.JobID]*Job
	nextID    migration.JobID
	done      []*Job
	onDone    []func(*Job)

	// LocalityDelay is how long a map task waits for a slot on a node
	// holding its data before settling for a non-local slot — Hadoop's
	// delay scheduling. Zero disables the wait.
	LocalityDelay sim.Duration

	// Speculative execution state (see speculation.go).
	specCfg    SpeculationConfig
	specTicker *sim.Ticker

	// sched selects the cross-job scheduling policy (see fair.go).
	sched SchedPolicy

	// scheduling rotation for non-local placement
	rot int
	// retry is armed when tasks were deferred waiting for locality.
	retry *sim.Event
}

// New creates a compute framework over the file system, wiring the
// migration manager into the job submitter.
func New(fs *dfs.FS, mgr migration.Manager) *Framework {
	if mgr == nil {
		mgr = migration.None{}
	}
	cl := fs.Cluster()
	fw := &Framework{
		eng:           cl.Engine(),
		cl:            cl,
		fs:            fs,
		mgr:           mgr,
		tr:            trace.FromEngine(cl.Engine()),
		jobs:          make(map[migration.JobID]*Job),
		LocalityDelay: 3 * time.Second,
	}
	for _, n := range cl.Nodes() {
		fw.freeSlots = append(fw.freeSlots, n.Cfg.TaskSlots)
	}
	return fw
}

// JobActive implements migration.ActiveJobChecker for scavenging.
func (fw *Framework) JobActive(id migration.JobID) bool {
	j, ok := fw.jobs[id]
	return ok && j.State != JobDone
}

// OnJobDone registers a completion callback.
func (fw *Framework) OnJobDone(fn func(*Job)) { fw.onDone = append(fw.onDone, fn) }

// Results returns completed jobs in completion order.
func (fw *Framework) Results() []*Job { return fw.done }

// Job returns a submitted job by id.
func (fw *Framework) Job(id migration.JobID) *Job { return fw.jobs[id] }

// Submit enters a job at the current instant. The migration request is
// issued immediately — inside the job submitter, before any platform
// overhead, to maximize usable lead-time (§IV-B).
func (fw *Framework) Submit(spec JobSpec) (*Job, error) {
	blocks, err := fw.fs.FileBlocks(spec.InputFiles)
	if err != nil {
		return nil, fmt.Errorf("compute: %w", err)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("compute: job %q has no input blocks", spec.Name)
	}
	fw.nextID++
	j := &Job{
		ID:         fw.nextID,
		Spec:       spec,
		Submitted:  fw.eng.Now(),
		State:      JobQueued,
		fw:         fw,
		totalMaps:  len(blocks),
		running:    make(map[*task]*runningMap),
		doneBlocks: make(map[dfs.BlockID]bool),
	}
	for _, b := range blocks {
		j.InputBytes += b.Size
	}
	j.ShuffleBytes = sim.Bytes(float64(j.InputBytes) * spec.MapOutputRatio)
	j.OutputBytes = sim.Bytes(float64(j.ShuffleBytes) * spec.OutputRatio)
	fw.jobs[j.ID] = j
	if fw.tr.Enabled() {
		name := spec.Name
		if name == "" {
			name = "job"
		}
		j.span = fw.tr.Begin("job", name, trace.NodeMaster,
			trace.Int("job", int64(j.ID)),
			trace.Int("maps", int64(j.totalMaps)),
			trace.Int("input-bytes", int64(j.InputBytes)))
	}

	if spec.Migrate {
		if err := fw.mgr.Migrate(j.ID, spec.InputFiles, spec.ImplicitEvict); err != nil {
			return nil, err
		}
		// Scheduler cooperation: tell the migration master when this
		// job's tasks are expected to launch and how much input it has,
		// so deadline- and size-aware ordering policies can use it.
		if hs, ok := fw.mgr.(migration.HintSink); ok {
			hs.SetJobHint(j.ID, migration.JobHint{
				ExpectedStart: fw.eng.Now().Add(spec.PlatformOverhead + spec.ExtraLeadTime),
				InputBytes:    j.InputBytes,
			})
		}
	}

	lead := spec.PlatformOverhead + spec.ExtraLeadTime
	fw.eng.Schedule(lead, func() {
		j.Ready = fw.eng.Now()
		j.State = JobRunning
		for _, b := range blocks {
			fw.pending = append(fw.pending, &task{job: j, block: b, isMap: true, queued: fw.eng.Now(), avoid: -1})
			j.mapsPending++
		}
		fw.trySchedule()
	})
	return j, nil
}

// SubmitAt schedules a submission at a future instant (trace replay).
func (fw *Framework) SubmitAt(at sim.Time, spec JobSpec, cb func(*Job, error)) {
	fw.eng.At(at, func() {
		j, err := fw.Submit(spec)
		if cb != nil {
			cb(j, err)
		}
	})
}

// trySchedule assigns pending tasks to free slots. Map tasks prefer the
// node holding the in-memory replica of their block, then any node with
// a disk replica; like Hadoop's delay scheduling they wait up to
// LocalityDelay for a local slot before settling for any free slot.
// Reduce tasks take any free slot, rotating for balance.
func (fw *Framework) trySchedule() {
	if len(fw.pending) == 0 {
		return
	}
	deferred := false
	var still []*task
	if fw.sched == SchedFair {
		order, _ := fw.fairOrder()
		assigned := make([]bool, len(fw.pending))
		for _, i := range order {
			t := fw.pending[i]
			node := fw.placeTask(t)
			if node < 0 {
				if t.isMap {
					deferred = true
				}
				continue
			}
			assigned[i] = true
			fw.freeSlots[int(node)]--
			fw.launch(t, node)
		}
		for i, t := range fw.pending {
			if !assigned[i] {
				still = append(still, t)
			}
		}
	} else {
		for _, t := range fw.pending {
			node := fw.placeTask(t)
			if node < 0 {
				still = append(still, t)
				if t.isMap {
					deferred = true
				}
				continue
			}
			fw.freeSlots[int(node)]--
			fw.launch(t, node)
		}
	}
	fw.pending = still
	if deferred && fw.retry == nil {
		// A deferred task's locality delay can expire without any other
		// event firing; poll for it.
		fw.retry = fw.eng.Schedule(500*time.Millisecond, func() {
			fw.retry = nil
			fw.trySchedule()
		})
	}
}

// placeTask picks a node for the task, or -1 when the task should wait.
// Speculative duplicates avoid the node their straggling sibling runs on.
func (fw *Framework) placeTask(t *task) cluster.NodeID {
	ok := func(id cluster.NodeID) bool { return id != t.avoid && fw.slotFree(id) }
	if t.isMap {
		if mem, found := fw.fs.MemReplica(t.block.ID); found && ok(mem) {
			return mem
		}
		for _, r := range fw.fs.Replicas(t.block.ID) {
			if ok(r) {
				return r
			}
		}
		// No local slot: hold out for locality until the delay expires.
		if fw.eng.Now().Sub(t.queued) < fw.LocalityDelay {
			return -1
		}
	}
	// Any free slot, rotating so non-local work spreads.
	n := fw.cl.Size()
	for i := 0; i < n; i++ {
		id := cluster.NodeID((fw.rot + i) % n)
		if ok(id) {
			fw.rot = (int(id) + 1) % n
			return id
		}
	}
	return -1
}

func (fw *Framework) slotFree(id cluster.NodeID) bool {
	return fw.cl.Node(id).Alive() && fw.freeSlots[int(id)] > 0
}

// launch runs a task on the chosen node.
func (fw *Framework) launch(t *task, node cluster.NodeID) {
	j := t.job
	start := fw.eng.Now()
	if t.isMap {
		isDup := t.avoid >= 0
		if !isDup {
			j.mapsPending--
			j.mapsRunning++
		}
		if !j.started {
			j.started = true
			j.FirstTask = start
		}
		j.running[t] = &runningMap{task: t, node: node, started: start, speculated: isDup}
		var tsp trace.SpanRef
		if fw.tr.Enabled() {
			tsp = j.span.Child("task", "map", int(node),
				trace.Int("job", int64(j.ID)),
				trace.Int("block", int64(t.block.ID)))
			if isDup {
				tsp.Annotate(trace.Str("speculative", "true"))
			}
			fw.tr.Inc("task.map")
		}
		fw.eng.Schedule(j.Spec.TaskOverhead, func() {
			err := fw.fs.ReadBlock(node, t.block.ID, func(rr dfs.ReadResult) {
				if rr.Failed {
					// Every replica vanished mid-failover: the task
					// fails; count the block done so the job finishes
					// degraded rather than hanging.
					delete(j.running, t)
					tsp.End(trace.Str("outcome", "failed"))
					if t.avoid >= 0 {
						fw.freeSlots[int(node)]++
						fw.trySchedule()
						return
					}
					j.doneBlocks[t.block.ID] = true
					fw.mapDone(j, node)
					return
				}
				cpu := sim.Duration(j.Spec.MapCPUPerByte * float64(t.block.Size) * float64(sim.Second))
				fw.eng.Schedule(cpu, func() {
					delete(j.running, t)
					if j.doneBlocks[t.block.ID] {
						// A speculative sibling already won; just free
						// the slot.
						tsp.End(trace.Str("outcome", "lost-race"))
						fw.freeSlots[int(node)]++
						fw.trySchedule()
						return
					}
					j.doneBlocks[t.block.ID] = true
					j.Tasks = append(j.Tasks, TaskResult{
						Block:    t.block.ID,
						Node:     node,
						Source:   rr.Source,
						Started:  start,
						ReadDone: rr.Finished,
						Finished: fw.eng.Now(),
					})
					tsp.End(trace.Str("source", rr.Source.String()))
					fw.mapDone(j, node)
				})
			})
			if err != nil {
				// No live replica: the task fails; count it done so the
				// job can finish degraded rather than hang.
				delete(j.running, t)
				tsp.End(trace.Str("outcome", "failed"))
				if isDup {
					fw.freeSlots[int(node)]++
					fw.trySchedule()
					return
				}
				j.doneBlocks[t.block.ID] = true
				fw.mapDone(j, node)
				return
			}
			// The slave sees the read call as it happens (§IV-A1):
			// notifying at read start lets the framework cancel
			// migrations the read has already made pointless.
			fw.mgr.NoteRead(j.ID, t.block.ID)
		})
		return
	}
	// Reduce task: fetch shuffle share over the NIC, compute, write output.
	share := j.ShuffleBytes / sim.Bytes(j.Spec.Reducers)
	outShare := j.OutputBytes / sim.Bytes(j.Spec.Reducers)
	var tsp trace.SpanRef
	if fw.tr.Enabled() {
		tsp = j.span.Child("task", "reduce", int(node),
			trace.Int("job", int64(j.ID)),
			trace.Int("reducer", int64(t.reducer)))
		fw.tr.Inc("task.reduce")
	}
	fw.eng.Schedule(j.Spec.TaskOverhead, func() {
		done := func() {
			tsp.End()
			fw.reduceDone(j, node)
		}
		finishCompute := func() {
			cpu := sim.Duration(j.Spec.ReduceCPUPerByte * float64(share) * float64(sim.Second))
			fw.eng.Schedule(cpu, func() {
				if outShare > 0 {
					fw.fs.WriteBlocks(node, outShare, j.Spec.OutputReplication, done)
				} else {
					done()
				}
			})
		}
		if share > 0 {
			fw.cl.Node(node).NIC.Start(share, func(*sim.Flow) { finishCompute() })
		} else {
			finishCompute()
		}
	})
}

func (fw *Framework) mapDone(j *Job, node cluster.NodeID) {
	j.mapsRunning--
	j.mapsDone++
	fw.freeSlots[int(node)]++
	if j.mapsDone == j.totalMaps {
		j.MapDone = fw.eng.Now()
		if j.Spec.Reducers > 0 && j.ShuffleBytes > 0 {
			j.reducersLeft = j.Spec.Reducers
			for r := 0; r < j.Spec.Reducers; r++ {
				fw.pending = append(fw.pending, &task{job: j, isMap: false, reducer: r, queued: fw.eng.Now(), avoid: -1})
			}
		} else {
			fw.finishJob(j)
		}
	}
	fw.trySchedule()
}

func (fw *Framework) reduceDone(j *Job, node cluster.NodeID) {
	fw.freeSlots[int(node)]++
	j.reducersLeft--
	if j.reducersLeft == 0 {
		fw.finishJob(j)
	}
	fw.trySchedule()
}

func (fw *Framework) finishJob(j *Job) {
	j.Finished = fw.eng.Now()
	j.State = JobDone
	j.span.End(trace.Dur("lead-time", j.LeadTime()))
	// Job completion evicts its inputs (the framework issues the evict
	// command on the job's behalf, §III-C3).
	fw.mgr.Evict(j.ID)
	fw.done = append(fw.done, j)
	for _, fn := range fw.onDone {
		fn(j)
	}
}

var _ migration.ActiveJobChecker = (*Framework)(nil)
