package compute

import (
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
)

type rig struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *dfs.FS
	c   *migration.Coordinator
	fw  *Framework
}

func newRig(t *testing.T, seed int64, nodes int, binder migration.Binder) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	cl := cluster.New(eng, nodes, nil)
	fsCfg := dfs.DefaultConfig()
	if fsCfg.Replication > nodes {
		fsCfg.Replication = nodes
	}
	fs := dfs.New(cl, fsCfg)
	var mgr migration.Manager = migration.None{}
	var c *migration.Coordinator
	if binder != nil {
		c = migration.NewCoordinator(fs, migration.DefaultConfig(), binder)
		mgr = c
	}
	fw := New(fs, mgr)
	if c != nil {
		c.SetScheduler(fw)
	}
	return &rig{eng: eng, cl: cl, fs: fs, c: c, fw: fw}
}

func basicSpec(files ...string) JobSpec {
	return JobSpec{
		Name:           "test",
		InputFiles:     files,
		MapCPUPerByte:  0.5 / float64(130*sim.MB), // light compute
		MapOutputRatio: 0.1,
		Reducers:       2,
		OutputRatio:    1.0,
	}.DefaultOverheads()
}

func TestJobRunsToCompletion(t *testing.T) {
	r := newRig(t, 1, 4, nil)
	r.fs.CreateFile("in", 4*256*sim.MB)
	j, err := r.fw.Submit(basicSpec("in"))
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if j.State != JobDone {
		t.Fatalf("job state = %v", j.State)
	}
	if len(j.Tasks) != 4 {
		t.Fatalf("tasks = %d, want 4", len(j.Tasks))
	}
	if j.Finished <= j.MapDone || j.MapDone <= j.FirstTask || j.FirstTask <= j.Submitted {
		t.Errorf("timeline out of order: sub=%v first=%v mapdone=%v fin=%v",
			j.Submitted, j.FirstTask, j.MapDone, j.Finished)
	}
	if j.LeadTime() < 1500*time.Millisecond {
		t.Errorf("lead time %v < platform overhead", j.LeadTime())
	}
	if got := r.fw.Results(); len(got) != 1 || got[0] != j {
		t.Errorf("results wrong: %v", got)
	}
}

func TestSubmitErrors(t *testing.T) {
	r := newRig(t, 2, 4, nil)
	if _, err := r.fw.Submit(basicSpec("missing")); err == nil {
		t.Error("missing input should fail")
	}
	if _, err := r.fw.Submit(basicSpec()); err == nil {
		t.Error("no inputs should fail")
	}
}

func TestMapOnlyJob(t *testing.T) {
	r := newRig(t, 3, 4, nil)
	r.fs.CreateFile("in", 2*256*sim.MB)
	spec := basicSpec("in")
	spec.Reducers = 0
	j, err := r.fw.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if j.State != JobDone {
		t.Fatal("map-only job did not finish")
	}
	if j.Finished != j.MapDone {
		t.Errorf("map-only job should end at MapDone: %v vs %v", j.Finished, j.MapDone)
	}
}

func TestLocalityPreferred(t *testing.T) {
	r := newRig(t, 4, 7, nil)
	r.fs.CreateFile("in", 8*256*sim.MB)
	j, _ := r.fw.Submit(basicSpec("in"))
	r.eng.Run()
	local := 0
	for _, tr := range j.Tasks {
		if tr.Source == dfs.SourceDiskLocal {
			local++
		}
	}
	// With 7 nodes x 10 slots and only 8 tasks, every task should have
	// found a slot on a replica holder.
	if local != 8 {
		t.Errorf("local reads = %d of 8", local)
	}
}

func TestMigrationAcceleratesJob(t *testing.T) {
	run := func(migrate bool, extraLead time.Duration) sim.Duration {
		binder := migration.Binder(nil)
		if migrate {
			binder = migration.NewDYRSBinder()
		}
		r := newRig(t, 5, 7, binder)
		r.fs.CreateFile("in", 20*256*sim.MB)
		spec := basicSpec("in")
		spec.Migrate = migrate
		spec.ImplicitEvict = migrate
		spec.ExtraLeadTime = extraLead
		j, err := r.fw.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		r.eng.RunUntil(sim.Time(30 * time.Minute))
		if r.c != nil {
			r.c.Shutdown()
		}
		if j.State != JobDone {
			t.Fatal("job did not finish")
		}
		return j.MapPhase()
	}
	base := run(false, 0)
	// Generous lead time lets DYRS migrate everything before tasks start.
	accel := run(true, 30*time.Second)
	if accel >= base {
		t.Errorf("migration did not speed up map phase: %v vs %v", accel, base)
	}
	if float64(accel) > 0.6*float64(base) {
		t.Errorf("speedup too small: %v vs %v", accel, base)
	}
}

func TestMemoryReadsAfterMigration(t *testing.T) {
	r := newRig(t, 6, 7, migration.NewDYRSBinder())
	r.fs.CreateFile("in", 10*256*sim.MB)
	spec := basicSpec("in")
	spec.Migrate = true
	spec.ImplicitEvict = true
	spec.ExtraLeadTime = 30 * time.Second
	j, _ := r.fw.Submit(spec)
	r.eng.RunUntil(sim.Time(30 * time.Minute))
	r.c.Shutdown()
	mem := 0
	for _, tr := range j.Tasks {
		if tr.Source.FromMemory() {
			mem++
		}
	}
	if mem < 8 {
		t.Errorf("only %d of 10 tasks read from memory", mem)
	}
	// Implicit eviction: after the job, buffers must be empty.
	if r.fs.TotalMemUsed() != 0 {
		t.Errorf("memory not drained after job: %d", r.fs.TotalMemUsed())
	}
	st := r.c.Stats()
	if st.MemoryHits < 8 {
		t.Errorf("memory hits = %d", st.MemoryHits)
	}
}

func TestEvictOnJobCompletion(t *testing.T) {
	r := newRig(t, 7, 7, migration.NewDYRSBinder())
	r.fs.CreateFile("in", 6*256*sim.MB)
	spec := basicSpec("in")
	spec.Migrate = true
	spec.ImplicitEvict = false // explicit mode: eviction happens at job end
	spec.ExtraLeadTime = 30 * time.Second
	r.fw.Submit(spec)
	r.eng.RunUntil(sim.Time(30 * time.Minute))
	r.c.Shutdown()
	if r.fs.TotalMemUsed() != 0 {
		t.Errorf("explicit eviction at job end did not drain memory: %d", r.fs.TotalMemUsed())
	}
}

func TestSlotsLimitConcurrency(t *testing.T) {
	eng := sim.NewEngine(8)
	cl := cluster.New(eng, 2, func(int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		c.TaskSlots = 2
		return c
	})
	fsCfg := dfs.DefaultConfig()
	fsCfg.Replication = 2
	fs := dfs.New(cl, fsCfg)
	fw := New(fs, nil)
	fs.CreateFile("in", 12*256*sim.MB)
	spec := basicSpec("in")
	spec.Reducers = 0
	j, err := fw.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Sample concurrency: running maps can never exceed 4 total slots.
	for i := 1; i < 200; i++ {
		eng.RunUntil(sim.Time(time.Duration(i) * 500 * time.Millisecond))
		if j.mapsRunning > 4 {
			t.Fatalf("maps running = %d with 4 slots", j.mapsRunning)
		}
		if j.State == JobDone {
			break
		}
	}
	eng.Run()
	if j.State != JobDone {
		t.Fatal("job hung")
	}
}

func TestQueueingCreatesLeadTime(t *testing.T) {
	eng := sim.NewEngine(9)
	cl := cluster.New(eng, 2, func(int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		c.TaskSlots = 1
		return c
	})
	fsCfg := dfs.DefaultConfig()
	fsCfg.Replication = 2
	fs := dfs.New(cl, fsCfg)
	fw := New(fs, nil)
	fs.CreateFile("a", 8*256*sim.MB)
	fs.CreateFile("b", 2*256*sim.MB)
	specA := basicSpec("a")
	specA.Reducers = 0
	specB := basicSpec("b")
	specB.Reducers = 0
	ja, _ := fw.Submit(specA)
	jb, _ := fw.Submit(specB)
	eng.Run()
	// Job B queued behind A on a saturated cluster: its lead time must
	// exceed its platform overhead substantially.
	if jb.LeadTime() < 2*specB.PlatformOverhead {
		t.Errorf("queued job lead time = %v, expected queueing delay", jb.LeadTime())
	}
	if ja.State != JobDone || jb.State != JobDone {
		t.Error("jobs did not finish")
	}
}

func TestSubmitAt(t *testing.T) {
	r := newRig(t, 10, 4, nil)
	r.fs.CreateFile("in", 256*sim.MB)
	var j *Job
	r.fw.SubmitAt(sim.Time(5*time.Second), basicSpec("in"), func(job *Job, err error) {
		if err != nil {
			t.Error(err)
		}
		j = job
	})
	r.eng.Run()
	if j == nil || j.Submitted != sim.Time(5*time.Second) {
		t.Fatalf("SubmitAt wrong: %+v", j)
	}
}

func TestJobActiveChecker(t *testing.T) {
	r := newRig(t, 11, 4, nil)
	r.fs.CreateFile("in", 256*sim.MB)
	j, _ := r.fw.Submit(basicSpec("in"))
	if !r.fw.JobActive(j.ID) {
		t.Error("running job reported inactive")
	}
	if r.fw.JobActive(999) {
		t.Error("unknown job reported active")
	}
	r.eng.Run()
	if r.fw.JobActive(j.ID) {
		t.Error("finished job reported active")
	}
}

func TestOnJobDoneCallback(t *testing.T) {
	r := newRig(t, 12, 4, nil)
	r.fs.CreateFile("in", 256*sim.MB)
	var got *Job
	r.fw.OnJobDone(func(j *Job) { got = j })
	j, _ := r.fw.Submit(basicSpec("in"))
	r.eng.Run()
	if got != j {
		t.Error("completion callback not invoked")
	}
}

func TestConcurrentJobsAllFinish(t *testing.T) {
	r := newRig(t, 13, 7, migration.NewDYRSBinder())
	r.fw = New(r.fs, r.c)
	r.c.SetScheduler(r.fw)
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		r.fs.CreateFile(name, sim.Bytes(1+i)*256*sim.MB)
		spec := basicSpec(name)
		spec.Migrate = true
		spec.ImplicitEvict = true
		r.fw.SubmitAt(sim.Time(time.Duration(i)*2*time.Second), spec, nil)
	}
	r.eng.RunUntil(sim.Time(30 * time.Minute))
	if len(r.fw.Results()) != 6 {
		t.Fatalf("finished %d of 6 jobs", len(r.fw.Results()))
	}
	if r.fs.TotalMemUsed() != 0 {
		t.Errorf("memory leaked: %d bytes", r.fs.TotalMemUsed())
	}
	r.c.Shutdown()
}

func TestTaskResultAccessors(t *testing.T) {
	tr := TaskResult{
		Started:  sim.Time(1 * time.Second),
		ReadDone: sim.Time(3 * time.Second),
		Finished: sim.Time(4 * time.Second),
	}
	if tr.Duration() != 3*time.Second || tr.ReadTime() != 2*time.Second {
		t.Errorf("accessors wrong: %v %v", tr.Duration(), tr.ReadTime())
	}
}

func TestDelaySchedulingWaitsForLocality(t *testing.T) {
	// One node holds all replicas (replication 1) and is fully busy; a
	// new task must wait out the locality delay before going remote.
	eng := sim.NewEngine(20)
	cl := cluster.New(eng, 2, func(i int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		c.TaskSlots = 2
		return c
	})
	fsCfg := dfs.DefaultConfig()
	fsCfg.Replication = 1
	fs := dfs.New(cl, fsCfg)
	fw := New(fs, nil)
	fw.LocalityDelay = 5 * time.Second
	// Two big files hog the replica-holder's slots, then a third task
	// must choose: wait for locality or run remotely.
	fs.CreateFile("a", 3*256*sim.MB)
	spec := JobSpec{
		Name:          "delay",
		InputFiles:    []string{"a"},
		MapCPUPerByte: 6.0 / float64(256*sim.MB), // long compute holds slots
		Reducers:      0,
	}.DefaultOverheads()
	j, err := fw.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(time.Hour))
	if j.State != JobDone {
		t.Fatal("job hung")
	}
	// With 3 blocks all on one 2-slot node, the third task waited; after
	// the delay it may have gone remote. Either way, at least two tasks
	// must have read disk-locally.
	local := 0
	for _, tr := range j.Tasks {
		if tr.Source == dfs.SourceDiskLocal {
			local++
		}
	}
	if local < 2 {
		t.Errorf("local reads = %d, delay scheduling not effective", local)
	}
}

func TestSchedulerHintsReachMigration(t *testing.T) {
	eng := sim.NewEngine(21)
	cl := cluster.New(eng, 4, nil)
	fsCfg := dfs.DefaultConfig()
	fsCfg.Replication = 3
	fs := dfs.New(cl, fsCfg)
	mcfg := migration.DefaultConfig()
	mcfg.Order = migration.OrderEDF
	coord := migration.NewCoordinator(fs, mcfg, migration.NewDYRSBinder())
	defer coord.Shutdown()
	fw := New(fs, coord)
	coord.SetScheduler(fw)
	fs.CreateFile("in", 512*sim.MB)
	spec := basicSpec("in")
	spec.Migrate = true
	spec.ExtraLeadTime = 7 * time.Second
	j, err := fw.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The submitter must have passed a hint with the expected start.
	eng.RunUntil(sim.Time(time.Minute))
	if j.State != JobDone {
		t.Fatal("job hung")
	}
}

func TestFairSchedulerRescuesSmallJob(t *testing.T) {
	run := func(policy SchedPolicy) (small, big time.Duration) {
		eng := sim.NewEngine(22)
		cl := cluster.New(eng, 2, func(int) cluster.NodeConfig {
			c := cluster.DefaultNodeConfig()
			c.TaskSlots = 2
			return c
		})
		fsCfg := dfs.DefaultConfig()
		fsCfg.Replication = 2
		fs := dfs.New(cl, fsCfg)
		fw := New(fs, nil)
		fw.SetSchedPolicy(policy)
		fs.CreateFile("big", 16*256*sim.MB)
		fs.CreateFile("small", 256*sim.MB)
		bigSpec := basicSpec("big")
		bigSpec.Reducers = 0
		smallSpec := basicSpec("small")
		smallSpec.Reducers = 0
		jb, err := fw.Submit(bigSpec)
		if err != nil {
			t.Fatal(err)
		}
		js, err := fw.Submit(smallSpec)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(sim.Time(time.Hour))
		if jb.State != JobDone || js.State != JobDone {
			t.Fatal("jobs hung")
		}
		return js.Duration(), jb.Duration()
	}
	smallFIFO, _ := run(SchedFIFO)
	smallFair, bigFair := run(SchedFair)
	if smallFair >= smallFIFO {
		t.Errorf("fair did not help the small job: %v vs %v under FIFO", smallFair, smallFIFO)
	}
	if bigFair <= 0 {
		t.Error("big job lost under fair")
	}
}

func TestSchedPolicyString(t *testing.T) {
	if SchedFIFO.String() != "fifo" || SchedFair.String() != "fair" {
		t.Error("policy names wrong")
	}
}
