package telemetry

import (
	"bytes"
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/compute"
	"dyrs/internal/dfs"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// Under a real migrating workload the collector must see all three
// signals: disks busy with reads and migration copies, memory filling
// with pinned blocks, and NICs carrying remote reads and shuffle.
func TestSeriesUnderMigrationTraffic(t *testing.T) {
	eng := sim.NewEngine(11)
	cl := cluster.New(eng, 4, nil)
	cfg := dfs.DefaultConfig()
	if cfg.Replication > 4 {
		cfg.Replication = 4
	}
	fs := dfs.New(cl, cfg)
	coord := migration.NewCoordinator(fs, migration.DefaultConfig(), migration.NewDYRSBinder())
	defer coord.Shutdown()
	fw := compute.New(fs, coord)
	coord.SetScheduler(fw)

	col := Start(cl, fs, time.Second)
	defer col.Stop()

	if _, err := fs.CreateFile("input", 2*sim.GB); err != nil {
		t.Fatal(err)
	}
	spec := workload.SortSpec("input", 8, true)
	spec.ExtraLeadTime = 5 * time.Second
	j, err := fw.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(20 * time.Minute))
	if j.State != compute.JobDone {
		t.Fatal("job did not finish")
	}
	if coord.Stats().Migrated == 0 {
		t.Fatal("no migrations happened; test exercises nothing")
	}

	var memPeak, nicPeak, diskPeak float64
	for _, n := range cl.Nodes() {
		for _, p := range col.MemUsed(n.ID).Points() {
			if p.V > memPeak {
				memPeak = p.V
			}
		}
		for _, p := range col.NICUtilization(n.ID).Points() {
			if p.V > nicPeak {
				nicPeak = p.V
			}
		}
		for _, p := range col.DiskUtilization(n.ID).Points() {
			if p.V > diskPeak {
				diskPeak = p.V
			}
		}
	}
	blockSize := float64(fs.Config().BlockSize)
	if memPeak < blockSize {
		t.Errorf("peak buffered memory %.0fB never reached one block (%.0fB); migrations invisible to telemetry", memPeak, blockSize)
	}
	if nicPeak <= 0 {
		t.Error("NIC series flat at zero despite remote reads and shuffle")
	}
	if diskPeak < 0.5 {
		t.Errorf("peak disk utilization %.2f; expected busy disks under sort+migration", diskPeak)
	}

	// Memory must drain after the job's implicit eviction.
	finalMem := 0.0
	for _, n := range cl.Nodes() {
		pts := col.MemUsed(n.ID).Points()
		if len(pts) > 0 {
			finalMem += pts[len(pts)-1].V
		}
	}
	if finalMem != 0 {
		t.Errorf("buffered memory %.0fB left after job completion + eviction", finalMem)
	}
}

// Golden CSV: a fully pinned-down one-node scenario must produce this
// exact document — the CSV contract consumed by plotting scripts.
func TestWriteCSVGolden(t *testing.T) {
	eng := sim.NewEngine(12)
	cl := cluster.New(eng, 1, nil)
	cfg := dfs.DefaultConfig()
	cfg.Replication = 1
	fs := dfs.New(cl, cfg)
	col := Start(cl, fs, time.Second)

	// A persistent unit load saturates the disk (util exactly 1.0 per
	// window); one 256 MB block registered in memory at t=0.
	cl.Node(0).Disk.StartLoad(1)
	f, err := fs.CreateFile("x", 256*sim.MB)
	if err != nil {
		t.Fatal(err)
	}
	fs.RegisterMem(f.Blocks[0], 0)

	eng.RunUntil(sim.Time(3 * time.Second))
	col.Stop()

	var buf bytes.Buffer
	if err := col.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,seconds,value\n" +
		"disk:node0,1.000,1.000000\n" +
		"disk:node0,2.000,1.000000\n" +
		"disk:node0,3.000,1.000000\n" +
		"nic:node0,1.000,0.000000\n" +
		"nic:node0,2.000,0.000000\n" +
		"nic:node0,3.000,0.000000\n" +
		"mem:node0,1.000,268435456.000000\n" +
		"mem:node0,2.000,268435456.000000\n" +
		"mem:node0,3.000,268435456.000000\n"
	if got := buf.String(); got != want {
		t.Errorf("CSV mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
