// Package telemetry samples cluster state over a simulation run into
// per-node time series: disk utilization, buffered migration bytes, NIC
// utilization. It is the simulated analogue of the dstat/iostat traces
// the paper's figures were drawn from, and powers run inspection beyond
// the canned experiments.
package telemetry

import (
	"fmt"
	"io"
	"strings"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
)

// Collector periodically samples every node.
type Collector struct {
	eng    *sim.Engine
	cl     *cluster.Cluster
	fs     *dfs.FS
	ticker *sim.Ticker

	diskUtil []*metrics.TimeSeries // fraction busy since last sample
	memUsed  []*metrics.TimeSeries // buffered bytes
	nicUtil  []*metrics.TimeSeries

	lastDiskBusy []sim.Duration
	lastNICBusy  []sim.Duration
	lastSample   sim.Time
	interval     sim.Duration
}

// Start begins sampling the cluster at the given interval. fs may be nil
// if memory series are not needed.
func Start(cl *cluster.Cluster, fs *dfs.FS, interval sim.Duration) *Collector {
	if interval <= 0 {
		panic("telemetry: interval must be positive")
	}
	c := &Collector{
		eng:          cl.Engine(),
		cl:           cl,
		fs:           fs,
		interval:     interval,
		lastDiskBusy: make([]sim.Duration, cl.Size()),
		lastNICBusy:  make([]sim.Duration, cl.Size()),
	}
	c.lastSample = c.eng.Now()
	for _, n := range cl.Nodes() {
		c.diskUtil = append(c.diskUtil, metrics.NewTimeSeries("disk:"+n.ID.String()))
		c.memUsed = append(c.memUsed, metrics.NewTimeSeries("mem:"+n.ID.String()))
		c.nicUtil = append(c.nicUtil, metrics.NewTimeSeries("nic:"+n.ID.String()))
		c.lastDiskBusy[int(n.ID)] = n.Disk.BusyTime()
		c.lastNICBusy[int(n.ID)] = n.NIC.BusyTime()
	}
	c.ticker = sim.NewTicker(c.eng, interval, c.sample)
	return c
}

// Stop halts sampling.
func (c *Collector) Stop() { c.ticker.Stop() }

func (c *Collector) sample() {
	now := c.eng.Now()
	window := now.Sub(c.lastSample)
	if window <= 0 {
		return
	}
	tSec := now.Seconds()
	for _, n := range c.cl.Nodes() {
		i := int(n.ID)
		diskBusy := n.Disk.BusyTime()
		nicBusy := n.NIC.BusyTime()
		c.diskUtil[i].Record(tSec, float64(diskBusy-c.lastDiskBusy[i])/float64(window))
		c.nicUtil[i].Record(tSec, float64(nicBusy-c.lastNICBusy[i])/float64(window))
		c.lastDiskBusy[i] = diskBusy
		c.lastNICBusy[i] = nicBusy
		if c.fs != nil {
			c.memUsed[i].Record(tSec, float64(c.fs.DataNode(n.ID).MemUsed()))
		}
	}
	c.lastSample = now
}

// DiskUtilization returns the node's disk-utilization series (fraction
// of each sampling window the disk was busy).
func (c *Collector) DiskUtilization(id cluster.NodeID) *metrics.TimeSeries {
	return c.diskUtil[int(id)]
}

// NICUtilization returns the node's NIC-utilization series.
func (c *Collector) NICUtilization(id cluster.NodeID) *metrics.TimeSeries {
	return c.nicUtil[int(id)]
}

// MemUsed returns the node's buffered-bytes series.
func (c *Collector) MemUsed(id cluster.NodeID) *metrics.TimeSeries {
	return c.memUsed[int(id)]
}

// MeanDiskUtilization reports the time-weighted mean disk utilization of
// a node over the collected window.
func (c *Collector) MeanDiskUtilization(id cluster.NodeID) float64 {
	return c.diskUtil[int(id)].MeanValue()
}

// RenderDisk writes an ASCII strip chart of every node's disk
// utilization (one row per node, one column per sample, 0-9 scale).
func (c *Collector) RenderDisk(w io.Writer, maxCols int) error {
	for _, n := range c.cl.Nodes() {
		pts := c.diskUtil[int(n.ID)].Downsample(maxCols)
		var b strings.Builder
		for _, p := range pts {
			level := int(p.V * 9.999)
			if level > 9 {
				level = 9
			}
			if level < 0 {
				level = 0
			}
			b.WriteByte(byte('0' + level))
		}
		if _, err := fmt.Fprintf(w, "%-6s disk |%s| mean %4.0f%%\n",
			n.ID, b.String(), c.MeanDiskUtilization(n.ID)*100); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits every sample: series name, time seconds, value.
func (c *Collector) WriteCSV(w io.Writer) error {
	write := func(ts *metrics.TimeSeries) error {
		for _, p := range ts.Points() {
			if _, err := fmt.Fprintf(w, "%s,%.3f,%.6f\n", ts.Name(), p.T, p.V); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := fmt.Fprintln(w, "series,seconds,value"); err != nil {
		return err
	}
	for i := range c.diskUtil {
		if err := write(c.diskUtil[i]); err != nil {
			return err
		}
		if err := write(c.nicUtil[i]); err != nil {
			return err
		}
		if c.fs != nil {
			if err := write(c.memUsed[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
