package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

func TestCollectorSamplesUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := cluster.New(eng, 2, nil)
	cfg := dfs.DefaultConfig()
	cfg.Replication = 2
	fs := dfs.New(cl, cfg)
	col := Start(cl, fs, time.Second)

	// Saturate node 0's disk for 5s; node 1 stays idle.
	cl.Node(0).Disk.Start(5*130*sim.MB, nil)
	eng.RunUntil(sim.Time(10 * time.Second))
	col.Stop()

	busy := col.MeanDiskUtilization(0)
	idle := col.MeanDiskUtilization(1)
	if busy < 0.4 || busy > 0.7 {
		t.Errorf("node0 mean util = %.2f, want ~0.5", busy)
	}
	if idle != 0 {
		t.Errorf("node1 util = %.2f, want 0", idle)
	}
	if col.DiskUtilization(0).Len() != 10 {
		t.Errorf("samples = %d, want 10", col.DiskUtilization(0).Len())
	}
	// First 5 samples ~1.0, rest ~0.
	pts := col.DiskUtilization(0).Points()
	if pts[0].V < 0.95 || pts[9].V > 0.05 {
		t.Errorf("window utilization wrong: first=%.2f last=%.2f", pts[0].V, pts[9].V)
	}
}

func TestCollectorMemorySeries(t *testing.T) {
	eng := sim.NewEngine(2)
	cl := cluster.New(eng, 2, nil)
	cfg := dfs.DefaultConfig()
	cfg.Replication = 2
	fs := dfs.New(cl, cfg)
	col := Start(cl, fs, time.Second)
	f, _ := fs.CreateFile("x", 256*sim.MB)
	eng.Schedule(2500*time.Millisecond, func() { fs.RegisterMem(f.Blocks[0], 0) })
	eng.RunUntil(sim.Time(5 * time.Second))
	col.Stop()
	pts := col.MemUsed(0).Points()
	if pts[1].V != 0 {
		t.Errorf("early sample nonzero: %v", pts[1].V)
	}
	if pts[4].V != float64(256*sim.MB) {
		t.Errorf("late sample = %v, want 256MB", pts[4].V)
	}
}

func TestRenderDiskAndCSV(t *testing.T) {
	eng := sim.NewEngine(3)
	cl := cluster.New(eng, 2, nil)
	cfg := dfs.DefaultConfig()
	cfg.Replication = 2
	fs := dfs.New(cl, cfg)
	col := Start(cl, fs, time.Second)
	cl.Node(1).Disk.Start(3*130*sim.MB, nil)
	eng.RunUntil(sim.Time(6 * time.Second))
	col.Stop()

	var chart bytes.Buffer
	if err := col.RenderDisk(&chart, 20); err != nil {
		t.Fatal(err)
	}
	out := chart.String()
	if !strings.Contains(out, "node0") || !strings.Contains(out, "node1") {
		t.Errorf("chart missing nodes:\n%s", out)
	}

	var csv bytes.Buffer
	if err := col.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// header + (disk+nic+mem) * 2 nodes * 6 samples
	want := 1 + 3*2*6
	if len(lines) != want {
		t.Errorf("csv lines = %d, want %d", len(lines), want)
	}
	if lines[0] != "series,seconds,value" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestCollectorNilFS(t *testing.T) {
	eng := sim.NewEngine(4)
	cl := cluster.New(eng, 1, nil)
	col := Start(cl, nil, time.Second)
	eng.RunUntil(sim.Time(3 * time.Second))
	col.Stop()
	var csv bytes.Buffer
	if err := col.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if col.NICUtilization(0).Len() != 3 {
		t.Errorf("nic samples = %d", col.NICUtilization(0).Len())
	}
}

func TestInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero interval accepted")
		}
	}()
	eng := sim.NewEngine(5)
	Start(cluster.New(eng, 1, nil), nil, 0)
}
