package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRunBenchReportShape(t *testing.T) {
	rep, err := RunBench(1, 2, 0, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	reg := Registry()
	if len(rep.Rows) != len(reg) {
		t.Fatalf("rows = %d, want one per registered experiment (%d)", len(rep.Rows), len(reg))
	}
	for i, row := range rep.Rows {
		if row.Name != reg[i].Name {
			t.Errorf("row %d name = %q, want %q (registry order)", i, row.Name, reg[i].Name)
		}
		if row.Reps != 2 {
			t.Errorf("row %q reps = %d, want 2", row.Name, row.Reps)
		}
		if row.MinSeconds < 0 || row.MinSeconds > row.MeanSeconds || row.MeanSeconds > row.MaxSeconds {
			t.Errorf("row %q has inconsistent stats min=%g mean=%g max=%g",
				row.Name, row.MinSeconds, row.MeanSeconds, row.MaxSeconds)
		}
	}
	if rep.TotalSeconds <= 0 {
		t.Errorf("total_seconds = %g, want > 0", rep.TotalSeconds)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round BenchReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("BENCH.json does not round-trip: %v", err)
	}
	if round.Schema != BenchSchema || len(round.Rows) != len(rep.Rows) {
		t.Error("round-tripped report lost fields")
	}
}

// TestMacroBenchRow exercises the macro measurement on a preset small
// enough for unit tests; the real presets run via -bench and the Go
// macro-benchmarks.
func TestMacroBenchRow(t *testing.T) {
	opt := Scale100Options(7)
	opt.Scenario = "scale-tiny"
	opt.Nodes, opt.Racks = 8, 2
	opt.Files, opt.BlocksPerFile = 4, 8
	opt.Jobs, opt.FilesPerJob = 4, 1
	opt.Virtual = 2 * time.Hour
	row, err := macroBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if row.Scenario != "scale-tiny" || row.Nodes != 8 || row.Blocks != 32 {
		t.Errorf("macro row misreports the preset: %+v", row)
	}
	if row.Events == 0 || row.Seconds <= 0 || row.EventsPerSec <= 0 {
		t.Errorf("macro row missing throughput numbers: %+v", row)
	}
	if row.PeakSysMiB <= 0 || row.AllocMiB <= 0 || row.Allocs == 0 {
		t.Errorf("macro row missing memory numbers: %+v", row)
	}
}

// TestMacroBenchShardRow exercises the sharded-engine macro measurement
// on the smoke preset; the 1k preset runs via -bench and the
// BenchmarkScale1kShards* macro-benchmarks.
func TestMacroBenchShardRow(t *testing.T) {
	opt := ScaleShardSmokeOptions(7)
	opt.Workers = 2
	row, err := macroBenchShard(opt)
	if err != nil {
		t.Fatal(err)
	}
	if row.Scenario != "scaleshard" || row.Nodes != 120 || row.Shards != 9 || row.Workers != 2 {
		t.Errorf("shard macro row misreports the preset: %+v", row)
	}
	if row.Events == 0 || row.Seconds <= 0 || row.EventsPerSec <= 0 {
		t.Errorf("shard macro row missing throughput numbers: %+v", row)
	}
	if row.PeakSysMiB <= 0 || row.AllocMiB <= 0 || row.Allocs == 0 {
		t.Errorf("shard macro row missing memory numbers: %+v", row)
	}
}

func TestRunBenchClampsReps(t *testing.T) {
	rep, err := RunBench(1, 0, 1, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reps != 1 {
		t.Errorf("reps = %d, want clamped to 1", rep.Reps)
	}
}
