package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// tinyScaleOptions is a seconds-fast preset for unit tests; the real
// presets run in the scale-smoke CI job and the macro-benchmarks.
func tinyScaleOptions(seed int64) ScaleOptions {
	opt := Scale100Options(seed)
	opt.Scenario = "scale-tiny"
	opt.Nodes, opt.Racks = 16, 4
	opt.Files, opt.BlocksPerFile = 16, 16
	opt.Jobs, opt.FilesPerJob = 16, 1
	opt.Virtual = 6 * time.Hour
	return opt
}

// TestScaleRowInvariants checks the accounting identities every scale
// run must satisfy: all requested blocks are either migrated or dropped
// to a missed read, every migrated block is eventually evicted (the
// end-of-run invariants in RunScale already prove nothing stays
// resident), and every read hit memory or was missed.
func TestScaleRowInvariants(t *testing.T) {
	t.Parallel()
	row, err := RunScale(tinyScaleOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if row.Requested != row.Blocks {
		t.Errorf("requested %d of %d blocks", row.Requested, row.Blocks)
	}
	if row.Migrated+row.Dropped != row.Requested {
		t.Errorf("migrated %d + dropped %d != requested %d", row.Migrated, row.Dropped, row.Requested)
	}
	if row.MemoryHits+row.MissedReads != row.Blocks {
		t.Errorf("hits %d + missed %d != blocks %d (each block read once)",
			row.MemoryHits, row.MissedReads, row.Blocks)
	}
	if row.Evicted != row.Migrated {
		t.Errorf("evicted %d != migrated %d", row.Evicted, row.Migrated)
	}
	if row.EventsFired == 0 || row.PeakQueued == 0 || row.BinderUpdates == 0 {
		t.Errorf("missing engine counters: %+v", row)
	}
}

// TestScaleDeterminism runs the same preset twice and requires
// byte-identical canonical JSON — the determinism contract the
// scale-smoke CI job enforces at 100 nodes.
func TestScaleDeterminism(t *testing.T) {
	t.Parallel()
	opt := tinyScaleOptions(42)
	first, err := RunScale(opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunScale(opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestScaleDeterminism100 is the full 100-node determinism gate: two
// complete scale100 runs must serialize identically. ~2s; the larger
// presets get the same guarantee transitively (same code path, only
// preset constants differ) and via dyrs-bench -verify on the registered
// scale experiment.
func TestScaleDeterminism100(t *testing.T) {
	if testing.Short() {
		t.Skip("full 100-node double run skipped under -short")
	}
	t.Parallel()
	first, err := RunScale(Scale100Options(42))
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunScale(Scale100Options(42))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Errorf("scale100 seed 42 diverged:\n%s\n%s", a, b)
	}
}

// TestScaleMemoryBudget runs the 100-node preset and fails if the Go
// runtime claimed more OS memory than the budget — the peak-RSS ceiling
// of the scale-smoke CI job, which runs this test in a dedicated
// process under GOMEMLIMIT. The budget is deliberately process-wide
// (runtime Sys, an upper bound on RSS) and overridable via
// DYRS_SCALE_RSS_BUDGET_MIB for slower or more parallel environments.
func TestScaleMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full 100-node run skipped under -short")
	}
	budgetMiB := 768.0
	if env := os.Getenv("DYRS_SCALE_RSS_BUDGET_MIB"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("DYRS_SCALE_RSS_BUDGET_MIB=%q: %v", env, err)
		}
		budgetMiB = v
	}
	if _, err := RunScale(Scale100Options(42)); err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if sys := float64(ms.Sys) / (1 << 20); sys > budgetMiB {
		t.Errorf("runtime claimed %.0f MiB from the OS, budget %.0f MiB", sys, budgetMiB)
	}
}

// TestScalePresetShape pins the preset parameters the documented
// numbers and committed benchmark baseline were measured at: silently
// shrinking a preset would make the gate meaningless.
func TestScalePresetShape(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		opt    ScaleOptions
		nodes  int
		blocks int
	}{
		{Scale100Options(1), 100, 102400},
		{Scale1kOptions(1), 1000, 1048576},
		{Scale10kOptions(1), 10000, 2097152},
	} {
		if tc.opt.Nodes != tc.nodes {
			t.Errorf("%s nodes = %d, want %d", tc.opt.Scenario, tc.opt.Nodes, tc.nodes)
		}
		if got := tc.opt.Files * tc.opt.BlocksPerFile; got != tc.blocks {
			t.Errorf("%s blocks = %d, want %d", tc.opt.Scenario, got, tc.blocks)
		}
		if tc.opt.Nodes%tc.opt.Racks != 0 {
			t.Errorf("%s racks %d do not divide nodes %d", tc.opt.Scenario, tc.opt.Racks, tc.opt.Nodes)
		}
	}
}
