package experiments

import (
	"fmt"

	"dyrs/internal/compute"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// HiveRow is one query's results across configurations (Fig. 4).
type HiveRow struct {
	Query     string
	InputGB   float64
	Durations map[Policy]float64 // seconds, per policy
}

// Speedup reports the policy's speedup relative to HDFS.
func (r HiveRow) Speedup(p Policy) float64 {
	return metrics.Speedup(r.Durations[HDFS], r.Durations[p])
}

// Normalized reports the policy's duration normalized to HDFS (Fig. 4a's
// y-axis).
func (r HiveRow) Normalized(p Policy) float64 {
	if r.Durations[HDFS] == 0 {
		return 0
	}
	return r.Durations[p] / r.Durations[HDFS]
}

// HiveReport aggregates the Fig. 4 experiment.
type HiveReport struct {
	Rows []HiveRow
}

// MeanSpeedup reports the average speedup of a policy across queries.
func (h HiveReport) MeanSpeedup(p Policy) float64 {
	if len(h.Rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range h.Rows {
		sum += r.Speedup(p)
	}
	return sum / float64(len(h.Rows))
}

// MaxSpeedup reports the largest speedup of a policy and the query
// achieving it.
func (h HiveReport) MaxSpeedup(p Policy) (float64, string) {
	best, q := 0.0, ""
	for _, r := range h.Rows {
		if s := r.Speedup(p); s > best {
			best, q = s, r.Query
		}
	}
	return best, q
}

// String renders the report in Fig. 4's layout: queries sorted by input
// size, durations normalized to HDFS.
func (h HiveReport) String() string {
	t := NewTable("Fig 4 — Hive query durations (normalized to HDFS; queries sorted by input size)",
		"query", "input", "HDFS", "RAM", "Ignem", "DYRS", "DYRS speedup")
	for _, r := range h.Rows {
		t.AddRow(r.Query, fmt.Sprintf("%.1fGB", r.InputGB),
			fmt.Sprintf("%.1fs", r.Durations[HDFS]),
			fmt.Sprintf("%.2fx", r.Normalized(RAM)),
			fmt.Sprintf("%.2fx", r.Normalized(Ignem)),
			fmt.Sprintf("%.2fx", r.Normalized(DYRS)),
			Pct(r.Speedup(DYRS)))
	}
	out := t.String()
	dm := h.MeanSpeedup(DYRS)
	dx, q := h.MaxSpeedup(DYRS)
	out += fmt.Sprintf("DYRS: mean speedup %s, max %s (%s); RAM mean %s; Ignem mean %s\n",
		Pct(dm), Pct(dx), q, Pct(h.MeanSpeedup(RAM)), Pct(h.MeanSpeedup(Ignem)))
	return out
}

// RunHiveQuery runs one multi-stage query in a fresh environment under
// the given policy, with persistent interference slowing one node (the
// heterogeneity setup of §V-C), and returns the end-to-end query
// duration in seconds.
func RunHiveQuery(q workload.HiveQuery, policy Policy, seed int64) (float64, error) {
	env := NewEnv(policy, DefaultOptions(seed))
	defer env.Close()
	stop := env.SlowNodeInterference(0)
	defer stop()
	if err := env.WarmupEstimates(); err != nil {
		return 0, err
	}

	if err := env.CreateInput(q.TableName(), q.InputSize); err != nil {
		return 0, err
	}
	start := env.Eng.Now()
	input := q.TableName()
	var last *compute.Job
	for stage := 0; stage < q.Stages; stage++ {
		spec := env.Prepare(q.StageSpec(stage, input, policy.Migrates()))
		j, err := env.FW.Submit(spec)
		if err != nil {
			return 0, err
		}
		if err := env.WaitJob(j, Hour); err != nil {
			return 0, err
		}
		last = j
		if stage+1 < q.Stages {
			// Materialize the stage output as the next stage's input.
			out := j.OutputBytes
			if out < sim.MB {
				out = sim.MB
			}
			input = fmt.Sprintf("%s-int%d", q.Name, stage)
			if _, err := env.FS.CreateFile(input, out); err != nil {
				return 0, err
			}
		}
	}
	return last.Finished.Sub(start).Seconds(), nil
}

// RunHive runs the full ten-query suite under all four configurations
// (Fig. 4). Each query runs in isolation, as in the paper.
func RunHive(seed int64) (HiveReport, error) {
	var rep HiveReport
	for _, q := range workload.TPCDSQueries() {
		row := HiveRow{
			Query:     q.Name,
			InputGB:   float64(q.InputSize) / float64(sim.GB),
			Durations: make(map[Policy]float64),
		}
		for _, p := range AllPolicies {
			d, err := RunHiveQuery(q, p, seed)
			if err != nil {
				return rep, fmt.Errorf("hive %s/%s: %w", q.Name, p, err)
			}
			row.Durations[p] = d
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// hiveExperiment registers Fig. 4.
func hiveExperiment() Experiment {
	return Experiment{
		Name:    "hive",
		Aliases: []string{"fig4"},
		Summary: "Fig. 4: ten Hive queries under all four configurations",
		Run:     func(seed int64) (any, error) { return RunHive(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(HiveReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			for _, r := range result.(HiveReport).Rows {
				rep.Hive = append(rep.Hive, HiveRowJSON{
					Query: r.Query, InputGB: r.InputGB,
					Durations: r.Durations, Speedup: r.Speedup(DYRS),
				})
			}
		},
	}
}
