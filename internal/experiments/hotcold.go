package experiments

import (
	"fmt"
	"time"

	"dyrs/internal/cache"
	"dyrs/internal/compute"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
)

// HotColdConfig names a configuration in the hot/cold comparison.
type HotColdConfig string

// The compared configurations.
const (
	HCBaseline HotColdConfig = "HDFS"
	HCCache    HotColdConfig = "PACMan-like cache"
	HCDYRS     HotColdConfig = "DYRS"
	HCBoth     HotColdConfig = "cache + DYRS"
)

// HotColdConfigs lists the configurations in presentation order.
var HotColdConfigs = []HotColdConfig{HCBaseline, HCCache, HCDYRS, HCBoth}

// HotColdRow is one configuration's outcome.
type HotColdRow struct {
	Config       HotColdConfig
	HotMean      float64 // seconds, jobs re-reading the shared hot table
	ColdMean     float64 // seconds, jobs reading fresh singly-accessed data
	CacheHitRate float64
}

// HotColdReport compares caching and migration on a workload that mixes
// repeatedly-read (hot) data with singly-accessed (cold) data — the
// paper's central motivation: caching cannot help cold reads (§I), DYRS
// can, and the two compose.
type HotColdReport struct {
	Rows []HotColdRow
}

// String renders the comparison.
func (r HotColdReport) String() string {
	t := NewTable("Hot vs cold data — caching, migration, and both (mean job seconds)",
		"config", "hot jobs", "cold jobs", "cache hit rate")
	for _, row := range r.Rows {
		hr := ""
		if row.Config == HCCache || row.Config == HCBoth {
			hr = fmt.Sprintf("%.0f%%", row.CacheHitRate*100)
		}
		t.AddRow(string(row.Config),
			fmt.Sprintf("%.1f", row.HotMean),
			fmt.Sprintf("%.1f", row.ColdMean), hr)
	}
	return t.String()
}

// RunHotCold runs the hot/cold workload under each configuration.
func RunHotCold(seed int64) (HotColdReport, error) {
	var rep HotColdReport
	const (
		hotJobs  = 6
		coldJobs = 6
		jobSize  = 4 * sim.GB
	)
	for _, cfgName := range HotColdConfigs {
		policy := HDFS
		if cfgName == HCDYRS || cfgName == HCBoth {
			policy = DYRS
		}
		env := NewEnv(policy, DefaultOptions(seed))
		var ch *cache.Cache
		if cfgName == HCCache || cfgName == HCBoth {
			var err error
			ch, err = cache.New(env.FS, 16*sim.GB, cache.LRU)
			if err != nil {
				env.Close()
				return rep, err
			}
		}
		if err := env.CreateInput("hot-table", jobSize); err != nil {
			env.Close()
			return rep, err
		}
		for i := 0; i < coldJobs; i++ {
			if err := env.CreateInput(fmt.Sprintf("cold-%d", i), jobSize); err != nil {
				env.Close()
				return rep, err
			}
		}
		mkSpec := func(name, input string) compute.JobSpec {
			return env.Prepare(compute.JobSpec{
				Name:             name,
				InputFiles:       []string{input},
				MapCPUPerByte:    0.8 / float64(256*sim.MB),
				MapOutputRatio:   0.1,
				Reducers:         4,
				OutputRatio:      1,
				PlatformOverhead: 9 * time.Second,
				TaskOverhead:     500 * time.Millisecond,
				ImplicitEvict:    true,
			}.DefaultOverheads())
		}
		// Interleave: hot job, cold job, hot job, ... spaced 20s apart so
		// each mostly runs alone (isolating read-source effects).
		at := sim.Duration(0)
		for i := 0; i < hotJobs+coldJobs; i++ {
			var spec compute.JobSpec
			if i%2 == 0 {
				spec = mkSpec(fmt.Sprintf("hot-%d", i/2), "hot-table")
			} else {
				spec = mkSpec(fmt.Sprintf("cold-%d", i/2), fmt.Sprintf("cold-%d", i/2))
			}
			env.FW.SubmitAt(sim.Time(at), spec, nil)
			at += 25 * time.Second
		}
		if err := env.WaitJobs(hotJobs+coldJobs, Hour); err != nil {
			env.Close()
			return rep, fmt.Errorf("hotcold %s: %w", cfgName, err)
		}
		hot := metrics.NewSample()
		cold := metrics.NewSample()
		for _, j := range env.FW.Results() {
			if j.Spec.InputFiles[0] == "hot-table" {
				hot.Add(j.Duration().Seconds())
			} else {
				cold.Add(j.Duration().Seconds())
			}
		}
		row := HotColdRow{Config: cfgName, HotMean: hot.Mean(), ColdMean: cold.Mean()}
		if ch != nil {
			row.CacheHitRate = ch.HitRate()
		}
		rep.Rows = append(rep.Rows, row)
		env.Close()
	}
	return rep, nil
}

// hotcoldExperiment registers the cache-vs-migration study.
func hotcoldExperiment() Experiment {
	return Experiment{
		Name:    "hotcold",
		Summary: "extension: PACMan-like cache vs DYRS on hot/cold data",
		Run:     func(seed int64) (any, error) { return RunHotCold(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(HotColdReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			rep.HotCold = result.(HotColdReport).Rows
		},
	}
}
