package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"dyrs/internal/runner"
)

// VerifyRow is one experiment's determinism check: the canonical-JSON
// hashes of a serial run and a parallel run at the same seed.
type VerifyRow struct {
	Name         string
	SerialHash   string
	ParallelHash string
	// Serial/Parallel are the wall-clock durations of the two runs.
	Serial, Parallel time.Duration
}

// OK reports whether the two runs produced identical results.
func (r VerifyRow) OK() bool { return r.SerialHash == r.ParallelHash }

// VerifyReport is the outcome of a full determinism check.
type VerifyReport struct {
	Seed int64
	Jobs int
	Rows []VerifyRow
}

// OK reports whether every experiment was deterministic.
func (r VerifyReport) OK() bool {
	for _, row := range r.Rows {
		if !row.OK() {
			return false
		}
	}
	return true
}

// Divergent returns the names of experiments whose runs diverged.
func (r VerifyReport) Divergent() []string {
	var out []string
	for _, row := range r.Rows {
		if !row.OK() {
			out = append(out, row.Name)
		}
	}
	return out
}

// VerifyDeterminism runs every registered experiment twice at the same
// seed — once on a single worker (observationally a serial loop), once
// on a pool of the given size — and hashes each experiment's canonical
// JSON. Any divergence means "identical seeds give identical results"
// has been broken, e.g. by shared mutable state leaking between
// concurrently running experiments. Progress events from both passes
// are forwarded to progress when non-nil.
func VerifyDeterminism(seed int64, jobs int, progress func(runner.Event)) (VerifyReport, error) {
	return verifyExperiments(Registry(), seed, jobs, progress)
}

// verifyExperiments is VerifyDeterminism over an explicit registry,
// split out so tests can inject a deliberately divergent experiment.
func verifyExperiments(reg []Experiment, seed int64, jobs int, progress func(runner.Event)) (VerifyReport, error) {
	if jobs <= 0 { // mirror the runner's default so the report names the real pool size
		jobs = runtime.GOMAXPROCS(0)
	}
	rep := VerifyReport{Seed: seed, Jobs: jobs}
	serial := runner.Run(registryJobs(reg, seed), runner.Options{Jobs: 1, Progress: progress})
	if err := runner.FirstError(serial); err != nil {
		return rep, fmt.Errorf("serial pass: %w", err)
	}
	parallel := runner.Run(registryJobs(reg, seed), runner.Options{Jobs: jobs, Progress: progress})
	if err := runner.FirstError(parallel); err != nil {
		return rep, fmt.Errorf("parallel pass: %w", err)
	}
	for i, exp := range reg {
		sh, err := ResultHash(exp, serial[i].Value)
		if err != nil {
			return rep, fmt.Errorf("hash %s (serial): %w", exp.Name, err)
		}
		ph, err := ResultHash(exp, parallel[i].Value)
		if err != nil {
			return rep, fmt.Errorf("hash %s (parallel): %w", exp.Name, err)
		}
		rep.Rows = append(rep.Rows, VerifyRow{
			Name: exp.Name, SerialHash: sh, ParallelHash: ph,
			Serial: serial[i].Elapsed, Parallel: parallel[i].Elapsed,
		})
	}
	return rep, nil
}

// ResultHash returns the SHA-256 of the experiment's canonical JSON
// form: the result merged into an otherwise-empty FullReport and
// marshaled with encoding/json, whose sorted map keys make the encoding
// canonical.
func ResultHash(exp Experiment, result any) (string, error) {
	rep := &FullReport{}
	exp.Merge(rep, result)
	b, err := json.Marshal(rep)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
