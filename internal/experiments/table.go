package experiments

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table builder used to render every experiment's
// output in a paper-like layout.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage ("+33%" / "-111%").
func Pct(f float64) string {
	return fmt.Sprintf("%+.0f%%", f*100)
}
