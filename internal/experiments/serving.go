package experiments

import (
	"fmt"
	"time"

	"dyrs/internal/cache"
	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
	"dyrs/internal/workload"
)

// This file is ROADMAP item 2: the multi-tenant serving experiment. An
// open-loop request stream (internal/workload's Zipf + diurnal draw)
// reads blocks through the DFS while a coordinated cache keeps hot
// blocks resident and — under migrating policies — the migration
// framework prefetches the popularity head ahead of each epoch. The
// experiment runs the same drawn stream under every policy in
// internal/policy (plus the plain-HDFS baseline) and scores each
// per tenant: hit rate, p99 read latency against the tenant's QoS
// target, and the migration lead-time distribution.

// ServingLoadOptions tunes the shared serving driver.
type ServingLoadOptions struct {
	// CacheBudget is the per-node coordinated-cache budget. The cache
	// always runs LRU: it is the only eviction policy with a fully
	// deterministic victim order, and the serving rows participate in
	// the byte-identical determinism contract.
	CacheBudget sim.Bytes
	// PrefetchFrac is the popularity mass the migrating policies
	// prefetch at each epoch boundary (0 disables prefetch).
	PrefetchFrac float64
	// Epochs splits the horizon into prefetch epochs: each boundary
	// migrates the hot set under a fresh job and evicts the previous
	// epoch's job, exercising the migrate/evict/refcount cycle.
	Epochs int
	// Drain is simulated time appended after the horizon so in-flight
	// reads and migrations settle before scoring.
	Drain time.Duration
}

// DefaultServingLoadOptions: 4 GB cache per node, top-half prefetch,
// four epochs.
func DefaultServingLoadOptions() ServingLoadOptions {
	return ServingLoadOptions{
		CacheBudget:  4 * sim.GB,
		PrefetchFrac: 0.5,
		Epochs:       4,
		Drain:        60 * time.Second,
	}
}

// TenantScore is the per-tenant slice of one policy's scorecard.
type TenantScore struct {
	Tenant string `json:"tenant"`
	// Issued/Served count the tenant's requests (Served excludes reads
	// that failed because every replica died mid-flight).
	Issued int `json:"issued"`
	Served int `json:"served"`
	// MemReads counts reads served from a memory replica (cache or
	// migration buffer); HitRate is MemReads/Served.
	MemReads int     `json:"mem_reads"`
	HitRate  float64 `json:"hit_rate"`
	// P99Ms is the tenant's 99th-percentile read latency; TargetMs its
	// QoS target; WithinTarget the fraction of served reads meeting it.
	P99Ms        float64 `json:"p99_ms"`
	TargetMs     float64 `json:"target_ms"`
	WithinTarget float64 `json:"within_target"`
}

// ServingPolicyRow is one policy's full scorecard.
type ServingPolicyRow struct {
	Policy string `json:"policy"`
	// Issued/Served/MemReads aggregate across tenants.
	Issued   int     `json:"issued"`
	Served   int     `json:"served"`
	MemReads int     `json:"mem_reads"`
	HitRate  float64 `json:"hit_rate"`
	// Cache-layer counters (hits are reads already redirected to a
	// resident replica; distinct from MemReads, which also counts
	// migration-buffer reads).
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	CacheRate   float64 `json:"cache_rate"`
	// Migration-framework counters (zero for the HDFS baseline).
	Migrated    int `json:"migrated"`
	MemoryHits  int `json:"memory_hits"`
	MissedReads int `json:"missed_reads"`
	Dropped     int `json:"dropped"`
	// Lead-time quantiles from the migration.lead_ns histogram: how far
	// ahead of its first read each prefetched block arrived in memory.
	LeadP50Sec float64 `json:"lead_p50_seconds"`
	LeadP99Sec float64 `json:"lead_p99_seconds"`

	Tenants []TenantScore `json:"tenants"`
}

// ServingReport is the serving experiment result: one row per policy,
// every row scored against the identical drawn request stream.
type ServingReport struct {
	Scenario string             `json:"scenario"`
	Requests int                `json:"requests"`
	Rows     []ServingPolicyRow `json:"rows"`
}

// ServingOptions parameterizes one serving experiment run.
type ServingOptions struct {
	// Scenario names the preset in reports.
	Scenario string
	// Workers and Racks shape the cluster.
	Workers, Racks int
	// Seed drives the stream draw and the simulation.
	Seed int64
	// Shards, when >1, pins the run to shard 0 of a sharded engine (the
	// byte-identical solo fast path, as elsewhere).
	Shards int
	// Spec is the workload draw; zero value means DefaultServingSpec.
	Spec workload.ServingSpec
	// Load tunes the driver; zero value means DefaultServingLoadOptions.
	Load ServingLoadOptions
	// Policies lists the configurations to score: "hdfs" (baseline, no
	// migration) or any migrating binder name from migration.BinderNames.
	// Empty means hdfs + every migrating policy.
	Policies []string
}

// ServingSmokeOptions is the CI-sized preset: the paper-scale cluster
// plus one rack boundary, the default diurnal stream at a rate the
// 8-node cluster can serve below saturation (the default 12 req/s of
// 256 MB blocks is a 3 GB/s open-loop demand — an overload study, not a
// QoS scorecard), all policies. Small enough to run twice in the
// determinism gate.
func ServingSmokeOptions(seed int64) ServingOptions {
	spec := workload.DefaultServingSpec()
	spec.MeanRate = 5
	return ServingOptions{
		Scenario: "serving-smoke",
		Workers:  8,
		Racks:    2,
		Seed:     seed,
		Spec:     spec,
	}
}

// Serving1kOptions is the macro-benchmark preset: 1,000 nodes, a wider
// file population, a heavier request rate, DYRS only (the benchmark
// measures throughput of the serving path, not the policy comparison).
func Serving1kOptions(seed int64) ServingOptions {
	spec := DefaultServingSpec1k()
	return ServingOptions{
		Scenario: "serving1k",
		Workers:  1000,
		Racks:    20,
		Seed:     seed,
		Spec:     spec,
		Policies: []string{"dyrs"},
	}
}

// DefaultServingSpec1k widens the default spec to a datacenter-shaped
// population: 1024 files, ~80 req/s over a 20-minute day.
func DefaultServingSpec1k() workload.ServingSpec {
	spec := workload.DefaultServingSpec()
	spec.Files = 1024
	spec.MeanRate = 80
	spec.Horizon = 20 * time.Minute
	return spec
}

// servingPolicies expands the option list, defaulting to the full
// comparison set.
func servingPolicies(opt ServingOptions) []string {
	if len(opt.Policies) > 0 {
		return opt.Policies
	}
	names := []string{"hdfs"}
	for _, n := range migration.BinderNames() {
		if n == "dyrs-ref" {
			continue // the frozen reference binder is a test fixture
		}
		names = append(names, n)
	}
	return names
}

// RunServing draws the request stream once and scores every requested
// policy against it.
func RunServing(opt ServingOptions) (ServingReport, error) {
	if opt.Spec.Files == 0 {
		opt.Spec = workload.DefaultServingSpec()
	}
	if opt.Load.CacheBudget == 0 {
		opt.Load = DefaultServingLoadOptions()
	}
	stream := workload.GenerateServing(opt.Spec, opt.Seed)
	rep := ServingReport{Scenario: opt.Scenario, Requests: len(stream.Requests)}
	for _, name := range servingPolicies(opt) {
		envPolicy := HDFS
		binder := ""
		if name != "hdfs" {
			envPolicy = DYRS
			binder = name
		}
		env := NewEnv(envPolicy, Options{
			Workers:   opt.Workers,
			Racks:     opt.Racks,
			Seed:      opt.Seed,
			Trace:     true,
			Shards:    opt.Shards,
			MigBinder: binder,
		})
		row, err := RunServingLoad(env, stream, opt.Load)
		env.Close()
		if err != nil {
			return rep, fmt.Errorf("serving %s/%s: %w", opt.Scenario, name, err)
		}
		row.Policy = name
		rep.Rows = append(rep.Rows, *row)
	}
	return rep, nil
}

// RunServingLoad executes one drawn stream against an already-built
// environment and returns the scorecard. It is the shared driver: the
// serving experiment calls it per policy, and the fuzz harness calls it
// to subject serving scenarios to the oracle battery. The caller owns
// env (and must Close it); the driver creates the files, attaches the
// cache, runs to horizon+drain, scores, and flushes the cache so the
// end state satisfies the usual no-buffered-bytes invariants.
func RunServingLoad(env *Env, stream *workload.ServingStream, opt ServingLoadOptions) (*ServingPolicyRow, error) {
	spec := stream.Spec
	tenants := spec.Tenants
	if len(tenants) == 0 {
		tenants = workload.DefaultTenants()
	}
	blockSize := env.FS.Config().BlockSize

	// Population.
	fileBlocks := make([][]dfs.BlockID, spec.Files)
	for i := 0; i < spec.Files; i++ {
		name := spec.FileName(i)
		if err := env.CreateInput(name, sim.Bytes(spec.BlocksPerFile)*blockSize); err != nil {
			return nil, err
		}
		f, err := env.FS.File(name)
		if err != nil {
			return nil, err
		}
		fileBlocks[i] = f.Blocks
	}

	// Coordinated cache (LRU: deterministic victim order).
	ch, err := cache.New(env.FS, opt.CacheBudget, cache.LRU)
	if err != nil {
		return nil, err
	}

	// Epoch prefetch of the popularity head. Each epoch migrates the hot
	// set under a fresh job and then evicts the previous epoch's job;
	// blocks shared between the two stay resident via the coordinator's
	// reference counts.
	hot := stream.HotFiles(opt.PrefetchFrac)
	hotSet := make([]bool, spec.Files)
	hotNames := make([]string, len(hot))
	for i, f := range hot {
		hotSet[f] = true
		hotNames[i] = spec.FileName(f)
	}
	const jobBase = migration.JobID(1 << 20)
	currentJob := migration.JobID(0)
	epochs := opt.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	if env.Coord != nil && len(hot) > 0 {
		for e := 0; e < epochs; e++ {
			e := e
			env.Eng.At(sim.Time(spec.Horizon/time.Duration(epochs)*time.Duration(e)), func() {
				job := jobBase + migration.JobID(e)
				if err := env.Coord.Migrate(job, hotNames, false); err == nil {
					currentJob = job
				}
				if e > 0 {
					env.Coord.Evict(jobBase + migration.JobID(e-1))
				}
			})
		}
	}

	// The open-loop request stream. Requests land round-robin across the
	// cluster (the serving frontend of tenant t on request i reads from
	// node (i+t) mod workers); latency and hit observations go through
	// the run's tracer histograms.
	workers := env.Cl.Size()
	tr := env.Tracer()
	latHists := make([]*trace.Hist, len(tenants))
	for i, tc := range tenants {
		latHists[i] = tr.Hist("serving.lat_ns." + tc.Name)
	}
	issued := make([]int, len(tenants))
	served := make([]int, len(tenants))
	memReads := make([]int, len(tenants))
	within := make([]int, len(tenants))
	for i, r := range stream.Requests {
		r := r
		at := cluster.NodeID((i + r.Tenant) % workers)
		id := fileBlocks[r.File][r.Block]
		env.Eng.At(sim.Time(r.At), func() {
			issued[r.Tenant]++
			if env.Coord != nil && currentJob != 0 && hotSet[r.File] {
				env.Coord.NoteRead(currentJob, id)
			}
			tenant := r.Tenant
			err := env.FS.ReadBlock(at, id, func(res dfs.ReadResult) {
				if res.Failed {
					return
				}
				served[tenant]++
				if res.Source.FromMemory() {
					memReads[tenant]++
				}
				lat := time.Duration(res.Duration())
				latHists[tenant].Observe(int64(lat))
				if lat <= tenants[tenant].LatencyTarget {
					within[tenant]++
				}
			})
			if err != nil {
				// ErrNoReplica: recorded as unserved.
				_ = err
			}
		})
	}

	// Run, then drain: evict the final epoch job, let flows settle, and
	// scavenge so nothing stays buffered.
	env.Eng.RunUntil(sim.Time(spec.Horizon))
	if env.Coord != nil && len(hot) > 0 {
		env.Coord.Evict(jobBase + migration.JobID(epochs-1))
	}
	env.Eng.RunFor(sim.Duration(opt.Drain))
	if env.Coord != nil {
		env.Coord.ScavengeAll()
		env.Eng.RunFor(sim.Duration(5 * time.Second))
	}

	// Scorecard.
	row := &ServingPolicyRow{
		CacheHits:   ch.Hits,
		CacheMisses: ch.Misses,
		CacheRate:   ch.HitRate(),
	}
	for i, tc := range tenants {
		ts := TenantScore{
			Tenant:   tc.Name,
			Issued:   issued[i],
			Served:   served[i],
			MemReads: memReads[i],
			TargetMs: float64(tc.LatencyTarget) / float64(time.Millisecond),
			P99Ms:    latHists[i].Quantile(0.99) / float64(time.Millisecond),
		}
		if ts.Served > 0 {
			ts.HitRate = float64(ts.MemReads) / float64(ts.Served)
			ts.WithinTarget = float64(within[i]) / float64(ts.Served)
		}
		row.Issued += ts.Issued
		row.Served += ts.Served
		row.MemReads += ts.MemReads
		row.Tenants = append(row.Tenants, ts)
	}
	if row.Served > 0 {
		row.HitRate = float64(row.MemReads) / float64(row.Served)
	}
	if env.Coord != nil {
		st := env.Coord.Stats()
		row.Migrated = st.Migrated
		row.MemoryHits = st.MemoryHits
		row.MissedReads = st.MissedReads
		row.Dropped = st.Dropped
	}
	if lead := tr.Hist("migration.lead_ns"); lead.Count() > 0 {
		row.LeadP50Sec = lead.Quantile(0.5) / float64(time.Second)
		row.LeadP99Sec = lead.Quantile(0.99) / float64(time.Second)
	}

	// Leave the environment clean: drop cache residency so end-of-run
	// invariants (no memory replicas) hold under every policy.
	ch.Flush()
	return row, nil
}

// String renders the serving scorecard tables.
func (r ServingReport) String() string {
	t := NewTable(fmt.Sprintf("Serving (%s) — %d requests, per-policy scorecard", r.Scenario, r.Requests),
		"policy", "served", "hit rate", "cache rate", "migrated", "mem hits", "lead p50/p99")
	for _, row := range r.Rows {
		t.AddRow(row.Policy,
			fmt.Sprintf("%d/%d", row.Served, row.Issued),
			fmt.Sprintf("%.3f", row.HitRate),
			fmt.Sprintf("%.3f", row.CacheRate),
			fmt.Sprintf("%d", row.Migrated),
			fmt.Sprintf("%d", row.MemoryHits),
			fmt.Sprintf("%.1fs/%.1fs", row.LeadP50Sec, row.LeadP99Sec))
	}
	out := t.String()

	tt := NewTable("Serving — per-tenant QoS",
		"policy", "tenant", "served", "hit rate", "p99", "target", "within")
	for _, row := range r.Rows {
		for _, ts := range row.Tenants {
			tt.AddRow(row.Policy, ts.Tenant,
				fmt.Sprintf("%d", ts.Served),
				fmt.Sprintf("%.3f", ts.HitRate),
				fmt.Sprintf("%.0fms", ts.P99Ms),
				fmt.Sprintf("%.0fms", ts.TargetMs),
				fmt.Sprintf("%.3f", ts.WithinTarget))
		}
	}
	return out + "\n" + tt.String()
}

// servingExperiment registers the smoke preset so the serving path sits
// inside the determinism gate and -verify on every CI run.
func servingExperiment() Experiment {
	return Experiment{
		Name:    "serving",
		Summary: "extension: multi-tenant serving workload, per-policy/per-tenant QoS scorecards",
		Run: func(seed int64) (any, error) {
			return RunServing(ServingSmokeOptions(seed))
		},
		Render: func(result any, sel Selection) []string {
			return []string{result.(ServingReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			r := result.(ServingReport)
			rep.Serving = r.Rows
		},
	}
}
