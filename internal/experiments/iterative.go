package experiments

import (
	"fmt"
	"time"

	"dyrs/internal/compute"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
)

// IterativeRow is one policy's per-iteration durations for an iterative
// analytics job (K-Means / Logistic-Regression style).
type IterativeRow struct {
	Policy     Policy
	Iterations []float64 // seconds per iteration
}

// FirstOverSteady reports iteration-1 duration over the mean of later
// iterations — the paper's "first iteration runs 15x / 2.5x longer"
// metric (§I).
func (r IterativeRow) FirstOverSteady() float64 {
	if len(r.Iterations) < 2 {
		return 0
	}
	var rest float64
	for _, d := range r.Iterations[1:] {
		rest += d
	}
	rest /= float64(len(r.Iterations) - 1)
	if rest == 0 {
		return 0
	}
	return r.Iterations[0] / rest
}

// IterativeReport compares the cold-start penalty of iterative jobs with
// and without migration.
type IterativeReport struct {
	Rows []IterativeRow
}

// String renders the comparison.
func (r IterativeReport) String() string {
	t := NewTable("Iterative job (RDD-style caching after iteration 1) — per-iteration seconds",
		"policy", "iter1", "iter2", "iter3", "iter4", "iter1/steady")
	for _, row := range r.Rows {
		cells := []any{string(row.Policy)}
		for _, d := range row.Iterations {
			cells = append(cells, fmt.Sprintf("%.1f", d))
		}
		cells = append(cells, fmt.Sprintf("%.1fx", row.FirstOverSteady()))
		t.AddRow(cells...)
	}
	return t.String()
}

// RunIterative models an iterative framework job: iteration 1 reads the
// training set cold from the DFS; later iterations hit the framework's
// in-memory RDD cache and are compute-bound. The paper's §I observation
// is that the cold first read dominates (15x for logistic regression);
// migrating the input during the driver's start-up lead-time removes
// most of that penalty.
func RunIterative(seed int64) (IterativeReport, error) {
	var rep IterativeReport
	const (
		inputSize  = 8 * sim.GB
		iterations = 4
	)
	for _, policy := range []Policy{HDFS, DYRS} {
		env := NewEnv(policy, DefaultOptions(seed))
		if err := env.CreateInput("training-set", inputSize); err != nil {
			env.Close()
			return rep, err
		}
		row := IterativeRow{Policy: policy}
		for iter := 0; iter < iterations; iter++ {
			spec := compute.JobSpec{
				Name:           fmt.Sprintf("iter-%d", iter),
				InputFiles:     []string{"training-set"},
				MapCPUPerByte:  0.5 / float64(256*sim.MB), // gradient pass
				MapOutputRatio: 1e-4,                      // model update only
				Reducers:       1,
				OutputRatio:    1,
			}.DefaultOverheads()
			if iter == 0 {
				// The driver start-up (SparkContext, executor launch) is
				// the lead-time available to migration.
				spec.PlatformOverhead = 8 * time.Second
				spec = env.Prepare(spec)
			} else {
				// Later iterations run inside warm executors over the
				// RDD cache: no DFS read, tiny scheduling overhead.
				spec.PlatformOverhead = 300 * time.Millisecond
				spec.Migrate = false
			}
			if iter == 1 {
				// Iteration 1 materialized the RDD: pin the input so
				// iterations 2+ read from executor memory.
				if _, err := migration.PinFiles(env.FS, []string{"training-set"}); err != nil {
					env.Close()
					return rep, err
				}
			}
			j, err := env.FW.Submit(spec)
			if err != nil {
				env.Close()
				return rep, err
			}
			if err := env.WaitJob(j, Hour); err != nil {
				env.Close()
				return rep, err
			}
			row.Iterations = append(row.Iterations, j.Duration().Seconds())
		}
		rep.Rows = append(rep.Rows, row)
		env.Close()
	}
	return rep, nil
}

// iterativeExperiment registers the iterative-job cold-start study.
func iterativeExperiment() Experiment {
	return Experiment{
		Name:    "iterative",
		Summary: "extension: cold-start penalty of iterative jobs",
		Run:     func(seed int64) (any, error) { return RunIterative(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(IterativeReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			rep.Iterative = result.(IterativeReport).Rows
		},
	}
}
