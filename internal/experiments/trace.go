package experiments

import (
	"fmt"
	"strings"

	"dyrs/internal/gtrace"
)

// TraceReport carries the Google-trace motivation analyses (Figs. 1-3).
type TraceReport struct {
	Trace *gtrace.Trace
}

// RunTrace synthesizes the trace and runs the paper's §II analyses.
func RunTrace(seed int64) TraceReport {
	cfg := gtrace.DefaultConfig()
	cfg.Seed = seed
	return TraceReport{Trace: gtrace.Generate(cfg)}
}

// traceExperiment registers Figs. 1-3.
func traceExperiment() Experiment {
	return Experiment{
		Name:    "trace",
		Aliases: []string{"fig1", "fig2", "fig3"},
		Summary: "Figs. 1-3: Google-trace motivation analyses",
		Run:     func(seed int64) (any, error) { return RunTrace(seed), nil },
		Render: func(result any, sel Selection) []string {
			r := result.(TraceReport)
			all := sel.wantsAll("trace")
			var out []string
			if all || sel.Has("fig1") {
				out = append(out, r.Fig1())
			}
			if all || sel.Has("fig2") {
				out = append(out, r.Fig2())
			}
			if all || sel.Has("fig3") {
				out = append(out, r.Fig3())
			}
			return out
		},
		Merge: func(rep *FullReport, result any) {
			r := result.(TraceReport)
			rep.Trace.MeanUtilization = r.Trace.MeanUtilization()
			rep.Trace.FractionUnder4Pct = r.Trace.FractionUnder(0.04)
			rep.Trace.FractionLeadCovers = r.Trace.FractionLeadCoversRead()
			rep.Trace.MeanLeadSeconds = r.Trace.MeanLeadSeconds()
		},
	}
}

// Fig1 renders per-node disk utilization over 24h for three nodes chosen
// like the paper's: the busiest node, a mid-load node, and a light one.
func (r TraceReport) Fig1() string {
	ranked := r.Trace.RankedServers()
	means := r.Trace.ServerMeans()
	picks := []int{ranked[0], ranked[len(ranked)/3], ranked[2*len(ranked)/3]}
	var b strings.Builder
	b.WriteString("Fig 1 — Disk utilization over 24h for three servers (5-min samples, downsampled)\n")
	for i, s := range picks {
		ts := r.Trace.UtilizationSeries(s)
		fmt.Fprintf(&b, "node%d (mean %.1f%%):", i+1, means[s]*100)
		for _, p := range ts.Downsample(24) {
			fmt.Fprintf(&b, " %4.1f", p.V*100)
		}
		b.WriteString("  (%)\n")
	}
	r1 := means[picks[0]] / means[picks[1]]
	r2 := means[picks[0]] / means[picks[2]]
	fmt.Fprintf(&b, "heterogeneity: node1 is %.1fx node2 and %.1fx node3 on average\n", r1, r2)
	return b.String()
}

// Fig2 renders the lead-time vs read-time analysis.
func (r TraceReport) Fig2() string {
	var b strings.Builder
	b.WriteString("Fig 2 — PDF of lead-time/read-time ratio (log10 bins)\n")
	h := r.Trace.RatioPDF(12)
	pdf := h.PDF()
	for i, p := range pdf {
		fmt.Fprintf(&b, "  log10(ratio) %+4.1f: %5.1f%%\n", h.BinCenter(i), p*100)
	}
	fmt.Fprintf(&b, "jobs with lead-time > read-time: %.0f%% (paper: 81%%)\n",
		r.Trace.FractionLeadCoversRead()*100)
	fmt.Fprintf(&b, "mean lead-time: %.1fs (paper: 8.8s)\n", r.Trace.MeanLeadSeconds())
	return b.String()
}

// Fig3 renders the utilization CDF.
func (r TraceReport) Fig3() string {
	var b strings.Builder
	b.WriteString("Fig 3 — CDF of disk utilization samples, 40 servers x 24h\n")
	for _, u := range []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32} {
		fmt.Fprintf(&b, "  util <= %4.1f%%: %5.1f%%\n", u*100, r.Trace.FractionUnder(u)*100)
	}
	fmt.Fprintf(&b, "mean utilization: %.1f%% (paper: ~3.1%%); samples under 4%%: %.0f%% (paper: 80%%)\n",
		r.Trace.MeanUtilization()*100, r.Trace.FractionUnder(0.04)*100)
	return b.String()
}
