package experiments

import (
	"fmt"
	"io"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/gtrace"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// ScaleOptions parameterizes one run of the datacenter-scale experiment
// family: DYRS driven end-to-end — placement, delayed binding, Algorithm
// 1 targeting, migration flows, implicit eviction, scavenging — on a
// cluster far beyond the paper's 7-node testbed, with the workload shape
// (per-node activity skew, job lead times, read times) derived from the
// internal/gtrace Google-trace synthesis.
//
// Unlike the figure experiments, the scale family bypasses the compute
// framework: jobs are migration requests plus scheduled block reads, so
// the simulated event load concentrates on the layers the family exists
// to stress — the NameNode block tables, the master's pending set, and
// the event queue at 10^6-10^7 queued events.
type ScaleOptions struct {
	// Scenario names the preset in reports ("scale100", "scale1k", ...).
	Scenario string
	// Nodes is the cluster size.
	Nodes int
	// Racks partitions the cluster; replica placement is rack-aware.
	Racks int
	// Files and BlocksPerFile size the namespace: Files x BlocksPerFile
	// blocks total.
	Files         int
	BlocksPerFile int
	// BlockSize is the DFS block size for the run.
	BlockSize sim.Bytes
	// Jobs is the number of migration jobs submitted over the run; each
	// job requests FilesPerJob files (round-robin over the namespace).
	Jobs        int
	FilesPerJob int
	// Virtual is the simulated time span.
	Virtual sim.Duration
	// Seed drives all randomness; identical seeds give identical rows.
	Seed int64
	// Shards, when >1, runs the scenario pinned to shard 0 of a
	// sim.ShardedEngine with that many logical shards — the solo fast
	// path, byte-identical to the sequential engine (asserted by
	// TestScaleDeterminism100ShardedMatchesSequential).
	Shards int
	// SampleEvery, when >1, attaches a tracer with deterministic 1-in-N
	// root-record sampling; the sampled trace is byte-identical at any
	// Shards value. TraceOut, when non-nil, receives the canonical trace
	// document at the end of the run (attaching a tracer even when
	// SampleEvery <= 1).
	SampleEvery int
	TraceOut    io.Writer
}

// Scale100Options is the CI-sized preset: 100 nodes for two days of
// virtual time. Small enough to run twice in the determinism gate,
// large enough to exercise the rack-aware sampling placer (>=64 nodes)
// and the binder's bucketed pull path.
func Scale100Options(seed int64) ScaleOptions {
	return ScaleOptions{
		Scenario:      "scale100",
		Nodes:         100,
		Racks:         4,
		Files:         400,
		BlocksPerFile: 256,
		BlockSize:     128 * sim.MB,
		Jobs:          400,
		FilesPerJob:   2,
		Virtual:       48 * time.Hour,
		Seed:          seed,
	}
}

// Scale1kOptions is the macro-benchmark preset: 1,000 nodes, >=1M
// blocks, two days of virtual time.
func Scale1kOptions(seed int64) ScaleOptions {
	return ScaleOptions{
		Scenario:      "scale1k",
		Nodes:         1000,
		Racks:         20,
		Files:         2048,
		BlocksPerFile: 512, // 1,048,576 blocks
		BlockSize:     128 * sim.MB,
		Jobs:          512,
		FilesPerJob:   4,
		Virtual:       48 * time.Hour,
		Seed:          seed,
	}
}

// Scale10kOptions is the headline preset: 10,000 nodes and two million
// blocks. Virtual time is one day — heartbeat volume scales as nodes x
// span, and a day at 10k nodes already fires an order of magnitude more
// events than two days at 1k.
func Scale10kOptions(seed int64) ScaleOptions {
	return ScaleOptions{
		Scenario:      "scale10k",
		Nodes:         10000,
		Racks:         100,
		Files:         4096,
		BlocksPerFile: 512, // 2,097,152 blocks
		BlockSize:     128 * sim.MB,
		Jobs:          1024,
		FilesPerJob:   4,
		Virtual:       24 * time.Hour,
		Seed:          seed,
	}
}

// ScaleRow is the deterministic outcome of one scale run: counters only,
// no wall-clock measurements, so the row participates in the byte-
// identical determinism contract. Wall-clock performance (events/sec,
// peak RSS) is measured separately by the macro-benchmarks.
type ScaleRow struct {
	Scenario     string  `json:"scenario"`
	Nodes        int     `json:"nodes"`
	Racks        int     `json:"racks"`
	Blocks       int     `json:"blocks"`
	Jobs         int     `json:"jobs"`
	VirtualHours float64 `json:"virtual_hours"`

	// EventsFired is the total discrete events executed; PeakQueued is
	// the largest observed event-queue population (sampled at job
	// submissions, where the pre-scheduled read events peak).
	EventsFired uint64 `json:"events_fired"`
	PeakQueued  int    `json:"peak_queued_events"`

	Requested       int     `json:"requested"`
	Migrated        int     `json:"migrated"`
	MemoryHits      int     `json:"memory_hits"`
	MissedReads     int     `json:"missed_reads"`
	Dropped         int     `json:"dropped"`
	Evicted         int     `json:"evicted"`
	BytesMigratedTB float64 `json:"bytes_migrated_tb"`

	// BinderUpdates / BinderSkipped report how often the master actually
	// re-ran Algorithm 1 vs how often the input-change gate skipped it.
	BinderUpdates int `json:"binder_updates"`
	BinderSkipped int `json:"binder_skipped"`
}

// ScaleReport aggregates the rows of one or more presets.
type ScaleReport struct {
	Rows []ScaleRow
}

// String renders the family as a table.
func (r ScaleReport) String() string {
	t := NewTable("Datacenter scale — DYRS end-to-end on large clusters",
		"scenario", "nodes", "blocks", "virtual", "events", "peak queue",
		"migrated", "mem hits", "missed", "alg1 runs/skips")
	for _, row := range r.Rows {
		t.AddRow(row.Scenario,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Blocks),
			fmt.Sprintf("%.0fh", row.VirtualHours),
			fmt.Sprintf("%d", row.EventsFired),
			fmt.Sprintf("%d", row.PeakQueued),
			fmt.Sprintf("%d", row.Migrated),
			fmt.Sprintf("%d", row.MemoryHits),
			fmt.Sprintf("%d", row.MissedReads),
			fmt.Sprintf("%d/%d", row.BinderUpdates, row.BinderSkipped))
	}
	return t.String()
}

// scaleMigrationConfig returns the framework tunables for datacenter
// runs: heartbeats an order of magnitude sparser than the testbed
// defaults (10s vs 1s — at 10k nodes over a day, 1s heartbeats alone
// would be 900M events), and the per-slave estimate time series off.
func scaleMigrationConfig() migration.Config {
	cfg := migration.DefaultConfig()
	cfg.Heartbeat = 10 * time.Second
	cfg.TargetUpdateInterval = 5 * time.Second
	cfg.DisableEstimateSeries = true
	return cfg
}

// RunScale executes one scale scenario and returns its deterministic
// row. The run ends with hard invariant checks: fsck must be clean and
// no block may remain buffered after final eviction and scavenging.
func RunScale(opt ScaleOptions) (ScaleRow, error) {
	row := ScaleRow{
		Scenario:     opt.Scenario,
		Nodes:        opt.Nodes,
		Racks:        opt.Racks,
		Blocks:       opt.Files * opt.BlocksPerFile,
		Jobs:         opt.Jobs,
		VirtualHours: time.Duration(opt.Virtual).Hours(),
	}
	if opt.Nodes <= 0 || opt.Files <= 0 || opt.BlocksPerFile <= 0 || opt.Jobs <= 0 {
		return row, fmt.Errorf("scale %s: non-positive size parameter", opt.Scenario)
	}

	var eng *sim.Engine
	if opt.Shards > 1 {
		eng = sim.NewShardedEngine(opt.Seed, opt.Shards, time.Millisecond).Shard(0)
	} else {
		eng = sim.NewEngine(opt.Seed)
	}
	if opt.TraceOut != nil || opt.SampleEvery > 1 {
		// Attach before components construct (they capture the tracer
		// once). Recording is passive — the traced row stays byte-
		// identical to the untraced one.
		trace.New(eng).SetSampling(opt.SampleEvery, uint64(opt.Seed))
	}

	// Derive per-node disk heterogeneity from the synthesized Google
	// trace: a node's mean background utilization scales down its
	// effective disk bandwidth, reproducing the cross-node skew of §II
	// (busy nodes 5-13x more loaded than idle ones) with zero simulated
	// interference events.
	tr := gtrace.Generate(gtrace.Config{
		Servers:         opt.Nodes,
		Duration:        24 * time.Hour,
		BinWidth:        5 * time.Minute,
		Jobs:            opt.Jobs,
		MeanLeadSeconds: 8.8,
		Seed:            opt.Seed + 1,
		ActivityMedian:  0.008,
		ActivitySigma:   1.3,
	})
	meanUtil := make([]float64, opt.Nodes)
	for i, series := range tr.Util {
		sum := 0.0
		for _, u := range series {
			sum += u
		}
		meanUtil[i] = sum / float64(len(series))
	}

	cl := cluster.New(eng, opt.Nodes, func(i int) cluster.NodeConfig {
		cfg := cluster.DefaultNodeConfig()
		scale := 1 - 2*meanUtil[i]
		if scale < 0.35 {
			scale = 0.35
		}
		cfg.DiskScale = scale
		return cfg
	})
	if opt.Racks > 1 {
		cl.ConfigureRacks(opt.Racks, 40*float64(sim.GB))
	}
	if rt := trace.FromEngine(eng); rt.Enabled() {
		rackOf := make([]int, opt.Nodes)
		for i := range rackOf {
			rackOf[i] = cl.Rack(cluster.NodeID(i))
		}
		rt.SetTopology(rackOf)
	}

	fs := dfs.New(cl, dfs.Config{BlockSize: opt.BlockSize, Replication: 3})
	for i := 0; i < opt.Files; i++ {
		size := sim.Bytes(opt.BlocksPerFile) * opt.BlockSize
		if _, err := fs.CreateFile(fmt.Sprintf("scale-%05d", i), size); err != nil {
			return row, fmt.Errorf("scale %s: %w", opt.Scenario, err)
		}
	}

	coord := migration.NewCoordinator(fs, scaleMigrationConfig(), migration.NewDYRSBinder())

	// Schedule the whole workload up front. Every job contributes one
	// submit event, one eviction event, and one read event per block —
	// so the queue holds millions of events at once for the large
	// presets, which is exactly the engine regime this family exists to
	// cover.
	span := float64(opt.Virtual)
	arrivalSpan := 0.75 * span
	peakQueued := 0
	sample := func() {
		if p := eng.Pending(); p > peakQueued {
			peakQueued = p
		}
	}
	fileNames := make([]string, opt.Files)
	for i := range fileNames {
		fileNames[i] = fmt.Sprintf("scale-%05d", i)
	}
	for j := 0; j < opt.Jobs; j++ {
		job := migration.JobID(j + 1)
		tj := tr.Jobs[j%len(tr.Jobs)]
		submit := sim.Time(arrivalSpan * float64(j) / float64(opt.Jobs))

		files := make([]string, opt.FilesPerJob)
		for k := range files {
			files[k] = fileNames[(j*opt.FilesPerJob+k)%opt.Files]
		}
		ids, err := fs.FileBlockIDs(files)
		if err != nil {
			return row, fmt.Errorf("scale %s: %w", opt.Scenario, err)
		}

		// Lead and read times follow the trace job's shape, stretched to
		// datacenter magnitudes: migrations race reads, most win (the
		// §II motivation), the losers exercise missed-read cancellation.
		lead := sim.Duration(2 * tj.LeadSeconds * float64(time.Second))
		readSpan := 5 * tj.ReadSeconds
		if readSpan < 120 {
			readSpan = 120
		}
		if readSpan > 1800 {
			readSpan = 1800
		}
		readStart := submit.Add(lead)
		eng.At(submit, func() {
			sample()
			coord.Migrate(job, files, true)
		})
		for k, id := range ids {
			id := id
			at := readStart.Add(sim.Duration(readSpan * float64(k) / float64(len(ids)) * float64(time.Second)))
			eng.At(at, func() { coord.NoteRead(job, id) })
		}
		evictAt := readStart.Add(sim.Duration((readSpan + 60) * float64(time.Second)))
		eng.At(evictAt, func() { coord.Evict(job) })
	}
	sample()

	eng.RunUntil(sim.Time(span))
	coord.ScavengeAll()
	coord.Shutdown()
	eng.Run() // drain remaining completions after tickers stop

	st := coord.Stats()
	row.EventsFired = eng.EventsFired()
	row.PeakQueued = peakQueued
	row.Requested = st.Requested
	row.Migrated = st.Migrated
	row.MemoryHits = st.MemoryHits
	row.MissedReads = st.MissedReads
	row.Dropped = st.Dropped
	row.Evicted = st.Evicted
	row.BytesMigratedTB = float64(st.BytesMigrated) / float64(sim.TB)
	if b, ok := coord.Binder().(*migration.DYRSBinder); ok {
		row.BinderUpdates = b.Updates
		row.BinderSkipped = b.SkippedUpdates
	}

	// Hard end-of-run invariants: the block tables must be internally
	// consistent, and after every job evicted plus a full scavenge no
	// replica may remain buffered.
	if errs := fs.Fsck(); len(errs) > 0 {
		return row, fmt.Errorf("scale %s: fsck found %d issue(s), first: %v",
			opt.Scenario, len(errs), errs[0])
	}
	if n := fs.MemReplicaCount(); n != 0 {
		return row, fmt.Errorf("scale %s: %d blocks still buffered after final eviction", opt.Scenario, n)
	}
	pend, queued, migr, inMem := coord.StateCounts()
	if pend != 0 || queued != 0 || migr != 0 || inMem != 0 {
		return row, fmt.Errorf("scale %s: non-zero final state counts %d/%d/%d/%d",
			opt.Scenario, pend, queued, migr, inMem)
	}
	if opt.TraceOut != nil {
		if err := trace.FromEngine(eng).WriteJSON(opt.TraceOut); err != nil {
			return row, fmt.Errorf("scale %s: trace export: %w", opt.Scenario, err)
		}
	}
	return row, nil
}

// RunScaleFamily runs the given presets in order.
func RunScaleFamily(opts []ScaleOptions) (ScaleReport, error) {
	var rep ScaleReport
	for _, opt := range opts {
		row, err := RunScale(opt)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// scaleExperiment registers the CI-sized preset of the scale family, so
// the determinism gate and -verify cover the datacenter code paths
// (sampling placer, bucketed binder, incremental counts) on every run.
func scaleExperiment() Experiment {
	return Experiment{
		Name:    "scale",
		Summary: "extension: datacenter-scale DYRS (100-node preset; 1k/10k via macro-benchmarks)",
		Run: func(seed int64) (any, error) {
			return RunScaleFamily([]ScaleOptions{Scale100Options(seed)})
		},
		Render: func(result any, sel Selection) []string {
			return []string{result.(ScaleReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			rep.Scale = result.(ScaleReport).Rows
		},
	}
}
