package experiments

import (
	"fmt"
	"time"

	"dyrs/internal/compute"
	"dyrs/internal/dfs"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
)

// MotivationReport reproduces the paper's §I micro-comparison: how much
// faster block reads are from RAM than from disk and SSD, and how much
// faster map tasks run when inputs are pinned in RAM.
type MotivationReport struct {
	// Block read durations, seconds, for a single 256MB block on an
	// otherwise idle node, and under map-phase-like disk contention.
	DiskIdle, DiskBusy float64
	SSDIdle            float64
	MemLocal           float64
	MemRemote          float64
	// MapperDisk/MapperRAM are mean map task durations for a trace-like
	// job with inputs on disk vs pinned in RAM.
	MapperDisk, MapperRAM float64
}

// RAMvsDiskIdle reports the block read speedup of RAM over an idle disk.
func (m MotivationReport) RAMvsDiskIdle() float64 { return m.DiskIdle / m.MemLocal }

// RAMvsDiskBusy reports the speedup over a disk busy with concurrent
// reads — the condition under which the paper measured its 160x.
func (m MotivationReport) RAMvsDiskBusy() float64 { return m.DiskBusy / m.MemLocal }

// RAMvsSSD reports the speedup of RAM over SSD reads (paper: 7x).
func (m MotivationReport) RAMvsSSD() float64 { return m.SSDIdle / m.MemLocal }

// MapperSpeedup reports the map task speedup from pinned inputs
// (paper: 10x).
func (m MotivationReport) MapperSpeedup() float64 { return m.MapperDisk / m.MapperRAM }

// String renders the comparison.
func (m MotivationReport) String() string {
	t := NewTable("Motivation (§I) — 256MB block read latency by medium",
		"medium", "seconds", "RAM-local speedup")
	row := func(name string, v float64) {
		t.AddRow(name, fmt.Sprintf("%.3f", v), fmt.Sprintf("%.0fx", v/m.MemLocal))
	}
	row("disk (idle)", m.DiskIdle)
	row("disk (map-phase contention)", m.DiskBusy)
	row("ssd (idle)", m.SSDIdle)
	row("memory (remote, 10Gbps)", m.MemRemote)
	row("memory (local)", m.MemLocal)
	return t.String() + fmt.Sprintf(
		"map tasks: %.1fs from disk vs %.1fs from RAM (%.1fx; paper: 10x)\n",
		m.MapperDisk, m.MapperRAM, m.MapperSpeedup())
}

// RunMotivation measures the §I micro-comparison on the simulated
// hardware.
func RunMotivation(seed int64) (MotivationReport, error) {
	var rep MotivationReport
	env := NewEnv(HDFS, DefaultOptions(seed))
	defer env.Close()
	fs := env.FS
	block := fs.Config().BlockSize

	readOnce := func(name string, tier dfs.Tier, busy int, mem bool, remote bool) (float64, error) {
		f, err := fs.CreateFileOnTier(name, block, tier)
		if err != nil {
			return 0, err
		}
		b := fs.Block(f.Blocks[0])
		server := b.Replicas[0]
		at := server
		if mem {
			fs.RegisterMem(b.ID, server)
			if remote {
				at = (server + 1) % 7
			}
		}
		// Optional competing foreground reads on the serving device.
		node := env.Cl.Node(server)
		res := node.Disk
		if tier == dfs.TierSSD {
			res = node.SSD
		}
		var load []*sim.Flow
		for i := 0; i < busy; i++ {
			load = append(load, res.StartLoad(1))
		}
		var dur float64
		err = fs.ReadBlock(at, b.ID, func(r dfs.ReadResult) { dur = r.Duration().Seconds() })
		if err != nil {
			return 0, err
		}
		env.Eng.RunFor(10 * time.Minute)
		for _, l := range load {
			l.Cancel()
		}
		if mem {
			fs.DropMem(b.ID, server)
		}
		return dur, nil
	}

	var err error
	if rep.DiskIdle, err = readOnce("m-disk", dfs.TierDisk, 0, false, false); err != nil {
		return rep, err
	}
	if rep.DiskBusy, err = readOnce("m-disk-busy", dfs.TierDisk, 7, false, false); err != nil {
		return rep, err
	}
	if rep.SSDIdle, err = readOnce("m-ssd", dfs.TierSSD, 0, false, false); err != nil {
		return rep, err
	}
	if rep.MemLocal, err = readOnce("m-mem", dfs.TierDisk, 0, true, false); err != nil {
		return rep, err
	}
	if rep.MemRemote, err = readOnce("m-mem-remote", dfs.TierDisk, 0, true, true); err != nil {
		return rep, err
	}

	// Mapper speedup: one trace-like job with inputs on disk, one with
	// inputs pinned (fresh environments so runs are independent).
	mapperMean := func(policy Policy) (float64, error) {
		e := NewEnv(policy, DefaultOptions(seed))
		defer e.Close()
		if err := e.CreateInput("job-input", 10*sim.GB); err != nil {
			return 0, err
		}
		spec := e.Prepare(compute.JobSpec{
			Name:           "motivation",
			InputFiles:     []string{"job-input"},
			MapCPUPerByte:  0.8 / float64(256*sim.MB),
			MapOutputRatio: 0.2,
			Reducers:       4,
			OutputRatio:    1,
		}.DefaultOverheads())
		j, err := e.FW.Submit(spec)
		if err != nil {
			return 0, err
		}
		if err := e.WaitJob(j, Hour); err != nil {
			return 0, err
		}
		s := metrics.NewSample()
		for _, tr := range j.Tasks {
			s.Add(tr.Duration().Seconds())
		}
		return s.Mean(), nil
	}
	if rep.MapperDisk, err = mapperMean(HDFS); err != nil {
		return rep, err
	}
	if rep.MapperRAM, err = mapperMean(RAM); err != nil {
		return rep, err
	}
	return rep, nil
}

// motivationExperiment registers the §I read-speedup micro-comparison.
func motivationExperiment() Experiment {
	return Experiment{
		Name:    "motivation",
		Summary: "§I micro-comparison: RAM vs SSD vs disk block reads",
		Run:     func(seed int64) (any, error) { return RunMotivation(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(MotivationReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			rep.Motivation = result.(MotivationReport)
		},
	}
}
