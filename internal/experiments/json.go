package experiments

import (
	"encoding/json"
	"io"

	"dyrs/internal/metrics"
	"dyrs/internal/runner"
	"dyrs/internal/sim"
)

// FullReport aggregates every experiment into one JSON-serializable
// document, so downstream tooling (plotting scripts, regression
// trackers) can consume the evaluation without parsing text tables.
type FullReport struct {
	Seed int64 `json:"seed"`

	Trace struct {
		MeanUtilization    float64 `json:"mean_utilization"`
		FractionUnder4Pct  float64 `json:"fraction_under_4pct"`
		FractionLeadCovers float64 `json:"fraction_lead_covers_read"`
		MeanLeadSeconds    float64 `json:"mean_lead_seconds"`
	} `json:"trace"`

	Hive []HiveRowJSON `json:"hive"`

	SWIM struct {
		MeanJobSeconds map[Policy]float64            `json:"mean_job_seconds"`
		BinMeans       map[Policy]map[string]float64 `json:"bin_means"`
		MapperMean     map[Policy]float64            `json:"mapper_mean_seconds"`
		DYRSBytes      sim.Bytes                     `json:"dyrs_bytes_migrated"`
		HypBytes       sim.Bytes                     `json:"hypothetical_bytes"`
	} `json:"swim"`

	Fig8 struct {
		SlowNode int                         `json:"slow_node"`
		Reads    map[string]map[Policy][]int `json:"reads"`
	} `json:"fig8"`

	TableII []TableIIRowJSON `json:"table2"`

	Fig10 struct {
		NaiveSlowTail    int     `json:"naive_slow_tail"`
		NaiveOverhangSec float64 `json:"naive_overhang_seconds"`
		DYRSSlowTail     int     `json:"dyrs_slow_tail"`
		DYRSOverhangSec  float64 `json:"dyrs_overhang_seconds"`
	} `json:"fig10"`

	Fig11 []Fig11RowJSON `json:"fig11"`

	Motivation MotivationReport `json:"motivation"`

	Order []OrderRowJSON `json:"order"`

	HotCold []HotColdRow `json:"hotcold"`

	Iterative []IterativeRow `json:"iterative"`

	Scale []ScaleRow `json:"scale"`

	ScaleShard []ScaleShardRow `json:"scaleshard"`

	Serving []ServingPolicyRow `json:"serving"`
}

// HiveRowJSON is the JSON form of one Hive query result.
type HiveRowJSON struct {
	Query     string             `json:"query"`
	InputGB   float64            `json:"input_gb"`
	Durations map[Policy]float64 `json:"durations_seconds"`
	Speedup   float64            `json:"dyrs_speedup"`
}

// TableIIRowJSON is the JSON form of one interference pattern result.
type TableIIRowJSON struct {
	Pattern  string              `json:"pattern"`
	Figure   string              `json:"figure"`
	Runtime  float64             `json:"runtime_seconds"`
	EstNode1 []metrics.TimePoint `json:"estimate_node1"`
	EstNode2 []metrics.TimePoint `json:"estimate_node2"`
}

// Fig11RowJSON is the JSON form of one sweep cell.
type Fig11RowJSON struct {
	SizeGB    float64            `json:"size_gb"`
	ExtraLead float64            `json:"extra_lead_seconds"`
	Map       map[Policy]float64 `json:"map_seconds"`
	Total     map[Policy]float64 `json:"total_seconds"`
}

// OrderRowJSON is the JSON form of one ordering-policy result.
type OrderRowJSON struct {
	Order     string  `json:"order"`
	MeanJob   float64 `json:"mean_job_seconds"`
	SmallMean float64 `json:"small_mean_seconds"`
	LargeMean float64 `json:"large_mean_seconds"`
}

// RunAll executes every registered experiment serially and aggregates
// the results. It is RunAllParallel with one worker.
func RunAll(seed int64) (*FullReport, error) {
	return RunAllParallel(seed, 1, nil)
}

// RunAllParallel executes every registered experiment on a worker pool
// of the given size (jobs <= 0 means GOMAXPROCS) and merges the results
// into one report in registry order, so the output is byte-identical at
// any worker count. Progress, when non-nil, receives the runner's
// serialized start/done events.
func RunAllParallel(seed int64, jobs int, progress func(runner.Event)) (*FullReport, error) {
	reg := Registry()
	results := runner.Run(registryJobs(reg, seed), runner.Options{Jobs: jobs, Progress: progress})
	if err := runner.FirstError(results); err != nil {
		return nil, err
	}
	out := &FullReport{Seed: seed}
	for i, res := range results {
		reg[i].Merge(out, res.Value)
	}
	return out, nil
}

// registryJobs adapts experiments to runner jobs, preserving order.
func registryJobs(reg []Experiment, seed int64) []runner.Job {
	out := make([]runner.Job, len(reg))
	for i, exp := range reg {
		exp := exp
		out[i] = runner.Job{
			Name: exp.Name,
			Run:  func() (any, error) { return exp.Run(seed) },
		}
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *FullReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
