package experiments

import (
	"encoding/json"
	"io"

	"dyrs/internal/metrics"
	"dyrs/internal/sim"
)

// FullReport aggregates every experiment into one JSON-serializable
// document, so downstream tooling (plotting scripts, regression
// trackers) can consume the evaluation without parsing text tables.
type FullReport struct {
	Seed int64 `json:"seed"`

	Trace struct {
		MeanUtilization    float64 `json:"mean_utilization"`
		FractionUnder4Pct  float64 `json:"fraction_under_4pct"`
		FractionLeadCovers float64 `json:"fraction_lead_covers_read"`
		MeanLeadSeconds    float64 `json:"mean_lead_seconds"`
	} `json:"trace"`

	Hive []HiveRowJSON `json:"hive"`

	SWIM struct {
		MeanJobSeconds map[Policy]float64            `json:"mean_job_seconds"`
		BinMeans       map[Policy]map[string]float64 `json:"bin_means"`
		MapperMean     map[Policy]float64            `json:"mapper_mean_seconds"`
		DYRSBytes      sim.Bytes                     `json:"dyrs_bytes_migrated"`
		HypBytes       sim.Bytes                     `json:"hypothetical_bytes"`
	} `json:"swim"`

	Fig8 struct {
		SlowNode int                         `json:"slow_node"`
		Reads    map[string]map[Policy][]int `json:"reads"`
	} `json:"fig8"`

	TableII []TableIIRowJSON `json:"table2"`

	Fig10 struct {
		NaiveSlowTail    int     `json:"naive_slow_tail"`
		NaiveOverhangSec float64 `json:"naive_overhang_seconds"`
		DYRSSlowTail     int     `json:"dyrs_slow_tail"`
		DYRSOverhangSec  float64 `json:"dyrs_overhang_seconds"`
	} `json:"fig10"`

	Fig11 []Fig11RowJSON `json:"fig11"`

	Motivation MotivationReport `json:"motivation"`

	Order []OrderRowJSON `json:"order"`

	HotCold []HotColdRow `json:"hotcold"`

	Iterative []IterativeRow `json:"iterative"`
}

// HiveRowJSON is the JSON form of one Hive query result.
type HiveRowJSON struct {
	Query     string             `json:"query"`
	InputGB   float64            `json:"input_gb"`
	Durations map[Policy]float64 `json:"durations_seconds"`
	Speedup   float64            `json:"dyrs_speedup"`
}

// TableIIRowJSON is the JSON form of one interference pattern result.
type TableIIRowJSON struct {
	Pattern  string              `json:"pattern"`
	Figure   string              `json:"figure"`
	Runtime  float64             `json:"runtime_seconds"`
	EstNode1 []metrics.TimePoint `json:"estimate_node1"`
	EstNode2 []metrics.TimePoint `json:"estimate_node2"`
}

// Fig11RowJSON is the JSON form of one sweep cell.
type Fig11RowJSON struct {
	SizeGB    float64            `json:"size_gb"`
	ExtraLead float64            `json:"extra_lead_seconds"`
	Map       map[Policy]float64 `json:"map_seconds"`
	Total     map[Policy]float64 `json:"total_seconds"`
}

// OrderRowJSON is the JSON form of one ordering-policy result.
type OrderRowJSON struct {
	Order     string  `json:"order"`
	MeanJob   float64 `json:"mean_job_seconds"`
	SmallMean float64 `json:"small_mean_seconds"`
	LargeMean float64 `json:"large_mean_seconds"`
}

// RunAll executes every experiment and aggregates the results.
func RunAll(seed int64) (*FullReport, error) {
	out := &FullReport{Seed: seed}

	tr := RunTrace(seed)
	out.Trace.MeanUtilization = tr.Trace.MeanUtilization()
	out.Trace.FractionUnder4Pct = tr.Trace.FractionUnder(0.04)
	out.Trace.FractionLeadCovers = tr.Trace.FractionLeadCoversRead()
	out.Trace.MeanLeadSeconds = tr.Trace.MeanLeadSeconds()

	hive, err := RunHive(seed)
	if err != nil {
		return nil, err
	}
	for _, r := range hive.Rows {
		out.Hive = append(out.Hive, HiveRowJSON{
			Query: r.Query, InputGB: r.InputGB,
			Durations: r.Durations, Speedup: r.Speedup(DYRS),
		})
	}

	swim, err := RunSWIM(seed)
	if err != nil {
		return nil, err
	}
	out.SWIM.MeanJobSeconds = map[Policy]float64{}
	out.SWIM.BinMeans = map[Policy]map[string]float64{}
	out.SWIM.MapperMean = map[Policy]float64{}
	for p, run := range swim.Runs {
		out.SWIM.MeanJobSeconds[p] = run.MeanJobSeconds()
		out.SWIM.BinMeans[p] = run.MeanJobSecondsByBin()
		out.SWIM.MapperMean[p] = run.MapperDurations.Mean()
	}
	out.SWIM.DYRSBytes = swim.Runs[DYRS].BytesMigrated
	out.SWIM.HypBytes = swim.Runs[RAM].BytesMigrated

	fig8, err := RunFig8(seed)
	if err != nil {
		return nil, err
	}
	out.Fig8.SlowNode = fig8.SlowNode
	out.Fig8.Reads = fig8.Reads

	t2, err := RunTableII(seed)
	if err != nil {
		return nil, err
	}
	for _, r := range t2.Rows {
		out.TableII = append(out.TableII, TableIIRowJSON{
			Pattern: r.Pattern, Figure: r.Figure, Runtime: r.Runtime,
			EstNode1: r.EstimateNode1, EstNode2: r.EstimateNode2,
		})
	}

	f10, err := RunFig10(seed)
	if err != nil {
		return nil, err
	}
	out.Fig10.NaiveSlowTail, out.Fig10.NaiveOverhangSec = f10.SlowTail(Naive, 10)
	out.Fig10.DYRSSlowTail, out.Fig10.DYRSOverhangSec = f10.SlowTail(DYRS, 10)

	f11, err := RunFig11(seed)
	if err != nil {
		return nil, err
	}
	for _, r := range f11.Rows {
		out.Fig11 = append(out.Fig11, Fig11RowJSON{
			SizeGB: r.SizeGB, ExtraLead: r.ExtraLead,
			Map: r.MapSeconds, Total: r.TotalSeconds,
		})
	}

	if out.Motivation, err = RunMotivation(seed); err != nil {
		return nil, err
	}

	order, err := RunOrderPolicies(seed)
	if err != nil {
		return nil, err
	}
	for _, r := range order.Rows {
		out.Order = append(out.Order, OrderRowJSON{
			Order: r.Order.String(), MeanJob: r.MeanJob,
			SmallMean: r.SmallMean, LargeMean: r.LargeMean,
		})
	}

	hc, err := RunHotCold(seed)
	if err != nil {
		return nil, err
	}
	out.HotCold = hc.Rows

	it, err := RunIterative(seed)
	if err != nil {
		return nil, err
	}
	out.Iterative = it.Rows

	return out, nil
}

// WriteJSON writes the report as indented JSON.
func (r *FullReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
