package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The observability invariance contract: a 1-in-N sampled trace is a
// deterministic artifact of (model, seed) alone — engine shard count
// and worker count must not change a byte of it. These tests are the
// local version of the CI scale-smoke assertions.

// scaleTraceBytes runs the scale100 preset with sampling and returns
// the canonical trace document bytes.
func scaleTraceBytes(t *testing.T, seed int64, shards int) []byte {
	t.Helper()
	var buf bytes.Buffer
	opt := Scale100Options(seed)
	opt.Shards = shards
	opt.SampleEvery = 64
	opt.TraceOut = &buf
	if _, err := RunScale(opt); err != nil {
		t.Fatalf("scale100 shards=%d: %v", shards, err)
	}
	return buf.Bytes()
}

func TestScaleSampledTraceShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("scale100 x3 in -short")
	}
	ref := scaleTraceBytes(t, 7, 1)
	if len(ref) == 0 {
		t.Fatal("empty sampled trace")
	}
	for _, shards := range []int{2, 4} {
		got := scaleTraceBytes(t, 7, shards)
		if !bytes.Equal(ref, got) {
			t.Errorf("sampled trace differs: shards=1 (%d bytes) vs shards=%d (%d bytes)",
				len(ref), shards, len(got))
		}
	}
}

// scaleShardTraceBytes runs the scaleshard smoke preset on a genuinely
// partitioned engine and returns the merged canonical trace bytes.
func scaleShardTraceBytes(t *testing.T, seed int64, dataShards, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	opt := ScaleShardSmokeOptions(seed)
	opt.DataShards = dataShards
	opt.Workers = workers
	opt.SampleEvery = 64
	opt.TraceOut = &buf
	if _, err := RunScaleShard(opt); err != nil {
		t.Fatalf("scaleshard data-shards=%d workers=%d: %v", dataShards, workers, err)
	}
	return buf.Bytes()
}

func TestScaleShardSampledTraceLayoutInvariant(t *testing.T) {
	ref := scaleShardTraceBytes(t, 11, 1, 1)
	if len(ref) == 0 {
		t.Fatal("empty sampled trace")
	}
	for _, tc := range []struct{ dataShards, workers int }{
		{2, 1}, {4, 1}, {4, 8}, {8, 8},
	} {
		got := scaleShardTraceBytes(t, 11, tc.dataShards, tc.workers)
		if !bytes.Equal(ref, got) {
			t.Errorf("sampled trace differs: data-shards=1/workers=1 (%d bytes) vs data-shards=%d/workers=%d (%d bytes)",
				len(ref), tc.dataShards, tc.workers, len(got))
		}
	}
}

// TestScaleShardMergedHistsMatchWholeRun is the end-to-end half of the
// histogram merge differential: the merged per-shard read-latency and
// transfer-size histograms of a genuinely partitioned run must equal
// the single-data-shard run's, bucket for bucket.
func TestScaleShardMergedHistsMatchWholeRun(t *testing.T) {
	type doc struct {
		Hists map[string]struct {
			Count   uint64 `json:"count"`
			Sum     int64  `json:"sum"`
			Buckets []struct {
				Le int64  `json:"le"`
				N  uint64 `json:"n"`
			} `json:"buckets"`
		} `json:"hists"`
	}
	parse := func(b []byte) doc {
		var d doc
		if err := json.Unmarshal(b, &d); err != nil {
			t.Fatalf("merged trace is not valid JSON: %v", err)
		}
		return d
	}
	whole := parse(scaleShardTraceBytes(t, 3, 1, 1))
	sharded := parse(scaleShardTraceBytes(t, 3, 4, 4))
	if len(whole.Hists) == 0 {
		t.Fatal("no histograms in trace")
	}
	if whole.Hists["read.latency_ns"].Count == 0 {
		t.Fatal("read.latency_ns histogram is empty")
	}
	for name, w := range whole.Hists {
		s, ok := sharded.Hists[name]
		if !ok {
			t.Errorf("histogram %q missing from sharded run", name)
			continue
		}
		if w.Count != s.Count || w.Sum != s.Sum || len(w.Buckets) != len(s.Buckets) {
			t.Errorf("histogram %q differs: whole {count %d sum %d %d buckets} vs sharded {count %d sum %d %d buckets}",
				name, w.Count, w.Sum, len(w.Buckets), s.Count, s.Sum, len(s.Buckets))
		}
	}
}
