package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// The scaleshard experiment family is the parallel-in-virtual-time
// counterpart of the scale family: the same datacenter shape (nodes in
// racks, heterogeneous disks, a bandwidth-aware master picking
// migration targets), but built as a genuinely partitioned model on
// sim.ShardedEngine — master on the control shard, each rack homed on
// its own data shard, and every master<->rack interaction an explicit
// timestamped Send. It exists to (a) exercise and benchmark the
// multi-core engine on a realistic workload, and (b) pin the
// determinism contract: every counter and the execution digest must be
// byte-identical at any worker count.
//
// The model is deliberately self-contained (per-node sim.Resource
// disks rather than the full dfs/migration stack): partitioning the
// full coordinator is the next step on the roadmap, and this family is
// the harness that proves the engine underneath it is safe.
type ScaleShardOptions struct {
	// Scenario names the preset in reports ("scaleshard", "scaleshard1k").
	Scenario string
	// Nodes and Racks shape the cluster; each rack is one data shard, so
	// the engine runs 1+Racks logical shards.
	Nodes int
	Racks int
	// BlockSize is the unit of reads and migrations.
	BlockSize sim.Bytes
	// ReadEvery is the mean of the per-node closed-loop read
	// interarrival (exponential); the read load that keeps data shards
	// busy between control-plane events.
	ReadEvery sim.Duration
	// Jobs migration jobs arrive over the first 75% of the run; each
	// requests BlocksPerJob block migrations on master-chosen nodes.
	Jobs         int
	BlocksPerJob int
	// Heartbeat is the per-rack load-report interval; ControlLatency the
	// one-way master<->rack message latency (it is also the engine
	// lookahead — no cross-shard interaction is faster).
	Heartbeat      sim.Duration
	ControlLatency sim.Duration
	// Residency is how long a migrated block stays buffered before its
	// rack-local eviction timer fires.
	Residency sim.Duration
	// Virtual is the simulated time span.
	Virtual sim.Duration
	// Seed drives all randomness; identical seeds give identical rows.
	Seed int64
	// Workers caps the engine's execution lanes (0 = GOMAXPROCS). Rows
	// are byte-identical at any value — it is a wall-clock knob only.
	Workers int
	// DataShards, when >0, overrides the data-shard count (default: one
	// per rack). Node-level behavior is layout-invariant: every node's
	// read stream draws from its own seed-derived RNG and its disk is a
	// private resource, so the sampled trace and the merged metric
	// registries are byte-identical at any DataShards value.
	DataShards int
	// SampleEvery, when >1, attaches per-shard tracers with
	// deterministic 1-in-N root-record sampling. TraceOut, when non-nil,
	// receives the canonical merged trace document at the end of the run
	// (attaching tracers even when SampleEvery <= 1).
	SampleEvery int
	TraceOut    io.Writer
}

// ScaleShardSmokeOptions is the CI-sized preset registered in the
// experiment registry: ~100k events, small enough for the determinism
// gate to run twice, partitioned enough (8 rack shards) to exercise
// the windowed executor rather than the solo fast path.
func ScaleShardSmokeOptions(seed int64) ScaleShardOptions {
	return ScaleShardOptions{
		Scenario:       "scaleshard",
		Nodes:          120,
		Racks:          8,
		BlockSize:      128 * sim.MB,
		ReadEvery:      5 * time.Second,
		Jobs:           40,
		BlocksPerJob:   16,
		Heartbeat:      10 * time.Second,
		ControlLatency: 2 * time.Second,
		Residency:      5 * time.Minute,
		Virtual:        30 * time.Minute,
		Seed:           seed,
	}
}

// ScaleShard1kOptions is the macro-benchmark preset: 1,000 nodes in 20
// rack shards for four hours of virtual time — several million events
// spread across 21 logical shards, the regime where multi-core
// execution pays.
func ScaleShard1kOptions(seed int64) ScaleShardOptions {
	return ScaleShardOptions{
		Scenario:       "scaleshard1k",
		Nodes:          1000,
		Racks:          20,
		BlockSize:      128 * sim.MB,
		ReadEvery:      5 * time.Second,
		Jobs:           200,
		BlocksPerJob:   64,
		Heartbeat:      10 * time.Second,
		ControlLatency: 2 * time.Second,
		Residency:      15 * time.Minute,
		Virtual:        4 * time.Hour,
		Seed:           seed,
	}
}

// ScaleShardRow is the deterministic outcome of one run: virtual-time
// counters and the engine execution digest only, so the row
// participates in the byte-identical determinism contract at any
// worker count. Wall-clock throughput is measured by the
// BenchmarkScale1kShards* macro-benchmarks, never recorded here.
type ScaleShardRow struct {
	Scenario     string  `json:"scenario"`
	Nodes        int     `json:"nodes"`
	Racks        int     `json:"racks"`
	Shards       int     `json:"shards"`
	VirtualHours float64 `json:"virtual_hours"`

	// EventsFired sums executed events across shards; Digest is the
	// engine's (time, seq) execution fingerprint — identical digests
	// mean identical executed schedules on every shard.
	EventsFired uint64 `json:"events_fired"`
	Digest      string `json:"digest"`

	Reads      uint64  `json:"reads"`
	ReadTB     float64 `json:"read_tb"`
	Heartbeats int     `json:"heartbeats"`

	Requested  int     `json:"requested"`
	Migrated   int     `json:"migrated"`
	Evicted    int     `json:"evicted"`
	MigratedTB float64 `json:"migrated_tb"`

	// Engine profiler outcomes (sim.ShardedEngine.Profile): how rounds
	// split between the solo fast path and coordinated windows, how many
	// shard-window participations stalled on lookahead, and the
	// cross-shard message volume. Pure virtual-time facts — identical at
	// any worker count, so they live in the deterministic row.
	Rounds          uint64 `json:"windows"`
	SoloRounds      uint64 `json:"solo_rounds"`
	LookaheadStalls uint64 `json:"lookahead_stalls"`
	CrossShardMsgs  uint64 `json:"cross_shard_msgs"`
}

// ScaleShardReport aggregates the rows of one or more presets.
type ScaleShardReport struct {
	Rows []ScaleShardRow
}

// String renders the family as a table.
func (r ScaleShardReport) String() string {
	t := NewTable("Sharded engine — partitioned datacenter model (worker-count invariant)",
		"scenario", "nodes", "shards", "virtual", "events", "digest",
		"reads", "heartbeats", "migrated", "evicted")
	for _, row := range r.Rows {
		t.AddRow(row.Scenario,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Shards),
			fmt.Sprintf("%.1fh", row.VirtualHours),
			fmt.Sprintf("%d", row.EventsFired),
			row.Digest[:12],
			fmt.Sprintf("%d", row.Reads),
			fmt.Sprintf("%d", row.Heartbeats),
			fmt.Sprintf("%d", row.Migrated),
			fmt.Sprintf("%d", row.Evicted))
	}
	return t.String()
}

// shardNode is the per-node state homed on a rack shard: its disk, the
// outstanding-read gauge the heartbeat reports, and the count of
// migrated blocks currently buffered (each with a pending eviction
// timer).
type shardNode struct {
	id          int
	disk        *sim.Resource
	outstanding int
	resident    int
	// rng drives the node's read think times. Per-node (derived from the
	// run seed and the node id, never from a shard engine's stream) so
	// the node's event sequence — and therefore the sampled trace — is
	// identical at any data-shard layout.
	rng *rand.Rand
}

// shardRack is one data shard's state. Only events executing on its
// home shard ever touch it, which is what makes the model race-free
// under parallel windows.
type shardRack struct {
	sh    *sim.Engine
	nodes []*shardNode

	reads     uint64
	readBytes sim.Bytes
	migrated  int
	migBytes  sim.Bytes
	evicted   int

	// Per-shard observability (nil and no-op when untraced). Only
	// node-level records go in — never shard-level ones like heartbeat
	// batches, whose count depends on the data-shard layout — so the
	// merged export is layout-invariant.
	tr        *trace.Tracer
	hRead     *trace.Hist // read latency, ns
	hTransfer *trace.Hist // migration transfer size, bytes
}

// shardLoad is one node's entry in a heartbeat report. Reports are
// built fresh per beat and never mutated after Send — the immutability
// the cross-shard closure contract requires.
type shardLoad struct {
	id          int
	outstanding int
}

// shardMaster is the control-shard state: the per-node migration-cost
// estimates Algorithm-1-style target picking scans, and the
// control-plane counters.
type shardMaster struct {
	est        []float64
	requested  int
	migrated   int
	heartbeats int
}

// RunScaleShard executes one partitioned scenario and returns its
// deterministic row. The run ends with hard invariant checks: every
// requested migration completed and reported, every buffered block
// evicted.
func RunScaleShard(opt ScaleShardOptions) (ScaleShardRow, error) {
	row := ScaleShardRow{
		Scenario:     opt.Scenario,
		Nodes:        opt.Nodes,
		Racks:        opt.Racks,
		VirtualHours: time.Duration(opt.Virtual).Hours(),
	}
	if opt.Nodes <= 0 || opt.Racks <= 0 || opt.Jobs <= 0 || opt.BlocksPerJob <= 0 {
		return row, fmt.Errorf("scaleshard %s: non-positive size parameter", opt.Scenario)
	}

	look := cluster.MinLookahead(opt.ControlLatency, 0, opt.Heartbeat)
	dataShards := opt.DataShards
	if dataShards <= 0 {
		dataShards = opt.Racks
	}
	part := cluster.PartitionByRack(opt.Nodes, opt.Racks, dataShards, look)
	row.Shards = part.Shards()

	se := sim.NewShardedEngine(opt.Seed, part.Shards(), look)
	if opt.Workers > 0 {
		se.SetWorkers(opt.Workers)
	} else {
		se.SetWorkers(runtime.GOMAXPROCS(0))
	}
	master := se.Shard(0)
	span := sim.Time(opt.Virtual)
	traced := opt.TraceOut != nil || opt.SampleEvery > 1

	m := &shardMaster{est: make([]float64, opt.Nodes)}
	var masterTr *trace.Tracer
	if traced {
		masterTr = trace.New(master)
		masterTr.SetSampling(opt.SampleEvery, uint64(opt.Seed))
	}
	racks := make([]*shardRack, part.Shards())
	trs := []*trace.Tracer{masterTr}
	for s := 1; s < part.Shards(); s++ {
		rk := &shardRack{sh: se.Shard(s)}
		if traced {
			rk.tr = trace.New(rk.sh)
			rk.tr.SetSampling(opt.SampleEvery, uint64(opt.Seed))
			rk.hRead = rk.tr.Hist("read.latency_ns")
			rk.hTransfer = rk.tr.Hist("migration.transfer_bytes")
		}
		racks[s] = rk
		trs = append(trs, rk.tr)
	}

	// Per-node disk heterogeneity, drawn from a dedicated setup stream
	// in node order so it is independent of the partition layout.
	setupRng := sim.NewEngine(opt.Seed + 1).Rand()
	nodeCfg := cluster.DefaultNodeConfig()
	home := make([]*shardNode, opt.Nodes) // node id -> its shard-homed state
	for i := 0; i < opt.Nodes; i++ {
		scale := 1 - 0.65*setupRng.Float64() // 0.35..1x nominal bandwidth
		rk := racks[part.NodeShard(cluster.NodeID(i))]
		n := &shardNode{
			id:   i,
			disk: sim.NewResource(rk.sh, fmt.Sprintf("disk:%d", i), nodeCfg.DiskBandwidth*scale, sim.SeekEfficiency(nodeCfg.DiskSeekPenalty)),
			rng:  rand.New(rand.NewSource(opt.Seed ^ int64(uint64(i+1)*0x9E3779B97F4A7C15))),
		}
		rk.nodes = append(rk.nodes, n)
		home[i] = n
	}

	// Closed-loop background reads: each node reads one block, waits an
	// exponential think time, reads again — until the span ends, at
	// which point the loop stops rescheduling and the drain below
	// finishes the in-flight flows.
	var startRead func(rk *shardRack, n *shardNode)
	scheduleRead := func(rk *shardRack, n *shardNode) {
		at := rk.sh.Now().Add(sim.Duration(n.rng.ExpFloat64() * float64(opt.ReadEvery)))
		if at >= span {
			return
		}
		rk.sh.At(at, func() { startRead(rk, n) })
	}
	startRead = func(rk *shardRack, n *shardNode) {
		n.outstanding++
		sp := rk.tr.Begin("read", "read", n.id)
		t0 := rk.sh.Now()
		n.disk.Start(opt.BlockSize, func(*sim.Flow) {
			n.outstanding--
			rk.reads++
			rk.readBytes += opt.BlockSize
			rk.hRead.Observe(int64(rk.sh.Now().Sub(t0)))
			sp.End()
			scheduleRead(rk, n)
		})
	}
	for s := 1; s < part.Shards(); s++ {
		rk := racks[s]
		for _, n := range rk.nodes {
			scheduleRead(rk, n)
		}
	}

	// Per-rack heartbeats: every Heartbeat, a rack shard snapshots its
	// nodes' outstanding-read gauges and Sends the report to the master,
	// which folds it into the per-node cost estimates the target picker
	// scans. The report slice is immutable after Send.
	var beat func(rk *shardRack)
	beat = func(rk *shardRack) {
		report := make([]shardLoad, len(rk.nodes))
		for i, n := range rk.nodes {
			report[i] = shardLoad{id: n.id, outstanding: n.outstanding}
		}
		rk.sh.Send(0, opt.ControlLatency, func() {
			m.heartbeats++
			for _, l := range report {
				m.est[l.id] = 0.7*m.est[l.id] + 0.3*float64(l.outstanding)
			}
		})
		next := rk.sh.Now().Add(opt.Heartbeat)
		if next < span {
			rk.sh.At(next, func() { beat(rk) })
		}
	}
	for s := 1; s < part.Shards(); s++ {
		rk := racks[s]
		rk.sh.At(sim.Time(opt.Heartbeat), func() { beat(rk) })
	}

	// Rack-side migration: a weighted background flow on the target
	// node's disk; completion buffers the block, arms the rack-local
	// eviction timer, and reports back to the master. Eviction being
	// rack-local (not a master command) keeps the end-of-run residency
	// invariant independent of control-plane round trips.
	const migWeight = 0.3
	migrate := func(rk *shardRack, n *shardNode) {
		sp := rk.tr.Begin("migration", "migrate", n.id, trace.Int("size", int64(opt.BlockSize)))
		n.disk.StartWeighted(opt.BlockSize, migWeight, func(*sim.Flow) {
			rk.migrated++
			rk.migBytes += opt.BlockSize
			n.resident++
			rk.hTransfer.Observe(int64(opt.BlockSize))
			rk.tr.Inc("migration.completed")
			rk.tr.Add("migration.bytes", int64(opt.BlockSize))
			sp.End(trace.Str("outcome", "pinned"))
			rk.sh.Schedule(opt.Residency, func() {
				n.resident--
				rk.evicted++
				rk.tr.Instant("migration", "evict", n.id)
			})
			id := n.id
			rk.sh.Send(0, opt.ControlLatency, func() {
				m.migrated++
				m.est[id] *= 0.8 // completed work decays the node's cost estimate
			})
		})
	}

	// Master-side job arrivals over the first 75% of the span: each job
	// picks its targets by scanning for the lowest-estimate nodes
	// (deterministic tiebreak by node id), penalizes each pick by the
	// nominal per-block migration cost so one job spreads across nodes,
	// and Sends one batched command per destination shard.
	blockCost := float64(opt.BlockSize) / nodeCfg.DiskBandwidth
	arrivalSpan := 0.75 * float64(opt.Virtual)
	for j := 0; j < opt.Jobs; j++ {
		submit := sim.Time(arrivalSpan * float64(j) / float64(opt.Jobs))
		master.At(submit, func() {
			m.requested += opt.BlocksPerJob
			masterTr.Instant("job", "submit", trace.NodeMaster,
				trace.Int("blocks", int64(opt.BlocksPerJob)))
			masterTr.Add("migration.requested", int64(opt.BlocksPerJob))
			batches := make([][]*shardNode, part.Shards())
			for k := 0; k < opt.BlocksPerJob; k++ {
				best := 0
				for i := 1; i < opt.Nodes; i++ {
					if m.est[i] < m.est[best] {
						best = i
					}
				}
				m.est[best] += blockCost
				s := part.NodeShard(cluster.NodeID(best))
				batches[s] = append(batches[s], home[best])
			}
			for s, batch := range batches {
				if len(batch) == 0 {
					continue
				}
				rk, batch := racks[s], batch
				master.Send(s, opt.ControlLatency, func() {
					for _, n := range batch {
						migrate(rk, n)
					}
				})
			}
		})
	}

	se.RunUntil(span)
	se.Run() // drain: in-flight flows, migrations, eviction timers, reports

	row.EventsFired = se.EventsFired()
	row.Digest = fmt.Sprintf("%016x", se.Digest())
	row.Heartbeats = m.heartbeats
	prof := se.Profile()
	row.Rounds = prof.Rounds
	row.SoloRounds = prof.SoloRounds
	row.CrossShardMsgs = prof.Delivered
	for _, s := range prof.Stalled {
		row.LookaheadStalls += s
	}
	row.Requested = m.requested
	row.Migrated = m.migrated
	for s := 1; s < part.Shards(); s++ {
		rk := racks[s]
		row.Reads += rk.reads
		row.ReadTB += float64(rk.readBytes) / float64(sim.TB)
		row.Evicted += rk.evicted
		row.MigratedTB += float64(rk.migBytes) / float64(sim.TB)
	}

	// Hard end-of-run invariants: every requested migration completed
	// and its completion report reached the master; every buffered block
	// was evicted by its rack-local timer.
	rackMigrated := 0
	for s := 1; s < part.Shards(); s++ {
		rackMigrated += racks[s].migrated
		for _, n := range racks[s].nodes {
			if n.resident != 0 {
				return row, fmt.Errorf("scaleshard %s: node %d still buffers %d blocks after drain", opt.Scenario, n.id, n.resident)
			}
		}
	}
	if rackMigrated != m.requested || m.migrated != m.requested {
		return row, fmt.Errorf("scaleshard %s: requested %d, rack-migrated %d, master-acked %d",
			opt.Scenario, m.requested, rackMigrated, m.migrated)
	}
	if row.Evicted != rackMigrated {
		return row, fmt.Errorf("scaleshard %s: migrated %d but evicted %d", opt.Scenario, rackMigrated, row.Evicted)
	}
	if opt.TraceOut != nil {
		if err := trace.WriteMergedJSON(opt.TraceOut, trs...); err != nil {
			return row, fmt.Errorf("scaleshard %s: trace export: %w", opt.Scenario, err)
		}
	}
	return row, nil
}

// RunScaleShardFamily runs the given presets in order.
func RunScaleShardFamily(opts []ScaleShardOptions) (ScaleShardReport, error) {
	var rep ScaleShardReport
	for _, opt := range opts {
		row, err := RunScaleShard(opt)
		if err != nil {
			return rep, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// scaleShardExperiment registers the CI-sized preset, so -verify and
// the determinism gate prove the windowed multi-shard executor
// byte-identical run over run (the registry runs with GOMAXPROCS
// workers — any nondeterminism in the parallel engine shows up as a
// digest or counter diff here).
func scaleShardExperiment() Experiment {
	return Experiment{
		Name:    "scaleshard",
		Summary: "extension: partitioned datacenter model on the multi-core sharded engine",
		Run: func(seed int64) (any, error) {
			return RunScaleShardFamily([]ScaleShardOptions{ScaleShardSmokeOptions(seed)})
		},
		Render: func(result any, sel Selection) []string {
			return []string{result.(ScaleShardReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			rep.ScaleShard = result.(ScaleShardReport).Rows
		},
	}
}
