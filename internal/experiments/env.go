// Package experiments assembles full simulated environments and runs the
// paper's evaluation: one entry point per table and figure (Figs. 1-11,
// Tables I-II), each returning typed rows plus a text rendering that
// mirrors the published presentation.
package experiments

import (
	"fmt"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/compute"
	"dyrs/internal/dfs"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// Policy selects one of the four file-system configurations compared in
// §V-A, plus the naive balancer used in Fig. 10.
type Policy string

// The evaluated configurations.
const (
	HDFS  Policy = "HDFS"               // default file system, no migration
	RAM   Policy = "HDFS-Inputs-in-RAM" // inputs pinned in memory (upper bound)
	Ignem Policy = "Ignem"              // random immediate binding
	DYRS  Policy = "DYRS"               // the paper's scheme
	Naive Policy = "Naive"              // DYRS minus straggler avoidance
)

// AllPolicies lists the four headline configurations in table order.
var AllPolicies = []Policy{HDFS, RAM, Ignem, DYRS}

// Migrates reports whether the policy runs a migration framework.
func (p Policy) Migrates() bool { return p == DYRS || p == Ignem || p == Naive }

// Options configures an experiment environment.
type Options struct {
	// Workers is the number of storage/compute nodes (the paper's
	// testbed has 7 workers plus a master).
	Workers int
	// Seed drives all randomness; identical seeds give identical runs.
	Seed int64
	// SlowNodes maps node index to a disk capacity scale (<1 = slower
	// hardware). Fixed heterogeneity, as opposed to interference.
	SlowNodes map[int]float64
	// NodeConfig optionally overrides the per-node hardware config
	// before SlowNodes scaling is applied.
	NodeConfig *cluster.NodeConfig
	// MigrationConfig optionally overrides migration framework tunables.
	MigrationConfig *migration.Config
	// Racks, when >1, partitions the cluster into racks with HDFS-style
	// rack-aware replica placement; CoreBandwidth is the cross-rack core
	// switch capacity in bytes/sec (0 = non-blocking).
	Racks         int
	CoreBandwidth float64
	// Trace attaches a trace.Tracer to the run so migrations, reads and
	// tasks record spans; retrieve it with Env.Tracer.
	Trace bool
	// SampleEvery, when >1 (and Trace is on), keeps 1-in-N root spans
	// and instants via the tracer's deterministic sampler; counters and
	// histograms stay exact. The sampled trace is byte-identical across
	// shard and worker counts.
	SampleEvery int
	// Shards, when >1, runs the environment on a sim.ShardedEngine with
	// that many logical shards. The whole model is pinned to shard 0, so
	// it executes on the sharded engine's solo fast path and every
	// output stays byte-identical to Shards<=1 — this is the cheap
	// differential lever dyrs-sim/dyrs-fuzz -shards pulls to prove the
	// sharded executor against the sequential one.
	Shards int
	// RefResources builds the environment on reference-mode resources
	// (sim.Engine.SetReferenceResources): the structurally naive
	// fair-share model that shares its arithmetic with the optimized
	// finish-tag heap. The resource conformance suite differences full
	// runs against it; production code leaves it false.
	RefResources bool
	// MigBinder, when non-empty and the policy migrates, overrides the
	// binder backing the coordinator: a migrating internal/policy name
	// ("dyrs", "ignem", "costaware") or "dyrs-ref" (the frozen
	// pre-extraction DYRS binder the conformance suite differences
	// against). The migration Config stays whatever the experiment
	// Policy selects, so "dyrs" vs "dyrs-ref" is a pure binder swap.
	MigBinder string
}

// DefaultOptions mirrors the paper's 7-worker testbed.
func DefaultOptions(seed int64) Options {
	return Options{Workers: 7, Seed: seed}
}

// Env is one fully wired simulated deployment: engine, cluster, DFS,
// optional migration framework, and the compute framework.
type Env struct {
	Policy Policy
	Eng    *sim.Engine
	Cl     *cluster.Cluster
	FS     *dfs.FS
	Coord  *migration.Coordinator // nil for HDFS and RAM
	FW     *compute.Framework

	doneCount  int
	waitTarget *compute.Job
	waitCount  int
}

// NewEnv builds an environment for the given policy.
func NewEnv(policy Policy, opt Options) *Env {
	if opt.Workers <= 0 {
		opt.Workers = 7
	}
	var eng *sim.Engine
	if opt.Shards > 1 {
		eng = sim.NewShardedEngine(opt.Seed, opt.Shards, time.Millisecond).Shard(0)
	} else {
		eng = sim.NewEngine(opt.Seed)
	}
	if opt.RefResources {
		eng.SetReferenceResources(true)
	}
	if opt.Trace {
		// Attach before any component constructs: they capture the run's
		// tracer once at construction time.
		tr := trace.New(eng)
		tr.SetSampling(opt.SampleEvery, uint64(opt.Seed))
	}
	cl := cluster.New(eng, opt.Workers, func(i int) cluster.NodeConfig {
		cfg := cluster.DefaultNodeConfig()
		if opt.NodeConfig != nil {
			cfg = *opt.NodeConfig
		}
		if s, ok := opt.SlowNodes[i]; ok {
			cfg.DiskScale = s
		}
		return cfg
	})
	if opt.Racks > 1 {
		cl.ConfigureRacks(opt.Racks, opt.CoreBandwidth)
	}
	if tr := trace.FromEngine(eng); tr.Enabled() {
		rackOf := make([]int, opt.Workers)
		for i := range rackOf {
			rackOf[i] = cl.Rack(cluster.NodeID(i))
		}
		tr.SetTopology(rackOf)
	}
	fsCfg := dfs.DefaultConfig()
	if fsCfg.Replication > opt.Workers {
		fsCfg.Replication = opt.Workers
	}
	fs := dfs.New(cl, fsCfg)

	var mgr migration.Manager = migration.None{}
	var coord *migration.Coordinator
	if policy.Migrates() {
		mcfg := migration.DefaultConfig()
		if opt.MigrationConfig != nil {
			mcfg = *opt.MigrationConfig
		}
		var binder migration.Binder
		switch policy {
		case DYRS:
			binder = migration.NewDYRSBinder()
		case Ignem:
			binder = migration.NewIgnemBinder()
			// Ignem binds blindly at submission and never reconsiders —
			// it has no missed-read handling (§VI), copies at full IO
			// priority, and mlocks every bound block at once instead of
			// serializing migrations the way DYRS does (§III-B).
			mcfg.CancelOnMissedRead = false
			mcfg.IOWeight = 1.0
			mcfg.MaxConcurrent = 6
		case Naive:
			binder = migration.NewNaiveBinder()
		}
		if opt.MigBinder != "" {
			b, err := migration.BinderByName(opt.MigBinder)
			if err != nil {
				// Misconfiguration, not a runtime condition: callers (the
				// fuzz driver, tests) validate flag values up front.
				panic(err)
			}
			binder = b
		}
		coord = migration.NewCoordinator(fs, mcfg, binder)
		mgr = coord
	}
	fw := compute.New(fs, mgr)
	if coord != nil {
		coord.SetScheduler(fw)
	}
	e := &Env{Policy: policy, Eng: eng, Cl: cl, FS: fs, Coord: coord, FW: fw}
	fw.OnJobDone(func(j *compute.Job) {
		e.doneCount++
		if (e.waitTarget != nil && j == e.waitTarget) ||
			(e.waitCount > 0 && e.doneCount >= e.waitCount) {
			eng.Stop()
		}
	})
	return e
}

// Tracer returns the run's tracer, or nil when Options.Trace was off.
// The nil result is safe to use: trace methods no-op on nil.
func (e *Env) Tracer() *trace.Tracer { return trace.FromEngine(e.Eng) }

// CreateInput creates a DFS file and, under the RAM policy, pins it in
// memory up front (the vmtouch step of §V-A).
func (e *Env) CreateInput(name string, size sim.Bytes) error {
	if _, err := e.FS.CreateFile(name, size); err != nil {
		return err
	}
	if e.Policy == RAM {
		if _, err := migration.PinFiles(e.FS, []string{name}); err != nil {
			return err
		}
	}
	return nil
}

// Prepare adapts a job spec to the environment's policy: migrating
// policies request migration at submission; HDFS and RAM do not.
func (e *Env) Prepare(spec compute.JobSpec) compute.JobSpec {
	spec.Migrate = e.Policy.Migrates()
	return spec
}

// WaitJob runs the simulation until the job completes or the horizon
// passes. It returns an error on timeout.
func (e *Env) WaitJob(j *compute.Job, horizon sim.Duration) error {
	if j.State == compute.JobDone {
		return nil
	}
	e.waitTarget = j
	defer func() { e.waitTarget = nil }()
	e.Eng.RunUntil(e.Eng.Now().Add(horizon))
	if j.State != compute.JobDone {
		return fmt.Errorf("experiments: job %q did not finish within %v", j.Spec.Name, horizon)
	}
	return nil
}

// WaitJobs runs the simulation until n jobs have completed in total or
// the horizon passes.
func (e *Env) WaitJobs(n int, horizon sim.Duration) error {
	if e.doneCount >= n {
		return nil
	}
	e.waitCount = n
	defer func() { e.waitCount = 0 }()
	e.Eng.RunUntil(e.Eng.Now().Add(horizon))
	if e.doneCount < n {
		return fmt.Errorf("experiments: only %d of %d jobs finished within %v", e.doneCount, n, horizon)
	}
	return nil
}

// Close shuts down background tickers so the environment can be dropped.
func (e *Env) Close() {
	if e.Coord != nil {
		e.Coord.Shutdown()
	}
}

// WarmupEstimates migrates (and then evicts) a scratch file so every
// slave's migration-time estimator reflects current cluster conditions
// before the measured workload starts. This mimics a long-running
// production deployment, where DYRS "uses past migrations to estimate how
// long future migrations will take" (§III-A2) — in the paper's testbed
// the estimators carry history from preceding runs.
func (e *Env) WarmupEstimates() error {
	if e.Coord == nil {
		return nil
	}
	const warmupJob migration.JobID = 1 << 30
	name := "__estimator_warmup__"
	size := sim.Bytes(3*e.Cl.Size()) * e.FS.Config().BlockSize
	if _, err := e.FS.CreateFile(name, size); err != nil {
		return err
	}
	if err := e.Coord.Migrate(warmupJob, []string{name}, false); err != nil {
		return err
	}
	e.Eng.RunFor(60 * time.Second)
	e.Coord.Evict(warmupJob)
	return nil
}

// SlowNodeInterference starts the paper's dd-style persistent
// interference on the given node and returns a stop function (§V-C).
// Two O_DIRECT dd readers issuing large sequential requests get generous
// scheduler quanta, so each carries more fair-share weight than a task
// read stream.
func (e *Env) SlowNodeInterference(node cluster.NodeID) func() {
	inf := e.Cl.Node(node).StartInterference(2, 2.5)
	return inf.Stop
}

// Hour is a convenient long horizon for WaitJob(s).
const Hour = time.Hour
