package experiments

import (
	"strings"
	"testing"
)

// fakeExperiment builds a minimal registry entry whose result lands in
// the report's Fig10 slot (scalar fields, easy to hash).
func fakeExperiment(name string, run func(seed int64) (any, error)) Experiment {
	return Experiment{
		Name:    name,
		Summary: "test fixture",
		Run:     run,
		Render:  func(any, Selection) []string { return nil },
		Merge: func(rep *FullReport, result any) {
			rep.Fig10.NaiveSlowTail = result.(int)
		},
	}
}

// TestVerifyCatchesSeedDivergence injects an experiment that ignores
// its seed and returns a different result on every invocation — the
// exact failure mode (hidden global state) -verify exists to catch.
func TestVerifyCatchesSeedDivergence(t *testing.T) {
	t.Parallel()
	calls := 0
	divergent := fakeExperiment("divergent", func(seed int64) (any, error) {
		calls++
		return calls, nil
	})
	stable := fakeExperiment("stable", func(seed int64) (any, error) {
		return int(seed), nil
	})
	rep, err := verifyExperiments([]Experiment{stable, divergent}, 42, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("divergent experiment passed verification")
	}
	div := rep.Divergent()
	if len(div) != 1 || div[0] != "divergent" {
		t.Fatalf("Divergent() = %v", div)
	}
	for _, row := range rep.Rows {
		switch row.Name {
		case "stable":
			if !row.OK() {
				t.Errorf("stable experiment flagged: %+v", row)
			}
		case "divergent":
			if row.OK() || row.SerialHash == row.ParallelHash {
				t.Errorf("divergence not detected: %+v", row)
			}
		}
	}
}

// TestVerifyPanicIsolation: a panicking experiment must surface as an
// error from the verify pass, not crash the process.
func TestVerifyPanicIsolation(t *testing.T) {
	t.Parallel()
	boom := fakeExperiment("boom", func(seed int64) (any, error) {
		panic("experiment exploded")
	})
	ok := fakeExperiment("ok", func(seed int64) (any, error) { return 1, nil })
	_, err := verifyExperiments([]Experiment{ok, boom}, 1, 2, nil)
	if err == nil {
		t.Fatal("panicking experiment not reported")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "experiment exploded") {
		t.Errorf("error lost panic context: %v", err)
	}
}

func TestResultHashCanonical(t *testing.T) {
	t.Parallel()
	exp := fakeExperiment("x", nil)
	h1, err := ResultHash(exp, 7)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ResultHash(exp, 7)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Errorf("hash not stable/canonical: %q vs %q", h1, h2)
	}
	h3, err := ResultHash(exp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("different results hashed identically")
	}
}

// TestVerifyDeterminismFullRegistry runs the real registry through the
// verifier at a small worker count — the machine-checked form of the
// package's headline claim that identical seeds give identical results.
func TestVerifyDeterminismFullRegistry(t *testing.T) {
	t.Parallel()
	rep, err := VerifyDeterminism(11, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(Registry()) {
		t.Fatalf("verified %d of %d experiments", len(rep.Rows), len(Registry()))
	}
	if !rep.OK() {
		t.Errorf("determinism broken for: %v", rep.Divergent())
	}
}
