package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/compute"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// SWIMRun holds everything measured from one replay of the SWIM workload
// under one policy: per-job and per-mapper durations plus memory-usage
// samples (the inputs to Table I and Figs. 5-7).
type SWIMRun struct {
	Policy Policy
	// Jobs are the completed jobs in completion order.
	Jobs []*compute.Job
	// MapperDurations collects every map task's runtime in seconds.
	MapperDurations *metrics.Sample
	// MemSamples collects per-server buffered bytes sampled once a
	// second during the run (Fig. 7a for DYRS).
	MemSamples *metrics.Sample
	// PeakMemPerServer is the maximum buffered bytes observed on any
	// single server.
	PeakMemPerServer sim.Bytes
	// BytesMigrated totals migration traffic (0 for HDFS/RAM).
	BytesMigrated sim.Bytes
	// HypotheticalMemSamples is populated on the RAM run: the per-server
	// memory a hypothetical instant-migration scheme would have used
	// (Fig. 7b), derived from job submission and block read times.
	HypotheticalMemSamples *metrics.Sample
}

// MeanJobSeconds reports the average job duration — Table I's headline.
func (r *SWIMRun) MeanJobSeconds() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum float64
	for _, j := range r.Jobs {
		sum += j.Duration().Seconds()
	}
	return sum / float64(len(r.Jobs))
}

// SizeBin classifies a job by input size, following the trace's
// heavy-tailed shape: small jobs read under 64 MB, large jobs over 1 GB.
func SizeBin(input sim.Bytes) string {
	switch {
	case input < 64*sim.MB:
		return "small"
	case input <= sim.GB:
		return "medium"
	default:
		return "large"
	}
}

// SizeBins lists bin names in presentation order.
var SizeBins = []string{"small", "medium", "large"}

// MeanJobSecondsByBin reports average job duration per size bin (Fig. 5).
func (r *SWIMRun) MeanJobSecondsByBin() map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, j := range r.Jobs {
		b := SizeBin(j.InputBytes)
		sums[b] += j.Duration().Seconds()
		counts[b]++
	}
	out := map[string]float64{}
	for b, s := range sums {
		out[b] = s / float64(counts[b])
	}
	return out
}

// SWIMReport bundles the four policy runs.
type SWIMReport struct {
	Runs map[Policy]*SWIMRun
}

// TableI renders the Table I comparison.
func (rep SWIMReport) TableI() string {
	base := rep.Runs[HDFS].MeanJobSeconds()
	t := NewTable("Table I — Average job duration and speedup across the SWIM workload",
		"config", "avg duration (s)", "speedup w.r.t HDFS")
	for _, p := range AllPolicies {
		r := rep.Runs[p]
		if r == nil {
			continue
		}
		mean := r.MeanJobSeconds()
		sp := ""
		if p != HDFS {
			sp = Pct(metrics.Speedup(base, mean))
		}
		t.AddRow(string(p), fmt.Sprintf("%.1f", mean), sp)
	}
	return t.String()
}

// Fig5 renders job durations binned by input size.
func (rep SWIMReport) Fig5() string {
	base := rep.Runs[HDFS].MeanJobSecondsByBin()
	t := NewTable("Fig 5 — Job duration by input size bin (mean seconds; DYRS speedup vs HDFS)",
		"bin", "HDFS", "RAM", "Ignem", "DYRS", "DYRS speedup")
	for _, bin := range SizeBins {
		row := []any{bin}
		for _, p := range AllPolicies {
			row = append(row, fmt.Sprintf("%.1f", rep.Runs[p].MeanJobSecondsByBin()[bin]))
		}
		row = append(row, Pct(metrics.Speedup(base[bin], rep.Runs[DYRS].MeanJobSecondsByBin()[bin])))
		t.AddRow(row...)
	}
	return t.String()
}

// Fig6 renders mapper-task duration statistics.
func (rep SWIMReport) Fig6() string {
	t := NewTable("Fig 6 — Map task durations (seconds)",
		"config", "mean", "p50", "p90", "p99", "speedup vs HDFS")
	base := rep.Runs[HDFS].MapperDurations.Mean()
	for _, p := range AllPolicies {
		d := rep.Runs[p].MapperDurations
		sp := ""
		if p != HDFS {
			sp = fmt.Sprintf("%.2fx", base/d.Mean())
		}
		t.AddRow(string(p), d.Mean(), d.Percentile(50), d.Percentile(90), d.Percentile(99), sp)
	}
	return t.String()
}

// Fig7 renders the memory-footprint comparison between DYRS and the
// hypothetical instant-migration scheme.
func (rep SWIMReport) Fig7() string {
	dyrs := rep.Runs[DYRS]
	hyp := rep.Runs[RAM].HypotheticalMemSamples
	t := NewTable("Fig 7 — Per-server memory used for migrated blocks (GB)",
		"scheme", "mean", "p90", "p99", "max")
	toGB := func(v float64) string { return fmt.Sprintf("%.2f", v/float64(sim.GB)) }
	d := dyrs.MemSamples
	t.AddRow("DYRS", toGB(d.Mean()), toGB(d.Percentile(90)), toGB(d.Percentile(99)), toGB(d.Max()))
	t.AddRow("hypothetical", toGB(hyp.Mean()), toGB(hyp.Percentile(90)), toGB(hyp.Percentile(99)), toGB(hyp.Max()))
	// The paper's aggregate claim: DYRS migrates ~45% as much data as the
	// hypothetical scheme yet achieves ~72% of its speedup.
	base := rep.Runs[HDFS].MeanJobSeconds()
	ramSpeedup := metrics.Speedup(base, rep.Runs[RAM].MeanJobSeconds())
	dyrsSpeedup := metrics.Speedup(base, rep.Runs[DYRS].MeanJobSeconds())
	hypBytes := rep.Runs[RAM].BytesMigrated
	frac := 0.0
	if hypBytes > 0 {
		frac = float64(dyrs.BytesMigrated) / float64(hypBytes)
	}
	fracSpeedup := 0.0
	if ramSpeedup != 0 {
		fracSpeedup = dyrsSpeedup / ramSpeedup
	}
	return t.String() + fmt.Sprintf(
		"DYRS migrated %.0f%% of the hypothetical scheme's bytes and achieved %.0f%% of its speedup\n",
		frac*100, fracSpeedup*100)
}

// RunSWIMOnce replays the SWIM workload under one policy.
func RunSWIMOnce(policy Policy, seed int64) (*SWIMRun, error) {
	env := NewEnv(policy, DefaultOptions(seed))
	defer env.Close()
	stopInf := env.SlowNodeInterference(0)
	defer stopInf()
	if err := env.WarmupEstimates(); err != nil {
		return nil, err
	}

	jobs := workload.GenerateSWIM(rand.New(rand.NewSource(seed)), workload.DefaultSWIMConfig())
	run := &SWIMRun{
		Policy:          policy,
		MapperDurations: metrics.NewSample(),
		MemSamples:      metrics.NewSample(),
	}

	// Create all inputs up front (the trace's files pre-exist on disk).
	for _, j := range jobs {
		if err := env.CreateInput(j.FileName(), j.InputSize); err != nil {
			return nil, err
		}
	}

	// Under the RAM policy, reconstruct the hypothetical instant-
	// migration scheme's memory usage: a block occupies memory on its
	// pinned server from job submission until its read completes.
	var windows []blockWindow
	windowIdx := map[int]int{} // block id -> windows index
	if policy == RAM {
		for _, j := range jobs {
			blocks, err := env.FS.FileBlocks([]string{j.FileName()})
			if err != nil {
				return nil, err
			}
			for _, b := range blocks {
				windowIdx[int(b.ID)] = len(windows)
				windows = append(windows, blockWindow{server: b.Replicas[0], size: b.Size})
			}
		}
	}

	replayStart := env.Eng.Now()
	for _, wj := range jobs {
		wj := wj
		spec := env.Prepare(wj.Spec(policy.Migrates()))
		env.FW.SubmitAt(replayStart.Add(wj.Arrival), spec, func(j *compute.Job, err error) {
			if err == nil && policy == RAM {
				for _, id := range env.FS.SortedBlockIDs(spec.InputFiles) {
					if wi, ok := windowIdx[int(id)]; ok {
						windows[wi].start = j.Submitted
					}
				}
			}
		})
	}
	// Sample per-server migrated-memory usage once a second.
	sampler := sim.NewTicker(env.Eng, time.Second, func() {
		for _, n := range env.Cl.Nodes() {
			used := env.FS.DataNode(n.ID).MemUsed()
			run.MemSamples.Add(float64(used))
			if used > run.PeakMemPerServer {
				run.PeakMemPerServer = used
			}
		}
	})
	defer sampler.Stop()

	if err := env.WaitJobs(len(jobs), 4*Hour); err != nil {
		return nil, err
	}
	run.Jobs = append(run.Jobs, env.FW.Results()...)

	for _, j := range run.Jobs {
		for _, tr := range j.Tasks {
			run.MapperDurations.Add(tr.Duration().Seconds())
		}
		if policy == RAM {
			for _, tr := range j.Tasks {
				if wi, ok := windowIdx[int(tr.Block)]; ok {
					windows[wi].end = tr.ReadDone
				}
			}
		}
	}
	if env.Coord != nil {
		run.BytesMigrated = env.Coord.Stats().BytesMigrated
	}

	if policy == RAM {
		run.HypotheticalMemSamples = hypotheticalMemory(windows, env.Cl.Size(), replayStart, env.Eng.Now())
		var total sim.Bytes
		for _, w := range windows {
			total += w.size
		}
		run.BytesMigrated = total
	}
	return run, nil
}

// blockWindow is one block's residency interval under the hypothetical
// instant-migration scheme: pinned at job submission, released when read.
type blockWindow struct {
	server cluster.NodeID
	size   sim.Bytes
	start  sim.Time
	end    sim.Time
}

// hypotheticalMemory computes per-server memory usage over time for the
// instant-migrate / instant-evict scheme of Fig. 7b: each block occupies
// its server from job submission to read completion. Usage is sampled
// once a second per server.
func hypotheticalMemory(windows []blockWindow, servers int, from, to sim.Time) *metrics.Sample {
	out := metrics.NewSample()
	if to <= from {
		return out
	}
	seconds := int(to.Sub(from) / time.Second)
	if seconds <= 0 {
		seconds = 1
	}
	usage := make([][]float64, servers)
	for s := range usage {
		usage[s] = make([]float64, seconds)
	}
	for _, w := range windows {
		if w.end <= w.start {
			continue // never read (job failed) — instant scheme evicts at job end; skip
		}
		s0 := int(w.start.Sub(from) / time.Second)
		s1 := int(w.end.Sub(from) / time.Second)
		for s := s0; s <= s1 && s < seconds; s++ {
			if s >= 0 {
				usage[int(w.server)][s] += float64(w.size)
			}
		}
	}
	for s := range usage {
		for _, v := range usage[s] {
			out.Add(v)
		}
	}
	return out
}

// RunSWIM replays the workload under all four configurations.
func RunSWIM(seed int64) (SWIMReport, error) {
	rep := SWIMReport{Runs: map[Policy]*SWIMRun{}}
	for _, p := range AllPolicies {
		r, err := RunSWIMOnce(p, seed)
		if err != nil {
			return rep, fmt.Errorf("swim %s: %w", p, err)
		}
		rep.Runs[p] = r
	}
	return rep, nil
}

// swimExperiment registers Table I and Figs. 5-7.
func swimExperiment() Experiment {
	return Experiment{
		Name:    "swim",
		Aliases: []string{"table1", "fig5", "fig6", "fig7"},
		Summary: "Table I, Figs. 5-7: 200-job trace-based workload",
		Run:     func(seed int64) (any, error) { return RunSWIM(seed) },
		Render: func(result any, sel Selection) []string {
			r := result.(SWIMReport)
			all := sel.wantsAll("swim")
			var out []string
			if all || sel.Has("table1") {
				out = append(out, r.TableI())
			}
			if all || sel.Has("fig5") {
				out = append(out, r.Fig5())
			}
			if all || sel.Has("fig6") {
				out = append(out, r.Fig6())
			}
			if all || sel.Has("fig7") {
				out = append(out, r.Fig7())
			}
			return out
		},
		Merge: func(rep *FullReport, result any) {
			r := result.(SWIMReport)
			rep.SWIM.MeanJobSeconds = map[Policy]float64{}
			rep.SWIM.BinMeans = map[Policy]map[string]float64{}
			rep.SWIM.MapperMean = map[Policy]float64{}
			for p, run := range r.Runs {
				rep.SWIM.MeanJobSeconds[p] = run.MeanJobSeconds()
				rep.SWIM.BinMeans[p] = run.MeanJobSecondsByBin()
				rep.SWIM.MapperMean[p] = run.MapperDurations.Mean()
			}
			rep.SWIM.DYRSBytes = r.Runs[DYRS].BytesMigrated
			rep.SWIM.HypBytes = r.Runs[RAM].BytesMigrated
		},
	}
}
