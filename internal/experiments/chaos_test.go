package experiments

import (
	"fmt"
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// Chaos tests: the paper's failure-resilience claims (§III-C) exercised
// end-to-end — "when there is a failure, DYRS reverts to the default
// behavior of the file system with no migration. The only adverse effect
// is the loss of the speedup from migration."

// submitBatch submits n small jobs spaced over the run.
func submitBatch(t *testing.T, env *Env, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("chaos-%d", i)
		if err := env.CreateInput(name, sim.Bytes(1+i%4)*sim.GB); err != nil {
			t.Fatal(err)
		}
		spec := env.Prepare(workload.SortSpec(name, 4, true))
		spec.ExtraLeadTime = 5 * time.Second
		env.FW.SubmitAt(sim.Time(sim.Duration(i)*3*time.Second), spec, nil)
	}
}

func TestChaosSlaveProcessCrashes(t *testing.T) {
	env := NewEnv(DYRS, DefaultOptions(11))
	defer env.Close()
	submitBatch(t, env, 10)
	// Crash-and-restart a different slave process every 8 seconds during
	// the run. Buffers are lost; the system must keep completing jobs.
	for i := 0; i < 5; i++ {
		i := i
		env.Eng.At(sim.Time(sim.Duration(5+8*i)*time.Second), func() {
			env.Coord.RestartSlaveProcess(cluster.NodeID(i % env.Cl.Size()))
		})
	}
	if err := env.WaitJobs(10, Hour); err != nil {
		t.Fatal(err)
	}
	for _, j := range env.FW.Results() {
		if j.Duration() <= 0 {
			t.Errorf("job %s has bogus duration", j.Spec.Name)
		}
	}
	// No leaked buffers once everything evicted.
	env.Eng.RunFor(5 * time.Minute)
	if used := env.FS.TotalMemUsed(); used != 0 {
		t.Errorf("leaked %d buffered bytes after crashes", used)
	}
	for _, err := range env.FS.Fsck() {
		t.Errorf("fsck after crashes: %v", err)
	}
}

func TestChaosMasterRestartMidWorkload(t *testing.T) {
	env := NewEnv(DYRS, DefaultOptions(12))
	defer env.Close()
	submitBatch(t, env, 10)
	env.Eng.At(sim.Time(12*time.Second), func() { env.Coord.RestartMaster() })
	if err := env.WaitJobs(10, Hour); err != nil {
		t.Fatal(err)
	}
	// Jobs submitted after the fail-over still get migration service.
	if err := env.CreateInput("post-failover", 2*sim.GB); err != nil {
		t.Fatal(err)
	}
	spec := env.Prepare(workload.SortSpec("post-failover", 4, true))
	spec.ExtraLeadTime = 15 * time.Second
	j, err := env.FW.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.WaitJob(j, Hour); err != nil {
		t.Fatal(err)
	}
	mem := 0
	for _, tr := range j.Tasks {
		if tr.Source.FromMemory() {
			mem++
		}
	}
	if mem == 0 {
		t.Error("no memory reads after master fail-over: migration dead")
	}
}

func TestChaosNodeDeath(t *testing.T) {
	env := NewEnv(DYRS, DefaultOptions(13))
	defer env.Close()
	submitBatch(t, env, 8)
	env.Eng.At(sim.Time(10*time.Second), func() {
		env.Cl.KillNode(3)
		env.Coord.RestartSlaveProcess(3) // its buffers are gone with it
	})
	if err := env.WaitJobs(8, Hour); err != nil {
		t.Fatal(err)
	}
	// With 3-way replication one node's death leaves every block
	// readable; all jobs completed above. The dead node must not be
	// holding queued migration work.
	if env.Coord.Slave(3).Node().Alive() {
		t.Fatal("node 3 should be dead")
	}
}

func TestChaosComparableToFailureFree(t *testing.T) {
	// A slave crash should cost speedup, not correctness: the workload's
	// total duration with one crash stays within 2x of the failure-free
	// run (generous bound; typically it is nearly identical).
	run := func(crash bool) float64 {
		env := NewEnv(DYRS, DefaultOptions(14))
		defer env.Close()
		submitBatch(t, env, 8)
		if crash {
			env.Eng.At(sim.Time(8*time.Second), func() {
				env.Coord.RestartSlaveProcess(2)
			})
		}
		if err := env.WaitJobs(8, Hour); err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		for _, j := range env.FW.Results() {
			if j.Finished > last {
				last = j.Finished
			}
		}
		return last.Seconds()
	}
	clean := run(false)
	crashed := run(true)
	if crashed > clean*2 {
		t.Errorf("crash run %.1fs vs clean %.1fs: failure hurt more than the lost speedup", crashed, clean)
	}
}

// Property: arbitrary interleavings of slave crashes, master restarts
// and node deaths never corrupt the file system's internal state.
func TestChaosPropertyFsckAlwaysClean(t *testing.T) {
	for seed := int64(50); seed < 56; seed++ {
		seed := seed
		env := NewEnv(DYRS, DefaultOptions(seed))
		submitBatch(t, env, 6)
		rng := env.Eng.Rand()
		for i := 0; i < 6; i++ {
			at := sim.Time(sim.Duration(2+rng.Intn(30)) * time.Second)
			action := rng.Intn(3)
			node := cluster.NodeID(rng.Intn(env.Cl.Size()))
			env.Eng.At(at, func() {
				switch action {
				case 0:
					env.Coord.RestartSlaveProcess(node)
				case 1:
					env.Coord.RestartMaster()
				case 2:
					if len(env.Cl.AliveNodes()) > 3 {
						env.Cl.KillNode(node)
						env.Coord.RestartSlaveProcess(node)
					}
				}
			})
		}
		env.Eng.RunUntil(sim.Time(5 * time.Minute))
		for _, err := range env.FS.Fsck() {
			t.Errorf("seed %d: %v", seed, err)
		}
		env.Close()
	}
}
