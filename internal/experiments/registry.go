package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment is one registered unit of the evaluation: a named, seeded,
// independent simulation plus its text rendering and its slot in the
// aggregated JSON report. The registry replaces both the hand-rolled
// figure dispatch in cmd/dyrs-bench and the serial body of RunAll, and
// is what the parallel runner and the determinism verifier iterate
// over.
type Experiment struct {
	// Name is the canonical experiment name (accepted by -only).
	Name string
	// Aliases are the figure/table names this experiment covers, also
	// accepted by -only (e.g. the trace experiment answers to fig1,
	// fig2 and fig3).
	Aliases []string
	// Summary is a one-line description for listings and errors.
	Summary string
	// Run executes the experiment from a fresh seeded environment.
	// Identical seeds must give identical results — dyrs-bench -verify
	// enforces this by hashing the canonical JSON of two runs.
	Run func(seed int64) (any, error)
	// Render returns the text sections requested by the selection, in
	// presentation order. The result argument is whatever Run returned.
	Render func(result any, sel Selection) []string
	// Merge folds the result into the aggregated JSON report.
	Merge func(rep *FullReport, result any)
}

// Covers reports whether the experiment answers to the given
// (lower-cased) name.
func (e Experiment) Covers(name string) bool {
	if e.Name == name {
		return true
	}
	for _, a := range e.Aliases {
		if a == name {
			return true
		}
	}
	return false
}

// Registry returns every experiment in presentation order (the order
// figures and tables appear in the paper, then the extension studies).
// Each call builds a fresh slice, so callers may reorder it freely.
func Registry() []Experiment {
	return []Experiment{
		traceExperiment(),
		hiveExperiment(),
		swimExperiment(),
		fig8Experiment(),
		tableIIExperiment(),
		fig10Experiment(),
		fig11Experiment(),
		motivationExperiment(),
		orderExperiment(),
		hotcoldExperiment(),
		iterativeExperiment(),
		scaleExperiment(),
		scaleShardExperiment(),
		servingExperiment(),
	}
}

// Selection is the set of requested experiment/figure names. An empty
// (or nil) selection means "everything".
type Selection map[string]bool

// Empty reports whether the selection requests everything.
func (s Selection) Empty() bool { return len(s) == 0 }

// Has reports whether any of the names was requested. An empty
// selection has everything.
func (s Selection) Has(names ...string) bool {
	if len(s) == 0 {
		return true
	}
	for _, n := range names {
		if s[n] {
			return true
		}
	}
	return false
}

// wantsAll reports whether the named experiment was selected as a
// whole — either by the empty selection or by its canonical name — in
// which case Render emits every section rather than individual figures.
func (s Selection) wantsAll(name string) bool {
	return len(s) == 0 || s[name]
}

// ValidNames returns every accepted experiment name: canonical names in
// registry order, then all aliases, sorted.
func ValidNames() []string {
	var names, aliases []string
	for _, e := range Registry() {
		names = append(names, e.Name)
		aliases = append(aliases, e.Aliases...)
	}
	sort.Strings(aliases)
	return append(names, aliases...)
}

// Select parses a comma-separated -only list against the registry. It
// returns the matched experiments in registry order plus the selection
// set for Render. An empty list selects every experiment. Unknown names
// are an error listing the valid names.
func Select(only string) ([]Experiment, Selection, error) {
	reg := Registry()
	if strings.TrimSpace(only) == "" {
		return reg, nil, nil
	}
	sel := Selection{}
	var unknown []string
	for _, raw := range strings.Split(only, ",") {
		name := strings.TrimSpace(strings.ToLower(raw))
		if name == "" {
			continue
		}
		found := false
		for _, e := range reg {
			if e.Covers(name) {
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, name)
			continue
		}
		sel[name] = true
	}
	if len(unknown) > 0 {
		return nil, nil, fmt.Errorf("unknown experiment name(s) %s; valid names: %s",
			strings.Join(unknown, ", "), strings.Join(ValidNames(), " "))
	}
	if len(sel) == 0 { // e.g. -only "," — nothing actually named
		return reg, nil, nil
	}
	var picked []Experiment
	for _, e := range reg {
		for name := range sel {
			if e.Covers(name) {
				picked = append(picked, e)
				break
			}
		}
	}
	return picked, sel, nil
}
