package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dyrs/internal/runner"
)

// BenchSchema versions the BENCH.json layout so regression tooling can
// reject documents it does not understand.
const BenchSchema = "dyrs-bench/v1"

// BenchRow is the timing summary for one experiment across repetitions.
type BenchRow struct {
	Name        string  `json:"name"`
	Reps        int     `json:"reps"`
	MinSeconds  float64 `json:"min_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// BenchReport is the canonical macro-benchmark document emitted by
// `dyrs-bench -bench` and uploaded by CI as BENCH_PR<N>.json: it
// aggregates per-experiment wall-clock timings plus enough environment
// detail to judge whether two documents are comparable.
type BenchReport struct {
	Schema       string     `json:"schema"`
	Seed         int64      `json:"seed"`
	Reps         int        `json:"reps"`
	Jobs         int        `json:"jobs"`
	GoVersion    string     `json:"go_version"`
	GOOS         string     `json:"goos"`
	GOARCH       string     `json:"goarch"`
	Rows         []BenchRow `json:"rows"`
	TotalSeconds float64    `json:"total_seconds"`
}

// RunBench times every registered experiment reps times on a pool of
// the given width and summarizes the wall-clock cost per experiment.
// Results are discarded — only timing is kept — but each rep is a full
// run from a fresh seeded environment, so the numbers reflect what
// RunAllParallel actually costs. Progress, when non-nil, receives the
// runner's serialized events (rep boundaries included).
func RunBench(seed int64, reps, jobs int, progress func(runner.Event)) (*BenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	reg := Registry()
	rep := &BenchReport{
		Schema:    BenchSchema,
		Seed:      seed,
		Reps:      reps,
		Jobs:      jobs,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Rows:      make([]BenchRow, len(reg)),
	}
	for i, exp := range reg {
		rep.Rows[i] = BenchRow{Name: exp.Name, Reps: reps}
	}
	start := time.Now() //lint:walltime — wall-clock benchmark timing is the point here
	for r := 0; r < reps; r++ {
		results := runner.Run(registryJobs(reg, seed), runner.Options{Jobs: jobs, Progress: progress})
		if err := runner.FirstError(results); err != nil {
			return nil, fmt.Errorf("bench rep %d: %w", r+1, err)
		}
		for i, res := range results {
			secs := res.Elapsed.Seconds()
			row := &rep.Rows[i]
			if r == 0 || secs < row.MinSeconds {
				row.MinSeconds = secs
			}
			if r == 0 || secs > row.MaxSeconds {
				row.MaxSeconds = secs
			}
			row.MeanSeconds += secs / float64(reps)
		}
	}
	rep.TotalSeconds = time.Since(start).Seconds()
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
