package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dyrs/internal/runner"
)

// BenchSchema versions the BENCH.json layout so regression tooling can
// reject documents it does not understand. v2 added the macro rows; v3
// added the sharded-engine macro preset and its shard/worker columns.
const BenchSchema = "dyrs-bench/v3"

// BenchRow is the timing summary for one experiment across repetitions.
type BenchRow struct {
	Name        string  `json:"name"`
	Reps        int     `json:"reps"`
	MinSeconds  float64 `json:"min_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// MacroBenchRow summarizes one datacenter-scale preset run: throughput
// in simulated events per wall-clock second plus the memory cost of the
// run. PeakSysMiB is the Go runtime's OS-claimed memory after the run —
// an upper bound on the run's peak heap, reported in place of true RSS
// so the number is portable — and AllocMiB/Allocs are the run's total
// allocation volume and count.
type MacroBenchRow struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	Blocks   int    `json:"blocks,omitempty"`
	// Shards and Workers describe the sharded-engine presets: the
	// partition's logical shard count and the execution workers the run
	// used. Zero for the sequential-engine presets.
	Shards       int     `json:"shards,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	Events       uint64  `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	PeakSysMiB   float64 `json:"peak_sys_mib"`
	AllocMiB     float64 `json:"alloc_mib"`
	Allocs       uint64  `json:"allocs"`
}

// BenchReport is the canonical macro-benchmark document emitted by
// `dyrs-bench -bench` and uploaded by CI as BENCH_PR<N>.json: it
// aggregates per-experiment wall-clock timings plus enough environment
// detail to judge whether two documents are comparable.
type BenchReport struct {
	Schema       string          `json:"schema"`
	Seed         int64           `json:"seed"`
	Reps         int             `json:"reps"`
	Jobs         int             `json:"jobs"`
	GoVersion    string          `json:"go_version"`
	GOOS         string          `json:"goos"`
	GOARCH       string          `json:"goarch"`
	Rows         []BenchRow      `json:"rows"`
	Macro        []MacroBenchRow `json:"macro,omitempty"`
	TotalSeconds float64         `json:"total_seconds"`
}

// RunBench times every registered experiment reps times on a pool of
// the given width and summarizes the wall-clock cost per experiment.
// Results are discarded — only timing is kept — but each rep is a full
// run from a fresh seeded environment, so the numbers reflect what
// RunAllParallel actually costs. With macro set it then runs the
// datacenter-scale presets once each (serially, so the memory numbers
// are attributable) and appends their throughput and footprint as Macro
// rows; shards sets the execution-worker count of the sharded-engine
// preset in that pass (<=0: GOMAXPROCS). Progress, when non-nil,
// receives the runner's serialized events (rep boundaries included).
func RunBench(seed int64, reps, jobs, shards int, macro bool, progress func(runner.Event)) (*BenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	reg := Registry()
	rep := &BenchReport{
		Schema:    BenchSchema,
		Seed:      seed,
		Reps:      reps,
		Jobs:      jobs,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Rows:      make([]BenchRow, len(reg)),
	}
	for i, exp := range reg {
		rep.Rows[i] = BenchRow{Name: exp.Name, Reps: reps}
	}
	start := time.Now() //lint:walltime — wall-clock benchmark timing is the point here
	for r := 0; r < reps; r++ {
		results := runner.Run(registryJobs(reg, seed), runner.Options{Jobs: jobs, Progress: progress})
		if err := runner.FirstError(results); err != nil {
			return nil, fmt.Errorf("bench rep %d: %w", r+1, err)
		}
		for i, res := range results {
			secs := res.Elapsed.Seconds()
			row := &rep.Rows[i]
			if r == 0 || secs < row.MinSeconds {
				row.MinSeconds = secs
			}
			if r == 0 || secs > row.MaxSeconds {
				row.MaxSeconds = secs
			}
			row.MeanSeconds += secs / float64(reps)
		}
	}
	if macro {
		for _, opt := range macroScenarios(seed) {
			row, err := macroBench(opt)
			if err != nil {
				return nil, fmt.Errorf("macro bench %s: %w", opt.Scenario, err)
			}
			rep.Macro = append(rep.Macro, row)
		}
		sopt := ScaleShard1kOptions(seed)
		sopt.Workers = shards
		row, err := macroBenchShard(sopt)
		if err != nil {
			return nil, fmt.Errorf("macro bench %s: %w", sopt.Scenario, err)
		}
		rep.Macro = append(rep.Macro, row)
	}
	rep.TotalSeconds = time.Since(start).Seconds()
	return rep, nil
}

// macroScenarios lists the datacenter-scale presets RunBench's macro
// pass times. scale10k is deliberately absent: at ~10^8 events per run
// it belongs in nightly or manual benchmarking, not every CI bench job.
func macroScenarios(seed int64) []ScaleOptions {
	return []ScaleOptions{Scale100Options(seed), Scale1kOptions(seed)}
}

// macroMeasure times one macro preset run and fills in the wall-clock
// and memory columns around the identity fields run returns. The
// pre-run GC puts the heap in a known state so the allocation deltas
// belong to this run alone.
func macroMeasure(run func() (MacroBenchRow, error)) (MacroBenchRow, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //lint:walltime — wall-clock benchmark timing is the point here
	out, err := run()
	secs := time.Since(start).Seconds()
	if err != nil {
		return MacroBenchRow{}, err
	}
	runtime.ReadMemStats(&after)
	out.Seconds = secs
	out.PeakSysMiB = float64(after.Sys) / (1 << 20)
	out.AllocMiB = float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	out.Allocs = after.Mallocs - before.Mallocs
	if secs > 0 {
		out.EventsPerSec = float64(out.Events) / secs
	}
	return out, nil
}

// macroBench runs one sequential-engine scale preset and measures its
// wall-clock cost and memory footprint.
func macroBench(opt ScaleOptions) (MacroBenchRow, error) {
	return macroMeasure(func() (MacroBenchRow, error) {
		row, err := RunScale(opt)
		if err != nil {
			return MacroBenchRow{}, err
		}
		return MacroBenchRow{
			Scenario: row.Scenario,
			Nodes:    row.Nodes,
			Blocks:   row.Blocks,
			Events:   row.EventsFired,
		}, nil
	})
}

// macroBenchShard runs one sharded-engine preset, recording the
// partition's shard count and the worker count the run executed with
// (the knob dyrs-bench -shards sets).
func macroBenchShard(opt ScaleShardOptions) (MacroBenchRow, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return macroMeasure(func() (MacroBenchRow, error) {
		row, err := RunScaleShard(opt)
		if err != nil {
			return MacroBenchRow{}, err
		}
		return MacroBenchRow{
			Scenario: row.Scenario,
			Nodes:    row.Nodes,
			Shards:   row.Shards,
			Workers:  workers,
			Events:   row.EventsFired,
		}, nil
	})
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
