package experiments

import (
	"fmt"
	"strings"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/compute"
	"dyrs/internal/dfs"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// sortReducers is the reducer count for Sort runs (2 per worker).
const sortReducers = 14

// runOneSort creates the input, optionally applies interference before
// warmup, runs one Sort job, and returns the job plus the environment
// (callers inspect counters before Close).
func runOneSort(policy Policy, seed int64, size sim.Bytes, extraLead sim.Duration,
	applyInterference func(e *Env) func()) (*compute.Job, *Env, func(), error) {
	env := NewEnv(policy, DefaultOptions(seed))
	stop := func() {}
	if applyInterference != nil {
		stop = applyInterference(env)
	}
	if err := env.WarmupEstimates(); err != nil {
		env.Close()
		return nil, nil, nil, err
	}
	if err := env.CreateInput("sort-input", size); err != nil {
		env.Close()
		return nil, nil, nil, err
	}
	spec := env.Prepare(workload.SortSpec("sort-input", sortReducers, policy.Migrates()))
	spec.ExtraLeadTime = extraLead
	j, err := env.FW.Submit(spec)
	if err != nil {
		env.Close()
		return nil, nil, nil, err
	}
	if err := env.WaitJob(j, Hour); err != nil {
		env.Close()
		return nil, nil, nil, err
	}
	return j, env, stop, nil
}

// Fig8Report holds per-DataNode read counts for the replica-selection
// comparison (Fig. 8): how each policy distributes block reads when the
// cluster is homogeneous vs when one node is slow.
type Fig8Report struct {
	// Reads[setup][policy] is the per-node count of disk reads served
	// during the sort (migration reads plus task disk reads).
	Reads map[string]map[Policy][]int
	// SlowNode is the index of the handicapped node in the "slow-node"
	// setup.
	SlowNode int
}

// Fig8Setups lists the two cluster setups.
var Fig8Setups = []string{"homogeneous", "slow-node"}

// Fig8Policies lists the compared policies in presentation order.
var Fig8Policies = []Policy{HDFS, Ignem, DYRS}

// RunFig8 measures the distribution of reads across DataNodes for a 30 GB
// Sort under each policy, with and without a handicapped node.
func RunFig8(seed int64) (Fig8Report, error) {
	rep := Fig8Report{Reads: map[string]map[Policy][]int{}, SlowNode: 0}
	for _, setup := range Fig8Setups {
		rep.Reads[setup] = map[Policy][]int{}
		for _, p := range Fig8Policies {
			env := NewEnv(p, DefaultOptions(seed))
			stop := func() {}
			if setup == "slow-node" {
				stop = env.SlowNodeInterference(cluster.NodeID(rep.SlowNode))
			}
			if err := env.WarmupEstimates(); err != nil {
				env.Close()
				return rep, err
			}
			// Snapshot read counters after warmup so only the sort's
			// reads (tasks + migrations) are counted.
			baseline := env.FS.ReadCounts()
			if err := env.CreateInput("sort-input", 30*sim.GB); err != nil {
				env.Close()
				return rep, err
			}
			spec := env.Prepare(workload.SortSpec("sort-input", sortReducers, p.Migrates()))
			spec.ExtraLeadTime = 10 * time.Second
			j, err := env.FW.Submit(spec)
			if err == nil {
				err = env.WaitJob(j, Hour)
			}
			if err != nil {
				env.Close()
				return rep, fmt.Errorf("fig8 %s/%s: %w", setup, p, err)
			}
			counts := env.FS.ReadCounts()
			for i := range counts {
				counts[i] -= baseline[i]
			}
			rep.Reads[setup][p] = counts
			stop()
			env.Close()
		}
	}
	return rep, nil
}

// String renders the Fig. 8 distributions.
func (r Fig8Report) String() string {
	var b strings.Builder
	for _, setup := range Fig8Setups {
		t := NewTable(fmt.Sprintf("Fig 8 — Reads per DataNode, %s cluster (node %d slow in slow-node setup)",
			setup, r.SlowNode), "policy", "per-node disk reads", "slow-node share")
		for _, p := range Fig8Policies {
			counts := r.Reads[setup][p]
			total := 0
			for _, c := range counts {
				total += c
			}
			share := 0.0
			if total > 0 {
				share = float64(counts[r.SlowNode]) / float64(total)
			}
			t.AddRow(string(p), fmt.Sprintf("%v", counts), fmt.Sprintf("%.0f%%", share*100))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TableIIRow is one interference pattern's sort runtime (Table II), plus
// the migration-time-estimate trajectories behind the matching Fig. 9
// panel.
type TableIIRow struct {
	Pattern string
	Figure  string
	Runtime float64 // seconds
	// EstimateNode1/2 are the per-heartbeat estimates (seconds to
	// migrate one block) for the two interfered nodes.
	EstimateNode1 []metrics.TimePoint
	EstimateNode2 []metrics.TimePoint
}

// TableIIReport bundles all five patterns.
type TableIIReport struct {
	Rows []TableIIRow
	// SortGB is the sort input size used.
	SortGB float64
}

// RunTableII runs the Sort job under each of Table II's interference
// patterns with DYRS, recording runtimes and estimate trajectories.
func RunTableII(seed int64) (TableIIReport, error) {
	rep := TableIIReport{SortGB: 30}
	for _, pat := range workload.TableIIPatterns(1, 2) {
		pat := pat
		j, env, stop, err := runOneSort(DYRS, seed, 30*sim.GB, 10*time.Second,
			func(e *Env) func() { return pat.Start(e.Cl) })
		if err != nil {
			return rep, fmt.Errorf("tableII %q: %w", pat.Name, err)
		}
		row := TableIIRow{
			Pattern: pat.Name,
			Figure:  pat.Figure,
			Runtime: j.Duration().Seconds(),
		}
		row.EstimateNode1 = env.Coord.EstimateSeries(1).Downsample(40)
		row.EstimateNode2 = env.Coord.EstimateSeries(2).Downsample(40)
		rep.Rows = append(rep.Rows, row)
		stop()
		env.Close()
	}
	return rep, nil
}

// String renders Table II.
func (r TableIIReport) String() string {
	t := NewTable(fmt.Sprintf("Table II — DYRS %vGB sort runtime under interference patterns", r.SortGB),
		"interference pattern", "figure", "runtime (s)")
	for _, row := range r.Rows {
		t.AddRow(row.Pattern, row.Figure, fmt.Sprintf("%.0f", row.Runtime))
	}
	return t.String()
}

// Fig9String renders the estimate trajectories as compact series.
func (r TableIIReport) Fig9String() string {
	var b strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "Fig %s — %s\n", row.Figure, row.Pattern)
		writeSeries := func(name string, pts []metrics.TimePoint) {
			fmt.Fprintf(&b, "  %s est(s):", name)
			for _, p := range pts {
				fmt.Fprintf(&b, " %.1f", p.V)
			}
			b.WriteByte('\n')
		}
		writeSeries("node1", row.EstimateNode1)
		writeSeries("node2", row.EstimateNode2)
	}
	return b.String()
}

// MigEvent is one migration completion (Fig. 10 timeline).
type MigEvent struct {
	Block dfs.BlockID
	Node  cluster.NodeID
	At    sim.Time
}

// Fig10Report compares the end-of-migration timelines of DYRS and the
// naive balancer for a 10 GB sort with one slow node.
type Fig10Report struct {
	SlowNode cluster.NodeID
	// Last30[policy] holds the last 30 migration completions, earliest
	// first.
	Last30 map[Policy][]MigEvent
}

// RunFig10 records migration completion timelines under DYRS and Naive.
func RunFig10(seed int64) (Fig10Report, error) {
	rep := Fig10Report{SlowNode: 0, Last30: map[Policy][]MigEvent{}}
	for _, p := range []Policy{Naive, DYRS} {
		var events []MigEvent
		env := NewEnv(p, DefaultOptions(seed))
		stop := env.SlowNodeInterference(rep.SlowNode)
		if err := env.WarmupEstimates(); err != nil {
			env.Close()
			return rep, err
		}
		env.Coord.OnMigrated(func(b dfs.BlockID, n cluster.NodeID, at sim.Time) {
			events = append(events, MigEvent{Block: b, Node: n, At: at})
		})
		if err := env.CreateInput("sort-input", 10*sim.GB); err != nil {
			env.Close()
			return rep, err
		}
		spec := env.Prepare(workload.SortSpec("sort-input", sortReducers, true))
		// Enough lead to migrate the full input, as in the paper's
		// straggler study: the interesting part is the tail of the
		// migration, not the job itself.
		spec.ExtraLeadTime = 2 * time.Minute
		j, err := env.FW.Submit(spec)
		if err != nil {
			env.Close()
			return rep, err
		}
		if err := env.WaitJob(j, Hour); err != nil {
			env.Close()
			return rep, err
		}
		if len(events) > 30 {
			events = events[len(events)-30:]
		}
		rep.Last30[p] = events
		stop()
		env.Close()
	}
	return rep, nil
}

// SlowTail reports, for a policy, how many of the last n migrations ran
// on the slow node and the gap between the last fast-node completion and
// the overall last completion (the straggler overhang).
func (r Fig10Report) SlowTail(p Policy, n int) (slowCount int, overhangSeconds float64) {
	events := r.Last30[p]
	if len(events) == 0 {
		return 0, 0
	}
	if n > len(events) {
		n = len(events)
	}
	tail := events[len(events)-n:]
	last := tail[len(tail)-1].At
	var lastFast sim.Time
	for _, ev := range tail {
		if ev.Node == r.SlowNode {
			slowCount++
		} else if ev.At > lastFast {
			lastFast = ev.At
		}
	}
	return slowCount, last.Sub(lastFast).Seconds()
}

// String renders the Fig. 10 comparison.
func (r Fig10Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 — Last 30 migration completions (slow node = %v)\n", r.SlowNode)
	for _, p := range []Policy{Naive, DYRS} {
		events := r.Last30[p]
		if len(events) == 0 {
			continue
		}
		end := events[len(events)-1].At
		fmt.Fprintf(&b, "%s:", p)
		for _, ev := range events {
			mark := ""
			if ev.Node == r.SlowNode {
				mark = "*"
			}
			fmt.Fprintf(&b, " %v%s@%.1fs", ev.Node, mark, end.Sub(ev.At).Seconds())
		}
		slow, overhang := r.SlowTail(p, 10)
		fmt.Fprintf(&b, "\n  (slow-node completions in last 10: %d; straggler overhang %.1fs)\n", slow, overhang)
	}
	return b.String()
}

// Fig11Row is one (input size, extra lead-time) cell of the Fig. 11
// sweep, for HDFS and DYRS.
type Fig11Row struct {
	SizeGB    float64
	ExtraLead float64 // seconds
	// MapSeconds and TotalSeconds per policy; Total includes lead-time.
	MapSeconds   map[Policy]float64
	TotalSeconds map[Policy]float64
}

// Fig11Report is the full sweep.
type Fig11Report struct {
	Rows []Fig11Row
}

// RunFig11 sweeps sort input sizes and artificial lead-times (§V-F4).
func RunFig11(seed int64) (Fig11Report, error) {
	var rep Fig11Report
	sizes := []sim.Bytes{2 * sim.GB, 5 * sim.GB, 10 * sim.GB, 20 * sim.GB}
	leads := []sim.Duration{0, 10 * time.Second, 20 * time.Second, 40 * time.Second}
	for _, size := range sizes {
		for _, lead := range leads {
			row := Fig11Row{
				SizeGB:       float64(size) / float64(sim.GB),
				ExtraLead:    lead.Seconds(),
				MapSeconds:   map[Policy]float64{},
				TotalSeconds: map[Policy]float64{},
			}
			for _, p := range []Policy{HDFS, DYRS} {
				j, env, stop, err := runOneSort(p, seed, size, lead, func(e *Env) func() {
					return e.SlowNodeInterference(0)
				})
				if err != nil {
					return rep, fmt.Errorf("fig11 %vGB/%v/%s: %w", row.SizeGB, lead, p, err)
				}
				row.MapSeconds[p] = j.MapPhase().Seconds()
				row.TotalSeconds[p] = j.Duration().Seconds()
				stop()
				env.Close()
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// String renders the Fig. 11 sweep.
func (r Fig11Report) String() string {
	t := NewTable("Fig 11 — Sort: map-phase and end-to-end duration vs input size and inserted lead-time",
		"size", "extra lead", "map HDFS", "map DYRS", "map speedup", "e2e HDFS", "e2e DYRS")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%.0fGB", row.SizeGB),
			fmt.Sprintf("%.0fs", row.ExtraLead),
			fmt.Sprintf("%.1f", row.MapSeconds[HDFS]),
			fmt.Sprintf("%.1f", row.MapSeconds[DYRS]),
			Pct(metrics.Speedup(row.MapSeconds[HDFS], row.MapSeconds[DYRS])),
			fmt.Sprintf("%.1f", row.TotalSeconds[HDFS]),
			fmt.Sprintf("%.1f", row.TotalSeconds[DYRS]),
		)
	}
	return t.String()
}

// fig8Experiment registers the per-DataNode read distribution study.
func fig8Experiment() Experiment {
	return Experiment{
		Name:    "fig8",
		Summary: "Fig. 8: per-DataNode read distribution, homogeneous vs slow-node",
		Run:     func(seed int64) (any, error) { return RunFig8(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(Fig8Report).String()}
		},
		Merge: func(rep *FullReport, result any) {
			r := result.(Fig8Report)
			rep.Fig8.SlowNode = r.SlowNode
			rep.Fig8.Reads = r.Reads
		},
	}
}

// tableIIExperiment registers the interference patterns (Table II, Fig. 9).
func tableIIExperiment() Experiment {
	return Experiment{
		Name:    "table2",
		Aliases: []string{"fig9"},
		Summary: "Table II, Fig. 9: sort runtime and estimates under interference",
		Run:     func(seed int64) (any, error) { return RunTableII(seed) },
		Render: func(result any, sel Selection) []string {
			r := result.(TableIIReport)
			all := sel.wantsAll("table2")
			var out []string
			if all || sel.Has("table2") {
				out = append(out, r.String())
			}
			if all || sel.Has("fig9") {
				out = append(out, r.Fig9String())
			}
			return out
		},
		Merge: func(rep *FullReport, result any) {
			for _, r := range result.(TableIIReport).Rows {
				rep.TableII = append(rep.TableII, TableIIRowJSON{
					Pattern: r.Pattern, Figure: r.Figure, Runtime: r.Runtime,
					EstNode1: r.EstimateNode1, EstNode2: r.EstimateNode2,
				})
			}
		},
	}
}

// fig10Experiment registers the end-of-migration straggler timelines.
func fig10Experiment() Experiment {
	return Experiment{
		Name:    "fig10",
		Summary: "Fig. 10: end-of-migration straggler timelines, DYRS vs naive",
		Run:     func(seed int64) (any, error) { return RunFig10(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(Fig10Report).String()}
		},
		Merge: func(rep *FullReport, result any) {
			r := result.(Fig10Report)
			rep.Fig10.NaiveSlowTail, rep.Fig10.NaiveOverhangSec = r.SlowTail(Naive, 10)
			rep.Fig10.DYRSSlowTail, rep.Fig10.DYRSOverhangSec = r.SlowTail(DYRS, 10)
		},
	}
}

// fig11Experiment registers the size x lead-time sort sweep.
func fig11Experiment() Experiment {
	return Experiment{
		Name:    "fig11",
		Summary: "Fig. 11: sort sweep over input size and inserted lead-time",
		Run:     func(seed int64) (any, error) { return RunFig11(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(Fig11Report).String()}
		},
		Merge: func(rep *FullReport, result any) {
			for _, r := range result.(Fig11Report).Rows {
				rep.Fig11 = append(rep.Fig11, Fig11RowJSON{
					SizeGB: r.SizeGB, ExtraLead: r.ExtraLead,
					Map: r.MapSeconds, Total: r.TotalSeconds,
				})
			}
		},
	}
}
