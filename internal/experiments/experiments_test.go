package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dyrs/internal/metrics"
	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// These are integration tests of whole experiments: they assert the
// paper's qualitative claims (who wins, roughly by how much) with
// tolerant bounds, not exact numbers.

func TestEnvPolicies(t *testing.T) {
	t.Parallel()
	for _, p := range []Policy{HDFS, RAM, Ignem, DYRS, Naive} {
		env := NewEnv(p, DefaultOptions(1))
		if p.Migrates() && env.Coord == nil {
			t.Errorf("%s: no coordinator", p)
		}
		if !p.Migrates() && env.Coord != nil {
			t.Errorf("%s: unexpected coordinator", p)
		}
		env.Close()
	}
}

func TestCreateInputPinsUnderRAM(t *testing.T) {
	t.Parallel()
	env := NewEnv(RAM, DefaultOptions(1))
	defer env.Close()
	if err := env.CreateInput("x", 512*sim.MB); err != nil {
		t.Fatal(err)
	}
	if env.FS.MemReplicaCount() != 2 {
		t.Errorf("RAM policy did not pin inputs: %d", env.FS.MemReplicaCount())
	}
	env2 := NewEnv(HDFS, DefaultOptions(1))
	defer env2.Close()
	env2.CreateInput("x", 512*sim.MB)
	if env2.FS.MemReplicaCount() != 0 {
		t.Error("HDFS policy pinned inputs")
	}
}

func TestPrepareSetsMigrateFlag(t *testing.T) {
	t.Parallel()
	spec := workload.SortSpec("f", 4, false)
	env := NewEnv(DYRS, DefaultOptions(1))
	defer env.Close()
	if !env.Prepare(spec).Migrate {
		t.Error("DYRS env should migrate")
	}
	env2 := NewEnv(RAM, DefaultOptions(1))
	defer env2.Close()
	spec.Migrate = true
	if env2.Prepare(spec).Migrate {
		t.Error("RAM env should not migrate")
	}
}

func TestWarmupEstimates(t *testing.T) {
	t.Parallel()
	env := NewEnv(DYRS, DefaultOptions(1))
	defer env.Close()
	stop := env.SlowNodeInterference(0)
	defer stop()
	if err := env.WarmupEstimates(); err != nil {
		t.Fatal(err)
	}
	std := env.FS.Config().BlockSize
	slow := env.Coord.Slave(0).EstimateBlockSeconds(std)
	fast := env.Coord.Slave(3).EstimateBlockSeconds(std)
	if slow < 2*fast {
		t.Errorf("warmup did not teach the slow node: slow=%.1fs fast=%.1fs", slow, fast)
	}
	// Warmup must leave no residue.
	if env.FS.TotalMemUsed() != 0 {
		t.Errorf("warmup left %d bytes in memory", env.FS.TotalMemUsed())
	}
	// HDFS env: warmup is a no-op.
	env2 := NewEnv(HDFS, DefaultOptions(1))
	defer env2.Close()
	if err := env2.WarmupEstimates(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitJobTimeout(t *testing.T) {
	t.Parallel()
	env := NewEnv(HDFS, DefaultOptions(1))
	defer env.Close()
	env.CreateInput("in", sim.GB)
	j, err := env.FW.Submit(env.Prepare(workload.SortSpec("in", 4, false)))
	if err != nil {
		t.Fatal(err)
	}
	if err := env.WaitJob(j, 1*time.Millisecond); err == nil {
		t.Error("expected timeout error")
	}
	if err := env.WaitJob(j, Hour); err != nil {
		t.Fatal(err)
	}
	// Waiting on a done job returns immediately.
	if err := env.WaitJob(j, 0); err != nil {
		t.Error(err)
	}
}

func TestHiveSingleQueryShape(t *testing.T) {
	t.Parallel()
	q := workload.TPCDSQueries()[1] // 3.5GB: small enough to fully migrate
	durs := map[Policy]float64{}
	for _, p := range AllPolicies {
		d, err := RunHiveQuery(q, p, 7)
		if err != nil {
			t.Fatal(err)
		}
		durs[p] = d
	}
	if durs[DYRS] >= durs[HDFS] {
		t.Errorf("DYRS (%.1fs) did not beat HDFS (%.1fs)", durs[DYRS], durs[HDFS])
	}
	if sp := metrics.Speedup(durs[HDFS], durs[DYRS]); sp < 0.2 {
		t.Errorf("DYRS speedup %.2f below expectation for a small query", sp)
	}
	if durs[RAM] >= durs[HDFS] {
		t.Errorf("RAM (%.1fs) did not beat HDFS (%.1fs)", durs[RAM], durs[HDFS])
	}
}

func TestHiveReportRendering(t *testing.T) {
	t.Parallel()
	rep := HiveReport{Rows: []HiveRow{{
		Query: "q1", InputGB: 2,
		Durations: map[Policy]float64{HDFS: 100, RAM: 50, Ignem: 110, DYRS: 64},
	}}}
	if s := rep.Rows[0].Speedup(DYRS); s != 0.36 {
		t.Errorf("speedup = %v", s)
	}
	if n := rep.Rows[0].Normalized(Ignem); n != 1.1 {
		t.Errorf("normalized = %v", n)
	}
	if m := rep.MeanSpeedup(DYRS); m != 0.36 {
		t.Errorf("mean = %v", m)
	}
	max, q := rep.MaxSpeedup(RAM)
	if max != 0.5 || q != "q1" {
		t.Errorf("max = %v %v", max, q)
	}
	out := rep.String()
	for _, want := range []string{"q1", "+36%", "1.10x"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSWIMShape(t *testing.T) {
	t.Parallel()
	rep, err := RunSWIM(7)
	if err != nil {
		t.Fatal(err)
	}
	hdfs := rep.Runs[HDFS].MeanJobSeconds()
	ram := rep.Runs[RAM].MeanJobSeconds()
	dyrs := rep.Runs[DYRS].MeanJobSeconds()
	ignem := rep.Runs[Ignem].MeanJobSeconds()
	// Table I ordering: RAM <= DYRS < HDFS < Ignem.
	if !(ram <= dyrs && dyrs < hdfs && hdfs < ignem) {
		t.Errorf("Table I ordering violated: RAM=%.1f DYRS=%.1f HDFS=%.1f Ignem=%.1f",
			ram, dyrs, hdfs, ignem)
	}
	// DYRS speedup in the paper's ballpark (33%): accept 10-50%.
	if sp := metrics.Speedup(hdfs, dyrs); sp < 0.10 || sp > 0.50 {
		t.Errorf("DYRS SWIM speedup %.2f out of band", sp)
	}
	// Ignem is a large slowdown (paper: -111%).
	if sp := metrics.Speedup(hdfs, ignem); sp > -0.3 {
		t.Errorf("Ignem slowdown %.2f too mild", sp)
	}
	// Fig 6: mappers substantially faster under DYRS (paper: 1.8x).
	mh := rep.Runs[HDFS].MapperDurations.Mean()
	md := rep.Runs[DYRS].MapperDurations.Mean()
	if mh/md < 1.3 {
		t.Errorf("mapper speedup %.2fx below band", mh/md)
	}
	// Fig 7: DYRS uses less memory than the hypothetical scheme.
	if rep.Runs[DYRS].BytesMigrated >= rep.Runs[RAM].BytesMigrated {
		t.Errorf("DYRS migrated more bytes (%d) than the hypothetical scheme (%d)",
			rep.Runs[DYRS].BytesMigrated, rep.Runs[RAM].BytesMigrated)
	}
	if rep.Runs[RAM].HypotheticalMemSamples.Len() == 0 {
		t.Error("hypothetical memory reconstruction empty")
	}
	// All 200 jobs completed in every run.
	for p, r := range rep.Runs {
		if len(r.Jobs) != 200 {
			t.Errorf("%s finished %d of 200 jobs", p, len(r.Jobs))
		}
	}
	// Renderings include the headline sections.
	for _, s := range []string{rep.TableI(), rep.Fig5(), rep.Fig6(), rep.Fig7()} {
		if len(s) == 0 {
			t.Error("empty rendering")
		}
	}
}

func TestSizeBin(t *testing.T) {
	t.Parallel()
	cases := map[sim.Bytes]string{
		10 * sim.MB: "small",
		63 * sim.MB: "small",
		64 * sim.MB: "medium",
		sim.GB:      "medium",
		2 * sim.GB:  "large",
		24 * sim.GB: "large",
	}
	for in, want := range cases {
		if got := SizeBin(in); got != want {
			t.Errorf("SizeBin(%d) = %s, want %s", in, got, want)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	t.Parallel()
	rep, err := RunFig8(7)
	if err != nil {
		t.Fatal(err)
	}
	share := func(setup string, p Policy) float64 {
		counts := rep.Reads[setup][p]
		total := 0
		for _, c := range counts {
			total += c
		}
		return float64(counts[rep.SlowNode]) / float64(total)
	}
	// With a slow node, DYRS avoids it far more than Ignem does.
	if share("slow-node", DYRS) >= share("slow-node", Ignem)*0.8 {
		t.Errorf("DYRS slow share %.2f not clearly below Ignem %.2f",
			share("slow-node", DYRS), share("slow-node", Ignem))
	}
	// Homogeneous: DYRS spreads about evenly (share within 2x of 1/7).
	if s := share("homogeneous", DYRS); s < 0.05 || s > 0.30 {
		t.Errorf("homogeneous DYRS slow-node share %.2f not balanced", s)
	}
	if out := rep.String(); !strings.Contains(out, "Fig 8") {
		t.Error("rendering broken")
	}
}

func TestTableIIShape(t *testing.T) {
	t.Parallel()
	rep, err := RunTableII(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	byFig := map[string]float64{}
	for _, r := range rep.Rows {
		byFig[r.Figure] = r.Runtime
		if len(r.EstimateNode1) == 0 || len(r.EstimateNode2) == 0 {
			t.Errorf("%s: missing estimate series", r.Figure)
		}
	}
	// Same total interference => similar runtime: 9b vs 9c within 10%.
	if diff := byFig["9b"] / byFig["9c"]; diff < 0.9 || diff > 1.1 {
		t.Errorf("9b/9c runtimes differ: %.1f vs %.1f", byFig["9b"], byFig["9c"])
	}
	// Less interference (9b: active 50%% of the time) is not slower than
	// persistent interference (9a).
	if byFig["9b"] > byFig["9a"]*1.05 {
		t.Errorf("9b (%.1f) slower than 9a (%.1f)", byFig["9b"], byFig["9a"])
	}
	if out := rep.String(); !strings.Contains(out, "Table II") {
		t.Error("rendering broken")
	}
	if out := rep.Fig9String(); !strings.Contains(out, "Fig 9a") {
		t.Error("fig9 rendering broken")
	}
}

func TestFig9EstimateTracksInterference(t *testing.T) {
	t.Parallel()
	rep, err := RunTableII(7)
	if err != nil {
		t.Fatal(err)
	}
	// Persistent pattern (9a): node1's estimate must sit well above
	// node2's on average.
	for _, r := range rep.Rows {
		if r.Figure != "9a" {
			continue
		}
		mean := func(pts []metrics.TimePoint) float64 {
			var s float64
			for _, p := range pts {
				s += p.V
			}
			return s / float64(len(pts))
		}
		m1, m2 := mean(r.EstimateNode1), mean(r.EstimateNode2)
		if m1 < 1.5*m2 {
			t.Errorf("9a: node1 estimate %.1fs not clearly above node2 %.1fs", m1, m2)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	t.Parallel()
	rep, err := RunFig10(7)
	if err != nil {
		t.Fatal(err)
	}
	slowNaive, overhangNaive := rep.SlowTail(Naive, 10)
	slowDYRS, overhangDYRS := rep.SlowTail(DYRS, 10)
	if overhangDYRS >= overhangNaive {
		t.Errorf("DYRS overhang %.1fs not below naive %.1fs", overhangDYRS, overhangNaive)
	}
	if slowDYRS > slowNaive {
		t.Errorf("DYRS used the slow node more (%d) than naive (%d) at the tail", slowDYRS, slowNaive)
	}
	if out := rep.String(); !strings.Contains(out, "Fig 10") {
		t.Error("rendering broken")
	}
}

func TestFig11Shape(t *testing.T) {
	t.Parallel()
	rep, err := RunFig11(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 16 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// At the largest lead, small sorts see bigger map-phase speedup than
	// the largest sorts at zero lead (Fig. 11a's shrinking-speedup trend,
	// checked loosely across the sweep corners).
	var small40, large0 float64
	for _, r := range rep.Rows {
		sp := metrics.Speedup(r.MapSeconds[HDFS], r.MapSeconds[DYRS])
		if r.SizeGB == 2 && r.ExtraLead == 40 {
			small40 = sp
		}
		if r.SizeGB == 20 && r.ExtraLead == 0 {
			large0 = sp
		}
	}
	if small40 <= large0 {
		t.Errorf("speedup trend inverted: 2GB@40s=%.2f vs 20GB@0s=%.2f", small40, large0)
	}
	// Fig 11b: for the smallest sort, inserting 40s of lead increases
	// end-to-end duration relative to 10s of lead (short jobs cannot
	// amortize it).
	var e2e10, e2e40 float64
	for _, r := range rep.Rows {
		if r.SizeGB == 2 && r.ExtraLead == 10 {
			e2e10 = r.TotalSeconds[DYRS]
		}
		if r.SizeGB == 2 && r.ExtraLead == 40 {
			e2e40 = r.TotalSeconds[DYRS]
		}
	}
	if e2e40 <= e2e10 {
		t.Errorf("extra lead should hurt short jobs: e2e@10s=%.1f e2e@40s=%.1f", e2e10, e2e40)
	}
	if out := rep.String(); !strings.Contains(out, "Fig 11") {
		t.Error("rendering broken")
	}
}

func TestTraceReport(t *testing.T) {
	t.Parallel()
	rep := RunTrace(3)
	for _, s := range []string{rep.Fig1(), rep.Fig2(), rep.Fig3()} {
		if len(s) < 20 {
			t.Errorf("rendering too short: %q", s)
		}
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tb := NewTable("Title", "a", "bb")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer", "v")
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "1.50") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestPct(t *testing.T) {
	t.Parallel()
	if Pct(0.33) != "+33%" {
		t.Errorf("Pct(0.33) = %s", Pct(0.33))
	}
	if Pct(-1.11) != "-111%" {
		t.Errorf("Pct(-1.11) = %s", Pct(-1.11))
	}
}

func TestOrderPolicies(t *testing.T) {
	t.Parallel()
	rep, err := RunOrderPolicies(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	byOrder := map[string]OrderRow{}
	for _, r := range rep.Rows {
		byOrder[r.Order.String()] = r
	}
	// SJF must improve small-job latency over FIFO: small jobs only need
	// a block or two migrated, so ordering them first rescues them from
	// behind the large jobs' backlog.
	if byOrder["SJF"].SmallMean >= byOrder["FIFO"].SmallMean {
		t.Errorf("SJF small mean %.1fs not below FIFO %.1fs",
			byOrder["SJF"].SmallMean, byOrder["FIFO"].SmallMean)
	}
	if out := rep.String(); !strings.Contains(out, "SJF") {
		t.Error("rendering broken")
	}
}

func TestMotivationShape(t *testing.T) {
	t.Parallel()
	rep, err := RunMotivation(7)
	if err != nil {
		t.Fatal(err)
	}
	// §I ordering: mem-local < mem-remote < ssd < disk-idle < disk-busy.
	if !(rep.MemLocal < rep.MemRemote && rep.MemRemote < rep.SSDIdle &&
		rep.SSDIdle < rep.DiskIdle && rep.DiskIdle < rep.DiskBusy) {
		t.Errorf("latency ordering violated: %+v", rep)
	}
	// RAM over SSD: paper says 7x; accept 3-30x.
	if r := rep.RAMvsSSD(); r < 3 || r > 30 {
		t.Errorf("RAM vs SSD = %.1fx out of band", r)
	}
	// Mapper speedup: paper says 10x; accept 5-20x.
	if r := rep.MapperSpeedup(); r < 5 || r > 20 {
		t.Errorf("mapper speedup = %.1fx out of band", r)
	}
	if out := rep.String(); !strings.Contains(out, "Motivation") {
		t.Error("rendering broken")
	}
}

func TestHotColdShape(t *testing.T) {
	t.Parallel()
	rep, err := RunHotCold(7)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[HotColdConfig]HotColdRow{}
	for _, r := range rep.Rows {
		rows[r.Config] = r
	}
	base := rows[HCBaseline]
	// The cache accelerates hot jobs but leaves cold jobs at disk speed
	// (the paper's motivation for DYRS).
	if rows[HCCache].HotMean >= base.HotMean*0.95 {
		t.Errorf("cache did not help hot jobs: %.1f vs %.1f", rows[HCCache].HotMean, base.HotMean)
	}
	if rows[HCCache].ColdMean < base.ColdMean*0.9 {
		t.Errorf("cache unexpectedly helped cold jobs: %.1f vs %.1f", rows[HCCache].ColdMean, base.ColdMean)
	}
	// DYRS accelerates the cold jobs the cache cannot.
	if rows[HCDYRS].ColdMean >= base.ColdMean*0.9 {
		t.Errorf("DYRS did not help cold jobs: %.1f vs %.1f", rows[HCDYRS].ColdMean, base.ColdMean)
	}
	if out := rep.String(); !strings.Contains(out, "cold") {
		t.Error("rendering broken")
	}
}

func TestIterativeShape(t *testing.T) {
	t.Parallel()
	rep, err := RunIterative(7)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[Policy]IterativeRow{}
	for _, r := range rep.Rows {
		rows[r.Policy] = r
	}
	// §I: the cold first iteration dominates under HDFS (paper: 15x for
	// logistic regression); accept anything clearly dominated.
	if f := rows[HDFS].FirstOverSteady(); f < 5 {
		t.Errorf("HDFS first/steady = %.1fx, want >5x", f)
	}
	// DYRS shrinks the first-iteration penalty substantially.
	if rows[DYRS].Iterations[0] >= rows[HDFS].Iterations[0]*0.8 {
		t.Errorf("DYRS iter1 %.1fs not clearly below HDFS %.1fs",
			rows[DYRS].Iterations[0], rows[HDFS].Iterations[0])
	}
	// Steady-state iterations are unaffected by the policy.
	if d := rows[DYRS].Iterations[2] / rows[HDFS].Iterations[2]; d < 0.9 || d > 1.1 {
		t.Errorf("steady iterations differ between policies: %.2f", d)
	}
	if out := rep.String(); !strings.Contains(out, "Iterative") {
		t.Error("rendering broken")
	}
}

func TestRackedClusterStillBenefitsFromDYRS(t *testing.T) {
	t.Parallel()
	// DYRS on a 2-rack cluster with an oversubscribed core: migration
	// still delivers a clear speedup, and rack-aware placement holds.
	run := func(policy Policy) float64 {
		opt := DefaultOptions(9)
		opt.Workers = 8
		opt.Racks = 2
		opt.CoreBandwidth = 2 * float64(sim.GB) // 4:1 oversubscription
		env := NewEnv(policy, opt)
		defer env.Close()
		if err := env.WarmupEstimates(); err != nil {
			t.Fatal(err)
		}
		if err := env.CreateInput("in", 10*sim.GB); err != nil {
			t.Fatal(err)
		}
		spec := env.Prepare(workload.SortSpec("in", 8, policy.Migrates()))
		spec.ExtraLeadTime = 20 * time.Second
		j, err := env.FW.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.WaitJob(j, Hour); err != nil {
			t.Fatal(err)
		}
		return j.MapPhase().Seconds()
	}
	hdfs := run(HDFS)
	dyrs := run(DYRS)
	if dyrs >= hdfs*0.8 {
		t.Errorf("racked DYRS map %.1fs not clearly below HDFS %.1fs", dyrs, hdfs)
	}
}

func TestRunAllJSONRoundTrip(t *testing.T) {
	t.Parallel()
	rep, err := RunAll(7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back FullReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != 7 || len(back.Hive) != 10 || len(back.TableII) != 5 ||
		len(back.Fig11) != 16 || len(back.Order) != 3 || len(back.Iterative) != 2 {
		t.Errorf("round trip lost data: %+v", back.Seed)
	}
	if back.Trace.MeanUtilization <= 0 || back.SWIM.MeanJobSeconds[HDFS] <= 0 {
		t.Error("summaries empty after round trip")
	}
	if back.Motivation.MemLocal <= 0 {
		t.Error("motivation lost")
	}
}
