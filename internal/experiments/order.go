package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dyrs/internal/compute"
	"dyrs/internal/metrics"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
)

// OrderRow summarizes one migration-ordering policy's performance on a
// bursty multi-job workload (the paper's §III future-work extension).
type OrderRow struct {
	Order       migration.OrderPolicy
	MeanJob     float64 // seconds
	SmallMean   float64
	LargeMean   float64
	MemoryHits  int
	MissedReads int
}

// OrderReport compares FIFO, SJF and EDF migration ordering.
type OrderReport struct {
	Rows []OrderRow
}

// String renders the comparison.
func (r OrderReport) String() string {
	t := NewTable("Migration ordering policies (future work §III) — bursty mixed workload",
		"order", "mean job (s)", "small jobs (s)", "large jobs (s)", "memory hits", "missed reads")
	for _, row := range r.Rows {
		t.AddRow(row.Order.String(),
			fmt.Sprintf("%.1f", row.MeanJob),
			fmt.Sprintf("%.1f", row.SmallMean),
			fmt.Sprintf("%.1f", row.LargeMean),
			row.MemoryHits, row.MissedReads)
	}
	return t.String()
}

// RunOrderPolicies submits a burst of many small jobs plus a few large
// ones — with staggered expected start times — under each ordering
// policy and compares outcomes. SJF should rescue the small jobs from
// behind the large ones; EDF should prioritize whichever inputs are
// needed soonest.
func RunOrderPolicies(seed int64) (OrderReport, error) {
	var rep OrderReport
	for _, order := range []migration.OrderPolicy{migration.OrderFIFO, migration.OrderSJF, migration.OrderEDF} {
		opt := DefaultOptions(seed)
		mcfg := migration.DefaultConfig()
		mcfg.Order = order
		opt.MigrationConfig = &mcfg
		env := NewEnv(DYRS, opt)
		rng := rand.New(rand.NewSource(seed))

		// 2 large jobs submitted first, then 20 small ones right behind
		// them: under FIFO the large inputs monopolize migration
		// bandwidth while the small jobs' short lead-times expire.
		type jobPlan struct {
			name  string
			size  sim.Bytes
			at    sim.Duration
			small bool
		}
		var plans []jobPlan
		for i := 0; i < 2; i++ {
			plans = append(plans, jobPlan{
				name: fmt.Sprintf("large-%d", i),
				size: 12 * sim.GB,
				at:   sim.Duration(i) * 500 * time.Millisecond,
			})
		}
		for i := 0; i < 20; i++ {
			plans = append(plans, jobPlan{
				name:  fmt.Sprintf("small-%d", i),
				size:  sim.Bytes(64+rng.Intn(192)) * sim.MB,
				at:    time.Second + sim.Duration(i)*200*time.Millisecond,
				small: true,
			})
		}
		small := metrics.NewSample()
		large := metrics.NewSample()
		for _, p := range plans {
			if err := env.CreateInput(p.name, p.size); err != nil {
				env.Close()
				return rep, err
			}
		}
		for _, p := range plans {
			p := p
			spec := env.Prepare(compute.JobSpec{
				Name:             p.name,
				InputFiles:       []string{p.name},
				MapCPUPerByte:    0.8 / float64(256*sim.MB),
				MapOutputRatio:   0.2,
				Reducers:         4,
				OutputRatio:      1,
				PlatformOverhead: 9 * time.Second,
				TaskOverhead:     500 * time.Millisecond,
				ImplicitEvict:    true,
			}.DefaultOverheads())
			env.FW.SubmitAt(sim.Time(p.at), spec, nil)
		}
		if err := env.WaitJobs(len(plans), Hour); err != nil {
			env.Close()
			return rep, fmt.Errorf("order %v: %w", order, err)
		}
		all := metrics.NewSample()
		for _, j := range env.FW.Results() {
			d := j.Duration().Seconds()
			all.Add(d)
			if j.InputBytes < sim.GB {
				small.Add(d)
			} else {
				large.Add(d)
			}
		}
		st := env.Coord.Stats()
		rep.Rows = append(rep.Rows, OrderRow{
			Order:       order,
			MeanJob:     all.Mean(),
			SmallMean:   small.Mean(),
			LargeMean:   large.Mean(),
			MemoryHits:  st.MemoryHits,
			MissedReads: st.MissedReads,
		})
		env.Close()
	}
	return rep, nil
}

// orderExperiment registers the migration-ordering future-work study.
func orderExperiment() Experiment {
	return Experiment{
		Name:    "order",
		Summary: "future work: FIFO/SJF/EDF migration ordering policies",
		Run:     func(seed int64) (any, error) { return RunOrderPolicies(seed) },
		Render: func(result any, sel Selection) []string {
			return []string{result.(OrderReport).String()}
		},
		Merge: func(rep *FullReport, result any) {
			for _, r := range result.(OrderReport).Rows {
				rep.Order = append(rep.Order, OrderRowJSON{
					Order: r.Order.String(), MeanJob: r.MeanJob,
					SmallMean: r.SmallMean, LargeMean: r.LargeMean,
				})
			}
		},
	}
}
