package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// tinyScaleShardOptions is a sub-second preset for unit tests; the
// registered smoke preset runs in CI and the 1k preset in the
// macro-benchmarks.
func tinyScaleShardOptions(seed int64) ScaleShardOptions {
	opt := ScaleShardSmokeOptions(seed)
	opt.Scenario = "scaleshard-tiny"
	opt.Nodes, opt.Racks = 24, 4
	opt.Jobs, opt.BlocksPerJob = 8, 8
	opt.Virtual = 10 * time.Minute
	return opt
}

// TestScaleShardRowInvariants checks the accounting identities of the
// partitioned model: every requested migration completes and is acked
// by the master, every buffered block is evicted, and the data plane
// actually carried load.
func TestScaleShardRowInvariants(t *testing.T) {
	t.Parallel()
	row, err := RunScaleShard(tinyScaleShardOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if row.Shards != 5 {
		t.Errorf("shards = %d, want 1 control + 4 rack", row.Shards)
	}
	if row.Requested == 0 || row.Migrated != row.Requested || row.Evicted != row.Migrated {
		t.Errorf("migration accounting broken: %+v", row)
	}
	if row.Reads == 0 || row.Heartbeats == 0 || row.EventsFired == 0 {
		t.Errorf("data plane idle: %+v", row)
	}
	if row.Digest == "" || row.Digest == "0000000000000000" {
		t.Errorf("empty execution digest: %+v", row)
	}
}

// TestScaleShardWorkerInvariance is the experiment-level determinism
// guarantee: identical rows — counters AND execution digest — at every
// worker count. Run under -race in CI this also proves the parallel
// windows race-free on a real model.
func TestScaleShardWorkerInvariance(t *testing.T) {
	t.Parallel()
	run := func(workers int) []byte {
		opt := tinyScaleShardOptions(42)
		opt.Workers = workers
		row, err := RunScaleShard(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !bytes.Equal(got, ref) {
			t.Errorf("workers=%d diverged from workers=1:\n%s\n%s", workers, got, ref)
		}
	}
}

// TestScaleShardDeterminism: same seed, same bytes, run to run.
func TestScaleShardDeterminism(t *testing.T) {
	t.Parallel()
	opt := tinyScaleShardOptions(9)
	first, err := RunScaleShard(opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunScaleShard(opt)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestScaleShardSmokeWorkerInvariance runs the full registered smoke
// preset at 1 and 4 workers — the shard-smoke CI gate at the scale the
// registry actually runs. Skipped under -short.
func TestScaleShardSmokeWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke double run skipped under -short")
	}
	t.Parallel()
	run := func(workers int) []byte {
		opt := ScaleShardSmokeOptions(42)
		opt.Workers = workers
		row, err := RunScaleShard(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, _ := json.Marshal(row)
		return b
	}
	ref := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); !bytes.Equal(got, ref) {
			t.Errorf("smoke workers=%d diverged:\n%s\n%s", workers, got, ref)
		}
	}
}

// TestScaleDeterminism100ShardedMatchesSequential is the differential
// gate the tentpole demands: the full 100-node scale run, pinned to
// shard 0 of a 4-shard engine (the solo fast path), must serialize
// byte-identically to the plain sequential engine. Skipped under
// -short; the shard-smoke CI job runs it.
func TestScaleDeterminism100ShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full 100-node double run skipped under -short")
	}
	t.Parallel()
	seq, err := RunScale(Scale100Options(42))
	if err != nil {
		t.Fatal(err)
	}
	opt := Scale100Options(42)
	opt.Shards = 4
	sharded, err := RunScale(opt)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(sharded)
	if !bytes.Equal(a, b) {
		t.Errorf("sharded scale100 diverged from sequential:\n%s\n%s", a, b)
	}
}

// TestScaleShardMemoryBudget mirrors TestScaleMemoryBudget for the
// partitioned model at 4 workers: the smoke preset must stay inside
// the same process-wide Sys budget the scale-smoke CI job enforces.
func TestScaleShardMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke run skipped under -short")
	}
	budgetMiB := 768.0
	if env := os.Getenv("DYRS_SCALE_RSS_BUDGET_MIB"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("DYRS_SCALE_RSS_BUDGET_MIB=%q: %v", env, err)
		}
		budgetMiB = v
	}
	opt := ScaleShardSmokeOptions(42)
	opt.Workers = 4
	if _, err := RunScaleShard(opt); err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if sys := float64(ms.Sys) / (1 << 20); sys > budgetMiB {
		t.Errorf("runtime claimed %.0f MiB from the OS, budget %.0f MiB", sys, budgetMiB)
	}
}

// TestScaleShardPresetShape pins the preset parameters the committed
// benchmark baseline was measured at.
func TestScaleShardPresetShape(t *testing.T) {
	t.Parallel()
	smoke := ScaleShardSmokeOptions(1)
	if smoke.Nodes != 120 || smoke.Racks != 8 {
		t.Errorf("smoke preset drifted: %+v", smoke)
	}
	big := ScaleShard1kOptions(1)
	if big.Nodes != 1000 || big.Racks != 20 {
		t.Errorf("1k preset drifted: %+v", big)
	}
	for _, opt := range []ScaleShardOptions{smoke, big} {
		if opt.Nodes%opt.Racks != 0 {
			t.Errorf("%s racks %d do not divide nodes %d", opt.Scenario, opt.Racks, opt.Nodes)
		}
		if opt.ControlLatency <= 0 || opt.ControlLatency > opt.Heartbeat {
			t.Errorf("%s control latency %v outside (0, heartbeat]", opt.Scenario, opt.ControlLatency)
		}
	}
}
