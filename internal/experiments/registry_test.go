package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryShape(t *testing.T) {
	t.Parallel()
	reg := Registry()
	if len(reg) != 14 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Name == "" || e.Summary == "" || e.Run == nil || e.Render == nil || e.Merge == nil {
			t.Errorf("experiment %q incomplete: %+v", e.Name, e)
		}
		for _, n := range append([]string{e.Name}, e.Aliases...) {
			if seen[n] {
				t.Errorf("name %q claimed twice", n)
			}
			seen[n] = true
			if n != strings.ToLower(n) {
				t.Errorf("name %q not lower-case", n)
			}
		}
	}
	// Every figure/table of the paper plus extensions is reachable.
	for _, want := range []string{
		"fig1", "fig2", "fig3", "fig4", "table1", "fig5", "fig6", "fig7",
		"fig8", "fig9", "table2", "fig10", "fig11",
		"trace", "hive", "swim", "motivation", "order", "hotcold", "iterative", "scale",
		"scaleshard", "serving",
	} {
		if !seen[want] {
			t.Errorf("no experiment covers %q", want)
		}
	}
}

func TestSelectAll(t *testing.T) {
	t.Parallel()
	for _, empty := range []string{"", "  ", " , "} {
		picked, sel, err := Select(empty)
		if err != nil {
			t.Fatalf("Select(%q): %v", empty, err)
		}
		if len(picked) != len(Registry()) {
			t.Errorf("Select(%q) picked %d experiments", empty, len(picked))
		}
		if !sel.Empty() || !sel.Has("anything") {
			t.Errorf("Select(%q) selection not universal", empty)
		}
	}
}

func TestSelectSubset(t *testing.T) {
	t.Parallel()
	picked, sel, err := Select(" Fig4 , fig9,hotcold ")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range picked {
		names = append(names, e.Name)
	}
	// Registry order, not request order.
	if got := strings.Join(names, ","); got != "hive,table2,hotcold" {
		t.Errorf("picked %s", got)
	}
	if !sel.Has("fig4") || !sel.Has("fig9") || sel.Has("fig10") {
		t.Errorf("selection wrong: %v", sel)
	}
	if sel.wantsAll("hive") {
		t.Error("fig4 alone must not select all hive sections")
	}
}

func TestSelectUnknownNames(t *testing.T) {
	t.Parallel()
	_, _, err := Select("fig4,fig12,bogus")
	if err == nil {
		t.Fatal("unknown names accepted")
	}
	for _, want := range []string{"fig12", "bogus", "valid names", "fig11", "iterative"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestValidNamesCoverAliases(t *testing.T) {
	t.Parallel()
	names := map[string]bool{}
	for _, n := range ValidNames() {
		names[n] = true
	}
	for _, e := range Registry() {
		if !names[e.Name] {
			t.Errorf("ValidNames missing %q", e.Name)
		}
		for _, a := range e.Aliases {
			if !names[a] {
				t.Errorf("ValidNames missing alias %q", a)
			}
		}
	}
}

func TestRenderSelectsSections(t *testing.T) {
	t.Parallel()
	var trace Experiment
	for _, e := range Registry() {
		if e.Name == "trace" {
			trace = e
		}
	}
	r := RunTrace(3)
	if got := trace.Render(r, nil); len(got) != 3 {
		t.Fatalf("full trace render has %d sections", len(got))
	}
	_, sel, err := Select("fig2")
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Render(r, sel)
	if len(got) != 1 || !strings.Contains(got[0], "Fig 2") {
		t.Fatalf("fig2 render = %d sections: %.40q", len(got), got)
	}
	_, sel, err = Select("trace")
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.Render(r, sel); len(got) != 3 {
		t.Fatalf("canonical-name render has %d sections", len(got))
	}
}

// TestRunAllParallelMatchesSerial is the in-process form of the CI
// determinism gate: the merged JSON must be byte-identical no matter
// how many workers ran the experiments.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	serial, err := RunAll(7)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAllParallel(7, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("parallel report differs from serial report")
	}
}
