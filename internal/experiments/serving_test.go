package experiments

import (
	"reflect"
	"testing"
)

// TestServingSmokeScorecard runs the CI preset once and checks the
// scorecard is structurally sound: every policy row scored against the
// same stream, tenants present, and the migrating policies actually
// migrated and recorded lead time.
func TestServingSmokeScorecard(t *testing.T) {
	rep, err := RunServing(ServingSmokeOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("empty stream")
	}
	wantPolicies := []string{"hdfs", "costaware", "dyrs", "ignem"}
	if len(rep.Rows) != len(wantPolicies) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(wantPolicies))
	}
	for i, row := range rep.Rows {
		if row.Policy != wantPolicies[i] {
			t.Errorf("row %d policy %q, want %q", i, row.Policy, wantPolicies[i])
		}
		if row.Issued != rep.Requests {
			t.Errorf("%s issued %d, want the full stream (%d)", row.Policy, row.Issued, rep.Requests)
		}
		if row.Served == 0 || row.HitRate <= 0 {
			t.Errorf("%s served=%d hitRate=%f", row.Policy, row.Served, row.HitRate)
		}
		if len(row.Tenants) != 3 {
			t.Errorf("%s has %d tenant scores", row.Policy, len(row.Tenants))
		}
		for _, ts := range row.Tenants {
			if ts.Served > 0 && ts.P99Ms <= 0 {
				t.Errorf("%s/%s: served %d but p99 %f", row.Policy, ts.Tenant, ts.Served, ts.P99Ms)
			}
		}
		if row.Policy == "hdfs" {
			if row.Migrated != 0 || row.LeadP99Sec != 0 {
				t.Errorf("hdfs row carries migration numbers: %+v", row)
			}
		} else {
			if row.Migrated == 0 {
				t.Errorf("%s migrated nothing", row.Policy)
			}
			if row.LeadP50Sec <= 0 {
				t.Errorf("%s recorded no lead time", row.Policy)
			}
		}
	}
	if rep.String() == "" {
		t.Error("empty rendering")
	}
}

// TestServingDeterminismAndShardInvariance: the serving experiment sits
// in the determinism gate, so two sequential runs must be deeply equal,
// and a run pinned to shard 0 of a 2-shard engine must match them too.
func TestServingDeterminismAndShardInvariance(t *testing.T) {
	opt := ServingSmokeOptions(7)
	a, err := RunServing(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServing(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("serving smoke is nondeterministic across identical runs")
	}
	opt.Shards = 2
	c, err := RunServing(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("serving smoke diverges on the sharded engine's solo fast path")
	}
}
