package workload

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// TestServingSeedDeterminism: the same spec+seed must yield a deeply
// equal stream, and different seeds must actually differ.
func TestServingSeedDeterminism(t *testing.T) {
	spec := DefaultServingSpec()
	a := GenerateServing(spec, 42)
	b := GenerateServing(spec, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := GenerateServing(spec, 43)
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical request streams")
	}
	if len(a.Requests) == 0 {
		t.Fatal("empty stream")
	}
	for i, r := range a.Requests {
		if r.At < 0 || r.At >= spec.Horizon {
			t.Fatalf("request %d outside horizon: %v", i, r.At)
		}
		if i > 0 && r.At < a.Requests[i-1].At {
			t.Fatalf("requests out of order at %d", i)
		}
		if r.File < 0 || r.File >= spec.Files || r.Block < 0 || r.Block >= spec.BlocksPerFile {
			t.Fatalf("request %d out of population: %+v", i, r)
		}
		if r.Tenant < 0 || r.Tenant >= len(DefaultTenants()) {
			t.Fatalf("request %d bad tenant: %+v", i, r)
		}
	}
}

// TestServingDiurnalBucketsGolden pins the integrated arrival-rate curve
// (pure function of the spec) and checks a drawn stream tracks it. The
// golden values are the midpoint-rule integral of
// rate(t) = 12·(1+0.6·cos(2π(t/H − 1/4))) over 8 buckets of a
// 10-minute horizon; total mass is MeanRate·Horizon = 7200.
func TestServingDiurnalBucketsGolden(t *testing.T) {
	spec := DefaultServingSpec()
	got := spec.ArrivalBuckets(8)
	// Analytically: bucket i carries 900 + 687.55·Δsin over its span
	// (Δsin the sine increment of the diurnal phase), symmetric around
	// the peak in buckets 1-2 and the trough in buckets 5-6.
	golden := []float64{1101.4, 1386.2, 1386.2, 1101.4, 698.6, 413.8, 413.8, 698.6}
	total := 0.0
	for i, g := range golden {
		if math.Abs(got[i]-g) > 1.5 {
			t.Errorf("bucket %d: expected count %.1f, golden %.1f", i, got[i], g)
		}
		total += got[i]
	}
	if want := spec.MeanRate * spec.Horizon.Seconds(); math.Abs(total-want) > 2 {
		t.Errorf("integrated mass %.1f, want %.1f", total, want)
	}

	// A drawn stream is Poisson around those expectations: check each
	// bucket within 5 sigma and the peak/trough ordering is preserved.
	st := GenerateServing(spec, 7)
	counts := st.CountsPerBucket(8)
	for i, c := range counts {
		sigma := math.Sqrt(golden[i])
		if d := math.Abs(float64(c) - golden[i]); d > 5*sigma {
			t.Errorf("bucket %d: drew %d, expected %.0f (Δ=%.0f > 5σ=%.0f)",
				i, c, golden[i], d, 5*sigma)
		}
	}
	if counts[1] <= counts[5] {
		t.Errorf("diurnal shape lost: peak bucket %d <= trough bucket %d",
			counts[1], counts[5])
	}
}

// TestServingFlatRate: DiurnalAmp=0 degenerates to homogeneous Poisson
// with equal bucket expectations.
func TestServingFlatRate(t *testing.T) {
	spec := DefaultServingSpec()
	spec.DiurnalAmp = 0
	b := spec.ArrivalBuckets(4)
	for i, v := range b {
		if math.Abs(v-1800) > 0.01 {
			t.Errorf("flat bucket %d = %f, want 1800", i, v)
		}
	}
}

// TestServingZipfChiSquared: the drawn per-file counts must match the
// Zipf law. A chi-squared statistic over the ranks with expected count
// >= 5 should stay under a generous quantile for the dof involved
// (the draw is literally from the target CDF, so this guards the CDF
// construction and the binary-search sampler, not statistics luck).
func TestServingZipfChiSquared(t *testing.T) {
	spec := DefaultServingSpec()
	spec.Tenants = []TenantClass{{Name: "solo", Weight: 1, LatencyTarget: time.Second}}
	spec.MeanRate = 60 // more mass, tighter test
	st := GenerateServing(spec, 11)
	counts := st.FileCounts()
	n := float64(len(st.Requests))

	chi2, dof := 0.0, 0
	for i, w := range st.FileWeights {
		exp := w * n
		if exp < 5 {
			break // tail ranks: too little mass for the chi-squared approx
		}
		d := float64(counts[i]) - exp
		chi2 += d * d / exp
		dof++
	}
	if dof < 10 {
		t.Fatalf("only %d testable ranks", dof)
	}
	// 99.9th percentile of chi2 is roughly dof + 3*sqrt(2*dof) + 6.
	limit := float64(dof) + 3*math.Sqrt(2*float64(dof)) + 6
	if chi2 > limit {
		t.Errorf("chi-squared %f over %d ranks exceeds %f", chi2, dof, limit)
	}

	// Monotone head: rank 0 must dominate rank 4 by roughly the Zipf
	// ratio 5^1.1 ≈ 5.9 (allow wide slack for sampling noise).
	if counts[0] < 3*counts[4] {
		t.Errorf("head not Zipf-shaped: rank0=%d rank4=%d", counts[0], counts[4])
	}
}

// TestServingTenantMixAndBias: tenant shares follow the weights, and
// SkewBias re-skews per-tenant draws the right way.
func TestServingTenantMixAndBias(t *testing.T) {
	spec := DefaultServingSpec()
	spec.MeanRate = 40
	st := GenerateServing(spec, 3)
	tc := st.TenantCounts()
	n := float64(len(st.Requests))
	wantShare := []float64{0.5, 0.35, 0.15}
	for i, c := range tc {
		share := float64(c) / n
		if math.Abs(share-wantShare[i]) > 0.05 {
			t.Errorf("tenant %d share %.3f, want %.2f±0.05", i, share, wantShare[i])
		}
	}

	// Head mass per tenant: interactive (bias +0.6) must be more
	// head-heavy than batch (bias −0.8) on the top-4 files.
	headByTenant := make([]int, 3)
	totByTenant := make([]int, 3)
	for _, r := range st.Requests {
		totByTenant[r.Tenant]++
		if r.File < 4 {
			headByTenant[r.Tenant]++
		}
	}
	hi := float64(headByTenant[0]) / float64(totByTenant[0])
	lo := float64(headByTenant[2]) / float64(totByTenant[2])
	if hi <= lo+0.1 {
		t.Errorf("bias had no effect: interactive head share %.3f vs batch %.3f", hi, lo)
	}
}

// TestServingHotFiles: the prefetch set covers the requested mass in
// rank order.
func TestServingHotFiles(t *testing.T) {
	st := GenerateServing(DefaultServingSpec(), 1)
	hot := st.HotFiles(0.5)
	if len(hot) == 0 || len(hot) >= st.Spec.Files/2 {
		t.Fatalf("top-50%% mass spans %d of %d files — Zipf head should be small", len(hot), st.Spec.Files)
	}
	for i, f := range hot {
		if f != i {
			t.Errorf("hot files not rank-ordered: %v", hot)
			break
		}
	}
	mass := 0.0
	for _, f := range hot {
		mass += st.FileWeights[f]
	}
	if mass < 0.5 {
		t.Errorf("hot set covers %.3f < 0.5 of mass", mass)
	}
}

// TestServingSpecHelpers covers the small pure helpers.
func TestServingSpecHelpers(t *testing.T) {
	spec := DefaultServingSpec()
	if spec.FileName(3) != "serve/f-003" {
		t.Errorf("FileName = %q", spec.FileName(3))
	}
	if spec.TotalBlocks() != spec.Files*spec.BlocksPerFile {
		t.Errorf("TotalBlocks = %d", spec.TotalBlocks())
	}
	if got := spec.ArrivalBuckets(0); len(got) != 0 {
		t.Errorf("ArrivalBuckets(0) = %v", got)
	}
	empty := ServingSpec{}
	if s := GenerateServing(empty, 1); len(s.Requests) != 0 {
		t.Errorf("zero-rate spec drew %d requests", len(s.Requests))
	}
}
