// Package workload defines the three evaluation workloads of the paper —
// TPC-DS-like Hive queries, the SWIM trace-based workload derived from a
// Facebook production cluster, and Sort — plus the disk-interference
// patterns used to create bandwidth heterogeneity (§V-B, §V-C).
//
// The generators are synthetic stand-ins for the proprietary inputs the
// paper used (the TPC-DS dataset rendered to HiveQL, the Facebook SWIM
// trace): they reproduce the published marginals — input size
// distribution, selectivity, inter-arrival scaling — which is what the
// evaluation results depend on.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/compute"
	"dyrs/internal/sim"
)

// HiveQuery describes one multi-stage analytical query. Stage 1 scans the
// input table and filters aggressively (the SELECT/WHERE selectivity that
// makes the map phase 97% of runtime, §II-A); later stages process the
// shrunken intermediate data.
type HiveQuery struct {
	Name string
	// InputSize is the size of the scanned table.
	InputSize sim.Bytes
	// Stages is the number of MapReduce jobs the query compiles into.
	Stages int
	// Selectivity is the fraction of bytes surviving the stage-1 scan.
	Selectivity float64
	// CompileTime is the Hive query-compilation phase; migration is
	// triggered right after compilation (§IV-B), which in this model
	// means compilation contributes lead-time.
	CompileTime time.Duration
}

// TableName returns the DFS file name holding the query's input table.
func (q HiveQuery) TableName() string { return "table/" + q.Name }

// TPCDSQueries returns the ten-query suite used in §V-B1, with input
// sizes spanning the range a TPC-DS scale-100-ish dataset produces on a
// 7-node cluster and the high map-stage selectivity typical of those
// queries. Queries are returned sorted by input size, matching Fig. 4's
// presentation.
func TPCDSQueries() []HiveQuery {
	sizes := []struct {
		name string
		gb   float64
		sel  float64
		st   int
	}{
		{"q21", 2.0, 0.05, 2},
		{"q43", 3.5, 0.06, 2},
		{"q52", 5.0, 0.04, 2},
		{"q55", 6.5, 0.05, 2},
		{"q63", 8.0, 0.08, 3},
		{"q68", 10.0, 0.06, 3},
		{"q73", 12.5, 0.05, 3},
		{"q98", 16.0, 0.07, 3},
		{"q15", 20.0, 0.03, 2},
		{"q27", 26.0, 0.05, 3},
	}
	out := make([]HiveQuery, len(sizes))
	for i, s := range sizes {
		out[i] = HiveQuery{
			Name:        s.name,
			InputSize:   sim.Bytes(s.gb * float64(sim.GB)),
			Stages:      s.st,
			Selectivity: s.sel,
			CompileTime: 2500 * time.Millisecond,
		}
	}
	return out
}

// StageSpec builds the JobSpec for stage `stage` (0-based) of the query.
// Stage 0 reads the table; stage k reads the (already much smaller)
// output of stage k-1 from the given file. Only stage 0 carries the
// migration request — Hive migrates the tables named in the query.
func (q HiveQuery) StageSpec(stage int, inputFile string, migrate bool) compute.JobSpec {
	spec := compute.JobSpec{
		Name:             fmt.Sprintf("%s-stage%d", q.Name, stage),
		InputFiles:       []string{inputFile},
		MapCPUPerByte:    1.2 / float64(256*sim.MB), // ~1.2s CPU per 256MB block
		MapOutputRatio:   q.Selectivity,
		Reducers:         4,
		OutputRatio:      1.0,
		ReduceCPUPerByte: 0.5 / float64(256*sim.MB),
	}.DefaultOverheads()
	if stage == 0 {
		// The first stage pays the full Hive/Tez/YARN startup: session
		// and container launch, JVM warm-up, AM negotiation. This is the
		// platform-overhead lead-time migration exploits (§II-C1).
		spec.PlatformOverhead = 7 * time.Second
		spec.Migrate = migrate
		spec.ImplicitEvict = true
		spec.ExtraLeadTime = q.CompileTime
	} else {
		// Later stages reuse containers (cheaper startup) and aggregate
		// rather than filter.
		spec.PlatformOverhead = 2 * time.Second
		spec.MapOutputRatio = 0.8
		spec.Reducers = 2
	}
	return spec
}

// SWIMJob is one job of the trace-based workload: sized (input, shuffle,
// output) and submitted according to the trace (§V-B2).
type SWIMJob struct {
	Name         string
	InputSize    sim.Bytes
	ShuffleRatio float64
	OutputRatio  float64
	// Arrival is the submission offset from the start of the replay.
	Arrival time.Duration
}

// SWIMConfig parameterizes the trace generator.
type SWIMConfig struct {
	// Jobs is the number of jobs to generate (the paper replays 200).
	Jobs int
	// TotalInput is the cumulative input size (170 GB scaled to the
	// 8-node cluster in the paper).
	TotalInput sim.Bytes
	// SmallFraction is the share of jobs reading less than SmallMax
	// (85% read under 64 MB in the Facebook trace).
	SmallFraction float64
	// SmallMax bounds a "small" job's input.
	SmallMax sim.Bytes
	// LargeMax caps the heavy tail (24 GB in the paper).
	LargeMax sim.Bytes
	// MeanInterarrival is the mean submission gap after the paper's 75%
	// compression of trace inter-arrival times.
	MeanInterarrival time.Duration
}

// DefaultSWIMConfig reproduces §V-B2's published parameters.
func DefaultSWIMConfig() SWIMConfig {
	return SWIMConfig{
		Jobs:             200,
		TotalInput:       170 * sim.GB,
		SmallFraction:    0.85,
		SmallMax:         64 * sim.MB,
		LargeMax:         24 * sim.GB,
		MeanInterarrival: 5 * time.Second,
	}
}

// GenerateSWIM synthesizes a trace with the published marginals: 85% of
// jobs read under 64 MB while a few large jobs account for most of the
// bytes, and the whole replay sums to exactly TotalInput.
func GenerateSWIM(rng *rand.Rand, cfg SWIMConfig) []SWIMJob {
	if cfg.Jobs <= 0 {
		panic("workload: SWIM needs at least one job")
	}
	jobs := make([]SWIMJob, cfg.Jobs)
	sizes := make([]float64, cfg.Jobs)
	var sum float64
	for i := range sizes {
		u := rng.Float64()
		switch {
		case u < cfg.SmallFraction:
			// Small: log-uniform in [4MB, SmallMax].
			lo, hi := math.Log(4*float64(sim.MB)), math.Log(float64(cfg.SmallMax))
			sizes[i] = math.Exp(lo + rng.Float64()*(hi-lo))
		case u < cfg.SmallFraction+0.10:
			// Medium: log-uniform in (SmallMax, 1GB].
			lo, hi := math.Log(float64(cfg.SmallMax)), math.Log(float64(sim.GB))
			sizes[i] = math.Exp(lo + rng.Float64()*(hi-lo))
		default:
			// Large: Pareto-ish tail in (1GB, LargeMax].
			alpha := 1.1
			x := float64(sim.GB) / math.Pow(rng.Float64(), 1/alpha)
			if x > float64(cfg.LargeMax) {
				x = float64(cfg.LargeMax)
			}
			sizes[i] = x
		}
		sum += sizes[i]
	}
	// Scale the large/medium jobs so the total matches TotalInput while
	// small jobs keep their absolute sizes (preserving the 85%-under-64MB
	// marginal).
	var smallSum float64
	for _, s := range sizes {
		if s <= float64(cfg.SmallMax) {
			smallSum += s
		}
	}
	scale := (float64(cfg.TotalInput) - smallSum) / (sum - smallSum)
	if scale <= 0 {
		scale = 1
	}
	arrival := time.Duration(0)
	for i := range jobs {
		sz := sizes[i]
		if sz > float64(cfg.SmallMax) {
			sz *= scale
			if sz > float64(cfg.LargeMax) {
				sz = float64(cfg.LargeMax)
			}
		}
		if sz < float64(sim.MB) {
			sz = float64(sim.MB)
		}
		jobs[i] = SWIMJob{
			Name:         fmt.Sprintf("swim-%03d", i),
			InputSize:    sim.Bytes(sz),
			ShuffleRatio: 0.05 + 0.45*rng.Float64(),
			OutputRatio:  0.2 + 0.8*rng.Float64(),
			Arrival:      arrival,
		}
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		arrival += gap
	}
	return jobs
}

// FileName returns the DFS file holding the job's input.
func (j SWIMJob) FileName() string { return "swim/" + j.Name }

// Spec builds the compute.JobSpec for a SWIM job under the given
// migration setting.
func (j SWIMJob) Spec(migrate bool) compute.JobSpec {
	blocks := int((j.InputSize + 256*sim.MB - 1) / (256 * sim.MB))
	reducers := blocks / 4
	if reducers < 1 {
		reducers = 1
	}
	if reducers > 16 {
		reducers = 16
	}
	return compute.JobSpec{
		Name:           j.Name,
		InputFiles:     []string{j.FileName()},
		MapCPUPerByte:  0.8 / float64(256*sim.MB),
		MapOutputRatio: j.ShuffleRatio,
		Reducers:       reducers,
		OutputRatio:    j.OutputRatio,
		// Hadoop-on-YARN job startup — AM launch, container allocation,
		// JVM warm-up — runs to ~10s per job; it dominates small trace
		// jobs (the paper's HDFS average is 31.5s although 85% of jobs
		// read under 64MB) and is the lead-time migration feeds on.
		PlatformOverhead: 9 * time.Second,
		TaskOverhead:     500 * time.Millisecond,
		ReduceCPUPerByte: 0.4 / float64(256*sim.MB),
		Migrate:          migrate,
		ImplicitEvict:    true,
	}.DefaultOverheads()
}

// SortSpec builds a Sort job over the named file: identity map (all input
// shuffled), full-size output (§V-B3).
func SortSpec(file string, reducers int, migrate bool) compute.JobSpec {
	return compute.JobSpec{
		Name:             "sort",
		InputFiles:       []string{file},
		MapCPUPerByte:    0.4 / float64(256*sim.MB),
		MapOutputRatio:   1.0,
		Reducers:         reducers,
		OutputRatio:      1.0,
		ReduceCPUPerByte: 0.6 / float64(256*sim.MB),
		Migrate:          migrate,
		ImplicitEvict:    true,
	}.DefaultOverheads()
}

// Pattern is a named interference scenario from Table II / Fig. 9.
type Pattern struct {
	Name   string
	Figure string
	// Start applies the pattern to the cluster and returns a stop
	// function.
	Start func(cl *cluster.Cluster) (stop func())
}

// InterferenceStreams is the number of competing reader streams one
// interference source runs (the paper uses two dd jobs).
const InterferenceStreams = 2

// TableIIPatterns returns the five interference scenarios of Table II,
// applied to the given node ids.
func TableIIPatterns(node1, node2 cluster.NodeID) []Pattern {
	return []Pattern{
		{
			Name:   "Node #1 only: Persistently active",
			Figure: "9a",
			Start: func(cl *cluster.Cluster) func() {
				inf := cl.Node(node1).StartInterference(InterferenceStreams, 1)
				return inf.Stop
			},
		},
		{
			Name:   "Node #1 only: Alternates every 10s",
			Figure: "9b",
			Start: func(cl *cluster.Cluster) func() {
				p := cluster.StartAlternating(cl.Engine(), cl.Node(node1), InterferenceStreams, 1, 10*time.Second, true)
				return p.Stop
			},
		},
		{
			Name:   "Node #1 only: Alternates every 20s",
			Figure: "9c",
			Start: func(cl *cluster.Cluster) func() {
				p := cluster.StartAlternating(cl.Engine(), cl.Node(node1), InterferenceStreams, 1, 20*time.Second, true)
				return p.Stop
			},
		},
		{
			Name:   "Node #1 and #2: Alternates every 10s",
			Figure: "9d",
			Start: func(cl *cluster.Cluster) func() {
				a := cluster.StartAlternating(cl.Engine(), cl.Node(node1), InterferenceStreams, 1, 10*time.Second, true)
				b := cluster.StartAlternating(cl.Engine(), cl.Node(node2), InterferenceStreams, 1, 10*time.Second, false)
				return func() { a.Stop(); b.Stop() }
			},
		},
		{
			Name:   "Node #1 and #2: Alternates every 20s",
			Figure: "9e",
			Start: func(cl *cluster.Cluster) func() {
				a := cluster.StartAlternating(cl.Engine(), cl.Node(node1), InterferenceStreams, 1, 20*time.Second, true)
				b := cluster.StartAlternating(cl.Engine(), cl.Node(node2), InterferenceStreams, 1, 20*time.Second, false)
				return func() { a.Stop(); b.Stop() }
			},
		},
	}
}

// GrepSpec builds a grep-style scan job: read everything, emit almost
// nothing — the most read-dominated job shape and the best case for
// migration.
func GrepSpec(file string, migrate bool) compute.JobSpec {
	return compute.JobSpec{
		Name:           "grep",
		InputFiles:     []string{file},
		MapCPUPerByte:  0.2 / float64(256*sim.MB),
		MapOutputRatio: 1e-5,
		Reducers:       1,
		OutputRatio:    1,
		Migrate:        migrate,
		ImplicitEvict:  true,
	}.DefaultOverheads()
}

// WordCountSpec builds a wordcount-style job: moderate CPU, small
// aggregated output.
func WordCountSpec(file string, reducers int, migrate bool) compute.JobSpec {
	return compute.JobSpec{
		Name:             "wordcount",
		InputFiles:       []string{file},
		MapCPUPerByte:    1.5 / float64(256*sim.MB),
		MapOutputRatio:   0.05,
		Reducers:         reducers,
		ReduceCPUPerByte: 0.5 / float64(256*sim.MB),
		OutputRatio:      0.5,
		Migrate:          migrate,
		ImplicitEvict:    true,
	}.DefaultOverheads()
}

// JoinSpec builds a two-input join: both tables are scanned (and both
// are migrated — compute jobs may read any number of input files), the
// smaller side determines the shuffle volume.
func JoinSpec(left, right string, reducers int, migrate bool) compute.JobSpec {
	return compute.JobSpec{
		Name:             "join",
		InputFiles:       []string{left, right},
		MapCPUPerByte:    0.8 / float64(256*sim.MB),
		MapOutputRatio:   0.3,
		Reducers:         reducers,
		ReduceCPUPerByte: 0.8 / float64(256*sim.MB),
		OutputRatio:      0.6,
		Migrate:          migrate,
		ImplicitEvict:    true,
	}.DefaultOverheads()
}
