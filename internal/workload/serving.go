package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// This file defines the multi-tenant serving workload (ROADMAP item 2):
// an open-loop stream of block-read requests against a shared file
// population, with
//
//   - seeded Zipfian block popularity (a handful of hot files absorb
//     most reads — the access pattern that makes disk-to-memory
//     migration of "cold" data pay off when the popularity ranking
//     shifts);
//   - diurnal arrival-rate curves (a nonhomogeneous Poisson process
//     whose rate follows a 24h-shaped sinusoid, compressed to the
//     simulated horizon);
//   - per-tenant request classes with QoS latency targets, so
//     experiments can produce per-tenant scorecards (p99 read latency
//     vs target, hit rate).
//
// Everything is deterministic given the spec and seed: all randomness
// flows through one *rand.Rand, arrival times are drawn bucket-by-bucket
// with exponential gaps, and ties in the popularity CDF are resolved by
// index. No wall clock, no map iteration.

// TenantClass is a QoS class for one tenant in the serving mix.
type TenantClass struct {
	// Name labels the tenant in scorecards ("interactive", "batch"...).
	Name string
	// Weight is the tenant's share of the request stream (relative).
	Weight float64
	// LatencyTarget is the per-request QoS target; the scorecard reports
	// the fraction of requests served within it and the p99 against it.
	LatencyTarget time.Duration
	// SkewBias shifts the tenant's draws within the shared popularity
	// ranking: 0 samples the global Zipf, positive values re-skew toward
	// the head (interactive tenants hammer hot data), negative toward
	// the tail (batch scans touch cold data).
	SkewBias float64
}

// DefaultTenants is the three-class mix the serving experiments use:
// an interactive tenant with a tight target on hot data, a general
// api tenant on the global distribution, and a batch tenant biased
// toward the cold tail with a loose target.
func DefaultTenants() []TenantClass {
	return []TenantClass{
		{Name: "interactive", Weight: 0.5, LatencyTarget: 120 * time.Millisecond, SkewBias: 0.6},
		{Name: "api", Weight: 0.35, LatencyTarget: 400 * time.Millisecond, SkewBias: 0},
		{Name: "batch", Weight: 0.15, LatencyTarget: 5 * time.Second, SkewBias: -0.8},
	}
}

// ServingSpec parameterizes one serving workload draw.
type ServingSpec struct {
	// Files is the number of files in the served population.
	Files int
	// BlocksPerFile sizes each file (the block is the request unit).
	BlocksPerFile int
	// ZipfS is the Zipf exponent over files (1.0-1.3 covers measured
	// serving traces; higher = hotter head).
	ZipfS float64
	// MeanRate is the time-averaged request arrival rate (req/sec).
	MeanRate float64
	// DiurnalAmp in [0,1) scales the sinusoidal rate swing: the
	// instantaneous rate is MeanRate*(1 + DiurnalAmp*sin(2π·phase)).
	// 0 gives a homogeneous Poisson stream.
	DiurnalAmp float64
	// PeakPhase in [0,1) positions the diurnal peak within the horizon
	// (0.25 = peak at one quarter in, like midday in a 0h-24h window).
	PeakPhase float64
	// Horizon is the span requests are drawn over (the simulated "day").
	Horizon time.Duration
	// Tenants is the QoS class mix; empty means DefaultTenants.
	Tenants []TenantClass
}

// DefaultServingSpec is the testbed-scale serving mix: 64 files of 4
// blocks, a hot head (s=1.1), ~12 req/s averaged over a compressed
// 10-minute "day" with a ±60% diurnal swing.
func DefaultServingSpec() ServingSpec {
	return ServingSpec{
		Files:         64,
		BlocksPerFile: 4,
		ZipfS:         1.1,
		MeanRate:      12,
		DiurnalAmp:    0.6,
		PeakPhase:     0.25,
		Horizon:       10 * time.Minute,
	}
}

// FileName returns the DFS path of the i-th served file.
func (s ServingSpec) FileName(i int) string { return fmt.Sprintf("serve/f-%03d", i) }

// TotalBlocks is the served block population size.
func (s ServingSpec) TotalBlocks() int { return s.Files * s.BlocksPerFile }

// tenants returns the effective tenant mix.
func (s ServingSpec) tenants() []TenantClass {
	if len(s.Tenants) == 0 {
		return DefaultTenants()
	}
	return s.Tenants
}

// ServingRequest is one drawn request: at time At, tenant Tenant reads
// block Block (index within file File).
type ServingRequest struct {
	At     time.Duration
	Tenant int // index into the spec's tenant mix
	File   int // file index (popularity rank order)
	Block  int // block index within the file
}

// ServingStream is the fully drawn open-loop request schedule plus the
// distributions it was drawn from, for oracles and scorecards.
type ServingStream struct {
	Spec     ServingSpec
	Seed     int64
	Requests []ServingRequest
	// FileWeights is the normalized Zipf popularity over files
	// (rank-ordered: FileWeights[0] is the hottest file).
	FileWeights []float64
}

// zipfCDF builds the cumulative popularity distribution over n ranks
// with exponent s (weight of rank i ∝ 1/(i+1)^s), re-skewed by bias:
// the effective exponent is max(0.05, s+bias), so positive bias
// concentrates mass at the head and negative bias flattens toward the
// tail without ever inverting the ranking.
func zipfCDF(n int, s, bias float64) []float64 {
	e := s + bias
	if e < 0.05 {
		e = 0.05
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), e)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// sampleCDF draws a rank from a cumulative distribution: binary search
// for the first rank whose cumulative mass covers u.
func sampleCDF(cdf []float64, u float64) int {
	i := sort.SearchFloat64s(cdf, u)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// rate evaluates the instantaneous arrival rate at time t, the diurnal
// sinusoid around MeanRate with the peak at PeakPhase of the horizon.
func (s ServingSpec) rate(t time.Duration) float64 {
	if s.DiurnalAmp == 0 || s.Horizon <= 0 {
		return s.MeanRate
	}
	phase := float64(t)/float64(s.Horizon) - s.PeakPhase
	// Peak at phase 0: cos is 1 at the configured peak.
	return s.MeanRate * (1 + s.DiurnalAmp*math.Cos(2*math.Pi*phase))
}

// ArrivalBuckets integrates the diurnal rate curve into n equal-width
// buckets over the horizon and returns each bucket's expected request
// count. Pure function of the spec — the workload tests pin these
// expectations as goldens and compare drawn streams against them.
func (s ServingSpec) ArrivalBuckets(n int) []float64 {
	out := make([]float64, n)
	if n <= 0 || s.Horizon <= 0 {
		return out
	}
	w := s.Horizon / time.Duration(n)
	const steps = 32 // midpoint-rule sub-steps per bucket
	for i := 0; i < n; i++ {
		start := time.Duration(i) * w
		sum := 0.0
		for k := 0; k < steps; k++ {
			mid := start + w*time.Duration(2*k+1)/time.Duration(2*steps)
			sum += s.rate(mid)
		}
		out[i] = sum / steps * w.Seconds()
	}
	return out
}

// GenerateServing draws the full request stream for a seed. The draw is
// a nonhomogeneous Poisson process realized by thinning a homogeneous
// process at the peak rate: exponential gaps at rate λmax, each arrival
// kept with probability rate(t)/λmax. Thinning keeps the draw O(N) and
// exact, and — unlike bucket-local resampling — keeps the gap stream
// independent of how observers bucket time afterwards.
func GenerateServing(spec ServingSpec, seed int64) *ServingStream {
	rng := rand.New(rand.NewSource(seed ^ 0x5e41))
	tenants := spec.tenants()

	// Tenant pick CDF.
	tcdf := make([]float64, len(tenants))
	tw := 0.0
	for i, tc := range tenants {
		tw += tc.Weight
		tcdf[i] = tw
	}
	for i := range tcdf {
		tcdf[i] /= tw
	}

	// Per-tenant file popularity CDFs (shared ranking, tenant bias).
	fcdfs := make([][]float64, len(tenants))
	for i, tc := range tenants {
		fcdfs[i] = zipfCDF(spec.Files, spec.ZipfS, tc.SkewBias)
	}
	global := zipfCDF(spec.Files, spec.ZipfS, 0)
	weights := make([]float64, spec.Files)
	prev := 0.0
	for i, c := range global {
		weights[i] = c - prev
		prev = c
	}

	st := &ServingStream{Spec: spec, Seed: seed, FileWeights: weights}
	lambdaMax := spec.MeanRate * (1 + spec.DiurnalAmp)
	if lambdaMax <= 0 {
		return st
	}
	for t := time.Duration(0); ; {
		gap := rng.ExpFloat64() / lambdaMax
		t += time.Duration(gap * float64(time.Second))
		if t >= spec.Horizon {
			break
		}
		if rng.Float64()*lambdaMax > spec.rate(t) {
			continue // thinned out
		}
		tenant := sampleCDF(tcdf, rng.Float64())
		file := sampleCDF(fcdfs[tenant], rng.Float64())
		block := rng.Intn(spec.BlocksPerFile)
		st.Requests = append(st.Requests, ServingRequest{
			At: t, Tenant: tenant, File: file, Block: block,
		})
	}
	return st
}

// CountsPerBucket tallies drawn arrivals into n equal-width buckets, the
// observed counterpart of ArrivalBuckets.
func (st *ServingStream) CountsPerBucket(n int) []int {
	out := make([]int, n)
	if n <= 0 || st.Spec.Horizon <= 0 {
		return out
	}
	for _, r := range st.Requests {
		i := int(float64(r.At) / float64(st.Spec.Horizon) * float64(n))
		if i >= n {
			i = n - 1
		}
		out[i]++
	}
	return out
}

// FileCounts tallies drawn requests per file rank.
func (st *ServingStream) FileCounts() []int {
	out := make([]int, st.Spec.Files)
	for _, r := range st.Requests {
		out[r.File]++
	}
	return out
}

// TenantCounts tallies drawn requests per tenant class.
func (st *ServingStream) TenantCounts() []int {
	out := make([]int, len(st.Spec.tenants()))
	for _, r := range st.Requests {
		out[r.Tenant]++
	}
	return out
}

// HotFiles returns the file indexes covering the top `frac` of global
// popularity mass, in rank order — the prefetch set a cache-warming
// policy would migrate ahead of the peak.
func (st *ServingStream) HotFiles(frac float64) []int {
	var out []int
	mass := 0.0
	for i, w := range st.FileWeights {
		if mass >= frac {
			break
		}
		mass += w
		out = append(out, i)
	}
	return out
}
