package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

func TestTPCDSQueries(t *testing.T) {
	qs := TPCDSQueries()
	if len(qs) != 10 {
		t.Fatalf("queries = %d, want 10", len(qs))
	}
	seen := map[string]bool{}
	for i, q := range qs {
		if seen[q.Name] {
			t.Errorf("duplicate query %s", q.Name)
		}
		seen[q.Name] = true
		if q.InputSize <= 0 || q.Stages < 2 || q.Selectivity <= 0 || q.Selectivity > 0.2 {
			t.Errorf("query %s has odd parameters: %+v", q.Name, q)
		}
		if i > 0 && q.InputSize < qs[i-1].InputSize {
			t.Errorf("queries not sorted by input size at %d", i)
		}
		if q.TableName() != "table/"+q.Name {
			t.Errorf("table name %q", q.TableName())
		}
	}
}

func TestHiveStageSpecs(t *testing.T) {
	q := TPCDSQueries()[0]
	s0 := q.StageSpec(0, q.TableName(), true)
	if !s0.Migrate || !s0.ImplicitEvict {
		t.Error("stage 0 should migrate with implicit eviction")
	}
	if s0.ExtraLeadTime != q.CompileTime {
		t.Errorf("stage 0 lead = %v, want compile time %v", s0.ExtraLeadTime, q.CompileTime)
	}
	if s0.MapOutputRatio != q.Selectivity {
		t.Errorf("stage 0 selectivity = %v", s0.MapOutputRatio)
	}
	s1 := q.StageSpec(1, "intermediate", true)
	if s1.Migrate {
		t.Error("later stages must not re-trigger migration")
	}
	if s1.InputFiles[0] != "intermediate" {
		t.Errorf("stage 1 input = %v", s1.InputFiles)
	}
	if s0.PlatformOverhead == 0 || s0.TaskOverhead == 0 {
		t.Error("overheads not defaulted")
	}
}

func TestGenerateSWIMMarginals(t *testing.T) {
	cfg := DefaultSWIMConfig()
	jobs := GenerateSWIM(rand.New(rand.NewSource(7)), cfg)
	if len(jobs) != 200 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	var total sim.Bytes
	small := 0
	var maxSize sim.Bytes
	prevArrival := time.Duration(-1)
	for _, j := range jobs {
		total += j.InputSize
		if j.InputSize < cfg.SmallMax {
			small++
		}
		if j.InputSize > maxSize {
			maxSize = j.InputSize
		}
		if j.InputSize > cfg.LargeMax {
			t.Errorf("job %s exceeds cap: %d", j.Name, j.InputSize)
		}
		if j.Arrival < prevArrival {
			t.Errorf("arrivals not monotone at %s", j.Name)
		}
		prevArrival = j.Arrival
		if j.ShuffleRatio <= 0 || j.OutputRatio <= 0 {
			t.Errorf("job %s ratios: %+v", j.Name, j)
		}
	}
	// Published marginals: ~85% small, total ~170GB, heavy tail into GBs.
	if frac := float64(small) / 200; frac < 0.75 || frac > 0.95 {
		t.Errorf("small fraction = %v, want ~0.85", frac)
	}
	if total < 100*sim.GB || total > 240*sim.GB {
		t.Errorf("total input = %v, want ~170GB", sim.FormatBytes(total))
	}
	if maxSize < 2*sim.GB {
		t.Errorf("heavy tail missing: max = %v", sim.FormatBytes(maxSize))
	}
}

// Property: SWIM generation is deterministic per seed and always
// respects bounds.
func TestPropertySWIMGeneration(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := DefaultSWIMConfig()
		cfg.Jobs = 50
		a := GenerateSWIM(rand.New(rand.NewSource(seed)), cfg)
		b := GenerateSWIM(rand.New(rand.NewSource(seed)), cfg)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i].InputSize < sim.MB || a[i].InputSize > cfg.LargeMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSWIMSpec(t *testing.T) {
	j := SWIMJob{Name: "swim-001", InputSize: 10 * sim.GB, ShuffleRatio: 0.3, OutputRatio: 0.5}
	spec := j.Spec(true)
	if !spec.Migrate || !spec.ImplicitEvict {
		t.Error("migrate flags not set")
	}
	if spec.Reducers < 1 || spec.Reducers > 16 {
		t.Errorf("reducers = %d", spec.Reducers)
	}
	if spec.InputFiles[0] != "swim/swim-001" {
		t.Errorf("input = %v", spec.InputFiles)
	}
	tiny := SWIMJob{Name: "t", InputSize: 4 * sim.MB}
	if tiny.Spec(false).Reducers != 1 {
		t.Errorf("tiny job reducers = %d", tiny.Spec(false).Reducers)
	}
}

func TestSortSpec(t *testing.T) {
	spec := SortSpec("data", 8, true)
	if spec.MapOutputRatio != 1.0 || spec.OutputRatio != 1.0 {
		t.Error("sort must shuffle and write its full input")
	}
	if spec.Reducers != 8 || !spec.Migrate {
		t.Errorf("spec = %+v", spec)
	}
}

func TestTableIIPatterns(t *testing.T) {
	pats := TableIIPatterns(1, 2)
	if len(pats) != 5 {
		t.Fatalf("patterns = %d", len(pats))
	}
	figures := []string{"9a", "9b", "9c", "9d", "9e"}
	for i, p := range pats {
		if p.Figure != figures[i] {
			t.Errorf("pattern %d figure = %s", i, p.Figure)
		}
	}
	// Exercise each pattern briefly on a live cluster.
	for _, p := range pats {
		eng := sim.NewEngine(1)
		cl := cluster.New(eng, 4, nil)
		stop := p.Start(cl)
		eng.RunUntil(sim.Time(35 * time.Second))
		stop()
		eng.RunFor(time.Minute)
		for _, n := range cl.Nodes() {
			if n.Disk.ActiveFlows() != 0 {
				t.Errorf("%s left %d flows on %v", p.Name, n.Disk.ActiveFlows(), n.ID)
			}
		}
	}
}

func TestTableIIPatternsAntiphase(t *testing.T) {
	// Patterns 9d/9e: exactly one node's interference active at any time.
	eng := sim.NewEngine(1)
	cl := cluster.New(eng, 4, nil)
	p := TableIIPatterns(1, 2)[3] // 9d
	stop := p.Start(cl)
	defer stop()
	for i := 1; i <= 6; i++ {
		eng.RunUntil(sim.Time(time.Duration(i)*10*time.Second + 5*time.Second))
		a := cl.Node(1).Disk.ActiveFlows() > 0
		b := cl.Node(2).Disk.ActiveFlows() > 0
		if a == b {
			t.Errorf("at %v both/neither active: node1=%v node2=%v", eng.Now(), a, b)
		}
	}
}

func TestJobSpecBuilders(t *testing.T) {
	g := GrepSpec("logs", true)
	if g.MapOutputRatio >= 0.01 {
		t.Error("grep should emit almost nothing")
	}
	w := WordCountSpec("corpus", 4, false)
	if w.Migrate || w.Reducers != 4 {
		t.Errorf("wordcount spec wrong: %+v", w)
	}
	j := JoinSpec("orders", "customers", 8, true)
	if len(j.InputFiles) != 2 {
		t.Errorf("join inputs = %v", j.InputFiles)
	}
	for _, s := range []string{j.InputFiles[0], j.InputFiles[1]} {
		if s == "" {
			t.Error("empty input name")
		}
	}
	if j.PlatformOverhead == 0 {
		t.Error("overheads not defaulted")
	}
}
