package gtrace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON serializes the whole trace (config, utilization matrix,
// jobs) so external tools can plot it or so a trace can be archived and
// re-analyzed later.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON loads a trace previously written with WriteJSON — or one
// converted from the real Google cluster trace by external tooling; the
// analyses in this package run on it unchanged.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("gtrace: decoding trace: %w", err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// validate checks structural invariants of a loaded trace.
func (t *Trace) validate() error {
	if len(t.Util) == 0 {
		return fmt.Errorf("gtrace: trace has no servers")
	}
	bins := len(t.Util[0])
	for s, series := range t.Util {
		if len(series) != bins {
			return fmt.Errorf("gtrace: server %d has %d bins, want %d", s, len(series), bins)
		}
		for b, u := range series {
			if u < 0 || u > 1 {
				return fmt.Errorf("gtrace: utilization out of range at [%d][%d]: %v", s, b, u)
			}
		}
	}
	for i, j := range t.Jobs {
		if j.Tasks < 1 || j.ReadSeconds <= 0 || j.LeadSeconds < 0 {
			return fmt.Errorf("gtrace: job %d invalid: %+v", i, j)
		}
	}
	return nil
}

// WriteUtilizationCSV emits one row per (server, bin): server index,
// bin index, utilization.
func (t *Trace) WriteUtilizationCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"server", "bin", "utilization"}); err != nil {
		return err
	}
	for s, series := range t.Util {
		for b, u := range series {
			rec := []string{
				strconv.Itoa(s),
				strconv.Itoa(b),
				strconv.FormatFloat(u, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJobsCSV emits one row per job: tasks, lead seconds, read seconds.
func (t *Trace) WriteJobsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tasks", "lead_seconds", "read_seconds"}); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		rec := []string{
			strconv.Itoa(j.Tasks),
			strconv.FormatFloat(j.LeadSeconds, 'f', 4, 64),
			strconv.FormatFloat(j.ReadSeconds, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobsCSV parses a jobs CSV (as written by WriteJobsCSV, or derived
// from a real trace) into Job records, replacing t.Jobs-style data for
// the Fig. 2 analysis.
func ReadJobsCSV(r io.Reader) ([]Job, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gtrace: reading jobs csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("gtrace: empty jobs csv")
	}
	var jobs []Job
	for i, rec := range records {
		if i == 0 && rec[0] == "tasks" {
			continue // header
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("gtrace: jobs csv row %d has %d fields", i, len(rec))
		}
		tasks, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("gtrace: row %d tasks: %w", i, err)
		}
		lead, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("gtrace: row %d lead: %w", i, err)
		}
		read, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("gtrace: row %d read: %w", i, err)
		}
		jobs = append(jobs, Job{Tasks: tasks, LeadSeconds: lead, ReadSeconds: read})
	}
	return jobs, nil
}
