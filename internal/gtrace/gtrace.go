// Package gtrace synthesizes a Google-cluster-trace-like workload record
// and reruns the paper's motivation analyses on it (§II, Figs. 1-3):
// per-node disk-utilization time series at 5-minute granularity, the
// cluster-wide utilization CDF, and the job lead-time vs read-time
// comparison.
//
// The real 2011 Google trace is a multi-GB proprietary download; this
// generator is calibrated to the statistics the paper reports from it —
// mean disk utilization ~3.1%, 80% of samples under 4%, strong
// cross-node heterogeneity (busy nodes 5-13x idle ones), mean job
// lead-time 8.8s, and ~81% of jobs with lead-time exceeding read-time —
// so the analysis pipeline and the resulting figures keep their shape.
package gtrace

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"dyrs/internal/metrics"
)

// Config parameterizes trace synthesis.
type Config struct {
	// Servers is the number of machines (the paper plots 3 in Fig. 1 and
	// samples 40 in Fig. 3).
	Servers int
	// Duration is the traced wall-clock span (24h in Figs. 1 and 3).
	Duration time.Duration
	// BinWidth is the utilization reporting granularity (5 minutes in
	// the trace).
	BinWidth time.Duration
	// Jobs is the number of jobs synthesized for the lead-time analysis.
	Jobs int
	// MeanLeadSeconds is the mean job lead-time (8.8s in the trace).
	MeanLeadSeconds float64
	// Seed drives all randomness.
	Seed int64

	// activityMedian and activitySigma shape the per-server lognormal
	// activity level; the defaults are calibrated to the published
	// utilization statistics.
	ActivityMedian float64
	ActivitySigma  float64
}

// DefaultConfig returns a configuration calibrated to the published
// trace statistics.
func DefaultConfig() Config {
	return Config{
		Servers:         40,
		Duration:        24 * time.Hour,
		BinWidth:        5 * time.Minute,
		Jobs:            2000,
		MeanLeadSeconds: 8.8,
		Seed:            1,
		ActivityMedian:  0.008,
		ActivitySigma:   1.3,
	}
}

// Job is one synthesized job for the Fig. 2 analysis.
type Job struct {
	// Tasks is the number of tasks in the job.
	Tasks int
	// LeadSeconds is submission-to-first-task time.
	LeadSeconds float64
	// ReadSeconds is the summed task IO time — the paper's (over-)
	// estimate of the time to read the inputs into memory.
	ReadSeconds float64
}

// Ratio reports lead-time over read-time.
func (j Job) Ratio() float64 { return j.LeadSeconds / j.ReadSeconds }

// TaskRecord is one task's footprint in the trace: when it ran and how
// much disk IO time it accumulated, mirroring the per-task IO records the
// Google trace provides at 5-minute granularity.
type TaskRecord struct {
	// Start and End are seconds from trace start.
	Start, End float64
	// IOSeconds is total disk IO time within [Start, End). The paper's
	// analysis assumes each task performs IO at a constant rate.
	IOSeconds float64
}

// Trace is a synthesized cluster trace plus its derived utilization data.
type Trace struct {
	Cfg Config
	// Tasks[s] holds server s's task records — the raw trace.
	Tasks [][]TaskRecord
	// Util[s][b] is server s's disk utilization (0..1) during bin b,
	// derived from Tasks by the paper's §II-B pipeline.
	Util [][]float64
	// Jobs are the synthesized jobs for the lead-time analysis.
	Jobs []Job
}

// Generate synthesizes a trace using the paper's methodology in reverse:
// it first synthesizes per-server task records (Poisson arrivals whose
// rate follows a lognormal per-server activity level, exponential
// durations, and a constant per-task IO rate), then derives per-node
// utilization exactly as §II-B does — per-second utilization is the sum
// of the IO rates of active tasks, averaged into 5-minute bins.
func Generate(cfg Config) *Trace {
	if cfg.Servers <= 0 || cfg.Duration <= 0 || cfg.BinWidth <= 0 {
		panic("gtrace: invalid config")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Cfg: cfg, Tasks: make([][]TaskRecord, cfg.Servers), Util: make([][]float64, cfg.Servers)}

	const (
		meanDur    = 240.0 // seconds, mean task duration
		meanIOFrac = 0.16  // mean fraction of a task's lifetime spent on IO
	)
	span := cfg.Duration.Seconds()
	for s := 0; s < cfg.Servers; s++ {
		// Per-server activity level: lognormal, so most servers are idle
		// and a few heavily loaded — the cross-node heterogeneity of
		// Fig. 1. A small fraction of servers host an IO-intensive
		// application (the paper's explanation for its busy node 1).
		activity := cfg.ActivityMedian * math.Exp(cfg.ActivitySigma*rng.NormFloat64())
		if rng.Float64() < 0.05 {
			activity *= 8
		}
		// Arrival rate that hits the target utilization in expectation:
		// E[util] = lambda * meanDur * meanIOFrac.
		lambda := activity / (meanDur * meanIOFrac)
		// Start the arrival process before the window so utilization is
		// in steady state at t=0.
		at := -3 * meanDur
		var tasks []TaskRecord
		for {
			at += rng.ExpFloat64() / lambda
			if at >= span {
				break
			}
			dur := rng.ExpFloat64() * meanDur
			if dur < 1 {
				dur = 1
			}
			ioFrac := 0.02 + rng.Float64()*0.28
			if rng.Float64() < 0.03 {
				ioFrac = 0.5 + 0.4*rng.Float64() // IO-heavy outlier task
			}
			tasks = append(tasks, TaskRecord{
				Start:     at,
				End:       at + dur,
				IOSeconds: dur * ioFrac,
			})
		}
		t.Tasks[s] = tasks
		t.Util[s] = deriveUtilization(tasks, span, cfg.BinWidth.Seconds())
	}

	t.Jobs = synthesizeJobs(rng, cfg)
	return t
}

// deriveUtilization implements the paper's §II-B analysis: each task
// performs IO at constant rate IOSeconds/(End-Start); a bin's utilization
// is the summed IO time of tasks active in the bin divided by the bin
// width, capped at the device's capacity (1.0).
func deriveUtilization(tasks []TaskRecord, span, binWidth float64) []float64 {
	bins := int(span / binWidth)
	util := make([]float64, bins)
	for _, task := range tasks {
		dur := task.End - task.Start
		if dur <= 0 {
			continue
		}
		rate := task.IOSeconds / dur
		first := int(task.Start / binWidth)
		last := int(task.End / binWidth)
		if first < 0 {
			first = 0
		}
		for b := first; b <= last && b < bins; b++ {
			binStart := float64(b) * binWidth
			binEnd := binStart + binWidth
			lo := math.Max(task.Start, binStart)
			hi := math.Min(task.End, binEnd)
			if hi > lo {
				util[b] += rate * (hi - lo) / binWidth
			}
		}
	}
	for b := range util {
		if util[b] > 1 {
			util[b] = 1
		}
	}
	return util
}

// synthesizeJobs builds the job population for the Fig. 2 analysis.
func synthesizeJobs(rng *rand.Rand, cfg Config) []Job {
	jobs := make([]Job, cfg.Jobs)
	for i := range jobs {
		// Heavy-tailed task counts: most jobs are small, a few huge —
		// matching production MapReduce populations.
		u := rng.Float64()
		nTasks := int(math.Pow(u, -0.7))
		if nTasks < 1 {
			nTasks = 1
		}
		if nTasks > 5000 {
			nTasks = 5000
		}
		perTask := 0.3 + rng.ExpFloat64()*0.5
		jobs[i] = Job{
			Tasks:       nTasks,
			LeadSeconds: rng.ExpFloat64() * cfg.MeanLeadSeconds,
			ReadSeconds: float64(nTasks) * perTask,
		}
	}
	return jobs
}

// UtilizationSeries returns server s's utilization as a time series in
// hours (the Fig. 1 data for one node).
func (t *Trace) UtilizationSeries(s int) *metrics.TimeSeries {
	ts := metrics.NewTimeSeries("server")
	for b, u := range t.Util[s] {
		hour := float64(b) * t.Cfg.BinWidth.Hours()
		ts.Record(hour, u)
	}
	return ts
}

// MeanUtilization reports the mean over all servers and bins.
func (t *Trace) MeanUtilization() float64 {
	var sum float64
	var n int
	for _, series := range t.Util {
		for _, u := range series {
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ServerMeans returns per-server mean utilization.
func (t *Trace) ServerMeans() []float64 {
	out := make([]float64, len(t.Util))
	for s, series := range t.Util {
		var sum float64
		for _, u := range series {
			sum += u
		}
		out[s] = sum / float64(len(series))
	}
	return out
}

// RankedServers returns server indices sorted by descending mean
// utilization — used to pick the busy/medium/idle trio for Fig. 1.
func (t *Trace) RankedServers() []int {
	means := t.ServerMeans()
	idx := make([]int, len(means))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return means[idx[a]] > means[idx[b]] })
	return idx
}

// UtilizationSamples collects every (server, bin) utilization sample —
// the population behind the Fig. 3 CDF.
func (t *Trace) UtilizationSamples() *metrics.Sample {
	s := metrics.NewSample()
	for _, series := range t.Util {
		for _, u := range series {
			s.Add(u)
		}
	}
	return s
}

// FractionUnder reports the fraction of utilization samples below u —
// e.g. FractionUnder(0.04) reproduces the "80% of time utilization is
// under 4%" claim.
func (t *Trace) FractionUnder(u float64) float64 {
	return t.UtilizationSamples().FractionBelow(u)
}

// LeadReadRatios collects each job's lead-time/read-time ratio.
func (t *Trace) LeadReadRatios() *metrics.Sample {
	s := metrics.NewSample()
	for _, j := range t.Jobs {
		s.Add(j.Ratio())
	}
	return s
}

// FractionLeadCoversRead reports the fraction of jobs whose lead-time
// exceeds their read-time — the paper's 81% feasibility headline.
func (t *Trace) FractionLeadCoversRead() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range t.Jobs {
		if j.LeadSeconds > j.ReadSeconds {
			n++
		}
	}
	return float64(n) / float64(len(t.Jobs))
}

// RatioPDF returns the Fig. 2 probability density of log10(lead/read),
// binned over [-3, 3].
func (t *Trace) RatioPDF(bins int) *metrics.Histogram {
	h := metrics.NewHistogram(-3, 3, bins)
	for _, j := range t.Jobs {
		h.Add(math.Log10(j.Ratio()))
	}
	return h
}

// MeanLeadSeconds reports the realized mean job lead-time.
func (t *Trace) MeanLeadSeconds() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	var sum float64
	for _, j := range t.Jobs {
		sum += j.LeadSeconds
	}
	return sum / float64(len(t.Jobs))
}
