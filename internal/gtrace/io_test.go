package gtrace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func smallTrace() *Trace {
	cfg := DefaultConfig()
	cfg.Servers = 3
	cfg.Duration = time.Hour
	cfg.Jobs = 20
	return Generate(cfg)
}

func TestJSONRoundTrip(t *testing.T) {
	tr := smallTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Util) != len(tr.Util) || len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("shape lost: %d/%d servers, %d/%d jobs",
			len(back.Util), len(tr.Util), len(back.Jobs), len(tr.Jobs))
	}
	if back.MeanUtilization() != tr.MeanUtilization() {
		t.Errorf("mean util changed: %v vs %v", back.MeanUtilization(), tr.MeanUtilization())
	}
	if back.FractionLeadCoversRead() != tr.FractionLeadCoversRead() {
		t.Error("job analysis changed after round trip")
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"no servers":    `{"Cfg":{},"Util":[],"Jobs":[]}`,
		"ragged":        `{"Util":[[0.1,0.2],[0.3]],"Jobs":[]}`,
		"util range":    `{"Util":[[1.5]],"Jobs":[]}`,
		"negative lead": `{"Util":[[0.1]],"Jobs":[{"Tasks":1,"LeadSeconds":-1,"ReadSeconds":1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid trace", name)
		}
	}
}

func TestUtilizationCSV(t *testing.T) {
	tr := smallTrace()
	var buf bytes.Buffer
	if err := tr.WriteUtilizationCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := 1 + 3*12 // header + servers*bins
	if len(lines) != want {
		t.Fatalf("csv lines = %d, want %d", len(lines), want)
	}
	if lines[0] != "server,bin,utilization" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestJobsCSVRoundTrip(t *testing.T) {
	tr := smallTrace()
	var buf bytes.Buffer
	if err := tr.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	jobs, err := ReadJobsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(tr.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(jobs), len(tr.Jobs))
	}
	for i := range jobs {
		if jobs[i].Tasks != tr.Jobs[i].Tasks {
			t.Fatalf("job %d tasks differ", i)
		}
		// Floats round-tripped at 4 decimal places.
		if d := jobs[i].LeadSeconds - tr.Jobs[i].LeadSeconds; d > 1e-3 || d < -1e-3 {
			t.Fatalf("job %d lead drifted by %v", i, d)
		}
	}
}

func TestReadJobsCSVErrors(t *testing.T) {
	if _, err := ReadJobsCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("tasks,lead_seconds,read_seconds\nx,1,2\n")); err == nil {
		t.Error("non-numeric tasks accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("tasks,lead_seconds,read_seconds\n1,x,2\n")); err == nil {
		t.Error("non-numeric lead accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("tasks,lead_seconds,read_seconds\n1,2,x\n")); err == nil {
		t.Error("non-numeric read accepted")
	}
}
