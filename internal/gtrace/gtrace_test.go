package gtrace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func defaultTrace(t *testing.T) *Trace {
	t.Helper()
	return Generate(DefaultConfig())
}

func TestGenerateShape(t *testing.T) {
	tr := defaultTrace(t)
	if len(tr.Util) != 40 {
		t.Fatalf("servers = %d", len(tr.Util))
	}
	wantBins := int((24 * time.Hour) / (5 * time.Minute))
	for s, series := range tr.Util {
		if len(series) != wantBins {
			t.Fatalf("server %d has %d bins, want %d", s, len(series), wantBins)
		}
		for b, u := range series {
			if u < 0 || u > 1 {
				t.Fatalf("util out of range at [%d][%d]: %v", s, b, u)
			}
		}
	}
	if len(tr.Jobs) != 2000 {
		t.Errorf("jobs = %d", len(tr.Jobs))
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	Generate(Config{})
}

// The headline calibration claims from §II, with generous tolerances:
// the analyses must keep the paper's shape, not its exact decimals.

func TestMeanUtilizationCalibration(t *testing.T) {
	tr := defaultTrace(t)
	m := tr.MeanUtilization()
	if m < 0.01 || m > 0.07 {
		t.Errorf("mean utilization = %.3f, want ~0.031", m)
	}
}

func TestFractionUnder4Percent(t *testing.T) {
	tr := defaultTrace(t)
	f := tr.FractionUnder(0.04)
	if f < 0.65 || f > 0.92 {
		t.Errorf("fraction under 4%% = %.2f, want ~0.80", f)
	}
}

func TestCrossNodeHeterogeneity(t *testing.T) {
	tr := defaultTrace(t)
	ranked := tr.RankedServers()
	means := tr.ServerMeans()
	busiest := means[ranked[0]]
	median := means[ranked[len(ranked)/2]]
	if median <= 0 {
		t.Fatal("median utilization zero")
	}
	// Fig. 1: the busy node is several-fold busier than a typical one
	// (13x and 5x in the paper's example trio).
	if ratio := busiest / median; ratio < 3 {
		t.Errorf("busiest/median = %.1fx, want >=3x heterogeneity", ratio)
	}
}

func TestLeadTimeCalibration(t *testing.T) {
	tr := defaultTrace(t)
	if m := tr.MeanLeadSeconds(); m < 7 || m > 11 {
		t.Errorf("mean lead = %.1fs, want ~8.8s", m)
	}
	f := tr.FractionLeadCoversRead()
	if f < 0.70 || f > 0.90 {
		t.Errorf("lead>read fraction = %.2f, want ~0.81", f)
	}
}

func TestUtilizationSeries(t *testing.T) {
	tr := defaultTrace(t)
	ts := tr.UtilizationSeries(0)
	if ts.Len() != len(tr.Util[0]) {
		t.Fatalf("series len = %d", ts.Len())
	}
	last := ts.Last()
	if last.T <= 23 || last.T >= 24 {
		t.Errorf("last sample at %vh, want just under 24h", last.T)
	}
}

func TestRatioPDF(t *testing.T) {
	tr := defaultTrace(t)
	h := tr.RatioPDF(30)
	if h.Count() != len(tr.Jobs) {
		t.Errorf("pdf count = %d", h.Count())
	}
	var sum float64
	for _, p := range h.PDF() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pdf sums to %v", sum)
	}
}

func TestJobRatio(t *testing.T) {
	j := Job{LeadSeconds: 10, ReadSeconds: 4}
	if j.Ratio() != 2.5 {
		t.Errorf("ratio = %v", j.Ratio())
	}
}

func TestUtilizationSamplesCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Servers = 3
	cfg.Duration = time.Hour
	tr := Generate(cfg)
	s := tr.UtilizationSamples()
	if s.Len() != 3*12 {
		t.Errorf("samples = %d, want 36", s.Len())
	}
}

// Property: generation is deterministic per seed.
func TestPropertyDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := DefaultConfig()
		cfg.Servers = 5
		cfg.Duration = 2 * time.Hour
		cfg.Jobs = 50
		cfg.Seed = seed
		a, b := Generate(cfg), Generate(cfg)
		for s := range a.Util {
			for i := range a.Util[s] {
				if a.Util[s][i] != b.Util[s][i] {
					return false
				}
			}
		}
		for i := range a.Jobs {
			if a.Jobs[i] != b.Jobs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestEmptyJobAnalyses(t *testing.T) {
	tr := &Trace{}
	if tr.FractionLeadCoversRead() != 0 || tr.MeanLeadSeconds() != 0 || tr.MeanUtilization() != 0 {
		t.Error("empty trace analyses should be zero")
	}
}

func TestTaskRecordsSane(t *testing.T) {
	tr := defaultTrace(t)
	if len(tr.Tasks) != tr.Cfg.Servers {
		t.Fatalf("task lists = %d", len(tr.Tasks))
	}
	total := 0
	for s, tasks := range tr.Tasks {
		for i, task := range tasks {
			if task.End <= task.Start {
				t.Fatalf("server %d task %d has non-positive duration", s, i)
			}
			if task.IOSeconds <= 0 || task.IOSeconds > task.End-task.Start {
				t.Fatalf("server %d task %d io=%v outside lifetime %v",
					s, i, task.IOSeconds, task.End-task.Start)
			}
			if i > 0 && task.Start < tasks[i-1].Start {
				t.Fatalf("server %d tasks out of arrival order", s)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no tasks synthesized")
	}
}

func TestUtilDerivedFromTasks(t *testing.T) {
	// The Util matrix must be exactly the §II-B derivation of the Tasks
	// records: recompute one busy server by brute force per-second
	// accumulation and compare.
	tr := defaultTrace(t)
	s := tr.RankedServers()[0]
	span := tr.Cfg.Duration.Seconds()
	binW := tr.Cfg.BinWidth.Seconds()
	bins := int(span / binW)
	want := make([]float64, bins)
	for _, task := range tr.Tasks[s] {
		rate := task.IOSeconds / (task.End - task.Start)
		for b := 0; b < bins; b++ {
			lo := math.Max(task.Start, float64(b)*binW)
			hi := math.Min(task.End, float64(b+1)*binW)
			if hi > lo {
				want[b] += rate * (hi - lo) / binW
			}
		}
	}
	for b := range want {
		if want[b] > 1 {
			want[b] = 1
		}
		if math.Abs(want[b]-tr.Util[s][b]) > 1e-9 {
			t.Fatalf("bin %d: derived %v, stored %v", b, want[b], tr.Util[s][b])
		}
	}
}
