// The live ops endpoint: a read-only wall-clock HTTP server a CLI can
// expose with -metrics-addr while a long simulation runs. It serves
// whatever snapshot the simulation goroutine last published — the
// server never touches simulation state, so determinism is untouched:
// snapshots are rendered inside the virtual-time loop (on a ticker) and
// handed over through an atomic pointer swap.
//
//	GET /metrics   OpenMetrics text exposition (latest published)
//	GET /progress  JSON progress snapshot (latest published)
//	GET /          same as /progress
package obs

import (
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Server is the live metrics endpoint. Zero coordination with the
// simulation: Publish stores immutable byte slices; handlers load them.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	metrics  atomic.Value // []byte, OpenMetrics text
	progress atomic.Value // []byte, JSON
}

// StartServer listens on addr (e.g. "localhost:9090", ":0" for an
// ephemeral port) and serves in a background goroutine. The returned
// server is live immediately; publish snapshots as the run proceeds and
// Close it when done.
func StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln}
	s.metrics.Store([]byte("# EOF\n"))
	s.progress.Store([]byte("{}\n"))

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		w.Write(s.metrics.Load().([]byte))
	})
	progress := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.progress.Load().([]byte))
	}
	mux.HandleFunc("/progress", progress)
	mux.HandleFunc("/", progress)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Publish swaps in new snapshots; nil leaves the respective snapshot
// unchanged. Callers must not mutate the slices after publishing.
func (s *Server) Publish(metrics, progress []byte) {
	if metrics != nil {
		s.metrics.Store(metrics)
	}
	if progress != nil {
		s.progress.Store(progress)
	}
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
