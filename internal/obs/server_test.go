package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerServesPublishedSnapshots(t *testing.T) {
	s, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// Before any publish: the placeholder snapshots.
	body, ctype := get(t, base+"/metrics")
	if body != "# EOF\n" {
		t.Errorf("initial /metrics = %q, want empty exposition", body)
	}
	if !strings.Contains(ctype, "openmetrics-text") {
		t.Errorf("metrics content-type = %q", ctype)
	}
	if body, _ := get(t, base+"/progress"); body != "{}\n" {
		t.Errorf("initial /progress = %q", body)
	}

	s.Publish([]byte("dyrs_x 1\n# EOF\n"), []byte(`{"virtual_ns":5}`))
	if body, _ := get(t, base+"/metrics"); body != "dyrs_x 1\n# EOF\n" {
		t.Errorf("/metrics after publish = %q", body)
	}
	for _, path := range []string{"/progress", "/"} {
		body, ctype := get(t, base+path)
		if body != `{"virtual_ns":5}` {
			t.Errorf("%s = %q", path, body)
		}
		if !strings.Contains(ctype, "application/json") {
			t.Errorf("%s content-type = %q", path, ctype)
		}
	}

	// nil leaves the previous snapshot in place.
	s.Publish(nil, []byte(`{"virtual_ns":9}`))
	if body, _ := get(t, base+"/metrics"); body != "dyrs_x 1\n# EOF\n" {
		t.Errorf("/metrics after nil publish = %q", body)
	}
	if body, _ := get(t, base+"/progress"); body != `{"virtual_ns":9}` {
		t.Errorf("/progress after second publish = %q", body)
	}
}

func TestServerClose(t *testing.T) {
	s, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("closed server still answering")
	}
}
