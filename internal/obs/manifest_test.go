package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"testing"

	"dyrs/internal/sim"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("dyrs-test")
	m.Seed = 42

	fs := flag.NewFlagSet("dyrs-test", flag.ContinueOnError)
	fs.Int64("seed", 1, "")
	fs.String("policy", "DYRS", "")
	if err := fs.Parse([]string{"-seed", "42"}); err != nil {
		t.Fatal(err)
	}
	m.CaptureFlags(fs)
	m.AddSchema("trace", "dyrs-trace/v2")
	m.Finish(sim.Time(12345))

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Manifest
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if round.Schema != ManifestSchema || round.Tool != "dyrs-test" || round.Seed != 42 {
		t.Errorf("identity fields lost: %+v", round)
	}
	if round.Flags["seed"] != "42" || round.Flags["policy"] != "DYRS" {
		t.Errorf("flags = %v, want effective values incl. defaults", round.Flags)
	}
	if round.Schemas["trace"] != "dyrs-trace/v2" {
		t.Errorf("schemas = %v", round.Schemas)
	}
	if round.VirtualNS != 12345 {
		t.Errorf("virtual_ns = %d, want 12345", round.VirtualNS)
	}
	if round.WallSeconds < 0 {
		t.Errorf("wall_seconds = %g, want >= 0", round.WallSeconds)
	}
	if round.GoVersion == "" || round.OS == "" || round.Arch == "" || round.StartedAt == "" {
		t.Errorf("build/host fields missing: %+v", round)
	}
}

func TestPeakRSSBytes(t *testing.T) {
	if got := peakRSSBytes(); got <= 0 {
		t.Errorf("peak RSS = %d, want > 0 on any platform", got)
	}
}
