// Package obs is the ops surface of a simulator run: the run manifest
// (what exactly ran — seed, flags, build, schema versions, wall and
// virtual time, peak memory) every CLI can write next to its outputs,
// and a read-only wall-clock HTTP endpoint serving live progress and
// OpenMetrics while a long run is in flight.
//
// Everything here is deliberately OUTSIDE the deterministic core: wall
// clocks and goroutines live in this package (under audited lint
// waivers) so the simulation's own packages stay virtual-time pure. No
// simulation result may ever depend on a value produced here.
package obs

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"dyrs/internal/sim"
)

// ManifestSchema versions the run-manifest document.
const ManifestSchema = "dyrs-manifest/v1"

// Manifest records what one CLI run was: enough to re-run it (tool,
// seed, flags), place it (git revision, Go version, host OS/arch), and
// size it (wall time, virtual time, peak RSS). Schemas maps artifact
// kinds the run produced to their schema versions, so a reader can
// check compatibility before parsing siblings.
type Manifest struct {
	Schema       string            `json:"schema"`
	Tool         string            `json:"tool"`
	Seed         int64             `json:"seed"`
	Flags        map[string]string `json:"flags,omitempty"`
	GitSHA       string            `json:"git_sha,omitempty"`
	GitDirty     bool              `json:"git_dirty,omitempty"`
	GoVersion    string            `json:"go_version"`
	OS           string            `json:"os"`
	Arch         string            `json:"arch"`
	StartedAt    string            `json:"started_at"` // RFC3339, wall clock
	WallSeconds  float64           `json:"wall_seconds"`
	VirtualNS    int64             `json:"virtual_ns"`
	PeakRSSBytes int64             `json:"peak_rss_bytes"`
	Schemas      map[string]string `json:"schemas,omitempty"`

	start time.Time
}

// NewManifest starts a manifest for the named tool, capturing the wall
// start time and build identity.
func NewManifest(tool string) *Manifest {
	m := &Manifest{
		Schema:    ManifestSchema,
		Tool:      tool,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		start:     time.Now(), //lint:walltime run manifest measures real elapsed time
	}
	m.StartedAt = m.start.UTC().Format(time.RFC3339)
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitSHA = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// CaptureFlags records every flag's effective value (defaults included)
// from the given flag set.
func (m *Manifest) CaptureFlags(fs *flag.FlagSet) {
	m.Flags = make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		m.Flags[f.Name] = f.Value.String()
	})
}

// AddSchema records that the run produced an artifact kind with the
// given schema version ("trace" -> "dyrs-trace/v2").
func (m *Manifest) AddSchema(kind, version string) {
	if m.Schemas == nil {
		m.Schemas = make(map[string]string)
	}
	m.Schemas[kind] = version
}

// Finish stamps the run's end-of-life measurements: elapsed wall time,
// the final virtual clock, and peak RSS.
func (m *Manifest) Finish(virtual sim.Time) {
	m.WallSeconds = time.Now().Sub(m.start).Seconds() //lint:walltime run manifest measures real elapsed time
	m.VirtualNS = int64(virtual)
	m.PeakRSSBytes = peakRSSBytes()
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// peakRSSBytes reports the process's peak resident set. On Linux it
// reads VmHWM from /proc/self/status (the kernel's high-water mark);
// elsewhere it falls back to the Go runtime's view of memory obtained
// from the OS, which overstates RSS but is monotone and portable.
func peakRSSBytes() int64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
