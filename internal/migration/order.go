package migration

import (
	"sort"

	"dyrs/internal/sim"
)

// OrderPolicy selects how the master orders pending migrations across
// jobs. The paper schedules migrations FIFO and names alternative
// policies and cooperation with the job scheduler as future work (§III);
// the non-FIFO policies below implement that extension.
type OrderPolicy int

const (
	// OrderFIFO processes migration requests in arrival order — the
	// paper's policy.
	OrderFIFO OrderPolicy = iota
	// OrderSJF orders blocks of smaller jobs first. Small jobs need few
	// blocks migrated to run entirely from memory, so SJF maximizes the
	// number of jobs whose whole input makes it into memory in time.
	OrderSJF
	// OrderEDF (earliest deadline first) orders blocks by how soon
	// their job's tasks are expected to launch, using hints from the
	// cluster scheduler — the "cooperation with the job scheduler" the
	// paper sketches. Blocks whose lead-time expires soonest migrate
	// first.
	OrderEDF
)

// String names the policy.
func (o OrderPolicy) String() string {
	switch o {
	case OrderSJF:
		return "SJF"
	case OrderEDF:
		return "EDF"
	}
	return "FIFO"
}

// JobHint is scheduler-provided metadata about a job with pending
// migrations.
type JobHint struct {
	// ExpectedStart is when the scheduler expects the job's first tasks
	// to launch (submission + platform overheads + queueing estimate).
	ExpectedStart sim.Time
	// InputBytes is the job's total input size.
	InputBytes sim.Bytes
}

// HintSink is implemented by managers that accept scheduler hints. The
// compute framework feeds hints at submission; managers that do not
// implement it simply ignore scheduler cooperation.
type HintSink interface {
	SetJobHint(job JobID, hint JobHint)
}

// SetJobHint implements HintSink on the Coordinator.
func (c *Coordinator) SetJobHint(job JobID, hint JobHint) {
	c.hints[job] = hint
	c.hintEpoch++
}

// hintFor aggregates hints over all jobs referencing a block: the
// earliest expected start and the smallest job size win, since either
// makes the block more urgent.
func (c *Coordinator) hintFor(bi *blockInfo) (start sim.Time, bytes sim.Bytes) {
	first := true
	for _, job := range bi.refs {
		h, ok := c.hints[job]
		if !ok {
			continue
		}
		if first || h.ExpectedStart < start {
			start = h.ExpectedStart
		}
		if first || h.InputBytes < bytes {
			bytes = h.InputBytes
		}
		first = false
	}
	if first {
		// No hints: treat as urgent-now with unknown (large) size so
		// unhinted requests are not starved by hinted ones.
		return 0, 1 << 62
	}
	return start, bytes
}

// orderPending stably sorts the pending list according to the
// configured policy. FIFO keeps arrival order (no-op).
func (c *Coordinator) orderPending(pending []*blockInfo) {
	switch c.cfg.Order {
	case OrderSJF:
		sort.SliceStable(pending, func(i, j int) bool {
			_, bi := c.hintFor(pending[i])
			_, bj := c.hintFor(pending[j])
			return bi < bj
		})
	case OrderEDF:
		sort.SliceStable(pending, func(i, j int) bool {
			si, _ := c.hintFor(pending[i])
			sj, _ := c.hintFor(pending[j])
			return si < sj
		})
	}
}
