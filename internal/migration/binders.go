package migration

import (
	"fmt"
	"sort"

	"dyrs/internal/cluster"
	"dyrs/internal/policy"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// PolicyBinder drives any policy.Policy as a migration binder. It owns
// everything the paper's master does around the decision — the pending
// list with O(1) tombstoning, the per-target pull buckets, the
// input-change gate, the background update ticker — and delegates the
// decision itself (which replica migrates where) to the policy's
// Begin/Assign pass.
//
// Policies with BindImmediately() == true (Ignem) skip the pending
// machinery entirely: OnMigrate assigns and enqueues on the spot, and
// no update ticker runs.
//
// With policy.DYRS this binder is byte-identical to the frozen
// pre-extraction ReferenceDYRSBinder — the differential conformance
// suite in internal/harness pins traces, stats and counters across 60
// fuzz seeds at shard counts 1/2/4.
type PolicyBinder struct {
	c   *Coordinator
	pol policy.Policy
	// views is the reusable dense NodeView table handed to the policy
	// each pass.
	views []policy.NodeView
	// pending is the master's unbound-block list, in FIFO arrival order
	// (reordered only by the configured OrderPolicy). Entries are
	// tombstoned in place when bound or removed (bi.inPending cleared)
	// and reclaimed in bulk at the next full Algorithm 1 pass, so no
	// binder operation is O(pending) per block.
	pending []*blockInfo
	dead    int // tombstoned entries still in pending
	// targets buckets the pending list by current Algorithm 1 target,
	// rebuilt on every full pass. OnPull(n) consumes bucket n from
	// heads[n] forward instead of scanning the whole pending list — at
	// datacenter scale every slave pulls every heartbeat, and the scan
	// was quadratic in cluster size.
	targets [][]*blockInfo
	heads   []int
	ticker  *sim.Ticker
	// Updates counts Algorithm 1 passes that did work; SkippedUpdates
	// counts ticks the input-change gate short-circuited.
	Updates        int
	SkippedUpdates int

	// Input-change gate: a pass is skipped when the pending set, the
	// heartbeat estimates and cluster membership are all unchanged since
	// the last pass — at datacenter scale most 500ms ticks are exactly
	// that. A pass is forced after maxSkippedPasses so targets built on
	// the NameNode's *stale* liveness view (which drifts with time, not
	// with events) are still refreshed with bounded delay.
	pendGen       uint64
	lastPendGen   uint64
	lastEstEpoch  uint64
	lastHintEpoch uint64
	lastMembers   uint64
	primed        bool
	skipped       int

	// repBuf is the reusable live-replica scratch handed to the policy;
	// per-pass numeric state lives inside the policy itself.
	repBuf []cluster.NodeID
}

// maxSkippedPasses bounds how many consecutive ticker passes the
// input-change gate may skip before forcing a full Algorithm 1 pass.
const maxSkippedPasses = 8

// DYRSBinder is the paper's binding policy — the PolicyBinder running
// the extracted policy.DYRS. The alias keeps the pre-extraction name
// working at every call site.
type DYRSBinder = PolicyBinder

// NewDYRSBinder returns the DYRS binding policy: delayed binding with
// Algorithm 1 earliest-finish targeting (§III-A).
func NewDYRSBinder() *PolicyBinder { return NewPolicyBinder(policy.NewDYRS()) }

// NewPolicyBinder wraps a target-selection policy as a binder. The
// policy must migrate (policy.HDFS and other Migrates() == false
// policies run no framework at all).
func NewPolicyBinder(p policy.Policy) *PolicyBinder {
	if !p.Migrates() {
		panic(fmt.Sprintf("migration: policy %s does not migrate; run without a coordinator instead", p.Name()))
	}
	return &PolicyBinder{pol: p}
}

// BinderByName maps a policy name to a binder: any migrating
// internal/policy name ("dyrs", "ignem", "costaware"), or "dyrs-ref"
// for the frozen pre-extraction reference implementation.
func BinderByName(name string) (Binder, error) {
	if name == "dyrs-ref" {
		return NewReferenceDYRSBinder(), nil
	}
	p, err := policy.New(name)
	if err != nil {
		return nil, err
	}
	if !p.Migrates() {
		return nil, fmt.Errorf("migration: policy %q does not migrate; use the HDFS experiment policy instead", name)
	}
	return NewPolicyBinder(p), nil
}

// BinderNames lists every name BinderByName accepts, sorted.
func BinderNames() []string {
	names := []string{"dyrs-ref"}
	for _, n := range policy.Names() {
		if p, err := policy.New(n); err == nil && p.Migrates() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Name implements Binder.
func (b *PolicyBinder) Name() string { return b.pol.Name() }

// Policy returns the wrapped target-selection policy.
func (b *PolicyBinder) Policy() policy.Policy { return b.pol }

func (b *PolicyBinder) attach(c *Coordinator) {
	b.c = c
	b.targets = make([][]*blockInfo, c.cl.Size())
	b.heads = make([]int, c.cl.Size())
	if !b.pol.BindImmediately() {
		// The target-update thread runs off the critical path of
		// master-slave coordination (§III-D). Immediate policies decide
		// at OnMigrate and need no background pass.
		b.ticker = sim.NewTicker(c.eng, c.cfg.TargetUpdateInterval, b.UpdateTargets)
	}
}

// beginPass snapshots the master's heartbeat state into the policy's
// view: liveness, per-byte estimates, queue occupancy.
func (b *PolicyBinder) beginPass() {
	n := b.c.cl.Size()
	if len(b.views) < n {
		b.views = make([]policy.NodeView, n)
	}
	for _, node := range b.c.cl.Nodes() {
		i := int(node.ID)
		if !node.Alive() {
			b.views[i].Alive = false
			continue
		}
		per, queued := b.c.Estimate(node.ID)
		b.views[i] = policy.NodeView{Alive: true, PerByte: per, Queued: queued}
	}
	b.pol.Begin(policy.View{
		Nodes:    b.views[:n],
		StdBlock: b.c.fs.Config().BlockSize,
		Rand:     b.c.eng.Rand(),
	})
}

// OnMigrate adds blocks to the pending list and refreshes targets so
// the immediately following pulls see them — or, for immediate
// policies, assigns and enqueues on the spot.
func (b *PolicyBinder) OnMigrate(blocks []*blockInfo) {
	if b.pol.BindImmediately() {
		b.beginPass()
		for _, bi := range blocks {
			b.repBuf = b.c.fs.LiveReplicas(bi.id, b.repBuf[:0])
			target, ok := b.pol.Assign(policy.Request{Block: bi.id, Size: bi.size, Replicas: b.repBuf})
			if !ok {
				b.c.transition(bi, stateNone)
				b.c.stats.Dropped++
				b.c.dropTrace(bi, "no-replica")
				continue
			}
			b.c.slaves[int(target)].enqueue(bi)
		}
		return
	}
	for _, bi := range blocks {
		if bi.inPending {
			continue
		}
		bi.inPending = true
		b.pending = append(b.pending, bi)
	}
	b.pendGen++
	b.UpdateTargets()
}

// OnPull hands the slave the pending blocks currently targeted at it, in
// FIFO order, up to the free queue space. Blocks targeted elsewhere stay
// pending even if this slave has room — leaving a slow node idle beats
// creating a straggler (§III-A2).
func (b *PolicyBinder) OnPull(n cluster.NodeID, space int) []*blockInfo {
	if space <= 0 || len(b.pending) == b.dead {
		return nil
	}
	var out []*blockInfo
	q := b.targets[int(n)]
	i := b.heads[int(n)]
	for i < len(q) && len(out) < space {
		bi := q[i]
		i++
		if !bi.inPending || !bi.hasTarget || bi.target != n {
			continue // tombstoned since the bucket was built
		}
		bi.inPending = false
		b.dead++
		out = append(out, bi)
	}
	b.heads[int(n)] = i
	if len(out) > 0 {
		b.pendGen++
	}
	return out
}

// Remove discards a pending block. The list entry is tombstoned (O(1))
// and reclaimed at the next full pass.
func (b *PolicyBinder) Remove(bi *blockInfo) {
	if !bi.inPending {
		return
	}
	bi.inPending = false
	b.dead++
	b.pendGen++
}

// PendingCount implements Binder.
func (b *PolicyBinder) PendingCount() int { return len(b.pending) - b.dead }

// Reset implements Binder (master restart).
func (b *PolicyBinder) Reset() {
	for _, bi := range b.pending {
		bi.inPending = false
	}
	b.pending = nil
	b.dead = 0
	for i := range b.targets {
		b.targets[i] = b.targets[i][:0]
		b.heads[i] = 0
	}
	b.pendGen++
}

// UpdateTargets is one full targeting pass: reclaim tombstones, apply
// the cross-job ordering policy, then run the policy's Begin/Assign
// pass over the pending list, rebuilding the per-node pull buckets.
// With policy.DYRS this is exactly the paper's Algorithm 1: each node's
// finish time initialized to migTime[node] × (numQueued[node]+1) from
// the latest heartbeat state, each block targeting "the node where
// assigning the block would result in the lowest new completion time".
func (b *PolicyBinder) UpdateTargets() {
	if len(b.pending) == b.dead {
		// Nothing live. Drop any remaining tombstones so an idle binder
		// holds no stale references.
		if len(b.pending) > 0 {
			b.pending = b.pending[:0]
			b.dead = 0
		}
		return
	}
	if b.primed &&
		b.lastPendGen == b.pendGen &&
		b.lastEstEpoch == b.c.estEpoch &&
		b.lastHintEpoch == b.c.hintEpoch &&
		b.lastMembers == b.c.cl.MembershipEpoch() &&
		b.skipped < maxSkippedPasses {
		b.skipped++
		b.SkippedUpdates++
		return
	}
	b.primed = true
	b.skipped = 0
	b.lastPendGen = b.pendGen
	b.lastEstEpoch = b.c.estEpoch
	b.lastHintEpoch = b.c.hintEpoch
	b.lastMembers = b.c.cl.MembershipEpoch()
	b.Updates++
	// Reclaim tombstones so the ordering and targeting passes below see
	// only live entries (and so handed-out blocks are not re-targeted).
	if b.dead > 0 {
		kept := b.pending[:0]
		for _, bi := range b.pending {
			if bi.inPending {
				kept = append(kept, bi)
			}
		}
		for i := len(kept); i < len(b.pending); i++ {
			b.pending[i] = nil
		}
		b.pending = kept
		b.dead = 0
	}
	// Apply the configured cross-job ordering policy before the greedy
	// pass; with FIFO this is a no-op (§III, future-work extension).
	b.c.orderPending(b.pending)
	b.beginPass()
	for i := range b.targets {
		b.targets[i] = b.targets[i][:0]
		b.heads[i] = 0
	}
	for _, bi := range b.pending {
		b.repBuf = b.c.fs.LiveReplicas(bi.id, b.repBuf[:0])
		best, ok := b.pol.Assign(policy.Request{Block: bi.id, Size: bi.size, Replicas: b.repBuf})
		if !ok {
			bi.hasTarget = false
			continue
		}
		if tr := b.c.tr; tr.Enabled() && (!bi.hasTarget || bi.target != best) {
			// Record the ordering decision only when it changes, so the
			// trace shows retargeting without one instant per pass.
			tr.Instant("migration", "target", int(best),
				trace.Int("block", int64(bi.id)))
		}
		bi.target = best
		bi.hasTarget = true
		b.targets[int(best)] = append(b.targets[int(best)], bi)
	}
}

func (b *PolicyBinder) stopBinder() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
}

// IgnemBinder implements the Ignem comparison scheme [8]: as soon as a
// migration command arrives, each block is bound to a uniformly random
// replica location. There is no pending list, no feedback, and no
// adaptation — which is exactly why Ignem collapses under bandwidth
// heterogeneity (§V-E, Fig. 8).
type IgnemBinder struct {
	c *Coordinator
}

// NewIgnemBinder returns the Ignem binding policy.
func NewIgnemBinder() *IgnemBinder { return &IgnemBinder{} }

// Name implements Binder.
func (b *IgnemBinder) Name() string { return "Ignem" }

func (b *IgnemBinder) attach(c *Coordinator) { b.c = c }

// OnMigrate binds every block immediately to a random live replica.
func (b *IgnemBinder) OnMigrate(blocks []*blockInfo) {
	for _, bi := range blocks {
		locs := b.c.fs.Replicas(bi.id)
		if len(locs) == 0 {
			b.c.transition(bi, stateNone)
			b.c.stats.Dropped++
			b.c.dropTrace(bi, "no-replica")
			continue
		}
		loc := locs[b.c.eng.Rand().Intn(len(locs))]
		b.c.slaves[int(loc)].enqueue(bi)
	}
}

// OnPull returns nothing: Ignem never delays binding.
func (b *IgnemBinder) OnPull(cluster.NodeID, int) []*blockInfo { return nil }

// Remove is a no-op; Ignem has no pending list.
func (b *IgnemBinder) Remove(*blockInfo) {}

// PendingCount implements Binder.
func (b *IgnemBinder) PendingCount() int { return 0 }

// Reset implements Binder.
func (b *IgnemBinder) Reset() {}

// NaiveBinder is the Fig. 10 comparator: delayed binding like DYRS, but
// when a slave pulls, it simply receives the oldest pending blocks that
// have a replica on it — no earliest-finish reasoning, so the last few
// migrations can land on a slow node and become stragglers.
type NaiveBinder struct {
	c       *Coordinator
	pending []*blockInfo
}

// NewNaiveBinder returns the naive load-balancing policy.
func NewNaiveBinder() *NaiveBinder { return &NaiveBinder{} }

// Name implements Binder.
func (b *NaiveBinder) Name() string { return "Naive" }

func (b *NaiveBinder) attach(c *Coordinator) { b.c = c }

// OnMigrate appends to the pending list.
func (b *NaiveBinder) OnMigrate(blocks []*blockInfo) {
	b.pending = append(b.pending, blocks...)
}

// OnPull hands over the oldest pending blocks with a replica on n.
func (b *NaiveBinder) OnPull(n cluster.NodeID, space int) []*blockInfo {
	if space <= 0 || len(b.pending) == 0 {
		return nil
	}
	var out []*blockInfo
	rest := b.pending[:0]
	for _, bi := range b.pending {
		if len(out) < space && hasReplicaOn(b.c, bi, n) {
			out = append(out, bi)
			continue
		}
		rest = append(rest, bi)
	}
	b.pending = rest
	return out
}

func hasReplicaOn(c *Coordinator, bi *blockInfo, n cluster.NodeID) bool {
	for _, loc := range c.fs.Replicas(bi.id) {
		if loc == n {
			return true
		}
	}
	return false
}

// Remove discards a pending block.
func (b *NaiveBinder) Remove(bi *blockInfo) {
	for i, p := range b.pending {
		if p == bi {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// PendingCount implements Binder.
func (b *NaiveBinder) PendingCount() int { return len(b.pending) }

// Reset implements Binder.
func (b *NaiveBinder) Reset() { b.pending = nil }

// stoppable is implemented by binders owning background tickers.
type stoppable interface{ stopBinder() }
