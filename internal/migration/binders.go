package migration

import (
	"dyrs/internal/cluster"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// DYRSBinder implements the paper's binding policy: migrations stay
// pending at the master for as long as possible; a background thread
// periodically re-runs Algorithm 1 to set the target replica of every
// pending block to the node expected to finish it earliest; and a block
// is bound to a slave only when that slave pulls work and is the block's
// current target (§III-A).
type DYRSBinder struct {
	c       *Coordinator
	pending []*blockInfo
	ticker  *sim.Ticker
	// Updates counts Algorithm 1 passes, for the scalability bench.
	Updates int
}

// NewDYRSBinder returns the DYRS binding policy.
func NewDYRSBinder() *DYRSBinder { return &DYRSBinder{} }

// Name implements Binder.
func (b *DYRSBinder) Name() string { return "DYRS" }

func (b *DYRSBinder) attach(c *Coordinator) {
	b.c = c
	// The target-update thread runs off the critical path of
	// master-slave coordination (§III-D).
	b.ticker = sim.NewTicker(c.eng, c.cfg.TargetUpdateInterval, b.UpdateTargets)
}

// OnMigrate adds blocks to the pending list and refreshes targets so the
// immediately following pulls see them.
func (b *DYRSBinder) OnMigrate(blocks []*blockInfo) {
	b.pending = append(b.pending, blocks...)
	b.UpdateTargets()
}

// OnPull hands the slave the pending blocks currently targeted at it, in
// FIFO order, up to the free queue space. Blocks targeted elsewhere stay
// pending even if this slave has room — leaving a slow node idle beats
// creating a straggler (§III-A2).
func (b *DYRSBinder) OnPull(n cluster.NodeID, space int) []*blockInfo {
	if space <= 0 || len(b.pending) == 0 {
		return nil
	}
	var out []*blockInfo
	rest := b.pending[:0]
	for _, bi := range b.pending {
		if len(out) < space && bi.hasTarget && bi.target == n {
			out = append(out, bi)
			continue
		}
		rest = append(rest, bi)
	}
	b.pending = rest
	return out
}

// Remove discards a pending block.
func (b *DYRSBinder) Remove(bi *blockInfo) {
	for i, p := range b.pending {
		if p == bi {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// PendingCount implements Binder.
func (b *DYRSBinder) PendingCount() int { return len(b.pending) }

// Reset implements Binder (master restart).
func (b *DYRSBinder) Reset() { b.pending = nil }

// UpdateTargets is Algorithm 1: greedily set each pending block's target
// to the replica location where it is expected to finish migrating
// earliest, keeping a running per-node finish-time estimate.
//
// Per the paper, each node's finish time is initialized to
// migTime[node] × (numQueued[node]+1) from the latest heartbeat state,
// and choosing a target uses "the node where assigning the block would
// result in the lowest new completion time", i.e. finish + migTime for
// this block's size.
func (b *DYRSBinder) UpdateTargets() {
	if len(b.pending) == 0 {
		return
	}
	b.Updates++
	// Apply the configured cross-job ordering policy before the greedy
	// pass; with FIFO this is a no-op (§III, future-work extension).
	b.c.orderPending(b.pending)
	finish := make(map[cluster.NodeID]float64, b.c.cl.Size())
	perByte := make(map[cluster.NodeID]float64, b.c.cl.Size())
	std := float64(b.c.fs.Config().BlockSize)
	for _, node := range b.c.cl.Nodes() {
		if !node.Alive() {
			continue
		}
		per, queued := b.c.Estimate(node.ID)
		perByte[node.ID] = per
		finish[node.ID] = per * std * float64(queued+1)
	}
	for _, bi := range b.pending {
		best := cluster.NodeID(-1)
		bestFinish := 0.0
		size := float64(bi.block.Size)
		for _, loc := range b.c.fs.Replicas(bi.block.ID) {
			per, ok := perByte[loc]
			if !ok {
				continue
			}
			f := finish[loc] + per*size
			if best < 0 || f < bestFinish {
				best = loc
				bestFinish = f
			}
		}
		if best < 0 {
			bi.hasTarget = false
			continue
		}
		if tr := b.c.tr; tr.Enabled() && (!bi.hasTarget || bi.target != best) {
			// Record the ordering decision only when it changes, so the
			// trace shows retargeting without one instant per pass.
			tr.Instant("migration", "target", int(best),
				trace.Int("block", int64(bi.block.ID)))
		}
		bi.target = best
		bi.hasTarget = true
		finish[best] = bestFinish
	}
}

func (b *DYRSBinder) stopBinder() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
}

// IgnemBinder implements the Ignem comparison scheme [8]: as soon as a
// migration command arrives, each block is bound to a uniformly random
// replica location. There is no pending list, no feedback, and no
// adaptation — which is exactly why Ignem collapses under bandwidth
// heterogeneity (§V-E, Fig. 8).
type IgnemBinder struct {
	c *Coordinator
}

// NewIgnemBinder returns the Ignem binding policy.
func NewIgnemBinder() *IgnemBinder { return &IgnemBinder{} }

// Name implements Binder.
func (b *IgnemBinder) Name() string { return "Ignem" }

func (b *IgnemBinder) attach(c *Coordinator) { b.c = c }

// OnMigrate binds every block immediately to a random live replica.
func (b *IgnemBinder) OnMigrate(blocks []*blockInfo) {
	for _, bi := range blocks {
		locs := b.c.fs.Replicas(bi.block.ID)
		if len(locs) == 0 {
			bi.state = stateNone
			b.c.stats.Dropped++
			b.c.dropTrace(bi, "no-replica")
			continue
		}
		loc := locs[b.c.eng.Rand().Intn(len(locs))]
		b.c.slaves[int(loc)].enqueue(bi)
	}
}

// OnPull returns nothing: Ignem never delays binding.
func (b *IgnemBinder) OnPull(cluster.NodeID, int) []*blockInfo { return nil }

// Remove is a no-op; Ignem has no pending list.
func (b *IgnemBinder) Remove(*blockInfo) {}

// PendingCount implements Binder.
func (b *IgnemBinder) PendingCount() int { return 0 }

// Reset implements Binder.
func (b *IgnemBinder) Reset() {}

// NaiveBinder is the Fig. 10 comparator: delayed binding like DYRS, but
// when a slave pulls, it simply receives the oldest pending blocks that
// have a replica on it — no earliest-finish reasoning, so the last few
// migrations can land on a slow node and become stragglers.
type NaiveBinder struct {
	c       *Coordinator
	pending []*blockInfo
}

// NewNaiveBinder returns the naive load-balancing policy.
func NewNaiveBinder() *NaiveBinder { return &NaiveBinder{} }

// Name implements Binder.
func (b *NaiveBinder) Name() string { return "Naive" }

func (b *NaiveBinder) attach(c *Coordinator) { b.c = c }

// OnMigrate appends to the pending list.
func (b *NaiveBinder) OnMigrate(blocks []*blockInfo) {
	b.pending = append(b.pending, blocks...)
}

// OnPull hands over the oldest pending blocks with a replica on n.
func (b *NaiveBinder) OnPull(n cluster.NodeID, space int) []*blockInfo {
	if space <= 0 || len(b.pending) == 0 {
		return nil
	}
	var out []*blockInfo
	rest := b.pending[:0]
	for _, bi := range b.pending {
		if len(out) < space && hasReplicaOn(b.c, bi, n) {
			out = append(out, bi)
			continue
		}
		rest = append(rest, bi)
	}
	b.pending = rest
	return out
}

func hasReplicaOn(c *Coordinator, bi *blockInfo, n cluster.NodeID) bool {
	for _, loc := range c.fs.Replicas(bi.block.ID) {
		if loc == n {
			return true
		}
	}
	return false
}

// Remove discards a pending block.
func (b *NaiveBinder) Remove(bi *blockInfo) {
	for i, p := range b.pending {
		if p == bi {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// PendingCount implements Binder.
func (b *NaiveBinder) PendingCount() int { return len(b.pending) }

// Reset implements Binder.
func (b *NaiveBinder) Reset() { b.pending = nil }

// stoppable is implemented by binders owning background tickers.
type stoppable interface{ stopBinder() }
