package migration

import (
	"dyrs/internal/cluster"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// estimator tracks a slave's migration speed as an EWMA over
// seconds-per-byte, so estimates stay meaningful when block sizes vary.
// The paper tracks per-block migration durations (§IV-A); normalizing by
// size is the same estimator generalized to mixed block sizes.
type estimator struct {
	ewma *metrics.EWMA
	seed float64 // seconds per byte at nominal disk bandwidth
}

func newEstimator(alpha float64, nominalBW float64) *estimator {
	e := &estimator{ewma: metrics.NewEWMA(alpha), seed: 1 / nominalBW}
	e.ewma.Set(e.seed)
	return e
}

// observe incorporates a migration that moved size bytes in seconds.
func (e *estimator) observe(seconds float64, size sim.Bytes) {
	e.ewma.Observe(seconds / float64(size))
}

// perByte reports the current estimate in seconds per byte.
func (e *estimator) perByte() float64 { return e.ewma.Value() }

// blockSeconds estimates the migration time for a block of the given size.
func (e *estimator) blockSeconds(size sim.Bytes) float64 {
	return e.ewma.Value() * float64(size)
}

// reset returns the estimator to its seeded state (slave restart).
func (e *estimator) reset() { e.ewma.Set(e.seed) }

// activeMigration is one in-flight disk-to-memory transfer.
type activeMigration struct {
	flow    *sim.Flow
	started sim.Time
	span    trace.SpanRef // rate-controlled transfer span, child of the block's migration span
}

// Slave is the per-DataNode migration agent: it keeps a short local FIFO
// queue of bound migrations, performs them subject to the policy's
// concurrency limit (DYRS serializes to limit disk seek thrash, §III-B),
// maintains the migration-time estimate, and enforces the memory hard
// limit.
type Slave struct {
	c    *Coordinator
	node *cluster.Node

	queue  []*blockInfo
	active map[*blockInfo]*activeMigration

	estimator *estimator
	depth     int
	memLimit  sim.Bytes
	maxActive int

	ticker    *sim.Ticker
	stopped   bool
	estSeries *metrics.TimeSeries

	// Migrations counts completed migrations on this slave.
	Migrations int
	// BytesMigrated counts bytes moved into memory on this slave.
	BytesMigrated sim.Bytes
	// BlockedOnMemory counts migration attempts deferred by the hard
	// memory limit.
	BlockedOnMemory int
}

func newSlave(c *Coordinator, node *cluster.Node) *Slave {
	maxActive := c.cfg.MaxConcurrent
	if maxActive <= 0 {
		maxActive = 1
	}
	s := &Slave{
		c:         c,
		node:      node,
		active:    make(map[*blockInfo]*activeMigration),
		estimator: newEstimator(c.cfg.EWMAAlpha, node.Cfg.DiskBandwidth),
		depth:     c.cfg.queueDepth(c.fs.Config().BlockSize, node.Cfg.DiskBandwidth),
		memLimit:  sim.Bytes(c.cfg.MemLimitFraction * float64(node.Cfg.MemCapacity)),
		maxActive: maxActive,
	}
	if !c.cfg.DisableEstimateSeries {
		s.estSeries = metrics.NewTimeSeries(node.ID.String())
	}
	s.ticker = sim.NewTicker(c.eng, c.cfg.Heartbeat, s.tick)
	return s
}

// Node returns the cluster node this slave runs on.
func (s *Slave) Node() *cluster.Node { return s.node }

// QueueDepth reports the configured local queue depth.
func (s *Slave) QueueDepth() int { return s.depth }

// EstimateBlockSeconds reports the slave's current estimate of the time
// to migrate one block of the given size.
func (s *Slave) EstimateBlockSeconds(size sim.Bytes) float64 {
	return s.estimator.blockSeconds(size)
}

// occupancy counts queued plus active migrations.
func (s *Slave) occupancy() int {
	return len(s.queue) + len(s.active)
}

// tick is the heartbeat: refresh the estimate (including the in-progress
// inflation of §IV-A), report to the master, scavenge if needed, pull
// more work, and make sure the disk is busy.
func (s *Slave) tick() {
	if s.stopped || !s.node.Alive() {
		return
	}
	// In-progress inflation: once an active migration has run longer than
	// its estimate, fold the elapsed time into the estimate every
	// heartbeat rather than waiting for completion (§IV-A). This is what
	// makes DYRS react quickly when residual bandwidth suddenly drops.
	// With several concurrent migrations, the longest-running one is the
	// strongest signal.
	if !s.c.cfg.DisableInProgressUpdates {
		var worst *blockInfo
		var worstElapsed float64
		for bi, am := range s.active {
			elapsed := s.c.eng.Now().Sub(am.started).Seconds()
			if elapsed > s.estimator.blockSeconds(bi.size) && elapsed > worstElapsed {
				worst, worstElapsed = bi, elapsed
			}
		}
		if worst != nil {
			s.estimator.observe(worstElapsed, worst.size)
		}
	}
	s.c.onHeartbeat(s.node.ID, s.estimator.perByte(), s.occupancy())
	if s.estSeries != nil {
		s.estSeries.Record(s.c.eng.Now().Seconds(), s.estimator.blockSeconds(s.c.fs.Config().BlockSize))
	}

	if used := s.c.fs.DataNode(s.node.ID).MemUsed(); float64(used) > s.c.cfg.ScavengeThreshold*float64(s.memLimit) {
		s.scavenge()
	}

	s.pull()
	s.kick()
}

// pull asks the binder for more work when the local queue has space —
// the slave querying the master (§III-A1).
func (s *Slave) pull() {
	if s.stopped || !s.node.Alive() {
		return
	}
	space := s.depth - s.occupancy()
	if space <= 0 {
		return
	}
	for _, bi := range s.c.binder.OnPull(s.node.ID, space) {
		s.enqueue(bi)
	}
}

// enqueue binds a block to this slave's local queue.
func (s *Slave) enqueue(bi *blockInfo) {
	s.c.transition(bi, stateQueued)
	bi.slave = s.node.ID
	bi.enqueuedAt = s.c.eng.Now()
	s.queue = append(s.queue, bi)
	s.c.hQueue.Observe(int64(len(s.queue)))
	if tr := s.c.tr; tr.Enabled() {
		bi.span.Annotate(trace.Int("slave", int64(s.node.ID)),
			trace.Dur("bound-after", s.c.eng.Now().Sub(bi.span.Begin())))
		tr.Instant("migration", "bind", int(s.node.ID),
			trace.Int("block", int64(bi.id)))
	}
}

// dequeue removes a queued block (eviction / missed read).
func (s *Slave) dequeue(bi *blockInfo) {
	for i, q := range s.queue {
		if q == bi {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// kick starts queued migrations while the concurrency limit allows.
func (s *Slave) kick() {
	if s.stopped || !s.node.Alive() {
		return
	}
	for len(s.active) < s.maxActive && len(s.queue) > 0 {
		next := s.queue[0]
		dn := s.c.fs.DataNode(s.node.ID)
		if dn.MemUsed()+next.size > s.memLimit {
			// Hard limit reached: leave the command queued until buffer
			// space frees up or the block is discarded on a missed read
			// (§IV-A1).
			s.BlockedOnMemory++
			return
		}
		s.queue = s.queue[1:]
		s.c.transition(next, stateMigrating)
		am := &activeMigration{started: s.c.eng.Now()}
		s.active[next] = am
		if tr := s.c.tr; tr.Enabled() {
			am.span = next.span.Child("migration", "transfer", int(s.node.ID),
				trace.Int("block", int64(next.id)),
				trace.Int("size", int64(next.size)),
				trace.Float("io-weight", s.c.cfg.IOWeight))
		}
		flow, err := dn.MigrateToMemory(next.id, s.c.cfg.IOWeight, func(d sim.Duration) {
			s.finish(next, d)
		})
		if err != nil {
			// Bound to a node that no longer holds a replica (should not
			// happen with a correct binder); drop the migration.
			delete(s.active, next)
			s.c.transition(next, stateNone)
			s.c.stats.Dropped++
			if tr := s.c.tr; tr.Enabled() {
				am.span.End(trace.Str("outcome", "failed"))
			}
			s.c.dropTrace(next, "no-replica")
			continue
		}
		am.flow = flow
	}
}

// finish completes an active migration: update the estimator with the
// true duration, publish the in-memory replica, and continue.
func (s *Slave) finish(bi *blockInfo, d sim.Duration) {
	s.estimator.observe(d.Seconds(), bi.size)
	s.Migrations++
	s.BytesMigrated += bi.size
	s.c.hTransfer.Observe(int64(bi.size))
	if tr := s.c.tr; tr.Enabled() {
		if am := s.active[bi]; am != nil {
			am.span.End(trace.Str("outcome", "completed"))
		}
		bi.span.End(trace.Str("outcome", "pinned"), trace.Int("slave", int64(s.node.ID)))
		tr.Inc("migration.completed")
		tr.Add("migration.bytes", bi.size)
	}
	delete(s.active, bi)
	s.c.onMigrated(bi, s.node.ID)
	s.kick()
}

// abortActive cancels the in-flight migration of bi, freeing the disk
// for foreground reads, and moves on to the next queued block.
func (s *Slave) abortActive(bi *blockInfo) {
	am, ok := s.active[bi]
	if !ok {
		return
	}
	if am.flow != nil {
		am.flow.Cancel()
	}
	if tr := s.c.tr; tr.Enabled() {
		am.span.End(trace.Str("outcome", "aborted"))
		tr.Inc("migration.aborted")
	}
	delete(s.active, bi)
	s.kick()
}

// scavenge clears reference-list entries for jobs the cluster scheduler
// no longer reports as active, then evicts blocks whose lists emptied —
// the memory-leak guard of §III-C3. It walks the node's actual resident
// buffers (in block-ID order, for determinism) rather than the master's
// reference lists, so replicas the master no longer tracks — orphaned by
// a fail-over that wiped the reference lists (§III-C1) — are reclaimed
// instead of occupying the buffer forever.
func (s *Slave) scavenge() {
	for _, id := range s.c.fs.DataNode(s.node.ID).MemBlockIDs() {
		bi := s.c.blockRecord(id)
		if bi == nil || bi.state != stateInMemory || bi.slave != s.node.ID {
			// Resident but unreferenced by the master: an orphan left by a
			// restart. Drop the buffer directly.
			s.c.fs.DropMem(id, s.node.ID)
			s.c.stats.Evicted++
			continue
		}
		// Walk by index; remove swaps the last element into the hole, so
		// the index is only advanced when the current entry survives.
		for i := 0; i < len(bi.refs); {
			job := bi.refs[i]
			if !s.c.sched.JobActive(job) {
				bi.refs.remove(job)
				bi.implicit.remove(job)
			} else {
				i++
			}
		}
		s.c.maybeRelease(bi)
	}
}

// stop halts the slave's heartbeat.
func (s *Slave) stop() {
	s.stopped = true
	s.ticker.Stop()
}
