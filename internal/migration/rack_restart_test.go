package migration

import (
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// TestRackIndexAcrossMasterRestart proves a migration-master fail-over
// never disturbs the NameNode's per-rack replica index: the disk
// catalog is the master's input, not its soft state. In-memory replicas
// survive the restart at the slaves (§III-C1), are reclaimed by
// scavenging once orphaned, and the framework accepts new work against
// the unchanged rack topology afterwards.
func TestRackIndexAcrossMasterRestart(t *testing.T) {
	const nodes, racks, blocks = 12, 4, 48
	eng := sim.NewEngine(21)
	cl := cluster.New(eng, nodes, nil)
	cl.ConfigureRacks(racks, 0)
	fs := dfs.New(cl, dfs.DefaultConfig())
	c := NewCoordinator(fs, DefaultConfig(), NewDYRSBinder())

	if _, err := fs.CreateFile("in", blocks*fs.Config().BlockSize); err != nil {
		t.Fatal(err)
	}
	countsByRack := func() []int {
		out := make([]int, racks)
		for r := range out {
			out[r] = fs.RackBlockCount(r)
		}
		return out
	}
	fsckClean := func(when string) {
		t.Helper()
		for _, err := range fs.Fsck() {
			t.Errorf("fsck %s: %v", when, err)
		}
	}
	before := countsByRack()

	if err := c.Migrate(1, []string{"in"}, false); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(10 * time.Minute))
	if got := fs.MemReplicaCount(); got != blocks {
		t.Fatalf("migrated %d of %d blocks before restart", got, blocks)
	}
	fsckClean("after migration")

	c.RestartMaster()
	for r, want := range before {
		if got := fs.RackBlockCount(r); got != want {
			t.Errorf("rack %d count changed across master restart: %d -> %d", r, want, got)
		}
	}
	if got := fs.MemReplicaCount(); got != blocks {
		t.Errorf("restart dropped slave-held memory replicas: %d of %d left", got, blocks)
	}
	fsckClean("after master restart")

	// The new master has no reference lists; every buffered block is an
	// orphan and scavenging reclaims it.
	c.ScavengeAll()
	eng.RunFor(10 * time.Second)
	if got := fs.MemReplicaCount(); got != 0 {
		t.Errorf("%d memory replicas survived scavenging", got)
	}
	if got := fs.TotalMemUsed(); got != 0 {
		t.Errorf("%d buffered bytes survived scavenging", got)
	}
	fsckClean("after scavenging")

	// The rack index is still intact, so a fresh job migrates fully.
	if err := c.Migrate(2, []string{"in"}, false); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * time.Minute)
	if got := fs.MemReplicaCount(); got != blocks {
		t.Errorf("re-migration after restart landed %d of %d blocks", got, blocks)
	}
	for r, want := range before {
		if got := fs.RackBlockCount(r); got != want {
			t.Errorf("rack %d count changed across re-migration: %d -> %d", r, want, got)
		}
	}
	fsckClean("after re-migration")
	c.Shutdown()
}
