package migration

import (
	"time"

	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// RateController adaptively adjusts the migration streams' IO weight in
// the spirit of Aqueduct (Lu, Alvarez, Wilkes — FAST'02), which the
// paper names as complementary to DYRS for controlling the impact of
// background migration on foreground work (§VI): when foreground traffic
// is present on the disks, migration priority decays multiplicatively;
// when the disks are otherwise idle, it recovers additively up to full
// priority. AIMD keeps the controller stable under shifting load.
type RateController struct {
	c      *Coordinator
	ticker *sim.Ticker

	// MinWeight and MaxWeight bound the migration IO weight.
	MinWeight, MaxWeight float64
	// DecayFactor is the multiplicative decrease applied while
	// foreground traffic shares a disk with migrations.
	DecayFactor float64
	// RecoverStep is the additive increase applied while the disks
	// carrying migrations are otherwise idle.
	RecoverStep float64

	// Adjustments counts weight changes, for tests and reporting.
	Adjustments int
}

// NewRateController attaches an AIMD controller to the coordinator,
// sampling at the given interval. The controller owns cfg.IOWeight from
// this point on.
func NewRateController(c *Coordinator, interval time.Duration) *RateController {
	if interval <= 0 {
		interval = time.Second
	}
	rc := &RateController{
		c:           c,
		MinWeight:   0.05,
		MaxWeight:   1.0,
		DecayFactor: 0.5,
		RecoverStep: 0.1,
	}
	rc.ticker = sim.NewTicker(c.eng, interval, rc.tick)
	return rc
}

// Weight reports the current migration IO weight.
func (rc *RateController) Weight() float64 { return rc.c.cfg.IOWeight }

// Stop halts the controller.
func (rc *RateController) Stop() { rc.ticker.Stop() }

// tick inspects every disk that is running a migration: if any of them
// also carries foreground flows, decay; if all are migration-only,
// recover.
func (rc *RateController) tick() {
	contended := false
	activeAnywhere := false
	for _, s := range rc.c.slaves {
		n := len(s.active)
		if n == 0 {
			continue
		}
		activeAnywhere = true
		// The disk's flow count beyond this slave's own migrations is
		// foreground traffic (task reads, interference).
		if s.node.Disk.ActiveFlows() > n {
			contended = true
			break
		}
	}
	if !activeAnywhere {
		return // nothing to control
	}
	w := rc.c.cfg.IOWeight
	if contended {
		w *= rc.DecayFactor
		if w < rc.MinWeight {
			w = rc.MinWeight
		}
	} else {
		w += rc.RecoverStep
		if w > rc.MaxWeight {
			w = rc.MaxWeight
		}
	}
	if w != rc.c.cfg.IOWeight {
		if tr := rc.c.tr; tr.Enabled() {
			tr.Instant("migration", "throttle", trace.NodeMaster,
				trace.Float("weight", w),
				trace.Float("prev", rc.c.cfg.IOWeight),
				trace.Str("direction", throttleDirection(contended)))
			tr.Inc("migration.throttle")
		}
		rc.c.cfg.IOWeight = w
		rc.Adjustments++
	}
}

// throttleDirection names the AIMD branch for trace attributes.
func throttleDirection(contended bool) string {
	if contended {
		return "decay"
	}
	return "recover"
}
