package migration

import (
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// testRig bundles a small simulated cluster with a migration framework.
type testRig struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *dfs.FS
	c   *Coordinator
}

func newRig(t *testing.T, seed int64, nodes int, binder Binder, cfgNode func(int) cluster.NodeConfig, cfg Config) *testRig {
	t.Helper()
	eng := sim.NewEngine(seed)
	cl := cluster.New(eng, nodes, cfgNode)
	fsCfg := dfs.DefaultConfig()
	if fsCfg.Replication > nodes {
		fsCfg.Replication = nodes
	}
	fs := dfs.New(cl, fsCfg)
	c := NewCoordinator(fs, cfg, binder)
	return &testRig{eng: eng, cl: cl, fs: fs, c: c}
}

func (r *testRig) mkFile(t *testing.T, name string, blocks int) *dfs.File {
	t.Helper()
	f, err := r.fs.CreateFile(name, sim.Bytes(blocks)*r.fs.Config().BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDYRSMigratesWholeFile(t *testing.T) {
	r := newRig(t, 1, 4, NewDYRSBinder(), nil, DefaultConfig())
	f := r.mkFile(t, "in", 8)
	if err := r.c.Migrate(1, []string{"in"}, false); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(sim.Time(60 * time.Second))
	st := r.c.Stats()
	if st.Requested != 8 || st.Migrated != 8 {
		t.Fatalf("requested=%d migrated=%d, want 8/8", st.Requested, st.Migrated)
	}
	for _, id := range f.Blocks {
		if _, ok := r.fs.MemReplica(id); !ok {
			t.Errorf("block %d not in memory", id)
		}
	}
	if st.BytesMigrated != 8*r.fs.Config().BlockSize {
		t.Errorf("bytes migrated = %d", st.BytesMigrated)
	}
	if r.c.PendingBlocks() != 0 || r.c.QueuedBlocks() != 0 {
		t.Errorf("leftover pending=%d queued=%d", r.c.PendingBlocks(), r.c.QueuedBlocks())
	}
	r.c.Shutdown()
}

func TestMigrateUnknownFile(t *testing.T) {
	r := newRig(t, 1, 4, NewDYRSBinder(), nil, DefaultConfig())
	if err := r.c.Migrate(1, []string{"nope"}, false); err == nil {
		t.Error("expected error for unknown file")
	}
}

func TestDYRSAvoidsSlowNode(t *testing.T) {
	slowCfg := func(i int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		if i == 0 {
			c.DiskScale = 0.08
		}
		return c
	}
	r := newRig(t, 2, 4, NewDYRSBinder(), slowCfg, DefaultConfig())
	r.mkFile(t, "in", 40)
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(10 * time.Minute))
	st := r.c.Stats()
	if st.Migrated != 40 {
		t.Fatalf("migrated = %d, want 40", st.Migrated)
	}
	slow := r.c.Slave(0).Migrations
	var fast int
	for i := 1; i < 4; i++ {
		fast += r.c.Slave(cluster.NodeID(i)).Migrations
	}
	// The slow node runs at 8% speed; DYRS should route the bulk of
	// migrations to the fast nodes once the estimate adapts.
	if slow > 6 {
		t.Errorf("slow node performed %d of 40 migrations (fast: %d)", slow, fast)
	}
	r.c.Shutdown()
}

func TestIgnemBindsImmediatelyAndEvenly(t *testing.T) {
	slowCfg := func(i int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		if i == 0 {
			c.DiskScale = 0.08
		}
		return c
	}
	r := newRig(t, 3, 4, NewIgnemBinder(), slowCfg, DefaultConfig())
	r.mkFile(t, "in", 40)
	r.c.Migrate(1, []string{"in"}, false)
	if r.c.PendingBlocks() != 0 {
		t.Errorf("Ignem left %d pending", r.c.PendingBlocks())
	}
	if got := r.c.QueuedBlocks(); got != 40 {
		t.Errorf("queued = %d, want 40 (immediate binding)", got)
	}
	r.eng.RunUntil(sim.Time(30 * time.Minute))
	if st := r.c.Stats(); st.Migrated != 40 {
		t.Fatalf("migrated = %d", st.Migrated)
	}
	// Random binding ignores the slow node: it gets roughly its
	// proportional share of bound migrations despite being 12x slower.
	slow := r.c.Slave(0).Migrations
	if slow < 3 {
		t.Errorf("Ignem unexpectedly avoided the slow node: %d migrations", slow)
	}
	r.c.Shutdown()
}

func TestReadsRedirectAfterMigration(t *testing.T) {
	r := newRig(t, 4, 4, NewDYRSBinder(), nil, DefaultConfig())
	f := r.mkFile(t, "in", 2)
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(30 * time.Second))
	var res dfs.ReadResult
	r.fs.ReadBlock(0, f.Blocks[0], func(rr dfs.ReadResult) { res = rr })
	r.eng.RunUntil(sim.Time(40 * time.Second))
	if !res.Source.FromMemory() {
		t.Errorf("read source = %v, want memory", res.Source)
	}
	r.c.Shutdown()
}

func TestExplicitEvict(t *testing.T) {
	r := newRig(t, 5, 4, NewDYRSBinder(), nil, DefaultConfig())
	f := r.mkFile(t, "in", 4)
	r.c.Migrate(7, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(60 * time.Second))
	if r.fs.MemReplicaCount() != 4 {
		t.Fatalf("in memory = %d, want 4", r.fs.MemReplicaCount())
	}
	r.c.Evict(7)
	if r.fs.MemReplicaCount() != 0 || r.fs.TotalMemUsed() != 0 {
		t.Errorf("eviction left %d blocks, %d bytes", r.fs.MemReplicaCount(), r.fs.TotalMemUsed())
	}
	if st := r.c.Stats(); st.Evicted != 4 {
		t.Errorf("evicted = %d", st.Evicted)
	}
	_ = f
	r.c.Shutdown()
}

func TestSharedBlockSurvivesOneJobsEviction(t *testing.T) {
	r := newRig(t, 6, 4, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 2)
	r.c.Migrate(1, []string{"in"}, false)
	r.c.Migrate(2, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(60 * time.Second))
	if r.fs.MemReplicaCount() != 2 {
		t.Fatalf("in memory = %d", r.fs.MemReplicaCount())
	}
	r.c.Evict(1)
	if r.fs.MemReplicaCount() != 2 {
		t.Error("block evicted while job 2 still references it")
	}
	r.c.Evict(2)
	if r.fs.MemReplicaCount() != 0 {
		t.Error("block not evicted after last reference removed")
	}
	r.c.Shutdown()
}

func TestImplicitEvictionOnRead(t *testing.T) {
	r := newRig(t, 7, 4, NewDYRSBinder(), nil, DefaultConfig())
	f := r.mkFile(t, "in", 2)
	r.c.Migrate(1, []string{"in"}, true)
	r.eng.RunUntil(sim.Time(60 * time.Second))
	if r.fs.MemReplicaCount() != 2 {
		t.Fatalf("in memory = %d", r.fs.MemReplicaCount())
	}
	r.c.NoteRead(1, f.Blocks[0])
	if r.fs.MemReplicaCount() != 1 {
		t.Errorf("implicit eviction did not fire: %d in memory", r.fs.MemReplicaCount())
	}
	if st := r.c.Stats(); st.MemoryHits != 1 {
		t.Errorf("memory hits = %d", st.MemoryHits)
	}
	r.c.Shutdown()
}

func TestExplicitModeIgnoresReads(t *testing.T) {
	r := newRig(t, 8, 4, NewDYRSBinder(), nil, DefaultConfig())
	f := r.mkFile(t, "in", 2)
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(60 * time.Second))
	r.c.NoteRead(1, f.Blocks[0])
	if r.fs.MemReplicaCount() != 2 {
		t.Errorf("explicit-mode read evicted a block")
	}
	r.c.Shutdown()
}

func TestMissedReadCancelsPendingMigration(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 9, 4, NewDYRSBinder(), nil, cfg)
	f := r.mkFile(t, "in", 30)
	r.c.Migrate(1, []string{"in"}, true)
	// Immediately read a block before any real chance to migrate it; with
	// 30 blocks pending, most are still unbound.
	lastID := f.Blocks[len(f.Blocks)-1]
	r.eng.RunUntil(sim.Time(10 * time.Millisecond))
	before := r.c.PendingBlocks() + r.c.QueuedBlocks()
	r.c.NoteRead(1, lastID)
	after := r.c.PendingBlocks() + r.c.QueuedBlocks()
	st := r.c.Stats()
	if st.MissedReads != 1 {
		t.Errorf("missed reads = %d", st.MissedReads)
	}
	if bi := r.c.blockRecord(lastID); bi.state == statePending || bi.state == stateQueued {
		t.Errorf("missed-read block still %v", bi.state)
	}
	if after >= before {
		t.Errorf("pipeline did not shrink: %d -> %d", before, after)
	}
	r.eng.RunUntil(sim.Time(5 * time.Minute))
	if got := r.c.Stats().Migrated; got != 29 {
		t.Errorf("migrated = %d, want 29 (one cancelled)", got)
	}
	r.c.Shutdown()
}

func TestMemoryHardLimitBlocksThenResumes(t *testing.T) {
	nodeCfg := func(int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		c.MemCapacity = 512 * sim.MB // room for 2 blocks per node
		return c
	}
	r := newRig(t, 10, 2, NewDYRSBinder(), nodeCfg, DefaultConfig())
	// 2 nodes x 2 blocks = 4 blocks fit; request 8.
	f := r.mkFile(t, "in", 8)
	r.c.Migrate(1, []string{"in"}, true)
	r.eng.RunUntil(sim.Time(2 * time.Minute))
	st := r.c.Stats()
	if st.Migrated >= 8 {
		t.Fatalf("all 8 migrated despite 4-block capacity")
	}
	if r.fs.TotalMemUsed() > 1024*sim.MB {
		t.Fatalf("memory over hard limit: %d", r.fs.TotalMemUsed())
	}
	blocked := r.c.Slave(0).BlockedOnMemory + r.c.Slave(1).BlockedOnMemory
	if blocked == 0 {
		t.Error("no migration was ever blocked on memory")
	}
	// Reads free memory (implicit eviction), letting the rest migrate.
	for _, id := range f.Blocks {
		r.c.NoteRead(1, id)
	}
	r.eng.RunUntil(sim.Time(10 * time.Minute))
	if r.fs.TotalMemUsed() != 0 {
		t.Errorf("memory not drained: %d", r.fs.TotalMemUsed())
	}
	r.c.Shutdown()
}

func TestScavengeReclaimsDeadJobs(t *testing.T) {
	nodeCfg := func(int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		c.MemCapacity = 1024 * sim.MB
		return c
	}
	cfg := DefaultConfig()
	cfg.ScavengeThreshold = 0.4
	r := newRig(t, 11, 2, NewDYRSBinder(), nodeCfg, cfg)
	r.mkFile(t, "in", 6)
	dead := map[JobID]bool{}
	r.c.SetScheduler(jobCheckerFunc(func(j JobID) bool { return !dead[j] }))
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(90 * time.Second))
	if r.fs.MemReplicaCount() == 0 {
		t.Fatal("nothing migrated")
	}
	// Job 1 dies without evicting; scavenging must reclaim its blocks
	// once usage exceeds the threshold.
	dead[1] = true
	r.eng.RunUntil(sim.Time(3 * time.Minute))
	if r.fs.MemReplicaCount() != 0 {
		t.Errorf("scavenge left %d blocks resident", r.fs.MemReplicaCount())
	}
	r.c.Shutdown()
}

type jobCheckerFunc func(JobID) bool

func (f jobCheckerFunc) JobActive(j JobID) bool { return f(j) }

func TestSlaveProcessRestartDropsBuffers(t *testing.T) {
	r := newRig(t, 12, 4, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 12)
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(5 * time.Second))
	// Pick a node that has buffered or queued something.
	var victim cluster.NodeID = -1
	for i := 0; i < 4; i++ {
		if r.fs.DataNode(cluster.NodeID(i)).MemUsed() > 0 || r.c.Slave(cluster.NodeID(i)).occupancy() > 0 {
			victim = cluster.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no node had state at 5s with this seed")
	}
	r.c.RestartSlaveProcess(victim)
	if r.fs.DataNode(victim).MemUsed() != 0 {
		t.Error("restart left buffered bytes")
	}
	if r.c.Slave(victim).occupancy() != 0 {
		t.Error("restart left queued work")
	}
	// The system keeps functioning afterwards.
	r.eng.RunUntil(sim.Time(5 * time.Minute))
	if st := r.c.Stats(); st.Migrated == 0 {
		t.Error("no migrations completed after slave restart")
	}
	r.c.Shutdown()
}

func TestMasterRestartKeepsSystemAlive(t *testing.T) {
	r := newRig(t, 13, 4, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "a", 6)
	r.mkFile(t, "b", 6)
	r.c.Migrate(1, []string{"a"}, false)
	r.eng.RunUntil(sim.Time(3 * time.Second))
	r.c.RestartMaster()
	if r.c.PendingBlocks() != 0 {
		t.Error("master restart kept pending state")
	}
	// New requests after fail-over work normally.
	if err := r.c.Migrate(2, []string{"b"}, false); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(sim.Time(5 * time.Minute))
	blocks, _ := r.fs.FileBlocks([]string{"b"})
	for _, b := range blocks {
		if _, ok := r.fs.MemReplica(b.ID); !ok {
			t.Errorf("post-restart migration incomplete: block %d", b.ID)
		}
	}
	r.c.Shutdown()
}

func TestNodeDeathReroutesPending(t *testing.T) {
	r := newRig(t, 14, 5, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 20)
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(2 * time.Second))
	r.cl.KillNode(2)
	r.c.RestartSlaveProcess(2) // crash semantics: lose its work
	r.eng.RunUntil(sim.Time(10 * time.Minute))
	// Everything with a live replica still migrates; node 2 performed no
	// further work.
	st := r.c.Stats()
	if st.Migrated == 0 {
		t.Fatal("no migrations after node death")
	}
	if r.c.Slave(2).Migrations > 0 && !r.cl.Node(2).Alive() {
		// migrations before death are fine; ensure none started after
		// death by checking the slave is idle.
		if r.c.Slave(2).occupancy() != 0 {
			t.Error("dead node still has queued work")
		}
	}
	r.c.Shutdown()
}

func TestSerializedMigrationOnePerSlave(t *testing.T) {
	r := newRig(t, 15, 2, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 10)
	r.c.Migrate(1, []string{"in"}, false)
	// Sample during the run: no disk should ever serve two migration
	// flows (migration is the only traffic here).
	for i := 1; i <= 40; i++ {
		r.eng.RunUntil(sim.Time(time.Duration(i) * 500 * time.Millisecond))
		for n := 0; n < 2; n++ {
			if got := r.cl.Node(cluster.NodeID(n)).Disk.ActiveFlows(); got > 1 {
				t.Fatalf("node %d disk has %d concurrent flows", n, got)
			}
		}
	}
	r.c.Shutdown()
}

func TestEstimatorTracksInterference(t *testing.T) {
	r := newRig(t, 16, 2, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 30)
	node := r.cl.Node(0)
	baseline := r.c.Slave(0).EstimateBlockSeconds(r.fs.Config().BlockSize)
	node.StartInterference(2, 1)
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(60 * time.Second))
	inflated := r.c.Slave(0).EstimateBlockSeconds(r.fs.Config().BlockSize)
	if inflated < baseline*1.5 {
		t.Errorf("estimate %.2fs did not reflect interference (baseline %.2fs)", inflated, baseline)
	}
	series := r.c.EstimateSeries(0)
	if series.Len() == 0 {
		t.Error("no estimate series recorded")
	}
	r.c.Shutdown()
}

func TestInProgressInflationRaisesEstimateBeforeCompletion(t *testing.T) {
	// One node, one giant-block file: the migration takes a long time
	// under interference, and the estimate must rise while it is still
	// running (the §IV-A fix).
	eng := sim.NewEngine(17)
	cl := cluster.New(eng, 1, nil)
	fsCfg := dfs.DefaultConfig()
	fsCfg.Replication = 1
	fs := dfs.New(cl, fsCfg)
	c := NewCoordinator(fs, DefaultConfig(), NewDYRSBinder())
	if _, err := fs.CreateFile("in", 256*sim.MB); err != nil {
		t.Fatal(err)
	}
	// 9 competing streams -> migration runs ~10x slower (~20s+).
	cl.Node(0).StartInterference(9, 1)
	c.Migrate(1, []string{"in"}, false)
	before := c.Slave(0).EstimateBlockSeconds(fs.Config().BlockSize)
	eng.RunUntil(sim.Time(10 * time.Second))
	mid := c.Slave(0).EstimateBlockSeconds(fs.Config().BlockSize)
	if c.Stats().Migrated != 0 {
		t.Skip("migration finished too fast for the inflation window")
	}
	if mid <= before*1.2 {
		t.Errorf("estimate did not inflate mid-migration: %.2fs -> %.2fs", before, mid)
	}
	c.Shutdown()
}

func TestQueueDepthDerivation(t *testing.T) {
	cfg := DefaultConfig()
	// 256MB blocks at 130MB/s ~ 1.97s per block, 1s heartbeat -> depth 2.
	if d := cfg.queueDepth(256*sim.MB, 130*float64(sim.MB)); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	// Tiny blocks: 1s heartbeat covers many blocks.
	if d := cfg.queueDepth(13*sim.MB, 130*float64(sim.MB)); d != 11 {
		t.Errorf("depth = %d, want 11", d)
	}
	cfg.QueueDepth = 5
	if d := cfg.queueDepth(256*sim.MB, 130*float64(sim.MB)); d != 5 {
		t.Errorf("explicit depth = %d, want 5", d)
	}
}

func TestAlgorithm1TargetsAreReplicas(t *testing.T) {
	r := newRig(t, 18, 6, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 50)
	r.c.Migrate(1, []string{"in"}, false)
	b := r.c.binder.(*DYRSBinder)
	b.UpdateTargets()
	for _, bi := range b.pending {
		if !bi.hasTarget {
			t.Fatalf("block %d has no target", bi.id)
		}
		replicas := r.fs.Replicas(bi.id)
		found := false
		for _, loc := range replicas {
			if loc == bi.target {
				found = true
			}
		}
		if !found {
			t.Fatalf("block %d targeted to non-replica %v (replicas %v)",
				bi.id, bi.target, replicas)
		}
	}
	r.c.Shutdown()
}

func TestAlgorithm1SpreadsLoad(t *testing.T) {
	r := newRig(t, 19, 4, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 40)
	r.c.Migrate(1, []string{"in"}, false)
	b := r.c.binder.(*DYRSBinder)
	b.UpdateTargets()
	counts := map[cluster.NodeID]int{}
	for _, bi := range b.pending {
		counts[bi.target]++
	}
	// Homogeneous cluster: greedy earliest-finish assignment must spread
	// targets across all nodes, roughly evenly.
	for n := cluster.NodeID(0); n < 4; n++ {
		if counts[n] < 4 || counts[n] > 17 {
			t.Errorf("node %v targeted %d of 40 blocks: %v", n, counts[n], counts)
		}
	}
	r.c.Shutdown()
}

func TestNaiveBinderAssignsToAnyReplicaHolder(t *testing.T) {
	slowCfg := func(i int) cluster.NodeConfig {
		c := cluster.DefaultNodeConfig()
		if i == 0 {
			c.DiskScale = 0.08
		}
		return c
	}
	r := newRig(t, 20, 4, NewNaiveBinder(), slowCfg, DefaultConfig())
	r.mkFile(t, "in", 40)
	r.c.Migrate(1, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(30 * time.Minute))
	if st := r.c.Stats(); st.Migrated != 40 {
		t.Fatalf("migrated = %d", st.Migrated)
	}
	// The naive binder keeps feeding the slow node as long as it has
	// queue space, so it ends up with more work than DYRS would give it.
	if r.c.Slave(0).Migrations == 0 {
		t.Error("naive binder never used the slow node")
	}
	r.c.Shutdown()
}

func TestNoneManager(t *testing.T) {
	var m Manager = None{}
	if err := m.Migrate(1, []string{"x"}, true); err != nil {
		t.Errorf("None.Migrate: %v", err)
	}
	m.Evict(1)
	m.NoteRead(1, 0)
}

func TestPinFiles(t *testing.T) {
	eng := sim.NewEngine(21)
	cl := cluster.New(eng, 4, nil)
	fs := dfs.New(cl, dfs.DefaultConfig())
	fs.CreateFile("in", 4*256*sim.MB)
	n, err := PinFiles(fs, []string{"in"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4*256*sim.MB {
		t.Errorf("pinned %d bytes", n)
	}
	if fs.MemReplicaCount() != 4 {
		t.Errorf("in memory = %d", fs.MemReplicaCount())
	}
	if _, err := PinFiles(fs, []string{"missing"}); err == nil {
		t.Error("PinFiles with missing file should error")
	}
}

func TestDoubleMigrateSameFileIsIdempotent(t *testing.T) {
	r := newRig(t, 22, 4, NewDYRSBinder(), nil, DefaultConfig())
	r.mkFile(t, "in", 4)
	r.c.Migrate(1, []string{"in"}, false)
	r.c.Migrate(2, []string{"in"}, false)
	r.eng.RunUntil(sim.Time(2 * time.Minute))
	st := r.c.Stats()
	if st.Requested != 4 {
		t.Errorf("requested = %d, want 4 (no duplicates)", st.Requested)
	}
	if st.Migrated != 4 {
		t.Errorf("migrated = %d", st.Migrated)
	}
	r.c.Shutdown()
}

func TestBinderNames(t *testing.T) {
	if NewDYRSBinder().Name() != "DYRS" || NewIgnemBinder().Name() != "Ignem" || NewNaiveBinder().Name() != "Naive" {
		t.Error("binder names wrong")
	}
}

func TestBlockStateString(t *testing.T) {
	want := map[blockState]string{
		stateNone: "none", statePending: "pending", stateQueued: "queued",
		stateMigrating: "migrating", stateInMemory: "in-memory",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
