package migration

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

// AIMD boundary tests: the controller must clamp exactly at its floor
// and ceiling and, once clamped, stop churning (no adjustment events
// while the input condition persists).

func TestRateControllerClampsAtFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IOWeight = 1.0
	r := newRig(t, 44, 2, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	rc := NewRateController(r.c, time.Second)
	defer rc.Stop()

	r.mkFile(t, "stream", 200)
	r.c.Migrate(1, []string{"stream"}, false)
	r.cl.Node(0).StartInterference(2, 1)
	r.cl.Node(1).StartInterference(2, 1)

	// Persistent contention decays the weight to exactly the floor.
	r.eng.RunUntil(sim.Time(20 * time.Second))
	if w := rc.Weight(); w != rc.MinWeight {
		t.Fatalf("weight = %v under persistent contention, want the floor %v", w, rc.MinWeight)
	}
	// At the floor, continued contention causes no further adjustments:
	// decay would go below MinWeight, the clamp makes it a no-op.
	before := rc.Adjustments
	r.eng.RunUntil(sim.Time(40 * time.Second))
	if w := rc.Weight(); w != rc.MinWeight {
		t.Fatalf("weight left the floor: %v", w)
	}
	if rc.Adjustments != before {
		t.Errorf("%d spurious adjustments while pinned at the floor", rc.Adjustments-before)
	}
}

func TestRateControllerCeilingIsNoOp(t *testing.T) {
	// Starting at MaxWeight with idle disks, recovery has nowhere to go:
	// the controller must not oscillate or count adjustments.
	cfg := DefaultConfig()
	cfg.IOWeight = 1.0
	r := newRig(t, 45, 2, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	rc := NewRateController(r.c, time.Second)
	defer rc.Stop()

	r.mkFile(t, "stream", 200)
	r.c.Migrate(1, []string{"stream"}, false)
	r.eng.RunUntil(sim.Time(20 * time.Second))
	if w := rc.Weight(); w != rc.MaxWeight {
		t.Fatalf("weight = %v with idle disks, want to stay at the ceiling %v", w, rc.MaxWeight)
	}
	if rc.Adjustments != 0 {
		t.Errorf("%d adjustments while already at the ceiling", rc.Adjustments)
	}
}

func TestRateControllerRecoveryClampsAtCeiling(t *testing.T) {
	// From just below the ceiling, one additive step overshoots; the
	// clamp must land exactly on MaxWeight, then go quiet.
	cfg := DefaultConfig()
	cfg.IOWeight = 0.95
	r := newRig(t, 46, 2, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	rc := NewRateController(r.c, time.Second)
	defer rc.Stop()

	r.mkFile(t, "stream", 200)
	r.c.Migrate(1, []string{"stream"}, false)
	r.eng.RunUntil(sim.Time(20 * time.Second))
	if w := rc.Weight(); w != rc.MaxWeight {
		t.Fatalf("weight = %v, want clamped exactly to %v", w, rc.MaxWeight)
	}
	if rc.Adjustments != 1 {
		t.Errorf("Adjustments = %d, want exactly 1 (the clamped step)", rc.Adjustments)
	}
}
