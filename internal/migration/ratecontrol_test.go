package migration

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

func TestRateControllerDecaysUnderForeground(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IOWeight = 1.0
	r := newRig(t, 40, 2, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	rc := NewRateController(r.c, time.Second)
	defer rc.Stop()

	r.mkFile(t, "stream", 40)
	r.c.Migrate(1, []string{"stream"}, false)
	// Foreground load on both disks.
	r.cl.Node(0).StartInterference(2, 1)
	r.cl.Node(1).StartInterference(2, 1)
	r.eng.RunUntil(sim.Time(15 * time.Second))
	if w := rc.Weight(); w > 0.1 {
		t.Errorf("weight = %.2f under foreground load, want decayed to ~min", w)
	}
	if rc.Adjustments == 0 {
		t.Error("controller never adjusted")
	}
}

func TestRateControllerRecoversWhenIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IOWeight = 0.05
	r := newRig(t, 41, 2, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	rc := NewRateController(r.c, time.Second)
	defer rc.Stop()
	r.mkFile(t, "stream", 40)
	r.c.Migrate(1, []string{"stream"}, false)
	// No foreground traffic at all: weight climbs to MaxWeight.
	r.eng.RunUntil(sim.Time(15 * time.Second))
	if w := rc.Weight(); w < 0.9 {
		t.Errorf("weight = %.2f with idle disks, want recovered toward 1.0", w)
	}
}

func TestRateControllerIdleWithoutMigrations(t *testing.T) {
	r := newRig(t, 42, 2, NewDYRSBinder(), nil, DefaultConfig())
	defer r.c.Shutdown()
	rc := NewRateController(r.c, time.Second)
	defer rc.Stop()
	before := rc.Weight()
	r.eng.RunUntil(sim.Time(10 * time.Second))
	if rc.Weight() != before || rc.Adjustments != 0 {
		t.Error("controller adjusted with no active migrations")
	}
}

func TestRateControllerAIMDCycle(t *testing.T) {
	// Foreground load alternates: the weight must fall during busy
	// phases and rise during idle ones.
	cfg := DefaultConfig()
	cfg.IOWeight = 1.0
	r := newRig(t, 43, 1, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	rc := NewRateController(r.c, time.Second)
	defer rc.Stop()
	r.mkFile(t, "stream", 200)
	r.c.Migrate(1, []string{"stream"}, false)

	inf := r.cl.Node(0).StartInterference(2, 1)
	r.eng.RunUntil(sim.Time(12 * time.Second))
	low := rc.Weight()
	inf.Pause()
	r.eng.RunUntil(sim.Time(30 * time.Second))
	high := rc.Weight()
	if low >= 0.3 {
		t.Errorf("busy-phase weight %.2f too high", low)
	}
	if high <= low*2 {
		t.Errorf("weight did not recover: %.2f -> %.2f", low, high)
	}
}
