package migration

import (
	"fmt"
	"sort"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/metrics"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// Coordinator is the migration framework: the master-side bookkeeping
// (reference lists, block lifecycle, stats) plus one Slave per DataNode.
// The binding policy — which replica of which block migrates where, and
// when that decision is made — is delegated to a Binder.
type Coordinator struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *dfs.FS
	cfg Config
	tr  *trace.Tracer // run tracer; nil (no-op) when untraced

	// Streaming metric handles, cached once at construction (nil and
	// no-op when untraced). Histograms aggregate every event exactly —
	// they are never subject to span sampling.
	hLead     *trace.Hist // migration request -> first in-memory read, ns
	hMargin   *trace.Hist // pin -> first in-memory read, ns
	hTransfer *trace.Hist // completed transfer size, bytes
	hQueue    *trace.Hist // slave queue occupancy at each bind

	binder Binder
	slaves []*Slave
	sched  ActiveJobChecker

	// info is the master's block-record table, a dense slice indexed by
	// BlockID (block IDs are small dense integers allocated by the file
	// system). Untracked blocks hold nil. Indexing replaces the map probe
	// the per-read and per-request hot paths used to pay.
	info []*blockInfo
	// jobBlocks lists the blocks each job has requested, for Evict. The
	// lists may retain ids whose reference the job already dropped via
	// implicit eviction — Evict tolerates stale entries, which is cheaper
	// than deleting from the middle of a slice on every NoteRead.
	jobBlocks map[JobID][]dfs.BlockID
	hints     map[JobID]JobHint

	// counts holds the master's incremental per-state block tallies,
	// indexed by blockState and maintained exclusively by transition().
	// They are never recomputed by scanning info, so StateCounts stays
	// O(1) with millions of tracked blocks.
	counts [stateInMemory + 1]int

	estimates map[cluster.NodeID]nodeEstimate
	// estEpoch increments whenever a heartbeat actually changes a stored
	// estimate; the DYRS binder uses it to skip Algorithm 1 passes whose
	// inputs have not moved.
	estEpoch uint64
	// hintEpoch increments whenever scheduler hints change (set or
	// cleared); ordering policies read hints, so the binder's gate must
	// treat a hint change as an input change.
	hintEpoch uint64

	migratedHooks []func(dfs.BlockID, cluster.NodeID, sim.Time)

	stats Stats
}

// Binder decides replica selection and binding time. Implementations:
// DYRSBinder, IgnemBinder, NaiveBinder.
type Binder interface {
	// Name identifies the policy in output tables.
	Name() string
	// OnMigrate receives newly requested blocks. A binder may bind them
	// to slaves immediately (Ignem) or keep them pending until pulled.
	OnMigrate(blocks []*blockInfo)
	// OnPull is invoked when slave n has free local queue space; it
	// returns the blocks to bind to n now (at most space blocks).
	OnPull(n cluster.NodeID, space int) []*blockInfo
	// Remove discards a pending block (missed read or eviction).
	Remove(b *blockInfo)
	// PendingCount reports blocks awaiting binding.
	PendingCount() int
	// Reset drops all pending state (master restart).
	Reset()
}

// NewCoordinator wires a migration framework over the file system with
// the given binding policy. A Slave is created for every DataNode.
func NewCoordinator(fs *dfs.FS, cfg Config, binder Binder) *Coordinator {
	cl := fs.Cluster()
	c := &Coordinator{
		eng:       cl.Engine(),
		cl:        cl,
		fs:        fs,
		cfg:       cfg,
		tr:        trace.FromEngine(cl.Engine()),
		binder:    binder,
		sched:     alwaysActive{},
		jobBlocks: make(map[JobID][]dfs.BlockID),
		hints:     make(map[JobID]JobHint),
		estimates: make(map[cluster.NodeID]nodeEstimate),
	}
	c.hLead = c.tr.Hist("migration.lead_ns")
	c.hMargin = c.tr.Hist("migration.margin_ns")
	c.hTransfer = c.tr.Hist("migration.transfer_bytes")
	c.hQueue = c.tr.Hist("migration.queue_depth")
	if ab, ok := binder.(attachable); ok {
		ab.attach(c)
	}
	for _, n := range cl.Nodes() {
		c.slaves = append(c.slaves, newSlave(c, n))
	}
	return c
}

// attachable is implemented by binders that need a back-reference to the
// coordinator (to push immediate bindings or read estimates).
type attachable interface{ attach(c *Coordinator) }

// SetScheduler wires the cluster scheduler used by scavenging.
func (c *Coordinator) SetScheduler(s ActiveJobChecker) {
	if s != nil {
		c.sched = s
	}
}

// Stats returns a copy of the framework counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// transition moves a tracked block to a new lifecycle state, keeping the
// master's incremental per-state counts in step. Every state write in
// the framework goes through here; records detached by a master restart
// keep their slave-side lifecycle but no longer touch the counts.
func (c *Coordinator) transition(bi *blockInfo, to blockState) {
	if bi.state == to {
		return
	}
	if !bi.detached {
		if bi.state != stateNone {
			c.counts[bi.state]--
		}
		if to != stateNone {
			c.counts[to]++
		}
	}
	bi.state = to
}

// StateCounts reports, in O(1), how many master-tracked blocks are in
// each lifecycle state: awaiting binding, bound in a slave queue, being
// migrated, and resident in memory.
func (c *Coordinator) StateCounts() (pending, queued, migrating, inMemory int) {
	return c.counts[statePending], c.counts[stateQueued], c.counts[stateMigrating], c.counts[stateInMemory]
}

// blockRecord returns the tracked record for a block, or nil.
func (c *Coordinator) blockRecord(id dfs.BlockID) *blockInfo {
	if i := int(id); i < len(c.info) {
		return c.info[i]
	}
	return nil
}

// setRecord stores a block record, growing the dense table geometrically
// so tracking n blocks costs O(n) total, not O(n²) copies.
func (c *Coordinator) setRecord(id dfs.BlockID, bi *blockInfo) {
	if n := int(id) + 1; n > len(c.info) {
		if n > cap(c.info) {
			newCap := 2 * cap(c.info)
			if newCap < n {
				newCap = n
			}
			grown := make([]*blockInfo, n, newCap)
			copy(grown, c.info)
			c.info = grown
		} else {
			c.info = c.info[:n]
		}
	}
	c.info[int(id)] = bi
}

// Binder returns the active binding policy.
func (c *Coordinator) Binder() Binder { return c.binder }

// Slave returns the migration slave on the given node.
func (c *Coordinator) Slave(id cluster.NodeID) *Slave { return c.slaves[int(id)] }

// Estimate reports the master's view of a slave's per-byte migration
// time and queue occupancy, as refreshed by heartbeats. Before the first
// heartbeat it falls back to the slave's seeded estimate so Algorithm 1
// has sane inputs from time zero.
func (c *Coordinator) Estimate(id cluster.NodeID) (perByteSeconds float64, queued int) {
	if e, ok := c.estimates[id]; ok {
		return e.perByte, e.queued
	}
	s := c.slaves[int(id)]
	return s.estimator.perByte(), s.occupancy()
}

// Migrate implements Manager. It maps files to blocks (the master's job,
// §III), registers the job on each block's reference list, and hands new
// blocks to the binder. Binding may happen now (Ignem) or lazily on
// slave pulls (DYRS/naive).
func (c *Coordinator) Migrate(job JobID, files []string, implicitEvict bool) error {
	ids, err := c.fs.FileBlockIDs(files)
	if err != nil {
		return fmt.Errorf("migration: %w", err)
	}
	var fresh []*blockInfo
	for _, id := range ids {
		bi := c.blockRecord(id)
		if bi == nil || bi.state == stateNone {
			if bi == nil {
				bi = &blockInfo{id: id, size: c.fs.BlockSize(id)}
				c.setRecord(id, bi)
			}
			if node, ok := c.fs.MemReplica(id); ok {
				// The block is already resident — typically because a
				// master fail-over wiped the reference lists while the
				// slave-side buffer survived (§III-C1). Re-adopt the
				// surviving replica instead of migrating a second copy,
				// which would strand the old one outside any reference
				// list.
				c.transition(bi, stateInMemory)
				bi.slave = node
				c.stats.Readopted++
				if c.tr.Enabled() {
					c.tr.Inc("migration.readopted")
					c.tr.Instant("migration", "readopt", int(node),
						trace.Int("job", int64(job)),
						trace.Int("block", int64(id)))
				}
			} else {
				c.transition(bi, statePending)
				bi.hasTarget = false
				bi.requestedAt = c.eng.Now()
				bi.leadRecorded = false
				c.stats.Requested++
				if c.tr.Enabled() {
					bi.span = c.tr.Begin("migration", "migrate", trace.NodeMaster,
						trace.Int("job", int64(job)),
						trace.Int("block", int64(id)),
						trace.Int("size", int64(bi.size)))
					c.tr.Inc("migration.requested")
				}
				fresh = append(fresh, bi)
			}
		}
		if !bi.refs.has(job) {
			bi.refs = append(bi.refs, job)
			c.jobBlocks[job] = append(c.jobBlocks[job], id)
		}
		if implicitEvict {
			bi.implicit.add(job)
		}
	}
	if len(fresh) > 0 {
		c.binder.OnMigrate(fresh)
		// Kick the slaves so migration can begin within an RPC round-trip
		// instead of waiting out a heartbeat; slaves pull per policy.
		c.cl.RPC(func() {
			for _, s := range c.slaves {
				s.pull()
				s.kick()
			}
		})
	}
	return nil
}

// Evict implements Manager: the job's explicit eviction command routed
// through the master (§III-C3). Blocks are released in block-ID order so
// the run — including any recorded trace — is independent of map
// iteration order.
func (c *Coordinator) Evict(job JobID) {
	ids := c.jobBlocks[job]
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		bi := c.blockRecord(id)
		if bi == nil {
			continue
		}
		// Stale entries (reference already dropped by implicit eviction)
		// and duplicates are no-ops here: remove misses and maybeRelease
		// sees a released record.
		bi.refs.remove(job)
		bi.implicit.remove(job)
		c.maybeRelease(bi)
	}
	delete(c.jobBlocks, job)
	if _, ok := c.hints[job]; ok {
		delete(c.hints, job)
		c.hintEpoch++
	}
}

// NoteRead implements Manager. For implicit-eviction jobs the job is
// removed from the block's reference list as soon as it reads the block;
// a block whose list empties is released — evicted if resident, or
// discarded from the migration pipeline if the read beat the migration
// ("discarded due to missed reads", §IV-A1).
func (c *Coordinator) NoteRead(job JobID, block dfs.BlockID) {
	bi := c.blockRecord(block)
	if bi == nil {
		return
	}
	inFlight := false
	switch bi.state {
	case stateInMemory:
		c.stats.MemoryHits++
		if !bi.leadRecorded {
			bi.leadRecorded = true
			now := c.eng.Now()
			c.hLead.Observe(int64(now.Sub(bi.requestedAt)))
			c.hMargin.Observe(int64(now.Sub(bi.pinnedAt)))
		}
	case statePending, stateQueued, stateMigrating:
		c.stats.MissedReads++
		inFlight = true
	}
	if inFlight && !c.cfg.CancelOnMissedRead {
		// Policies without missed-read handling (Ignem) leave the
		// now-pointless migration in the pipeline.
		return
	}
	if bi.implicit.has(job) {
		bi.refs.remove(job)
		bi.implicit.remove(job)
		// The id stays in jobBlocks[job]; Evict skips the stale entry.
		c.maybeRelease(bi)
	}
}

// maybeRelease frees a block whose reference list has emptied.
func (c *Coordinator) maybeRelease(bi *blockInfo) {
	if len(bi.refs) > 0 {
		return
	}
	switch bi.state {
	case statePending:
		c.binder.Remove(bi)
		c.transition(bi, stateNone)
		c.stats.Dropped++
		c.dropTrace(bi, "released-pending")
	case stateQueued:
		c.slaves[int(bi.slave)].dequeue(bi)
		c.transition(bi, stateNone)
		c.stats.Dropped++
		c.dropTrace(bi, "released-queued")
	case stateMigrating:
		if c.cfg.CancelOnMissedRead {
			// Discard the in-flight migration: its disk bandwidth is
			// better spent on the read that just made it pointless. In
			// the paper's testbed migrations take ~2s so this race
			// window is negligible; under a saturated map phase it is
			// not, and "discarded due to missed reads" (§IV-A1) extends
			// naturally to the active transfer (munmap releases it).
			c.slaves[int(bi.slave)].abortActive(bi)
			c.transition(bi, stateNone)
			c.stats.Dropped++
			c.dropTrace(bi, "missed-read")
			return
		}
		// Policies without missed-read handling let the migration
		// finish; completion sees the empty list and evicts immediately.
	case stateInMemory:
		c.fs.DropMem(bi.id, bi.slave)
		c.transition(bi, stateNone)
		c.stats.Evicted++
	}
}

// dropTrace closes a block's migration span as dropped with the given
// reason. A no-op when untraced or when the span already ended.
func (c *Coordinator) dropTrace(bi *blockInfo, reason string) {
	if c.tr.Enabled() {
		bi.span.End(trace.Str("outcome", "dropped"), trace.Str("reason", reason))
		c.tr.Inc("migration.dropped")
	}
}

// onHeartbeat records a slave's estimate for the binder's use. The
// estimate epoch only advances when the stored value actually changes,
// so an idle fleet's heartbeats do not force binder passes.
func (c *Coordinator) onHeartbeat(n cluster.NodeID, perByte float64, queued int) {
	e := nodeEstimate{perByte: perByte, queued: queued}
	if c.estimates[n] != e {
		c.estimates[n] = e
		c.estEpoch++
	}
}

// onMigrated finalizes a completed migration.
func (c *Coordinator) onMigrated(bi *blockInfo, at cluster.NodeID) {
	c.transition(bi, stateInMemory)
	bi.slave = at
	bi.pinnedAt = c.eng.Now()
	c.stats.Migrated++
	c.stats.BytesMigrated += bi.size
	for _, fn := range c.migratedHooks {
		fn(bi.id, at, c.eng.Now())
	}
	c.maybeRelease(bi) // evicts right away if every reader already came and went
}

// OnMigrated registers an instrumentation callback invoked whenever a
// migration completes (used to reconstruct migration timelines, Fig. 10).
func (c *Coordinator) OnMigrated(fn func(block dfs.BlockID, node cluster.NodeID, at sim.Time)) {
	c.migratedHooks = append(c.migratedHooks, fn)
}

// RestartMaster simulates a master fail-over: all soft state about
// pending migrations and reference lists is lost (§III-C1). In-memory
// replicas survive at the slaves; scavenging reclaims them once their
// jobs finish.
func (c *Coordinator) RestartMaster() {
	c.binder.Reset()
	// The dense info table walks in block-ID order by construction, so
	// the trace (span ends, drop counters) is deterministic.
	for _, bi := range c.info {
		if bi == nil {
			continue
		}
		switch bi.state {
		case statePending:
			c.transition(bi, stateNone)
			c.stats.Dropped++
			c.dropTrace(bi, "master-restart")
		case stateQueued, stateMigrating, stateInMemory:
			// Slave-side state persists; the new master relearns it as
			// slaves heartbeat and scavenge. The record leaves the
			// master's books (and its incremental counts) now; detaching
			// it keeps later slave-side transitions from double-counting
			// against a re-adopted successor record.
			if !bi.detached {
				c.counts[bi.state]--
				bi.detached = true
			}
		}
	}
	c.info = nil
	c.jobBlocks = make(map[JobID][]dfs.BlockID)
}

// RestartSlaveProcess simulates a slave process crash + restart: the
// OS reclaims all locked buffers, the master drops its state about blocks
// buffered there, and bound-but-unfinished migrations are lost (§III-C2).
func (c *Coordinator) RestartSlaveProcess(id cluster.NodeID) {
	s := c.slaves[int(id)]
	for _, bi := range s.queue {
		c.transition(bi, stateNone)
		c.stats.Dropped++
		c.dropTrace(bi, "slave-restart")
	}
	s.queue = nil
	// Abort active transfers in block-ID order: s.active is a map, and
	// the span ends emitted here must not depend on iteration order.
	actives := make([]*blockInfo, 0, len(s.active))
	for bi := range s.active {
		actives = append(actives, bi)
	}
	sort.Slice(actives, func(i, j int) bool { return actives[i].id < actives[j].id })
	for _, bi := range actives {
		am := s.active[bi]
		if am.flow != nil {
			am.flow.Cancel()
		}
		if c.tr.Enabled() {
			am.span.End(trace.Str("outcome", "aborted"))
			c.tr.Inc("migration.aborted")
		}
		c.transition(bi, stateNone)
		c.stats.Dropped++
		c.dropTrace(bi, "slave-restart")
	}
	s.active = make(map[*blockInfo]*activeMigration)
	// Blocks buffered in memory on this node are gone.
	for _, bi := range c.info {
		if bi != nil && bi.state == stateInMemory && bi.slave == id {
			c.transition(bi, stateNone)
			c.stats.Evicted++
		}
	}
	c.fs.DropAllMem(id)
	s.estimator.reset()
}

// ScavengeAll runs the scavenging pass on every slave immediately,
// regardless of the memory-pressure threshold that normally gates it.
// After all jobs have finished and evicted, a ScavengeAll leaves no
// block resident: anything still buffered is either unreferenced (and
// released here) or orphaned by a restart (and reclaimed here). The
// fuzzing harness calls this at end-of-run so "no buffered bytes
// remain" is checkable as a hard invariant.
func (c *Coordinator) ScavengeAll() {
	for _, s := range c.slaves {
		s.scavenge()
	}
}

// Shutdown stops all slave tickers and any binder background thread;
// used at the end of an experiment so the event queue can drain.
func (c *Coordinator) Shutdown() {
	for _, s := range c.slaves {
		s.stop()
	}
	if sb, ok := c.binder.(stoppable); ok {
		sb.stopBinder()
	}
}

// PendingBlocks reports the number of blocks the binder is still holding
// unbound.
func (c *Coordinator) PendingBlocks() int { return c.binder.PendingCount() }

// QueuedBlocks reports blocks bound to slave queues (including active).
func (c *Coordinator) QueuedBlocks() int {
	total := 0
	for _, s := range c.slaves {
		total += s.occupancy()
	}
	return total
}

// EstimateSeries returns the recorded migration-time-estimate time series
// for a slave (seconds to migrate one standard block, sampled each
// heartbeat) — the data behind Fig. 9. Nil when recording is disabled
// via Config.DisableEstimateSeries.
func (c *Coordinator) EstimateSeries(id cluster.NodeID) *metrics.TimeSeries {
	return c.slaves[int(id)].estSeries
}

var _ Manager = (*Coordinator)(nil)
