// Package migration implements DYRS — the paper's bandwidth-aware
// disk-to-memory migration framework — together with the comparison
// schemes used in the evaluation:
//
//   - DYRS: delayed binding on slave pull, Algorithm 1 greedy
//     earliest-finish replica targeting, per-slave EWMA migration-time
//     estimation with in-progress inflation (§III, §IV).
//   - Ignem: a random replica is chosen and bound immediately when the
//     job is submitted (§VI, [8]).
//   - Naive: FIFO binding to any replica-holding slave with free queue
//     space — DYRS without straggler avoidance (Fig. 10 comparator).
//   - None: no migration (default HDFS).
//
// The framework side (slave queues, serialized FIFO migration, job
// reference lists, implicit/explicit eviction, hard memory limits,
// scavenging, failure recovery) is shared by all binding policies via
// Coordinator; a Binder supplies the policy.
package migration

import (
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// JobID identifies a job for reference-list bookkeeping.
type JobID int

// Manager is the interface the compute framework talks to. The job
// submitter calls Migrate during submission (the paper inserts the call
// in the Hadoop job-submitter / after Hive query compilation, §IV-B);
// Evict runs when the job finishes; NoteRead is invoked as tasks finish
// reading blocks and drives implicit eviction.
type Manager interface {
	// Migrate requests migration of the input files for the given job.
	// implicitEvict opts the job into eviction-on-read (§III-C3).
	Migrate(job JobID, files []string, implicitEvict bool) error
	// Evict clears the job from all reference lists, releasing blocks
	// whose lists become empty.
	Evict(job JobID)
	// NoteRead informs the manager that the job finished reading the
	// block (slaves extract the job id from read calls, §IV-A1).
	NoteRead(job JobID, block dfs.BlockID)
}

// ActiveJobChecker lets slaves ask the cluster scheduler which jobs are
// still running, used by the scavenging path that cleans up after jobs
// that died without evicting (§III-C3).
type ActiveJobChecker interface {
	JobActive(job JobID) bool
}

// alwaysActive is the fallback checker used when no scheduler is wired.
type alwaysActive struct{}

func (alwaysActive) JobActive(JobID) bool { return true }

// None is a Manager that performs no migration: the default-HDFS
// configuration in the evaluation.
type None struct{}

// Migrate is a no-op.
func (None) Migrate(JobID, []string, bool) error { return nil }

// Evict is a no-op.
func (None) Evict(JobID) {}

// NoteRead is a no-op.
func (None) NoteRead(JobID, dfs.BlockID) {}

// PinFiles pre-loads every block of the named files into memory at its
// first replica with no simulated cost — the paper's HDFS-Inputs-in-RAM
// configuration (inputs locked in RAM with vmtouch before the run, §V-A).
// It returns the total bytes pinned.
func PinFiles(fs *dfs.FS, files []string) (sim.Bytes, error) {
	blocks, err := fs.FileBlocks(files)
	if err != nil {
		return 0, err
	}
	var total sim.Bytes
	for _, b := range blocks {
		if len(b.Replicas) == 0 {
			continue
		}
		fs.RegisterMem(b.ID, b.Replicas[0])
		total += b.Size
	}
	return total, nil
}

// Config holds the tunables of the migration framework.
type Config struct {
	// Heartbeat is the slave->master query interval. Slaves refresh their
	// estimates and pull more work every heartbeat.
	Heartbeat time.Duration
	// TargetUpdateInterval is how often the master's off-critical-path
	// thread re-runs Algorithm 1 over the pending list (§III-D).
	TargetUpdateInterval time.Duration
	// QueueDepth is the per-slave local queue length. Zero derives the
	// paper's sizing: heartbeat interval divided by the time to read one
	// block at full disk bandwidth, plus one (§III-B).
	QueueDepth int
	// EWMAAlpha is the smoothing factor of the migration-time estimator.
	EWMAAlpha float64
	// MemLimitFraction bounds the buffer to this fraction of the node's
	// MemCapacity (the hard limit of §IV-A1).
	MemLimitFraction float64
	// ScavengeThreshold is the memory-usage fraction above which a slave
	// queries the scheduler and clears references of inactive jobs.
	ScavengeThreshold float64
	// CancelOnMissedRead discards not-yet-migrated blocks as soon as a
	// read makes migrating them pointless ("discarded due to missed
	// reads", §IV-A1). DYRS does this; Ignem, which binds blindly at
	// submission and never reconsiders, does not.
	CancelOnMissedRead bool
	// IOWeight is the fair-share weight of migration disk streams
	// relative to foreground reads (weight 1). Below 1 it makes
	// migration background traffic that consumes residual bandwidth —
	// the ionice-style priority the mmap/mlock readahead path gets
	// relative to synchronous task reads.
	IOWeight float64
	// MaxConcurrent caps simultaneous migrations per slave. DYRS
	// serializes migrations (1) to limit disk seek thrash (§III-B);
	// Ignem just mlocks every bound block at once (unbounded).
	MaxConcurrent int
	// DisableInProgressUpdates turns off the §IV-A heartbeat estimate
	// inflation, reverting to the paper's "earlier prototype" that only
	// updated estimates on migration completion — kept as an ablation.
	DisableInProgressUpdates bool
	// DisableEstimateSeries turns off the per-slave estimate time series
	// recorded every heartbeat (the data behind Fig. 9). The series grows
	// with virtual time × node count; the datacenter-scale experiments
	// disable it to keep days of virtual time at 10k nodes bounded.
	DisableEstimateSeries bool
	// Order selects how the master orders pending migrations across
	// jobs: the paper's FIFO, or the future-work policies SJF and EDF
	// (scheduler-cooperative earliest-deadline-first).
	Order OrderPolicy
}

// DefaultConfig returns the settings used in the evaluation runs.
func DefaultConfig() Config {
	return Config{
		Heartbeat:            1 * time.Second,
		TargetUpdateInterval: 500 * time.Millisecond,
		QueueDepth:           0, // auto
		EWMAAlpha:            0.4,
		MemLimitFraction:     1.0,
		ScavengeThreshold:    0.8,
		CancelOnMissedRead:   true,
		IOWeight:             0.25,
		MaxConcurrent:        1,
	}
}

// queueDepth resolves the configured or derived local queue depth for a
// node: enough queued work to cover one heartbeat of migration at full
// disk speed, and never less than 2 so the disk cannot idle while the
// slave is querying the master (§III-B).
func (c Config) queueDepth(blockSize sim.Bytes, diskBW float64) int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	blockTime := float64(blockSize) / diskBW
	d := int(c.Heartbeat.Seconds()/blockTime) + 1
	if d < 2 {
		d = 2
	}
	return d
}

// Stats aggregates framework-wide counters.
type Stats struct {
	Requested     int // blocks requested for migration
	Migrated      int // migrations completed
	Readopted     int // requests satisfied by a surviving in-memory replica
	Dropped       int // pending/queued migrations cancelled (missed reads, evictions)
	Evicted       int // in-memory blocks released
	MissedReads   int // reads that arrived before the block reached memory
	MemoryHits    int // reads served after successful migration
	BytesMigrated sim.Bytes
}

// nodeEstimate is the per-slave state the master records from heartbeats:
// the slave's migration-time estimate and its current queue occupancy
// (§III-D: "During heartbeats, the master stores each slave's estimate of
// migration time and the number of blocks currently queued").
type nodeEstimate struct {
	perByte float64 // estimated seconds per byte
	queued  int     // blocks queued + active at the slave
}

// blockState tracks where a requested block is in its migration lifecycle.
type blockState int

const (
	stateNone      blockState = iota // not tracked / released
	statePending                     // at master, unbound
	stateQueued                      // bound, waiting in a slave queue
	stateMigrating                   // being read into memory
	stateInMemory                    // resident; reads are redirected
)

func (s blockState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateQueued:
		return "queued"
	case stateMigrating:
		return "migrating"
	case stateInMemory:
		return "in-memory"
	}
	return "none"
}

// jobSet is a small set of job IDs stored as an unsorted slice. A block
// is referenced by one or two jobs in practice, so linear scans win —
// and, unlike the two per-block maps this replaces, the representation
// adds no extra heap objects for the GC to trace when the master tracks
// millions of blocks. All consumers (hint aggregation, scavenging) are
// order-independent, so the unsorted swap-remove is safe.
type jobSet []JobID

// has reports membership.
func (s jobSet) has(j JobID) bool {
	for _, v := range s {
		if v == j {
			return true
		}
	}
	return false
}

// add inserts j if absent.
func (s *jobSet) add(j JobID) {
	if !s.has(j) {
		*s = append(*s, j)
	}
}

// remove deletes j if present by swapping the last element into its slot.
func (s *jobSet) remove(j JobID) {
	for i, v := range *s {
		if v == j {
			(*s)[i] = (*s)[len(*s)-1]
			*s = (*s)[:len(*s)-1]
			return
		}
	}
}

// blockInfo is the coordinator's record for one requested block. It
// carries the block's id and size directly (not a catalog view): at
// datacenter scale the master tracks up to millions of these, and the
// id+size pair is all the migration pipeline ever needs.
type blockInfo struct {
	id         dfs.BlockID
	size       sim.Bytes
	state      blockState
	refs       jobSet
	implicit   jobSet
	slave      cluster.NodeID // binding location once queued
	target     cluster.NodeID // Algorithm 1 target while pending
	hasTarget  bool
	enqueuedAt sim.Time
	// requestedAt / pinnedAt feed the streaming lead-time and margin
	// histograms. They are plain timestamps, not span lookups, so the
	// metrics stay exact when span sampling drops the migration span.
	requestedAt sim.Time
	pinnedAt    sim.Time
	// leadRecorded gates the lead/margin observation to the block's
	// first in-memory read, matching the summary's definitions.
	leadRecorded bool
	// detached marks a record the master forgot in a fail-over while the
	// slave side kept running; its later transitions no longer touch the
	// master's incremental state counts (see Coordinator.transition).
	detached bool
	// inPending marks a live entry in the DYRS binder's pending list.
	// The list is compacted lazily (entries are tombstoned on bind or
	// removal, reclaimed in bulk), so the flag — not list membership —
	// is the source of truth for "still awaiting binding".
	inPending bool
	// span is the block's migration lifecycle trace span, opened at the
	// Migrate request and closed at pin, drop or abort. Zero (no-op)
	// when the run is untraced.
	span trace.SpanRef
}
