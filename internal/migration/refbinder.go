package migration

import (
	"dyrs/internal/cluster"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// ReferenceDYRSBinder is the pre-extraction DYRS binder, frozen
// verbatim when Algorithm 1 moved into internal/policy. It is the
// differential anchor for the policy-conformance suite: the harness
// runs every fuzz scenario once with the extracted policy.DYRS (via
// PolicyBinder) and once with this binder, and demands byte-identical
// traces, stats and counters — the same preserved-reference pattern
// the sharded engine and the compact block tables were proven with.
//
// Do not modify this type except to track Binder interface changes;
// behavioral fixes belong in policy.DYRS, where the conformance suite
// will catch any drift from this reference.
type ReferenceDYRSBinder struct {
	c *Coordinator
	// pending is the master's unbound-block list, in FIFO arrival order
	// (reordered only by the configured OrderPolicy). Entries are
	// tombstoned in place when bound or removed (bi.inPending cleared)
	// and reclaimed in bulk at the next full Algorithm 1 pass, so no
	// binder operation is O(pending) per block.
	pending []*blockInfo
	dead    int // tombstoned entries still in pending
	// targets buckets the pending list by current Algorithm 1 target,
	// rebuilt on every full pass. OnPull(n) consumes bucket n from
	// heads[n] forward instead of scanning the whole pending list — at
	// datacenter scale every slave pulls every heartbeat, and the scan
	// was quadratic in cluster size.
	targets [][]*blockInfo
	heads   []int
	ticker  *sim.Ticker
	// Updates counts Algorithm 1 passes that did work; SkippedUpdates
	// counts ticks the input-change gate short-circuited.
	Updates        int
	SkippedUpdates int

	// Input-change gate: a pass is skipped when the pending set, the
	// heartbeat estimates and cluster membership are all unchanged since
	// the last pass — at datacenter scale most 500ms ticks are exactly
	// that. A pass is forced after maxSkippedPasses so targets built on
	// the NameNode's *stale* liveness view (which drifts with time, not
	// with events) are still refreshed with bounded delay.
	pendGen       uint64
	lastPendGen   uint64
	lastEstEpoch  uint64
	lastHintEpoch uint64
	lastMembers   uint64
	primed        bool
	skipped       int

	// Reusable Algorithm 1 state, indexed by dense NodeID; replaces the
	// per-pass map allocations that dominated the master's CPU at scale.
	finish   []float64
	perByte  []float64
	estValid []bool
	repBuf   []cluster.NodeID
}

// NewReferenceDYRSBinder returns the frozen pre-extraction DYRS binder.
func NewReferenceDYRSBinder() *ReferenceDYRSBinder { return &ReferenceDYRSBinder{} }

// Name implements Binder.
func (b *ReferenceDYRSBinder) Name() string { return "DYRS" }

func (b *ReferenceDYRSBinder) attach(c *Coordinator) {
	b.c = c
	b.targets = make([][]*blockInfo, c.cl.Size())
	b.heads = make([]int, c.cl.Size())
	// The target-update thread runs off the critical path of
	// master-slave coordination (§III-D).
	b.ticker = sim.NewTicker(c.eng, c.cfg.TargetUpdateInterval, b.UpdateTargets)
}

// OnMigrate adds blocks to the pending list and refreshes targets so the
// immediately following pulls see them.
func (b *ReferenceDYRSBinder) OnMigrate(blocks []*blockInfo) {
	for _, bi := range blocks {
		if bi.inPending {
			continue
		}
		bi.inPending = true
		b.pending = append(b.pending, bi)
	}
	b.pendGen++
	b.UpdateTargets()
}

// OnPull hands the slave the pending blocks currently targeted at it, in
// FIFO order, up to the free queue space. Blocks targeted elsewhere stay
// pending even if this slave has room — leaving a slow node idle beats
// creating a straggler (§III-A2).
func (b *ReferenceDYRSBinder) OnPull(n cluster.NodeID, space int) []*blockInfo {
	if space <= 0 || len(b.pending) == b.dead {
		return nil
	}
	var out []*blockInfo
	q := b.targets[int(n)]
	i := b.heads[int(n)]
	for i < len(q) && len(out) < space {
		bi := q[i]
		i++
		if !bi.inPending || !bi.hasTarget || bi.target != n {
			continue // tombstoned since the bucket was built
		}
		bi.inPending = false
		b.dead++
		out = append(out, bi)
	}
	b.heads[int(n)] = i
	if len(out) > 0 {
		b.pendGen++
	}
	return out
}

// Remove discards a pending block. The list entry is tombstoned (O(1))
// and reclaimed at the next full pass.
func (b *ReferenceDYRSBinder) Remove(bi *blockInfo) {
	if !bi.inPending {
		return
	}
	bi.inPending = false
	b.dead++
	b.pendGen++
}

// PendingCount implements Binder.
func (b *ReferenceDYRSBinder) PendingCount() int { return len(b.pending) - b.dead }

// Reset implements Binder (master restart).
func (b *ReferenceDYRSBinder) Reset() {
	for _, bi := range b.pending {
		bi.inPending = false
	}
	b.pending = nil
	b.dead = 0
	for i := range b.targets {
		b.targets[i] = b.targets[i][:0]
		b.heads[i] = 0
	}
	b.pendGen++
}

// UpdateTargets is Algorithm 1: greedily set each pending block's target
// to the replica location where it is expected to finish migrating
// earliest, keeping a running per-node finish-time estimate.
//
// Per the paper, each node's finish time is initialized to
// migTime[node] × (numQueued[node]+1) from the latest heartbeat state,
// and choosing a target uses "the node where assigning the block would
// result in the lowest new completion time", i.e. finish + migTime for
// this block's size.
func (b *ReferenceDYRSBinder) UpdateTargets() {
	if len(b.pending) == b.dead {
		// Nothing live. Drop any remaining tombstones so an idle binder
		// holds no stale references.
		if len(b.pending) > 0 {
			b.pending = b.pending[:0]
			b.dead = 0
		}
		return
	}
	if b.primed &&
		b.lastPendGen == b.pendGen &&
		b.lastEstEpoch == b.c.estEpoch &&
		b.lastHintEpoch == b.c.hintEpoch &&
		b.lastMembers == b.c.cl.MembershipEpoch() &&
		b.skipped < maxSkippedPasses {
		b.skipped++
		b.SkippedUpdates++
		return
	}
	b.primed = true
	b.skipped = 0
	b.lastPendGen = b.pendGen
	b.lastEstEpoch = b.c.estEpoch
	b.lastHintEpoch = b.c.hintEpoch
	b.lastMembers = b.c.cl.MembershipEpoch()
	b.Updates++
	// Reclaim tombstones so the ordering and targeting passes below see
	// only live entries (and so handed-out blocks are not re-targeted).
	if b.dead > 0 {
		kept := b.pending[:0]
		for _, bi := range b.pending {
			if bi.inPending {
				kept = append(kept, bi)
			}
		}
		for i := len(kept); i < len(b.pending); i++ {
			b.pending[i] = nil
		}
		b.pending = kept
		b.dead = 0
	}
	// Apply the configured cross-job ordering policy before the greedy
	// pass; with FIFO this is a no-op (§III, future-work extension).
	b.c.orderPending(b.pending)
	n := b.c.cl.Size()
	if len(b.finish) < n {
		b.finish = make([]float64, n)
		b.perByte = make([]float64, n)
		b.estValid = make([]bool, n)
	}
	std := float64(b.c.fs.Config().BlockSize)
	for _, node := range b.c.cl.Nodes() {
		i := int(node.ID)
		if !node.Alive() {
			b.estValid[i] = false
			continue
		}
		per, queued := b.c.Estimate(node.ID)
		b.perByte[i] = per
		b.finish[i] = per * std * float64(queued+1)
		b.estValid[i] = true
	}
	for i := range b.targets {
		b.targets[i] = b.targets[i][:0]
		b.heads[i] = 0
	}
	for _, bi := range b.pending {
		best := cluster.NodeID(-1)
		bestFinish := 0.0
		size := float64(bi.size)
		b.repBuf = b.c.fs.LiveReplicas(bi.id, b.repBuf[:0])
		for _, loc := range b.repBuf {
			if !b.estValid[int(loc)] {
				continue
			}
			f := b.finish[int(loc)] + b.perByte[int(loc)]*size
			if best < 0 || f < bestFinish {
				best = loc
				bestFinish = f
			}
		}
		if best < 0 {
			bi.hasTarget = false
			continue
		}
		if tr := b.c.tr; tr.Enabled() && (!bi.hasTarget || bi.target != best) {
			// Record the ordering decision only when it changes, so the
			// trace shows retargeting without one instant per pass.
			tr.Instant("migration", "target", int(best),
				trace.Int("block", int64(bi.id)))
		}
		bi.target = best
		bi.hasTarget = true
		b.finish[int(best)] = bestFinish
		b.targets[int(best)] = append(b.targets[int(best)], bi)
	}
}

func (b *ReferenceDYRSBinder) stopBinder() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
}
