package migration

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

func TestOrderPolicyString(t *testing.T) {
	if OrderFIFO.String() != "FIFO" || OrderSJF.String() != "SJF" || OrderEDF.String() != "EDF" {
		t.Error("order policy names wrong")
	}
}

func TestHintForAggregation(t *testing.T) {
	r := newRig(t, 30, 4, NewDYRSBinder(), nil, DefaultConfig())
	defer r.c.Shutdown()
	r.mkFile(t, "shared", 1)
	// Two jobs reference the same block with different hints: the
	// earliest start and the smallest size win.
	r.c.Migrate(1, []string{"shared"}, false)
	r.c.Migrate(2, []string{"shared"}, false)
	r.c.SetJobHint(1, JobHint{ExpectedStart: sim.Time(20 * time.Second), InputBytes: 1 * sim.GB})
	r.c.SetJobHint(2, JobHint{ExpectedStart: sim.Time(5 * time.Second), InputBytes: 8 * sim.GB})
	blocks, _ := r.fs.FileBlocks([]string{"shared"})
	bi := r.c.blockRecord(blocks[0].ID)
	start, bytes := r.c.hintFor(bi)
	if start != sim.Time(5*time.Second) {
		t.Errorf("start = %v, want 5s (earliest)", start)
	}
	if bytes != 1*sim.GB {
		t.Errorf("bytes = %d, want 1GB (smallest)", bytes)
	}
}

func TestHintForUnhinted(t *testing.T) {
	r := newRig(t, 31, 4, NewDYRSBinder(), nil, DefaultConfig())
	defer r.c.Shutdown()
	r.mkFile(t, "f", 1)
	r.c.Migrate(1, []string{"f"}, false)
	blocks, _ := r.fs.FileBlocks([]string{"f"})
	start, bytes := r.c.hintFor(r.c.blockRecord(blocks[0].ID))
	if start != 0 {
		t.Errorf("unhinted start = %v, want 0 (urgent)", start)
	}
	if bytes != 1<<62 {
		t.Errorf("unhinted bytes = %d, want sentinel", bytes)
	}
}

func TestSJFOrdersSmallJobsFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Order = OrderSJF
	r := newRig(t, 32, 4, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	r.mkFile(t, "big", 8)
	r.mkFile(t, "small", 1)
	r.c.Migrate(1, []string{"big"}, false)
	r.c.Migrate(2, []string{"small"}, false)
	r.c.SetJobHint(1, JobHint{InputBytes: 8 * 256 * sim.MB})
	r.c.SetJobHint(2, JobHint{InputBytes: 256 * sim.MB})
	b := r.c.binder.(*DYRSBinder)
	b.UpdateTargets()
	if got := r.fs.Block(b.pending[0].id).File; got != "small" {
		t.Errorf("SJF head of pending = %s, want small", got)
	}
}

func TestEDFOrdersEarliestDeadlineFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Order = OrderEDF
	r := newRig(t, 33, 4, NewDYRSBinder(), nil, cfg)
	defer r.c.Shutdown()
	r.mkFile(t, "later", 2)
	r.mkFile(t, "soon", 2)
	r.c.Migrate(1, []string{"later"}, false)
	r.c.Migrate(2, []string{"soon"}, false)
	r.c.SetJobHint(1, JobHint{ExpectedStart: sim.Time(60 * time.Second)})
	r.c.SetJobHint(2, JobHint{ExpectedStart: sim.Time(3 * time.Second)})
	b := r.c.binder.(*DYRSBinder)
	b.UpdateTargets()
	if got := r.fs.Block(b.pending[0].id).File; got != "soon" {
		t.Errorf("EDF head of pending = %s, want soon", got)
	}
}

func TestFIFOKeepsArrivalOrder(t *testing.T) {
	r := newRig(t, 34, 4, NewDYRSBinder(), nil, DefaultConfig())
	defer r.c.Shutdown()
	r.mkFile(t, "first", 2)
	r.mkFile(t, "second", 2)
	r.c.Migrate(1, []string{"first"}, false)
	r.c.Migrate(2, []string{"second"}, false)
	r.c.SetJobHint(1, JobHint{InputBytes: 10 * sim.GB, ExpectedStart: sim.Time(time.Hour)})
	r.c.SetJobHint(2, JobHint{InputBytes: sim.MB, ExpectedStart: 0})
	b := r.c.binder.(*DYRSBinder)
	b.UpdateTargets()
	if got := r.fs.Block(b.pending[0].id).File; got != "first" {
		t.Errorf("FIFO head = %s, want first (hints must be ignored)", got)
	}
}

func TestHintsClearedOnEvict(t *testing.T) {
	r := newRig(t, 35, 4, NewDYRSBinder(), nil, DefaultConfig())
	defer r.c.Shutdown()
	r.mkFile(t, "f", 1)
	r.c.Migrate(1, []string{"f"}, false)
	r.c.SetJobHint(1, JobHint{InputBytes: sim.GB})
	r.c.Evict(1)
	if _, ok := r.c.hints[1]; ok {
		t.Error("hint survived eviction")
	}
}
