package migration

import (
	"reflect"
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/policy"
	"dyrs/internal/sim"
)

func TestBinderByName(t *testing.T) {
	for _, name := range []string{"dyrs", "ignem", "costaware", "dyrs-ref"} {
		b, err := BinderByName(name)
		if err != nil {
			t.Errorf("BinderByName(%q): %v", name, err)
			continue
		}
		if b == nil {
			t.Errorf("BinderByName(%q) returned nil binder", name)
		}
	}
	if _, err := BinderByName("hdfs"); err == nil {
		t.Error("BinderByName(\"hdfs\") should refuse a non-migrating policy")
	}
	if _, err := BinderByName("bogus"); err == nil {
		t.Error("BinderByName(\"bogus\") should fail")
	}
	want := []string{"costaware", "dyrs", "dyrs-ref", "ignem"}
	if got := BinderNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("BinderNames() = %v, want %v", got, want)
	}
}

func TestNewPolicyBinderRejectsNonMigrating(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPolicyBinder(HDFS) did not panic")
		}
	}()
	NewPolicyBinder(policy.NewHDFS())
}

// TestPolicyBinderImmediateBindsOnMigrate drives the immediate-binding
// path: an Ignem-backed PolicyBinder must enqueue every block at
// OnMigrate (no pending list) and migrate the whole file.
func TestPolicyBinderImmediateBindsOnMigrate(t *testing.T) {
	b := NewPolicyBinder(policy.NewIgnem())
	r := newRig(t, 1, 4, b, nil, DefaultConfig())
	r.mkFile(t, "in", 8)
	if err := r.c.Migrate(1, []string{"in"}, false); err != nil {
		t.Fatal(err)
	}
	if got := b.PendingCount(); got != 0 {
		t.Errorf("immediate binder holds %d pending blocks", got)
	}
	r.eng.RunUntil(sim.Time(120 * time.Second))
	st := r.c.Stats()
	if st.Requested != 8 || st.Migrated != 8 {
		t.Fatalf("requested=%d migrated=%d, want 8/8", st.Requested, st.Migrated)
	}
	r.c.Shutdown()
}

// TestPolicyBinderCostAwareMigrates drives the new heuristic end to end
// through the delayed-binding machinery.
func TestPolicyBinderCostAwareMigrates(t *testing.T) {
	b := NewPolicyBinder(policy.NewCostAware())
	r := newRig(t, 1, 4, b, nil, DefaultConfig())
	r.mkFile(t, "in", 8)
	if err := r.c.Migrate(1, []string{"in"}, false); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(sim.Time(120 * time.Second))
	st := r.c.Stats()
	if st.Requested != 8 || st.Migrated != 8 {
		t.Fatalf("requested=%d migrated=%d, want 8/8", st.Requested, st.Migrated)
	}
	if b.Name() != "CostAware" {
		t.Errorf("binder name %q", b.Name())
	}
	if b.Policy().Name() != "CostAware" {
		t.Errorf("wrapped policy name %q", b.Policy().Name())
	}
	r.c.Shutdown()
}

// TestPolicyBinderMatchesReference is the unit-level half of the
// conformance proof: the same rig, workload and fault-free schedule run
// under the extracted DYRS policy and under the frozen reference binder
// must produce identical stats and identical per-slave migration
// counts. (The harness-level suite additionally pins trace hashes
// across fuzz scenarios with faults.)
func TestPolicyBinderMatchesReference(t *testing.T) {
	run := func(binder Binder) (Stats, []int) {
		r := newRig(t, 7, 6, binder, nil, DefaultConfig())
		r.mkFile(t, "a", 12)
		r.mkFile(t, "b", 9)
		if err := r.c.Migrate(1, []string{"a"}, false); err != nil {
			t.Fatal(err)
		}
		r.eng.RunUntil(sim.Time(5 * time.Second))
		if err := r.c.Migrate(2, []string{"b"}, false); err != nil {
			t.Fatal(err)
		}
		r.eng.RunUntil(sim.Time(180 * time.Second))
		per := make([]int, 6)
		for i := range per {
			per[i] = r.c.Slave(cluster.NodeID(i)).Migrations
		}
		st := r.c.Stats()
		r.c.Shutdown()
		return st, per
	}
	st1, per1 := run(NewDYRSBinder())
	st2, per2 := run(NewReferenceDYRSBinder())
	if st1 != st2 {
		t.Errorf("stats diverge: extracted %+v, reference %+v", st1, st2)
	}
	if !reflect.DeepEqual(per1, per2) {
		t.Errorf("per-slave migrations diverge: extracted %v, reference %v", per1, per2)
	}
}
