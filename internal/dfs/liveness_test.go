package dfs

import (
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

func TestHeartbeatStaleViewAndFailover(t *testing.T) {
	t.Parallel()
	eng, cl, fs := newTestFS(t, 5, 60)
	fs.EnableHeartbeats(DefaultLivenessConfig())
	defer fs.DisableHeartbeats()
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	victim := b.Replicas[0]

	eng.RunUntil(sim.Time(10 * time.Second))
	cl.KillNode(victim)

	// Immediately after the crash the NameNode still offers the victim.
	offered := false
	for _, r := range fs.Replicas(b.ID) {
		if r == victim {
			offered = true
		}
	}
	if !offered {
		t.Fatal("stale view dropped the dead node instantly")
	}

	// A read placed at the dead node fails over to a live replica and
	// still completes, paying the connect timeout (§III-C2).
	var res ReadResult
	if err := fs.ReadBlock(victim, b.ID, func(r ReadResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * time.Minute))
	if res.Failed {
		t.Fatal("read failed despite live replicas")
	}
	if res.Server == victim {
		t.Errorf("read served by the dead node %v", res.Server)
	}
	if fs.FailedOvers() == 0 {
		t.Error("no failover counted")
	}
	// The read paid at least the connect timeout on top of the ~2s read.
	if d := res.Duration().Seconds(); d < 2.5 {
		t.Errorf("failover read took only %.1fs; connect timeout not charged", d)
	}

	// After the missed-beat window the NameNode marks the node dead and
	// stops offering it.
	eng.RunUntil(sim.Time(5 * time.Minute))
	for _, r := range fs.Replicas(b.ID) {
		if r == victim {
			t.Error("dead node still offered after missed heartbeats")
		}
	}
}

func TestHeartbeatMemReplicaFailover(t *testing.T) {
	t.Parallel()
	eng, cl, fs := newTestFS(t, 5, 61)
	fs.EnableHeartbeats(DefaultLivenessConfig())
	defer fs.DisableHeartbeats()
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	memNode := b.Replicas[0]
	fs.RegisterMem(b.ID, memNode)
	eng.RunUntil(sim.Time(5 * time.Second))
	cl.KillNode(memNode)

	// A read right after the crash is directed to the (stale) memory
	// replica, times out, and fails over to a disk replica.
	reader := (memNode + 1) % 5
	var res ReadResult
	if err := fs.ReadBlock(reader, b.ID, func(r ReadResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * time.Minute))
	if res.Failed {
		t.Fatal("read failed despite live disk replicas")
	}
	if res.Source.FromMemory() {
		t.Errorf("read claims memory source from a dead node: %v", res.Source)
	}
}

func TestAllReplicasDeadMidFailover(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine(62)
	cl := cluster.New(eng, 2, nil)
	cfg := DefaultConfig()
	cfg.Replication = 2
	fs := New(cl, cfg)
	fs.EnableHeartbeats(DefaultLivenessConfig())
	defer fs.DisableHeartbeats()
	f, _ := fs.CreateFile("in", 256*sim.MB)
	eng.RunUntil(sim.Time(5 * time.Second))
	cl.KillNode(0)
	cl.KillNode(1)
	var res ReadResult
	got := false
	// Stale view still offers replicas, so the call succeeds
	// synchronously; the failure surfaces asynchronously.
	if err := fs.ReadBlock(0, f.Blocks[0], func(r ReadResult) { res = r; got = true }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(5 * time.Minute))
	if !got || !res.Failed {
		t.Errorf("expected asynchronous failure, got %+v (delivered=%v)", res, got)
	}
}

func TestLivenessConfigValidation(t *testing.T) {
	t.Parallel()
	_, _, fs := newTestFS(t, 3, 63)
	defer func() {
		if recover() == nil {
			t.Error("invalid liveness config accepted")
		}
	}()
	fs.EnableHeartbeats(LivenessConfig{})
}
