//go:build dyrs_canary

package dfs

// canaryLeakBufferAccounting: see canary.go. Under the dyrs_canary
// build tag DropAllMem skips the buffered-byte release on a slave
// crash, leaking accounting state the fuzz harness's fsck and
// memory-conservation oracles must catch.
const canaryLeakBufferAccounting = true
