package dfs

import (
	"strings"
	"testing"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

// Fsck unit tests: deliberately corrupt each class of internal state and
// assert the corresponding documented invariant is reported. These are
// the direct counterparts of the chaos/fuzz harness, which relies on
// Fsck as its structural oracle — if Fsck is blind, so is the harness.

// fsckRig builds a small healthy file system with one registered memory
// replica, and asserts it starts clean.
func fsckRig(t *testing.T) (*FS, *File, cluster.NodeID) {
	t.Helper()
	_, _, fs := newTestFS(t, 5, 77)
	f, err := fs.CreateFile("in", 3*256*sim.MB)
	if err != nil {
		t.Fatal(err)
	}
	memNode := fs.Block(f.Blocks[0]).Replicas[0]
	fs.RegisterMem(f.Blocks[0], memNode)
	if errs := fs.Fsck(); len(errs) != 0 {
		t.Fatalf("healthy rig is not clean: %v", errs)
	}
	return fs, f, memNode
}

// expectFsck asserts at least one Fsck error mentions want.
func expectFsck(t *testing.T, fs *FS, want string) {
	t.Helper()
	errs := fs.Fsck()
	for _, err := range errs {
		if strings.Contains(err.Error(), want) {
			return
		}
	}
	t.Fatalf("no fsck error containing %q; got %v", want, errs)
}

func TestFsckUnknownBlockReference(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	f.Blocks = append(f.Blocks, BlockID(9999))
	expectFsck(t, fs, "references unknown block")
}

func TestFsckBlockIndexAndOwnership(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	// Swapping two blocks breaks the dense-ID invariant.
	f.Blocks[0], f.Blocks[1] = f.Blocks[1], f.Blocks[0]
	expectFsck(t, fs, "dense ID range")

	fs2, f2, _ := fsckRig(t)
	if _, err := fs2.CreateFile("someone-else", 256*sim.MB); err != nil {
		t.Fatal(err)
	}
	// Point the block's fileOf column at the other file.
	fs2.table.fileOf[int(f2.Blocks[0])] = int32(len(fs2.fileList) - 1)
	expectFsck(t, fs2, "claims file")
}

func TestFsckFileSizeMismatch(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	f.Size += 123
	expectFsck(t, fs, "block sizes sum to")
}

func TestFsckReplicaCountAndDuplicates(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	base := int(f.Blocks[1]) * fs.table.stride
	for i := 0; i < fs.table.stride; i++ {
		fs.table.replicas[base+i] = -1
	}
	expectFsck(t, fs, "has 0 replicas")
	fs.table.replicas[base] = int32(memNode)
	fs.table.replicas[base+1] = int32(memNode)
	expectFsck(t, fs, "duplicate replica")
}

func TestFsckRegistryPointsAtEmptyNode(t *testing.T) {
	t.Parallel()
	fs, _, memNode := fsckRig(t)
	// Forward direction: registry entry without a backing buffer.
	fs.dns[int(memNode)].resident = fs.dns[int(memNode)].resident[:0]
	fs.dns[int(memNode)].memUsed = 0
	expectFsck(t, fs, "the resident list disagrees")
}

func TestFsckBufferWithoutRegistryEntry(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	// Reverse direction: buffered block the registry does not know (or
	// records on another node) — the orphan shape a master restart plus
	// re-migration used to leave behind.
	b := fs.Block(f.Blocks[1])
	other := b.Replicas[0]
	fs.dns[int(other)].resident = append(fs.dns[int(other)].resident, b.ID)
	fs.dns[int(other)].memUsed += b.Size
	expectFsck(t, fs, "but the registry records holder")
	_ = memNode
}

func TestFsckAccountingMismatch(t *testing.T) {
	t.Parallel()
	fs, _, memNode := fsckRig(t)
	fs.dns[int(memNode)].memUsed += 7
	expectFsck(t, fs, "accounting: used=")
}

func TestFsckNegativeAccounting(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	fs.DropMem(f.Blocks[0], memNode)
	fs.dns[int(memNode)].memUsed = -1
	expectFsck(t, fs, "negative buffered bytes")
}

func TestFsckMemoryCapacityExceeded(t *testing.T) {
	t.Parallel()
	fs, _, memNode := fsckRig(t)
	dn := fs.dns[int(memNode)]
	dn.memUsed = dn.node.Cfg.MemCapacity + 1
	expectFsck(t, fs, "exceeding its memory capacity")
}

func TestFsckBufferWithoutDiskReplica(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	b := fs.Block(f.Blocks[2])
	// Find a node that holds no disk replica of the block.
	var outsider cluster.NodeID = -1
	for n := 0; n < 5; n++ {
		holds := false
		for _, r := range b.Replicas {
			if int(r) == n {
				holds = true
			}
		}
		if !holds {
			outsider = cluster.NodeID(n)
			break
		}
	}
	if outsider < 0 {
		t.Fatal("every node holds a replica; enlarge the rig")
	}
	fs.RegisterMem(b.ID, outsider)
	expectFsck(t, fs, "without holding a disk replica")
}
