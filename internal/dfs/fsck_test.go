package dfs

import (
	"strings"
	"testing"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

// Fsck unit tests: deliberately corrupt each class of internal state and
// assert the corresponding documented invariant is reported. These are
// the direct counterparts of the chaos/fuzz harness, which relies on
// Fsck as its structural oracle — if Fsck is blind, so is the harness.

// fsckRig builds a small healthy file system with one registered memory
// replica, and asserts it starts clean.
func fsckRig(t *testing.T) (*FS, *File, cluster.NodeID) {
	t.Helper()
	_, _, fs := newTestFS(t, 5, 77)
	f, err := fs.CreateFile("in", 3*256*sim.MB)
	if err != nil {
		t.Fatal(err)
	}
	memNode := fs.Block(f.Blocks[0]).Replicas[0]
	fs.RegisterMem(f.Blocks[0], memNode)
	if errs := fs.Fsck(); len(errs) != 0 {
		t.Fatalf("healthy rig is not clean: %v", errs)
	}
	return fs, f, memNode
}

// expectFsck asserts at least one Fsck error mentions want.
func expectFsck(t *testing.T, fs *FS, want string) {
	t.Helper()
	errs := fs.Fsck()
	for _, err := range errs {
		if strings.Contains(err.Error(), want) {
			return
		}
	}
	t.Fatalf("no fsck error containing %q; got %v", want, errs)
}

func TestFsckUnknownBlockReference(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	f.Blocks = append(f.Blocks, BlockID(9999))
	expectFsck(t, fs, "references unknown block")
}

func TestFsckBlockIndexAndOwnership(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	// Swapping two blocks breaks the dense-index invariant.
	f.Blocks[0], f.Blocks[1] = f.Blocks[1], f.Blocks[0]
	expectFsck(t, fs, "has index")

	fs2, f2, _ := fsckRig(t)
	fs2.blocks[int(f2.Blocks[0])].File = "someone-else"
	expectFsck(t, fs2, "claims file")
}

func TestFsckFileSizeMismatch(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	f.Size += 123
	expectFsck(t, fs, "block sizes sum to")
}

func TestFsckReplicaCountAndDuplicates(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	b := fs.blocks[int(f.Blocks[1])]
	b.Replicas = nil
	expectFsck(t, fs, "has 0 replicas")
	b.Replicas = []cluster.NodeID{memNode, memNode}
	expectFsck(t, fs, "duplicate replica")
}

func TestFsckRegistryPointsAtEmptyNode(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	// Forward direction: registry entry without a backing buffer.
	delete(fs.dns[int(memNode)].memBlocks, f.Blocks[0])
	fs.dns[int(memNode)].memUsed = 0
	expectFsck(t, fs, "the DataNode does not hold it")
}

func TestFsckBufferWithoutRegistryEntry(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	// Reverse direction: buffered block the registry does not know (or
	// records on another node) — the orphan shape a master restart plus
	// re-migration used to leave behind.
	b := fs.Block(f.Blocks[1])
	other := b.Replicas[0]
	fs.dns[int(other)].memBlocks[b.ID] = b.Size
	fs.dns[int(other)].memUsed += b.Size
	expectFsck(t, fs, "but the registry records holder")
	_ = memNode
}

func TestFsckAccountingMismatch(t *testing.T) {
	t.Parallel()
	fs, _, memNode := fsckRig(t)
	fs.dns[int(memNode)].memUsed += 7
	expectFsck(t, fs, "accounting: used=")
}

func TestFsckNegativeAccounting(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	dn := fs.dns[int(memNode)]
	delete(dn.memBlocks, f.Blocks[0])
	delete(fs.mem, f.Blocks[0])
	dn.memUsed = -1
	expectFsck(t, fs, "negative buffered bytes")
}

func TestFsckMemoryCapacityExceeded(t *testing.T) {
	t.Parallel()
	fs, f, memNode := fsckRig(t)
	dn := fs.dns[int(memNode)]
	huge := dn.node.Cfg.MemCapacity + 1
	dn.memBlocks[f.Blocks[0]] = huge
	dn.memUsed = huge
	expectFsck(t, fs, "exceeding its memory capacity")
}

func TestFsckBufferWithoutDiskReplica(t *testing.T) {
	t.Parallel()
	fs, f, _ := fsckRig(t)
	b := fs.Block(f.Blocks[2])
	// Find a node that holds no disk replica of the block.
	var outsider cluster.NodeID = -1
	for n := 0; n < 5; n++ {
		holds := false
		for _, r := range b.Replicas {
			if int(r) == n {
				holds = true
			}
		}
		if !holds {
			outsider = cluster.NodeID(n)
			break
		}
	}
	if outsider < 0 {
		t.Fatal("every node holds a replica; enlarge the rig")
	}
	fs.RegisterMem(b.ID, outsider)
	expectFsck(t, fs, "without holding a disk replica")
}
