package dfs

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

func newTestFS(t *testing.T, nodes int, seed int64) (*sim.Engine, *cluster.Cluster, *FS) {
	t.Helper()
	eng := sim.NewEngine(seed)
	cl := cluster.New(eng, nodes, nil)
	fs := New(cl, DefaultConfig())
	return eng, cl, fs
}

func TestCreateFileBlocks(t *testing.T) {
	t.Parallel()
	_, _, fs := newTestFS(t, 5, 1)
	f, err := fs.CreateFile("input", 1000*sim.MB)
	if err != nil {
		t.Fatal(err)
	}
	// 1000MB / 256MB -> 4 blocks (3 full + 232MB).
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	var total sim.Bytes
	for i, id := range f.Blocks {
		b := fs.Block(id)
		total += b.Size
		if b.File != "input" || b.Index != i {
			t.Errorf("block %d metadata wrong: %+v", id, b)
		}
		if len(b.Replicas) != 3 {
			t.Errorf("block %d has %d replicas", id, len(b.Replicas))
		}
		seen := map[cluster.NodeID]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Errorf("block %d has duplicate replica %v", id, r)
			}
			seen[r] = true
		}
	}
	if total != 1000*sim.MB {
		t.Errorf("block sizes sum to %d", total)
	}
}

func TestCreateFileErrors(t *testing.T) {
	t.Parallel()
	_, _, fs := newTestFS(t, 5, 1)
	if _, err := fs.CreateFile("a", 1*sim.MB); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateFile("a", 1*sim.MB); !errors.Is(err, ErrFileExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := fs.CreateFile("b", 0); err == nil {
		t.Error("zero-size create should fail")
	}
	if _, err := fs.File("missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("missing file: %v", err)
	}
	if _, err := fs.FileBlocks([]string{"a", "missing"}); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("FileBlocks missing: %v", err)
	}
}

func TestPlacementSpreads(t *testing.T) {
	t.Parallel()
	_, cl, fs := newTestFS(t, 7, 2)
	_, err := fs.CreateFile("big", 70*256*sim.MB)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cl.Size())
	for i := 0; i < fs.NumBlocks(); i++ {
		for _, r := range fs.Block(BlockID(i)).Replicas {
			counts[int(r)]++
		}
	}
	// 70 blocks x 3 replicas over 7 nodes = 30 each expected; the first
	// replica rotates so the spread must be reasonably tight.
	for i, c := range counts {
		if c < 15 || c > 45 {
			t.Errorf("node %d has %d replicas; distribution %v", i, c, counts)
		}
	}
}

func TestReadBlockDiskLocalPreferred(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 3)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	at := b.Replicas[1] // a replica holder; local read expected
	var res ReadResult
	if err := fs.ReadBlock(at, b.ID, func(r ReadResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res.Source != SourceDiskLocal || res.Server != at {
		t.Errorf("source=%v server=%v, want disk-local at %v", res.Source, res.Server, at)
	}
	// 256MB at 130MB/s ~ 1.97s.
	if d := res.Duration().Seconds(); d < 1.9 || d > 2.1 {
		t.Errorf("duration = %vs", d)
	}
	if fs.DataNode(at).DiskReads != 1 {
		t.Errorf("disk reads = %d", fs.DataNode(at).DiskReads)
	}
}

func TestReadBlockDiskRemote(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 4)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	// Find a node holding no replica.
	var at cluster.NodeID = -1
	for i := 0; i < 5; i++ {
		holds := false
		for _, r := range b.Replicas {
			if r == cluster.NodeID(i) {
				holds = true
			}
		}
		if !holds {
			at = cluster.NodeID(i)
			break
		}
	}
	var res ReadResult
	if err := fs.ReadBlock(at, b.ID, func(r ReadResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res.Source != SourceDiskRemote {
		t.Errorf("source = %v, want disk-remote", res.Source)
	}
	if fs.DataNode(res.Server).RemoteServes != 1 {
		t.Errorf("remote serves = %d", fs.DataNode(res.Server).RemoteServes)
	}
}

func TestReadRedirectsToMemory(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 5)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	memNode := b.Replicas[0]
	fs.RegisterMem(b.ID, memNode)

	// Local memory read.
	var res ReadResult
	fs.ReadBlock(memNode, b.ID, func(r ReadResult) { res = r })
	eng.Run()
	if res.Source != SourceMemLocal {
		t.Fatalf("source = %v, want mem-local", res.Source)
	}
	if d := res.Duration().Seconds(); d > 0.2 {
		t.Errorf("memory read took %vs, too slow", d)
	}

	// Remote memory read from another node.
	other := (memNode + 1) % 5
	fs.ReadBlock(other, b.ID, func(r ReadResult) { res = r })
	eng.Run()
	if res.Source != SourceMemRemote || res.Server != memNode {
		t.Errorf("source=%v server=%v, want mem-remote from %v", res.Source, res.Server, memNode)
	}
	// Remote memory read is far faster than the ~2s disk read.
	if d := res.Duration().Seconds(); d > 0.5 {
		t.Errorf("remote memory read took %vs", d)
	}
}

func TestMemAccounting(t *testing.T) {
	t.Parallel()
	_, _, fs := newTestFS(t, 5, 6)
	f, _ := fs.CreateFile("in", 3*256*sim.MB)
	n := cluster.NodeID(0)
	for _, id := range f.Blocks {
		fs.RegisterMem(id, n)
	}
	dn := fs.DataNode(n)
	if dn.MemUsed() != 3*256*sim.MB || dn.MemBlockCount() != 3 {
		t.Fatalf("mem used=%d count=%d", dn.MemUsed(), dn.MemBlockCount())
	}
	// Double registration is idempotent.
	fs.RegisterMem(f.Blocks[0], n)
	if dn.MemUsed() != 3*256*sim.MB {
		t.Errorf("double-register changed accounting: %d", dn.MemUsed())
	}
	fs.DropMem(f.Blocks[0], n)
	if dn.MemUsed() != 2*256*sim.MB || dn.HasMem(f.Blocks[0]) {
		t.Errorf("drop failed: used=%d", dn.MemUsed())
	}
	if _, ok := fs.MemReplica(f.Blocks[0]); ok {
		t.Error("dropped block still registered")
	}
	// Dropping a non-resident block is a no-op.
	fs.DropMem(f.Blocks[0], n)
	fs.DropAllMem(n)
	if dn.MemUsed() != 0 || fs.MemReplicaCount() != 0 || fs.TotalMemUsed() != 0 {
		t.Errorf("DropAllMem left state: used=%d count=%d", dn.MemUsed(), fs.MemReplicaCount())
	}
}

func TestMemReplicaIgnoresDeadNode(t *testing.T) {
	t.Parallel()
	eng, cl, fs := newTestFS(t, 5, 7)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	memNode := b.Replicas[0]
	fs.RegisterMem(b.ID, memNode)
	cl.KillNode(memNode)
	if _, ok := fs.MemReplica(b.ID); ok {
		t.Error("dead node's memory replica still offered")
	}
	// Read must fail over to a live disk replica.
	var res ReadResult
	if err := fs.ReadBlock(memNode+1, b.ID, func(r ReadResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res.Source.FromMemory() {
		t.Errorf("read served from dead memory: %v", res.Source)
	}
	if res.Server == memNode {
		t.Error("read served by dead node")
	}
}

func TestReadNoReplica(t *testing.T) {
	t.Parallel()
	_, cl, fs := newTestFS(t, 3, 8)
	f, _ := fs.CreateFile("in", 10*sim.MB)
	for i := 0; i < 3; i++ {
		cl.KillNode(cluster.NodeID(i))
	}
	if err := fs.ReadBlock(0, f.Blocks[0], nil); !errors.Is(err, ErrNoReplica) {
		t.Errorf("err = %v, want ErrNoReplica", err)
	}
}

func TestMigrateToMemory(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 9)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	dn := fs.DataNode(b.Replicas[0])
	var dur sim.Duration
	if _, err := dn.MigrateToMemory(b.ID, 1, func(d sim.Duration) { dur = d }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !dn.HasMem(b.ID) {
		t.Fatal("block not in memory after migration")
	}
	if loc, ok := fs.MemReplica(b.ID); !ok || loc != dn.Node().ID {
		t.Errorf("registry: %v %v", loc, ok)
	}
	if s := dur.Seconds(); s < 1.9 || s > 2.1 {
		t.Errorf("migration took %vs, want ~2s", s)
	}
}

func TestMigrateWithoutReplicaFails(t *testing.T) {
	t.Parallel()
	_, _, fs := newTestFS(t, 5, 10)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	for i := 0; i < 5; i++ {
		holds := false
		for _, r := range b.Replicas {
			if r == cluster.NodeID(i) {
				holds = true
			}
		}
		if !holds {
			if _, err := fs.DataNode(cluster.NodeID(i)).MigrateToMemory(b.ID, 1, nil); err == nil {
				t.Error("migration on non-replica node should fail")
			}
			return
		}
	}
}

func TestOnReadHook(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 11)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	var hookBlock BlockID = -1
	var hookAt cluster.NodeID = -1
	if err := fs.OnRead(func(id BlockID, at cluster.NodeID) { hookBlock, hookAt = id, at }); err != nil {
		t.Fatal(err)
	}
	if err := fs.OnRead(nil); err == nil {
		t.Error("nil hook accepted")
	}
	fs.ReadBlock(b.Replicas[0], b.ID, nil)
	eng.Run()
	if hookBlock != b.ID || hookAt != b.Replicas[0] {
		t.Errorf("hook saw %v@%v", hookBlock, hookAt)
	}
}

func TestWriteBlocks(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 12)
	done := false
	fs.WriteBlocks(0, 512*sim.MB, 2, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("write did not complete")
	}
	// 512MB local at 130MB/s shared with nothing: the local disk wrote two
	// 256MB blocks -> at least ~3.9s elapsed.
	if s := eng.Now().Seconds(); s < 3.5 {
		t.Errorf("write finished suspiciously fast: %vs", s)
	}
}

func TestWriteBlocksZeroSize(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 3, 13)
	done := false
	fs.WriteBlocks(0, 0, 1, func() { done = true })
	eng.Run()
	if !done {
		t.Error("zero-size write should still call done")
	}
}

func TestReadSourceString(t *testing.T) {
	t.Parallel()
	cases := map[ReadSource]string{
		SourceDiskLocal:  "disk-local",
		SourceDiskRemote: "disk-remote",
		SourceMemLocal:   "mem-local",
		SourceMemRemote:  "mem-remote",
		ReadSource(99):   "unknown",
	}
	for src, want := range cases {
		if src.String() != want {
			t.Errorf("%d.String() = %q", src, src.String())
		}
	}
	if !SourceMemLocal.FromMemory() || SourceDiskLocal.FromMemory() {
		t.Error("FromMemory wrong")
	}
}

// Property: memory accounting balances under random register/drop
// sequences — used bytes always equal the sum of resident block sizes and
// never go negative.
func TestPropertyMemAccountingBalances(t *testing.T) {
	t.Parallel()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine(seed)
		cl := cluster.New(eng, 4, nil)
		fs := New(cl, DefaultConfig())
		f, err := fs.CreateFile("f", sim.Bytes(1+rng.Intn(40))*256*sim.MB)
		if err != nil {
			return false
		}
		for op := 0; op < 200; op++ {
			id := f.Blocks[rng.Intn(len(f.Blocks))]
			node := cluster.NodeID(rng.Intn(4))
			if rng.Intn(2) == 0 {
				fs.RegisterMem(id, node)
			} else {
				fs.DropMem(id, node)
			}
		}
		var want sim.Bytes
		for i := 0; i < 4; i++ {
			dn := fs.DataNode(cluster.NodeID(i))
			if dn.MemUsed() < 0 {
				return false
			}
			want += dn.MemUsed()
		}
		return fs.TotalMemUsed() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortedBlockIDs(t *testing.T) {
	t.Parallel()
	_, _, fs := newTestFS(t, 5, 14)
	fs.CreateFile("a", 512*sim.MB)
	fs.CreateFile("b", 512*sim.MB)
	ids := fs.SortedBlockIDs([]string{"b", "a"})
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("not sorted: %v", ids)
		}
	}
	if fs.SortedBlockIDs([]string{"missing"}) != nil {
		t.Error("missing file should return nil")
	}
}

func TestConcurrentReadsShareDisk(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 15)
	cfg := fs.Config()
	f, _ := fs.CreateFile("in", 2*cfg.BlockSize)
	b0, b1 := fs.Block(f.Blocks[0]), fs.Block(f.Blocks[1])
	// Force both reads onto the same serving node if they share a replica.
	var common cluster.NodeID = -1
	for _, r0 := range b0.Replicas {
		for _, r1 := range b1.Replicas {
			if r0 == r1 {
				common = r0
			}
		}
	}
	if common < 0 {
		t.Skip("no common replica with this seed")
	}
	var d0, d1 time.Duration
	fs.ReadBlock(common, b0.ID, func(r ReadResult) { d0 = r.Duration() })
	fs.ReadBlock(common, b1.ID, func(r ReadResult) { d1 = r.Duration() })
	eng.Run()
	// Sharing one disk with seek penalty must take >2x a solo read.
	if d0.Seconds() < 3.9 || d1.Seconds() < 3.9 {
		t.Errorf("shared reads took %v and %v; expected >3.9s", d0, d1)
	}
}

func TestFsckCleanState(t *testing.T) {
	t.Parallel()
	eng, _, fs := newTestFS(t, 5, 40)
	fs.CreateFile("a", 3*256*sim.MB)
	fs.CreateFile("b", 100*sim.MB)
	f, _ := fs.File("a")
	fs.RegisterMem(f.Blocks[0], fs.Block(f.Blocks[0]).Replicas[0])
	eng.Run()
	if errs := fs.Fsck(); len(errs) != 0 {
		t.Errorf("clean state reported errors: %v", errs)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	t.Parallel()
	_, _, fs := newTestFS(t, 5, 41)
	f, _ := fs.CreateFile("a", 2*256*sim.MB)
	// Corrupt: register a memory replica on a node without a disk
	// replica (violates invariant 5), bypassing the migration path.
	b := fs.Block(f.Blocks[0])
	var nonHolder cluster.NodeID = -1
	for i := 0; i < 5; i++ {
		holds := false
		for _, r := range b.Replicas {
			if r == cluster.NodeID(i) {
				holds = true
			}
		}
		if !holds {
			nonHolder = cluster.NodeID(i)
			break
		}
	}
	fs.RegisterMem(b.ID, nonHolder)
	if errs := fs.Fsck(); len(errs) == 0 {
		t.Error("fsck missed a memory replica without a disk replica")
	}
}

func TestWritePipelineReplication(t *testing.T) {
	t.Parallel()
	// Replication 3 charges three disks and two NIC hops; the write
	// completes with the slowest leg, so it is no faster than a single
	// local write but the remote replicas are materialized.
	eng, _, fs := newTestFS(t, 5, 42)
	done := false
	fs.WriteBlocks(0, 256*sim.MB, 3, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("pipelined write did not complete")
	}
	written := 0
	for i := 0; i < 5; i++ {
		written += fs.DataNode(cluster.NodeID(i)).BlocksWritten
	}
	if written != 3 {
		t.Errorf("replica writes = %d, want 3", written)
	}
	// One 256MB block through parallel 130MB/s disks: ~2s (disk-bound,
	// NIC legs are much faster).
	if s := eng.Now().Seconds(); s < 1.9 || s > 2.5 {
		t.Errorf("pipelined write took %.1fs, want ~2s", s)
	}
}

func TestWritePipelineCrossRackUsesCore(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine(43)
	cl := cluster.New(eng, 4, nil)
	cl.ConfigureRacks(2, 20*float64(sim.MB)) // tiny core
	cfg := DefaultConfig()
	cfg.Replication = 2
	fs := New(cl, cfg)
	done := false
	fs.WriteBlocks(0, 256*sim.MB, 2, func() { done = true })
	eng.RunFor(5 * time.Minute)
	if !done {
		t.Fatal("write did not complete")
	}
	// If the second replica crossed racks, the 20MB/s core dominates:
	// ~12.8s. writeTargets picks randomly, so accept either case but
	// verify the timing matches the topology of the chosen targets.
	if s := eng.Now().Seconds(); s > 3 && s < 10 {
		t.Errorf("write took %.1fs: neither disk-bound (~2s) nor core-bound (~13s)", s)
	}
}
