package dfs

import (
	"fmt"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

// blockTable is the NameNode's block catalog as a struct of arrays.
//
// The original implementation kept one heap-allocated Block struct (plus
// a replica slice) per block and three layers of maps for the in-memory
// replica registry. At the paper's 8-node scale that is invisible; at
// datacenter scale (10⁶-10⁷ blocks) it is ~100+ bytes and two pointer
// dereferences per block, and every registry operation hashes a map key.
// The table packs the same information into parallel arrays indexed by
// the dense BlockID:
//
//	size     uint32  block length (blocks are bounded by the 4 GiB check
//	                 in New; the paper uses 256 MB)
//	fileOf   int32   index into FS.fileList
//	replicas int32×R replica locations, stride R = cfg.Replication,
//	                 padded with -1
//	memNode  int32   node holding the in-memory replica, -1 if none
//	memPos   int32   position of the block in that node's resident list
//
// for ~(16+4R) bytes per block, no per-block allocations, and O(1)
// registry lookup/insert/remove. The memNode/memPos columns together
// with the per-node resident lists ARE the memory-replica registry:
// there is one source of truth, kept in bijection by construction and
// cross-checked by Fsck invariant 3/6.
type blockTable struct {
	stride   int
	size     []uint32
	fileOf   []int32
	replicas []int32
	memNode  []int32
	memPos   []int32
}

func newBlockTable(stride int) *blockTable {
	if stride <= 0 {
		panic("dfs: block table needs a positive replication stride")
	}
	return &blockTable{stride: stride}
}

// len reports the number of blocks in the table.
func (t *blockTable) len() int { return len(t.size) }

// add appends a block and returns its id. reps may be shorter than the
// stride (degenerate clusters); missing slots are padded with -1.
func (t *blockTable) add(size sim.Bytes, file int32, reps []cluster.NodeID) BlockID {
	if size <= 0 || size > maxBlockBytes {
		panic(fmt.Sprintf("dfs: block size %d outside (0, %d]", size, int64(maxBlockBytes)))
	}
	id := BlockID(len(t.size))
	t.size = append(t.size, uint32(size))
	t.fileOf = append(t.fileOf, file)
	for i := 0; i < t.stride; i++ {
		r := int32(-1)
		if i < len(reps) {
			r = int32(reps[i])
		}
		t.replicas = append(t.replicas, r)
	}
	t.memNode = append(t.memNode, -1)
	t.memPos = append(t.memPos, -1)
	return id
}

// grow pre-sizes the arrays for n additional blocks, so bulk file
// creation at scale does not pay repeated slice regrowth. Reallocation
// is geometric (at least doubling) and skipped entirely when capacity
// already suffices — growing exactly per file would copy the whole
// table once per CreateFile, turning bulk namespace creation quadratic.
func (t *blockTable) grow(n int) {
	if n <= 0 {
		return
	}
	t.size = growSlice(t.size, len(t.size)+n)
	t.fileOf = growSlice(t.fileOf, len(t.fileOf)+n)
	t.replicas = growSlice(t.replicas, len(t.replicas)+n*t.stride)
	t.memNode = growSlice(t.memNode, len(t.memNode)+n)
	t.memPos = growSlice(t.memPos, len(t.memPos)+n)
}

// growSlice returns s with capacity >= need, at least doubling on
// reallocation so repeated grows amortize to O(1) per element.
func growSlice[T any](s []T, need int) []T {
	if need <= cap(s) {
		return s
	}
	newCap := 2 * cap(s)
	if newCap < need {
		newCap = need
	}
	return append(make([]T, 0, newCap), s...)
}

// blockSize reports the block's length.
func (t *blockTable) blockSize(id BlockID) sim.Bytes { return sim.Bytes(t.size[int(id)]) }

// replicaCount reports how many replica slots of the block are filled.
func (t *blockTable) replicaCount(id BlockID) int {
	base := int(id) * t.stride
	n := 0
	for i := 0; i < t.stride; i++ {
		if t.replicas[base+i] >= 0 {
			n++
		}
	}
	return n
}

// appendReplicas appends the block's replica locations to buf and
// returns it; with a pre-sized buf this allocates nothing.
func (t *blockTable) appendReplicas(id BlockID, buf []cluster.NodeID) []cluster.NodeID {
	base := int(id) * t.stride
	for i := 0; i < t.stride; i++ {
		if r := t.replicas[base+i]; r >= 0 {
			buf = append(buf, cluster.NodeID(r))
		}
	}
	return buf
}

// holdsReplica reports whether node holds a disk replica of the block.
func (t *blockTable) holdsReplica(id BlockID, node cluster.NodeID) bool {
	base := int(id) * t.stride
	for i := 0; i < t.stride; i++ {
		if t.replicas[base+i] == int32(node) {
			return true
		}
	}
	return false
}

// rehome replaces the block's replica on `from` with `to`. It reports
// whether a slot actually changed (false when `from` held no replica).
func (t *blockTable) rehome(id BlockID, from, to cluster.NodeID) bool {
	base := int(id) * t.stride
	for i := 0; i < t.stride; i++ {
		if t.replicas[base+i] == int32(from) {
			t.replicas[base+i] = int32(to)
			return true
		}
	}
	return false
}
