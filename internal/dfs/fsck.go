package dfs

import (
	"fmt"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

// Fsck walks the file system's internal state and reports invariant
// violations. It is used by failure-injection tests to prove that
// crashes, restarts and evictions never corrupt the catalog or the
// memory accounting.
//
// Invariants checked:
//  1. Every file's blocks exist, belong to it, and are indexed densely
//     (consecutive block IDs from the file's first block).
//  2. Every block has between 1 and Replication replicas, all distinct,
//     none on a decommissioned node unless no replacement existed.
//  3. The in-memory replica registry (the table's memNode/memPos
//     columns) and the per-node resident lists agree in both directions:
//     the registry points into the holder's resident list, and every
//     resident block is the registry's holder (a block has at most one
//     memory replica).
//  4. Per-DataNode buffered-byte accounting equals the sum of resident
//     block sizes, and no node exceeds its memory capacity.
//  5. Every buffered block is also a disk-replica holder's block (memory
//     replicas are created by migrating a local disk replica).
//  6. The per-node replica postings index is exact: every posting entry
//     is backed by a replica slot on that node, no entry is duplicated,
//     and the index covers every filled replica slot.
func (fs *FS) Fsck() []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// 1-2: catalog structure.
	filledSlots := 0
	for name, f := range fs.files {
		var total sim.Bytes
		for i, id := range f.Blocks {
			if int(id) >= fs.table.len() {
				report("file %s references unknown block %d", name, id)
				continue
			}
			owner := fs.fileList[fs.table.fileOf[int(id)]]
			if owner.Name != name {
				report("block %d claims file %s, referenced by %s", id, owner.Name, name)
			}
			if len(f.Blocks) > 0 && id != f.Blocks[0]+BlockID(i) {
				report("block %d of %s breaks the file's dense ID range (index %d, first %d)",
					id, name, i, f.Blocks[0])
			}
			nrep := fs.table.replicaCount(id)
			if nrep == 0 || nrep > fs.cfg.Replication {
				report("block %d has %d replicas", id, nrep)
			}
			filledSlots += nrep
			base := int(id) * fs.table.stride
			for si := 0; si < fs.table.stride; si++ {
				r := fs.table.replicas[base+si]
				if r < 0 {
					continue
				}
				for sj := si + 1; sj < fs.table.stride; sj++ {
					if fs.table.replicas[base+sj] == r {
						report("block %d has duplicate replica on %v", id, cluster.NodeID(r))
					}
				}
			}
			total += fs.table.blockSize(id)
		}
		if total != f.Size {
			report("file %s block sizes sum to %d, want %d", name, total, f.Size)
		}
	}

	// 6: postings index.
	postingEntries := 0
	for nid, posting := range fs.byNode {
		seen := make(map[BlockID]bool, len(posting))
		for _, id := range posting {
			if seen[id] {
				report("postings index lists block %d on node %d twice", id, nid)
				continue
			}
			seen[id] = true
			if int(id) >= fs.table.len() || !fs.table.holdsReplica(id, cluster.NodeID(nid)) {
				report("postings index lists block %d on node %d, which holds no replica", id, nid)
			}
		}
		postingEntries += len(posting)
	}
	if postingEntries != filledSlots {
		report("postings index has %d entries, catalog has %d replica slots", postingEntries, filledSlots)
	}

	// 3: registry consistency (forward direction).
	registered := 0
	for id := 0; id < fs.table.len(); id++ {
		node := fs.table.memNode[id]
		pos := fs.table.memPos[id]
		if node < 0 {
			if pos >= 0 {
				report("block %d has no memory holder but resident position %d", id, pos)
			}
			continue
		}
		registered++
		dn := fs.dns[int(node)]
		if pos < 0 || int(pos) >= len(dn.resident) || dn.resident[pos] != BlockID(id) {
			report("registry says block %d is at position %d on %v, but the resident list disagrees",
				id, pos, dn.node.ID)
		}
	}
	if registered != fs.memCount {
		report("registry holds %d memory replicas, counter says %d", registered, fs.memCount)
	}

	// 3 (reverse), 4-5: per-node accounting.
	for _, dn := range fs.dns {
		var sum sim.Bytes
		for _, id := range dn.resident {
			if fs.table.memNode[int(id)] != int32(dn.node.ID) {
				report("node %v buffers block %d, but the registry records holder %d",
					dn.node.ID, id, fs.table.memNode[int(id)])
			}
			sum += fs.table.blockSize(id)
			if !fs.table.holdsReplica(id, dn.node.ID) {
				report("node %v buffers block %d without holding a disk replica", dn.node.ID, id)
			}
		}
		if sum != dn.memUsed {
			report("node %v accounting: used=%d, blocks sum to %d", dn.node.ID, dn.memUsed, sum)
		}
		if dn.memUsed < 0 {
			report("node %v has negative buffered bytes: %d", dn.node.ID, dn.memUsed)
		}
		if cap := dn.node.Cfg.MemCapacity; dn.memUsed > cap {
			report("node %v buffers %d bytes, exceeding its memory capacity %d", dn.node.ID, dn.memUsed, cap)
		}
	}
	return errs
}
