package dfs

import (
	"fmt"

	"dyrs/internal/sim"
)

// Fsck walks the file system's internal state and reports invariant
// violations. It is used by failure-injection tests to prove that
// crashes, restarts and evictions never corrupt the catalog or the
// memory accounting.
//
// Invariants checked:
//  1. Every file's blocks exist, belong to it, and are indexed densely.
//  2. Every block has between 1 and Replication replicas, all distinct.
//  3. The in-memory replica registry and the per-node buffers agree in
//     both directions: the registry points at nodes that actually hold
//     the block, and every buffered block is the registry's holder (a
//     block has at most one memory replica).
//  4. Per-DataNode buffered-byte accounting equals the sum of resident
//     block sizes, and no node exceeds its memory capacity.
//  5. Every buffered block is also a disk-replica holder's block (memory
//     replicas are created by migrating a local disk replica).
func (fs *FS) Fsck() []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// 1-2: catalog structure.
	for name, f := range fs.files {
		var total sim.Bytes
		for i, id := range f.Blocks {
			if int(id) >= len(fs.blocks) {
				report("file %s references unknown block %d", name, id)
				continue
			}
			b := fs.blocks[int(id)]
			if b.File != name {
				report("block %d claims file %s, referenced by %s", id, b.File, name)
			}
			if b.Index != i {
				report("block %d of %s has index %d, want %d", id, name, b.Index, i)
			}
			if len(b.Replicas) == 0 || len(b.Replicas) > fs.cfg.Replication {
				report("block %d has %d replicas", id, len(b.Replicas))
			}
			seen := map[int]bool{}
			for _, r := range b.Replicas {
				if seen[int(r)] {
					report("block %d has duplicate replica on %v", id, r)
				}
				seen[int(r)] = true
			}
			total += b.Size
		}
		if total != f.Size {
			report("file %s block sizes sum to %d, want %d", name, total, f.Size)
		}
	}

	// 3: registry consistency.
	for id, node := range fs.mem {
		if !fs.dns[int(node)].HasMem(id) {
			report("registry says block %d is on %v, but the DataNode does not hold it", id, node)
		}
	}

	// 3 (reverse), 4-5: per-node accounting.
	for _, dn := range fs.dns {
		var sum sim.Bytes
		for id, size := range dn.memBlocks {
			b := fs.blocks[int(id)]
			if b.Size != size {
				report("node %v charges block %d at %d bytes, want %d", dn.node.ID, id, size, b.Size)
			}
			sum += size
			if holder, ok := fs.mem[id]; !ok || holder != dn.node.ID {
				report("node %v buffers block %d, but the registry records holder %v (registered=%v)",
					dn.node.ID, id, holder, ok)
			}
			holds := false
			for _, r := range b.Replicas {
				if r == dn.node.ID {
					holds = true
				}
			}
			if !holds {
				report("node %v buffers block %d without holding a disk replica", dn.node.ID, id)
			}
		}
		if sum != dn.memUsed {
			report("node %v accounting: used=%d, blocks sum to %d", dn.node.ID, dn.memUsed, sum)
		}
		if dn.memUsed < 0 {
			report("node %v has negative buffered bytes: %d", dn.node.ID, dn.memUsed)
		}
		if cap := dn.node.Cfg.MemCapacity; dn.memUsed > cap {
			report("node %v buffers %d bytes, exceeding its memory capacity %d", dn.node.ID, dn.memUsed, cap)
		}
	}
	return errs
}
