package dfs

import (
	"testing"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

func newRackedFS(t *testing.T, nodes, racks int, coreBW float64, seed int64) (*sim.Engine, *cluster.Cluster, *FS) {
	t.Helper()
	eng := sim.NewEngine(seed)
	cl := cluster.New(eng, nodes, nil)
	cl.ConfigureRacks(racks, coreBW)
	return eng, cl, New(cl, DefaultConfig())
}

func TestRackAwarePlacement(t *testing.T) {
	t.Parallel()
	_, cl, fs := newRackedFS(t, 8, 2, 0, 1)
	if _, err := fs.CreateFile("big", 40*256*sim.MB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fs.NumBlocks(); i++ {
		b := fs.Block(BlockID(i))
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", i, len(b.Replicas))
		}
		// HDFS default: replicas span exactly two racks, with the second
		// and third replica sharing a rack distinct from the first's.
		r0 := cl.Rack(b.Replicas[0])
		r1 := cl.Rack(b.Replicas[1])
		r2 := cl.Rack(b.Replicas[2])
		if r0 == r1 {
			t.Errorf("block %d: second replica on first's rack (%v)", i, b.Replicas)
		}
		if r1 != r2 {
			t.Errorf("block %d: third replica not on second's rack (%v)", i, b.Replicas)
		}
	}
}

func TestRackPlacementDegradesGracefully(t *testing.T) {
	t.Parallel()
	// 2 nodes, 2 racks, replication 2: both racks used, no panic.
	eng := sim.NewEngine(2)
	cl := cluster.New(eng, 2, nil)
	cl.ConfigureRacks(2, 0)
	cfg := DefaultConfig()
	cfg.Replication = 2
	fs := New(cl, cfg)
	f, err := fs.CreateFile("x", 256*sim.MB)
	if err != nil {
		t.Fatal(err)
	}
	b := fs.Block(f.Blocks[0])
	if cl.SameRack(b.Replicas[0], b.Replicas[1]) {
		t.Errorf("replicas on same rack: %v", b.Replicas)
	}
}

func TestRemoteReadPrefersSameRack(t *testing.T) {
	t.Parallel()
	eng, cl, fs := newRackedFS(t, 8, 2, 0, 3)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	// Find a non-replica node sharing a rack with some replica.
	var reader cluster.NodeID = -1
	for i := 0; i < 8; i++ {
		id := cluster.NodeID(i)
		isReplica := false
		sameRack := false
		for _, r := range b.Replicas {
			if r == id {
				isReplica = true
			}
			if cl.SameRack(id, r) {
				sameRack = true
			}
		}
		if !isReplica && sameRack {
			reader = id
			break
		}
	}
	if reader < 0 {
		t.Skip("no suitable reader with this seed")
	}
	var res ReadResult
	fs.ReadBlock(reader, b.ID, func(r ReadResult) { res = r })
	eng.Run()
	if !cl.SameRack(reader, res.Server) {
		t.Errorf("read served cross-rack from %v though a same-rack replica exists (%v)",
			res.Server, b.Replicas)
	}
}

func TestCrossRackReadTraversesCore(t *testing.T) {
	t.Parallel()
	// A tiny core (20MB/s) makes cross-rack memory reads obviously slow.
	eng, cl, fs := newRackedFS(t, 4, 2, 20*float64(sim.MB), 4)
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	server := b.Replicas[0]
	fs.RegisterMem(b.ID, server)
	// Pick a reader on the other rack.
	var reader cluster.NodeID = -1
	for i := 0; i < 4; i++ {
		if !cl.SameRack(cluster.NodeID(i), server) {
			reader = cluster.NodeID(i)
			break
		}
	}
	var res ReadResult
	fs.ReadBlock(reader, b.ID, func(r ReadResult) { res = r })
	eng.RunFor(5 * time.Minute)
	// 256MB through a 20MB/s core ~ 12.8s; without the core it would be
	// ~0.2s over the NIC.
	if d := res.Duration().Seconds(); d < 10 {
		t.Errorf("cross-rack read took %.1fs; core not charged", d)
	}

	// Same-rack memory read stays NIC-fast.
	var sameRackReader cluster.NodeID = -1
	for i := 0; i < 4; i++ {
		id := cluster.NodeID(i)
		if id != server && cl.SameRack(id, server) {
			sameRackReader = id
			break
		}
	}
	if sameRackReader >= 0 {
		var res2 ReadResult
		fs.ReadBlock(sameRackReader, b.ID, func(r ReadResult) { res2 = r })
		eng.RunFor(5 * time.Minute)
		if d := res2.Duration().Seconds(); d > 1 {
			t.Errorf("same-rack memory read took %.1fs; should not traverse core", d)
		}
	}
}

func TestCoreContention(t *testing.T) {
	t.Parallel()
	// Two concurrent cross-rack reads share the core fairly.
	eng, cl, fs := newRackedFS(t, 4, 2, 100*float64(sim.MB), 5)
	fa, _ := fs.CreateFile("a", 256*sim.MB)
	fb, _ := fs.CreateFile("b", 256*sim.MB)
	ba, bb := fs.Block(fa.Blocks[0]), fs.Block(fb.Blocks[0])
	fs.RegisterMem(ba.ID, ba.Replicas[0])
	fs.RegisterMem(bb.ID, bb.Replicas[0])
	otherRack := func(server cluster.NodeID) cluster.NodeID {
		for i := 0; i < 4; i++ {
			if !cl.SameRack(cluster.NodeID(i), server) {
				return cluster.NodeID(i)
			}
		}
		return -1
	}
	var d1, d2 float64
	fs.ReadBlock(otherRack(ba.Replicas[0]), ba.ID, func(r ReadResult) { d1 = r.Duration().Seconds() })
	fs.ReadBlock(otherRack(bb.Replicas[0]), bb.ID, func(r ReadResult) { d2 = r.Duration().Seconds() })
	eng.RunFor(5 * time.Minute)
	// Each alone: 2.56s at 100MB/s; sharing: ~5.1s.
	if d1 < 4.5 || d2 < 4.5 {
		t.Errorf("concurrent cross-rack reads did not share the core: %.1fs %.1fs", d1, d2)
	}
}
