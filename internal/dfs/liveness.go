package dfs

import (
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

// Heartbeat-based liveness (§III-C2): "A node is marked as unavailable
// when the file system misses several consecutive heartbeats from it. If
// a read occurs before the node is marked as unavailable the client can
// fail-over to one of the available replicas."
//
// Without a liveness tracker the FS consults cluster.Node.Alive()
// directly — an oracle. EnableHeartbeats replaces the oracle with the
// NameNode's (deliberately stale) view: a dead node keeps being offered
// as a replica until its heartbeats have been missed, and reads routed
// to it pay a connect timeout before failing over.

// LivenessConfig tunes the heartbeat tracker.
type LivenessConfig struct {
	// Interval is the DataNode heartbeat period.
	Interval time.Duration
	// MissedBeats is how many consecutive misses mark a node dead.
	MissedBeats int
	// ConnectTimeout is what a client pays before failing over from an
	// unreachable-but-not-yet-marked node.
	ConnectTimeout time.Duration
}

// DefaultLivenessConfig mirrors HDFS-era settings scaled down: 3s
// heartbeats, 3 missed beats to declare death, 1s connect timeout.
func DefaultLivenessConfig() LivenessConfig {
	return LivenessConfig{
		Interval:       3 * time.Second,
		MissedBeats:    3,
		ConnectTimeout: time.Second,
	}
}

// liveness is the NameNode-side tracker.
type liveness struct {
	cfg      LivenessConfig
	lastSeen []sim.Time
	ticker   *sim.Ticker
}

// EnableHeartbeats starts heartbeat-based liveness tracking. Call once,
// before failures are injected.
func (fs *FS) EnableHeartbeats(cfg LivenessConfig) {
	if cfg.Interval <= 0 || cfg.MissedBeats <= 0 {
		panic("dfs: invalid liveness config")
	}
	lv := &liveness{cfg: cfg, lastSeen: make([]sim.Time, fs.cl.Size())}
	now := fs.eng.Now()
	for i := range lv.lastSeen {
		lv.lastSeen[i] = now
	}
	lv.ticker = sim.NewTicker(fs.eng, cfg.Interval, func() {
		for _, n := range fs.cl.Nodes() {
			if n.Alive() {
				lv.lastSeen[int(n.ID)] = fs.eng.Now()
			}
		}
	})
	fs.liveness = lv
}

// DisableHeartbeats stops the tracker and reverts to oracle liveness.
func (fs *FS) DisableHeartbeats() {
	if fs.liveness != nil {
		fs.liveness.ticker.Stop()
		fs.liveness = nil
	}
}

// nodeAvailable reports the NameNode's view of a node: the ground truth
// when heartbeats are disabled, the possibly-stale heartbeat view when
// enabled.
func (fs *FS) nodeAvailable(id cluster.NodeID) bool {
	if fs.liveness == nil {
		return fs.cl.Node(id).Alive()
	}
	lv := fs.liveness
	deadline := sim.Duration(lv.cfg.MissedBeats) * lv.cfg.Interval
	return fs.eng.Now().Sub(lv.lastSeen[int(id)]) < deadline+lv.cfg.Interval
}

// FailedOvers counts reads that hit an unreachable node during the
// stale window and retried elsewhere.
func (fs *FS) FailedOvers() int { return fs.failedOvers }
