// Package dfs implements the big-data file system substrate: an HDFS-like
// master-slave file system with a NameNode block catalog, DataNodes that
// serve block reads from disk or from an in-memory buffer, 3-way replica
// placement, and the read-redirection hook DYRS uses to steer reads to
// in-memory replicas (paper §III, §IV).
//
// The NameNode catalog is stored as a struct-of-arrays block table (see
// blocktable.go) with per-node replica postings, so the metadata for
// millions of blocks fits in a few flat arrays instead of per-block heap
// objects and maps. Public accessors that return *Block materialize a
// view on demand; hot paths use the ID-based accessors (BlockSize,
// LiveReplicas, FileBlockIDs) which do not allocate.
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// BlockID identifies a block in the file system.
type BlockID int

// Tier is the storage medium holding a file's blocks.
type Tier int

// Storage tiers, slowest first.
const (
	TierDisk Tier = iota
	TierSSD
)

// String names the tier.
func (t Tier) String() string {
	if t == TierSSD {
		return "ssd"
	}
	return "disk"
}

// maxBlockBytes bounds a single block so its size fits the table's
// uint32 column. HDFS-era block sizes are 64-512 MB; 4 GiB-1 is far
// above anything the model produces.
const maxBlockBytes = sim.Bytes(1<<32 - 1)

// Block is one fixed-size chunk of a file, replicated on several nodes.
//
// Block values are materialized views over the block table, built on
// demand by Block/FileBlocks; mutating one does not change the catalog.
type Block struct {
	ID       BlockID
	File     string
	Index    int // position within the file
	Size     sim.Bytes
	Tier     Tier
	Replicas []cluster.NodeID // replica locations at materialization time
}

// File is a named sequence of blocks. Blocks are assigned consecutive
// IDs at creation, so Blocks[i] == Blocks[0]+i always holds.
type File struct {
	Name   string
	Size   sim.Bytes
	Tier   Tier
	Blocks []BlockID
}

// Config holds file-system parameters.
type Config struct {
	// BlockSize is the maximum block size (HDFS default in the paper's
	// era: 256 MB for large inputs).
	BlockSize sim.Bytes
	// Replication is the number of disk replicas per block.
	Replication int
	// ReadLatency is the fixed per-read setup latency (RPC + open).
	ReadLatency sim.Duration
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: 256 MB blocks, 3-way replication.
func DefaultConfig() Config {
	return Config{
		BlockSize:   256 * sim.MB,
		Replication: 3,
		ReadLatency: 2 * sim.Duration(1e6), // 2ms
	}
}

// ReadSource describes where a block read was served from.
type ReadSource int

// Read sources, fastest last.
const (
	SourceDiskLocal ReadSource = iota
	SourceDiskRemote
	SourceMemLocal
	SourceMemRemote
)

// String names the read source.
func (s ReadSource) String() string {
	switch s {
	case SourceDiskLocal:
		return "disk-local"
	case SourceDiskRemote:
		return "disk-remote"
	case SourceMemLocal:
		return "mem-local"
	case SourceMemRemote:
		return "mem-remote"
	}
	return "unknown"
}

// FromMemory reports whether the source is an in-memory replica.
func (s ReadSource) FromMemory() bool {
	return s == SourceMemLocal || s == SourceMemRemote
}

// bytesCounter names the tracer counter accumulating bytes served from
// this source. Precomputed constants keep the traced read path free of
// string concatenation.
func (s ReadSource) bytesCounter() string {
	switch s {
	case SourceDiskLocal:
		return "read.bytes.disk-local"
	case SourceDiskRemote:
		return "read.bytes.disk-remote"
	case SourceMemLocal:
		return "read.bytes.mem-local"
	case SourceMemRemote:
		return "read.bytes.mem-remote"
	}
	return "read.bytes.unknown"
}

// countCounter names the tracer counter of reads served from this source.
func (s ReadSource) countCounter() string {
	switch s {
	case SourceDiskLocal:
		return "read.count.disk-local"
	case SourceDiskRemote:
		return "read.count.disk-remote"
	case SourceMemLocal:
		return "read.count.mem-local"
	case SourceMemRemote:
		return "read.count.mem-remote"
	}
	return "read.count.unknown"
}

// ReadResult describes a completed block read.
type ReadResult struct {
	Block    BlockID
	Source   ReadSource
	Server   cluster.NodeID // node that served the bytes
	Started  sim.Time
	Finished sim.Time
	// Failed is set when every replica became unreachable before the
	// read could be served (only possible mid-failover; the initial
	// call reports ErrNoReplica synchronously instead).
	Failed bool
}

// Duration reports how long the read took.
func (r ReadResult) Duration() sim.Duration { return r.Finished.Sub(r.Started) }

// DataNode is the per-node storage server: it owns the node's disk for
// block reads and tracks which blocks are resident in its memory buffer.
// Residency itself lives in the block table's memNode/memPos columns;
// the DataNode keeps the node's resident list (for O(1) membership the
// table column is consulted) and the byte accounting.
type DataNode struct {
	fs   *FS
	node *cluster.Node

	// resident lists the blocks buffered on this node, unordered;
	// table.memPos[id] is the block's index here, so insert and remove
	// are O(1) swap operations.
	resident []BlockID
	memUsed  sim.Bytes

	// Counters for the evaluation (Fig. 8 counts reads per DataNode).
	DiskReads     int
	MemReads      int
	RemoteServes  int
	BlocksWritten int
}

// Node returns the underlying cluster node.
func (dn *DataNode) Node() *cluster.Node { return dn.node }

// MemUsed reports bytes of migrated blocks currently buffered.
func (dn *DataNode) MemUsed() sim.Bytes { return dn.memUsed }

// HasMem reports whether the block is resident in this node's buffer.
func (dn *DataNode) HasMem(b BlockID) bool {
	return dn.fs.table.memNode[int(b)] == int32(dn.node.ID)
}

// MemBlockCount reports how many blocks are buffered.
func (dn *DataNode) MemBlockCount() int { return len(dn.resident) }

// scalableClusterMin is the cluster size at which replica placement
// switches from the permutation-based picker (byte-compatible with the
// paper-scale experiments) to rejection sampling. Below this size a
// rng.Perm per replica is cheap and keeps historical traces identical;
// above it, Perm's O(n) per block dominates file creation.
const scalableClusterMin = 64

// placeSampleTries bounds rejection sampling before the picker falls
// back to a deterministic scan. With ≤3 replicas excluded out of ≥64
// nodes the miss probability per try is tiny; 32 tries makes the
// fallback effectively unreachable without an adversarial accept fn.
const placeSampleTries = 32

// FS is the simulated distributed file system. The NameNode role (file
// and block catalog, replica lookup, in-memory replica registry) is
// implemented directly on FS; DataNodes hold per-node state.
type FS struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	cfg Config
	rng *rand.Rand
	tr  *trace.Tracer // run tracer; nil (no-op) when untraced

	files    map[string]*File
	fileList []*File // index space for the table's fileOf column
	table    *blockTable
	dns      []*DataNode

	// byNode is the replica postings index: byNode[n] lists the blocks
	// with a disk replica on node n, in placement order. Per-rack views
	// aggregate these lists through the cluster's rack tables.
	byNode [][]BlockID

	// memCount tracks the number of registered in-memory replicas
	// (previously len() of the registry map).
	memCount int

	// decommissioned marks nodes excluded from placement; placeable
	// counts those still eligible.
	decommissioned []bool
	placeable      int

	readHooks []readHook

	// hReadLat is the streaming read-latency histogram handle (nil and
	// no-op when untraced); it aggregates every completed read exactly,
	// independent of span sampling.
	hReadLat *trace.Hist

	// liveness, when enabled, replaces oracle liveness with the
	// NameNode's heartbeat-based (stale) view; failedOvers counts reads
	// that retried after hitting an unreachable node (§III-C2).
	liveness    *liveness
	failedOvers int

	placeCursor int // rotates placement start for balance

	placeBuf []cluster.NodeID // scratch for placeReplicas
	repBuf   []cluster.NodeID // scratch for the read path's replica list
}

// New creates a file system over the cluster.
func New(cl *cluster.Cluster, cfg Config) *FS {
	if cfg.BlockSize <= 0 || cfg.Replication <= 0 {
		panic("dfs: invalid config")
	}
	if cfg.BlockSize > maxBlockBytes {
		panic(fmt.Sprintf("dfs: block size %d exceeds table limit %d", cfg.BlockSize, int64(maxBlockBytes)))
	}
	if cfg.Replication > cl.Size() {
		panic(fmt.Sprintf("dfs: replication %d exceeds cluster size %d", cfg.Replication, cl.Size()))
	}
	eng := cl.Engine()
	fs := &FS{
		eng:            eng,
		cl:             cl,
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(eng.Rand().Int63())),
		tr:             trace.FromEngine(eng),
		files:          make(map[string]*File),
		table:          newBlockTable(cfg.Replication),
		byNode:         make([][]BlockID, cl.Size()),
		decommissioned: make([]bool, cl.Size()),
		placeable:      cl.Size(),
		placeBuf:       make([]cluster.NodeID, 0, cfg.Replication),
	}
	fs.hReadLat = fs.tr.Hist("read.latency_ns")
	for _, n := range cl.Nodes() {
		fs.dns = append(fs.dns, &DataNode{fs: fs, node: n})
	}
	return fs
}

// Config returns the file system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Cluster returns the underlying cluster.
func (fs *FS) Cluster() *cluster.Cluster { return fs.cl }

// DataNode returns the DataNode on the given cluster node.
func (fs *FS) DataNode(id cluster.NodeID) *DataNode { return fs.dns[int(id)] }

// errors returned by catalog operations.
var (
	ErrFileExists   = errors.New("dfs: file already exists")
	ErrFileNotFound = errors.New("dfs: file not found")
	ErrNoReplica    = errors.New("dfs: no live replica")
)

// CreateFile registers a file of the given size on the disk tier, splits
// it into blocks and places replicas. Placement mimics HDFS default:
// replicas land on distinct nodes chosen pseudo-randomly, rotating the
// starting node so data spreads evenly.
func (fs *FS) CreateFile(name string, size sim.Bytes) (*File, error) {
	return fs.CreateFileOnTier(name, size, TierDisk)
}

// CreateFileOnTier registers a file whose blocks live on the given
// storage tier (disk or SSD).
func (fs *FS) CreateFileOnTier(name string, size sim.Bytes, tier Tier) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, ErrFileExists
	}
	if size <= 0 {
		return nil, errors.New("dfs: file size must be positive")
	}
	f := &File{Name: name, Size: size, Tier: tier}
	fi := int32(len(fs.fileList))
	nBlocks := int((size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	fs.table.grow(nBlocks)
	f.Blocks = make([]BlockID, 0, nBlocks)
	remaining := size
	for remaining > 0 {
		bs := fs.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		reps := fs.placeReplicas()
		id := fs.table.add(bs, fi, reps)
		for _, r := range reps {
			fs.byNode[int(r)] = append(fs.byNode[int(r)], id)
		}
		f.Blocks = append(f.Blocks, id)
		remaining -= bs
	}
	fs.files[name] = f
	fs.fileList = append(fs.fileList, f)
	return f, nil
}

// placeReplicas chooses Replication distinct nodes, filling fs.placeBuf
// (valid until the next call). The first replica rotates around the
// cluster (even spread, like writers spread across nodes). On a flat
// cluster the rest are random; on a racked cluster placement follows the
// HDFS default policy: the second replica goes to a different rack than
// the first, the third to the second replica's rack, and any further
// replicas land randomly. Decommissioned nodes never receive replicas.
//
// Clusters below scalableClusterMin use the historical permutation
// picker so existing experiment outputs stay byte-identical; larger
// clusters use rejection sampling (O(replication) expected per block
// instead of O(n)).
func (fs *FS) placeReplicas() []cluster.NodeID {
	n := fs.cl.Size()
	chosen := fs.placeBuf[:0]

	var first cluster.NodeID
	for {
		first = cluster.NodeID(fs.placeCursor % n)
		fs.placeCursor++
		if !fs.decommissioned[first] {
			break
		}
	}
	chosen = append(chosen, first)

	has := func(id cluster.NodeID) bool {
		for _, c := range chosen {
			if c == id {
				return true
			}
		}
		return false
	}
	eligible := func(id cluster.NodeID) bool { return !has(id) && !fs.decommissioned[id] }
	any := func(cluster.NodeID) bool { return true }

	if n >= scalableClusterMin {
		// pickSampled rejection-samples the whole cluster; pickFrom
		// samples a candidate list (a rack). Both fall back to a
		// deterministic scan from a random offset.
		pickFrom := func(nodes []cluster.NodeID, accept func(cluster.NodeID) bool) bool {
			m := len(nodes)
			if m == 0 {
				return false
			}
			for try := 0; try < placeSampleTries; try++ {
				id := nodes[fs.rng.Intn(m)]
				if eligible(id) && accept(id) {
					chosen = append(chosen, id)
					return true
				}
			}
			start := fs.rng.Intn(m)
			for i := 0; i < m; i++ {
				id := nodes[(start+i)%m]
				if eligible(id) && accept(id) {
					chosen = append(chosen, id)
					return true
				}
			}
			return false
		}
		pickSampled := func(accept func(cluster.NodeID) bool) bool {
			for try := 0; try < placeSampleTries; try++ {
				id := cluster.NodeID(fs.rng.Intn(n))
				if eligible(id) && accept(id) {
					chosen = append(chosen, id)
					return true
				}
			}
			start := fs.rng.Intn(n)
			for i := 0; i < n; i++ {
				id := cluster.NodeID((start + i) % n)
				if eligible(id) && accept(id) {
					chosen = append(chosen, id)
					return true
				}
			}
			return false
		}

		if fs.cl.Racks() > 1 {
			if len(chosen) < fs.cfg.Replication {
				// Second replica: off the first replica's rack. With many
				// racks almost every sample is acceptable.
				if !pickSampled(func(id cluster.NodeID) bool { return !fs.cl.SameRack(id, first) }) {
					pickSampled(any)
				}
			}
			if len(chosen) < fs.cfg.Replication && len(chosen) >= 2 {
				// Third replica: same rack as the second. Sampling the
				// whole cluster would almost always miss a single rack, so
				// draw from the rack's own node list.
				second := chosen[1]
				if !pickFrom(fs.cl.RackNodes(fs.cl.Rack(second)), any) {
					pickSampled(any)
				}
			}
		}
		for len(chosen) < fs.cfg.Replication {
			if !pickSampled(any) {
				break
			}
		}
		fs.placeBuf = chosen
		return chosen
	}

	pick := func(accept func(cluster.NodeID) bool) bool {
		perm := fs.rng.Perm(n)
		for _, p := range perm {
			id := cluster.NodeID(p)
			if !eligible(id) || !accept(id) {
				continue
			}
			chosen = append(chosen, id)
			return true
		}
		return false
	}

	if fs.cl.Racks() > 1 {
		if len(chosen) < fs.cfg.Replication {
			// Second replica: off the first replica's rack.
			if !pick(func(id cluster.NodeID) bool { return !fs.cl.SameRack(id, first) }) {
				pick(any)
			}
		}
		if len(chosen) < fs.cfg.Replication && len(chosen) >= 2 {
			// Third replica: same rack as the second.
			second := chosen[1]
			if !pick(func(id cluster.NodeID) bool { return fs.cl.SameRack(id, second) }) {
				pick(any)
			}
		}
	}
	for len(chosen) < fs.cfg.Replication {
		if !pick(any) {
			break
		}
	}
	fs.placeBuf = chosen
	return chosen
}

// File looks up a file by name.
func (fs *FS) File(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrFileNotFound
	}
	return f, nil
}

// FileBlocks maps a list of file names to their blocks, in file order —
// the operation the DYRS master performs when it receives a migration
// request for a job's input files. The returned blocks are materialized
// views (one allocation each); scale-sensitive callers should use
// FileBlockIDs with the ID-based accessors instead.
func (fs *FS) FileBlocks(names []string) ([]*Block, error) {
	var out []*Block
	for _, name := range names {
		f, err := fs.File(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %s", err, name)
		}
		for _, id := range f.Blocks {
			out = append(out, fs.Block(id))
		}
	}
	return out, nil
}

// FileBlockIDs maps a list of file names to their block IDs, in file
// order, without materializing Block views.
func (fs *FS) FileBlockIDs(names []string) ([]BlockID, error) {
	total := 0
	for _, name := range names {
		f, err := fs.File(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %s", err, name)
		}
		total += len(f.Blocks)
	}
	out := make([]BlockID, 0, total)
	for _, name := range names {
		out = append(out, fs.files[name].Blocks...)
	}
	return out, nil
}

// Block materializes a view of the block with the given id.
func (fs *FS) Block(id BlockID) *Block {
	f := fs.fileList[fs.table.fileOf[int(id)]]
	return &Block{
		ID:       id,
		File:     f.Name,
		Index:    int(id - f.Blocks[0]),
		Size:     fs.table.blockSize(id),
		Tier:     f.Tier,
		Replicas: fs.table.appendReplicas(id, nil),
	}
}

// BlockSize reports the block's length without materializing a view.
func (fs *FS) BlockSize(id BlockID) sim.Bytes { return fs.table.blockSize(id) }

// blockTier reports the storage tier of the block's file.
func (fs *FS) blockTier(id BlockID) Tier {
	return fs.fileList[fs.table.fileOf[int(id)]].Tier
}

// NumBlocks reports the total number of blocks in the catalog.
func (fs *FS) NumBlocks() int { return fs.table.len() }

// Replicas returns the block's replica locations on nodes the NameNode
// considers available. With heartbeat liveness enabled this view can be
// stale: a freshly dead node is still offered until its heartbeats have
// been missed (§III-C2).
func (fs *FS) Replicas(id BlockID) []cluster.NodeID {
	return fs.LiveReplicas(id, nil)
}

// LiveReplicas appends the block's available replica locations to buf
// and returns it; with a pre-sized buf this allocates nothing. Same
// staleness semantics as Replicas.
func (fs *FS) LiveReplicas(id BlockID, buf []cluster.NodeID) []cluster.NodeID {
	base := int(id) * fs.table.stride
	for i := 0; i < fs.table.stride; i++ {
		if r := fs.table.replicas[base+i]; r >= 0 && fs.nodeAvailable(cluster.NodeID(r)) {
			buf = append(buf, cluster.NodeID(r))
		}
	}
	return buf
}

// MemReplica reports the node holding an in-memory replica of the block,
// if the NameNode considers that node available.
func (fs *FS) MemReplica(id BlockID) (cluster.NodeID, bool) {
	n := fs.table.memNode[int(id)]
	if n < 0 || !fs.nodeAvailable(cluster.NodeID(n)) {
		return 0, false
	}
	return cluster.NodeID(n), true
}

// RegisterMem records that node holds an in-memory replica of the block
// and charges the bytes to the DataNode's buffer accounting. Called by
// the migration slave when a migration completes.
//
// A block has at most one registered memory replica. If a stale copy is
// still buffered on another node — possible when the migration master
// lost its state in a fail-over and re-migrated the block — the stale
// copy is released so the registry and the per-node buffers stay in
// bijection (Fsck invariant 3 checks both directions).
func (fs *FS) RegisterMem(id BlockID, node cluster.NodeID) {
	prev := fs.table.memNode[int(id)]
	if prev == int32(node) {
		return
	}
	if prev >= 0 {
		fs.DropMem(id, cluster.NodeID(prev))
	}
	dn := fs.dns[int(node)]
	fs.table.memNode[int(id)] = int32(node)
	fs.table.memPos[int(id)] = int32(len(dn.resident))
	dn.resident = append(dn.resident, id)
	dn.memUsed += fs.table.blockSize(id)
	fs.memCount++
}

// DropMem removes the in-memory replica of a block from a node.
func (fs *FS) DropMem(id BlockID, node cluster.NodeID) {
	if fs.table.memNode[int(id)] != int32(node) {
		return
	}
	dn := fs.dns[int(node)]
	size := fs.table.blockSize(id)
	fs.detachResident(dn, id)
	dn.memUsed -= size
	fs.memCount--
	if fs.tr.Enabled() {
		fs.tr.Inc("evictions")
		fs.tr.Instant("migration", "evict", int(node),
			trace.Int("block", int64(id)), trace.Int("size", int64(size)))
	}
}

// detachResident unlinks the block from the node's resident list with a
// swap-remove and clears its registry columns.
func (fs *FS) detachResident(dn *DataNode, id BlockID) {
	pos := fs.table.memPos[int(id)]
	last := len(dn.resident) - 1
	moved := dn.resident[last]
	dn.resident[pos] = moved
	fs.table.memPos[int(moved)] = pos
	dn.resident = dn.resident[:last]
	fs.table.memNode[int(id)] = -1
	fs.table.memPos[int(id)] = -1
}

// DropAllMem clears every buffered block on a node — what happens when a
// DYRS slave process dies and the OS reclaims its locked memory.
func (fs *FS) DropAllMem(node cluster.NodeID) {
	dn := fs.dns[int(node)]
	n := len(dn.resident)
	if fs.tr.Enabled() && n > 0 {
		fs.tr.Add("evictions", int64(n))
		fs.tr.Instant("migration", "evict-all", int(node),
			trace.Int("blocks", int64(n)),
			trace.Int("bytes", int64(dn.memUsed)))
	}
	for _, id := range dn.resident {
		fs.table.memNode[int(id)] = -1
		fs.table.memPos[int(id)] = -1
	}
	fs.memCount -= n
	dn.resident = dn.resident[:0]
	if !canaryLeakBufferAccounting {
		dn.memUsed = 0
	}
}

// MemBlockIDs returns the blocks resident in this node's buffer, sorted
// by block ID. The migration slave's scavenger walks this list; sorting
// keeps reclamation order (and any trace it emits) deterministic.
func (dn *DataNode) MemBlockIDs() []BlockID {
	ids := make([]BlockID, len(dn.resident))
	copy(ids, dn.resident)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MemReplicaCount reports the number of blocks with an in-memory replica.
func (fs *FS) MemReplicaCount() int { return fs.memCount }

// TotalMemUsed reports buffered bytes across all nodes. It sums the
// per-node accounting (rather than a derived counter) so accounting
// bugs in the per-node books remain observable (the dyrs_canary build
// relies on this).
func (fs *FS) TotalMemUsed() sim.Bytes {
	var total sim.Bytes
	for _, dn := range fs.dns {
		total += dn.memUsed
	}
	return total
}

// NodeBlockCount reports the number of disk replicas homed on the node.
func (fs *FS) NodeBlockCount(id cluster.NodeID) int { return len(fs.byNode[int(id)]) }

// BlocksOnNode returns the blocks with a disk replica on the node,
// sorted by block ID.
func (fs *FS) BlocksOnNode(id cluster.NodeID) []BlockID {
	out := make([]BlockID, len(fs.byNode[int(id)]))
	copy(out, fs.byNode[int(id)])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RackBlockCount reports the number of disk replicas homed in the rack,
// aggregated from the per-node postings.
func (fs *FS) RackBlockCount(rack int) int {
	n := 0
	for _, id := range fs.cl.RackNodes(rack) {
		n += len(fs.byNode[int(id)])
	}
	return n
}

// Decommissioned reports whether the node has been decommissioned.
func (fs *FS) Decommissioned(id cluster.NodeID) bool { return fs.decommissioned[int(id)] }

// DecommissionNode removes a node from placement and re-homes every
// disk replica it held onto other nodes — the NameNode metadata side of
// an HDFS decommission (the data copy itself is not modeled; callers
// that care about the traffic can account for it with the returned
// replica count). Buffered in-memory replicas on the node are dropped.
// It fails when the remaining placeable nodes could not hold Replication
// copies of a block.
func (fs *FS) DecommissionNode(node cluster.NodeID) (int, error) {
	if fs.decommissioned[int(node)] {
		return 0, nil
	}
	if fs.placeable-1 < fs.cfg.Replication {
		return 0, fmt.Errorf("dfs: decommissioning node %v would leave %d placeable nodes for replication %d",
			node, fs.placeable-1, fs.cfg.Replication)
	}
	fs.decommissioned[int(node)] = true
	fs.placeable--
	fs.DropAllMem(node)

	posting := fs.byNode[int(node)]
	fs.byNode[int(node)] = nil
	kept := posting[:0]
	moved := 0
	for _, id := range posting {
		to, ok := fs.pickReplacement(id, node)
		if !ok {
			// No eligible replacement (every placeable node already holds
			// a replica); the replica stays where it is.
			kept = append(kept, id)
			continue
		}
		fs.table.rehome(id, node, to)
		fs.byNode[int(to)] = append(fs.byNode[int(to)], id)
		moved++
	}
	if len(kept) > 0 {
		fs.byNode[int(node)] = kept
	}
	if fs.tr.Enabled() {
		fs.tr.Instant("dfs", "decommission", int(node),
			trace.Int("moved", int64(moved)), trace.Int("kept", int64(len(kept))))
	}
	return moved, nil
}

// pickReplacement chooses a placeable node, not already holding a
// replica of the block, to receive the replica leaving `from`.
func (fs *FS) pickReplacement(id BlockID, from cluster.NodeID) (cluster.NodeID, bool) {
	n := fs.cl.Size()
	ok := func(c cluster.NodeID) bool {
		return !fs.decommissioned[int(c)] && !fs.table.holdsReplica(id, c)
	}
	for try := 0; try < placeSampleTries; try++ {
		c := cluster.NodeID(fs.rng.Intn(n))
		if ok(c) {
			return c, true
		}
	}
	start := fs.rng.Intn(n)
	for i := 0; i < n; i++ {
		c := cluster.NodeID((start + i) % n)
		if ok(c) {
			return c, true
		}
	}
	return 0, false
}

// ReadBlock reads a block on behalf of a task running at node `at`.
// The read is redirected to an in-memory replica when one exists (local or
// remote, per §III: "reads will be directed to the in-memory replica
// whether it is local or remote"); otherwise it is served from a disk
// replica, preferring a local one. done receives the result.
//
// onRead, if non-nil, is invoked synchronously with the chosen result
// metadata before the transfer begins; the migration layer uses it for
// implicit eviction.
func (fs *FS) ReadBlock(at cluster.NodeID, id BlockID, done func(ReadResult)) error {
	var sp trace.SpanRef
	if fs.tr.Enabled() {
		sp = fs.tr.Begin("read", "read", int(at),
			trace.Int("block", int64(id)),
			trace.Int("size", int64(fs.table.blockSize(id))))
	}
	return fs.readAttempt(at, id, fs.eng.Now(), nil, done, true, sp)
}

// readAttempt is one try at serving the read; on hitting a node that is
// actually down (but still offered by the stale NameNode view), it pays
// the connect timeout and retries with that node excluded — the client
// fail-over of §III-C2. sp is the read's trace span, threaded through
// the fail-over retries so the whole read (timeouts included) is one
// span.
func (fs *FS) readAttempt(at cluster.NodeID, id BlockID, start sim.Time,
	exclude map[cluster.NodeID]bool, done func(ReadResult), first bool, sp trace.SpanRef) error {
	size := fs.table.blockSize(id)

	finish := func(src ReadSource, server cluster.NodeID) {
		res := ReadResult{Block: id, Source: src, Server: server, Started: start, Finished: fs.eng.Now()}
		fs.hReadLat.Observe(int64(res.Finished.Sub(start)))
		if fs.tr.Enabled() {
			fs.tr.Add(src.bytesCounter(), size)
			fs.tr.Inc(src.countCounter())
			sp.End(trace.Str("source", src.String()), trace.Int("server", int64(server)))
		}
		if done != nil {
			done(res)
		}
	}
	failover := func(server cluster.NodeID) {
		timeout := time.Second
		if fs.liveness != nil {
			timeout = fs.liveness.cfg.ConnectTimeout
		}
		fs.eng.Schedule(timeout, func() {
			fs.failedOvers++
			if fs.tr.Enabled() {
				fs.tr.Inc("read.failover")
				fs.tr.Instant("read", "failover", int(at),
					trace.Int("block", int64(id)), trace.Int("dead-server", int64(server)))
			}
			ex := exclude
			if ex == nil {
				ex = make(map[cluster.NodeID]bool)
			}
			ex[server] = true
			fs.readAttempt(at, id, start, ex, done, false, sp)
		})
	}

	if memNode, ok := fs.MemReplica(id); ok && !exclude[memNode] {
		if first {
			fs.notifyRead(id, at)
		}
		if !fs.cl.Node(memNode).Alive() {
			failover(memNode)
			return nil
		}
		dn := fs.dns[int(memNode)]
		dn.MemReads++
		if memNode == at {
			fs.eng.Schedule(fs.cfg.ReadLatency, func() {
				dn.node.Mem.Start(size, func(*sim.Flow) { finish(SourceMemLocal, memNode) })
			})
		} else {
			dn.RemoteServes++
			legs := fs.transferLegs(dn.node.NIC, at, memNode)
			fs.eng.Schedule(fs.cfg.ReadLatency, func() {
				fs.startTransfer(legs, size, func() { finish(SourceMemRemote, memNode) })
			})
		}
		return nil
	}

	replicas := fs.LiveReplicas(id, fs.repBuf[:0])
	fs.repBuf = replicas[:0]
	if exclude != nil {
		kept := replicas[:0]
		for _, r := range replicas {
			if !exclude[r] {
				kept = append(kept, r)
			}
		}
		replicas = kept
	}
	if len(replicas) == 0 {
		sp.End(trace.Str("outcome", "failed"))
		if first {
			return ErrNoReplica
		}
		if done != nil {
			done(ReadResult{Block: id, Failed: true, Started: start, Finished: fs.eng.Now()})
		}
		return ErrNoReplica
	}
	server := replicas[0]
	local := false
	for _, r := range replicas {
		if r == at {
			server = r
			local = true
			break
		}
	}
	if !local {
		server = fs.pickRemoteReplica(at, replicas)
	}
	if first {
		fs.notifyRead(id, at)
	}
	if !fs.cl.Node(server).Alive() {
		failover(server)
		return nil
	}
	dn := fs.dns[int(server)]
	dn.DiskReads++
	src := SourceDiskLocal
	if !local {
		src = SourceDiskRemote
		dn.RemoteServes++
	}
	res := dn.node.Disk
	if fs.blockTier(id) == TierSSD {
		res = dn.node.SSD
	}
	legs := []*sim.Resource{res}
	if !local {
		legs = fs.transferLegs(res, at, server)
	}
	fs.eng.Schedule(fs.cfg.ReadLatency, func() {
		fs.startTransfer(legs, size, func() { finish(src, server) })
	})
	return nil
}

// pickRemoteReplica chooses the replica to read from when none is local:
// a random same-rack replica when one exists (HDFS sorts replicas by
// network distance), otherwise a random replica.
func (fs *FS) pickRemoteReplica(at cluster.NodeID, replicas []cluster.NodeID) cluster.NodeID {
	if fs.cl.Racks() > 1 {
		var sameRack []cluster.NodeID
		for _, r := range replicas {
			if fs.cl.SameRack(at, r) {
				sameRack = append(sameRack, r)
			}
		}
		if len(sameRack) > 0 {
			return sameRack[fs.rng.Intn(len(sameRack))]
		}
	}
	return replicas[fs.rng.Intn(len(replicas))]
}

// transferLegs lists the resources a remote transfer from server to
// reader traverses: the serving device plus, when the nodes are on
// different racks and the core is modeled, the core switch.
func (fs *FS) transferLegs(serving *sim.Resource, at, server cluster.NodeID) []*sim.Resource {
	legs := []*sim.Resource{serving}
	if !fs.cl.SameRack(at, server) {
		if core := fs.cl.Core(); core != nil {
			legs = append(legs, core)
		}
	}
	return legs
}

// startTransfer moves size bytes through every leg in parallel; done
// runs when the slowest leg finishes. This models a path of independent
// bottlenecks conservatively without coupled-rate bookkeeping.
func (fs *FS) startTransfer(legs []*sim.Resource, size sim.Bytes, done func()) {
	pending := len(legs)
	for _, leg := range legs {
		leg.Start(size, func(*sim.Flow) {
			pending--
			if pending == 0 {
				done()
			}
		})
	}
}

// readHook is invoked on every block read; the migration slave registers
// one to implement implicit eviction (§III-C3).
type readHook func(id BlockID, at cluster.NodeID)

var errNilHook = errors.New("dfs: nil read hook")

// hooks registered by the migration layer.
func (fs *FS) notifyRead(id BlockID, at cluster.NodeID) {
	for _, h := range fs.readHooks {
		h(id, at)
	}
}

// OnRead registers fn to be called at the start of every block read.
func (fs *FS) OnRead(fn func(id BlockID, at cluster.NodeID)) error {
	if fn == nil {
		return errNilHook
	}
	fs.readHooks = append(fs.readHooks, fn)
	return nil
}

// MigrateToMemory performs the slave-side migration mechanics: read the
// block from this node's disk (the mmap+mlock path in the paper) and, on
// completion, register the in-memory replica. The returned flow lets the
// caller observe progress or cancel. The DataNode must hold a disk
// replica of the block.
//
// weight is the migration stream's IO fair-share weight relative to
// foreground reads (weight 1). Migration runs at background priority so
// it consumes residual bandwidth: the full disk when idle, next to
// nothing when foreground reads saturate it.
func (dn *DataNode) MigrateToMemory(id BlockID, weight float64, done func(sim.Duration)) (*sim.Flow, error) {
	fs := dn.fs
	if !fs.table.holdsReplica(id, dn.node.ID) {
		return nil, fmt.Errorf("dfs: node %v holds no replica of block %d", dn.node.ID, id)
	}
	if weight <= 0 {
		weight = 1
	}
	start := fs.eng.Now()
	dn.DiskReads++
	res := dn.node.Disk
	if fs.blockTier(id) == TierSSD {
		res = dn.node.SSD
	}
	f := res.StartWeighted(fs.table.blockSize(id), weight, func(*sim.Flow) {
		fs.RegisterMem(id, dn.node.ID)
		if done != nil {
			done(fs.eng.Now().Sub(start))
		}
	})
	return f, nil
}

// WriteBlocks writes `size` bytes of job output originating at node `at`,
// split into blocks, with the given replication (jobs often write output
// with replication 1 in sort benchmarks). done runs when all block
// writes complete.
//
// The write path models the HDFS replication pipeline: the first replica
// lands on the writer's local disk; each additional replica streams
// through the downstream node's NIC onto its disk (and through the core
// switch when the hop crosses racks). A block write completes when the
// slowest pipeline leg finishes.
func (fs *FS) WriteBlocks(at cluster.NodeID, size sim.Bytes, replication int, done func()) {
	if size <= 0 {
		if done != nil {
			fs.eng.Schedule(0, done)
		}
		return
	}
	if replication <= 0 {
		replication = 1
	}
	nBlocks := int((size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	pending := 0
	finish := func() {
		pending--
		if pending == 0 && done != nil {
			done()
		}
	}
	remaining := size
	for i := 0; i < nBlocks; i++ {
		bs := fs.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		remaining -= bs
		targets := fs.writeTargets(at, replication)
		var legs []*sim.Resource
		prev := at
		for _, tgt := range targets {
			node := fs.dns[int(tgt)].node
			if tgt != prev {
				// Pipeline hop: downstream NIC, plus the core when the
				// hop crosses racks.
				legs = append(legs, node.NIC)
				if !fs.cl.SameRack(prev, tgt) {
					if core := fs.cl.Core(); core != nil {
						legs = append(legs, core)
					}
				}
			}
			legs = append(legs, node.Disk)
			fs.dns[int(tgt)].BlocksWritten++
			prev = tgt
		}
		pending++
		fs.startTransfer(legs, bs, finish)
	}
	if pending == 0 && done != nil {
		fs.eng.Schedule(0, done)
	}
}

func (fs *FS) writeTargets(at cluster.NodeID, replication int) []cluster.NodeID {
	targets := []cluster.NodeID{at}
	if !fs.cl.Node(at).Alive() {
		targets = nil
	}
	alive := fs.cl.AliveNodes()
	perm := fs.rng.Perm(len(alive))
	for _, p := range perm {
		if len(targets) >= replication {
			break
		}
		id := alive[p]
		if id == at || fs.decommissioned[int(id)] {
			continue
		}
		targets = append(targets, id)
	}
	return targets
}

// ReadCounts returns per-node counts of disk reads served, in node order —
// the data behind Fig. 8.
func (fs *FS) ReadCounts() []int {
	out := make([]int, len(fs.dns))
	for i, dn := range fs.dns {
		out[i] = dn.DiskReads
	}
	return out
}

// SortedBlockIDs returns all block ids of the named files sorted by file
// order; convenience for tests.
func (fs *FS) SortedBlockIDs(names []string) []BlockID {
	ids, err := fs.FileBlockIDs(names)
	if err != nil {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
