// Package dfs implements the big-data file system substrate: an HDFS-like
// master-slave file system with a NameNode block catalog, DataNodes that
// serve block reads from disk or from an in-memory buffer, 3-way replica
// placement, and the read-redirection hook DYRS uses to steer reads to
// in-memory replicas (paper §III, §IV).
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// BlockID identifies a block in the file system.
type BlockID int

// Tier is the storage medium holding a file's blocks.
type Tier int

// Storage tiers, slowest first.
const (
	TierDisk Tier = iota
	TierSSD
)

// String names the tier.
func (t Tier) String() string {
	if t == TierSSD {
		return "ssd"
	}
	return "disk"
}

// Block is one fixed-size chunk of a file, replicated on several nodes.
type Block struct {
	ID       BlockID
	File     string
	Index    int // position within the file
	Size     sim.Bytes
	Tier     Tier
	Replicas []cluster.NodeID // replica locations, immutable after placement
}

// File is a named sequence of blocks.
type File struct {
	Name   string
	Size   sim.Bytes
	Blocks []BlockID
}

// Config holds file-system parameters.
type Config struct {
	// BlockSize is the maximum block size (HDFS default in the paper's
	// era: 256 MB for large inputs).
	BlockSize sim.Bytes
	// Replication is the number of disk replicas per block.
	Replication int
	// ReadLatency is the fixed per-read setup latency (RPC + open).
	ReadLatency sim.Duration
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: 256 MB blocks, 3-way replication.
func DefaultConfig() Config {
	return Config{
		BlockSize:   256 * sim.MB,
		Replication: 3,
		ReadLatency: 2 * sim.Duration(1e6), // 2ms
	}
}

// ReadSource describes where a block read was served from.
type ReadSource int

// Read sources, fastest last.
const (
	SourceDiskLocal ReadSource = iota
	SourceDiskRemote
	SourceMemLocal
	SourceMemRemote
)

// String names the read source.
func (s ReadSource) String() string {
	switch s {
	case SourceDiskLocal:
		return "disk-local"
	case SourceDiskRemote:
		return "disk-remote"
	case SourceMemLocal:
		return "mem-local"
	case SourceMemRemote:
		return "mem-remote"
	}
	return "unknown"
}

// FromMemory reports whether the source is an in-memory replica.
func (s ReadSource) FromMemory() bool {
	return s == SourceMemLocal || s == SourceMemRemote
}

// bytesCounter names the tracer counter accumulating bytes served from
// this source. Precomputed constants keep the traced read path free of
// string concatenation.
func (s ReadSource) bytesCounter() string {
	switch s {
	case SourceDiskLocal:
		return "read.bytes.disk-local"
	case SourceDiskRemote:
		return "read.bytes.disk-remote"
	case SourceMemLocal:
		return "read.bytes.mem-local"
	case SourceMemRemote:
		return "read.bytes.mem-remote"
	}
	return "read.bytes.unknown"
}

// countCounter names the tracer counter of reads served from this source.
func (s ReadSource) countCounter() string {
	switch s {
	case SourceDiskLocal:
		return "read.count.disk-local"
	case SourceDiskRemote:
		return "read.count.disk-remote"
	case SourceMemLocal:
		return "read.count.mem-local"
	case SourceMemRemote:
		return "read.count.mem-remote"
	}
	return "read.count.unknown"
}

// ReadResult describes a completed block read.
type ReadResult struct {
	Block    BlockID
	Source   ReadSource
	Server   cluster.NodeID // node that served the bytes
	Started  sim.Time
	Finished sim.Time
	// Failed is set when every replica became unreachable before the
	// read could be served (only possible mid-failover; the initial
	// call reports ErrNoReplica synchronously instead).
	Failed bool
}

// Duration reports how long the read took.
func (r ReadResult) Duration() sim.Duration { return r.Finished.Sub(r.Started) }

// DataNode is the per-node storage server: it owns the node's disk for
// block reads and tracks which blocks are resident in its memory buffer.
type DataNode struct {
	fs   *FS
	node *cluster.Node

	memBlocks map[BlockID]sim.Bytes
	memUsed   sim.Bytes

	// Counters for the evaluation (Fig. 8 counts reads per DataNode).
	DiskReads     int
	MemReads      int
	RemoteServes  int
	BlocksWritten int
}

// Node returns the underlying cluster node.
func (dn *DataNode) Node() *cluster.Node { return dn.node }

// MemUsed reports bytes of migrated blocks currently buffered.
func (dn *DataNode) MemUsed() sim.Bytes { return dn.memUsed }

// HasMem reports whether the block is resident in this node's buffer.
func (dn *DataNode) HasMem(b BlockID) bool {
	_, ok := dn.memBlocks[b]
	return ok
}

// MemBlockCount reports how many blocks are buffered.
func (dn *DataNode) MemBlockCount() int { return len(dn.memBlocks) }

// FS is the simulated distributed file system. The NameNode role (file
// and block catalog, replica lookup, in-memory replica registry) is
// implemented directly on FS; DataNodes hold per-node state.
type FS struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	cfg Config
	rng *rand.Rand
	tr  *trace.Tracer // run tracer; nil (no-op) when untraced

	files  map[string]*File
	blocks []*Block
	dns    []*DataNode

	// mem is the NameNode-side registry of in-memory replicas, updated by
	// the migration layer; reads consult it to redirect to memory.
	mem map[BlockID]cluster.NodeID

	readHooks []readHook

	// liveness, when enabled, replaces oracle liveness with the
	// NameNode's heartbeat-based (stale) view; failedOvers counts reads
	// that retried after hitting an unreachable node (§III-C2).
	liveness    *liveness
	failedOvers int

	placeCursor int // rotates placement start for balance
}

// New creates a file system over the cluster.
func New(cl *cluster.Cluster, cfg Config) *FS {
	if cfg.BlockSize <= 0 || cfg.Replication <= 0 {
		panic("dfs: invalid config")
	}
	if cfg.Replication > cl.Size() {
		panic(fmt.Sprintf("dfs: replication %d exceeds cluster size %d", cfg.Replication, cl.Size()))
	}
	eng := cl.Engine()
	fs := &FS{
		eng:   eng,
		cl:    cl,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(eng.Rand().Int63())),
		tr:    trace.FromEngine(eng),
		files: make(map[string]*File),
		mem:   make(map[BlockID]cluster.NodeID),
	}
	for _, n := range cl.Nodes() {
		fs.dns = append(fs.dns, &DataNode{
			fs:        fs,
			node:      n,
			memBlocks: make(map[BlockID]sim.Bytes),
		})
	}
	return fs
}

// Config returns the file system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Cluster returns the underlying cluster.
func (fs *FS) Cluster() *cluster.Cluster { return fs.cl }

// DataNode returns the DataNode on the given cluster node.
func (fs *FS) DataNode(id cluster.NodeID) *DataNode { return fs.dns[int(id)] }

// errors returned by catalog operations.
var (
	ErrFileExists   = errors.New("dfs: file already exists")
	ErrFileNotFound = errors.New("dfs: file not found")
	ErrNoReplica    = errors.New("dfs: no live replica")
)

// CreateFile registers a file of the given size on the disk tier, splits
// it into blocks and places replicas. Placement mimics HDFS default:
// replicas land on distinct nodes chosen pseudo-randomly, rotating the
// starting node so data spreads evenly.
func (fs *FS) CreateFile(name string, size sim.Bytes) (*File, error) {
	return fs.CreateFileOnTier(name, size, TierDisk)
}

// CreateFileOnTier registers a file whose blocks live on the given
// storage tier (disk or SSD).
func (fs *FS) CreateFileOnTier(name string, size sim.Bytes, tier Tier) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, ErrFileExists
	}
	if size <= 0 {
		return nil, errors.New("dfs: file size must be positive")
	}
	f := &File{Name: name, Size: size}
	remaining := size
	idx := 0
	for remaining > 0 {
		bs := fs.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		b := &Block{
			ID:       BlockID(len(fs.blocks)),
			File:     name,
			Index:    idx,
			Size:     bs,
			Tier:     tier,
			Replicas: fs.placeReplicas(),
		}
		fs.blocks = append(fs.blocks, b)
		f.Blocks = append(f.Blocks, b.ID)
		remaining -= bs
		idx++
	}
	fs.files[name] = f
	return f, nil
}

// placeReplicas chooses Replication distinct nodes. The first replica
// rotates around the cluster (even spread, like writers spread across
// nodes). On a flat cluster the rest are random; on a racked cluster
// placement follows the HDFS default policy: the second replica goes to
// a different rack than the first, the third to the second replica's
// rack, and any further replicas land randomly.
func (fs *FS) placeReplicas() []cluster.NodeID {
	n := fs.cl.Size()
	first := cluster.NodeID(fs.placeCursor % n)
	fs.placeCursor++
	chosen := []cluster.NodeID{first}
	taken := map[cluster.NodeID]bool{first: true}

	pick := func(accept func(cluster.NodeID) bool) bool {
		perm := fs.rng.Perm(n)
		for _, p := range perm {
			id := cluster.NodeID(p)
			if taken[id] || !accept(id) {
				continue
			}
			chosen = append(chosen, id)
			taken[id] = true
			return true
		}
		return false
	}
	any := func(cluster.NodeID) bool { return true }

	if fs.cl.Racks() > 1 {
		if len(chosen) < fs.cfg.Replication {
			// Second replica: off the first replica's rack.
			if !pick(func(id cluster.NodeID) bool { return !fs.cl.SameRack(id, first) }) {
				pick(any)
			}
		}
		if len(chosen) < fs.cfg.Replication && len(chosen) >= 2 {
			// Third replica: same rack as the second.
			second := chosen[1]
			if !pick(func(id cluster.NodeID) bool { return fs.cl.SameRack(id, second) }) {
				pick(any)
			}
		}
	}
	for len(chosen) < fs.cfg.Replication {
		if !pick(any) {
			break
		}
	}
	return chosen
}

// File looks up a file by name.
func (fs *FS) File(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrFileNotFound
	}
	return f, nil
}

// FileBlocks maps a list of file names to their blocks, in file order —
// the operation the DYRS master performs when it receives a migration
// request for a job's input files.
func (fs *FS) FileBlocks(names []string) ([]*Block, error) {
	var out []*Block
	for _, name := range names {
		f, err := fs.File(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %s", err, name)
		}
		for _, id := range f.Blocks {
			out = append(out, fs.blocks[int(id)])
		}
	}
	return out, nil
}

// Block returns the block with the given id.
func (fs *FS) Block(id BlockID) *Block { return fs.blocks[int(id)] }

// NumBlocks reports the total number of blocks in the catalog.
func (fs *FS) NumBlocks() int { return len(fs.blocks) }

// Replicas returns the block's replica locations on nodes the NameNode
// considers available. With heartbeat liveness enabled this view can be
// stale: a freshly dead node is still offered until its heartbeats have
// been missed (§III-C2).
func (fs *FS) Replicas(id BlockID) []cluster.NodeID {
	var out []cluster.NodeID
	for _, r := range fs.blocks[int(id)].Replicas {
		if fs.nodeAvailable(r) {
			out = append(out, r)
		}
	}
	return out
}

// MemReplica reports the node holding an in-memory replica of the block,
// if the NameNode considers that node available.
func (fs *FS) MemReplica(id BlockID) (cluster.NodeID, bool) {
	n, ok := fs.mem[id]
	if !ok || !fs.nodeAvailable(n) {
		return 0, false
	}
	return n, true
}

// RegisterMem records that node holds an in-memory replica of the block
// and charges the bytes to the DataNode's buffer accounting. Called by
// the migration slave when a migration completes.
//
// A block has at most one registered memory replica. If a stale copy is
// still buffered on another node — possible when the migration master
// lost its state in a fail-over and re-migrated the block — the stale
// copy is released so the registry and the per-node buffers stay in
// bijection (Fsck invariant 3 checks both directions).
func (fs *FS) RegisterMem(id BlockID, node cluster.NodeID) {
	dn := fs.dns[int(node)]
	if _, ok := dn.memBlocks[id]; ok {
		return
	}
	if prev, ok := fs.mem[id]; ok && prev != node {
		fs.DropMem(id, prev)
	}
	size := fs.blocks[int(id)].Size
	dn.memBlocks[id] = size
	dn.memUsed += size
	fs.mem[id] = node
}

// DropMem removes the in-memory replica of a block from a node.
func (fs *FS) DropMem(id BlockID, node cluster.NodeID) {
	dn := fs.dns[int(node)]
	size, ok := dn.memBlocks[id]
	if !ok {
		return
	}
	delete(dn.memBlocks, id)
	dn.memUsed -= size
	if fs.mem[id] == node {
		delete(fs.mem, id)
	}
	if fs.tr.Enabled() {
		fs.tr.Inc("evictions")
		fs.tr.Instant("migration", "evict", int(node),
			trace.Int("block", int64(id)), trace.Int("size", int64(size)))
	}
}

// DropAllMem clears every buffered block on a node — what happens when a
// DYRS slave process dies and the OS reclaims its locked memory.
func (fs *FS) DropAllMem(node cluster.NodeID) {
	dn := fs.dns[int(node)]
	for id := range dn.memBlocks {
		if fs.mem[id] == node {
			delete(fs.mem, id)
		}
	}
	if fs.tr.Enabled() && len(dn.memBlocks) > 0 {
		fs.tr.Add("evictions", int64(len(dn.memBlocks)))
		fs.tr.Instant("migration", "evict-all", int(node),
			trace.Int("blocks", int64(len(dn.memBlocks))),
			trace.Int("bytes", int64(dn.memUsed)))
	}
	dn.memBlocks = make(map[BlockID]sim.Bytes)
	if !canaryLeakBufferAccounting {
		dn.memUsed = 0
	}
}

// MemBlockIDs returns the blocks resident in this node's buffer, sorted
// by block ID. The migration slave's scavenger walks this list; sorting
// keeps reclamation order (and any trace it emits) deterministic.
func (dn *DataNode) MemBlockIDs() []BlockID {
	ids := make([]BlockID, 0, len(dn.memBlocks))
	for id := range dn.memBlocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MemReplicaCount reports the number of blocks with an in-memory replica.
func (fs *FS) MemReplicaCount() int { return len(fs.mem) }

// TotalMemUsed reports buffered bytes across all nodes.
func (fs *FS) TotalMemUsed() sim.Bytes {
	var total sim.Bytes
	for _, dn := range fs.dns {
		total += dn.memUsed
	}
	return total
}

// ReadBlock reads a block on behalf of a task running at node `at`.
// The read is redirected to an in-memory replica when one exists (local or
// remote, per §III: "reads will be directed to the in-memory replica
// whether it is local or remote"); otherwise it is served from a disk
// replica, preferring a local one. done receives the result.
//
// onRead, if non-nil, is invoked synchronously with the chosen result
// metadata before the transfer begins; the migration layer uses it for
// implicit eviction.
func (fs *FS) ReadBlock(at cluster.NodeID, id BlockID, done func(ReadResult)) error {
	var sp trace.SpanRef
	if fs.tr.Enabled() {
		sp = fs.tr.Begin("read", "read", int(at),
			trace.Int("block", int64(id)),
			trace.Int("size", int64(fs.blocks[int(id)].Size)))
	}
	return fs.readAttempt(at, id, fs.eng.Now(), nil, done, true, sp)
}

// readAttempt is one try at serving the read; on hitting a node that is
// actually down (but still offered by the stale NameNode view), it pays
// the connect timeout and retries with that node excluded — the client
// fail-over of §III-C2. sp is the read's trace span, threaded through
// the fail-over retries so the whole read (timeouts included) is one
// span.
func (fs *FS) readAttempt(at cluster.NodeID, id BlockID, start sim.Time,
	exclude map[cluster.NodeID]bool, done func(ReadResult), first bool, sp trace.SpanRef) error {
	b := fs.blocks[int(id)]

	finish := func(src ReadSource, server cluster.NodeID) {
		res := ReadResult{Block: id, Source: src, Server: server, Started: start, Finished: fs.eng.Now()}
		if fs.tr.Enabled() {
			fs.tr.Add(src.bytesCounter(), b.Size)
			fs.tr.Inc(src.countCounter())
			sp.End(trace.Str("source", src.String()), trace.Int("server", int64(server)))
		}
		if done != nil {
			done(res)
		}
	}
	failover := func(server cluster.NodeID) {
		timeout := time.Second
		if fs.liveness != nil {
			timeout = fs.liveness.cfg.ConnectTimeout
		}
		fs.eng.Schedule(timeout, func() {
			fs.failedOvers++
			if fs.tr.Enabled() {
				fs.tr.Inc("read.failover")
				fs.tr.Instant("read", "failover", int(at),
					trace.Int("block", int64(id)), trace.Int("dead-server", int64(server)))
			}
			ex := exclude
			if ex == nil {
				ex = make(map[cluster.NodeID]bool)
			}
			ex[server] = true
			fs.readAttempt(at, id, start, ex, done, false, sp)
		})
	}

	if memNode, ok := fs.MemReplica(id); ok && !exclude[memNode] {
		if first {
			fs.notifyRead(id, at)
		}
		if !fs.cl.Node(memNode).Alive() {
			failover(memNode)
			return nil
		}
		dn := fs.dns[int(memNode)]
		dn.MemReads++
		if memNode == at {
			fs.eng.Schedule(fs.cfg.ReadLatency, func() {
				dn.node.Mem.Start(b.Size, func(*sim.Flow) { finish(SourceMemLocal, memNode) })
			})
		} else {
			dn.RemoteServes++
			legs := fs.transferLegs(dn.node.NIC, at, memNode)
			fs.eng.Schedule(fs.cfg.ReadLatency, func() {
				fs.startTransfer(legs, b.Size, func() { finish(SourceMemRemote, memNode) })
			})
		}
		return nil
	}

	var replicas []cluster.NodeID
	for _, r := range fs.Replicas(id) {
		if !exclude[r] {
			replicas = append(replicas, r)
		}
	}
	if len(replicas) == 0 {
		sp.End(trace.Str("outcome", "failed"))
		if first {
			return ErrNoReplica
		}
		if done != nil {
			done(ReadResult{Block: id, Failed: true, Started: start, Finished: fs.eng.Now()})
		}
		return ErrNoReplica
	}
	server := replicas[0]
	local := false
	for _, r := range replicas {
		if r == at {
			server = r
			local = true
			break
		}
	}
	if !local {
		server = fs.pickRemoteReplica(at, replicas)
	}
	if first {
		fs.notifyRead(id, at)
	}
	if !fs.cl.Node(server).Alive() {
		failover(server)
		return nil
	}
	dn := fs.dns[int(server)]
	dn.DiskReads++
	src := SourceDiskLocal
	if !local {
		src = SourceDiskRemote
		dn.RemoteServes++
	}
	res := dn.node.Disk
	if b.Tier == TierSSD {
		res = dn.node.SSD
	}
	legs := []*sim.Resource{res}
	if !local {
		legs = fs.transferLegs(res, at, server)
	}
	fs.eng.Schedule(fs.cfg.ReadLatency, func() {
		fs.startTransfer(legs, b.Size, func() { finish(src, server) })
	})
	return nil
}

// pickRemoteReplica chooses the replica to read from when none is local:
// a random same-rack replica when one exists (HDFS sorts replicas by
// network distance), otherwise a random replica.
func (fs *FS) pickRemoteReplica(at cluster.NodeID, replicas []cluster.NodeID) cluster.NodeID {
	if fs.cl.Racks() > 1 {
		var sameRack []cluster.NodeID
		for _, r := range replicas {
			if fs.cl.SameRack(at, r) {
				sameRack = append(sameRack, r)
			}
		}
		if len(sameRack) > 0 {
			return sameRack[fs.rng.Intn(len(sameRack))]
		}
	}
	return replicas[fs.rng.Intn(len(replicas))]
}

// transferLegs lists the resources a remote transfer from server to
// reader traverses: the serving device plus, when the nodes are on
// different racks and the core is modeled, the core switch.
func (fs *FS) transferLegs(serving *sim.Resource, at, server cluster.NodeID) []*sim.Resource {
	legs := []*sim.Resource{serving}
	if !fs.cl.SameRack(at, server) {
		if core := fs.cl.Core(); core != nil {
			legs = append(legs, core)
		}
	}
	return legs
}

// startTransfer moves size bytes through every leg in parallel; done
// runs when the slowest leg finishes. This models a path of independent
// bottlenecks conservatively without coupled-rate bookkeeping.
func (fs *FS) startTransfer(legs []*sim.Resource, size sim.Bytes, done func()) {
	pending := len(legs)
	for _, leg := range legs {
		leg.Start(size, func(*sim.Flow) {
			pending--
			if pending == 0 {
				done()
			}
		})
	}
}

// readHook is invoked on every block read; the migration slave registers
// one to implement implicit eviction (§III-C3).
type readHook func(id BlockID, at cluster.NodeID)

var errNilHook = errors.New("dfs: nil read hook")

// hooks registered by the migration layer.
func (fs *FS) notifyRead(id BlockID, at cluster.NodeID) {
	for _, h := range fs.readHooks {
		h(id, at)
	}
}

// OnRead registers fn to be called at the start of every block read.
func (fs *FS) OnRead(fn func(id BlockID, at cluster.NodeID)) error {
	if fn == nil {
		return errNilHook
	}
	fs.readHooks = append(fs.readHooks, fn)
	return nil
}

// MigrateToMemory performs the slave-side migration mechanics: read the
// block from this node's disk (the mmap+mlock path in the paper) and, on
// completion, register the in-memory replica. The returned flow lets the
// caller observe progress or cancel. The DataNode must hold a disk
// replica of the block.
//
// weight is the migration stream's IO fair-share weight relative to
// foreground reads (weight 1). Migration runs at background priority so
// it consumes residual bandwidth: the full disk when idle, next to
// nothing when foreground reads saturate it.
func (dn *DataNode) MigrateToMemory(id BlockID, weight float64, done func(sim.Duration)) (*sim.Flow, error) {
	b := dn.fs.blocks[int(id)]
	holds := false
	for _, r := range b.Replicas {
		if r == dn.node.ID {
			holds = true
			break
		}
	}
	if !holds {
		return nil, fmt.Errorf("dfs: node %v holds no replica of block %d", dn.node.ID, id)
	}
	if weight <= 0 {
		weight = 1
	}
	start := dn.fs.eng.Now()
	dn.DiskReads++
	res := dn.node.Disk
	if b.Tier == TierSSD {
		res = dn.node.SSD
	}
	f := res.StartWeighted(b.Size, weight, func(*sim.Flow) {
		dn.fs.RegisterMem(id, dn.node.ID)
		if done != nil {
			done(dn.fs.eng.Now().Sub(start))
		}
	})
	return f, nil
}

// WriteBlocks writes `size` bytes of job output originating at node `at`,
// split into blocks, with the given replication (jobs often write output
// with replication 1 in sort benchmarks). done runs when all block
// writes complete.
//
// The write path models the HDFS replication pipeline: the first replica
// lands on the writer's local disk; each additional replica streams
// through the downstream node's NIC onto its disk (and through the core
// switch when the hop crosses racks). A block write completes when the
// slowest pipeline leg finishes.
func (fs *FS) WriteBlocks(at cluster.NodeID, size sim.Bytes, replication int, done func()) {
	if size <= 0 {
		if done != nil {
			fs.eng.Schedule(0, done)
		}
		return
	}
	if replication <= 0 {
		replication = 1
	}
	nBlocks := int((size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	pending := 0
	finish := func() {
		pending--
		if pending == 0 && done != nil {
			done()
		}
	}
	remaining := size
	for i := 0; i < nBlocks; i++ {
		bs := fs.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		remaining -= bs
		targets := fs.writeTargets(at, replication)
		var legs []*sim.Resource
		prev := at
		for _, tgt := range targets {
			node := fs.dns[int(tgt)].node
			if tgt != prev {
				// Pipeline hop: downstream NIC, plus the core when the
				// hop crosses racks.
				legs = append(legs, node.NIC)
				if !fs.cl.SameRack(prev, tgt) {
					if core := fs.cl.Core(); core != nil {
						legs = append(legs, core)
					}
				}
			}
			legs = append(legs, node.Disk)
			fs.dns[int(tgt)].BlocksWritten++
			prev = tgt
		}
		pending++
		fs.startTransfer(legs, bs, finish)
	}
	if pending == 0 && done != nil {
		fs.eng.Schedule(0, done)
	}
}

func (fs *FS) writeTargets(at cluster.NodeID, replication int) []cluster.NodeID {
	targets := []cluster.NodeID{at}
	if !fs.cl.Node(at).Alive() {
		targets = nil
	}
	alive := fs.cl.AliveNodes()
	perm := fs.rng.Perm(len(alive))
	for _, p := range perm {
		if len(targets) >= replication {
			break
		}
		id := alive[p]
		if id == at {
			continue
		}
		targets = append(targets, id)
	}
	return targets
}

// ReadCounts returns per-node counts of disk reads served, in node order —
// the data behind Fig. 8.
func (fs *FS) ReadCounts() []int {
	out := make([]int, len(fs.dns))
	for i, dn := range fs.dns {
		out[i] = dn.DiskReads
	}
	return out
}

// SortedBlockIDs returns all block ids of the named files sorted by file
// order; convenience for tests.
func (fs *FS) SortedBlockIDs(names []string) []BlockID {
	blocks, err := fs.FileBlocks(names)
	if err != nil {
		return nil
	}
	ids := make([]BlockID, len(blocks))
	for i, b := range blocks {
		ids[i] = b.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
