package dfs

// Differential tests pitting the struct-of-arrays block table and the
// flat registry columns against straightforward map-based reference
// implementations — the shape of the catalog before the SoA refactor.
// The references are deliberately naive (maps of slices, no scratch
// buffers, no positional bookkeeping): any divergence under a long
// random op sequence is a bug in the compact representation, not in the
// model.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

// refTable is the map-based reference for blockTable: one entry per
// block, replica sets as plain slices.
type refTable struct {
	stride int
	sizes  map[BlockID]sim.Bytes
	files  map[BlockID]int32
	reps   map[BlockID][]cluster.NodeID
}

func (r *refTable) add(size sim.Bytes, file int32, reps []cluster.NodeID) BlockID {
	id := BlockID(len(r.sizes))
	r.sizes[id] = size
	r.files[id] = file
	r.reps[id] = append([]cluster.NodeID(nil), reps...)
	return id
}

func (r *refTable) rehome(id BlockID, from, to cluster.NodeID) bool {
	for i, n := range r.reps[id] {
		if n == from {
			r.reps[id][i] = to
			return true
		}
	}
	return false
}

func (r *refTable) holds(id BlockID, node cluster.NodeID) bool {
	for _, n := range r.reps[id] {
		if n == node {
			return true
		}
	}
	return false
}

// TestBlockTableDifferential drives a long seeded op sequence through
// blockTable and refTable in lockstep and compares every accessor after
// every mutation. Replica sets are compared in slot order: rehome must
// preserve slot positions exactly, since the postings index and the
// rack placement tests depend on placement order surviving.
func TestBlockTableDifferential(t *testing.T) {
	t.Parallel()
	const nodes, stride, ops = 12, 3, 4000
	rng := rand.New(rand.NewSource(99))
	tab := newBlockTable(stride)
	ref := &refTable{
		stride: stride,
		sizes:  make(map[BlockID]sim.Bytes),
		files:  make(map[BlockID]int32),
		reps:   make(map[BlockID][]cluster.NodeID),
	}

	drawReps := func() []cluster.NodeID {
		n := 1 + rng.Intn(stride) // short sets exercise the -1 padding
		perm := rng.Perm(nodes)
		reps := make([]cluster.NodeID, n)
		for i := range reps {
			reps[i] = cluster.NodeID(perm[i])
		}
		return reps
	}
	checkBlock := func(id BlockID) {
		if got, want := tab.blockSize(id), ref.sizes[id]; got != want {
			t.Fatalf("block %d size: table %d, reference %d", id, got, want)
		}
		if got, want := tab.fileOf[int(id)], ref.files[id]; got != want {
			t.Fatalf("block %d file: table %d, reference %d", id, got, want)
		}
		if got, want := tab.appendReplicas(id, nil), ref.reps[id]; !reflect.DeepEqual(got, want) {
			t.Fatalf("block %d replicas: table %v, reference %v", id, got, want)
		}
		if got, want := tab.replicaCount(id), len(ref.reps[id]); got != want {
			t.Fatalf("block %d replica count: table %d, reference %d", id, got, want)
		}
		for n := 0; n < nodes; n++ {
			if got, want := tab.holdsReplica(id, cluster.NodeID(n)), ref.holds(id, cluster.NodeID(n)); got != want {
				t.Fatalf("block %d holdsReplica(%d): table %v, reference %v", id, n, got, want)
			}
		}
	}

	for op := 0; op < ops; op++ {
		switch {
		case tab.len() == 0 || rng.Intn(3) == 0:
			if rng.Intn(8) == 0 {
				tab.grow(rng.Intn(64)) // pre-sizing must never change contents
			}
			size := sim.Bytes(1 + rng.Int63n(int64(maxBlockBytes)))
			file := int32(rng.Intn(50))
			reps := drawReps()
			got := tab.add(size, file, reps)
			want := ref.add(size, file, reps)
			if got != want {
				t.Fatalf("op %d: add returned id %d, reference %d", op, got, want)
			}
			checkBlock(got)
		default:
			id := BlockID(rng.Intn(tab.len()))
			from := cluster.NodeID(rng.Intn(nodes)) // often not a holder: rehome must be a no-op
			to := cluster.NodeID(rng.Intn(nodes))
			if got, want := tab.rehome(id, from, to), ref.rehome(id, from, to); got != want {
				t.Fatalf("op %d: rehome(%d, %d->%d): table %v, reference %v", op, id, from, to, got, want)
			}
			checkBlock(id)
		}
	}
	if tab.len() != len(ref.sizes) {
		t.Fatalf("table has %d blocks, reference %d", tab.len(), len(ref.sizes))
	}
}

// refRegistry is the map-based reference for the memory-replica
// registry — the "three layers of maps" the memNode/memPos columns and
// resident lists replaced.
type refRegistry struct {
	holder  map[BlockID]cluster.NodeID
	memUsed map[cluster.NodeID]sim.Bytes
}

func (r *refRegistry) register(id BlockID, size sim.Bytes, node cluster.NodeID) {
	if prev, ok := r.holder[id]; ok {
		if prev == node {
			return
		}
		r.memUsed[prev] -= size
	}
	r.holder[id] = node
	r.memUsed[node] += size
}

func (r *refRegistry) drop(id BlockID, size sim.Bytes, node cluster.NodeID) {
	if n, ok := r.holder[id]; !ok || n != node {
		return
	}
	delete(r.holder, id)
	r.memUsed[node] -= size
}

func (r *refRegistry) dropAll(node cluster.NodeID) {
	for id, n := range r.holder {
		if n == node {
			delete(r.holder, id)
		}
	}
	r.memUsed[node] = 0
}

func (r *refRegistry) residentSorted(node cluster.NodeID) []BlockID {
	var ids []BlockID
	for id, n := range r.holder {
		if n == node {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestRegistryDifferential drives random RegisterMem / DropMem /
// DropAllMem sequences (including the re-registration and wrong-node
// no-op edge cases) against the reference registry and compares the
// full observable registry state after every operation, with Fsck as a
// structural backstop at checkpoints.
func TestRegistryDifferential(t *testing.T) {
	t.Parallel()
	const nodes, ops = 8, 3000
	eng := sim.NewEngine(7)
	cl := cluster.New(eng, nodes, nil)
	fs := New(cl, DefaultConfig())
	if _, err := fs.CreateFile("in", 60*fs.Config().BlockSize); err != nil {
		t.Fatal(err)
	}
	ref := &refRegistry{
		holder:  make(map[BlockID]cluster.NodeID),
		memUsed: make(map[cluster.NodeID]sim.Bytes),
	}

	rng := rand.New(rand.NewSource(13))
	nBlocks := fs.NumBlocks()
	for op := 0; op < ops; op++ {
		id := BlockID(rng.Intn(nBlocks))
		switch rng.Intn(10) {
		case 0:
			node := cluster.NodeID(rng.Intn(nodes))
			fs.DropAllMem(node)
			ref.dropAll(node)
		case 1, 2, 3:
			node := cluster.NodeID(rng.Intn(nodes)) // wrong holder half the time
			fs.DropMem(id, node)
			ref.drop(id, fs.BlockSize(id), node)
		default:
			// Memory replicas come from local disk replicas; stay on the
			// block's replica set so invariant 5 holds.
			reps := fs.Replicas(id)
			node := reps[rng.Intn(len(reps))]
			fs.RegisterMem(id, node)
			ref.register(id, fs.BlockSize(id), node)
		}

		if got, want := fs.MemReplicaCount(), len(ref.holder); got != want {
			t.Fatalf("op %d: registry count %d, reference %d", op, got, want)
		}
		holder, ok := fs.MemReplica(id)
		refHolder, refOK := ref.holder[id]
		if ok != refOK || (ok && holder != refHolder) {
			t.Fatalf("op %d: block %d holder (%v,%v), reference (%v,%v)", op, id, holder, ok, refHolder, refOK)
		}
		if op%100 == 0 {
			var total sim.Bytes
			for n := 0; n < nodes; n++ {
				dn := fs.DataNode(cluster.NodeID(n))
				if got, want := dn.MemUsed(), ref.memUsed[cluster.NodeID(n)]; got != want {
					t.Fatalf("op %d: node %d memUsed %d, reference %d", op, n, got, want)
				}
				if got, want := dn.MemBlockIDs(), ref.residentSorted(cluster.NodeID(n)); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("op %d: node %d resident %v, reference %v", op, n, got, want)
				}
				total += dn.MemUsed()
			}
			if total != fs.TotalMemUsed() {
				t.Fatalf("op %d: TotalMemUsed %d, per-node sum %d", op, fs.TotalMemUsed(), total)
			}
			for _, err := range fs.Fsck() {
				t.Fatalf("op %d: fsck: %v", op, err)
			}
		}
	}
}

// rackCounts snapshots RackBlockCount for every rack.
func rackCounts(fs *FS) []int {
	out := make([]int, fs.Cluster().Racks())
	for r := range out {
		out[r] = fs.RackBlockCount(r)
	}
	return out
}

func totalReplicaSlots(fs *FS) int {
	n := 0
	for id := 0; id < fs.NumBlocks(); id++ {
		n += len(fs.Block(BlockID(id)).Replicas)
	}
	return n
}

// TestRackIndexAcrossNodeDeath: killing a node must not disturb the
// replica postings or the per-rack aggregation — the NameNode catalog
// still records the replicas; only the liveness view changes.
func TestRackIndexAcrossNodeDeath(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine(11)
	cl := cluster.New(eng, 12, nil)
	cl.ConfigureRacks(4, 0)
	fs := New(cl, DefaultConfig())
	if _, err := fs.CreateFile("in", 48*fs.Config().BlockSize); err != nil {
		t.Fatal(err)
	}
	before := rackCounts(fs)
	victim := cluster.NodeID(5)
	victimPosting := fs.BlocksOnNode(victim)
	if len(victimPosting) == 0 {
		t.Fatal("victim holds no replicas; pick another seed")
	}

	cl.KillNode(victim)

	if got := rackCounts(fs); !reflect.DeepEqual(got, before) {
		t.Errorf("rack counts changed across node death: %v -> %v", before, got)
	}
	if got := fs.BlocksOnNode(victim); !reflect.DeepEqual(got, victimPosting) {
		t.Errorf("dead node's posting changed: %d -> %d entries", len(victimPosting), len(got))
	}
	for _, id := range victimPosting {
		for _, r := range fs.Replicas(id) {
			if r == victim {
				t.Fatalf("block %d still offers dead node %v as a live replica", id, victim)
			}
		}
	}
	for _, err := range fs.Fsck() {
		t.Errorf("fsck after death: %v", err)
	}
}

// TestRackIndexAcrossDecommission: decommissioning re-homes the node's
// replicas; the postings index and rack aggregation must track every
// move exactly, and the total replica population must be conserved.
func TestRackIndexAcrossDecommission(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine(17)
	cl := cluster.New(eng, 12, nil)
	cl.ConfigureRacks(4, 0)
	fs := New(cl, DefaultConfig())
	if _, err := fs.CreateFile("in", 48*fs.Config().BlockSize); err != nil {
		t.Fatal(err)
	}
	slotsBefore := totalReplicaSlots(fs)
	victim := cluster.NodeID(2)
	posting := fs.BlocksOnNode(victim)

	moved, err := fs.DecommissionNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if moved+len(fs.BlocksOnNode(victim)) != len(posting) {
		t.Errorf("moved %d + kept %d != original posting %d",
			moved, len(fs.BlocksOnNode(victim)), len(posting))
	}
	if got := totalReplicaSlots(fs); got != slotsBefore {
		t.Errorf("replica slots not conserved: %d -> %d", slotsBefore, got)
	}
	sum := 0
	for _, c := range rackCounts(fs) {
		sum += c
	}
	if sum != slotsBefore {
		t.Errorf("rack counts sum to %d, want %d", sum, slotsBefore)
	}
	// Every re-homed block: gone from the victim's slots, present exactly
	// once in its new home's posting (fsck checks the index globally; this
	// checks the per-move delta).
	for _, id := range posting {
		found := 0
		for _, r := range fs.Block(id).Replicas {
			if r == victim {
				found++
			}
		}
		onPosting := 0
		for _, pid := range fs.BlocksOnNode(victim) {
			if pid == id {
				onPosting++
			}
		}
		if found != onPosting {
			t.Errorf("block %d: %d victim slots but %d posting entries", id, found, onPosting)
		}
	}
	// New placement never lands on the decommissioned node.
	if _, err := fs.CreateFile("after", 24*fs.Config().BlockSize); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.File("after")
	for _, id := range f.Blocks {
		for _, r := range fs.Block(id).Replicas {
			if r == victim {
				t.Fatalf("block %d placed on decommissioned node %v", id, victim)
			}
		}
	}
	for _, err := range fs.Fsck() {
		t.Errorf("fsck after decommission: %v", err)
	}
}
