//go:build !dyrs_canary

package dfs

// canaryLeakBufferAccounting deliberately re-introduces a known
// accounting bug — DropAllMem forgetting to zero the crashed node's
// buffered-byte counter — when the build tag dyrs_canary is set. The
// fuzz harness's oracle self-test (internal/harness, canary_test.go)
// builds with that tag and asserts the oracle battery detects the bug
// and shrinks a failing scenario to a minimal repro, proving the
// oracles are not vacuous. Normal builds compile the constant to false
// and the branch away entirely.
const canaryLeakBufferAccounting = false
