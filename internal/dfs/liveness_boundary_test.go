package dfs

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

// Boundary tests for the liveness tracker: the extreme configurations
// the fuzzing harness can generate must behave sanely, not just the
// HDFS-like defaults.

// TestLivenessMissedBeatsOne is the fastest-detection boundary: a
// single missed heartbeat marks the node dead, so the stale window is
// at most two intervals after the node's last heartbeat.
func TestLivenessMissedBeatsOne(t *testing.T) {
	t.Parallel()
	eng, cl, fs := newTestFS(t, 5, 70)
	fs.EnableHeartbeats(LivenessConfig{
		Interval:       time.Second,
		MissedBeats:    1,
		ConnectTimeout: 500 * time.Millisecond,
	})
	defer fs.DisableHeartbeats()
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	victim := b.Replicas[0]

	// Last heartbeat lands on the 5s tick; the node dies just after.
	eng.RunUntil(sim.Time(5500 * time.Millisecond))
	cl.KillNode(victim)

	offered := func() bool {
		for _, r := range fs.Replicas(b.ID) {
			if r == victim {
				return true
			}
		}
		return false
	}
	// Within the window (lastSeen=5s, deadline 5s+2*1s) the stale view
	// still offers the victim.
	eng.RunUntil(sim.Time(6900 * time.Millisecond))
	if !offered() {
		t.Fatal("victim dropped before the missed-beat window elapsed")
	}
	// One missed beat later it is gone — an order of magnitude faster
	// than the default three-beat config.
	eng.RunUntil(sim.Time(7100 * time.Millisecond))
	if offered() {
		t.Fatal("victim still offered after a missed beat with MissedBeats=1")
	}
}

// TestLivenessZeroConnectTimeout: a zero connect timeout means failing
// over from an unreachable node costs no extra latency — the read takes
// (approximately) what a healthy read takes.
func TestLivenessZeroConnectTimeout(t *testing.T) {
	t.Parallel()
	eng, cl, fs := newTestFS(t, 5, 71)
	fs.EnableHeartbeats(LivenessConfig{
		Interval:       3 * time.Second,
		MissedBeats:    3,
		ConnectTimeout: 0,
	})
	defer fs.DisableHeartbeats()
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	victim := b.Replicas[0]

	// Baseline: a healthy read at the victim.
	var healthy ReadResult
	if err := fs.ReadBlock(victim, b.ID, func(r ReadResult) { healthy = r }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(time.Minute))
	if healthy.Failed {
		t.Fatal("healthy read failed")
	}

	cl.KillNode(victim)
	var res ReadResult
	if err := fs.ReadBlock(victim, b.ID, func(r ReadResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(5 * time.Minute))
	if res.Failed {
		t.Fatal("read failed despite live replicas")
	}
	if res.Server == victim {
		t.Fatalf("read served by the dead node %v", res.Server)
	}
	if fs.FailedOvers() == 0 {
		t.Fatal("no failover counted")
	}
	// No timeout penalty: the failover read costs about one block read,
	// allowing slack for the remote hop it now takes.
	if d, h := res.Duration().Seconds(), healthy.Duration().Seconds(); d > h+1.0 {
		t.Errorf("zero-timeout failover read took %.2fs vs healthy %.2fs", d, h)
	}
}

// TestLivenessBlipShorterThanInterval: a node that dies and revives
// between two heartbeats is never marked dead — the NameNode's view
// glitches by at most one connect timeout per read during the blip, and
// the node serves again after reviving.
func TestLivenessBlipShorterThanInterval(t *testing.T) {
	t.Parallel()
	eng, cl, fs := newTestFS(t, 5, 72)
	fs.EnableHeartbeats(LivenessConfig{
		Interval:       10 * time.Second,
		MissedBeats:    3,
		ConnectTimeout: time.Second,
	})
	defer fs.DisableHeartbeats()
	f, _ := fs.CreateFile("in", 256*sim.MB)
	b := fs.Block(f.Blocks[0])
	victim := b.Replicas[0]
	// A memory replica pins reads to the victim, so the blip is actually
	// exercised rather than routed around.
	fs.RegisterMem(b.ID, victim)

	offered := func() bool {
		for _, r := range fs.Replicas(b.ID) {
			if r == victim {
				return true
			}
		}
		return false
	}

	// Down from 12s to 15s: strictly inside the 10s..20s tick gap.
	eng.RunUntil(sim.Time(12 * time.Second))
	cl.KillNode(victim)
	var during ReadResult
	if err := fs.ReadBlock((victim+1)%5, b.ID, func(r ReadResult) { during = r }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(15 * time.Second))
	cl.ReviveNode(victim)

	if !offered() {
		t.Fatal("victim dropped although no heartbeat was ever missed")
	}
	eng.RunUntil(sim.Time(60 * time.Second))
	if during.Failed {
		t.Fatal("read during the blip failed")
	}
	if during.Server == victim {
		t.Error("read during the blip served by the down node")
	}
	if fs.FailedOvers() == 0 {
		t.Error("blip read did not fail over")
	}
	if !offered() {
		t.Fatal("victim not offered after reviving")
	}
	// After revival the memory replica serves again.
	var after ReadResult
	if err := fs.ReadBlock((victim+1)%5, b.ID, func(r ReadResult) { after = r }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * time.Minute))
	if after.Failed || !after.Source.FromMemory() {
		t.Errorf("post-blip read not served from memory: %+v", after)
	}
}
