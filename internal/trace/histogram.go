// Streaming log2 histograms: the fixed-memory metric type behind read
// latency, migration lead-time/margin, transfer size and queue depth
// distributions at datacenter scale. A histogram is a fixed array of 64
// power-of-two buckets aggregated online — no span or sample is ever
// retained — so observing ten million reads costs the same memory as
// observing ten. Bucket boundaries are value-independent (pure log2),
// which is what makes per-shard histograms mergeable: Merge is a plain
// element-wise sum and equals the histogram a single whole-run observer
// would have produced (asserted by a differential test across shard
// counts).
package trace

import (
	"math/bits"
	"sort"
)

// HistBuckets is the fixed bucket count of every histogram.
//
// Bucket 0 holds non-positive observations ("zero bucket"); bucket i
// (1 <= i < HistBuckets-1) holds v with 2^(i-1) <= v < 2^i; the last
// bucket is the overflow bucket, holding everything at or above
// 2^(HistBuckets-2). With int64 observations the overflow bucket is
// reachable only by values >= 2^62 — about 146 years in nanoseconds —
// so in practice it stays empty and exists to make the scheme total.
const HistBuckets = 64

// Hist is a fixed-bucket log2 streaming histogram. The zero value is
// ready to use; a nil *Hist is valid and ignores observations, so call
// sites cache a handle from Tracer.Hist once and observe
// unconditionally, exactly like the nil-tracer pattern.
//
// Histograms are metrics, not traces: they are aggregated from every
// observation and are never subject to span sampling.
type Hist struct {
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [HistBuckets]uint64
}

// histBucket maps an observation to its bucket index.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i > HistBuckets-1 {
		i = HistBuckets - 1
	}
	return i
}

// HistBucketUpper reports the inclusive upper bound of bucket i:
// 0 for the zero bucket, 2^i - 1 for the middle buckets, and
// MaxInt64 for the overflow bucket.
func HistBucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= HistBuckets-1:
		return int64(^uint64(0) >> 1) // MaxInt64
	default:
		return int64(1)<<uint(i) - 1
	}
}

// Observe folds one value into the histogram. Nil-safe no-op.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	h.buckets[histBucket(v)]++
}

// Merge folds another histogram into this one element-wise. Because the
// bucket boundaries are value-independent, merging per-shard histograms
// is exactly equivalent to one observer having seen every value.
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count reports the number of observations (0 for nil).
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the sum of all observations (0 for nil).
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min reports the smallest observation; meaningful only when Count > 0.
func (h *Hist) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max reports the largest observation; meaningful only when Count > 0.
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean reports the arithmetic mean, or 0 with no observations.
func (h *Hist) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket reports the raw count of bucket i.
func (h *Hist) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i]
}

// maxBucket reports the highest non-empty bucket index, or -1 when the
// histogram is empty. Exports use it to trim trailing empty buckets.
func (h *Hist) maxBucket() int {
	if h == nil {
		return -1
	}
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.buckets[i] != 0 {
			return i
		}
	}
	return -1
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly inside the selected bucket — the
// standard streaming-histogram estimate, exact to within one bucket
// width (a factor of two).
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i := 0; i < HistBuckets; i++ {
		n := float64(h.buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(HistBucketUpper(i))
			if hi > float64(h.max) {
				hi = float64(h.max)
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / n
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(h.max)
}

// --- tracer histogram registry ---

// Hist returns (creating on first use) the named histogram handle. The
// handle from a nil tracer is nil, and a nil *Hist ignores Observe, so
// components cache the handle once at construction and observe
// unconditionally. Histograms with zero observations are omitted from
// exports, so registering a handle that never observes is free.
func (t *Tracer) Hist(name string) *Hist {
	if t == nil {
		return nil
	}
	h := t.hists[name]
	if h == nil {
		h = &Hist{}
		t.hists[name] = h
	}
	return h
}

// HistNames reports the registered histogram names with at least one
// observation, sorted — the deterministic iteration order every export
// uses.
func (t *Tracer) HistNames() []string {
	if t == nil {
		return nil
	}
	names := make([]string, 0, len(t.hists))
	for name, h := range t.hists {
		if h.count > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
