package trace

import (
	"strings"
	"testing"

	"dyrs/internal/sim"
)

func TestFlightRingRetainsTail(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.SetFlightRecorder(8)
	for i := 0; i < 20; i++ {
		i := i
		eng.Schedule(sim.Duration(i+1)*100, func() {
			tr.Instant("read", "hit", i)
		})
	}
	eng.Run()

	evs := tr.FlightEvents()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring capacity 8", len(evs))
	}
	if tr.FlightTotal() != 20 {
		t.Errorf("total = %d, want 20", tr.FlightTotal())
	}
	// Oldest-first unroll: the retained tail is instants 12..19.
	for i, ev := range evs {
		if ev.Node != 12+i {
			t.Errorf("event %d from node %d, want %d (oldest-first tail)", i, ev.Node, 12+i)
		}
	}
}

func TestFlightRingUnderCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.SetFlightRecorder(64)
	eng.Schedule(100, func() {
		sp := tr.Begin("migration", "migrate", 3)
		sp.End()
	})
	eng.Run()
	evs := tr.FlightEvents()
	if len(evs) != 2 {
		t.Fatalf("retained %d events, want begin+end", len(evs))
	}
	if evs[0].Kind != FlightSpanBegin || evs[1].Kind != FlightSpanEnd {
		t.Errorf("kinds = %v/%v, want begin/end", evs[0].Kind, evs[1].Kind)
	}
	if evs[0].Span == 0 || evs[0].Span != evs[1].Span {
		t.Errorf("span ids = %d/%d, want matching non-zero", evs[0].Span, evs[1].Span)
	}
}

func TestFlightDisarm(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.SetFlightRecorder(4)
	tr.SetFlightRecorder(0)
	tr.Instant("read", "hit", 1)
	if tr.FlightEvents() != nil || tr.FlightTotal() != 0 {
		t.Error("disarmed recorder retained events")
	}
	var nilTr *Tracer
	nilTr.SetFlightRecorder(4) // must not panic
	if nilTr.FlightEvents() != nil {
		t.Error("nil tracer returned flight events")
	}
}

func TestWriteFlightDump(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.SetFlightRecorder(8)
	eng.Schedule(250, func() {
		sp := tr.Begin("migration", "migrate", 5)
		tr.Instant("read", "hit", 2)
		sp.End()
	})
	eng.Run()

	var sb strings.Builder
	if err := WriteFlightDump(&sb, tr.FlightEvents()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"begin", "end", "instant", "migration/migrate", "read/hit", "node=5", "span="} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
