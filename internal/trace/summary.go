// Trace-derived summary statistics: the causal numbers the paper's
// evaluation reasons about (achieved lead-time, migration margin) are
// recomputed here purely from recorded spans, demonstrating that the
// trace alone carries the full migration/read timeline.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"dyrs/internal/metrics"
)

// Summary aggregates a run's trace into the distributions the paper's
// figures are built from.
type Summary struct {
	Spans    int
	Instants int

	MigrationsRequested int64
	MigrationsCompleted int64
	MigrationsAborted   int64
	MigrationsDropped   int64
	MigrationBytes      int64
	Evictions           int64
	Throttles           int64

	// ReadBytes maps read source ("disk-local", "disk-remote",
	// "mem-local", "mem-remote") to bytes served from it.
	ReadBytes map[string]int64

	// LeadTime: per pinned migration whose block was later read, seconds
	// from the Migrate request to the job's first read of that block —
	// the lead-time Algorithm 1 actually achieved.
	LeadTime *metrics.Sample
	// Margin: seconds from migration pin to that first read. Positive
	// means the block was in memory before the job touched it.
	Margin *metrics.Sample
}

// Summarize recomputes summary statistics from the recorded spans and
// counters. Lead-time and margin are derived from span timestamps
// alone: migration spans carry the request ("begin"), pin ("end",
// outcome=pinned) and block attrs; read spans carry the block attr.
func (t *Tracer) Summarize() *Summary {
	if t == nil {
		return nil
	}
	s := &Summary{
		Spans:               len(t.spans),
		Instants:            len(t.instants),
		MigrationsRequested: t.Counter("migration.requested"),
		MigrationsCompleted: t.Counter("migration.completed"),
		MigrationsAborted:   t.Counter("migration.aborted"),
		MigrationsDropped:   t.Counter("migration.dropped"),
		MigrationBytes:      t.Counter("migration.bytes"),
		Evictions:           t.Counter("evictions"),
		Throttles:           t.Counter("migration.throttle"),
		ReadBytes:           map[string]int64{},
		LeadTime:            metrics.NewSample(),
		Margin:              metrics.NewSample(),
	}
	for _, src := range []string{"disk-local", "disk-remote", "mem-local", "mem-remote"} {
		if v := t.Counter("read.bytes." + src); v != 0 {
			s.ReadBytes[src] = v
		}
	}

	// First read instant per block, from read spans.
	firstRead := map[string]int64{}
	for i := range t.spans {
		sp := &t.spans[i]
		if sp.Cat != "read" {
			continue
		}
		block := sp.Attr("block")
		if block == "" {
			continue
		}
		if at, ok := firstRead[block]; !ok || int64(sp.Begin) < at {
			firstRead[block] = int64(sp.Begin)
		}
	}
	for i := range t.spans {
		sp := &t.spans[i]
		if sp.Cat != "migration" || sp.Name != "migrate" || sp.Open() {
			continue
		}
		if sp.Attr("outcome") != "pinned" {
			continue
		}
		read, ok := firstRead[sp.Attr("block")]
		if !ok {
			continue
		}
		const nsPerSec = 1e9
		s.LeadTime.Add(float64(read-int64(sp.Begin)) / nsPerSec)
		s.Margin.Add(float64(read-int64(sp.End)) / nsPerSec)
	}
	return s
}

// String renders the summary as an indented multi-line block.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  spans %d, instants %d\n", s.Spans, s.Instants)
	fmt.Fprintf(&b, "  migrations: requested %d, completed %d, aborted %d, dropped %d, evictions %d, throttle events %d\n",
		s.MigrationsRequested, s.MigrationsCompleted, s.MigrationsAborted,
		s.MigrationsDropped, s.Evictions, s.Throttles)
	srcs := make([]string, 0, len(s.ReadBytes))
	for src := range s.ReadBytes {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	parts := make([]string, len(srcs))
	for i, src := range srcs {
		parts[i] = fmt.Sprintf("%s %.2fGB", src, float64(s.ReadBytes[src])/(1<<30))
	}
	if len(parts) > 0 {
		fmt.Fprintf(&b, "  read bytes by path: %s\n", strings.Join(parts, ", "))
	}
	if n := s.LeadTime.Len(); n > 0 {
		fmt.Fprintf(&b, "  achieved lead-time (request->first read, n=%d): p50 %.1fs, p90 %.1fs, mean %.1fs\n",
			n, s.LeadTime.Percentile(50), s.LeadTime.Percentile(90), s.LeadTime.Mean())
		fmt.Fprintf(&b, "  migration margin (pin->first read, n=%d): p50 %.1fs, min %.1fs\n",
			n, s.Margin.Percentile(50), s.Margin.Min())
	}
	return strings.TrimRight(b.String(), "\n")
}
