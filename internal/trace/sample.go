// Deterministic trace sampling: the mechanism that keeps tracing usable
// at the 90M-event datacenter scales without giving up reproducibility.
//
// The sampling decision for a root span (or instant) is a pure function
// of (seed, category, node, per-(category,node) ordinal) hashed with
// FNV-1a — no virtual time, no span IDs, no RNG draw. Span IDs are
// assigned per tracer and shift with shard layout; virtual time shifts
// with model edits; an RNG draw would perturb the model's stream. The
// chosen key does none of that, and it is invariant across shard and
// worker counts: every node is homed on exactly one shard, its events
// execute in a deterministic order at any layout, so the k-th
// (category, node) record is the same record in every configuration.
// A 1-in-N sampled trace is therefore byte-identical across shards=1,
// 2, 4 and any worker count — asserted by CI.
//
// Sampling drops whole trees: a sampled-out Begin returns the zero
// SpanRef, and children/annotations of the zero ref are no-ops, so a
// dropped migration span drops its transfer child with it. Counters,
// flow accounting and histograms are never sampled — they stay exact.
package trace

// sampleState is the tracer's sampling configuration plus the
// per-(category,node) ordinal counters the decision hash consumes.
type sampleState struct {
	n    uint64 // keep 1 in n root records; n <= 1 keeps everything
	seed uint64
	ord  map[sampleKey]uint64
	out  uint64 // records dropped by sampling
}

type sampleKey struct {
	cat  string
	node int
}

// SetSampling configures 1-in-n deterministic sampling of root spans
// and instants. n <= 1 disables sampling (everything is recorded). Call
// before the run records anything; the seed makes distinct runs sample
// distinct (but per-run stable) record subsets.
func (t *Tracer) SetSampling(n int, seed uint64) {
	if t == nil {
		return
	}
	if n <= 1 {
		t.sample = nil
		return
	}
	t.sample = &sampleState{n: uint64(n), seed: seed, ord: make(map[sampleKey]uint64)}
}

// SampleN reports the configured sampling rate (1 when sampling is off
// or the tracer is nil).
func (t *Tracer) SampleN() int {
	if t == nil || t.sample == nil {
		return 1
	}
	return int(t.sample.n)
}

// SampledOut reports how many root records sampling dropped.
func (t *Tracer) SampledOut() uint64 {
	if t == nil || t.sample == nil {
		return 0
	}
	return t.sample.out
}

// fnv1a64 constants (the same family the engine digest uses).
const (
	sampleOffset = 14695981039346656037
	samplePrime  = 1099511628211
)

func sampleMixByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= samplePrime
	return h
}

func sampleMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = sampleMixByte(h, byte(v))
		v >>= 8
	}
	return h
}

// keep decides whether the next (cat, node) root record is sampled in.
// It advances the ordinal either way, so the decision sequence for a
// key is a fixed function of the key's record order alone.
func (s *sampleState) keep(cat string, node int) bool {
	k := sampleKey{cat: cat, node: node}
	ord := s.ord[k]
	s.ord[k] = ord + 1
	h := sampleMix64(sampleOffset, s.seed)
	for i := 0; i < len(cat); i++ {
		h = sampleMixByte(h, cat[i])
	}
	h = sampleMix64(h, uint64(int64(node)))
	h = sampleMix64(h, ord)
	if h%s.n == 0 {
		return true
	}
	s.out++
	return false
}
