// Package trace is the deterministic observability layer of the
// simulator: a virtual-time tracer recording spans (begin/end intervals
// with node and key=value attributes), instant events, and a counter /
// gauge registry, threaded through the DFS, migration and compute
// layers so one run yields a complete causal timeline — when a
// migration was requested vs. when its job's first read landed, which
// reads were redirected to memory, where rate control throttled.
//
// Everything is keyed to sim.Time, so traces are exactly reproducible:
// the same seed produces a byte-identical canonical JSON export.
//
// A nil *Tracer is valid and records nothing. Every method has a
// nil-receiver fast path, so "tracing disabled" costs a nil check and
// no allocations; components cache the run's tracer once at
// construction via FromEngine and call it unconditionally.
package trace

import (
	"math"
	"strconv"
	"strings"

	"dyrs/internal/sim"
)

// Attr is one key=value span/instant attribute. Numeric values are
// stored raw and formatted lazily at export: under sampling most
// records are dropped at Begin, and eager strconv on the dropped path
// was the dominant allocation cost of tracing a large run. The
// formatting itself (strconv, shortest round-trip floats) is a pure
// function of the value, so the canonical encoding stays deterministic.
type Attr struct {
	Key  string
	str  string
	num  int64 // int value, or float64 bits
	kind uint8
}

const (
	attrStr uint8 = iota
	attrInt
	attrFloat
)

// Value formats the attribute value.
func (a Attr) Value() string {
	switch a.kind {
	case attrInt:
		return strconv.FormatInt(a.num, 10)
	case attrFloat:
		return strconv.FormatFloat(math.Float64frombits(uint64(a.num)), 'g', -1, 64)
	}
	return a.str
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, num: v, kind: attrInt} }

// Float builds a float attribute (shortest round-trip formatting,
// deterministic for identical values).
func Float(k string, v float64) Attr {
	return Attr{Key: k, num: int64(math.Float64bits(v)), kind: attrFloat}
}

// Dur builds a duration attribute in integer nanoseconds.
func Dur(k string, d sim.Duration) Attr { return Int(k, int64(d)) }

// NodeMaster is the Node value for master/cluster-scoped events that
// belong to no single worker.
const NodeMaster = -1

// Span is one begin/end interval in virtual time. End is -1 while the
// span is open.
type Span struct {
	ID     int    // 1-based, assigned in Begin order
	Parent int    // parent span ID, 0 = root
	Cat    string // taxonomy bucket: "migration", "read", "task", "job"
	Name   string
	Node   int // worker node index, or NodeMaster
	Begin  sim.Time
	End    sim.Time // -1 while open
	Attrs  []Attr
}

// Open reports whether the span has not ended.
func (s *Span) Open() bool { return s.End < 0 }

// copyAttrs detaches a caller's variadic attribute slice before it is
// retained in a record, so the variadic allocation can stay on the
// caller's stack — crucial for the sampled-out path, which drops the
// record before ever reaching here.
func copyAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	return append([]Attr(nil), attrs...)
}

// Attr returns the value of the last attribute with the given key, or
// "" when absent.
func (s *Span) Attr(key string) string {
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i].Value()
		}
	}
	return ""
}

// Instant is a point event in virtual time.
type Instant struct {
	Cat   string
	Name  string
	Node  int
	At    sim.Time
	Attrs []Attr
}

// flowCounters caches the per-resource counter cells the FlowSink hot
// path increments, so steady-state flow tracing allocates nothing.
type flowCounters struct {
	started, completed, cancelled, bytes *int64
}

// Tracer records one run's trace. Construct with New, which attaches
// the tracer to the engine; retrieve anywhere with FromEngine.
type Tracer struct {
	eng      *sim.Engine
	spans    []Span
	instants []Instant
	counters map[string]*int64
	res      map[*sim.Resource]*flowCounters
	hists    map[string]*Hist
	sample   *sampleState // nil: record every root span/instant
	flight   *flightRing  // nil: flight recorder disarmed
	rackOf   []int        // node -> rack for the capped Perfetto export; nil = unknown
}

// New creates a tracer and attaches it to the engine — both as the
// engine's opaque tracer slot (so components find it via FromEngine)
// and as the flow sink observing resource-level transfer lifecycle.
// Attach before building the cluster/DFS/framework stack: components
// capture the tracer at construction.
func New(eng *sim.Engine) *Tracer {
	t := &Tracer{
		eng:      eng,
		counters: make(map[string]*int64),
		res:      make(map[*sim.Resource]*flowCounters),
		hists:    make(map[string]*Hist),
	}
	eng.SetTracer(t)
	eng.SetFlowSink(t)
	return t
}

// FromEngine returns the tracer attached to the engine, or nil when
// the run is untraced. The nil result is directly usable: all Tracer
// methods are nil-safe no-ops.
func FromEngine(eng *sim.Engine) *Tracer {
	t, _ := eng.Tracer().(*Tracer)
	return t
}

// Enabled reports whether the tracer actually records. Call sites use
// it to skip attribute construction on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

// Now reports the tracer's current virtual time.
func (t *Tracer) Now() sim.Time {
	if t == nil {
		return 0
	}
	return t.eng.Now()
}

// SpanRef is a cheap handle on a recorded span. The zero SpanRef (from
// a nil tracer) is valid; End/Annotate/Child on it are no-ops.
type SpanRef struct {
	t   *Tracer
	idx int
}

// Begin opens a root span. Under 1-in-N sampling (SetSampling) the
// whole tree is kept or dropped here: a sampled-out Begin returns the
// zero SpanRef and every child/annotation on it no-ops.
func (t *Tracer) Begin(cat, name string, node int, attrs ...Attr) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	if t.sample != nil && !t.sample.keep(cat, node) {
		return SpanRef{}
	}
	return t.begin(cat, name, node, attrs)
}

// begin records a span unconditionally — the post-sampling-decision
// path shared by root Begin and Child (children follow their root's
// sampling fate, never their own).
func (t *Tracer) begin(cat, name string, node int, attrs []Attr) SpanRef {
	id := len(t.spans) + 1
	t.spans = append(t.spans, Span{
		ID: id, Cat: cat, Name: name, Node: node,
		Begin: t.eng.Now(), End: -1, Attrs: copyAttrs(attrs),
	})
	if t.flight != nil {
		t.flight.record(FlightEvent{At: t.eng.Now(), Kind: FlightSpanBegin,
			Cat: cat, Name: name, Node: node, Span: id})
	}
	return SpanRef{t: t, idx: id - 1}
}

// Instant records a point event, subject to the same deterministic
// per-(category, node) sampling as root spans.
func (t *Tracer) Instant(cat, name string, node int, attrs ...Attr) {
	if t == nil {
		return
	}
	if t.sample != nil && !t.sample.keep(cat, node) {
		return
	}
	t.instants = append(t.instants, Instant{
		Cat: cat, Name: name, Node: node, At: t.eng.Now(), Attrs: copyAttrs(attrs),
	})
	if t.flight != nil {
		t.flight.record(FlightEvent{At: t.eng.Now(), Kind: FlightInstant,
			Cat: cat, Name: name, Node: node})
	}
}

// SetTopology records the node -> rack map the capped Perfetto export
// aggregates processes by. Unset (or nil) keeps the one-process-per-
// node layout at any scale.
func (t *Tracer) SetTopology(rackOf []int) {
	if t == nil {
		return
	}
	t.rackOf = rackOf
}

// Child opens a span parented under s. A child may live on a different
// node track than its parent (a master-side migration span parents the
// slave-side transfer span).
func (s SpanRef) Child(cat, name string, node int, attrs ...Attr) SpanRef {
	if s.t == nil {
		return SpanRef{}
	}
	c := s.t.begin(cat, name, node, attrs)
	s.t.spans[c.idx].Parent = s.t.spans[s.idx].ID
	return c
}

// Annotate appends attributes to the span (allowed after End).
func (s SpanRef) Annotate(attrs ...Attr) {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.idx]
	sp.Attrs = append(sp.Attrs, attrs...)
}

// End closes the span at the current virtual instant, appending any
// final attributes. Ending an already-ended span is a no-op (the first
// outcome wins), so teardown paths may End defensively.
func (s SpanRef) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.idx]
	if sp.End >= 0 {
		return
	}
	sp.End = s.t.eng.Now()
	sp.Attrs = append(sp.Attrs, attrs...)
	if s.t.flight != nil {
		s.t.flight.record(FlightEvent{At: sp.End, Kind: FlightSpanEnd,
			Cat: sp.Cat, Name: sp.Name, Node: sp.Node, Span: sp.ID})
	}
}

// Begin reports the span's begin instant, or 0 for the zero SpanRef.
func (s SpanRef) Begin() sim.Time {
	if s.t == nil {
		return 0
	}
	return s.t.spans[s.idx].Begin
}

// ID reports the span's 1-based ID, or 0 for the zero SpanRef.
func (s SpanRef) ID() int {
	if s.t == nil {
		return 0
	}
	return s.t.spans[s.idx].ID
}

// Spans returns the recorded spans in begin order. The slice is the
// tracer's own storage; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Instants returns the recorded instants in record order (tracer-owned
// storage; do not mutate).
func (t *Tracer) Instants() []Instant {
	if t == nil {
		return nil
	}
	return t.instants
}

// --- counter / gauge registry ---

func (t *Tracer) cell(name string) *int64 {
	p := t.counters[name]
	if p == nil {
		p = new(int64)
		t.counters[name] = p
	}
	return p
}

// Add increments the named counter by delta.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil {
		return
	}
	*t.cell(name) += delta
}

// Inc increments the named counter by one.
func (t *Tracer) Inc(name string) { t.Add(name, 1) }

// Set overwrites the named cell — gauge semantics.
func (t *Tracer) Set(name string, v int64) {
	if t == nil {
		return
	}
	*t.cell(name) = v
}

// Counter reports the named counter's value (0 when absent or the
// tracer is nil).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	if p := t.counters[name]; p != nil {
		return *p
	}
	return 0
}

// Counters returns a snapshot copy of the whole registry.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	out := make(map[string]int64, len(t.counters))
	for k, p := range t.counters {
		out[k] = *p
	}
	return out
}

// --- sim.FlowSink: resource-level flow accounting ---

// resourceKind maps "disk:node3" to "disk"; names without a colon
// (e.g. "core-switch") are their own kind.
func resourceKind(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}

func (t *Tracer) flowCells(r *sim.Resource) *flowCounters {
	fc := t.res[r]
	if fc == nil {
		kind := resourceKind(r.Name())
		fc = &flowCounters{
			started:   t.cell("flow.started." + kind),
			completed: t.cell("flow.completed." + kind),
			cancelled: t.cell("flow.cancelled." + kind),
			bytes:     t.cell("flow.bytes." + kind),
		}
		t.res[r] = fc
	}
	return fc
}

// FlowStarted implements sim.FlowSink: it counts flow admissions per
// resource kind. Only counters are kept — per-flow spans would dwarf
// the semantic spans recorded by the DFS/migration/compute layers.
func (t *Tracer) FlowStarted(r *sim.Resource, f *sim.Flow) {
	*t.flowCells(r).started++
}

// FlowEnded implements sim.FlowSink.
func (t *Tracer) FlowEnded(r *sim.Resource, f *sim.Flow, completed bool) {
	fc := t.flowCells(r)
	if completed {
		*fc.completed++
		*fc.bytes += f.Size()
	} else {
		*fc.cancelled++
	}
}

var _ sim.FlowSink = (*Tracer)(nil)
