// Merged canonical export for partitioned models: a genuinely sharded
// run (scaleshard) records one Tracer per data shard, and this file
// folds them into a single canonical document whose bytes are
// independent of how many shards the model was partitioned into.
//
// The invariance argument mirrors the sampler's: every node is homed on
// exactly one shard, and its records appear in that shard's tracer in a
// deterministic order at any layout. Sorting all records by
// (virtual time, node, per-(shard,node) record ordinal) therefore
// produces the same sequence whether the nodes were spread over 2 data
// shards or 8 — and counters/histograms merge commutatively. Span IDs
// are reassigned in merged order and parent links remapped, so the
// document is self-consistent like a single-tracer export.
package trace

import (
	"encoding/json"
	"io"
	"sort"

	"dyrs/internal/sim"
)

// mergedRec orders one span or instant across tracers.
type mergedRec struct {
	at   sim.Time
	node int
	ord  uint64 // per-(tracer, node) record ordinal
	tr   int    // tracer index — tiebreak of last resort only
	idx  int    // index into the tracer's span/instant slice
}

func mergedLess(a, b mergedRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.node != b.node {
		return a.node < b.node
	}
	if a.ord != b.ord {
		return a.ord < b.ord
	}
	return a.tr < b.tr
}

// WriteMergedJSON writes the canonical trace document merged from the
// given tracers (nil entries are skipped). NowNS is the maximum virtual
// clock across the tracers' engines.
func WriteMergedJSON(w io.Writer, tracers ...*Tracer) error {
	live := make([]*Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}

	doc := traceDoc{Schema: Schema, Counters: map[string]int64{}}
	var now sim.Time
	merged := make(map[string]*Hist)
	var spanRecs, instRecs []mergedRec
	for ti, t := range live {
		if t.eng.Now() > now {
			now = t.eng.Now()
		}
		if n := t.SampleN(); n > doc.SampleN && n > 1 {
			doc.SampleN = n
		}
		doc.SampledOut += t.SampledOut()
		for name, p := range t.counters {
			doc.Counters[name] += *p
		}
		for name, h := range t.hists {
			m := merged[name]
			if m == nil {
				m = &Hist{}
				merged[name] = m
			}
			m.Merge(h)
		}
		ord := map[int]uint64{}
		for i := range t.spans {
			s := &t.spans[i]
			spanRecs = append(spanRecs, mergedRec{at: s.Begin, node: s.Node, ord: ord[s.Node], tr: ti, idx: i})
			ord[s.Node]++
		}
		ord = map[int]uint64{}
		for i := range t.instants {
			in := &t.instants[i]
			instRecs = append(instRecs, mergedRec{at: in.At, node: in.Node, ord: ord[in.Node], tr: ti, idx: i})
			ord[in.Node]++
		}
	}
	doc.NowNS = int64(now)
	for name, h := range merged {
		if hd, ok := histDoc(h); ok {
			if doc.Hists == nil {
				doc.Hists = make(map[string]histJSON)
			}
			doc.Hists[name] = hd
		}
	}

	sort.Slice(spanRecs, func(i, j int) bool { return mergedLess(spanRecs[i], spanRecs[j]) })
	sort.Slice(instRecs, func(i, j int) bool { return mergedLess(instRecs[i], instRecs[j]) })

	// Reassign span IDs in merged order; remap parents per tracer.
	newID := make([]map[int]int, len(live))
	for i := range newID {
		newID[i] = map[int]int{}
	}
	for i, r := range spanRecs {
		newID[r.tr][live[r.tr].spans[r.idx].ID] = i + 1
	}
	doc.Spans = make([]spanJSON, len(spanRecs))
	for i, r := range spanRecs {
		s := live[r.tr].spans[r.idx]
		parent := 0
		if s.Parent != 0 {
			parent = newID[r.tr][s.Parent]
		}
		doc.Spans[i] = spanJSON{
			ID: i + 1, Parent: parent, Cat: s.Cat, Name: s.Name, Node: s.Node,
			BeginNS: int64(s.Begin), EndNS: int64(s.End), Attrs: attrMap(s.Attrs),
		}
	}
	doc.Instants = make([]instantJSON, len(instRecs))
	for i, r := range instRecs {
		in := live[r.tr].instants[r.idx]
		doc.Instants[i] = instantJSON{
			Cat: in.Cat, Name: in.Name, Node: in.Node,
			AtNS: int64(in.At), Attrs: attrMap(in.Attrs),
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteMergedOpenMetrics writes the OpenMetrics exposition of the
// merged counter and histogram registries of the given tracers.
func WriteMergedOpenMetrics(w io.Writer, tracers ...*Tracer) error {
	agg := &Tracer{counters: map[string]*int64{}, hists: map[string]*Hist{}}
	var now sim.Time
	var eng *sim.Engine
	var sampleN uint64
	var sampledOut uint64
	for _, t := range tracers {
		if t == nil {
			continue
		}
		if t.eng.Now() >= now {
			now = t.eng.Now()
			eng = t.eng
		}
		if t.sample != nil {
			sampleN = t.sample.n
			sampledOut += t.sample.out
		}
		for name, p := range t.counters {
			cell := agg.counters[name]
			if cell == nil {
				cell = new(int64)
				agg.counters[name] = cell
			}
			*cell += *p
		}
		for name, h := range t.hists {
			agg.Hist(name).Merge(h)
		}
	}
	if eng == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	agg.eng = eng
	if sampleN > 1 {
		agg.sample = &sampleState{n: sampleN, out: sampledOut}
	}
	return agg.WriteOpenMetrics(w)
}
