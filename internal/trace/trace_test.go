package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dyrs/internal/sim"
)

func advance(eng *sim.Engine, d sim.Duration) {
	eng.Schedule(d, func() {})
	eng.RunFor(d)
}

func TestSpanLifecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	if FromEngine(eng) != tr {
		t.Fatal("FromEngine did not return the attached tracer")
	}

	root := tr.Begin("migration", "migrate", NodeMaster, Int("block", 7))
	advance(eng, time.Second)
	child := root.Child("migration", "transfer", 3, Str("k", "v"))
	advance(eng, time.Second)
	child.End(Str("outcome", "completed"))
	root.Annotate(Int("slave", 3))
	root.End(Str("outcome", "pinned"))
	root.End(Str("outcome", "dropped")) // first outcome wins

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.ID != 1 || c.ID != 2 || c.Parent != r.ID || r.Parent != 0 {
		t.Errorf("bad IDs/parentage: root %+v child %+v", r, c)
	}
	if r.Begin != 0 || c.Begin != sim.Time(time.Second) || c.End != sim.Time(2*time.Second) {
		t.Errorf("bad timestamps: root %v-%v child %v-%v", r.Begin, r.End, c.Begin, c.End)
	}
	if r.Open() || c.Open() {
		t.Error("spans should be closed")
	}
	if got := r.Attr("outcome"); got != "pinned" {
		t.Errorf("outcome = %q, want pinned (first End wins)", got)
	}
	if got := r.Attr("slave"); got != "3" {
		t.Errorf("slave = %q, want 3", got)
	}
	if got := r.Attr("missing"); got != "" {
		t.Errorf("missing attr = %q, want empty", got)
	}
}

func TestAttrLastWins(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	sp := tr.Begin("x", "y", 0, Str("k", "a"))
	sp.Annotate(Str("k", "b"))
	if got := tr.Spans()[0].Attr("k"); got != "b" {
		t.Errorf("Attr = %q, want last-written b", got)
	}
	m := attrMap(tr.Spans()[0].Attrs)
	if m["k"] != "b" {
		t.Errorf("attrMap = %v, want k=b", m)
	}
	if attrMap(nil) != nil {
		t.Error("attrMap(nil) should be nil")
	}
}

func TestAttrConstructors(t *testing.T) {
	for _, tc := range []struct {
		attr Attr
		want string
	}{
		{Str("s", "v"), "v"},
		{Int("i", -42), "-42"},
		{Float("f", 0.25), "0.25"},
		{Dur("d", 1500*time.Millisecond), "1500000000"},
	} {
		if tc.attr.Value() != tc.want {
			t.Errorf("%s = %q, want %q", tc.attr.Key, tc.attr.Value(), tc.want)
		}
	}
}

func TestCounters(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.Inc("a")
	tr.Add("a", 4)
	tr.Set("b", 9)
	tr.Set("b", 3)
	if got := tr.Counter("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := tr.Counter("b"); got != 3 {
		t.Errorf("b = %d, want 3 (gauge semantics)", got)
	}
	if got := tr.Counter("absent"); got != 0 {
		t.Errorf("absent = %d, want 0", got)
	}
	snap := tr.Counters()
	tr.Inc("a")
	if snap["a"] != 5 {
		t.Error("Counters must snapshot, not alias")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("a", "b", 0, Str("k", "v"))
	sp.Annotate(Str("k", "v"))
	sp.End()
	_ = sp.Child("a", "b", 0)
	_ = sp.ID()
	_ = sp.Begin()
	tr.Instant("a", "b", 0)
	tr.Inc("x")
	tr.Add("x", 2)
	tr.Set("x", 2)
	if tr.Counter("x") != 0 || tr.Counters() != nil || tr.Spans() != nil || tr.Instants() != nil {
		t.Error("nil tracer should report nothing")
	}
	if tr.Now() != 0 {
		t.Error("nil tracer Now should be 0")
	}
	if tr.Summarize() != nil {
		t.Error("nil tracer Summarize should be nil")
	}
}

func TestResourceKind(t *testing.T) {
	for in, want := range map[string]string{
		"disk:node3":  "disk",
		"nic:node0":   "nic",
		"core-switch": "core-switch",
	} {
		if got := resourceKind(in); got != want {
			t.Errorf("resourceKind(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFlowSinkCounters(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	disk := sim.NewResource(eng, "disk:node0", 100*float64(sim.MB), nil)
	f := disk.StartLoad(1.0)
	f2 := disk.StartWeighted(10*sim.MB, 1.0, nil)
	advance(eng, 10*time.Second) // f2 completes
	f.Cancel()
	_ = f2
	if got := tr.Counter("flow.started.disk"); got != 2 {
		t.Errorf("started = %d, want 2", got)
	}
	if got := tr.Counter("flow.completed.disk"); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
	if got := tr.Counter("flow.cancelled.disk"); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
	if got := tr.Counter("flow.bytes.disk"); got != int64(10*sim.MB) {
		t.Errorf("bytes = %d, want %d", got, int64(10*sim.MB))
	}
}

// drive records an identical trace on a fresh engine.
func drive(seed int64) *Tracer {
	eng := sim.NewEngine(seed)
	tr := New(eng)
	root := tr.Begin("migration", "migrate", NodeMaster, Int("block", 1), Int("size", 64))
	advance(eng, time.Second)
	ch := root.Child("migration", "transfer", 2)
	advance(eng, 2*time.Second)
	ch.End(Str("outcome", "completed"))
	root.End(Str("outcome", "pinned"))
	tr.Instant("migration", "evict", 2, Int("block", 1))
	tr.Begin("read", "read", 4, Int("block", 1)) // left open
	tr.Inc("migration.completed")
	tr.Add("read.bytes.mem-remote", 64)
	return tr
}

func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := drive(1).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := drive(1).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("canonical JSON not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
	for _, want := range []string{Schema, `"end_ns": -1`, `"migration.completed": 1`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := drive(1).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"ph":"M"`, `"ph":"X"`, `"ph":"i"`, `"ph":"C"`,
		`"name":"master"`, `"name":"node2"`, `"name":"migrations"`,
		`"open":"true"`, // the read span left open, clamped to now
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	mig := tr.Begin("migration", "migrate", NodeMaster, Int("block", 5))
	advance(eng, 2*time.Second)
	mig.End(Str("outcome", "pinned"))
	advance(eng, 3*time.Second) // first read at t=5s
	rd := tr.Begin("read", "read", 1, Int("block", 5))
	rd.End(Str("source", "mem-local"))
	tr.Inc("migration.requested")
	tr.Inc("migration.completed")
	tr.Add("read.bytes.mem-local", 100)

	s := tr.Summarize()
	if s.MigrationsCompleted != 1 || s.ReadBytes["mem-local"] != 100 {
		t.Errorf("bad counters in summary: %+v", s)
	}
	if s.LeadTime.Len() != 1 {
		t.Fatalf("lead-time samples = %d, want 1", s.LeadTime.Len())
	}
	if got := s.LeadTime.Mean(); got != 5 {
		t.Errorf("lead-time = %.1fs, want 5s (request t=0, first read t=5)", got)
	}
	if got := s.Margin.Mean(); got != 3 {
		t.Errorf("margin = %.1fs, want 3s (pin t=2, first read t=5)", got)
	}
	if !strings.Contains(s.String(), "achieved lead-time") {
		t.Errorf("summary rendering missing lead-time line:\n%s", s)
	}
}
