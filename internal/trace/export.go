// Trace export: a canonical JSON document (schema dyrs-trace/v1,
// deterministic and byte-identical across runs at the same seed, in the
// style of the dyrs-bench/v1 timing documents) and Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema versions the canonical trace document layout.
const Schema = "dyrs-trace/v1"

type spanJSON struct {
	ID      int               `json:"id"`
	Parent  int               `json:"parent,omitempty"`
	Cat     string            `json:"cat"`
	Name    string            `json:"name"`
	Node    int               `json:"node"`
	BeginNS int64             `json:"begin_ns"`
	EndNS   int64             `json:"end_ns"` // -1: still open at export
	Attrs   map[string]string `json:"attrs,omitempty"`
}

type instantJSON struct {
	Cat   string            `json:"cat"`
	Name  string            `json:"name"`
	Node  int               `json:"node"`
	AtNS  int64             `json:"at_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type traceDoc struct {
	Schema   string           `json:"schema"`
	NowNS    int64            `json:"now_ns"` // virtual clock at export
	Counters map[string]int64 `json:"counters"`
	Spans    []spanJSON       `json:"spans"`
	Instants []instantJSON    `json:"instants"`
}

// attrMap flattens attributes for export; on duplicate keys the last
// write wins, matching Span.Attr.
func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// WriteJSON writes the canonical trace document. Every field derives
// from virtual time, seeded randomness or record order, and
// encoding/json sorts map keys, so identical seeds produce
// byte-identical documents.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := traceDoc{
		Schema:   Schema,
		NowNS:    int64(t.eng.Now()),
		Counters: t.Counters(),
		Spans:    make([]spanJSON, len(t.spans)),
		Instants: make([]instantJSON, len(t.instants)),
	}
	for i, s := range t.spans {
		doc.Spans[i] = spanJSON{
			ID: s.ID, Parent: s.Parent, Cat: s.Cat, Name: s.Name, Node: s.Node,
			BeginNS: int64(s.Begin), EndNS: int64(s.End), Attrs: attrMap(s.Attrs),
		}
	}
	for i, in := range t.instants {
		doc.Instants[i] = instantJSON{
			Cat: in.Cat, Name: in.Name, Node: in.Node,
			AtNS: int64(in.At), Attrs: attrMap(in.Attrs),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ChromeEvent is one entry of the Chrome trace-event format
// (ph "M" metadata, "X" complete span, "i" instant, "C" counter).
// Timestamps and durations are microseconds.
type ChromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeDoc is the top-level Chrome trace-event JSON object.
type ChromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track layout inside Perfetto: one process per node (pid 0 is the
// master / cluster scope, pid n+1 is worker node n), with one thread
// per span category so migrations, reads and tasks stack on separate
// rows of the same node.
func chromeTID(cat string) (int, string) {
	switch cat {
	case "task":
		return 1, "tasks"
	case "read":
		return 2, "reads"
	case "migration":
		return 3, "migrations"
	case "job":
		return 4, "jobs"
	}
	return 5, "events"
}

func chromePID(node int) int { return node + 1 } // NodeMaster (-1) -> 0

const usPerNS = 1e-3

// WriteChromeTrace writes the trace in Chrome trace-event JSON. Spans
// still open at export are clamped to the current virtual instant.
// Span linkage survives the format via args["span"]/args["parent"].
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	now := t.eng.Now()
	doc := ChromeDoc{DisplayTimeUnit: "ms"}

	// Metadata: name every (process, thread) track actually used.
	type track struct{ pid, tid int }
	pids := map[int]bool{}
	tracks := map[track]string{}
	note := func(node int, cat string) (int, int) {
		pid := chromePID(node)
		tid, tname := chromeTID(cat)
		pids[pid] = true
		tracks[track{pid, tid}] = tname
		return pid, tid
	}
	for _, s := range t.spans {
		note(s.Node, s.Cat)
	}
	for _, in := range t.instants {
		note(in.Node, in.Cat)
	}
	pidList := make([]int, 0, len(pids))
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		name := "master"
		if pid > 0 {
			name = fmt.Sprintf("node%d", pid-1)
		}
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": name},
		})
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "process_sort_index", Ph: "M", PID: pid,
			Args: map[string]string{"sort_index": fmt.Sprint(pid)},
		})
	}
	trackList := make([]track, 0, len(tracks))
	for tr := range tracks {
		trackList = append(trackList, tr)
	}
	sort.Slice(trackList, func(i, j int) bool {
		if trackList[i].pid != trackList[j].pid {
			return trackList[i].pid < trackList[j].pid
		}
		return trackList[i].tid < trackList[j].tid
	})
	for _, tr := range trackList {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]string{"name": tracks[tr]},
		})
	}

	for _, s := range t.spans {
		pid, tid := note(s.Node, s.Cat)
		end := s.End
		args := attrMap(s.Attrs)
		if args == nil {
			args = map[string]string{}
		}
		args["span"] = fmt.Sprint(s.ID)
		if s.Parent != 0 {
			args["parent"] = fmt.Sprint(s.Parent)
		}
		if end < 0 {
			end = now
			args["open"] = "true"
		}
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: float64(s.Begin) * usPerNS, Dur: float64(end-s.Begin) * usPerNS,
			PID: pid, TID: tid, Args: args,
		})
	}
	for _, in := range t.instants {
		pid, tid := note(in.Node, in.Cat)
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i", Scope: "t",
			TS: float64(in.At) * usPerNS, PID: pid, TID: tid,
			Args: attrMap(in.Attrs),
		})
	}

	// Final counter values as "C" events at the export instant, so the
	// registry shows up as counter tracks.
	names := make([]string, 0, len(t.counters))
	for name := range t.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: name, Ph: "C", TS: float64(now) * usPerNS, PID: 0,
			Args: map[string]string{"value": fmt.Sprint(*t.counters[name])},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
