// Trace export: a canonical JSON document (schema dyrs-trace/v2,
// deterministic and byte-identical across runs at the same seed, in the
// style of the dyrs-bench timing documents) and Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema versions the canonical trace document layout. v2 added the
// streaming histogram section and the sampling-rate self-description
// (both omitted when unused, so an unsampled histogram-free v2 document
// is byte-identical to v1 apart from this field).
const Schema = "dyrs-trace/v2"

type spanJSON struct {
	ID      int               `json:"id"`
	Parent  int               `json:"parent,omitempty"`
	Cat     string            `json:"cat"`
	Name    string            `json:"name"`
	Node    int               `json:"node"`
	BeginNS int64             `json:"begin_ns"`
	EndNS   int64             `json:"end_ns"` // -1: still open at export
	Attrs   map[string]string `json:"attrs,omitempty"`
}

type instantJSON struct {
	Cat   string            `json:"cat"`
	Name  string            `json:"name"`
	Node  int               `json:"node"`
	AtNS  int64             `json:"at_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type traceDoc struct {
	Schema  string `json:"schema"`
	NowNS   int64  `json:"now_ns"`             // virtual clock at export
	SampleN int    `json:"sample_n,omitempty"` // 1-in-N root sampling; absent = full fidelity
	// SampledOut counts root records the sampler dropped, so a reader
	// knows what fraction of activity the spans/instants represent. The
	// count is layout-invariant (drops are per (cat,node) ordinal).
	SampledOut uint64              `json:"sampled_out,omitempty"`
	Counters   map[string]int64    `json:"counters"`
	Hists      map[string]histJSON `json:"hists,omitempty"`
	Spans      []spanJSON          `json:"spans"`
	Instants   []instantJSON       `json:"instants"`
}

// histJSON is the canonical encoding of one streaming histogram: the
// moments plus the non-empty log2 buckets in ascending order. "le" is
// the bucket's inclusive upper bound (MaxInt64 marks the overflow
// bucket).
type histJSON struct {
	Count   uint64           `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Buckets []histBucketJSON `json:"buckets"`
}

type histBucketJSON struct {
	Le int64  `json:"le"`
	N  uint64 `json:"n"`
}

// histDoc encodes a histogram for export; nil for an empty histogram,
// so never-observed registered handles don't clutter the document.
func histDoc(h *Hist) (histJSON, bool) {
	hi := h.maxBucket()
	if hi < 0 {
		return histJSON{}, false
	}
	out := histJSON{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i := 0; i <= hi; i++ {
		if h.buckets[i] == 0 {
			continue
		}
		out.Buckets = append(out.Buckets, histBucketJSON{Le: HistBucketUpper(i), N: h.buckets[i]})
	}
	return out, true
}

// histsDoc collects every non-empty histogram of the registry.
func (t *Tracer) histsDoc() map[string]histJSON {
	var out map[string]histJSON
	for name, h := range t.hists {
		if doc, ok := histDoc(h); ok {
			if out == nil {
				out = make(map[string]histJSON)
			}
			out[name] = doc
		}
	}
	return out
}

// attrMap flattens attributes for export; on duplicate keys the last
// write wins, matching Span.Attr.
func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSON writes the canonical trace document. Every field derives
// from virtual time, seeded randomness or record order, and
// encoding/json sorts map keys, so identical seeds produce
// byte-identical documents.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := traceDoc{
		Schema:   Schema,
		NowNS:    int64(t.eng.Now()),
		Counters: t.Counters(),
		Hists:    t.histsDoc(),
		Spans:    make([]spanJSON, len(t.spans)),
		Instants: make([]instantJSON, len(t.instants)),
	}
	if n := t.SampleN(); n > 1 {
		doc.SampleN = n
		doc.SampledOut = t.SampledOut()
	}
	for i, s := range t.spans {
		doc.Spans[i] = spanJSON{
			ID: s.ID, Parent: s.Parent, Cat: s.Cat, Name: s.Name, Node: s.Node,
			BeginNS: int64(s.Begin), EndNS: int64(s.End), Attrs: attrMap(s.Attrs),
		}
	}
	for i, in := range t.instants {
		doc.Instants[i] = instantJSON{
			Cat: in.Cat, Name: in.Name, Node: in.Node,
			AtNS: int64(in.At), Attrs: attrMap(in.Attrs),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ChromeEvent is one entry of the Chrome trace-event format
// (ph "M" metadata, "X" complete span, "i" instant, "C" counter).
// Timestamps and durations are microseconds.
type ChromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeDoc is the top-level Chrome trace-event JSON object.
type ChromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track layout inside Perfetto: one process per node (pid 0 is the
// master / cluster scope, pid n+1 is worker node n), with one thread
// per span category so migrations, reads and tasks stack on separate
// rows of the same node.
func chromeTID(cat string) (int, string) {
	switch cat {
	case "task":
		return 1, "tasks"
	case "read":
		return 2, "reads"
	case "migration":
		return 3, "migrations"
	case "job":
		return 4, "jobs"
	}
	return 5, "events"
}

func chromePID(node int) int { return node + 1 } // NodeMaster (-1) -> 0

// PerfettoRackCapNodes is the node count above which the Perfetto
// export stops emitting one process per node and aggregates to one
// process per rack (when the tracer knows the topology via
// SetTopology), keeping the node id as an args attribute on every
// event. At 1k+ nodes the per-node convention produces thousands of
// process groups and an unusable UI; per-rack stays navigable to 10k
// nodes.
const PerfettoRackCapNodes = 256

const usPerNS = 1e-3

// WriteChromeTrace writes the trace in Chrome trace-event JSON. Spans
// still open at export are clamped to the current virtual instant.
// Span linkage survives the format via args["span"]/args["parent"].
// Above PerfettoRackCapNodes distinct nodes (and with a topology set)
// processes aggregate per rack and args["node"] carries the node id.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	now := t.eng.Now()
	doc := ChromeDoc{DisplayTimeUnit: "ms"}

	// Decide the process layout: per node, or per rack above the cap.
	nodes := map[int]bool{}
	for i := range t.spans {
		nodes[t.spans[i].Node] = true
	}
	for i := range t.instants {
		nodes[t.instants[i].Node] = true
	}
	byRack := len(t.rackOf) > 0 && len(nodes) > PerfettoRackCapNodes
	pidOf := chromePID
	if byRack {
		pidOf = func(node int) int {
			if node < 0 || node >= len(t.rackOf) {
				return 0 // master / unknown topology -> the master process
			}
			return t.rackOf[node] + 1
		}
	}

	// Metadata: name every (process, thread) track actually used.
	type track struct{ pid, tid int }
	pids := map[int]bool{}
	tracks := map[track]string{}
	note := func(node int, cat string) (int, int) {
		pid := pidOf(node)
		tid, tname := chromeTID(cat)
		pids[pid] = true
		tracks[track{pid, tid}] = tname
		return pid, tid
	}
	for _, s := range t.spans {
		note(s.Node, s.Cat)
	}
	for _, in := range t.instants {
		note(in.Node, in.Cat)
	}
	pidList := make([]int, 0, len(pids))
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		name := "master"
		if pid > 0 {
			if byRack {
				name = fmt.Sprintf("rack%d", pid-1)
			} else {
				name = fmt.Sprintf("node%d", pid-1)
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": name},
		})
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "process_sort_index", Ph: "M", PID: pid,
			Args: map[string]string{"sort_index": fmt.Sprint(pid)},
		})
	}
	trackList := make([]track, 0, len(tracks))
	for tr := range tracks {
		trackList = append(trackList, tr)
	}
	sort.Slice(trackList, func(i, j int) bool {
		if trackList[i].pid != trackList[j].pid {
			return trackList[i].pid < trackList[j].pid
		}
		return trackList[i].tid < trackList[j].tid
	})
	for _, tr := range trackList {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]string{"name": tracks[tr]},
		})
	}

	for _, s := range t.spans {
		pid, tid := note(s.Node, s.Cat)
		end := s.End
		args := attrMap(s.Attrs)
		if args == nil {
			args = map[string]string{}
		}
		args["span"] = fmt.Sprint(s.ID)
		if s.Parent != 0 {
			args["parent"] = fmt.Sprint(s.Parent)
		}
		if byRack {
			args["node"] = fmt.Sprint(s.Node)
		}
		if end < 0 {
			end = now
			args["open"] = "true"
		}
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: float64(s.Begin) * usPerNS, Dur: float64(end-s.Begin) * usPerNS,
			PID: pid, TID: tid, Args: args,
		})
	}
	for _, in := range t.instants {
		pid, tid := note(in.Node, in.Cat)
		args := attrMap(in.Attrs)
		if byRack {
			if args == nil {
				args = map[string]string{}
			}
			args["node"] = fmt.Sprint(in.Node)
		}
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i", Scope: "t",
			TS: float64(in.At) * usPerNS, PID: pid, TID: tid,
			Args: args,
		})
	}

	// Final counter values as "C" events at the export instant, so the
	// registry shows up as counter tracks.
	names := make([]string, 0, len(t.counters))
	for name := range t.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
			Name: name, Ph: "C", TS: float64(now) * usPerNS, PID: 0,
			Args: map[string]string{"value": fmt.Sprint(*t.counters[name])},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
