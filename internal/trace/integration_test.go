package trace_test

import (
	"testing"
	"time"

	"dyrs"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
)

// runTracedSort runs a small migrating Sort and returns the tracer.
func runTracedSort(t *testing.T) *trace.Tracer {
	t.Helper()
	opt := dyrs.DefaultOptions(1)
	opt.Trace = true
	env := dyrs.NewEnv(dyrs.PolicyDYRS, opt)
	defer env.Close()
	if err := env.CreateInput("input", dyrs.GB); err != nil {
		t.Fatal(err)
	}
	spec := env.Prepare(dyrs.SortSpec("input", 4, true))
	spec.ExtraLeadTime = 5 * time.Second
	j, err := env.FW.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.WaitJob(j, time.Hour); err != nil {
		t.Fatal(err)
	}
	tr := env.Tracer()
	if !tr.Enabled() {
		t.Fatal("Options.Trace did not attach a tracer")
	}
	return tr
}

// The headline semantic guarantee: a migration's full lifecycle shows up
// as linked spans carrying enough attributes to recompute the achieved
// lead-time from the trace alone.
func TestMigrationLifecycleSpans(t *testing.T) {
	tr := runTracedSort(t)
	spans := tr.Spans()

	byID := map[int]*trace.Span{}
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}

	// Find a pinned migration with a completed transfer child.
	var pinned *trace.Span
	transfers := map[int]*trace.Span{} // parent ID -> transfer child
	for i := range spans {
		sp := &spans[i]
		switch {
		case sp.Cat == "migration" && sp.Name == "migrate" && sp.Attr("outcome") == "pinned":
			if pinned == nil {
				pinned = sp
			}
		case sp.Cat == "migration" && sp.Name == "transfer":
			transfers[sp.Parent] = sp
		}
	}
	if pinned == nil {
		t.Fatal("no pinned migration span in trace")
	}
	if pinned.Node != trace.NodeMaster {
		t.Errorf("migrate span on node %d, want master", pinned.Node)
	}
	for _, key := range []string{"job", "block", "size", "slave"} {
		if pinned.Attr(key) == "" {
			t.Errorf("migrate span missing %q attr: %+v", key, pinned)
		}
	}
	tx := transfers[pinned.ID]
	if tx == nil {
		t.Fatal("pinned migration has no transfer child span")
	}
	if tx.Attr("outcome") != "completed" {
		t.Errorf("transfer outcome = %q, want completed", tx.Attr("outcome"))
	}
	if tx.Node == trace.NodeMaster {
		t.Error("transfer span should run on a worker node")
	}
	if tx.Begin < pinned.Begin || tx.End > pinned.End {
		t.Errorf("transfer [%v,%v] escapes its parent [%v,%v]",
			tx.Begin, tx.End, pinned.Begin, pinned.End)
	}

	// The job's read of the migrated block, from the trace alone.
	block := pinned.Attr("block")
	var read *trace.Span
	for i := range spans {
		sp := &spans[i]
		if sp.Cat == "read" && sp.Attr("block") == block {
			read = sp
			break
		}
	}
	if read == nil {
		t.Fatalf("no read span for migrated block %s", block)
	}
	if src := read.Attr("source"); src != "mem-local" && src != "mem-remote" {
		t.Errorf("migrated block read from %q, want a memory path", src)
	}
	lead := read.Begin.Sub(pinned.Begin)
	if lead <= 0 {
		t.Errorf("recomputed lead-time %v, want > 0 (request %v, first read %v)",
			lead, pinned.Begin, read.Begin)
	}

	// Job/task spans exist and are linked.
	var jobSpan *trace.Span
	tasks := 0
	for i := range spans {
		sp := &spans[i]
		switch sp.Cat {
		case "job":
			jobSpan = sp
		case "task":
			tasks++
			if parent := byID[sp.Parent]; parent == nil || parent.Cat != "job" {
				t.Errorf("task span %d not parented under a job span", sp.ID)
			}
		}
	}
	if jobSpan == nil || jobSpan.Open() {
		t.Fatal("no closed job span in trace")
	}
	if jobSpan.Attr("lead-time") == "" {
		t.Error("job span missing lead-time attr")
	}
	if tasks == 0 {
		t.Error("no task spans in trace")
	}
}

func TestTracedRunCountersAndSummary(t *testing.T) {
	tr := runTracedSort(t)
	if tr.Counter("migration.requested") == 0 || tr.Counter("migration.completed") == 0 {
		t.Fatalf("migration counters empty: %v", tr.Counters())
	}
	if tr.Counter("migration.bytes") == 0 {
		t.Error("migration.bytes not recorded")
	}
	var memBytes int64
	for _, src := range []string{"mem-local", "mem-remote"} {
		memBytes += tr.Counter("read.bytes." + src)
	}
	if memBytes == 0 {
		t.Error("no memory-path read bytes under DYRS")
	}
	if tr.Counter("flow.completed.disk") == 0 {
		t.Error("flow sink recorded no completed disk flows")
	}
	if tr.Counter("task.map") == 0 || tr.Counter("task.reduce") == 0 {
		t.Errorf("task counters empty: map=%d reduce=%d",
			tr.Counter("task.map"), tr.Counter("task.reduce"))
	}

	s := tr.Summarize()
	if s.LeadTime.Len() == 0 {
		t.Fatal("summary has no lead-time samples")
	}
	if s.LeadTime.Mean() <= 0 {
		t.Errorf("mean lead-time %.2fs, want > 0", s.LeadTime.Mean())
	}
	if int64(s.Spans) != int64(len(tr.Spans())) {
		t.Errorf("summary spans %d != recorded %d", s.Spans, len(tr.Spans()))
	}
}

// Tracing must be a pure observer: the simulated outcome of a run is
// identical with and without it.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	durations := make([]sim.Duration, 2)
	for i, traced := range []bool{false, true} {
		opt := dyrs.DefaultOptions(7)
		opt.Trace = traced
		env := dyrs.NewEnv(dyrs.PolicyDYRS, opt)
		if err := env.CreateInput("input", dyrs.GB); err != nil {
			t.Fatal(err)
		}
		j, err := env.FW.Submit(env.Prepare(dyrs.SortSpec("input", 4, true)))
		if err != nil {
			t.Fatal(err)
		}
		if err := env.WaitJob(j, time.Hour); err != nil {
			t.Fatal(err)
		}
		durations[i] = j.Duration()
		env.Close()
	}
	if durations[0] != durations[1] {
		t.Errorf("tracing changed the run: untraced %v, traced %v", durations[0], durations[1])
	}
}
