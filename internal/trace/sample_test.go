package trace

import (
	"bytes"
	"testing"

	"dyrs/internal/sim"
)

// record drives a fixed span/instant workload against the tracer:
// per-node migration roots with read children, plus instants.
func sampleWorkload(tr *Tracer, eng *sim.Engine) {
	for i := 0; i < 400; i++ {
		node := i % 7
		eng.Schedule(sim.Duration(i+1)*1000, func() {
			sp := tr.Begin("migration", "migrate", node)
			ch := sp.Child("read", "transfer", node)
			ch.End()
			sp.End()
			tr.Instant("read", "hit", node)
			tr.Inc("work.done")
		})
	}
	eng.Run()
}

func TestSamplingDeterministic(t *testing.T) {
	runOnce := func() []byte {
		eng := sim.NewEngine(42)
		tr := New(eng)
		tr.SetSampling(8, 7)
		sampleWorkload(tr, eng)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Error("sampled exports differ across identical runs")
	}
}

func TestSamplingKeepsSubsetAndExactCounters(t *testing.T) {
	eng := sim.NewEngine(42)
	tr := New(eng)
	tr.SetSampling(8, 7)
	sampleWorkload(tr, eng)

	if got := tr.Counter("work.done"); got != 400 {
		t.Errorf("counter = %d under sampling, want exact 400", got)
	}
	spans := len(tr.Spans())
	if spans == 0 || spans >= 800 {
		t.Errorf("sampled span count = %d, want 0 < n < 800", spans)
	}
	// Every kept root keeps its child: span count must be even and each
	// child's parent must be present.
	byID := map[int]Span{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	for _, s := range tr.Spans() {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; !ok {
				t.Fatalf("child span %d kept without its parent %d", s.ID, s.Parent)
			}
		}
	}
	if tr.SampledOut() == 0 {
		t.Error("SampledOut = 0; sampling dropped nothing")
	}
	if tr.SampleN() != 8 {
		t.Errorf("SampleN = %d, want 8", tr.SampleN())
	}
}

func TestSamplingSeedSelectsDifferentSubsets(t *testing.T) {
	subset := func(seed uint64) int {
		eng := sim.NewEngine(42)
		tr := New(eng)
		tr.SetSampling(8, seed)
		sampleWorkload(tr, eng)
		ids := 0
		for _, s := range tr.Spans() {
			ids += s.ID * 31
		}
		return ids
	}
	if subset(1) == subset(2) {
		t.Error("different sampling seeds kept the identical span subset")
	}
}

func TestSamplingDisabled(t *testing.T) {
	eng := sim.NewEngine(42)
	tr := New(eng)
	tr.SetSampling(1, 7) // n <= 1 disables
	if tr.sample != nil {
		t.Fatal("sampler armed at n=1")
	}
	sampleWorkload(tr, eng)
	if got := len(tr.Spans()); got != 800 {
		t.Errorf("span count = %d with sampling disabled, want 800", got)
	}
	if tr.SampledOut() != 0 {
		t.Error("SampledOut non-zero with sampling disabled")
	}
}

func TestSampledOutZeroRefNoOps(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.SetSampling(1<<30, 0) // drop essentially every root
	var kept SpanRef
	for i := 0; i < 64; i++ {
		if sp := tr.Begin("migration", "m", i); sp.t == nil {
			kept = sp
			break
		}
	}
	// Children, annotations and End on the zero ref must all no-op.
	ch := kept.Child("read", "r", 0)
	ch.End()
	kept.Annotate(Str("k", "v"))
	kept.End()
	if kept.ID() != 0 || kept.Begin() != 0 {
		t.Error("zero SpanRef leaked state")
	}
}
