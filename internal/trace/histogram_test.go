package trace

import (
	"math"
	"testing"

	"dyrs/internal/sim"
)

func TestHistZeroObservations(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram not all-zero: count %d sum %d mean %v q50 %v",
			h.Count(), h.Sum(), h.Mean(), h.Quantile(0.5))
	}
	if h.maxBucket() != -1 {
		t.Errorf("maxBucket of empty = %d, want -1", h.maxBucket())
	}
	if _, ok := histDoc(&h); ok {
		t.Error("empty histogram exported; want omitted")
	}
	var nilH *Hist
	nilH.Observe(5) // must not panic
	if nilH.Count() != 0 {
		t.Error("nil histogram counted an observation")
	}
}

func TestHistSingleBucket(t *testing.T) {
	var h Hist
	// 9..15 all land in bucket [8,16): index 4.
	for v := int64(9); v < 16; v++ {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got := h.Bucket(4); got != 7 {
		t.Errorf("bucket 4 = %d, want 7", got)
	}
	for i := 0; i < HistBuckets; i++ {
		if i != 4 && h.Bucket(i) != 0 {
			t.Errorf("bucket %d = %d, want 0", i, h.Bucket(i))
		}
	}
	if h.Min() != 9 || h.Max() != 15 {
		t.Errorf("min/max = %d/%d, want 9/15", h.Min(), h.Max())
	}
	q := h.Quantile(0.5)
	if q < 8 || q > 15 {
		t.Errorf("q50 = %v, outside the single occupied bucket", q)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3},
		{(1 << 61), 62}, {(1 << 62) - 1, 62},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistOverflowBucket(t *testing.T) {
	var h Hist
	h.Observe(1 << 62)       // smallest overflow value
	h.Observe(math.MaxInt64) // largest
	if got := h.Bucket(HistBuckets - 1); got != 2 {
		t.Fatalf("overflow bucket = %d, want 2", got)
	}
	if h.maxBucket() != HistBuckets-1 {
		t.Errorf("maxBucket = %d, want %d", h.maxBucket(), HistBuckets-1)
	}
	if HistBucketUpper(HistBuckets-1) != math.MaxInt64 {
		t.Errorf("overflow upper bound = %d, want MaxInt64", HistBucketUpper(HistBuckets-1))
	}
	doc, ok := histDoc(&h)
	if !ok || len(doc.Buckets) != 1 || doc.Buckets[0].Le != math.MaxInt64 || doc.Buckets[0].N != 2 {
		t.Errorf("overflow export = %+v, want single le=MaxInt64 n=2 bucket", doc.Buckets)
	}
}

// TestHistMergeEqualsWholeRun is the unit half of the merge
// differential: splitting one observation stream over k shards and
// merging must reproduce the whole-run histogram exactly, for several
// shard counts, including negative, zero, and overflow values.
func TestHistMergeEqualsWholeRun(t *testing.T) {
	values := make([]int64, 0, 3000)
	v := int64(-100)
	for i := 0; i < 3000; i++ {
		// Deterministic spread over negatives, zero, small, huge.
		v = v*3 + int64(i)
		values = append(values, v%(1<<40)-512)
	}
	values = append(values, 0, -1, 1<<62, math.MaxInt64)

	var whole Hist
	for _, v := range values {
		whole.Observe(v)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		parts := make([]Hist, shards)
		for i, v := range values {
			parts[i%shards].Observe(v)
		}
		var merged Hist
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged != whole {
			t.Errorf("shards=%d: merged histogram differs from whole-run", shards)
		}
	}
}

func TestHistMergeEmptyAndNil(t *testing.T) {
	var h Hist
	h.Observe(42)
	before := h
	h.Merge(nil)
	h.Merge(&Hist{})
	if h != before {
		t.Error("merging nil/empty changed the histogram")
	}
	var empty Hist
	empty.Merge(&h)
	if empty != h {
		t.Error("merging into empty did not copy min/max")
	}
}

func TestTracerHistRegistry(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	h := tr.Hist("read.latency_ns")
	if h == nil {
		t.Fatal("nil handle from live tracer")
	}
	if tr.Hist("read.latency_ns") != h {
		t.Error("second Hist call returned a different handle")
	}
	tr.Hist("never.observed")
	h.Observe(100)
	names := tr.HistNames()
	if len(names) != 1 || names[0] != "read.latency_ns" {
		t.Errorf("HistNames = %v, want only the observed histogram", names)
	}

	var nilTr *Tracer
	if nilTr.Hist("x") != nil {
		t.Error("nil tracer returned a non-nil histogram")
	}
	if nilTr.HistNames() != nil {
		t.Error("nil tracer returned histogram names")
	}
}
