package trace

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

// The sharded engine's hot loop must stay allocation-free whether
// observability is absent (nil tracer) or present but idle (tracer with
// a configured sampler that keeps dropping records, plus registered
// histogram handles): at 10k nodes the coordinated-window loop runs
// hundreds of millions of events, and one object per event is the
// difference between a benchmark and a GC storm.

// shardCycle schedules one local event per shard plus one cross-shard
// message and drains the engine — exercising census, the coordinated
// window (inline, workers=1), deliver, and the solo tail.
func shardCycle(se *sim.ShardedEngine, nop func()) {
	for s := 0; s < se.Shards(); s++ {
		se.Shard(s).Schedule(time.Millisecond, nop)
	}
	se.Shard(0).Send(1, time.Second, nop)
	se.Run()
}

// soloCycle drives only shard 0, staying on the solo fast path.
func soloCycle(se *sim.ShardedEngine, nop func()) {
	se.Shard(0).Schedule(time.Millisecond, nop)
	se.Run()
}

func shardAllocs(t *testing.T, workers int, cycle func(*sim.ShardedEngine, func()), observe func(*sim.ShardedEngine)) float64 {
	t.Helper()
	se := sim.NewShardedEngine(1, 4, time.Second)
	se.SetWorkers(workers)
	if observe != nil {
		observe(se)
	}
	nop := func() {}
	for i := 0; i < 64; i++ { // warm event pools and worker lanes
		cycle(se, nop)
	}
	return testing.AllocsPerRun(200, func() { cycle(se, nop) })
}

func TestShardedEngineNilTracerZeroAllocs(t *testing.T) {
	if avg := shardAllocs(t, 1, shardCycle, nil); avg != 0 {
		t.Errorf("untraced sharded hot loop allocates %.2f objects/op, want 0", avg)
	}
	if avg := shardAllocs(t, 1, soloCycle, nil); avg != 0 {
		t.Errorf("untraced solo fast path allocates %.2f objects/op, want 0", avg)
	}
}

// With tracers attached to every shard, samplers configured, and
// histogram handles registered — but no record actually made by the
// cycle — the engine loop itself must still allocate nothing: the
// observability layer only costs where call sites record.
func TestShardedEngineIdleTracerZeroAllocs(t *testing.T) {
	observe := func(se *sim.ShardedEngine) {
		for s := 0; s < se.Shards(); s++ {
			tr := New(se.Shard(s))
			tr.SetSampling(64, 7)
			tr.Hist("read.latency_ns")
		}
	}
	if avg := shardAllocs(t, 1, shardCycle, observe); avg != 0 {
		t.Errorf("traced sharded hot loop allocates %.2f objects/op, want 0", avg)
	}
	if avg := shardAllocs(t, 1, soloCycle, observe); avg != 0 {
		t.Errorf("traced solo fast path allocates %.2f objects/op, want 0", avg)
	}
}

// Histogram observation from inside events is a fixed-array update —
// the steady-state streaming-metrics path must add zero allocations.
func TestShardedEngineHistObserveZeroAllocs(t *testing.T) {
	se := sim.NewShardedEngine(1, 2, time.Second)
	se.SetWorkers(1)
	h := New(se.Shard(0)).Hist("read.latency_ns")
	tick := func() { h.Observe(12345) }
	for i := 0; i < 64; i++ {
		se.Shard(0).Schedule(time.Millisecond, tick)
		se.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		se.Shard(0).Schedule(time.Millisecond, tick)
		se.Run()
	})
	if avg != 0 {
		t.Errorf("histogram observe in sharded loop allocates %.2f objects/op, want 0", avg)
	}
}
