// Flight recorder: a bounded ring of the most recent trace records
// (span begins/ends and instants), kept so a failing run can dump the
// engine activity that led up to the failure without retaining the
// whole trace. The harness enables it on every scenario run and dumps
// the ring alongside the one-line repro when an oracle fails.
//
// The ring stores fixed-size entries referencing the interned category
// and name strings the call sites pass as literals, so steady-state
// recording allocates nothing and memory stays bounded by the
// configured capacity regardless of run length.
package trace

import (
	"fmt"
	"io"

	"dyrs/internal/sim"
)

// FlightKind classifies one flight-recorder entry.
type FlightKind uint8

// Flight-recorder entry kinds.
const (
	FlightSpanBegin FlightKind = iota
	FlightSpanEnd
	FlightInstant
)

func (k FlightKind) String() string {
	switch k {
	case FlightSpanBegin:
		return "begin"
	case FlightSpanEnd:
		return "end"
	case FlightInstant:
		return "instant"
	}
	return "?"
}

// FlightEvent is one entry of the flight-recorder ring.
type FlightEvent struct {
	At   sim.Time
	Kind FlightKind
	Cat  string
	Name string
	Node int
	Span int // span ID for begin/end entries, 0 for instants
}

// flightRing is a fixed-capacity overwrite-oldest ring.
type flightRing struct {
	buf   []FlightEvent
	next  int
	total uint64
}

func (r *flightRing) record(ev FlightEvent) {
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// events returns the retained entries oldest-first.
func (r *flightRing) events() []FlightEvent {
	if r.total >= uint64(len(r.buf)) {
		out := make([]FlightEvent, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	out := make([]FlightEvent, r.next)
	copy(out, r.buf[:r.next])
	return out
}

// SetFlightRecorder arms a flight recorder retaining the last n trace
// records; n <= 0 disarms it. Recording is independent of sampling
// state only in configuration — the ring sees exactly the records the
// tracer keeps, so with sampling enabled the ring is sampled too.
func (t *Tracer) SetFlightRecorder(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		t.flight = nil
		return
	}
	t.flight = &flightRing{buf: make([]FlightEvent, n)}
}

// FlightEvents returns the retained ring entries oldest-first, or nil
// when the recorder is disarmed.
func (t *Tracer) FlightEvents() []FlightEvent {
	if t == nil || t.flight == nil {
		return nil
	}
	return t.flight.events()
}

// FlightTotal reports how many records passed through the ring
// (retained or overwritten) since it was armed.
func (t *Tracer) FlightTotal() uint64 {
	if t == nil || t.flight == nil {
		return 0
	}
	return t.flight.total
}

// WriteFlightDump renders flight events as one line per record —
// virtual timestamp, kind, category/name, node, span ID — the artifact
// dyrs-fuzz writes next to a failing seed's repro command.
func WriteFlightDump(w io.Writer, events []FlightEvent) error {
	for _, ev := range events {
		var err error
		if ev.Span != 0 {
			_, err = fmt.Fprintf(w, "%-14d %-7s %s/%s node=%d span=%d\n",
				int64(ev.At), ev.Kind, ev.Cat, ev.Name, ev.Node, ev.Span)
		} else {
			_, err = fmt.Fprintf(w, "%-14d %-7s %s/%s node=%d\n",
				int64(ev.At), ev.Kind, ev.Cat, ev.Name, ev.Node)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
