package trace

import (
	"strings"
	"testing"

	"dyrs/internal/sim"
)

// TestWriteOpenMetricsGolden pins the exposition format byte for byte:
// a deterministic workload must always render the identical OpenMetrics
// text. Update the golden only on a deliberate format change.
func TestWriteOpenMetricsGolden(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng)
	eng.Schedule(1500, func() {
		tr.Inc("migration.completed")
		tr.Add("migration.bytes", 1<<20)
		h := tr.Hist("read.latency_ns")
		h.Observe(900)  // bucket [512,1024): le 1023
		h.Observe(1000) // same bucket
		h.Observe(3000) // bucket [2048,4096): le 4095
		h.Observe(0)    // zero bucket: le 0
	})
	eng.Run()

	var sb strings.Builder
	if err := tr.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `# TYPE dyrs_virtual_time_ns gauge
# HELP dyrs_virtual_time_ns Simulation clock at exposition.
dyrs_virtual_time_ns 1500
# TYPE dyrs_migration_bytes gauge
dyrs_migration_bytes 1048576
# TYPE dyrs_migration_completed gauge
dyrs_migration_completed 1
# TYPE dyrs_read_latency_ns histogram
dyrs_read_latency_ns_bucket{le="0"} 1
dyrs_read_latency_ns_bucket{le="1023"} 3
dyrs_read_latency_ns_bucket{le="4095"} 4
dyrs_read_latency_ns_bucket{le="+Inf"} 4
dyrs_read_latency_ns_sum 4900
dyrs_read_latency_ns_count 4
# EOF
`
	if got := sb.String(); got != golden {
		t.Errorf("OpenMetrics exposition drifted.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestWriteOpenMetricsNilAndSampling(t *testing.T) {
	var sb strings.Builder
	var nilTr *Tracer
	if err := nilTr.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "# EOF\n" {
		t.Errorf("nil tracer exposition = %q, want bare EOF", sb.String())
	}

	eng := sim.NewEngine(1)
	tr := New(eng)
	tr.SetSampling(64, 9)
	for i := 0; i < 200; i++ {
		tr.Instant("read", "hit", i%5)
	}
	sb.Reset()
	if err := tr.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dyrs_trace_sample_n 64\n") {
		t.Error("sampling rate missing from exposition")
	}
	if !strings.Contains(out, "dyrs_trace_sampled_out ") {
		t.Error("sampled-out count missing from exposition")
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("exposition not EOF-terminated")
	}
}

func TestOpenMetricsName(t *testing.T) {
	cases := map[string]string{
		"read.bytes.mem-local": "dyrs_read_bytes_mem_local",
		"flow.started.disk":    "dyrs_flow_started_disk",
		"a:b_c9":               "dyrs_a:b_c9",
	}
	for in, want := range cases {
		if got := openMetricsName(in); got != want {
			t.Errorf("openMetricsName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteMergedOpenMetricsSums(t *testing.T) {
	se := sim.NewShardedEngine(1, 2, 1000)
	a := New(se.Shard(0))
	b := New(se.Shard(1))
	a.Add("migration.completed", 3)
	b.Add("migration.completed", 4)
	a.Hist("read.latency_ns").Observe(100)
	b.Hist("read.latency_ns").Observe(200)

	var sb strings.Builder
	if err := WriteMergedOpenMetrics(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dyrs_migration_completed 7\n") {
		t.Errorf("merged counter not summed:\n%s", out)
	}
	if !strings.Contains(out, "dyrs_read_latency_ns_count 2\n") {
		t.Errorf("merged histogram not summed:\n%s", out)
	}
}
