package trace

import (
	"testing"
	"time"

	"dyrs/internal/sim"
)

// The disabled path must be free: a nil tracer's methods are pure nil
// checks. Call sites guard attribute construction behind Enabled(), so
// the attr-free forms below are exactly the disabled hot path.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	var sp SpanRef
	avg := testing.AllocsPerRun(200, func() {
		s := tr.Begin("migration", "migrate", 0)
		s.Annotate()
		s.End()
		sp.Child("migration", "transfer", 1)
		tr.Instant("migration", "bind", 0)
		tr.Inc("migration.requested")
		tr.Add("migration.bytes", 128)
		_ = tr.Enabled()
		_ = tr.Counter("migration.requested")
	})
	if avg != 0 {
		t.Errorf("nil tracer allocates %.2f objects/op, want 0", avg)
	}
}

// flowCycle runs one complete and one cancelled flow on the resource.
func flowCycle(eng *sim.Engine, r *sim.Resource) {
	r.Start(sim.MB, nil)
	load := r.StartLoad(1)
	eng.RunFor(time.Second)
	load.Cancel()
}

func flowAllocs(attachTracer bool) float64 {
	eng := sim.NewEngine(1)
	if attachTracer {
		New(eng)
	}
	r := sim.NewResource(eng, "disk:node0", 100*float64(sim.MB), nil)
	for i := 0; i < 64; i++ { // warm pools and (when traced) counter cells
		flowCycle(eng, r)
	}
	return testing.AllocsPerRun(200, func() { flowCycle(eng, r) })
}

// Tracing must add zero allocations to flow start/complete/cancel: the
// disabled path is one nil check, and the enabled path hits per-resource
// cached counter cells.
func TestFlowTracingAllocOverhead(t *testing.T) {
	base := flowAllocs(false)
	traced := flowAllocs(true)
	if traced > base {
		t.Errorf("tracer adds flow-path allocations: %.2f traced vs %.2f untraced objects/op", traced, base)
	}
}

// Event scheduling never touches the tracer; attaching one must keep the
// steady-state schedule/run cycle allocation-free.
func TestScheduleZeroAllocsWithTracer(t *testing.T) {
	eng := sim.NewEngine(1)
	New(eng)
	nop := func() {}
	for i := 0; i < 128; i++ {
		eng.Schedule(time.Millisecond, nop)
	}
	eng.Run()
	avg := testing.AllocsPerRun(200, func() {
		eng.Schedule(time.Millisecond, nop)
		eng.Run()
	})
	if avg != 0 {
		t.Errorf("schedule/run with tracer attached allocates %.2f objects/op, want 0", avg)
	}
}
