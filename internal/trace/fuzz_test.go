package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dyrs/internal/sim"
)

// interpret replays a byte program against a fresh engine+tracer:
// begin/end/annotate spans, child spans, instants, counters and clock
// advances, all derived deterministically from the input bytes.
func interpret(data []byte) *Tracer {
	eng := sim.NewEngine(7)
	tr := New(eng)
	cats := []string{"migration", "read", "task", "flow"}
	names := []string{"migrate", "transfer", "read", "map", "tick"}
	keys := []string{"outcome", "block", "size", "reason"}
	vals := []string{"pinned", "dropped", "7", "x\"y z", ""}

	var open []SpanRef
	for i := 0; i+2 < len(data); i += 3 {
		a, b := int(data[i+1]), int(data[i+2])
		attr := Str(keys[a%len(keys)], vals[b%len(vals)])
		switch data[i] % 7 {
		case 0:
			open = append(open, tr.Begin(cats[a%len(cats)], names[b%len(names)], a%5-1, attr))
		case 1:
			if n := len(open); n > 0 {
				open[a%n].End(attr)
				open = append(open[:a%n], open[a%n+1:]...)
			}
		case 2:
			if n := len(open); n > 0 {
				open[a%n].Annotate(attr, Int("extra", int64(b)))
			}
		case 3:
			if n := len(open); n > 0 {
				open = append(open, open[a%n].Child(cats[b%len(cats)], names[a%len(names)], b%5-1))
			}
		case 4:
			tr.Instant(cats[a%len(cats)], names[b%len(names)], a%5-1, attr)
		case 5:
			tr.Add("counter."+keys[a%len(keys)], int64(b-128))
		case 6:
			eng.Schedule(sim.Duration(a)*sim.Duration(time.Millisecond), func() {})
			eng.RunFor(sim.Duration(a) * sim.Duration(time.Millisecond))
		}
	}
	return tr
}

// FuzzCanonicalJSON checks the canonical dyrs-trace/v2 export over
// arbitrary span/instant/counter histories:
//
//  1. the document is valid JSON;
//  2. the export is deterministic: replaying the identical history
//     byte-for-byte reproduces the document (the property the fuzzing
//     harness's determinism oracle hashes);
//  3. the canonical form is a fixpoint: decoding into the document
//     model and re-encoding with the same encoder settings yields the
//     identical bytes — no map-ordering or formatting drift.
func FuzzCanonicalJSON(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 1, 0, 0, 4, 3, 3, 5, 9, 200})
	f.Add([]byte{0, 0, 0, 3, 1, 1, 6, 50, 0, 1, 0, 0, 2, 2, 2, 5, 1, 1})
	f.Add([]byte{0, 4, 4, 6, 255, 255, 1, 0, 3, 0, 2, 4, 4, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		var out1, out2 bytes.Buffer
		if err := interpret(data).WriteJSON(&out1); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !json.Valid(out1.Bytes()) {
			t.Fatalf("invalid JSON:\n%s", out1.String())
		}
		if err := interpret(data).WriteJSON(&out2); err != nil {
			t.Fatalf("WriteJSON (replay): %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatal("identical histories produced different documents")
		}

		var doc traceDoc
		if err := json.Unmarshal(out1.Bytes(), &doc); err != nil {
			t.Fatalf("document does not round-trip through traceDoc: %v", err)
		}
		if doc.Schema != Schema {
			t.Fatalf("schema %q, want %q", doc.Schema, Schema)
		}
		var re bytes.Buffer
		enc := json.NewEncoder(&re)
		enc.SetIndent("", " ")
		if err := enc.Encode(doc); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), re.Bytes()) {
			t.Fatalf("canonical form is not a fixpoint:\n--- export ---\n%s\n--- re-encode ---\n%s",
				out1.String(), re.String())
		}
	})
}
