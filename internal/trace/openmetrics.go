// OpenMetrics text exposition of the tracer's counter and histogram
// registries — the format the -metrics-addr ops endpoint serves and
// external scrapers (Prometheus with OpenMetrics negotiation) ingest.
//
// The exposition is deterministic: metric families sort by name,
// histogram buckets ascend, and every value derives from virtual-time
// state, so it participates in golden tests like every other export.
package trace

import (
	"fmt"
	"io"
	"sort"
)

// openMetricsName sanitizes a registry name ("read.bytes.mem-local")
// into an OpenMetrics metric name ("dyrs_read_bytes_mem_local").
func openMetricsName(name string) string {
	out := make([]byte, 0, len(name)+5)
	out = append(out, "dyrs_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// WriteOpenMetrics writes the counter registry, histogram registry and
// clock state in the OpenMetrics text format, terminated by the
// mandatory "# EOF" line.
//
// Registry cells are exposed as gauges (Set gives them gauge
// semantics); histograms use the classic cumulative-bucket histogram
// exposition with nanosecond-scale le bounds. Spans and instants are
// not exposed — metrics are the aggregate surface; traces are the
// causal one.
func (t *Tracer) WriteOpenMetrics(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}

	bw := &errWriter{w: w}
	bw.printf("# TYPE dyrs_virtual_time_ns gauge\n")
	bw.printf("# HELP dyrs_virtual_time_ns Simulation clock at exposition.\n")
	bw.printf("dyrs_virtual_time_ns %d\n", int64(t.eng.Now()))
	if t.sample != nil {
		bw.printf("# TYPE dyrs_trace_sample_n gauge\n")
		bw.printf("dyrs_trace_sample_n %d\n", t.sample.n)
		bw.printf("# TYPE dyrs_trace_sampled_out gauge\n")
		bw.printf("dyrs_trace_sampled_out %d\n", t.sample.out)
	}

	names := make([]string, 0, len(t.counters))
	for name := range t.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := openMetricsName(name)
		bw.printf("# TYPE %s gauge\n", m)
		bw.printf("%s %d\n", m, *t.counters[name])
	}

	for _, name := range t.HistNames() {
		h := t.hists[name]
		m := openMetricsName(name)
		bw.printf("# TYPE %s histogram\n", m)
		var cum uint64
		hi := h.maxBucket()
		for i := 0; i <= hi; i++ {
			if h.buckets[i] == 0 {
				continue
			}
			cum += h.buckets[i]
			bw.printf("%s_bucket{le=\"%d\"} %d\n", m, HistBucketUpper(i), cum)
		}
		bw.printf("%s_bucket{le=\"+Inf\"} %d\n", m, h.count)
		bw.printf("%s_sum %d\n", m, h.sum)
		bw.printf("%s_count %d\n", m, h.count)
	}

	bw.printf("# EOF\n")
	return bw.err
}

// errWriter folds write errors so the exposition loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}
