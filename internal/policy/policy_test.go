package policy

import (
	"math/rand"
	"testing"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// TestDYRSEarliestFinish pins the Algorithm 1 semantics: a block
// targets the replica with the lowest finish-time estimate, accounting
// for per-node speed and queue depth.
func TestDYRSEarliestFinish(t *testing.T) {
	p := NewDYRS()
	p.Begin(View{
		Nodes: []NodeView{
			{Alive: true, PerByte: 1e-8, Queued: 0}, // fast, idle
			{Alive: true, PerByte: 1e-9, Queued: 9}, // faster, but deep queue
			{Alive: true, PerByte: 1e-7, Queued: 0}, // slow
		},
		StdBlock: 128 * sim.MB,
	})
	// finish(0) = 1e-8*128M*1 ≈ 1.34s; finish(1) = 1e-9*128M*10 ≈ 1.34s;
	// adding one 128MB block: node 0 → 2.68s, node 1 → 1.47s. Node 1 wins
	// despite the queue because it is 10x faster.
	got, ok := p.Assign(Request{Block: 1, Size: 128 * sim.MB, Replicas: []cluster.NodeID{0, 1, 2}})
	if !ok || got != 1 {
		t.Fatalf("Assign = (%d, %v), want node 1", got, ok)
	}
}

// TestDYRSConvoySpreads pins the running-finish update: a convoy of
// equal blocks with replicas on two equal nodes alternates between
// them instead of piling onto one.
func TestDYRSConvoySpreads(t *testing.T) {
	p := NewDYRS()
	p.Begin(View{
		Nodes: []NodeView{
			{Alive: true, PerByte: 1e-8},
			{Alive: true, PerByte: 1e-8},
		},
		StdBlock: 128 * sim.MB,
	})
	counts := map[cluster.NodeID]int{}
	for i := 0; i < 10; i++ {
		got, ok := p.Assign(Request{Block: dfs.BlockID(i), Size: 128 * sim.MB,
			Replicas: []cluster.NodeID{0, 1}})
		if !ok {
			t.Fatalf("block %d unassigned", i)
		}
		counts[got]++
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("convoy split %d/%d, want 5/5", counts[0], counts[1])
	}
}

// TestCostAwareDiffersFromDYRS demonstrates the deliberate semantic
// gap: CostAware counts queue slots, not accumulated bytes, so after a
// node absorbs one huge block, DYRS avoids it but CostAware does not.
func TestCostAwareDiffersFromDYRS(t *testing.T) {
	view := func() View {
		return View{
			Nodes: []NodeView{
				{Alive: true, PerByte: 1e-8},
				{Alive: true, PerByte: 1.1e-8},
			},
			StdBlock: 128 * sim.MB,
		}
	}
	huge := Request{Block: 0, Size: 2 * sim.GB, Replicas: []cluster.NodeID{0, 1}}
	small := Request{Block: 1, Size: 64 * sim.MB, Replicas: []cluster.NodeID{0, 1}}

	d := NewDYRS()
	d.Begin(view())
	dHuge, _ := d.Assign(huge)
	dSmall, _ := d.Assign(small)

	c := NewCostAware()
	c.Begin(view())
	cHuge, _ := c.Assign(huge)
	cSmall, _ := c.Assign(small)

	// Both send the huge block to the slightly faster node 0.
	if dHuge != 0 || cHuge != 0 {
		t.Fatalf("huge block went to DYRS=%d CostAware=%d, want 0/0", dHuge, cHuge)
	}
	// DYRS knows node 0 now has 2 GB of work and diverts the small block;
	// CostAware only sees one queue slot either way and keeps preferring
	// the cheaper perByte on a one-deep queue... which here is node 1 too
	// for cost (1e-8*2 vs 1.1e-8*1): 2.0e-8 > 1.1e-8 → node 1. The
	// distinction shows at equal per-byte costs:
	if dSmall != 1 {
		t.Fatalf("DYRS sent small block to %d, want 1", dSmall)
	}
	if cSmall != 1 {
		t.Fatalf("CostAware sent small block to %d, want 1", cSmall)
	}

	// Equal speeds: force 2 GB onto node 0 and 64 MB onto node 1 (one
	// slot each). DYRS weighs the accumulated bytes and diverts the next
	// standard block to node 1; CostAware sees one equal-cost slot on
	// each and falls back to the first-replica tie-break (node 0) — the
	// size-blindness the doc comment promises.
	d2 := NewDYRS()
	c2 := NewCostAware()
	eq := View{
		Nodes:    []NodeView{{Alive: true, PerByte: 1e-8}, {Alive: true, PerByte: 1e-8}},
		StdBlock: 128 * sim.MB,
	}
	onto0 := Request{Block: 0, Size: 2 * sim.GB, Replicas: []cluster.NodeID{0}}
	onto1 := Request{Block: 1, Size: 64 * sim.MB, Replicas: []cluster.NodeID{1}}
	std := Request{Block: 2, Size: 128 * sim.MB, Replicas: []cluster.NodeID{0, 1}}
	d2.Begin(eq)
	d2.Assign(onto0)
	d2.Assign(onto1)
	c2.Begin(eq)
	c2.Assign(onto0)
	c2.Assign(onto1)
	if got, _ := d2.Assign(std); got != 1 {
		t.Errorf("DYRS after huge block: target %d, want 1 (finish-aware)", got)
	}
	if got, _ := c2.Assign(std); got != 0 {
		t.Errorf("CostAware after huge block: target %d, want 0 (size-blind)", got)
	}
}

// TestIgnemUniformOverLiveReplicas checks Ignem draws only live
// replicas and reaches all of them.
func TestIgnemUniformOverLiveReplicas(t *testing.T) {
	p := NewIgnem()
	v := View{
		Nodes: []NodeView{
			{Alive: true}, {Alive: false}, {Alive: true}, {Alive: true},
		},
		StdBlock: 128 * sim.MB,
		Rand:     rand.New(rand.NewSource(42)),
	}
	p.Begin(v)
	counts := map[cluster.NodeID]int{}
	for i := 0; i < 300; i++ {
		got, ok := p.Assign(Request{Block: dfs.BlockID(i), Size: sim.MB,
			Replicas: []cluster.NodeID{0, 1, 2, 3}})
		if !ok {
			t.Fatalf("draw %d unassigned", i)
		}
		if got == 1 {
			t.Fatalf("draw %d targeted dead node 1", i)
		}
		counts[got]++
	}
	for _, n := range []cluster.NodeID{0, 2, 3} {
		if counts[n] < 50 {
			t.Errorf("node %d drawn only %d/300 times — not uniform", n, counts[n])
		}
	}
}
