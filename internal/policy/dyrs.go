package policy

import "dyrs/internal/cluster"

// DYRS is the paper's Algorithm 1: greedy earliest-finish replica
// selection. Each node's finish time is initialized from the latest
// heartbeat state to migTime × (numQueued+1); each block (in pending
// order) targets the replica location whose finish time plus this
// block's own migration time is lowest, and the chosen node's running
// finish time advances by the block — so a convoy of blocks spreads
// across replicas in proportion to their measured speed (§III-A2).
//
// This implementation is the extracted core of the pre-refactor
// DYRSBinder and is byte-identical to it: same float expressions, same
// first-wins strict-< tie-breaking, same running-finish update. The
// differential conformance suite in internal/harness pins this against
// the frozen reference binder across 60 fuzz seeds.
type DYRS struct {
	// Reusable per-pass state, indexed by dense NodeID.
	finish  []float64
	perByte []float64
	valid   []bool
}

// NewDYRS returns the DYRS earliest-finish policy.
func NewDYRS() *DYRS { return &DYRS{} }

// Name implements Policy.
func (p *DYRS) Name() string { return "DYRS" }

// Migrates implements Policy.
func (p *DYRS) Migrates() bool { return true }

// BindImmediately implements Policy: DYRS delays binding until pull.
func (p *DYRS) BindImmediately() bool { return false }

// Begin initializes the per-node finish-time estimates from the view.
func (p *DYRS) Begin(v View) {
	n := len(v.Nodes)
	if len(p.finish) < n {
		p.finish = make([]float64, n)
		p.perByte = make([]float64, n)
		p.valid = make([]bool, n)
	}
	std := float64(v.StdBlock)
	for i, nv := range v.Nodes {
		if !nv.Alive {
			p.valid[i] = false
			continue
		}
		p.perByte[i] = nv.PerByte
		p.finish[i] = nv.PerByte * std * float64(nv.Queued+1)
		p.valid[i] = true
	}
}

// Assign picks the replica with the lowest new completion time and
// advances its running finish estimate. Ties break on the first
// replica in Request order (strict <).
func (p *DYRS) Assign(req Request) (cluster.NodeID, bool) {
	best := cluster.NodeID(-1)
	bestFinish := 0.0
	size := float64(req.Size)
	for _, loc := range req.Replicas {
		if !p.valid[int(loc)] {
			continue
		}
		f := p.finish[int(loc)] + p.perByte[int(loc)]*size
		if best < 0 || f < bestFinish {
			best = loc
			bestFinish = f
		}
	}
	if best < 0 {
		return -1, false
	}
	p.finish[int(best)] = bestFinish
	return best, true
}
