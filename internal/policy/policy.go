// Package policy extracts the migration target-selection decision —
// which replica of which block should migrate to memory, and when that
// binding happens — behind a small interface, so DYRS, Ignem, HDFS and
// new heuristics are swappable implementations scored side by side
// instead of branches hard-wired into the coordinator.
//
// A policy is a pure decision function over an explicit cluster view:
// it sees per-node liveness, per-byte migration-time estimates and
// queue occupancies (exactly the heartbeat state the DYRS master holds,
// §III-A2) plus each block's live replica locations, and returns a
// target node. Policies hold no simulation references, never read the
// wall clock, and never iterate maps — given the same Begin/Assign call
// sequence they produce the same targets, which is what lets the
// migration layer keep its byte-identical determinism contract after
// the extraction (proven by the differential conformance suite in
// internal/harness).
package policy

import (
	"fmt"
	"math/rand"
	"sort"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// NodeView is one node's state as a policy pass sees it: the master's
// latest heartbeat-derived estimate. Dead nodes keep stale PerByte and
// Queued values; policies must treat Alive == false as untargetable.
type NodeView struct {
	// Alive reports whether the node is up (and not decommissioned).
	Alive bool
	// PerByte is the node's estimated migration cost in seconds per
	// byte (EWMA over completed and in-progress transfers, §IV-A).
	PerByte float64
	// Queued is the node's migration queue occupancy (queued + active).
	Queued int
}

// View is the cluster state one assignment pass reads. The Nodes slice
// is dense, indexed by cluster.NodeID, and is only valid during the
// pass — policies must copy anything they keep.
type View struct {
	// Nodes holds the per-node states, indexed by NodeID.
	Nodes []NodeView
	// StdBlock is the file system's configured block size; DYRS
	// initializes per-node finish times in units of standard blocks.
	StdBlock sim.Bytes
	// Rand is the engine-seeded deterministic stream for randomized
	// policies (Ignem). Deterministic policies must not touch it.
	Rand *rand.Rand
}

// Request is one block awaiting a target. Replicas lists the block's
// live replica locations in the file system's stored order; the slice
// is reused between calls and must not be retained.
type Request struct {
	Block    dfs.BlockID
	Size     sim.Bytes
	Replicas []cluster.NodeID
}

// Policy is a migration target-selection strategy. One assignment pass
// is a Begin call followed by an Assign per pending block, in pending
// order; Begin resets any per-pass state (running finish times, pass
// load) from the view.
//
// Implementations must be deterministic: identical views and request
// sequences yield identical targets (randomized policies draw only
// from View.Rand), ties break on the first replica in Request order,
// and dead nodes are never targeted.
type Policy interface {
	// Name identifies the policy in tables, repro lines and -policy flags.
	Name() string
	// Migrates reports whether the policy migrates at all. HDFS returns
	// false: callers run no migration framework for such policies.
	Migrates() bool
	// BindImmediately reports whether blocks bind to their target the
	// moment they are requested (Ignem) instead of staying pending at
	// the master until a slave pulls (DYRS).
	BindImmediately() bool
	// Begin starts an assignment pass over the view.
	Begin(v View)
	// Assign picks the target for one request. ok is false when no
	// live replica is targetable; the block then stays untargeted.
	Assign(req Request) (target cluster.NodeID, ok bool)
}

// New returns the named policy. Accepted names are Names().
func New(name string) (Policy, error) {
	switch name {
	case "dyrs":
		return NewDYRS(), nil
	case "ignem":
		return NewIgnem(), nil
	case "hdfs":
		return NewHDFS(), nil
	case "costaware":
		return NewCostAware(), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (valid: %v)", name, Names())
}

// Names lists the registered policy names, sorted.
func Names() []string {
	names := []string{"dyrs", "ignem", "hdfs", "costaware"}
	sort.Strings(names)
	return names
}
