package policy

import (
	"math/rand"
	"testing"

	"dyrs/internal/cluster"
	"dyrs/internal/dfs"
	"dyrs/internal/sim"
)

// allPolicies builds one fresh instance of every registered policy.
// Table-driven contract tests iterate this list, so a new policy is
// covered by adding its name to Names().
func allPolicies(t *testing.T) []Policy {
	t.Helper()
	var out []Policy
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out = append(out, p)
	}
	return out
}

// contractView is a 6-node cluster with heterogeneous speeds and two
// dead nodes (2 and 5).
func contractView(seed int64) View {
	return View{
		Nodes: []NodeView{
			{Alive: true, PerByte: 1e-8, Queued: 0},
			{Alive: true, PerByte: 2e-8, Queued: 3},
			{Alive: false, PerByte: 1e-9, Queued: 0}, // dead but tempting
			{Alive: true, PerByte: 5e-8, Queued: 1},
			{Alive: true, PerByte: 1e-8, Queued: 2},
			{Alive: false, PerByte: 1e-9, Queued: 0}, // dead but tempting
		},
		StdBlock: 128 * sim.MB,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// contractRequests is a fixed request sequence whose replica lists
// deliberately include the dead nodes.
func contractRequests() []Request {
	reps := [][]cluster.NodeID{
		{0, 2, 4}, {1, 3, 5}, {2, 5, 0}, {3, 4, 1}, {2, 5}, // only dead replicas
		{4, 0, 1}, {0, 1, 3}, {5, 2, 4},
	}
	var out []Request
	for i, r := range reps {
		out = append(out, Request{
			Block:    dfs.BlockID(i),
			Size:     sim.Bytes(64+32*i) * sim.MB,
			Replicas: r,
		})
	}
	return out
}

// runPass executes one Begin+Assign pass and returns the per-request
// targets (-1 for "no target").
func runPass(p Policy, v View, reqs []Request) []cluster.NodeID {
	p.Begin(v)
	out := make([]cluster.NodeID, len(reqs))
	for i, req := range reqs {
		target, ok := p.Assign(req)
		if !ok {
			target = -1
		}
		out[i] = target
	}
	return out
}

// TestPolicyContract is the table-driven suite every implementation
// must pass: deterministic assignment, targets drawn from the request's
// replica list, dead nodes never targeted, graceful no-replica
// handling, and Migrates/BindImmediately consistency.
func TestPolicyContract(t *testing.T) {
	for _, p := range allPolicies(t) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			reqs := contractRequests()

			// Determinism: the same view and request sequence (and, for
			// randomized policies, the same seeded stream) must produce
			// identical targets, every time.
			first := runPass(p, contractView(7), reqs)
			for run := 0; run < 3; run++ {
				again := runPass(p, contractView(7), reqs)
				for i := range first {
					if first[i] != again[i] {
						t.Fatalf("run %d: request %d target %d != first run's %d",
							run, i, again[i], first[i])
					}
				}
			}

			// A fresh instance of the same policy must agree too: no
			// hidden state may leak across passes.
			fresh, err := New(nameKey(p))
			if err != nil {
				t.Fatal(err)
			}
			freshTargets := runPass(fresh, contractView(7), reqs)
			for i := range first {
				if first[i] != freshTargets[i] {
					t.Fatalf("fresh instance diverged at request %d: %d != %d",
						i, freshTargets[i], first[i])
				}
			}

			v := contractView(7)
			for i, target := range first {
				if target < 0 {
					continue
				}
				// Targets must come from the request's replica list.
				found := false
				for _, loc := range reqs[i].Replicas {
					if loc == target {
						found = true
					}
				}
				if !found {
					t.Errorf("request %d targeted %d, not a replica of %v",
						i, target, reqs[i].Replicas)
				}
				// Dead nodes are never targetable.
				if !v.Nodes[int(target)].Alive {
					t.Errorf("request %d targeted dead node %d", i, target)
				}
			}

			// The all-dead-replicas request must decline.
			if first[4] != -1 {
				t.Errorf("request with only dead replicas got target %d", first[4])
			}
			// Empty replica lists must decline.
			p.Begin(contractView(7))
			if target, ok := p.Assign(Request{Block: 99, Size: sim.MB}); ok {
				t.Errorf("empty replica list got target %d", target)
			}

			// A policy that does not migrate must never assign; one that
			// does must assign at least one of the contract requests.
			assigned := 0
			for _, target := range first {
				if target >= 0 {
					assigned++
				}
			}
			if p.Migrates() && assigned == 0 {
				t.Error("migrating policy assigned nothing")
			}
			if !p.Migrates() && assigned != 0 {
				t.Errorf("non-migrating policy assigned %d blocks", assigned)
			}
			if !p.Migrates() && p.BindImmediately() {
				t.Error("non-migrating policy claims immediate binding")
			}
		})
	}
}

// nameKey maps a policy instance back to its registry key.
func nameKey(p Policy) string {
	switch p.Name() {
	case "DYRS":
		return "dyrs"
	case "Ignem":
		return "ignem"
	case "HDFS":
		return "hdfs"
	case "CostAware":
		return "costaware"
	}
	return ""
}

// TestPolicyContractTieBreaking pins the deterministic tie-break rule:
// with every node identical, the deterministic policies take the first
// replica in request order (strict-< comparison), for every block.
func TestPolicyContractTieBreaking(t *testing.T) {
	uniform := View{
		Nodes: []NodeView{
			{Alive: true, PerByte: 1e-8}, {Alive: true, PerByte: 1e-8},
			{Alive: true, PerByte: 1e-8}, {Alive: true, PerByte: 1e-8},
		},
		StdBlock: 128 * sim.MB,
		Rand:     rand.New(rand.NewSource(1)),
	}
	for _, p := range allPolicies(t) {
		if !p.Migrates() || p.BindImmediately() {
			continue // HDFS assigns nothing; Ignem breaks ties randomly
		}
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			p.Begin(uniform)
			// Distinct blocks with disjoint replica lists: each must take
			// its first-listed replica.
			cases := []Request{
				{Block: 0, Size: 128 * sim.MB, Replicas: []cluster.NodeID{2, 1, 3}},
				{Block: 1, Size: 128 * sim.MB, Replicas: []cluster.NodeID{1, 0}},
			}
			want := []cluster.NodeID{2, 1}
			for i, req := range cases {
				got, ok := p.Assign(req)
				if !ok || got != want[i] {
					t.Errorf("block %d: got (%d, %v), want first replica %d",
						req.Block, got, ok, want[i])
				}
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v, want 4 entries", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New(\"nope\") succeeded")
	}
	for _, name := range names {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if nameKey(p) != name {
			t.Errorf("New(%q).Name() = %q, which maps back to %q", name, p.Name(), nameKey(p))
		}
	}
}
