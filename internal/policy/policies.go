package policy

import (
	"math/rand"

	"dyrs/internal/cluster"
)

// Ignem implements the Ignem comparison scheme [8]: every block binds
// immediately to a uniformly random live replica. No pending list, no
// feedback, no adaptation — which is exactly why it collapses under
// bandwidth heterogeneity (§V-E, Fig. 8).
type Ignem struct {
	rand  *rand.Rand
	alive []bool
	buf   []cluster.NodeID
}

// NewIgnem returns the random-immediate-binding policy.
func NewIgnem() *Ignem { return &Ignem{} }

// Name implements Policy.
func (p *Ignem) Name() string { return "Ignem" }

// Migrates implements Policy.
func (p *Ignem) Migrates() bool { return true }

// BindImmediately implements Policy: Ignem never delays binding.
func (p *Ignem) BindImmediately() bool { return true }

// Begin captures the liveness view and the deterministic random stream.
func (p *Ignem) Begin(v View) {
	p.rand = v.Rand
	if len(p.alive) < len(v.Nodes) {
		p.alive = make([]bool, len(v.Nodes))
	}
	for i, nv := range v.Nodes {
		p.alive[i] = nv.Alive
	}
}

// Assign picks a uniformly random live replica.
func (p *Ignem) Assign(req Request) (cluster.NodeID, bool) {
	p.buf = p.buf[:0]
	for _, loc := range req.Replicas {
		if p.alive[int(loc)] {
			p.buf = append(p.buf, loc)
		}
	}
	if len(p.buf) == 0 {
		return -1, false
	}
	return p.buf[p.rand.Intn(len(p.buf))], true
}

// HDFS is the no-migration baseline: plain disk reads. It exists so the
// baseline is a registry entry like every competitor; callers see
// Migrates() == false and run no migration framework at all.
type HDFS struct{}

// NewHDFS returns the no-migration baseline policy.
func NewHDFS() HDFS { return HDFS{} }

// Name implements Policy.
func (HDFS) Name() string { return "HDFS" }

// Migrates implements Policy.
func (HDFS) Migrates() bool { return false }

// BindImmediately implements Policy.
func (HDFS) BindImmediately() bool { return false }

// Begin implements Policy.
func (HDFS) Begin(View) {}

// Assign implements Policy: HDFS never targets anything.
func (HDFS) Assign(Request) (cluster.NodeID, bool) { return -1, false }

// CostAware is the new heuristic this lab adds: each block targets the
// replica with the lowest marginal migration cost
//
//	perByte × size × (queued + assignedThisPass + 1)
//
// i.e. the block's own transfer time scaled by how deep it would sit in
// the node's queue. Unlike DYRS it keeps no running finish-time in
// seconds — only a per-pass slot count — so a node that received one
// huge block earlier in the pass looks as loaded as one that received a
// small block. The comparison quantifies how much of DYRS's win comes
// from true finish-time accounting versus mere queue-depth spreading.
type CostAware struct {
	perByte []float64
	load    []int
	valid   []bool
}

// NewCostAware returns the marginal-cost heuristic.
func NewCostAware() *CostAware { return &CostAware{} }

// Name implements Policy.
func (p *CostAware) Name() string { return "CostAware" }

// Migrates implements Policy.
func (p *CostAware) Migrates() bool { return true }

// BindImmediately implements Policy: delayed binding, like DYRS.
func (p *CostAware) BindImmediately() bool { return false }

// Begin snapshots per-node costs and queue depths.
func (p *CostAware) Begin(v View) {
	n := len(v.Nodes)
	if len(p.load) < n {
		p.perByte = make([]float64, n)
		p.load = make([]int, n)
		p.valid = make([]bool, n)
	}
	for i, nv := range v.Nodes {
		if !nv.Alive {
			p.valid[i] = false
			continue
		}
		p.perByte[i] = nv.PerByte
		p.load[i] = nv.Queued
		p.valid[i] = true
	}
}

// Assign picks the replica with the lowest marginal cost; ties break on
// the first replica in Request order (strict <).
func (p *CostAware) Assign(req Request) (cluster.NodeID, bool) {
	best := cluster.NodeID(-1)
	bestCost := 0.0
	size := float64(req.Size)
	for _, loc := range req.Replicas {
		if !p.valid[int(loc)] {
			continue
		}
		cost := p.perByte[int(loc)] * size * float64(p.load[int(loc)]+1)
		if best < 0 || cost < bestCost {
			best = loc
			bestCost = cost
		}
	}
	if best < 0 {
		return -1, false
	}
	p.load[int(best)]++
	return best, true
}
