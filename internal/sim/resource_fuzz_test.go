package sim

import (
	"testing"
	"time"
)

// FuzzResourceModel drives the optimized fair-share resource and the
// reference-mode implementation (Engine.SetReferenceResources) in
// lockstep through a byte-program of admissions, weighted admissions,
// persistent loads, cancellations, capacity changes, clock advances and
// accounting probes — and demands bit-identical observables after every
// op: completion log (ids and timestamps), BytesMoved, BusyTime and the
// active flow count. The two implementations share their float
// arithmetic, so any divergence is a structural bug in the finish-tag
// heap, the flush coalescing, the completion cascade or the flow pool.
//
// Weights and scales are dyadic so the incremental weight total is exact;
// sizes are arbitrary multiples of 128KB (bit-identity does not depend on
// "nice" sizes, only the weight algebra does).
func FuzzResourceModel(f *testing.F) {
	f.Add([]byte{})
	// Admit, run to completion, admit again (pool reuse on the second).
	f.Add([]byte{0, 10, 5, 200, 0, 11, 5, 200})
	// Burst of same-instant admissions, then a cancel storm.
	f.Add([]byte{0, 1, 0, 2, 0, 3, 2, 0, 1, 4, 3, 0, 3, 0, 5, 60, 3, 0})
	// Scale churn around persistent loads with sub-ms advances.
	f.Add([]byte{2, 1, 7, 3, 6, 9, 0, 7, 6, 50, 7, 1, 5, 100, 3, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		engO := NewEngine(7)
		engR := NewEngine(7)
		engR.SetReferenceResources(true)
		rO := NewResource(engO, "opt", 96*float64(MB), SeekEfficiency(0.2))
		rR := NewResource(engR, "ref", 96*float64(MB), SeekEfficiency(0.2))

		type rec struct {
			id int
			at Time
		}
		var doneO, doneR []rec
		var handlesO, handlesR []*Flow
		var live []int // ids both sides believe active, admission-ordered

		dropLive := func(id int) {
			for i, l := range live {
				if l == id {
					live = append(live[:i], live[i+1:]...)
					return
				}
			}
		}
		weights := [...]float64{0.25, 0.5, 1, 2, 4}
		scales := [...]float64{0.25, 0.5, 1, 2}
		admit := func(size Bytes, w float64) {
			id := len(handlesO)
			var fo, fr *Flow
			if size > 0 {
				fo = rO.StartWeighted(size, w, func(*Flow) {
					doneO = append(doneO, rec{id, engO.Now()})
					dropLive(id)
				})
				fr = rR.StartWeighted(size, w, func(*Flow) {
					doneR = append(doneR, rec{id, engR.Now()})
				})
			} else {
				fo, fr = rO.StartLoad(w), rR.StartLoad(w)
			}
			handlesO, handlesR = append(handlesO, fo), append(handlesR, fr)
			live = append(live, id)
		}

		check := func(op int) {
			if g, w := rO.BytesMoved(), rR.BytesMoved(); g != w {
				t.Fatalf("op %d: BytesMoved %d vs reference %d", op, g, w)
			}
			if g, w := rO.BusyTime(), rR.BusyTime(); g != w {
				t.Fatalf("op %d: BusyTime %v vs reference %v", op, g, w)
			}
			if g, w := rO.ActiveFlows(), rR.ActiveFlows(); g != w {
				t.Fatalf("op %d: ActiveFlows %d vs reference %d", op, g, w)
			}
			if len(doneO) != len(doneR) {
				t.Fatalf("op %d: %d completions vs reference %d", op, len(doneO), len(doneR))
			}
			for i := range doneO {
				if doneO[i] != doneR[i] {
					t.Fatalf("op %d: completion %d: flow %d at %v vs reference flow %d at %v",
						op, i, doneO[i].id, doneO[i].at, doneR[i].id, doneR[i].at)
				}
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			arg := int(data[i+1])
			switch data[i] % 8 {
			case 0, 1: // finite admission, dyadic weight
				admit(Bytes(1+arg)*128*KB, weights[arg%len(weights)])
			case 2: // persistent load
				admit(0, weights[arg%len(weights)])
			case 3: // cancel a live flow (both sides, same id)
				if len(live) > 0 {
					id := live[arg%len(live)]
					dropLive(id)
					handlesO[id].Cancel()
					handlesR[id].Cancel()
				}
			case 4: // double-cancel / stale-cancel hardening on a cancelled flow
				if len(handlesO) > 0 {
					id := arg % len(handlesO)
					stillLive := false
					for _, l := range live {
						if l == id {
							stillLive = true
						}
					}
					// Only re-cancel flows that ended by cancellation: a
					// completed flow's handle is pooled and may already be a
					// different admission (the documented Event-like
					// contract), so the model itself must not poke it.
					if !stillLive && !handlesO[id].Active() && handlesO[id].Size() == 0 {
						handlesO[id].Cancel()
						handlesR[id].Cancel()
					}
				}
			case 5: // coarse clock advance
				d := Duration(arg) * time.Millisecond
				engO.RunFor(d)
				engR.RunFor(d)
			case 6: // fine clock advance (sub-ms, splits accrual intervals)
				d := Duration(arg) * 37 * time.Microsecond
				engO.RunFor(d)
				engR.RunFor(d)
			case 7: // capacity change
				s := scales[arg%len(scales)]
				rO.SetScale(s)
				rR.SetScale(s)
			}
			check(i)
		}

		// Drain: every finite flow completes, persistent loads keep the
		// resource busy; then compare the full history one last time.
		engO.RunFor(time.Hour)
		engR.RunFor(time.Hour)
		check(len(data))
		for _, id := range live {
			if handlesO[id].Active() != handlesR[id].Active() {
				t.Fatalf("flow %d: Active %v vs reference %v", id, handlesO[id].Active(), handlesR[id].Active())
			}
		}
	})
}
