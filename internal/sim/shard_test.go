package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// pinnedModel schedules a self-similar cascade of events on a single
// engine, logging (time, tag) so two executions can be compared
// byte-for-byte. It exercises Schedule, At, Cancel, the RNG stream and
// Stop — everything a real pinned model uses.
func pinnedModel(eng *Engine, log *[]string) {
	var tick func(depth int)
	tick = func(depth int) {
		*log = append(*log, fmt.Sprintf("%d@%v r%d", depth, eng.Now(), eng.Rand().Intn(1000)))
		if depth >= 6 {
			return
		}
		n := 1 + eng.Rand().Intn(3)
		for i := 0; i < n; i++ {
			d := Duration(1+eng.Rand().Intn(5000)) * time.Millisecond
			eng.Schedule(d, func() { tick(depth + 1) })
		}
		// Schedule-then-cancel keeps the tombstone machinery honest.
		ev := eng.Schedule(time.Second, func() { *log = append(*log, "cancelled-ran!") })
		eng.Cancel(ev)
	}
	eng.Schedule(0, func() { tick(0) })
}

// TestShardedSoloMatchesSequential proves the solo fast path: a model
// pinned to shard 0 of a multi-shard engine must produce the identical
// event log, clock, RNG stream and event count as a standalone Engine.
func TestShardedSoloMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		ref := NewEngine(99)
		var refLog []string
		pinnedModel(ref, &refLog)
		ref.Run()

		se := NewShardedEngine(99, shards, time.Millisecond)
		var log []string
		pinnedModel(se.Shard(0), &log)
		se.Run()

		if !reflect.DeepEqual(refLog, log) {
			t.Fatalf("shards=%d: event log diverged from sequential\nref: %v\ngot: %v", shards, refLog, log)
		}
		if se.Shard(0).Now() != ref.Now() {
			t.Fatalf("shards=%d: clock %v != sequential %v", shards, se.Shard(0).Now(), ref.Now())
		}
		if se.Shard(0).EventsFired() != ref.EventsFired() {
			t.Fatalf("shards=%d: fired %d != sequential %d", shards, se.Shard(0).EventsFired(), ref.EventsFired())
		}
	}
}

// TestShardedRunUntilMatchesSequential checks bounded runs, including
// the final clock advance to the target.
func TestShardedRunUntilMatchesSequential(t *testing.T) {
	ref := NewEngine(7)
	var refLog []string
	pinnedModel(ref, &refLog)
	ref.RunUntil(Time(3 * time.Second))

	se := NewShardedEngine(7, 4, time.Millisecond)
	var log []string
	pinnedModel(se.Shard(0), &log)
	se.RunUntil(Time(3 * time.Second))

	if !reflect.DeepEqual(refLog, log) {
		t.Fatalf("bounded event log diverged\nref: %v\ngot: %v", refLog, log)
	}
	if got, want := se.Shard(0).Now(), ref.Now(); got != want {
		t.Fatalf("clock after RunUntil: %v != %v", got, want)
	}
	for i := 0; i < se.Shards(); i++ {
		if se.Shard(i).Now() != Time(3*time.Second) {
			t.Fatalf("shard %d clock %v not advanced to target", i, se.Shard(i).Now())
		}
	}
}

// pholdModel is a PHOLD-style workload over every shard: each shard
// runs a population of jobs that do local work and occasionally hop to
// a neighbor shard via Send. Each shard logs only its own executions
// (shard-owned state), so the model is race-free by construction.
type pholdModel struct {
	se   *ShardedEngine
	logs [][]string
}

func newPholdModel(se *ShardedEngine, jobsPerShard int) *pholdModel {
	m := &pholdModel{se: se, logs: make([][]string, se.Shards())}
	for i := 0; i < se.Shards(); i++ {
		sh := se.Shard(i)
		for j := 0; j < jobsPerShard; j++ {
			id := fmt.Sprintf("j%d.%d", i, j)
			sh.Schedule(Duration(j+1)*time.Millisecond, func() { m.hop(sh.ShardID(), id, 0) })
		}
	}
	return m
}

func (m *pholdModel) hop(shard int, id string, depth int) {
	sh := m.se.Shard(shard)
	m.logs[shard] = append(m.logs[shard], fmt.Sprintf("%s d%d@%v r%d", id, depth, sh.Now(), sh.Rand().Intn(1000)))
	if depth >= 12 {
		return
	}
	if sh.Rand().Intn(3) == 0 {
		// Cross-shard hop: land on a neighbor no earlier than lookahead.
		dst := (shard + 1 + sh.Rand().Intn(m.se.Shards()-1)) % m.se.Shards()
		d := m.se.Lookahead() + Duration(sh.Rand().Intn(2000))*time.Microsecond
		sh.Send(dst, d, func() { m.hop(dst, id, depth+1) })
		return
	}
	sh.Schedule(Duration(1+sh.Rand().Intn(700))*time.Microsecond, func() { m.hop(shard, id, depth+1) })
}

func (m *pholdModel) flat() []string {
	var all []string
	for _, l := range m.logs {
		all = append(all, l...)
	}
	return all
}

// TestShardedWorkerInvariance is the core determinism guarantee: the
// same multi-shard model run at worker counts {1, 2, 4, 8} must yield
// identical per-shard logs, digests, clocks and event counts. Workers=1
// is the sequential reference order; run under -race this also proves
// the parallel rounds are properly synchronized.
func TestShardedWorkerInvariance(t *testing.T) {
	type result struct {
		logs   [][]string
		digest uint64
		fired  uint64
		clocks []Time
	}
	run := func(workers int) result {
		se := NewShardedEngine(1234, 4, 500*time.Microsecond)
		se.SetWorkers(workers)
		m := newPholdModel(se, 8)
		se.Run()
		var clocks []Time
		for i := 0; i < se.Shards(); i++ {
			clocks = append(clocks, se.Shard(i).Now())
		}
		return result{logs: m.logs, digest: se.Digest(), fired: se.EventsFired(), clocks: clocks}
	}
	ref := run(1)
	if ref.fired == 0 {
		t.Fatal("model fired no events")
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.digest != ref.digest {
			t.Errorf("workers=%d: digest %x != reference %x", workers, got.digest, ref.digest)
		}
		if got.fired != ref.fired {
			t.Errorf("workers=%d: fired %d != reference %d", workers, got.fired, ref.fired)
		}
		if !reflect.DeepEqual(got.logs, ref.logs) {
			t.Errorf("workers=%d: per-shard logs diverged from workers=1", workers)
		}
		if !reflect.DeepEqual(got.clocks, ref.clocks) {
			t.Errorf("workers=%d: clocks %v != reference %v", workers, got.clocks, ref.clocks)
		}
	}
}

// TestShardedRunUntilWorkerInvariance runs the PHOLD model in bounded
// slices (exercising window clamping and the clock advance) and
// demands the same invariance.
func TestShardedRunUntilWorkerInvariance(t *testing.T) {
	run := func(workers int) ([][]string, uint64) {
		se := NewShardedEngine(4321, 4, 500*time.Microsecond)
		se.SetWorkers(workers)
		m := newPholdModel(se, 6)
		for i := 1; i <= 5; i++ {
			se.RunUntil(Time(i) * Time(20*time.Millisecond))
		}
		se.Run()
		return m.logs, se.Digest()
	}
	refLogs, refDigest := run(1)
	for _, workers := range []int{2, 4} {
		logs, digest := run(workers)
		if digest != refDigest {
			t.Errorf("workers=%d: digest %x != reference %x", workers, digest, refDigest)
		}
		if !reflect.DeepEqual(logs, refLogs) {
			t.Errorf("workers=%d: logs diverged", workers)
		}
	}
}

// TestShardedMergeOrder pins the deterministic merge rule directly:
// messages from several sources arriving at the same destination
// instant must run in (source shard, send index) order, after any
// same-instant event the destination scheduled itself in an earlier
// window.
func TestShardedMergeOrder(t *testing.T) {
	const look = Duration(time.Millisecond)
	se := NewShardedEngine(1, 4, look)
	var order []string
	arrival := Time(0).Add(look) // all sends below land exactly here

	// Destination shard 0 schedules its own event at the arrival instant
	// first — it must keep winning the (time, seq) tie against delivered
	// messages because its seq predates every delivery.
	se.Shard(0).At(arrival, func() { order = append(order, "local") })
	// Sources 2, 3, 1 each stage two messages at time 0; delivery must
	// be by source index then send order, not by the order staged here.
	for _, src := range []int{2, 3, 1} {
		sh := se.Shard(src)
		for k := 0; k < 2; k++ {
			src, k := src, k
			sh.Schedule(0, func() {
				sh.Send(0, look, func() { order = append(order, fmt.Sprintf("s%d.%d", src, k)) })
			})
		}
	}
	se.Run()
	want := []string{"local", "s1.0", "s1.1", "s2.0", "s2.1", "s3.0", "s3.1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("merge order = %v, want %v", order, want)
	}
}

// TestShardedSameShardSendIsLocal checks Send to the engine's own shard
// has no lookahead floor and standalone engines accept Send(0, ...).
func TestShardedSameShardSendIsLocal(t *testing.T) {
	se := NewShardedEngine(5, 2, time.Second)
	ran := false
	se.Shard(1).Send(1, time.Microsecond, func() { ran = true }) // below lookahead: fine, local
	se.Run()
	if !ran {
		t.Fatal("same-shard Send did not run")
	}

	eng := NewEngine(5)
	ran = false
	eng.Send(0, time.Microsecond, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("standalone Send(0) did not run")
	}
}

func TestShardedSendPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	se := NewShardedEngine(5, 2, time.Second)
	mustPanic("below-lookahead cross-shard send", func() {
		se.Shard(0).Send(1, time.Millisecond, func() {})
	})
	mustPanic("send to out-of-range shard", func() {
		se.Shard(0).Send(7, time.Second, func() {})
	})
	eng := NewEngine(5)
	mustPanic("standalone send to nonzero shard", func() {
		eng.Send(1, time.Second, func() {})
	})
	mustPanic("zero lookahead", func() { NewShardedEngine(5, 2, 0) })
	mustPanic("zero shards", func() { NewShardedEngine(5, 0, time.Second) })
}

// TestShardedStop checks Stop semantics: a stop requested mid-run
// halts every shard and leaves clocks un-advanced past the stop point.
func TestShardedStop(t *testing.T) {
	se := NewShardedEngine(2, 2, time.Millisecond)
	fired := 0
	se.Shard(0).Schedule(time.Second, func() { fired++; se.Stop() })
	se.Shard(0).Schedule(2*time.Second, func() { fired++ })
	se.Shard(1).Schedule(3*time.Second, func() { fired++ })
	se.RunUntil(Time(10 * time.Second))
	if fired != 1 {
		t.Fatalf("fired %d events after Stop, want 1", fired)
	}
	if se.Shard(0).Now() >= Time(2*time.Second) {
		t.Fatalf("clock advanced past stop point: %v", se.Shard(0).Now())
	}
	// A later Run resumes and drains the remaining events.
	se.Run()
	if fired != 3 {
		t.Fatalf("resume fired %d total, want 3", fired)
	}
}

// TestShardedShardsOneIsPlainEngine: a single-shard coordinator must
// not attach parallel machinery at all.
func TestShardedShardsOneIsPlainEngine(t *testing.T) {
	se := NewShardedEngine(3, 1, time.Millisecond)
	if se.Shard(0).Sharded() != nil {
		t.Fatal("shards=1 engine should have no parent coordinator")
	}
	ran := false
	se.Shard(0).Schedule(time.Second, func() { ran = true })
	se.Shard(0).Run() // runs directly, no delegation
	if !ran {
		t.Fatal("shards=1 engine did not run")
	}
}

// TestShardedSeedDecorrelation: shard 0 keeps the root seed (so pinned
// models match NewEngine exactly); other shards draw distinct streams.
func TestShardedSeedDecorrelation(t *testing.T) {
	se := NewShardedEngine(42, 3, time.Millisecond)
	ref := NewEngine(42)
	if got, want := se.Shard(0).Rand().Int63(), ref.Rand().Int63(); got != want {
		t.Fatalf("shard 0 RNG stream %d != NewEngine stream %d", got, want)
	}
	a, b := se.Shard(1).Rand().Int63(), se.Shard(2).Rand().Int63()
	if a == b {
		t.Fatalf("shards 1 and 2 drew identical first values %d — streams correlated", a)
	}
}

// TestShardedResourceFlows runs Resources (the fluid-flow model) on
// multiple shards concurrently and checks worker invariance of the
// completion order — the model every real partition is built from.
func TestShardedResourceFlows(t *testing.T) {
	run := func(workers int) ([][]string, uint64) {
		se := NewShardedEngine(77, 3, time.Millisecond)
		se.SetWorkers(workers)
		logs := make([][]string, 3)
		for i := 0; i < 3; i++ {
			i := i
			sh := se.Shard(i)
			disk := NewResource(sh, fmt.Sprintf("disk%d", i), 130e6, FlatEfficiency)
			for j := 0; j < 20; j++ {
				j := j
				sh.Schedule(Duration(j)*37*time.Millisecond, func() {
					size := Bytes(1+sh.Rand().Intn(64)) * MB
					disk.Start(size, func(f *Flow) {
						logs[i] = append(logs[i], fmt.Sprintf("f%d.%d@%v", i, j, sh.Now()))
						if j%5 == 0 {
							dst := (i + 1) % 3
							sh.Send(dst, time.Millisecond, func() {
								logs[dst] = append(logs[dst], fmt.Sprintf("ping%d.%d@%v", i, j, se.Shard(dst).Now()))
							})
						}
					})
				})
			}
		}
		se.Run()
		return logs, se.Digest()
	}
	refLogs, refDigest := run(1)
	if len(refLogs[0]) == 0 {
		t.Fatal("no flows completed")
	}
	for _, workers := range []int{2, 3} {
		logs, digest := run(workers)
		if digest != refDigest {
			t.Errorf("workers=%d: digest mismatch", workers)
		}
		if !reflect.DeepEqual(logs, refLogs) {
			t.Errorf("workers=%d: flow logs diverged", workers)
		}
	}
}
