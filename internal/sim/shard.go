package sim

import (
	"fmt"
	"math/rand"
)

// This file implements parallel-in-virtual-time execution: a
// ShardedEngine coordinates N shard Engines that advance concurrently
// under conservative synchronization, with a determinism contract that
// is *byte-identical* to sequential execution regardless of worker
// count or thread scheduling.
//
// # Model
//
// Each shard is a full Engine — private event queue, sequence counter,
// clock, RNG stream and free pool — that owns the model state homed on
// its partition (e.g. the Resources and DataNodes of one rack). Local
// scheduling (Schedule/At/Cancel/Ticker) is unchanged. The ONLY way
// state on another shard may be touched is Engine.Send, which stages a
// timestamped message for the destination shard.
//
// # Conservative windows
//
// Execution proceeds in rounds. Each round the coordinator computes
//
//	T   = min over shards of the next live event time
//	cap = T + lookahead - 1
//
// and every shard executes its local events with at <= cap — in
// parallel, on up to Workers goroutines. Because a cross-shard message
// sent at time s arrives no earlier than s + lookahead > cap, no event
// executed inside the window can affect another shard within the same
// window: windows are causally closed, which is exactly the
// Chandy-Misra-Bryant lookahead argument. The window sequence is a pure
// function of virtual-time state, so it is identical at any worker
// count.
//
// # Deterministic merge
//
// At the barrier after each round, staged messages are delivered in a
// fixed order: source shards in index order, each source's messages in
// send order. Delivery schedules the callback on the destination's own
// queue, so a delivered message gets the destination's next sequence
// numbers in that fixed order. Together with the queue's strict
// (time, seq) pop order this realizes the merge rule "virtual time,
// then stable sequence number": messages with distinct arrival times
// order by time; same-instant messages order by (source shard, send
// index); and messages always sort after same-instant events the
// destination had already scheduled in an earlier window — all
// independent of thread scheduling.
//
// # Solo fast path
//
// When exactly one shard has pending events and no messages are in
// flight — in particular for every model that pins itself to shard 0
// and never calls Send — the coordinator runs that shard directly on
// the calling goroutine with the sequential engine's loop. The only
// per-event additions are the execution digest fold and a check of the
// (empty) outbox, so a pinned model costs the same as a standalone
// Engine and produces the identical event order, RNG stream, trace
// bytes and counters.
type ShardedEngine struct {
	shards    []*Engine
	lookahead Duration
	workers   int

	// Round state shared with workers. windowCap is written by the
	// coordinator strictly before the round's work is handed out and read
	// by workers only for shards received from the work channel, so every
	// access is ordered by a channel operation.
	windowCap Time
	busy      []*Engine
	work      chan *Engine  //lint:shardsync coordinator->worker handoff
	done      chan struct{} //lint:shardsync worker->coordinator barrier
	running   bool

	prof       ShardProfile
	profBefore []uint64 // fired-count snapshot scratch, indexed by shard
}

// ShardProfile is the coordinator's per-shard execution accounting:
// how rounds split between the solo fast path and coordinated windows,
// how often each shard participated in a window versus stalled on
// lookahead (was busy but its next event lay beyond the window cap, so
// it burned a barrier without executing anything), how many events each
// shard executed inside coordinated windows, and the cross-shard
// message volume per (source, destination) edge. Every field is
// maintained by the coordinator goroutine only — stall and send counts
// are pure functions of virtual-time state, so the profile is identical
// at any worker count.
type ShardProfile struct {
	Rounds       uint64     // coordinated (multi-shard) windows run
	SoloRounds   uint64     // solo fast-path entries
	SoloExecuted uint64     // events executed on the solo path
	Windows      []uint64   // per shard: coordinated windows it was busy in
	Stalled      []uint64   // per shard: windows it was busy but executed nothing
	Executed     []uint64   // per shard: events executed in coordinated windows
	Sends        [][]uint64 // [src][dst] cross-shard messages delivered
	Delivered    uint64     // total cross-shard messages delivered
}

// SoloRate reports the fraction of rounds served by the solo fast path
// (0 when no rounds ran).
func (p *ShardProfile) SoloRate() float64 {
	total := p.Rounds + p.SoloRounds
	if total == 0 {
		return 0
	}
	return float64(p.SoloRounds) / float64(total)
}

// StallRate reports the fraction of shard-window participations that
// stalled on lookahead (0 when no windows ran).
func (p *ShardProfile) StallRate() float64 {
	var windows, stalled uint64
	for i := range p.Windows {
		windows += p.Windows[i]
		stalled += p.Stalled[i]
	}
	if windows == 0 {
		return 0
	}
	return float64(stalled) / float64(windows)
}

// Profile returns a snapshot copy of the coordinator's execution
// profile. Call it between Run calls (or after Run returns); the
// coordinator owns the live counters while running.
func (se *ShardedEngine) Profile() ShardProfile {
	p := se.prof
	p.Windows = append([]uint64(nil), se.prof.Windows...)
	p.Stalled = append([]uint64(nil), se.prof.Stalled...)
	p.Executed = append([]uint64(nil), se.prof.Executed...)
	p.Sends = make([][]uint64, len(se.prof.Sends))
	for i, row := range se.prof.Sends {
		p.Sends[i] = append([]uint64(nil), row...)
	}
	return p
}

// outMsg is one staged cross-shard message: run fn on shard dst at
// virtual time at. Messages stage in the sending shard's private outbox
// (only its own worker appends) and are merged at the next barrier.
type outMsg struct {
	dst int
	at  Time
	fn  func()
}

// maxOutbox bounds a shard's staged messages per window. A window is at
// most lookahead long, so any model that trips this is sending orders
// of magnitude more control traffic than virtual time can deliver —
// almost certainly a runaway send loop.
const maxOutbox = 1 << 22

// shardSeedMix decorrelates per-shard RNG streams; shard 0 keeps the
// root seed so a pinned model draws the exact stream NewEngine(seed)
// would.
const shardSeedMix = 0x9E3779B97F4A7C15

// NewShardedEngine creates an engine partitioned into the given number
// of logical shards. lookahead must be positive: it is the minimum
// cross-shard latency the model guarantees (Send enforces it), and the
// width of each conservative execution window.
//
// shards == 1 returns a coordinator over a single plain Engine with no
// parallel machinery at all — Shard(0) is byte-for-byte today's
// sequential engine.
func NewShardedEngine(seed int64, shards int, lookahead Duration) *ShardedEngine {
	if shards < 1 {
		panic("sim: ShardedEngine needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: ShardedEngine lookahead must be positive")
	}
	se := &ShardedEngine{
		shards:     make([]*Engine, shards),
		lookahead:  lookahead,
		workers:    shards,
		busy:       make([]*Engine, 0, shards),
		profBefore: make([]uint64, shards),
	}
	se.prof.Windows = make([]uint64, shards)
	se.prof.Stalled = make([]uint64, shards)
	se.prof.Executed = make([]uint64, shards)
	se.prof.Sends = make([][]uint64, shards)
	for i := range se.prof.Sends {
		se.prof.Sends[i] = make([]uint64, shards)
	}
	for i := range se.shards {
		sh := NewEngine(seed ^ int64(uint64(i)*shardSeedMix))
		sh.shard = i
		if shards > 1 {
			sh.parent = se
		}
		se.shards[i] = sh
	}
	return se
}

// Shards reports the number of logical shards.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns the engine of the given shard. Model setup code builds
// each partition's components against its home shard; shard 0 is the
// conventional control/master shard.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Lookahead reports the conservative window width.
func (se *ShardedEngine) Lookahead() Duration { return se.lookahead }

// SetWorkers bounds the parallel execution lanes (goroutines) used for
// multi-shard windows. Worker count affects wall-clock speed only —
// results are byte-identical at any value. Defaults to the shard count;
// values are clamped to [1, Shards()].
func (se *ShardedEngine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(se.shards) {
		n = len(se.shards)
	}
	se.workers = n
}

// Workers reports the configured execution lane count.
func (se *ShardedEngine) Workers() int { return se.workers }

// Now reports the virtual clock of shard 0, the control shard whose
// clock model-facing code conventionally observes.
func (se *ShardedEngine) Now() Time { return se.shards[0].now }

// EventsFired sums executed events across all shards.
func (se *ShardedEngine) EventsFired() uint64 {
	var n uint64
	for _, sh := range se.shards {
		n += sh.fired
	}
	return n
}

// Pending sums live queued events across all shards.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	return n
}

// Digest folds the per-shard execution digests in shard order. Two runs
// of the same model are byte-equivalent iff they executed the same
// events at the same (time, seq) on every shard, which this digest
// fingerprints without tracing; it is the cheap invariance check the
// differential tests compare across worker counts. Digests are
// maintained by sharded execution only — a standalone Engine reports 0.
func (se *ShardedEngine) Digest() uint64 {
	var h uint64 = digestInit
	for _, sh := range se.shards {
		h = mixDigest(h, sh.digest, sh.fired)
	}
	return h
}

// Stop makes the current Run return at the next barrier (immediately,
// in solo mode).
func (se *ShardedEngine) Stop() {
	for _, sh := range se.shards {
		sh.stopped = true
	}
}

// Run executes events until every shard's queue drains (and no message
// is in flight) or Stop is called.
func (se *ShardedEngine) Run() { se.run(false, 0) }

// RunUntil executes events with timestamps <= t, then advances every
// shard clock to exactly t (unless stopped early, mirroring
// Engine.RunUntil).
func (se *ShardedEngine) RunUntil(t Time) { se.run(true, t) }

// RunFor executes events for a span d of virtual time from the control
// shard's clock.
func (se *ShardedEngine) RunFor(d Duration) { se.RunUntil(se.shards[0].now.Add(d)) }

// Send schedules fn to run on shard dst after delay d of virtual time.
// It is the only legal way to affect state owned by another shard: the
// callback runs on the destination shard's goroutine, so it must touch
// only destination-owned state and immutable message payload.
//
// Cross-shard sends must respect the engine's lookahead (d >=
// lookahead); violating it panics, because a shorter delay would let a
// message land inside the destination's current execution window and
// break the determinism guarantee. Sends to the engine's own shard are
// ordinary local schedules with no minimum delay. On a standalone
// engine (no ShardedEngine), only dst 0 is valid and Send degenerates
// to Schedule — model code written against Send runs unchanged, and
// unpartitioned, on a plain Engine.
func (e *Engine) Send(dst int, d Duration, fn func()) {
	p := e.parent
	if p == nil {
		if dst != 0 {
			panic(fmt.Sprintf("sim: Send to shard %d on an unsharded engine", dst))
		}
		e.Schedule(d, fn)
		return
	}
	if dst < 0 || dst >= len(p.shards) {
		panic(fmt.Sprintf("sim: Send to shard %d of %d", dst, len(p.shards)))
	}
	if dst == e.shard {
		e.Schedule(d, fn)
		return
	}
	if d < p.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send with delay %v below lookahead %v", d, p.lookahead))
	}
	if len(e.out) >= maxOutbox {
		panic("sim: shard outbox overflow — runaway cross-shard send loop?")
	}
	e.out = append(e.out, outMsg{dst: dst, at: e.now.Add(d), fn: fn})
}

// ShardID reports which shard of a ShardedEngine this engine is
// (0 for a standalone engine).
func (e *Engine) ShardID() int { return e.shard }

// Sharded reports the coordinating ShardedEngine, or nil for a
// standalone engine or a single-shard coordinator.
func (e *Engine) Sharded() *ShardedEngine { return e.parent }

// nextLiveAt skims tombstones and reports the shard's next live event
// time.
func (e *Engine) nextLiveAt() (Time, bool) {
	e.skimDead()
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// digestInit is the FNV-1a 64-bit offset basis; mixDigest folds with
// the FNV prime.
const digestInit = 14695981039346656037

func mixDigest(h, a, b uint64) uint64 {
	const prime = 1099511628211
	h ^= a
	h *= prime
	h ^= b
	h *= prime
	return h
}

// runWindow executes the shard's local events with at <= cap, in strict
// (time, seq) order. It is Engine.step's loop plus the digest fold;
// workers run it concurrently on disjoint shards.
func (e *Engine) runWindow(cap Time) {
	for !e.stopped {
		e.skimDead()
		if len(e.events) == 0 || e.events[0].at > cap {
			return
		}
		ev := e.events.popMin()
		e.now = ev.at
		e.fired++
		e.digest = mixDigest(e.digest, uint64(ev.at), ev.seq)
		ev.fn()
		e.release(ev)
	}
}

// runSolo is the fast path when sh is the only shard with pending work:
// the sequential engine loop, uninterrupted by windows, breaking back
// to coordinated mode only if an event stages a cross-shard message.
func (se *ShardedEngine) runSolo(sh *Engine, bounded bool, target Time) {
	for !sh.stopped {
		sh.skimDead()
		if len(sh.events) == 0 || (bounded && sh.events[0].at > target) {
			return
		}
		ev := sh.events.popMin()
		sh.now = ev.at
		sh.fired++
		sh.digest = mixDigest(sh.digest, uint64(ev.at), ev.seq)
		ev.fn()
		sh.release(ev)
		if len(sh.out) != 0 {
			return
		}
	}
}

// deliver merges every staged cross-shard message into its destination
// queue: source shards in index order, each outbox in send order. The
// destination assigns its next sequence numbers in exactly that order,
// realizing the (time, then stable sequence) merge rule.
func (se *ShardedEngine) deliver() {
	for _, src := range se.shards {
		if len(src.out) == 0 {
			continue
		}
		se.prof.Delivered += uint64(len(src.out))
		edges := se.prof.Sends[src.shard]
		for i := range src.out {
			m := &src.out[i]
			edges[m.dst]++
			se.shards[m.dst].At(m.at, m.fn)
			m.fn = nil // don't pin the closure in the outbox backing array
		}
		src.out = src.out[:0]
	}
}

// run is the coordinator loop: deliver, census, then either the solo
// fast path or one conservative window executed across workers.
func (se *ShardedEngine) run(bounded bool, target Time) {
	for _, sh := range se.shards {
		sh.stopped = false
	}
	defer se.stopWorkers()
	for {
		se.deliver()

		// Census: which shards have work, and the global minimum next
		// event time that anchors this round's window.
		se.busy = se.busy[:0]
		var minAt Time
		for _, sh := range se.shards {
			at, ok := sh.nextLiveAt()
			if !ok {
				continue
			}
			if len(se.busy) == 0 || at < minAt {
				minAt = at
			}
			se.busy = append(se.busy, sh)
		}
		if len(se.busy) == 0 {
			break
		}
		if bounded && minAt > target {
			break
		}
		if len(se.busy) == 1 {
			sh := se.busy[0]
			se.prof.SoloRounds++
			before := sh.fired
			se.runSolo(sh, bounded, target)
			se.prof.SoloExecuted += sh.fired - before
			if sh.stopped {
				return
			}
			continue
		}

		cap := minAt.Add(se.lookahead) - 1
		if bounded && cap > target {
			cap = target
		}
		se.runRound(cap)
		for _, sh := range se.shards {
			if sh.stopped {
				return
			}
		}
	}
	if bounded {
		for _, sh := range se.shards {
			if sh.now < target {
				sh.now = target
			}
		}
	}
}

// runRound executes one window on every busy shard. With one worker the
// shards run inline in index order — the sequential reference the
// parallel schedule must (and does) match byte for byte.
func (se *ShardedEngine) runRound(cap Time) {
	se.prof.Rounds++
	for _, sh := range se.busy {
		se.profBefore[sh.shard] = sh.fired
	}
	if se.workers <= 1 {
		for _, sh := range se.busy {
			sh.runWindow(cap)
		}
	} else {
		se.windowCap = cap
		se.startWorkers()
		for _, sh := range se.busy {
			se.work <- sh //lint:shardsync hand a shard's window to a worker
		}
		for range se.busy {
			<-se.done //lint:shardsync barrier: wait for every window to finish
		}
	}
	// Attribute the round after the barrier: the fired deltas are pure
	// virtual-time facts, so the profile is identical at any worker count.
	for _, sh := range se.busy {
		se.prof.Windows[sh.shard]++
		delta := sh.fired - se.profBefore[sh.shard]
		if delta == 0 {
			se.prof.Stalled[sh.shard]++ // busy, but next event beyond the lookahead cap
		} else {
			se.prof.Executed[sh.shard] += delta
		}
	}
}

// startWorkers lazily spawns the execution lanes for this Run call;
// stopWorkers (deferred in run) retires them, so a simulation that
// never leaves the solo path spawns no goroutines at all.
func (se *ShardedEngine) startWorkers() {
	if se.running {
		return
	}
	se.running = true
	se.work = make(chan *Engine)                  //lint:shardsync
	se.done = make(chan struct{}, len(se.shards)) //lint:shardsync buffered so workers never block the coordinator
	for i := 0; i < se.workers; i++ {
		// Channels are passed by value so a retiring pool never touches
		// the se.work/se.done fields a later Run call may be rebuilding.
		go se.worker(se.work, se.done) //lint:shardsync audited lanes; shards are disjoint and rounds are channel-ordered
	}
}

func (se *ShardedEngine) worker(work <-chan *Engine, done chan<- struct{}) { //lint:shardsync
	for sh := range work { //lint:shardsync
		sh.runWindow(se.windowCap)
		done <- struct{}{} //lint:shardsync
	}
}

func (se *ShardedEngine) stopWorkers() {
	if !se.running {
		return
	}
	close(se.work) //lint:shardsync
	se.running = false
}

// ShardRand derives an independent deterministic RNG for ad-hoc model
// use on shard i, mixed from the shard engine's own stream so parallel
// partitions never share a source.
func (se *ShardedEngine) ShardRand(i int) *rand.Rand {
	return rand.New(rand.NewSource(se.shards[i].rng.Int63()))
}
