// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue with cancellable timers, and a fluid-flow
// shared-resource model used to simulate disks and network interfaces.
//
// All DYRS experiments run in virtual time on top of this engine, so a
// 20-minute cluster workload simulates in milliseconds and is exactly
// reproducible from its RNG seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, expressed as nanoseconds since the
// start of the simulation.
type Time int64

// Duration re-exports time.Duration for convenience; all simulation delays
// use ordinary time.Duration values.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 when not queued
	cancelled bool
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// eventHeap orders events by time, breaking ties by scheduling order so the
// simulation is deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewEngine returns an engine whose randomness derives from seed.
// The same seed always produces the same simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Model components
// should derive all randomness from it (or from sub-sources created with
// e.Rand().Int63()) so runs are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed, mostly for tests and
// performance reporting.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. The returned Event may be cancelled.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at instant t. Scheduling in the past panics: it always
// indicates a model bug, and silently clamping would mask it.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Cancel removes ev from the queue if it has not fired. Cancelling a nil,
// fired, or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.events, ev.index)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor executes events for a span d of virtual time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.at
	if !ev.cancelled {
		e.fired++
		ev.fn()
	}
}

// Ticker invokes fn every interval until cancelled. It is the building
// block for heartbeats and samplers.
type Ticker struct {
	eng      *Engine
	interval Duration
	fn       func()
	ev       *Event
	stopped  bool
}

// NewTicker starts a ticker whose first tick fires after one interval.
func NewTicker(eng *Engine, interval Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{eng: eng, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop halts the ticker. It is safe to call multiple times and from within
// the tick callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.ev)
}
