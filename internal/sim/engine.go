// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue with cancellable timers, and a fluid-flow
// shared-resource model used to simulate disks and network interfaces.
//
// All DYRS experiments run in virtual time on top of this engine, so a
// 20-minute cluster workload simulates in milliseconds and is exactly
// reproducible from its RNG seed.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, expressed as nanoseconds since the
// start of the simulation.
type Time int64

// Duration re-exports time.Duration for convenience; all simulation delays
// use ordinary time.Duration values.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
//
// Handles are pooled: once an event has fired, the engine recycles the
// Event struct for a later Schedule/At call. A handle is therefore valid
// only until its event fires — cancel before the fire, or drop the
// handle when the callback runs (overwrite it, as Ticker does). Cancel
// is always safe on nil handles, on handles cancelled before firing, and
// from within the event's own callback.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	queued    bool // in the heap (live or tombstoned)
	cancelled bool
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// eventLess orders events by time, breaking ties by scheduling order so
// the simulation is deterministic.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a 4-ary min-heap specialized to *Event. Hand-rolling it
// (instead of container/heap) removes interface dispatch and any-boxing
// from the hottest loop in the simulator, and lazy cancellation means no
// remove-by-index is ever needed, so sifting uses cheap hole moves with a
// single final write instead of index-maintaining swaps. The fan-out of
// 4 (rather than 2) halves the tree depth — at the datacenter-scale
// presets the queue holds 10^6-10^7 events, where the shallower,
// cache-friendlier sift is measurably faster than a binary heap — while
// keeping the same strict (time, seq) pop order.
type eventQueue []*Event

// heapArity is the heap fan-out; pop order is arity-independent.
const heapArity = 4

func (q *eventQueue) push(ev *Event) {
	ev.queued = true
	*q = append(*q, ev)
	q.siftUp(len(*q) - 1)
}

// popMin removes and returns the earliest event. The queue must be
// non-empty.
func (q *eventQueue) popMin() *Event {
	evs := *q
	root := evs[0]
	n := len(evs) - 1
	last := evs[n]
	evs[n] = nil
	*q = evs[:n]
	if n > 0 {
		evs[0] = last
		q.siftDown(0)
	}
	root.queued = false
	return root
}

func (q eventQueue) siftUp(i int) {
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !eventLess(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	ev := q[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if eventLess(q[c], q[min]) {
				min = c
			}
		}
		if !eventLess(q[min], ev) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = ev
}

// reinit restores the heap invariant after bulk filtering (Floyd's
// heap-construction, O(n)).
func (q eventQueue) reinit() {
	if len(q) < 2 {
		return
	}
	for i := (len(q) - 2) / heapArity; i >= 0; i-- {
		q.siftDown(i)
	}
}

// compactMin is the queue length below which tombstone compaction is not
// worth an O(n) heap rebuild; dead events that small are cheaper to skim
// off the top as the clock reaches them.
const compactMin = 64

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks.
type Engine struct {
	now    Time
	seq    uint64
	events eventQueue
	// dead counts tombstoned (lazily cancelled) events still in the
	// queue. Cancellation only flags the event; the heap entry is
	// reclaimed when it surfaces, or in bulk by compact() once dead
	// entries outnumber live ones.
	dead    int
	free    []*Event // recycled Event structs; steady state allocates none
	rng     *rand.Rand
	stopped bool
	fired   uint64

	// Sharded-execution fields, nil/zero for a standalone engine. When an
	// engine is one shard of a ShardedEngine, parent coordinates window
	// execution, shard is this engine's index, out stages cross-shard
	// messages until the next barrier, and digest folds the (time, seq)
	// of every executed event so shard-count invariance is checkable
	// without tracing. A standalone engine never touches these fields on
	// its hot path.
	parent *ShardedEngine
	shard  int
	out    []outMsg
	digest uint64

	// tracer is an opaque per-run observability object (internal/trace
	// attaches its Tracer here). The engine itself never calls it — the
	// slot only lets higher layers find the run's tracer through the
	// engine they already hold, without sim importing the trace package.
	tracer any
	// flowSink, when non-nil, observes resource flow admissions and
	// completions. Kept as a separate typed field so the per-flow hook
	// is a plain nil check, not a type assertion.
	flowSink FlowSink
	// refResources makes NewResource build reference-mode resources
	// (linear scans instead of the finish-tag heap, same arithmetic).
	// Differential and conformance tests flip it to prove the optimized
	// resource byte-identical; production code leaves it false.
	refResources bool
}

// SetTracer attaches an opaque tracing object to the engine for
// retrieval with Tracer. The engine does not interpret it.
func (e *Engine) SetTracer(t any) { e.tracer = t }

// Tracer returns the object attached with SetTracer, or nil.
func (e *Engine) Tracer() any { return e.tracer }

// SetFlowSink installs an observer for resource flow lifecycle events.
// Pass nil to detach. When no sink is installed the flow hot path pays
// only a nil check.
func (e *Engine) SetFlowSink(s FlowSink) { e.flowSink = s }

// SetReferenceResources selects which resource implementation NewResource
// builds from here on: the optimized finish-tag heap (false, the default)
// or the structurally naive reference that shares its arithmetic (true).
// On a shard of a ShardedEngine the choice applies to every shard. Call
// it before constructing the model; existing resources are unaffected.
func (e *Engine) SetReferenceResources(on bool) {
	if e.parent != nil {
		for _, s := range e.parent.shards {
			s.refResources = on
		}
		return
	}
	e.refResources = on
}

// NewEngine returns an engine whose randomness derives from seed.
// The same seed always produces the same simulation.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Model components
// should derive all randomness from it (or from sub-sources created with
// e.Rand().Int63()) so runs are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed, mostly for tests and
// performance reporting.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many live (non-cancelled) events are queued.
func (e *Engine) Pending() int { return len(e.events) - e.dead }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. The returned Event may be cancelled.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at instant t. Scheduling in the past panics: it always
// indicates a model bug, and silently clamping would mask it.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at, ev.seq, ev.fn, ev.cancelled = t, e.seq, fn, false
	e.seq++
	e.events.push(ev)
	return ev
}

// Cancel removes ev from the queue if it has not fired. Cancelling a nil,
// fired, or already-cancelled event is a no-op.
//
// Cancellation is lazy: the event is tombstoned in place (O(1)) and its
// callback reference dropped immediately, and the heap entry is reclaimed
// when it surfaces — or in bulk once tombstones outnumber live events.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	// Drop the closure now so a tombstone never pins model objects
	// (e.g. a stopped Ticker's callback) while it waits in the queue.
	ev.fn = nil
	if !ev.queued {
		return // currently firing or already popped
	}
	e.dead++
	if e.dead*2 > len(e.events) && len(e.events) >= compactMin {
		e.compact()
	}
}

// compact rebuilds the heap without its tombstoned entries. Each rebuild
// reclaims at least half the queue, so the cost amortizes to O(1) per
// cancellation while bounding queue memory at ~2x the live event count.
func (e *Engine) compact() {
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.cancelled {
			ev.queued = false
			e.release(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.dead = 0
	e.events.reinit()
}

// maxFreeEvents caps the recycled-event pool. Without a cap, a burst of
// queued events (datacenter-scale runs hold 10^6-10^7 at once) would pin
// that many Event structs in the pool forever after it drains; beyond the
// cap, drained events are left to the garbage collector.
const maxFreeEvents = 1 << 16

// release returns a popped or compacted-away event to the free pool.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// skimDead pops tombstoned events off the head of the queue without
// advancing the clock or firing anything.
func (e *Engine) skimDead() {
	for len(e.events) > 0 && e.events[0].cancelled {
		ev := e.events.popMin()
		e.dead--
		e.release(ev)
	}
}

// Stop makes Run return after the current event completes. On a shard
// of a ShardedEngine the stop is observed at the next window barrier
// (immediately, for the solo fast path pinned models run on).
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. On a
// shard of a ShardedEngine it runs the whole sharded simulation, so
// model code holding any shard handle keeps the familiar API.
func (e *Engine) Run() {
	if e.parent != nil {
		e.parent.Run()
		return
	}
	e.stopped = false
	for !e.stopped {
		e.skimDead()
		if len(e.events) == 0 {
			return
		}
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. On a shard of a ShardedEngine it advances the whole
// sharded simulation (every shard clock reaches t unless stopped).
func (e *Engine) RunUntil(t Time) {
	if e.parent != nil {
		e.parent.RunUntil(t)
		return
	}
	e.stopped = false
	for !e.stopped {
		e.skimDead()
		if len(e.events) == 0 || e.events[0].at > t {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor executes events for a span d of virtual time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// step fires the head event. Callers skim tombstones first, so the head
// is normally live; the guard covers it anyway for safety.
func (e *Engine) step() {
	ev := e.events.popMin()
	if ev.cancelled {
		e.dead--
		e.release(ev)
		return
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	e.release(ev)
}

// Ticker invokes fn every interval until cancelled. It is the building
// block for heartbeats and samplers.
type Ticker struct {
	eng      *Engine
	interval Duration
	fn       func()
	tick     func() // rearming wrapper, allocated once
	ev       *Event
	stopped  bool
}

// NewTicker starts a ticker whose first tick fires after one interval.
func NewTicker(eng *Engine, interval Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{eng: eng, interval: interval, fn: fn}
	t.tick = func() {
		t.ev = nil
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.ev = t.eng.Schedule(t.interval, t.tick)
		}
	}
	t.ev = eng.Schedule(interval, t.tick)
	return t
}

// Stop halts the ticker. It is safe to call multiple times and from within
// the tick callback. Stopping drops both the queued event's callback and
// the ticker's own references, so a stopped ticker pins neither its
// callback nor (beyond a tombstone the engine reclaims) any queue memory.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.eng.Cancel(t.ev)
	t.ev = nil
	t.fn = nil
}
