package sim

import (
	"testing"
	"time"
)

// Lazy cancellation must not advance the clock or fire callbacks when the
// queue drains through tombstones.
func TestLazyCancelDoesNotAdvanceClock(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(5*time.Second, func() { t.Error("cancelled event fired") })
	e.Cancel(ev)
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d after cancel, want 0", got)
	}
	e.Run()
	if e.Now() != 0 {
		t.Errorf("draining tombstones advanced the clock to %v", e.Now())
	}
	if e.EventsFired() != 0 {
		t.Errorf("fired = %d, want 0", e.EventsFired())
	}
}

// A tombstone between two live events must be skipped without disturbing
// their order or timestamps.
func TestLazyCancelSkipsTombstonesInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	ev := e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Cancel(ev)
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("fired %v, want [1 3]", got)
	}
	if e.Now() != Time(3*time.Second) {
		t.Errorf("now = %v, want 3s", e.Now())
	}
}

// Pending must count only live events while tombstones linger in the heap.
func TestPendingCountsLiveEventsOnly(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Second, func() {}))
	}
	for _, ev := range evs[:7] {
		e.Cancel(ev)
	}
	if got := e.Pending(); got != 3 {
		t.Errorf("Pending = %d, want 3", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d after drain, want 0", got)
	}
}

// Cancelling an event must immediately drop its callback so tombstones
// waiting in the queue cannot pin model objects.
func TestCancelReleasesCallback(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(time.Hour, func() {})
	e.Cancel(ev)
	if ev.fn != nil {
		t.Error("cancelled event still references its callback")
	}
}

// Mass cancellation must compact the heap: with one live far-future event
// pinned, churning many cancelled events may not grow the queue without
// bound.
func TestCompactionBoundsQueueMemory(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(24*time.Hour, func() {}) // far-future live event pins the queue
	maxLen := 0
	for i := 0; i < 10000; i++ {
		ev := e.Schedule(time.Duration(1+i%100)*time.Minute, func() {})
		e.Cancel(ev)
		if len(e.events) > maxLen {
			maxLen = len(e.events)
		}
	}
	if maxLen > 2*compactMin {
		t.Errorf("queue grew to %d entries under cancel churn; compaction should bound it near %d", maxLen, compactMin)
	}
	if got := e.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
	e.Run()
	if e.EventsFired() != 1 {
		t.Errorf("fired = %d, want 1", e.EventsFired())
	}
}

// The free pool must recycle Event structs: steady-state scheduling after
// warmup performs no allocations.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	nop := func() {}
	for i := 0; i < 128; i++ { // warm the heap, pool and free list
		e.Schedule(time.Millisecond, nop)
	}
	e.Run()
	avg := testing.AllocsPerRun(200, func() {
		e.Schedule(time.Millisecond, nop)
		e.Run()
	})
	if avg != 0 {
		t.Errorf("steady-state Schedule+Run allocates %.2f objects/op, want 0", avg)
	}
}

// Cancel-heavy steady state (the rebalance pattern) must also be
// allocation-free.
func TestCancelRescheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	nop := func() {}
	for i := 0; i < 128; i++ {
		e.Schedule(time.Millisecond, nop)
	}
	e.Run()
	avg := testing.AllocsPerRun(200, func() {
		ev := e.Schedule(time.Second, nop)
		e.Cancel(ev)
		e.Schedule(time.Millisecond, nop)
		e.Run()
	})
	if avg != 0 {
		t.Errorf("steady-state cancel+reschedule allocates %.2f objects/op, want 0", avg)
	}
}

// A stopped ticker must neither fire again, nor drift the engine clock,
// nor pin its tombstoned event's callback while the tombstone waits in
// the queue.
func TestTickerStopReleasesEvent(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := NewTicker(e, time.Hour, func() { n++ })
	ev := tk.ev
	tk.Stop()
	if tk.ev != nil || tk.fn != nil {
		t.Error("stopped ticker retains event/callback references")
	}
	if ev.fn != nil {
		t.Error("stopped ticker's tombstone still references the tick closure")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d after ticker stop, want 0", got)
	}
	e.RunFor(10 * time.Hour)
	if n != 0 {
		t.Errorf("stopped ticker fired %d times", n)
	}
}

// Ticker churn (start+stop) must not leak queue entries: compaction keeps
// the heap bounded even though every stopped ticker leaves a tombstone
// with a distant deadline.
func TestTickerChurnDoesNotLeak(t *testing.T) {
	e := NewEngine(1)
	maxLen := 0
	for i := 0; i < 5000; i++ {
		tk := NewTicker(e, time.Duration(1+i%7)*time.Hour, func() {})
		tk.Stop()
		if len(e.events) > maxLen {
			maxLen = len(e.events)
		}
	}
	if maxLen > 2*compactMin {
		t.Errorf("ticker churn grew the queue to %d entries; want compaction to bound it near %d", maxLen, compactMin)
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0", got)
	}
}

// Ticks must land on exact interval multiples even when lazy-cancel
// tombstones from unrelated activity share the queue (no drift).
func TestTickerNoDriftUnderCancelChurn(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, time.Second, func() { ticks = append(ticks, e.Now()) })
	defer tk.Stop()
	// Unrelated churn: events scheduled and cancelled around every tick.
	churn := NewTicker(e, 300*time.Millisecond, func() {
		e.Cancel(e.Schedule(700*time.Millisecond, func() {}))
	})
	e.RunUntil(Time(100 * time.Second))
	churn.Stop()
	if len(ticks) != 100 {
		t.Fatalf("ticks = %d, want 100", len(ticks))
	}
	for i, at := range ticks {
		if want := Time(i+1) * Time(time.Second); at != want {
			t.Fatalf("tick %d at %v, want %v (drift)", i, at, want)
		}
	}
}

// Restarting activity after a full drain reuses pooled events; the pool
// must reset state so recycled events fire exactly once at the right time.
func TestEventPoolReuseCorrectness(t *testing.T) {
	e := NewEngine(1)
	for round := 0; round < 5; round++ {
		fired := 0
		for i := 0; i < 50; i++ {
			e.Schedule(time.Duration(i)*time.Millisecond, func() { fired++ })
		}
		cancelled := e.Schedule(time.Millisecond, func() { fired += 1000 })
		e.Cancel(cancelled)
		e.Run()
		if fired != 50 {
			t.Fatalf("round %d: fired = %d, want 50", round, fired)
		}
	}
}
