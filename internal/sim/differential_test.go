package sim

// Differential test of the optimized Resource (single completion timer,
// incremental total weight, lazy-cancelled events) against a deliberately
// naive reference that schedules one eagerly-cancelled completion event
// per flow and re-sums weights on every rebalance — the design the
// optimization replaced. Both run the same seeded random op script
// (Start/StartWeighted/StartLoad/Cancel/SetScale) and must produce
// identical completion order, completion timestamps, BytesMoved and
// BusyTime.
//
// Weights and scales are powers of two so that incremental and re-summed
// weight totals are bit-identical (dyadic rationals add and subtract
// exactly in float64); any divergence is therefore a real behavioural
// difference, not float noise.

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// --- naive reference implementation (per-flow events, eager cancel) ---

type naiveFlow struct {
	res       *naiveResource
	remaining float64
	weight    float64
	rate      float64
	done      func()
	ev        *Event
	active    bool
}

type naiveResource struct {
	eng        *Engine
	base       float64
	scale      float64
	eff        EfficiencyFunc
	flows      []*naiveFlow
	lastUpdate Time
	bytesMoved float64
	busy       Duration
}

func newNaiveResource(eng *Engine, capacity float64, eff EfficiencyFunc) *naiveResource {
	return &naiveResource{eng: eng, base: capacity, scale: 1, eff: eff}
}

func (r *naiveResource) totalWeight() float64 {
	var w float64
	for _, f := range r.flows {
		w += f.weight
	}
	return w
}

func (r *naiveResource) start(size Bytes, weight float64, done func()) *naiveFlow {
	r.advance()
	f := &naiveFlow{res: r, remaining: float64(size), weight: weight, done: done, active: true}
	r.flows = append(r.flows, f)
	r.rebalance()
	return f
}

func (r *naiveResource) startLoad(weight float64) *naiveFlow {
	r.advance()
	f := &naiveFlow{res: r, remaining: math.Inf(1), weight: weight, active: true}
	r.flows = append(r.flows, f)
	r.rebalance()
	return f
}

func (f *naiveFlow) cancel() {
	if !f.active {
		return
	}
	r := f.res
	r.advance()
	f.active = false
	if f.ev != nil {
		r.eng.Cancel(f.ev)
		f.ev = nil
	}
	r.remove(f)
	r.rebalance()
}

func (r *naiveResource) setScale(s float64) {
	r.advance()
	r.scale = s
	r.rebalance()
}

func (r *naiveResource) remove(f *naiveFlow) {
	for i, g := range r.flows {
		if g == f {
			r.flows = append(r.flows[:i], r.flows[i+1:]...)
			return
		}
	}
}

func (r *naiveResource) advance() {
	now := r.eng.Now()
	dt := now.Sub(r.lastUpdate).Seconds()
	if dt <= 0 {
		r.lastUpdate = now
		return
	}
	if len(r.flows) > 0 {
		r.busy += now.Sub(r.lastUpdate)
	}
	for _, f := range r.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		if !math.IsInf(f.remaining, 1) {
			r.bytesMoved += moved
		} else {
			r.bytesMoved += f.rate * dt
		}
	}
	r.lastUpdate = now
}

// rebalance is the O(flows · log events) hot path under test: it cancels
// and reschedules one completion event per finite flow, every time.
func (r *naiveResource) rebalance() {
	if len(r.flows) == 0 {
		return
	}
	totalWeight := r.totalWeight()
	totalRate := r.base * r.scale * r.eff(totalWeight)
	for _, f := range r.flows {
		f.rate = totalRate * f.weight / totalWeight
		if f.ev != nil {
			r.eng.Cancel(f.ev)
			f.ev = nil
		}
		if math.IsInf(f.remaining, 1) {
			continue
		}
		secs := f.remaining / f.rate
		ff := f
		f.ev = r.eng.Schedule(Duration(secs*float64(Second)), func() { r.complete(ff) })
	}
}

func (r *naiveResource) complete(f *naiveFlow) {
	r.advance()
	if f.remaining > 0 {
		r.bytesMoved += f.remaining
		f.remaining = 0
	}
	f.active = false
	f.ev = nil
	r.remove(f)
	r.rebalance()
	if f.done != nil {
		f.done()
	}
}

// --- common harness ---

// underTest adapts either implementation to the op script.
type underTest interface {
	start(size Bytes, weight float64, done func()) (cancel func())
	startLoad(weight float64) (cancel func())
	setScale(s float64)
	bytesMoved() Bytes
	busyTime() Duration
	activeFlows() int
}

type optimizedUT struct{ r *Resource }

func (u optimizedUT) start(size Bytes, weight float64, done func()) func() {
	f := u.r.StartWeighted(size, weight, func(*Flow) { done() })
	return f.Cancel
}
func (u optimizedUT) startLoad(weight float64) func() { return u.r.StartLoad(weight).Cancel }
func (u optimizedUT) setScale(s float64)              { u.r.SetScale(s) }
func (u optimizedUT) bytesMoved() Bytes               { return u.r.BytesMoved() }
func (u optimizedUT) busyTime() Duration              { return u.r.BusyTime() }
func (u optimizedUT) activeFlows() int                { return u.r.ActiveFlows() }

type naiveUT struct{ r *naiveResource }

func (u naiveUT) start(size Bytes, weight float64, done func()) func() {
	return u.r.start(size, weight, done).cancel
}
func (u naiveUT) startLoad(weight float64) func() { return u.r.startLoad(weight).cancel }
func (u naiveUT) setScale(s float64)              { u.r.setScale(s) }
func (u naiveUT) bytesMoved() Bytes {
	u.r.advance()
	return Bytes(u.r.bytesMoved)
}
func (u naiveUT) busyTime() Duration {
	u.r.advance()
	return u.r.busy
}
func (u naiveUT) activeFlows() int { return len(u.r.flows) }

const (
	opStart = iota
	opStartLoad
	opCancel
	opSetScale
)

type scriptOp struct {
	at     Time
	kind   int
	size   Bytes
	weight float64 // flow weight, or scale for opSetScale
	pick   int     // which active flow a cancel targets
}

// genScript builds a random op mix. Weights and scales are powers of two
// (see file comment); sizes are whole megabytes.
func genScript(rng *rand.Rand, n int, horizon Duration) []scriptOp {
	weights := []float64{0.25, 0.5, 1, 1, 2, 4}
	scales := []float64{0.25, 0.5, 1, 2}
	ops := make([]scriptOp, n)
	for i := range ops {
		o := scriptOp{at: Time(rng.Int63n(int64(horizon)))}
		switch k := rng.Intn(10); {
		case k < 5: // half the ops admit finite flows (incl. weight-1 Start)
			o.kind = opStart
			o.size = Bytes(1+rng.Intn(512)) * MB
			o.weight = weights[rng.Intn(len(weights))]
		case k < 6:
			o.kind = opStartLoad
			o.weight = weights[rng.Intn(len(weights))]
		case k < 9:
			o.kind = opCancel
			o.pick = rng.Intn(1 << 16)
		default:
			o.kind = opSetScale
			o.weight = scales[rng.Intn(len(scales))]
		}
		ops[i] = o
	}
	return ops
}

type completionRec struct {
	id int
	at Time
}

type scriptResult struct {
	completions []completionRec
	bytesMoved  Bytes
	busy        Duration
	stillActive int
}

// runScript replays the ops against one implementation. Flows are named
// by admission order, so both implementations agree on ids as long as
// they agree on completion behaviour — which is exactly what the caller
// asserts.
func runScript(eng *Engine, r underTest, ops []scriptOp) scriptResult {
	var res scriptResult
	var active []int
	cancels := map[int]func(){}
	nextID := 0
	admit := func(o scriptOp) {
		id := nextID
		nextID++
		var cancel func()
		if o.kind == opStartLoad {
			cancel = r.startLoad(o.weight)
		} else {
			cancel = r.start(o.size, o.weight, func() {
				res.completions = append(res.completions, completionRec{id, eng.Now()})
				for i, a := range active {
					if a == id {
						active = append(active[:i], active[i+1:]...)
						break
					}
				}
			})
		}
		cancels[id] = cancel
		active = append(active, id)
	}
	for _, o := range ops {
		o := o
		eng.At(o.at, func() {
			switch o.kind {
			case opStart, opStartLoad:
				admit(o)
			case opCancel:
				if len(active) == 0 {
					return
				}
				idx := o.pick % len(active)
				id := active[idx]
				active = append(active[:idx], active[idx+1:]...)
				cancels[id]()
			case opSetScale:
				r.setScale(o.weight)
			}
		})
	}
	eng.Run() // drains once every finite flow has completed or been cancelled
	res.bytesMoved = r.bytesMoved()
	res.busy = r.busyTime()
	res.stillActive = r.activeFlows()
	return res
}

func TestDifferentialResourceVsNaive(t *testing.T) {
	const (
		seeds   = 60
		nOps    = 80
		horizon = 90 * time.Second
	)
	totalCompletions := 0
	for seed := int64(0); seed < seeds; seed++ {
		ops := genScript(rand.New(rand.NewSource(seed)), nOps, horizon)

		engOpt := NewEngine(seed)
		opt := runScript(engOpt, optimizedUT{NewResource(engOpt, "opt", 128*float64(MB), SeekEfficiency(0.25))}, ops)

		engNaive := NewEngine(seed)
		naive := runScript(engNaive, naiveUT{newNaiveResource(engNaive, 128*float64(MB), SeekEfficiency(0.25))}, ops)

		if len(opt.completions) != len(naive.completions) {
			t.Fatalf("seed %d: %d completions vs naive %d", seed, len(opt.completions), len(naive.completions))
		}
		for i := range opt.completions {
			o, n := opt.completions[i], naive.completions[i]
			if o.id != n.id {
				t.Fatalf("seed %d: completion %d order diverged: flow %d vs naive flow %d", seed, i, o.id, n.id)
			}
			if o.at != n.at {
				t.Fatalf("seed %d: flow %d completed at %v vs naive %v (Δ %v)", seed, o.id, o.at, n.at, o.at.Sub(n.at))
			}
		}
		if opt.bytesMoved != naive.bytesMoved {
			t.Fatalf("seed %d: BytesMoved %d vs naive %d", seed, opt.bytesMoved, naive.bytesMoved)
		}
		if opt.busy != naive.busy {
			t.Fatalf("seed %d: BusyTime %v vs naive %v", seed, opt.busy, naive.busy)
		}
		if opt.stillActive != naive.stillActive {
			t.Fatalf("seed %d: %d active flows at drain vs naive %d", seed, opt.stillActive, naive.stillActive)
		}
		totalCompletions += len(opt.completions)
	}
	if totalCompletions == 0 {
		t.Fatal("scripts produced no completions; test exercised nothing")
	}
	t.Logf("compared %d completions across %d seeds", totalCompletions, seeds)
}
