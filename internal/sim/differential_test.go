package sim

// Differential proofs for the virtual-service-time Resource.
//
// Two references, two claims:
//
//  1. TestDifferentialResourceVsReference — byte-identical. The optimized
//     resource (finish-tag heap, O(1) accrual, coalesced flush) against
//     reference mode (Engine.SetReferenceResources: admission-ordered
//     slice, linear scans) on the same seeded op scripts. The two modes
//     share every float expression — only the bookkeeping structure
//     differs — so completions, timestamps, BytesMoved and BusyTime must
//     match exactly, including under mid-run accounting probes that
//     stress the lazy O(1) accrual.
//
//  2. TestDifferentialResourceVsLegacy — semantically equivalent. The
//     preserved pre-rewrite implementation (legacyResource below: one
//     eagerly-cancelled completion event per flow, per-flow remaining
//     counters decremented every advance) is the old arithmetic; exact
//     bit-equality to it is unattainable once per-flow accrual is gone,
//     so this test bounds the drift instead: same completion sets, same
//     cancel behaviour, timestamps within nanoseconds, bytes within a
//     few KB over 90 virtual seconds.
//
// Weights and scales are powers of two so that incremental and re-summed
// weight totals are bit-identical (dyadic rationals add and subtract
// exactly in float64); any divergence is therefore a real behavioural
// difference, not float noise.

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// --- legacy reference implementation (per-flow events, eager cancel,
// --- per-flow remaining counters: the design the rewrite replaced) ---

type legacyFlow struct {
	res       *legacyResource
	remaining float64
	weight    float64
	rate      float64
	done      func()
	ev        *Event
	active    bool
}

type legacyResource struct {
	eng        *Engine
	base       float64
	scale      float64
	eff        EfficiencyFunc
	flows      []*legacyFlow
	lastUpdate Time
	bytesMoved float64
	busy       Duration
}

func newLegacyResource(eng *Engine, capacity float64, eff EfficiencyFunc) *legacyResource {
	return &legacyResource{eng: eng, base: capacity, scale: 1, eff: eff}
}

func (r *legacyResource) totalWeight() float64 {
	var w float64
	for _, f := range r.flows {
		w += f.weight
	}
	return w
}

func (r *legacyResource) start(size Bytes, weight float64, done func()) *legacyFlow {
	r.advance()
	f := &legacyFlow{res: r, remaining: float64(size), weight: weight, done: done, active: true}
	r.flows = append(r.flows, f)
	r.rebalance()
	return f
}

func (r *legacyResource) startLoad(weight float64) *legacyFlow {
	r.advance()
	f := &legacyFlow{res: r, remaining: math.Inf(1), weight: weight, active: true}
	r.flows = append(r.flows, f)
	r.rebalance()
	return f
}

func (f *legacyFlow) cancel() {
	if !f.active {
		return
	}
	r := f.res
	r.advance()
	f.active = false
	if f.ev != nil {
		r.eng.Cancel(f.ev)
		f.ev = nil
	}
	r.remove(f)
	r.rebalance()
}

func (r *legacyResource) setScale(s float64) {
	r.advance()
	r.scale = s
	r.rebalance()
}

func (r *legacyResource) remove(f *legacyFlow) {
	for i, g := range r.flows {
		if g == f {
			r.flows = append(r.flows[:i], r.flows[i+1:]...)
			return
		}
	}
}

func (r *legacyResource) advance() {
	now := r.eng.Now()
	dt := now.Sub(r.lastUpdate).Seconds()
	if dt <= 0 {
		r.lastUpdate = now
		return
	}
	if len(r.flows) > 0 {
		r.busy += now.Sub(r.lastUpdate)
	}
	for _, f := range r.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		if !math.IsInf(f.remaining, 1) {
			r.bytesMoved += moved
		} else {
			r.bytesMoved += f.rate * dt
		}
	}
	r.lastUpdate = now
}

// rebalance cancels and reschedules one completion event per finite flow,
// every time — the O(flows · log events) pattern the rewrite replaced.
func (r *legacyResource) rebalance() {
	if len(r.flows) == 0 {
		return
	}
	totalWeight := r.totalWeight()
	totalRate := r.base * r.scale * r.eff(totalWeight)
	for _, f := range r.flows {
		f.rate = totalRate * f.weight / totalWeight
		if f.ev != nil {
			r.eng.Cancel(f.ev)
			f.ev = nil
		}
		if math.IsInf(f.remaining, 1) {
			continue
		}
		secs := f.remaining / f.rate
		ff := f
		f.ev = r.eng.Schedule(Duration(secs*float64(Second)), func() { r.complete(ff) })
	}
}

func (r *legacyResource) complete(f *legacyFlow) {
	r.advance()
	if f.remaining > 0 {
		r.bytesMoved += f.remaining
		f.remaining = 0
	}
	f.active = false
	f.ev = nil
	r.remove(f)
	r.rebalance()
	if f.done != nil {
		f.done()
	}
}

// --- common harness ---

// underTest adapts either implementation to the op script.
type underTest interface {
	start(size Bytes, weight float64, done func()) (cancel func())
	startLoad(weight float64) (cancel func())
	setScale(s float64)
	bytesMoved() Bytes
	busyTime() Duration
	activeFlows() int
}

type resourceUT struct{ r *Resource }

func (u resourceUT) start(size Bytes, weight float64, done func()) func() {
	f := u.r.StartWeighted(size, weight, func(*Flow) { done() })
	return f.Cancel
}
func (u resourceUT) startLoad(weight float64) func() { return u.r.StartLoad(weight).Cancel }
func (u resourceUT) setScale(s float64)              { u.r.SetScale(s) }
func (u resourceUT) bytesMoved() Bytes               { return u.r.BytesMoved() }
func (u resourceUT) busyTime() Duration              { return u.r.BusyTime() }
func (u resourceUT) activeFlows() int                { return u.r.ActiveFlows() }

type legacyUT struct{ r *legacyResource }

func (u legacyUT) start(size Bytes, weight float64, done func()) func() {
	return u.r.start(size, weight, done).cancel
}
func (u legacyUT) startLoad(weight float64) func() { return u.r.startLoad(weight).cancel }
func (u legacyUT) setScale(s float64)              { u.r.setScale(s) }
func (u legacyUT) bytesMoved() Bytes {
	u.r.advance()
	return Bytes(u.r.bytesMoved)
}
func (u legacyUT) busyTime() Duration {
	u.r.advance()
	return u.r.busy
}
func (u legacyUT) activeFlows() int { return len(u.r.flows) }

const (
	opStart = iota
	opStartLoad
	opCancel
	opSetScale
)

type scriptOp struct {
	at     Time
	kind   int
	size   Bytes
	weight float64 // flow weight, or scale for opSetScale
	pick   int     // which active flow a cancel targets
}

// genScript builds a random op mix. Weights and scales are powers of two
// (see file comment); sizes are whole megabytes.
func genScript(rng *rand.Rand, n int, horizon Duration) []scriptOp {
	weights := []float64{0.25, 0.5, 1, 1, 2, 4}
	scales := []float64{0.25, 0.5, 1, 2}
	ops := make([]scriptOp, n)
	for i := range ops {
		o := scriptOp{at: Time(rng.Int63n(int64(horizon)))}
		switch k := rng.Intn(10); {
		case k < 5: // half the ops admit finite flows (incl. weight-1 Start)
			o.kind = opStart
			o.size = Bytes(1+rng.Intn(512)) * MB
			o.weight = weights[rng.Intn(len(weights))]
		case k < 6:
			o.kind = opStartLoad
			o.weight = weights[rng.Intn(len(weights))]
		case k < 9:
			o.kind = opCancel
			o.pick = rng.Intn(1 << 16)
		default:
			o.kind = opSetScale
			o.weight = scales[rng.Intn(len(scales))]
		}
		ops[i] = o
	}
	return ops
}

type completionRec struct {
	id int
	at Time
}

type scriptResult struct {
	completions []completionRec
	bytesMoved  Bytes
	busy        Duration
	stillActive int
}

// scheduleProbes sprinkles accounting reads over the horizon. Probes are
// where the lazy-accrual design earns its keep (each one advances the
// aggregate accumulators mid-interval), so the byte-identity test wants
// them between the ops.
func scheduleProbes(eng *Engine, r underTest, horizon Duration) {
	for at := Duration(13 * time.Millisecond); at < horizon; at += 7 * time.Second {
		eng.At(Time(at), func() {
			r.bytesMoved()
			r.busyTime()
		})
	}
}

// runScript replays the ops against one implementation. Flows are named
// by admission order, so both implementations agree on ids as long as
// they agree on completion behaviour — which is exactly what the caller
// asserts.
func runScript(eng *Engine, r underTest, ops []scriptOp) scriptResult {
	var res scriptResult
	var active []int
	cancels := map[int]func(){}
	nextID := 0
	admit := func(o scriptOp) {
		id := nextID
		nextID++
		var cancel func()
		if o.kind == opStartLoad {
			cancel = r.startLoad(o.weight)
		} else {
			cancel = r.start(o.size, o.weight, func() {
				res.completions = append(res.completions, completionRec{id, eng.Now()})
				for i, a := range active {
					if a == id {
						active = append(active[:i], active[i+1:]...)
						break
					}
				}
			})
		}
		cancels[id] = cancel
		active = append(active, id)
	}
	for _, o := range ops {
		o := o
		eng.At(o.at, func() {
			switch o.kind {
			case opStart, opStartLoad:
				admit(o)
			case opCancel:
				if len(active) == 0 {
					return
				}
				idx := o.pick % len(active)
				id := active[idx]
				active = append(active[:idx], active[idx+1:]...)
				cancels[id]()
			case opSetScale:
				r.setScale(o.weight)
			}
		})
	}
	eng.Run() // drains once every finite flow has completed or been cancelled
	res.bytesMoved = r.bytesMoved()
	res.busy = r.busyTime()
	res.stillActive = r.activeFlows()
	return res
}

const (
	diffSeeds   = 60
	diffOps     = 80
	diffHorizon = 90 * time.Second
)

// TestDifferentialResourceVsReference is the byte-identity proof: the
// finish-tag heap, flow pooling, O(1) lazy accrual and same-instant
// flush coalescing must not change a single bit of observable behaviour
// relative to reference mode's linear bookkeeping, because the two share
// every arithmetic expression.
func TestDifferentialResourceVsReference(t *testing.T) {
	totalCompletions := 0
	for seed := int64(0); seed < diffSeeds; seed++ {
		ops := genScript(rand.New(rand.NewSource(seed)), diffOps, diffHorizon)

		run := func(ref bool) scriptResult {
			eng := NewEngine(seed)
			eng.SetReferenceResources(ref)
			ut := resourceUT{NewResource(eng, "r", 128*float64(MB), SeekEfficiency(0.25))}
			scheduleProbes(eng, ut, diffHorizon)
			return runScript(eng, ut, ops)
		}
		opt, ref := run(false), run(true)

		if len(opt.completions) != len(ref.completions) {
			t.Fatalf("seed %d: %d completions vs reference %d", seed, len(opt.completions), len(ref.completions))
		}
		for i := range opt.completions {
			o, n := opt.completions[i], ref.completions[i]
			if o.id != n.id {
				t.Fatalf("seed %d: completion %d order diverged: flow %d vs reference flow %d", seed, i, o.id, n.id)
			}
			if o.at != n.at {
				t.Fatalf("seed %d: flow %d completed at %v vs reference %v (Δ %v)", seed, o.id, o.at, n.at, o.at.Sub(n.at))
			}
		}
		if opt.bytesMoved != ref.bytesMoved {
			t.Fatalf("seed %d: BytesMoved %d vs reference %d", seed, opt.bytesMoved, ref.bytesMoved)
		}
		if opt.busy != ref.busy {
			t.Fatalf("seed %d: BusyTime %v vs reference %v", seed, opt.busy, ref.busy)
		}
		if opt.stillActive != ref.stillActive {
			t.Fatalf("seed %d: %d active flows at drain vs reference %d", seed, opt.stillActive, ref.stillActive)
		}
		totalCompletions += len(opt.completions)
	}
	if totalCompletions == 0 {
		t.Fatal("scripts produced no completions; test exercised nothing")
	}
	t.Logf("compared %d completions across %d seeds", totalCompletions, diffSeeds)
}

// Drift bounds for the legacy comparison. The old per-flow accrual and
// the new aggregate accrual round differently at the last ulp, which can
// move a truncated-nanosecond completion by ±1ns; such a shift perturbs
// the service seen by the surviving flows by rate·1ns (~0.1 byte), so
// over a 90s script the divergence stays in single-digit nanoseconds and
// bytes. The bounds below leave an order of magnitude of headroom while
// still catching any real semantic change.
const (
	legacyTimeTol  = Duration(250)     // per-completion timestamp drift
	legacyBusyTol  = Duration(2000)    // cumulative busy-time drift
	legacyBytesTol = Bytes(64 * 1024)  // cumulative BytesMoved drift
)

// TestDifferentialResourceVsLegacy pins the rewrite to the preserved
// pre-virtual-time implementation: identical completion sets and cancel
// behaviour, with float drift bounded tightly enough that the model's
// semantics are unchanged for every consumer (timestamps are int64
// nanoseconds; a shift of a few ns over 90s is far below the model's
// resolution anywhere it feeds back into the simulation).
func TestDifferentialResourceVsLegacy(t *testing.T) {
	totalCompletions := 0
	for seed := int64(0); seed < diffSeeds; seed++ {
		ops := genScript(rand.New(rand.NewSource(seed)), diffOps, diffHorizon)

		engNew := NewEngine(seed)
		cur := runScript(engNew, resourceUT{NewResource(engNew, "r", 128*float64(MB), SeekEfficiency(0.25))}, ops)

		engLegacy := NewEngine(seed)
		legacy := runScript(engLegacy, legacyUT{newLegacyResource(engLegacy, 128*float64(MB), SeekEfficiency(0.25))}, ops)

		if len(cur.completions) != len(legacy.completions) {
			t.Fatalf("seed %d: %d completions vs legacy %d", seed, len(cur.completions), len(legacy.completions))
		}
		legacyAt := make(map[int]Time, len(legacy.completions))
		for _, c := range legacy.completions {
			legacyAt[c.id] = c.at
		}
		for _, c := range cur.completions {
			lat, ok := legacyAt[c.id]
			if !ok {
				t.Fatalf("seed %d: flow %d completed but legacy cancelled or kept it", seed, c.id)
			}
			if d := c.at.Sub(lat); d < -legacyTimeTol || d > legacyTimeTol {
				t.Fatalf("seed %d: flow %d completed at %v vs legacy %v (Δ %v)", seed, c.id, c.at, lat, d)
			}
		}
		if d := cur.bytesMoved - legacy.bytesMoved; d < -legacyBytesTol || d > legacyBytesTol {
			t.Fatalf("seed %d: BytesMoved %d vs legacy %d (Δ %d)", seed, cur.bytesMoved, legacy.bytesMoved, d)
		}
		if d := cur.busy - legacy.busy; d < -legacyBusyTol || d > legacyBusyTol {
			t.Fatalf("seed %d: BusyTime %v vs legacy %v (Δ %v)", seed, cur.busy, legacy.busy, d)
		}
		if cur.stillActive != legacy.stillActive {
			t.Fatalf("seed %d: %d active flows at drain vs legacy %d", seed, cur.stillActive, legacy.stillActive)
		}
		totalCompletions += len(cur.completions)
	}
	if totalCompletions == 0 {
		t.Fatal("scripts produced no completions; test exercised nothing")
	}
	t.Logf("compared %d completions across %d seeds", totalCompletions, diffSeeds)
}
