package sim

import (
	"sort"
	"testing"
	"time"
)

// FuzzEventQueue drives the engine's lazy-cancel pooled event queue
// against a flat reference model. The byte stream is interpreted as a
// small op program: schedule, cancel, advance the clock, and schedule
// events whose callbacks themselves schedule or cancel (which is what
// exercises handle pooling — a fired event's struct is recycled, so the
// model must never cancel through a stale handle).
//
// Invariants checked:
//   - events fire exactly in (time, scheduling-order) order;
//   - cancelled events never fire, fired events are never re-fired;
//   - Pending() always equals the model's live count;
//   - the queue fully drains (compaction and tombstone skimming never
//     lose or duplicate a live event).
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 5, 8, 3, 0, 6, 31})
	// Mass-schedule then mass-cancel: crosses the compactMin threshold.
	bulk := make([]byte, 0, 4*compactMin)
	for i := 0; i < compactMin; i++ {
		bulk = append(bulk, 0, byte(i))
	}
	for i := 0; i < compactMin; i++ {
		bulk = append(bulk, 3, byte(i))
	}
	f.Add(bulk)
	f.Add([]byte{7, 3, 7, 0, 5, 40, 7, 9, 5, 63, 3, 1, 5, 63})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := NewEngine(1)
		const unit = Duration(time.Millisecond)

		type modelEvent struct {
			at        Time
			cancelled bool
			fired     bool
		}
		var (
			model   []*modelEvent
			handles []*Event // index-aligned with model; nil once fired
			gotIDs  []int
		)
		live := func() int {
			n := 0
			for _, m := range model {
				if !m.fired && !m.cancelled {
					n++
				}
			}
			return n
		}
		var schedule func(at Time, nestDelta Duration)
		schedule = func(at Time, nestDelta Duration) {
			id := len(model)
			m := &modelEvent{at: at}
			model = append(model, m)
			handles = append(handles, nil)
			ev := eng.At(at, func() {
				// The handle dies the moment the event fires: the engine
				// recycles the struct for a later schedule.
				handles[id] = nil
				m.fired = true
				gotIDs = append(gotIDs, id)
				if nestDelta >= 0 {
					// Nested schedule from inside a callback — lands on a
					// pooled (recycled) Event struct once the free list is
					// warm.
					schedule(eng.Now().Add(nestDelta), -1)
				}
			})
			handles[id] = ev
		}
		cancel := func(idx int) {
			if len(model) == 0 {
				return
			}
			idx %= len(model)
			m := model[idx]
			if m.fired || m.cancelled {
				// A stale handle must not be passed to Cancel: the struct
				// may already belong to a different scheduled event.
				return
			}
			eng.Cancel(handles[idx])
			m.cancelled = true
			handles[idx] = nil
		}

		for i := 0; i+1 < len(data); i += 2 {
			arg := int(data[i+1])
			switch data[i] % 8 {
			case 0, 1, 2: // schedule at now+delta
				schedule(eng.Now().Add(Duration(arg%64)*unit), -1)
			case 3, 4: // cancel by index
				cancel(arg)
			case 5, 6: // advance the clock
				eng.RunFor(Duration(arg%32) * unit)
			case 7: // schedule an event that schedules another on fire
				schedule(eng.Now().Add(Duration(arg%64)*unit), Duration(arg%16)*unit)
			}
			if got, want := eng.Pending(), live(); got != want {
				t.Fatalf("op %d: Pending() = %d, model live = %d", i/2, got, want)
			}
		}

		// Drain everything (nested schedules keep extending the queue, but
		// each nesting is one level deep so the horizon is finite).
		eng.RunUntil(Time(1 << 40))
		if eng.Pending() != 0 {
			t.Fatalf("queue not drained: %d pending", eng.Pending())
		}

		// Expected firing order: live events by (time, scheduling order).
		var wantIDs []int
		for id, m := range model {
			if !m.cancelled {
				wantIDs = append(wantIDs, id)
			}
		}
		sort.SliceStable(wantIDs, func(a, b int) bool {
			return model[wantIDs[a]].at < model[wantIDs[b]].at
		})
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("fired %d events, want %d", len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("firing order diverges at %d: got %v, want %v", i, gotIDs, wantIDs)
			}
		}
		for id, m := range model {
			if m.cancelled && m.fired {
				t.Fatalf("event %d both cancelled and fired", id)
			}
		}
	})
}
