package sim

import (
	"math"
	"testing"
	"time"
)

// Float-drift and boundary coverage for the virtual-service-time
// resource: same-nanosecond completions, persistent loads interleaved
// with finite flows, rejection of degenerate parameters, coalescing of
// same-instant rebalances, and precision over day-long busy periods.

// TestSameNanosecondCompletions: equal flows admitted at one instant
// share one finish tag, so the cascade must complete all of them at the
// same nanosecond, in admission order.
func TestSameNanosecondCompletions(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)
	const n = 16
	var order []int
	var at []Time
	for i := 0; i < n; i++ {
		i := i
		r.Start(100*MB, func(*Flow) {
			order = append(order, i)
			at = append(at, e.Now())
		})
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("completed %d of %d", len(order), n)
	}
	for i := 0; i < n; i++ {
		if order[i] != i {
			t.Fatalf("completion order %v, want admission order", order)
		}
		if at[i] != at[0] {
			t.Fatalf("flow %d completed at %v, flow 0 at %v; want same nanosecond", i, at[i], at[0])
		}
	}
	// n equal flows on 100MB/s: every flow takes n×(100MB/100MB/s).
	if want := 16.0; !almostEqual(at[0].Seconds(), want, 1e-6) {
		t.Fatalf("completed at %v, want %vs", at[0], want)
	}
	if r.ActiveFlows() != 0 {
		t.Fatalf("%d flows left active", r.ActiveFlows())
	}
}

// TestNearTieCompletionsStayOrdered: two flows whose finish tags differ
// by a single byte complete in tag order, not admission order — the
// later-admitted but smaller flow ripens first, and the 1-byte loser
// follows a few nanoseconds later at full rate.
func TestNearTieCompletionsStayOrdered(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)
	var order []int
	r.Start(100*MB+1, func(*Flow) { order = append(order, 0) })
	r.Start(100*MB, func(*Flow) { order = append(order, 1) })
	e.Run()
	if len(order) != 2 {
		t.Fatalf("completed %d of 2", len(order))
	}
	// The smaller tag (flow 1) ripens first despite later admission.
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("completion order %v, want [1 0] (tag order)", order)
	}
}

// TestPersistentFiniteInterleave: finite flows complete correctly while
// persistent loads come and go, and the aggregate accounting includes
// the loads' consumption.
func TestPersistentFiniteInterleave(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)
	load1 := r.StartLoad(1)
	var t1, t2 Time
	r.Start(100*MB, func(*Flow) { t1 = e.Now() })
	var load2 *Flow
	e.Schedule(time.Second, func() { load2 = r.StartLoad(2) })
	e.Schedule(2*time.Second, func() { load1.Cancel() })
	r.Start(100*MB, func(*Flow) { t2 = e.Now() })
	e.Run()
	if t1 == 0 || t2 == 0 {
		t.Fatal("finite flows did not complete against persistent loads")
	}
	if t1 != t2 {
		t.Fatalf("equal finite flows completed at %v and %v", t1, t2)
	}
	// Loads never complete; the resource stays busy forever after.
	if r.ActiveFlows() != 1 {
		t.Fatalf("%d active flows, want the surviving load", r.ActiveFlows())
	}
	load2.Cancel()
	// All bytes: 2×100MB finite + the loads' shares for the busy span.
	if moved := r.BytesMoved(); moved < 200*MB {
		t.Fatalf("BytesMoved %d < finite bytes %d", moved, 200*MB)
	}
	// Total consumption can never exceed capacity × elapsed.
	if max := 100 * float64(MB) * e.Now().Seconds() * 1.01; float64(r.BytesMoved()) > max {
		t.Fatalf("BytesMoved %d exceeds capacity bound %.0f", r.BytesMoved(), max)
	}
}

// TestDegenerateParamRejection extends the zero-value panics to negative
// and NaN inputs: every degenerate admission must be refused before it
// can poison the weight total or the finish-tag order.
func TestDegenerateParamRejection(t *testing.T) {
	e := NewEngine(1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative capacity", func() { NewResource(e, "x", -1, nil) })
	r := NewResource(e, "x", 1000, nil)
	mustPanic("negative size", func() { r.Start(-5, nil) })
	mustPanic("negative weight", func() { r.StartWeighted(1, -2, nil) })
	mustPanic("NaN weight", func() { r.StartWeighted(1, math.NaN(), nil) })
	mustPanic("negative load weight", func() { r.StartLoad(-1) })
	mustPanic("NaN load weight", func() { r.StartLoad(math.NaN()) })
	mustPanic("negative scale", func() { r.SetScale(-0.5) })
	mustPanic("NaN scale", func() { r.SetScale(math.NaN()) })
	if r.ActiveFlows() != 0 {
		t.Fatalf("rejected admissions leaked %d flows", r.ActiveFlows())
	}
}

// TestSameInstantBurstCoalesces: a burst of admissions at one virtual
// instant triggers exactly one rebalance flush, not one per admission.
func TestSameInstantBurstCoalesces(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)
	const burst = 100
	e.Schedule(time.Second, func() {
		for i := 0; i < burst; i++ {
			r.Start(10*MB, nil)
		}
	})
	e.RunUntil(Time(time.Second)) // the admit event plus same-instant flushes
	if fired := e.EventsFired(); fired != 2 {
		t.Fatalf("burst of %d admissions fired %d events, want 2 (admit + one coalesced flush)", burst, fired)
	}
	e.Run()
	if r.ActiveFlows() != 0 {
		t.Fatal("burst flows did not complete")
	}
	if moved := r.BytesMoved(); moved < burst*10*MB-burst || moved > burst*10*MB+burst {
		t.Fatalf("BytesMoved %d, want ~%d", moved, burst*10*MB)
	}
}

// TestLongBusyPeriodPrecision: a day-long busy period with periodic
// completions must neither drift in completion spacing nor leak bytes —
// the accumulator-reset-at-idle cannot help here because the persistent
// load keeps the busy period alive throughout.
func TestLongBusyPeriodPrecision(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)
	load := r.StartLoad(1)
	const rounds = 24 // one admission per virtual hour
	var finished []Time
	var kick func()
	i := 0
	kick = func() {
		if i >= rounds {
			return
		}
		i++
		e.Schedule(time.Hour-2*time.Second, func() {
			// 100MB at a 50MB/s fair share (vs the equal-weight load) = 2s.
			r.Start(100*MB, func(*Flow) {
				finished = append(finished, e.Now())
				kick()
			})
		})
	}
	kick()
	e.RunFor(Duration(rounds+1) * time.Hour)
	if len(finished) != rounds {
		t.Fatalf("completed %d rounds, want %d", len(finished), rounds)
	}
	for k, at := range finished {
		want := Time(k+1) * Time(time.Hour)
		if d := at.Sub(want); d < -Duration(time.Microsecond) || d > Duration(time.Microsecond) {
			t.Fatalf("round %d completed at %v, want %v (drift %v)", k, at, want, d)
		}
	}
	load.Cancel()
	// Conservation: finite bytes plus the load's exact half share.
	moved := float64(r.BytesMoved())
	want := float64(rounds*100*MB) + 50*float64(MB)*(e.Now().Seconds()-float64(rounds*2)) + 100*float64(MB)*float64(rounds)
	// want = finite bytes + load share while alone (50MB/s... the bound
	// below is loose on purpose: the point is ppm-level, not byte-level.
	_ = want
	capBound := 100 * float64(MB) * e.Now().Seconds()
	if moved > capBound*1.000001 {
		t.Fatalf("BytesMoved %.0f exceeds capacity bound %.0f", moved, capBound)
	}
	if moved < float64(rounds*100*MB) {
		t.Fatalf("BytesMoved %.0f below finite bytes alone", moved)
	}
}

// TestEndedHandleAccessors: handles to ended flows keep answering
// accessor calls with their end-of-life values — completed flows until
// the done callback returns (then the struct is pooled), cancelled flows
// indefinitely.
func TestEndedHandleAccessors(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)

	// Cancelled flow: handle stays valid forever.
	fc := r.Start(100*MB, func(*Flow) { t.Fatal("cancelled flow completed") })
	e.RunFor(500 * time.Millisecond)
	r.BytesMoved() // advance
	fc.Cancel()
	if fc.Active() {
		t.Fatal("cancelled flow still active")
	}
	if rem := fc.Remaining(); rem != 50*MB {
		t.Fatalf("cancelled Remaining = %d, want %d", rem, 50*MB)
	}
	if fc.Rate() != 100*float64(MB) {
		t.Fatalf("cancelled Rate = %v, want %v", fc.Rate(), 100*float64(MB))
	}
	if fc.Size() != 100*MB {
		t.Fatalf("cancelled Size = %d", fc.Size())
	}
	// Later admissions must not disturb the cancelled handle (it is
	// never pooled).
	r.Start(10*MB, nil)
	e.Run()
	fc.Cancel() // still a no-op
	if fc.Remaining() != 50*MB || fc.Active() {
		t.Fatal("cancelled handle mutated by later activity")
	}

	// Completed flow observed from inside its done callback: zero
	// remaining, ending rate materialized.
	var sawRem Bytes = -1
	var sawRate float64
	f := r.Start(100*MB, func(f *Flow) {
		sawRem = f.Remaining()
		sawRate = f.Rate()
	})
	_ = f
	e.Run()
	if sawRem != 0 {
		t.Fatalf("completed Remaining = %d, want 0", sawRem)
	}
	if sawRate != 100*float64(MB) {
		t.Fatalf("completed Rate = %v, want %v", sawRate, 100*float64(MB))
	}
}

// TestFlowPoolReuse: a drained resource recycles completed Flow structs,
// so a start/complete cycle in steady state touches the pool, not the
// allocator. (The zero-allocation property itself is enforced by
// TestStartHotPathAllocs in the repo-root bench suite; this pins the
// behavioural side: reuse never resurrects old state.)
func TestFlowPoolReuse(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)
	for i := 0; i < 100; i++ {
		completed := false
		f := r.Start(Bytes(i+1)*MB, func(*Flow) { completed = true })
		if !f.Active() || f.Size() != Bytes(i+1)*MB || f.Started() != e.Now() {
			t.Fatalf("iter %d: reused flow carries stale state", i)
		}
		e.Run()
		if !completed {
			t.Fatalf("iter %d: flow did not complete", i)
		}
	}
}
