package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const eps = 1e-6

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowDuration(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	var doneAt Time
	r.Start(200*MB, func(*Flow) { doneAt = e.Now() })
	e.Run()
	if !almostEqual(doneAt.Seconds(), 2.0, 1e-6) {
		t.Errorf("200MB at 100MB/s finished at %vs, want 2s", doneAt.Seconds())
	}
	if got := r.BytesMoved(); got != 200*MB {
		t.Errorf("BytesMoved = %d, want %d", got, 200*MB)
	}
}

func TestFairSharing(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	var t1, t2 Time
	r.Start(100*MB, func(*Flow) { t1 = e.Now() })
	r.Start(100*MB, func(*Flow) { t2 = e.Now() })
	e.Run()
	// Two equal flows sharing 100MB/s: both finish at 2s.
	if !almostEqual(t1.Seconds(), 2.0, 1e-6) || !almostEqual(t2.Seconds(), 2.0, 1e-6) {
		t.Errorf("finish times %v, %v; want 2s each", t1, t2)
	}
}

func TestShortFlowSpeedsUpLongFlow(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	var tShort, tLong Time
	r.Start(300*MB, func(*Flow) { tLong = e.Now() })
	r.Start(100*MB, func(*Flow) { tShort = e.Now() })
	e.Run()
	// Shared until short flow done at 2s (50MB/s each); long flow then has
	// 200MB left at full 100MB/s -> finishes at 4s.
	if !almostEqual(tShort.Seconds(), 2.0, 1e-6) {
		t.Errorf("short finished at %v, want 2s", tShort)
	}
	if !almostEqual(tLong.Seconds(), 4.0, 1e-6) {
		t.Errorf("long finished at %v, want 4s", tLong)
	}
}

func TestWeightedSharing(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	var tA Time
	r.StartWeighted(300*MB, 3, func(*Flow) { tA = e.Now() })
	f := r.StartLoad(1)
	e.Run()
	// Weighted 3:1 -> flow A gets 75MB/s -> 4s.
	if !almostEqual(tA.Seconds(), 4.0, 1e-6) {
		t.Errorf("weighted flow finished at %v, want 4s", tA)
	}
	f.Cancel()
}

func TestPersistentLoadHalvesBandwidth(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	load := r.StartLoad(1)
	var done Time
	r.Start(100*MB, func(*Flow) { done = e.Now() })
	e.Run()
	if !almostEqual(done.Seconds(), 2.0, 1e-6) {
		t.Errorf("flow vs persistent load finished at %v, want 2s", done)
	}
	load.Cancel()
	if r.ActiveFlows() != 0 {
		t.Errorf("flows remain after cancel: %d", r.ActiveFlows())
	}
}

func TestCancelLoadRestoresBandwidth(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	load := r.StartLoad(1)
	var done Time
	r.Start(150*MB, func(*Flow) { done = e.Now() })
	e.Schedule(time.Second, func() { load.Cancel() })
	e.Run()
	// First second at 50MB/s -> 100MB left, then full speed 1s -> done at 2s.
	if !almostEqual(done.Seconds(), 2.0, 1e-6) {
		t.Errorf("finished at %v, want 2s", done)
	}
}

func TestSetScale(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	var done Time
	r.Start(100*MB, func(*Flow) { done = e.Now() })
	e.Schedule(500*time.Millisecond, func() { r.SetScale(0.5) })
	e.Run()
	// 0.5s at 100MB/s = 50MB, remaining 50MB at 50MB/s = 1s -> 1.5s total.
	if !almostEqual(done.Seconds(), 1.5, 1e-6) {
		t.Errorf("finished at %v, want 1.5s", done)
	}
	if r.Scale() != 0.5 {
		t.Errorf("scale = %v", r.Scale())
	}
}

func TestSeekEfficiency(t *testing.T) {
	eff := SeekEfficiency(0.25)
	if eff(1) != 1 {
		t.Errorf("eff(1) = %v", eff(1))
	}
	if !almostEqual(eff(2), 0.8, eps) {
		t.Errorf("eff(2) = %v, want 0.8", eff(2))
	}
	if eff(5) >= eff(2) {
		t.Errorf("efficiency not decreasing")
	}

	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), eff)
	var t1 Time
	r.Start(80*MB, func(*Flow) { t1 = e.Now() })
	r.StartLoad(1)
	e.Run()
	// Effective capacity with 2 flows = 80MB/s; fair share 40MB/s -> 2s.
	if !almostEqual(t1.Seconds(), 2.0, 1e-6) {
		t.Errorf("finished at %v, want 2s", t1)
	}
}

func TestFlowCancelMidway(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	done := false
	f := r.Start(100*MB, func(*Flow) { done = true })
	var other Time
	r.Start(100*MB, func(*Flow) { other = e.Now() })
	e.Schedule(time.Second, func() { f.Cancel() })
	e.Run()
	if done {
		t.Error("cancelled flow invoked done callback")
	}
	// Other flow: 1s at 50MB/s, then 50MB at full speed -> 1.5s.
	if !almostEqual(other.Seconds(), 1.5, 1e-6) {
		t.Errorf("other finished at %v, want 1.5s", other)
	}
	f.Cancel() // double-cancel is a no-op
}

func TestUtilizationAndBusyTime(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 100*float64(MB), nil)
	e.Schedule(time.Second, func() { r.Start(100*MB, nil) })
	e.Run() // flow runs 1s..2s
	e.Schedule(2*time.Second, func() {})
	e.Run() // idle 2s..4s
	if got := r.BusyTime(); got != time.Second {
		t.Errorf("busy = %v, want 1s", got)
	}
	if u := r.Utilization(0); !almostEqual(u, 0.25, 1e-9) {
		t.Errorf("utilization = %v, want 0.25", u)
	}
}

func TestFlowAccessors(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "d", 100*float64(MB), nil)
	f := r.Start(100*MB, nil)
	if !f.Active() {
		t.Error("new flow not active")
	}
	if f.Started() != 0 {
		t.Errorf("started = %v", f.Started())
	}
	e.RunUntil(Time(500 * time.Millisecond))
	r.BytesMoved() // forces advance
	if rem := f.Remaining(); rem != 50*MB {
		t.Errorf("remaining = %d, want %d", rem, 50*MB)
	}
	if f.Rate() != 100*float64(MB) {
		t.Errorf("rate = %v", f.Rate())
	}
	e.Run()
	if f.Active() {
		t.Error("completed flow still active")
	}
}

func TestResourceValidation(t *testing.T) {
	e := NewEngine(1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero capacity", func() { NewResource(e, "x", 0, nil) })
	r := NewResource(e, "x", 1000, nil)
	mustPanic("zero size", func() { r.Start(0, nil) })
	mustPanic("zero weight", func() { r.StartWeighted(1, 0, nil) })
	mustPanic("zero load weight", func() { r.StartLoad(0) })
	mustPanic("zero scale", func() { r.SetScale(0) })
}

// Property: total bytes moved never exceeds capacity × elapsed time, and all
// admitted (non-cancelled) flows eventually complete with conservation of
// bytes.
func TestPropertyConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(seed)
		capacity := 50*float64(MB) + rng.Float64()*200*float64(MB)
		r := NewResource(e, "disk", capacity, SeekEfficiency(rng.Float64()*0.3))
		n := 3 + rng.Intn(10)
		var wantBytes Bytes
		completed := 0
		for i := 0; i < n; i++ {
			size := Bytes(1+rng.Intn(512)) * MB
			wantBytes += size
			delay := Duration(rng.Int63n(int64(5 * time.Second)))
			e.Schedule(delay, func() {
				r.Start(size, func(*Flow) { completed++ })
			})
		}
		e.Run()
		if completed != n {
			return false
		}
		moved := r.BytesMoved()
		if moved < wantBytes-Bytes(n) || moved > wantBytes+Bytes(n) {
			return false
		}
		// Throughput bound: bytes <= capacity * elapsed (+1% float slack).
		maxBytes := capacity * e.Now().Seconds() * 1.01
		return float64(moved) <= maxBytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with equal weights, flows of equal size admitted at the same
// time complete at the same time.
func TestPropertyFairness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(seed)
		r := NewResource(e, "disk", 100*float64(MB), nil)
		n := 2 + rng.Intn(6)
		size := Bytes(1+rng.Intn(256)) * MB
		var finishes []Time
		for i := 0; i < n; i++ {
			r.Start(size, func(*Flow) { finishes = append(finishes, e.Now()) })
		}
		e.Run()
		if len(finishes) != n {
			return false
		}
		for _, f := range finishes {
			if math.Abs(f.Seconds()-finishes[0].Seconds()) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{256 * MB, "256.00MB"},
		{3 * GB, "3.00GB"},
		{2 * TB, "2.00TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: weighted fair sharing — two flows with weights w and 1
// receive rates in ratio w:1 (checked via completion times of equal
// sizes).
func TestPropertyWeightedShares(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 0.5 + 3*rng.Float64()
		e := NewEngine(seed)
		r := NewResource(e, "d", 100*float64(MB), nil)
		size := Bytes(1+rng.Intn(128)) * MB
		var tHeavy, tLight Time
		r.StartWeighted(size, w, func(*Flow) { tHeavy = e.Now() })
		load := r.StartLoad(1) // keeps sharing constant for the heavy flow
		r.StartWeighted(size, 1, func(*Flow) { tLight = e.Now() })
		e.RunFor(time.Hour)
		load.Cancel()
		if tHeavy == 0 || tLight == 0 {
			return false
		}
		// While all three flows are active, heavy:light rates are w:1.
		// The heavy flow must finish no later than the light one for
		// w >= 1, and vice versa.
		if w > 1.05 && tHeavy > tLight {
			return false
		}
		if w < 0.95 && tHeavy < tLight {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: SeekEfficiency is non-increasing in load and bounded in (0,1].
func TestPropertySeekEfficiencyMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eff := SeekEfficiency(rng.Float64() * 0.5)
		prev := 1.0
		for load := 0.5; load < 40; load += 0.7 {
			v := eff(load)
			if v <= 0 || v > 1 || v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
