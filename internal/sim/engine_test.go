package sim

import (
	"testing"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*time.Second) {
		t.Errorf("now = %v, want 3s", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling again or cancelling nil must not panic.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(2*time.Second, func() { fired = true })
	e.Schedule(1*time.Second, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(0, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Schedule(time.Second, func() { n++ })
	e.Schedule(10*time.Second, func() { n++ })
	e.RunUntil(Time(5 * time.Second))
	if n != 1 {
		t.Errorf("fired %d events, want 1", n)
	}
	if e.Now() != Time(5*time.Second) {
		t.Errorf("now = %v, want 5s", e.Now())
	}
	e.Run()
	if n != 2 {
		t.Errorf("fired %d events total, want 2", n)
	}
}

func TestRunForRelative(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	e.Run()
	n := 0
	e.Schedule(2*time.Second, func() { n++ })
	e.RunFor(3 * time.Second)
	if n != 1 {
		t.Errorf("RunFor missed event scheduled within window")
	}
	if e.Now() != Time(4*time.Second) {
		t.Errorf("now = %v, want 4s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Schedule(1*time.Second, func() { n++; e.Stop() })
	e.Schedule(2*time.Second, func() { n++ })
	e.Run()
	if n != 1 {
		t.Errorf("Stop did not halt the run: fired %d", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Errorf("second Run did not resume: fired %d", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var draws []int64
		var rec func()
		rec = func() {
			draws = append(draws, e.Rand().Int63n(1000))
			if len(draws) < 20 {
				e.Schedule(Duration(e.Rand().Int63n(int64(time.Second))), rec)
			}
		}
		e.Schedule(0, rec)
		e.Run()
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := NewTicker(e, time.Second, func() { n++ })
	e.RunUntil(Time(5500 * time.Millisecond))
	if n != 5 {
		t.Errorf("ticks = %d, want 5", n)
	}
	tk.Stop()
	e.RunFor(10 * time.Second)
	if n != 5 {
		t.Errorf("ticker fired after Stop: %d", n)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(e, time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Errorf("ticks = %d, want 3", n)
	}
}

func TestEventsFired(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(Duration(i)*time.Second, func() {})
	}
	ev := e.Schedule(100*time.Second, func() {})
	e.Cancel(ev)
	e.Run()
	if e.EventsFired() != 7 {
		t.Errorf("fired = %d, want 7", e.EventsFired())
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(90 * time.Second)
	if tm.Seconds() != 90 {
		t.Errorf("Seconds = %v", tm.Seconds())
	}
	if tm.Sub(Time(30*time.Second)) != 60*time.Second {
		t.Errorf("Sub wrong")
	}
	if tm.String() != "1m30s" {
		t.Errorf("String = %q", tm.String())
	}
}
