package sim

import (
	"fmt"
	"math"
)

// Bytes is a data quantity in bytes.
type Bytes = int64

// Common byte quantities.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(b Bytes) string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", b)
}

// EfficiencyFunc maps the current load — the summed fair-share weights of
// the active flows — to the fraction of nominal capacity the device can
// sustain. It models the seek overhead a disk pays when serving
// interleaved streams: n equal-weight foreground streams present load n,
// while a low-weight background stream (e.g. a deprioritized migration)
// adds only its fractional share of seek pressure. It must return a value
// in (0, 1] and should be non-increasing.
type EfficiencyFunc func(load float64) float64

// FlatEfficiency ignores concurrency; suitable for NICs and memory.
func FlatEfficiency(float64) float64 { return 1 }

// SeekEfficiency returns an EfficiencyFunc where each unit of additional
// concurrent load costs penalty of the device's total throughput:
// eff(w) = 1 / (1 + penalty*(w-1)).
func SeekEfficiency(penalty float64) EfficiencyFunc {
	return func(load float64) float64 {
		if load <= 1 {
			return 1
		}
		return 1 / (1 + penalty*(load-1))
	}
}

// FlowSink observes flow lifecycle on every Resource of an Engine.
// Install with Engine.SetFlowSink. FlowStarted fires on admission
// (Start/StartWeighted/StartLoad); FlowEnded fires on completion
// (completed=true, before the flow's done callback) or cancellation
// (completed=false). Implemented by the internal/trace Tracer.
type FlowSink interface {
	FlowStarted(r *Resource, f *Flow)
	FlowEnded(r *Resource, f *Flow, completed bool)
}

// Flow is one transfer in progress on a Resource. Flows receive a
// weighted fair share of the resource's current effective capacity and
// complete when their remaining bytes reach zero.
//
// Completed flows are pooled: once the done callback has returned, the
// Resource recycles the Flow struct for a later admission, so a handle
// to a completed flow is valid only until its done callback returns
// (mirroring the Engine's Event pooling contract). Cancelled flows are
// never recycled — a cancel can race with a held handle elsewhere in
// the model, so Cancel leaves the struct to the garbage collector and
// stays a safe no-op on any already-ended flow it still points at.
type Flow struct {
	res    *Resource
	tag    float64 // normalized virtual finish tag; +Inf for persistent
	weight float64
	seq    uint64 // admission sequence, tie-breaks equal tags
	pos    int32  // heap slot index (optimized mode), for O(log n) removal

	started Time
	done    func(f *Flow)
	active  bool
	total   float64 // original size, NaN for persistent

	// Materialized at the end of the flow's life: remaining bytes and
	// last rate, so accessors on ended flows need no resource state.
	endRem  float64
	endRate float64
}

// Remaining reports the bytes this flow still has to transfer, as of the
// resource's last accounting advance.
func (f *Flow) Remaining() Bytes {
	if f.active {
		rem := (f.tag - f.res.vsrv) * f.weight
		if rem < 0 {
			rem = 0
		}
		return Bytes(math.Ceil(rem))
	}
	return Bytes(math.Ceil(f.endRem))
}

// Rate reports the flow's current transfer rate in bytes/sec (the rate
// it was ending at, for completed or cancelled flows).
func (f *Flow) Rate() float64 {
	if !f.active {
		return f.endRate
	}
	r := f.res
	if r.totalW <= 0 {
		return 0
	}
	return r.base * r.scale * r.eff(r.totalW) * f.weight / r.totalW
}

// Started reports when the flow was admitted.
func (f *Flow) Started() Time { return f.started }

// Active reports whether the flow is still transferring.
func (f *Flow) Active() bool { return f.active }

// Size reports the flow's original size in bytes, or 0 for persistent
// load flows (which have no size).
func (f *Flow) Size() Bytes {
	if math.IsNaN(f.total) {
		return 0
	}
	return Bytes(f.total)
}

// Resource models a device with a shared, time-varying capacity —
// a disk or a NIC. Concurrent flows share the effective capacity in
// proportion to their weights (generalized processor sharing), and the
// effective capacity is baseCapacity × scale × efficiency(load).
//
// This fluid-flow model is what makes residual-bandwidth effects emerge
// naturally: interference flows, task reads and migrations all compete on
// the same Resource and each automatically slows the others down.
//
// # Virtual service time
//
// Under GPS every active flow f drains at rate totalRate·w_f/W, so the
// normalized backlog remaining_f/w_f decreases at the flow-independent
// rate vRate = totalRate/W. The resource therefore tracks a single
// virtual-service accumulator V (vsrv) instead of per-flow remaining
// counters: a flow admitted when the accumulator reads V₀ carries the
// constant finish tag V₀ + size/w and completes exactly when V reaches
// its tag. Admissions, cancellations and capacity changes alter only the
// rate at which V advances — never the tags — so the completion order
// (tag, admission seq) is invariant and a probe or state change costs
// O(1) accounting instead of a walk over every active flow.
//
// Accounting is lazy: advance() accrues busy time, V and the aggregate
// bytesMoved from the cached rates in O(1); a flow's own byte position
// is materialized only at its completion/cancel boundary (and on
// Remaining probes) as (tag − V)·w.
//
// The finite flows live in an indexed min-heap on (tag, seq) — see
// flowheap.go — so the single completion timer re-arms from the heap
// head in O(1) and the same-instant completion cascade pops ripe flows
// in O(log n) each, replacing the previous design's O(n) rescans.
// Removal by handle is O(log n) via the flow's stored heap slot.
//
// State changes within one virtual instant coalesce: each marks the
// resource dirty and the rates/timer are recomputed once, by a flush
// event that fires after every same-instant model event (it is
// scheduled at the current instant with a later sequence number). A
// burst of admissions therefore costs one rebalance, not one per flow.
//
// When the resource idles (no active flows) V, W and the cached rates
// reset to zero, so float drift cannot accumulate across busy periods.
type Resource struct {
	eng   *Engine
	name  string
	base  float64 // bytes/sec nominal
	scale float64 // dynamic capacity multiplier (hardware heterogeneity)
	eff   EfficiencyFunc

	// Virtual-service state. vsrv is V(t): cumulative normalized service
	// per unit weight this busy period. vRate and totalRate are cached at
	// the last flush (or cascade repricing) and stay valid for the whole
	// inter-event interval, because any state change re-flushes within
	// the same virtual instant.
	vsrv      float64
	vRate     float64 // dV/dt = totalRate/totalW
	totalRate float64 // base × scale × eff(totalW)
	// totalW is the summed weight of the active flows, maintained
	// incrementally (and reset to zero whenever the resource idles, so
	// float drift cannot accumulate across busy periods).
	totalW   float64
	admitSeq uint64

	// heap holds every active flow ordered by (tag, seq); see flowheap.go.
	heap []*Flow
	// rflows replaces the heap in reference mode (Engine.
	// SetReferenceResources): a plain admission-ordered slice with linear
	// scans, sharing every float expression with the optimized path so
	// the two modes are byte-identical by construction. Differential and
	// conformance tests run against it.
	rflows []*Flow
	naive  bool

	lastUpdate Time
	timer      *Event // single completion timer; nil when nothing finite runs
	timerFn    func() // bound once so re-arming allocates nothing
	dirty      bool   // a same-instant flush event is pending
	flushFn    func() // bound once so coalescing allocates nothing

	free []*Flow // recycled completed Flow structs; steady state allocates none

	// accounting
	bytesMoved float64 // total bytes transferred through this resource
	busy       Duration
}

// NewResource creates a resource with the given nominal capacity in
// bytes/sec. eff may be nil for flat (no concurrency penalty) behaviour.
func NewResource(eng *Engine, name string, capacity float64, eff EfficiencyFunc) *Resource {
	if !(capacity > 0) {
		panic("sim: resource capacity must be positive")
	}
	if eff == nil {
		eff = FlatEfficiency
	}
	r := &Resource{
		eng:   eng,
		name:  name,
		base:  capacity,
		scale: 1,
		eff:   eff,
		naive: eng.refResources,
	}
	r.timerFn = r.onTimer
	r.flushFn = r.flush
	return r
}

// Name reports the resource's identifier, e.g. "disk:node3".
func (r *Resource) Name() string { return r.name }

// Capacity reports the nominal capacity in bytes/sec before scaling.
func (r *Resource) Capacity() float64 { return r.base }

// EffectiveCapacity reports the current total throughput available to the
// active flows: base × scale × efficiency(load).
func (r *Resource) EffectiveCapacity() float64 {
	return r.base * r.scale * r.eff(r.totalW)
}

// count reports the number of active flows (finite and persistent).
func (r *Resource) count() int {
	if r.naive {
		return len(r.rflows)
	}
	return len(r.heap)
}

// ActiveFlows reports the number of in-progress flows.
func (r *Resource) ActiveFlows() int { return r.count() }

// BytesMoved reports the cumulative bytes transferred through this
// resource up to the current instant, including progress of active flows.
func (r *Resource) BytesMoved() Bytes {
	r.advance()
	return Bytes(r.bytesMoved)
}

// BusyTime reports the cumulative time the resource had at least one
// active flow.
func (r *Resource) BusyTime() Duration {
	r.advance()
	return r.busy
}

// Utilization reports the fraction of the window [since, now] during which
// the resource was busy.
func (r *Resource) Utilization(since Time) float64 {
	r.advance()
	window := r.eng.Now().Sub(since)
	if window <= 0 {
		return 0
	}
	b := r.busy
	if b > window {
		b = window
	}
	return float64(b) / float64(window)
}

// SetScale changes the dynamic capacity multiplier (e.g. 0.3 for a
// handicapped node). Active flows are re-rated at this instant.
func (r *Resource) SetScale(s float64) {
	if !(s > 0) {
		panic("sim: resource scale must be positive")
	}
	r.advance()
	r.scale = s
	r.markDirty()
}

// Scale reports the current capacity multiplier.
func (r *Resource) Scale() float64 { return r.scale }

// Start admits a transfer of size bytes with weight 1. done, if non-nil,
// runs when the transfer completes.
func (r *Resource) Start(size Bytes, done func(f *Flow)) *Flow {
	return r.StartWeighted(size, 1, done)
}

// StartWeighted admits a transfer of size bytes with the given fair-share
// weight.
func (r *Resource) StartWeighted(size Bytes, weight float64, done func(f *Flow)) *Flow {
	if size <= 0 {
		panic("sim: flow size must be positive")
	}
	if !(weight > 0) {
		panic("sim: flow weight must be positive")
	}
	r.advance()
	f := r.admit(r.vsrv+float64(size)/weight, float64(size), weight, done)
	if s := r.eng.flowSink; s != nil {
		s.FlowStarted(r, f)
	}
	return f
}

// StartLoad admits a persistent flow that never completes on its own —
// a background interference stream (the paper's dd jobs). It is removed
// with Flow.Cancel.
func (r *Resource) StartLoad(weight float64) *Flow {
	if !(weight > 0) {
		panic("sim: flow weight must be positive")
	}
	r.advance()
	f := r.admit(math.Inf(1), math.NaN(), weight, nil)
	if s := r.eng.flowSink; s != nil {
		s.FlowStarted(r, f)
	}
	return f
}

// admit builds a flow (from the pool when possible), links it into the
// active set and schedules the same-instant rebalance. The tag must be
// final before the flow enters the heap.
func (r *Resource) admit(tag, total, weight float64, done func(f *Flow)) *Flow {
	var f *Flow
	if n := len(r.free); n > 0 {
		f = r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
	} else {
		f = &Flow{}
	}
	f.res = r
	f.tag = tag
	f.total = total
	f.weight = weight
	f.started = r.eng.Now()
	f.done = done
	f.active = true
	f.seq = r.admitSeq
	r.admitSeq++
	r.addFlow(f)
	r.totalW += weight
	r.markDirty()
	return f
}

// Cancel removes a flow before completion. Bytes already moved stay
// counted; the done callback does not run.
func (f *Flow) Cancel() {
	if !f.active {
		return
	}
	r := f.res
	r.advance()
	f.active = false
	f.endRate = r.totalRate * f.weight / r.totalW
	f.endRem = (f.tag - r.vsrv) * f.weight
	if f.endRem < 0 {
		f.endRem = 0
	}
	r.removeFlow(f)
	r.totalW -= f.weight
	if r.count() == 0 {
		r.resetIdle()
	}
	r.markDirty()
	if s := r.eng.flowSink; s != nil {
		s.FlowEnded(r, f, false)
	}
}

// addFlow links a freshly admitted flow into the active set.
func (r *Resource) addFlow(f *Flow) {
	if r.naive {
		r.rflows = append(r.rflows, f)
		return
	}
	r.heapPush(f)
}

// removeFlow unlinks an active flow: O(log n) by stored heap slot, or
// the reference mode's deliberate linear scan (admission order kept).
func (r *Resource) removeFlow(f *Flow) {
	if r.naive {
		for i, g := range r.rflows {
			if g == f {
				r.rflows = append(r.rflows[:i], r.rflows[i+1:]...)
				return
			}
		}
		return
	}
	r.heapRemove(int(f.pos))
}

// earliest returns the finite flow with the smallest (tag, seq), or nil
// when only persistent flows (or nothing) run. In optimized mode this is
// the heap head; the reference mode scans.
func (r *Resource) earliest() *Flow {
	if r.naive {
		var best *Flow
		for _, f := range r.rflows {
			if math.IsInf(f.tag, 1) {
				continue
			}
			if best == nil || flowLess(f, best) {
				best = f
			}
		}
		return best
	}
	if len(r.heap) == 0 || math.IsInf(r.heap[0].tag, 1) {
		return nil
	}
	return r.heap[0]
}

// advance accrues accounting up to the current instant: busy time, the
// virtual-service accumulator and aggregate bytes, all in O(1). Per-flow
// rates were constant since lastUpdate because every state change
// re-flushes within its own instant.
func (r *Resource) advance() {
	now := r.eng.Now()
	d := now.Sub(r.lastUpdate)
	if d <= 0 {
		r.lastUpdate = now
		return
	}
	if r.count() > 0 {
		r.busy += d
		dt := d.Seconds()
		r.vsrv += r.vRate * dt
		r.bytesMoved += r.totalRate * dt
	}
	r.lastUpdate = now
}

// markDirty coalesces same-instant rebalances: the first state change at
// an instant schedules one flush event; later changes at the same
// instant ride along for free.
func (r *Resource) markDirty() {
	if r.dirty {
		return
	}
	r.dirty = true
	r.eng.At(r.eng.Now(), r.flushFn)
}

// flush recomputes the cached rates from the current membership and
// re-arms the single completion timer. It runs after every model event
// of the instant that dirtied the resource, so it sees the settled
// state.
func (r *Resource) flush() {
	r.dirty = false
	if r.timer != nil {
		r.eng.Cancel(r.timer)
		r.timer = nil
	}
	if r.count() == 0 {
		return
	}
	r.reprice()
	if f := r.earliest(); f != nil {
		r.timer = r.eng.Schedule(Duration((f.tag-r.vsrv)/r.vRate*float64(Second)), r.timerFn)
	}
}

// reprice refreshes the cached aggregate rate and virtual-service rate
// from the current membership. Callers guarantee totalW > 0.
func (r *Resource) reprice() {
	r.totalRate = r.base * r.scale * r.eff(r.totalW)
	r.vRate = r.totalRate / r.totalW
}

// resetIdle zeroes the per-busy-period state once the last flow leaves,
// bounding float drift to one busy period.
func (r *Resource) resetIdle() {
	r.totalW = 0
	r.vsrv = 0
	r.vRate = 0
	r.totalRate = 0
}

// Second is one virtual second, for converting float seconds to Duration.
const Second = Duration(1e9)

// onTimer fires when the earliest-finishing flow reaches zero remaining
// bytes: it advances accounting and completes every ripe flow.
func (r *Resource) onTimer() {
	r.timer = nil
	r.advance()
	r.completeRipe()
}

// completeRipe completes, in (tag, admission) order, every flow whose
// remaining time at the current rates truncates to zero nanoseconds —
// the set whose per-flow completion events would fire at this instant
// under eager per-flow scheduling. Rates are repriced after each pop
// (freeing capacity can ripen the next flow) and once more up front,
// because a same-instant event before the timer may have changed
// membership with the recompute still pending in the flush event.
func (r *Resource) completeRipe() {
	if r.count() > 0 {
		r.reprice()
	}
	for {
		f := r.earliest()
		if f == nil {
			break
		}
		secs := (f.tag - r.vsrv) / r.vRate
		if Duration(secs*float64(Second)) > 0 {
			break
		}
		f.endRate = r.totalRate * f.weight / r.totalW
		// Guard against float drift: the timer fires when the virtual
		// accumulator ~ reaches the tag; credit any sub-nanosecond
		// leftover so completed bytes stay conserved.
		if left := (f.tag - r.vsrv) * f.weight; left > 0 {
			r.bytesMoved += left
		}
		f.active = false
		f.endRem = 0
		r.removeFlow(f)
		r.totalW -= f.weight
		if r.count() == 0 {
			r.resetIdle()
		} else {
			r.reprice()
		}
		if s := r.eng.flowSink; s != nil {
			s.FlowEnded(r, f, true)
		}
		if f.done != nil {
			f.done(f)
		}
		r.recycle(f)
	}
	if r.count() > 0 {
		r.markDirty()
	}
}

// maxFreeFlows caps the per-resource pool of recycled Flow structs.
const maxFreeFlows = 1 << 12

// recycle returns a completed flow to the pool once its done callback
// has run. Only completions recycle (see the Flow handle contract);
// cancelled flows are left to the garbage collector.
func (r *Resource) recycle(f *Flow) {
	f.done = nil
	if len(r.free) < maxFreeFlows {
		r.free = append(r.free, f)
	}
}
